package stems

import (
	"context"
	"strings"
	"testing"
)

// TestPreparedMatchesRun executes a Prepared query many times and checks
// every execution returns exactly the rows a one-shot Run returns.
func TestPreparedMatchesRun(t *testing.T) {
	oracle, err := smallJoin().Run(Options{Engine: Concurrent, TimeCompression: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	want := keysOf(oracle.Rows)

	p, err := smallJoin().Prepare(Options{Engine: Concurrent, TimeCompression: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		res, err := p.Run()
		if err != nil {
			t.Fatalf("execution %d: %v", i, err)
		}
		got := keysOf(res.Rows)
		if len(got) != len(want) {
			t.Fatalf("execution %d: %d rows, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("execution %d row %d: %q, want %q", i, j, got[j], want[j])
			}
		}
		if res.Stats.SteMBuilds != oracle.Stats.SteMBuilds {
			t.Fatalf("execution %d: %d builds, want %d (stale SteM state between runs?)",
				i, res.Stats.SteMBuilds, oracle.Stats.SteMBuilds)
		}
	}
}

// TestPreparedStreamsOnResult checks the OnResult hook fires per execution
// and is not leaked into later runs' engine state.
func TestPreparedStreamsOnResult(t *testing.T) {
	var streamed int
	p, err := smallJoin().Prepare(Options{
		Engine: Concurrent, TimeCompression: 0.0001,
		OnResult: func(Row) { streamed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		if streamed != 3*i {
			t.Fatalf("after %d executions streamed %d rows, want %d", i, streamed, 3*i)
		}
		if len(res.Rows) != 3 {
			t.Fatalf("execution %d returned %d rows, want 3", i, len(res.Rows))
		}
	}
}

// TestPreparedRecoversFromCancel cancels an execution mid-run and checks the
// next execution still returns full results (the dirty shell is rebuilt,
// never reused).
func TestPreparedRecoversFromCancel(t *testing.T) {
	p, err := smallJoin().Prepare(Options{Engine: Concurrent, TimeCompression: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunContext(ctx); err == nil {
		t.Fatal("canceled execution returned nil error")
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("post-cancel execution returned %d rows, want 3", len(res.Rows))
	}
}

// TestPrepareRejectsUnpoolableOptions pins the option subset Prepare
// supports: simulator-only hooks and per-run disk/eviction state must be
// refused with a clear error, not silently dropped.
func TestPrepareRejectsUnpoolableOptions(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"sim engine", Options{Engine: Sim}, "requires Engine: Concurrent"},
		{"explain", Options{Engine: Concurrent, Explain: true}, "simulation engine"},
		{"modeled budget", Options{Engine: Concurrent, MemoryBudget: 10}, "governors"},
		{"real spill", Options{Engine: Concurrent, MemoryBudgetBytes: 1 << 20}, "governors"},
		{"window", Options{Engine: Concurrent, Window: map[string]int{"R": 1}}, "eviction"},
	}
	for _, tc := range cases {
		if _, err := smallJoin().Prepare(tc.opts); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want contains %q", tc.name, err, tc.want)
		}
	}
}

// TestPreparedSharding checks Reset-based reuse holds with sharded SteMs:
// multiple shards mean per-shard dictionaries, inboxes, and workers all go
// through the reuse path.
func TestPreparedSharding(t *testing.T) {
	p, err := smallJoin().Prepare(Options{Engine: Concurrent, TimeCompression: 0.0001, Shards: 4, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 3 {
			t.Fatalf("execution %d returned %d rows, want 3", i, len(res.Rows))
		}
	}
}
