package stems

import (
	"sort"
	"testing"
	"time"
)

func smallJoin() *Query {
	return NewQuery().
		Table("R", Ints("key", "a"), [][]int64{{1, 10}, {2, 20}, {3, 10}}).
		Table("S", Ints("x", "y"), [][]int64{{10, 100}, {20, 200}}).
		Scan("R", time.Millisecond).
		Scan("S", time.Millisecond).
		Where("R.a", "=", "S.x")
}

func keysOf(rows []Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func TestQuickstartJoin(t *testing.T) {
	res, err := smallJoin().Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	if v, ok := res.Rows[0].Get("S.y"); !ok || v.K == 0 {
		t.Error("Get failed")
	}
	if _, ok := res.Rows[0].Get("Z.q"); ok {
		t.Error("Get on unknown ref must fail")
	}
	if res.Stats.RoutingSteps == 0 || res.Stats.SteMBuilds != 5 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestEnginesAgree(t *testing.T) {
	simRes, err := smallJoin().Run(Options{Engine: Sim})
	if err != nil {
		t.Fatal(err)
	}
	conRes, err := smallJoin().Run(Options{Engine: Concurrent, TimeCompression: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	a, b := keysOf(simRes.Rows), keysOf(conRes.Rows)
	if len(a) != len(b) {
		t.Fatalf("engines disagree: %d vs %d rows", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestConcurrentBatchSizesAgree(t *testing.T) {
	want := keysOf(mustRun(t, smallJoin(), Options{Engine: Sim}).Rows)
	for _, bs := range []int{1, 2, 64} {
		res, err := smallJoin().Run(Options{Engine: Concurrent, TimeCompression: 0.0001, BatchSize: bs})
		if err != nil {
			t.Fatalf("BatchSize %d: %v", bs, err)
		}
		got := keysOf(res.Rows)
		if len(got) != len(want) {
			t.Fatalf("BatchSize %d: %d rows, want %d", bs, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("BatchSize %d: row %d = %q, want %q", bs, i, got[i], want[i])
			}
		}
	}
}

func TestShardCountsAgree(t *testing.T) {
	want := keysOf(mustRun(t, smallJoin(), Options{Engine: Sim}).Rows)
	for _, sh := range []int{1, 2, 8} {
		res, err := smallJoin().Run(Options{Engine: Concurrent, TimeCompression: 0.0001, Shards: sh})
		if err != nil {
			t.Fatalf("Shards %d: %v", sh, err)
		}
		got := keysOf(res.Rows)
		if len(got) != len(want) {
			t.Fatalf("Shards %d: %d rows, want %d", sh, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Shards %d: row %d = %q, want %q", sh, i, got[i], want[i])
			}
		}
	}
}

func mustRun(t *testing.T, q *Query, opts Options) *Result {
	t.Helper()
	res, err := q.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAllPoliciesAgree(t *testing.T) {
	var base []string
	for _, p := range []Policy{Fixed, Lottery, BenefitCost} {
		res, err := smallJoin().Run(Options{Policy: p, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		got := keysOf(res.Rows)
		if base == nil {
			base = got
			continue
		}
		if len(got) != len(base) {
			t.Fatalf("policy %v: %d rows, want %d", p, len(got), len(base))
		}
	}
}

func TestSelectionsAndConstants(t *testing.T) {
	res, err := smallJoin().Where("R.key", "<=", "2").Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
}

func TestIndexAccessMethod(t *testing.T) {
	q := NewQuery().
		Table("R", Ints("key", "a"), [][]int64{{1, 10}, {2, 20}}).
		Table("S", Ints("x", "y"), [][]int64{{10, 100}, {20, 200}}).
		Scan("R", time.Millisecond).
		Index("S", []string{"x"}, 5*time.Millisecond, 1).
		Where("R.a", "=", "S.x")
	res, err := q.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	if res.Stats.IndexProbes == 0 {
		t.Error("index AM was never probed")
	}
}

func TestHybridOption(t *testing.T) {
	q := NewQuery().
		Table("R", Ints("key"), [][]int64{{0}, {1}, {2}, {3}}).
		Table("T", Ints("key"), [][]int64{{0}, {1}, {2}, {3}}).
		Scan("R", time.Millisecond).
		Scan("T", 2*time.Millisecond).
		Index("T", []string{"key"}, 3*time.Millisecond, 1).
		Where("R.key", "=", "T.key")
	res, err := q.Run(Options{BounceForIndexChoice: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("hybrid got %d rows, want 4", len(res.Rows))
	}
}

func TestWindowedRun(t *testing.T) {
	rows := make([][]int64, 40)
	for i := range rows {
		rows[i] = []int64{int64(i), int64(i % 4)}
	}
	q := func() *Query {
		return NewQuery().
			Table("A", Ints("seq", "g"), rows).
			Table("B", Ints("seq", "g"), rows).
			Scan("A", time.Millisecond).
			Scan("B", time.Millisecond).
			Where("A.g", "=", "B.g")
	}
	full, err := q().Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	win, err := q().Run(Options{Window: map[string]int{"A": 4, "B": 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(win.Rows) >= len(full.Rows) {
		t.Errorf("windowed run must produce fewer results: %d vs %d", len(win.Rows), len(full.Rows))
	}
}

func TestSkipBuildOption(t *testing.T) {
	res, err := smallJoin().Run(Options{SkipBuildTable: "R"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("skip-build got %d rows, want 3", len(res.Rows))
	}
	// R singletons never built: only S rows materialize.
	if res.Stats.SteMBuilds != 2 {
		t.Errorf("SteMBuilds = %d, want 2", res.Stats.SteMBuilds)
	}
}

func TestMirrorDedup(t *testing.T) {
	rows := [][]int64{{1, 10}, {2, 20}, {3, 10}}
	q := NewQuery().
		Table("R", Ints("key", "a"), rows).
		Table("S", Ints("x", "y"), [][]int64{{10, 100}, {20, 200}}).
		Scan("R", time.Millisecond).
		Mirror("R", rows, 3*time.Millisecond).
		Scan("S", time.Millisecond).
		Where("R.a", "=", "S.x")
	res, err := q.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("mirrored sources must still produce 3 rows, got %d", len(res.Rows))
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []*Query{
		NewQuery().Table("R", Ints("a"), nil).Table("R", Ints("a"), nil),
		NewQuery().Scan("missing", time.Millisecond),
		NewQuery().Table("R", Ints("a"), [][]int64{{1}}).Index("R", []string{"z"}, 0, 1),
		NewQuery().Table("R", Ints("a"), [][]int64{{1}}).Scan("R", time.Millisecond).Where("R.z", "=", "1"),
		NewQuery().Table("R", Ints("a"), [][]int64{{1}}).Scan("R", time.Millisecond).Where("R.a", "~", "1"),
	}
	for i, q := range cases {
		if _, err := q.Build(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestOnResultStreaming(t *testing.T) {
	var streamed int
	_, err := smallJoin().Run(Options{OnResult: func(Row) { streamed++ }})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != 3 {
		t.Errorf("streamed %d rows, want 3", streamed)
	}
}

func TestStringValues(t *testing.T) {
	q := NewQuery().
		TableValues("R", []Col{{Name: "id"}, {Name: "name", Str: true}},
			[][]Value{{Int(1), Str("ann")}, {Int(2), Str("bob")}}).
		Scan("R", time.Millisecond).
		Where("R.name", "=", "ann")
	res, err := q.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("string selection got %d rows", len(res.Rows))
	}
}
