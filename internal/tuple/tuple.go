// Package tuple implements the tuple model of the paper: tuples composed of
// base-table components (Definition 1), spans, and the per-tuple TupleState
// the eddy uses to track query progress (Section 2.1.1), including the
// done-bit bitmap of passed predicates, build-timestamps used by the
// TimeStamp routing constraint, and prior-prober bookkeeping used by the
// ProbeCompletion constraint.
package tuple

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/value"
)

// Row is the projection of a tuple on one base table: a single base-table
// component (Definition 1).
type Row []value.V

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Equal reports value-equality of two rows.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Key returns a stable string encoding of the row. Distinct rows always map
// to distinct keys; the test oracle relies on that injectivity. Engine paths
// use Hash64 instead, which allocates nothing.
func (r Row) Key() string {
	var b strings.Builder
	for i, v := range r {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(v.Key())
	}
	return b.String()
}

// Hash64 returns a stable, allocation-free hash of the row: the values
// folded in order into one FNV-1a state. Hashes are not injective — storage
// keyed by them must verify candidates with Equal (hash-with-verify).
func (r Row) Hash64() uint64 {
	h := value.HashSeed
	for _, v := range r {
		h = v.HashInto(h)
	}
	return h
}

// HashCols returns the Hash64 of the projection of r on cols, without
// materializing the projected row.
func (r Row) HashCols(cols []int) uint64 {
	h := value.HashSeed
	for _, c := range cols {
		h = r[c].HashInto(h)
	}
	return h
}

// String renders the row for debugging.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// TableSet is a bitset over the positions of base tables in a query's FROM
// list. Queries may reference at most 64 tables.
type TableSet uint64

// MaxTables is the largest number of base tables a single query may span.
const MaxTables = 64

// Single returns the set containing only table position i.
func Single(i int) TableSet { return TableSet(1) << uint(i) }

// Has reports whether table position i is in the set.
func (s TableSet) Has(i int) bool { return s&Single(i) != 0 }

// With returns s plus table position i.
func (s TableSet) With(i int) TableSet { return s | Single(i) }

// Union returns the union of two sets.
func (s TableSet) Union(o TableSet) TableSet { return s | o }

// Intersects reports whether the two sets share any table.
func (s TableSet) Intersects(o TableSet) bool { return s&o != 0 }

// Contains reports whether every member of o is in s.
func (s TableSet) Contains(o TableSet) bool { return s&o == o }

// Count returns the number of tables in the set.
func (s TableSet) Count() int { return bits.OnesCount64(uint64(s)) }

// All returns the set of table positions {0..n-1}.
func All(n int) TableSet {
	if n >= MaxTables {
		return ^TableSet(0)
	}
	return TableSet(1)<<uint(n) - 1
}

// Members returns the table positions in ascending order. Hot paths use the
// allocation-free Each iterator instead.
func (s TableSet) Members() []int {
	out := make([]int, 0, s.Count())
	for v := uint64(s); v != 0; {
		i := bits.TrailingZeros64(v)
		out = append(out, i)
		v &^= 1 << uint(i)
	}
	return out
}

// Each yields the table positions in ascending order without allocating;
// it is usable directly in a range statement: for i := range s.Each { ... }.
func (s TableSet) Each(yield func(int) bool) {
	for v := uint64(s); v != 0; {
		i := bits.TrailingZeros64(v)
		if !yield(i) {
			return
		}
		v &^= 1 << uint(i)
	}
}

// First returns the smallest table position in the set; it panics if the set
// is empty.
func (s TableSet) First() int {
	if s == 0 {
		panic("tuple: First on empty TableSet")
	}
	return bits.TrailingZeros64(uint64(s))
}

// String renders the set for debugging, e.g. "{0,2}".
func (s TableSet) String() string {
	ms := s.Members()
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = fmt.Sprint(m)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// PredSet is a bitset over predicate IDs: the "donebits" of the paper
// (borrowed from the original eddies design [2]). Queries may carry at most
// 64 predicates.
type PredSet uint64

// SinglePred returns the set containing only predicate i.
func SinglePred(i int) PredSet { return PredSet(1) << uint(i) }

// Has reports whether predicate i is in the set.
func (s PredSet) Has(i int) bool { return s&SinglePred(i) != 0 }

// With returns s plus predicate i.
func (s PredSet) With(i int) PredSet { return s | SinglePred(i) }

// Union returns the union of two predicate sets.
func (s PredSet) Union(o PredSet) PredSet { return s | o }

// Contains reports whether every member of o is in s.
func (s PredSet) Contains(o PredSet) bool { return s&o == o }

// AllPreds returns the set of predicate IDs {0..n-1}.
func AllPreds(n int) PredSet {
	if n >= 64 {
		return ^PredSet(0)
	}
	return PredSet(1)<<uint(n) - 1
}

// Timestamp is the global, monotonically increasing build timestamp of the
// TimeStamp constraint (Section 3.1). InfTS is the timestamp of a singleton
// that has not yet been built into its SteM ("Before building, ts(t) is
// defined to be ∞").
type Timestamp = uint64

// InfTS is the timestamp of a not-yet-built singleton: +∞.
const InfTS Timestamp = ^Timestamp(0)

// EOTInfo marks a tuple as an End-Of-Transmission tuple (Section 2.1.3). An
// EOT tuple from an AM on table T encodes the probing predicate: for index
// lookups, BoundCols lists the index key columns whose values in the row are
// real; every other field holds the EOT marker value. A scan EOT has no bound
// columns (predicate "true": the whole table has been transmitted).
type EOTInfo struct {
	// Table is the query-position of the table the EOT describes.
	Table int
	// BoundCols are the column indexes (within the table) that carry real
	// values; nil for a scan EOT.
	BoundCols []int
}

// Tuple is a unit of dataflow: one or more base-table components plus the
// TupleState the eddy and the modules consult while routing.
type Tuple struct {
	// Comp holds the base-table components, indexed by table position in the
	// query FROM list; nil entries are tables the tuple does not span.
	Comp []Row
	// Span is the set of tables the tuple spans.
	Span TableSet
	// Done is the set of predicates the tuple has passed (donebits).
	Done PredSet
	// Built is the set of tables whose component of this tuple has been
	// built into the corresponding SteM.
	Built TableSet
	// CompTS holds the build timestamp of each component (InfTS before the
	// component is built). The tuple's timestamp is the max over spanned
	// components, per the TimeStamp constraint.
	CompTS []Timestamp

	// Seed marks the special empty seed tuple used to initialize scan AMs
	// (Section 2.1.3). SeedAM identifies the destination access module.
	Seed   bool
	SeedAM int

	// EOT is non-nil for End-Of-Transmission tuples.
	EOT *EOTInfo

	// PriorProber is set once the tuple has been bounced back after probing
	// into a SteM (Definition 3). ProbeTable is its probe completion table.
	// AMProbed is set once it has probed one of its probe completion AMs,
	// after which the eddy may remove it from the dataflow.
	PriorProber bool
	ProbeTable  int
	AMProbed    bool

	// LastProbeMatches records how many concatenated matches the tuple's most
	// recent SteM probe produced. Routing policies use it when deciding what
	// to do with a bounced-back probe: a bounced tuple that already found its
	// match (in an equi-key join) gains nothing from an index probe.
	LastProbeMatches int

	// LastMatchTS supports the relaxed BuildFirst mode of Section 3.5: on a
	// repeated probe into the same SteM, only matches with a strictly larger
	// build timestamp join, preventing duplicates across repeats.
	LastMatchTS Timestamp

	// Visits counts how many times the tuple has been routed to each module,
	// enforcing BoundedRepetition. It is sized lazily by the router.
	Visits []uint16
}

// blockArity is the largest query arity whose tuples are block-allocated: a
// tupleBlock co-allocates the Tuple header with its component and timestamp
// storage, collapsing the three allocations of a fresh tuple into one for
// the common small-join case.
const blockArity = 4

type tupleBlock struct {
	t    Tuple
	comp [blockArity]Row
	ts   [blockArity]Timestamp
}

// newTuple returns a zeroed n-ary tuple, block-allocated when n permits.
func newTuple(n int) *Tuple {
	if n <= blockArity {
		b := &tupleBlock{}
		b.t.Comp = b.comp[:n:n]
		b.t.CompTS = b.ts[:n:n]
		return &b.t
	}
	return &Tuple{Comp: make([]Row, n), CompTS: make([]Timestamp, n)}
}

// NewSingleton returns a singleton tuple (Definition 2) for table position
// table out of n query tables.
func NewSingleton(n, table int, row Row) *Tuple {
	t := newTuple(n)
	for i := range t.CompTS {
		t.CompTS[i] = InfTS
	}
	t.Span = Single(table)
	t.Comp[table] = row
	return t
}

// NewSeed returns the seed tuple that initializes the scan AM with module id
// am (Section 2.1.3).
func NewSeed(n, am int) *Tuple {
	t := newTuple(n)
	for i := range t.CompTS {
		t.CompTS[i] = InfTS
	}
	t.Seed = true
	t.SeedAM = am
	return t
}

// NewEOT returns an EOT tuple for the given table. The row carries the bound
// values in the bound columns and the EOT marker elsewhere.
func NewEOT(n, table int, row Row, boundCols []int) *Tuple {
	t := NewSingleton(n, table, row)
	t.EOT = &EOTInfo{Table: table, BoundCols: boundCols}
	return t
}

// IsSingleton reports whether the tuple spans exactly one base table.
func (t *Tuple) IsSingleton() bool { return t.Span.Count() == 1 }

// SingleTable returns the table position of a singleton tuple; it panics if
// the tuple is not a singleton.
func (t *Tuple) SingleTable() int {
	if !t.IsSingleton() {
		panic("tuple: SingleTable on non-singleton " + t.Span.String())
	}
	return t.Span.First()
}

// TS returns the tuple's timestamp: the maximum build timestamp over its
// spanned components ("the timestamp of its last arriving base-table
// component"). A tuple with any unbuilt component has timestamp InfTS.
func (t *Tuple) TS() Timestamp {
	var max Timestamp
	for i := range t.Span.Each {
		ts := t.CompTS[i]
		if ts == InfTS {
			return InfTS
		}
		if ts > max {
			max = ts
		}
	}
	return max
}

// Concat returns a new tuple concatenating t with m. The two tuples must span
// disjoint table sets. Done bits, Built bits, and component timestamps are
// merged. The result is not a prior prober even if t was; routing state does
// not carry across concatenation.
func (t *Tuple) Concat(m *Tuple) *Tuple {
	if t.Span.Intersects(m.Span) {
		panic("tuple: Concat of overlapping spans " + t.Span.String() + " and " + m.Span.String())
	}
	out := newTuple(len(t.Comp))
	out.Span = t.Span.Union(m.Span)
	out.Done = t.Done.Union(m.Done)
	out.Built = t.Built.Union(m.Built)
	copy(out.Comp, t.Comp)
	copy(out.CompTS, t.CompTS)
	for i := range m.Span.Each {
		out.Comp[i] = m.Comp[i]
		out.CompTS[i] = m.CompTS[i]
	}
	return out
}

// ConcatRow returns a new tuple extending t with a single built base-table
// component: row at table position table with build timestamp ts. It is the
// common case of Concat on SteM and AM probe paths — concatenating a stored
// singleton — without materializing the singleton tuple first. It panics if
// t already spans table.
func (t *Tuple) ConcatRow(table int, row Row, ts Timestamp) *Tuple {
	return t.ConcatRowInto(nil, table, row, ts)
}

// ConcatRowInto is ConcatRow writing into dst, reusing dst's component
// slices when they have capacity; dst may be nil, in which case a fresh
// tuple is allocated. Probe paths recycle concatenations that fail predicate
// verification through dst, so a probe with many non-qualifying candidates
// allocates once, not once per candidate. The returned tuple's routing state
// is reset, exactly as Concat resets it.
func (t *Tuple) ConcatRowInto(dst *Tuple, table int, row Row, ts Timestamp) *Tuple {
	if t.Span.Has(table) {
		panic("tuple: ConcatRow onto already-spanned table " + Single(table).String())
	}
	n := len(t.Comp)
	if dst == nil || cap(dst.Comp) < n || cap(dst.CompTS) < n {
		dst = newTuple(n)
	} else {
		*dst = Tuple{Comp: dst.Comp[:n], CompTS: dst.CompTS[:n]}
	}
	copy(dst.Comp, t.Comp)
	copy(dst.CompTS, t.CompTS)
	dst.Comp[table] = row
	dst.CompTS[table] = ts
	dst.Span = t.Span.With(table)
	dst.Done = t.Done
	dst.Built = t.Built.With(table)
	return dst
}

// Value returns the value of the given column of the given table's component.
// It panics if the tuple does not span the table.
func (t *Tuple) Value(table, col int) value.V {
	r := t.Comp[table]
	if r == nil {
		panic(fmt.Sprintf("tuple: Value(%d,%d) on tuple spanning %s", table, col, t.Span))
	}
	return r[col]
}

// ResultKey returns a canonical encoding of the tuple's components, used to
// compare result sets against the brute-force oracle in tests.
func (t *Tuple) ResultKey() string {
	ms := t.Span.Members()
	parts := make([]string, 0, len(ms))
	for _, i := range ms {
		parts = append(parts, fmt.Sprintf("%d:%s", i, t.Comp[i].Key()))
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// String renders the tuple for debugging.
func (t *Tuple) String() string {
	if t.Seed {
		return fmt.Sprintf("seed(am=%d)", t.SeedAM)
	}
	var b strings.Builder
	if t.EOT != nil {
		fmt.Fprintf(&b, "eot[T%d]", t.EOT.Table)
	}
	b.WriteString(t.Span.String())
	for i := range t.Span.Each {
		b.WriteString(t.Comp[i].String())
	}
	if t.PriorProber {
		fmt.Fprintf(&b, "!pp(T%d)", t.ProbeTable)
	}
	return b.String()
}
