package tuple

import (
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func row(vs ...int64) Row {
	r := make(Row, len(vs))
	for i, v := range vs {
		r[i] = value.NewInt(v)
	}
	return r
}

func TestTableSetOperations(t *testing.T) {
	s := Single(0).With(2).With(5)
	if !s.Has(0) || !s.Has(2) || !s.Has(5) || s.Has(1) {
		t.Fatalf("membership wrong: %v", s)
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d, want 3", s.Count())
	}
	if got := s.Members(); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 5 {
		t.Errorf("Members = %v", got)
	}
	if s.String() != "{0,2,5}" {
		t.Errorf("String = %q", s.String())
	}
	if !All(3).Contains(Single(2)) || All(3).Has(3) {
		t.Error("All(3) wrong")
	}
	if !s.Intersects(Single(2)) || s.Intersects(Single(1)) {
		t.Error("Intersects wrong")
	}
}

func TestTableSetAlgebraProperties(t *testing.T) {
	union := func(a, b uint16) bool {
		sa, sb := TableSet(a), TableSet(b)
		u := sa.Union(sb)
		return u.Contains(sa) && u.Contains(sb) && u.Count() <= sa.Count()+sb.Count()
	}
	if err := quick.Check(union, nil); err != nil {
		t.Error(err)
	}
	members := func(a uint16) bool {
		s := TableSet(a)
		back := TableSet(0)
		for _, m := range s.Members() {
			back = back.With(m)
		}
		return back == s && len(s.Members()) == s.Count()
	}
	if err := quick.Check(members, nil); err != nil {
		t.Error(err)
	}
}

func TestPredSet(t *testing.T) {
	p := SinglePred(1).With(3)
	if !p.Has(1) || !p.Has(3) || p.Has(0) {
		t.Error("PredSet membership wrong")
	}
	if !AllPreds(4).Contains(p) || AllPreds(2).Contains(p) {
		t.Error("AllPreds containment wrong")
	}
}

func TestSingletonAndSpan(t *testing.T) {
	s := NewSingleton(3, 1, row(7, 8))
	if !s.IsSingleton() || s.SingleTable() != 1 {
		t.Fatal("singleton misclassified")
	}
	if s.Span != Single(1) {
		t.Errorf("Span = %v", s.Span)
	}
	if s.TS() != InfTS {
		t.Error("unbuilt singleton must have infinite timestamp")
	}
	s.CompTS[1] = 42
	if s.TS() != 42 {
		t.Errorf("TS = %d, want 42", s.TS())
	}
	if got := s.Value(1, 1); !got.Equal(value.NewInt(8)) {
		t.Errorf("Value = %v", got)
	}
}

func TestConcat(t *testing.T) {
	a := NewSingleton(3, 0, row(1))
	a.CompTS[0] = 5
	a.Built = Single(0)
	a.Done = SinglePred(0)
	b := NewSingleton(3, 2, row(9))
	b.CompTS[2] = 7
	b.Built = Single(2)
	b.Done = SinglePred(1)

	c := a.Concat(b)
	if c.Span != Single(0).With(2) {
		t.Errorf("Span = %v", c.Span)
	}
	if c.TS() != 7 {
		t.Errorf("TS = %d, want max(5,7)=7", c.TS())
	}
	if !c.Done.Has(0) || !c.Done.Has(1) {
		t.Error("done bits not merged")
	}
	if !c.Built.Contains(Single(0).With(2)) {
		t.Error("built bits not merged")
	}
	// Originals untouched.
	if a.Span != Single(0) || b.Span != Single(2) {
		t.Error("Concat mutated inputs")
	}
}

func TestConcatPanicsOnOverlap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Concat of overlapping spans must panic")
		}
	}()
	a := NewSingleton(2, 0, row(1))
	b := NewSingleton(2, 0, row(2))
	a.Concat(b)
}

func TestConcatTimestampProperties(t *testing.T) {
	f := func(ts0, ts1 uint32) bool {
		a := NewSingleton(2, 0, row(1))
		b := NewSingleton(2, 1, row(2))
		a.CompTS[0] = Timestamp(ts0)
		b.CompTS[1] = Timestamp(ts1)
		c := a.Concat(b)
		max := Timestamp(ts0)
		if Timestamp(ts1) > max {
			max = Timestamp(ts1)
		}
		return c.TS() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowKeyInjective(t *testing.T) {
	f := func(a, b []int64) bool {
		ra, rb := row(a...), row(b...)
		return (ra.Key() == rb.Key()) == ra.Equal(rb)
	}
	cfg := &quick.Config{MaxCount: 1000, Values: nil}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestResultKeyIgnoresArrivalOrder(t *testing.T) {
	a := NewSingleton(2, 0, row(1))
	b := NewSingleton(2, 1, row(2))
	ab := a.Concat(b)
	ba := b.Concat(a)
	if ab.ResultKey() != ba.ResultKey() {
		t.Errorf("ResultKey differs by concat order: %q vs %q", ab.ResultKey(), ba.ResultKey())
	}
}

func TestSeedAndEOT(t *testing.T) {
	s := NewSeed(2, 3)
	if !s.Seed || s.SeedAM != 3 {
		t.Error("seed fields wrong")
	}
	e := NewEOT(2, 1, Row{value.NewInt(5), value.NewEOT()}, []int{0})
	if e.EOT == nil || e.EOT.Table != 1 || len(e.EOT.BoundCols) != 1 {
		t.Error("EOT fields wrong")
	}
	if e.String() == "" || s.String() == "" {
		t.Error("String must render")
	}
}

func TestSingleTablePanicsOnComposite(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SingleTable on composite must panic")
		}
	}()
	a := NewSingleton(2, 0, row(1)).Concat(NewSingleton(2, 1, row(2)))
	a.SingleTable()
}

func TestRowClone(t *testing.T) {
	r := row(1, 2)
	c := r.Clone()
	c[0] = value.NewInt(99)
	if !r[0].Equal(value.NewInt(1)) {
		t.Error("Clone shares storage")
	}
}

// TestEachMatchesMembers: the allocation-free iterator visits exactly the
// Members sequence, and supports early exit.
func TestEachMatchesMembers(t *testing.T) {
	sets := []TableSet{0, Single(0), Single(3).With(7), All(5), ^TableSet(0)}
	for _, s := range sets {
		var got []int
		for i := range s.Each {
			got = append(got, i)
		}
		want := s.Members()
		if len(got) != len(want) {
			t.Fatalf("Each over %s yielded %v, want %v", s, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Each over %s yielded %v, want %v", s, got, want)
			}
		}
	}
	n := 0
	for range All(8).Each {
		n++
		if n == 3 {
			break
		}
	}
	if n != 3 {
		t.Errorf("early exit ran %d iterations, want 3", n)
	}
}

func TestFirst(t *testing.T) {
	if got := Single(5).With(9).First(); got != 5 {
		t.Errorf("First = %d, want 5", got)
	}
}

// TestRowHash64 ties the row hash to value-level chaining and checks
// HashCols projects correctly.
func TestRowHash64(t *testing.T) {
	r := Row{value.NewInt(1), value.NewStr("x"), value.NewInt(2)}
	h := value.HashSeed
	for _, v := range r {
		h = v.HashInto(h)
	}
	if r.Hash64() != h {
		t.Error("Row.Hash64 does not chain value hashes")
	}
	if r.HashCols([]int{0, 2}) != (Row{r[0], r[2]}).Hash64() {
		t.Error("HashCols differs from hashing the projected row")
	}
	if r.Hash64() == (Row{r[1], r[0], r[2]}).Hash64() {
		t.Error("row hash ignores order")
	}
}

// TestConcatRowMatchesConcat: ConcatRow must produce exactly the tuple that
// Concat with a built singleton produces, and ConcatRowInto must reuse the
// destination's slices.
func TestConcatRowMatchesConcat(t *testing.T) {
	base := NewSingleton(3, 0, Row{value.NewInt(1)})
	base.CompTS[0] = 5
	base.Built = Single(0)
	base.Done = SinglePred(2)

	row := Row{value.NewInt(9)}
	m := NewSingleton(3, 2, row)
	m.CompTS[2] = 7
	m.Built = Single(2)

	want := base.Concat(m)
	got := base.ConcatRow(2, row, 7)
	if got.Span != want.Span || got.Done != want.Done || got.Built != want.Built {
		t.Fatalf("ConcatRow state = %v/%v/%v, want %v/%v/%v",
			got.Span, got.Done, got.Built, want.Span, want.Done, want.Built)
	}
	for i := range want.Comp {
		if !got.Comp[i].Equal(want.Comp[i]) || got.CompTS[i] != want.CompTS[i] {
			t.Fatalf("component %d differs", i)
		}
	}

	reused := base.ConcatRowInto(got, 1, Row{value.NewInt(3)}, 8)
	if reused != got {
		t.Error("ConcatRowInto did not reuse the destination tuple")
	}
	if reused.Span != Single(0).With(1) || reused.CompTS[1] != 8 {
		t.Errorf("reused concat has span %v ts %d", reused.Span, reused.CompTS[1])
	}
	if reused.Comp[2] != nil {
		t.Error("reused concat leaked a stale component")
	}

	defer func() {
		if recover() == nil {
			t.Error("ConcatRow onto a spanned table must panic")
		}
	}()
	base.ConcatRow(0, row, 1)
}
