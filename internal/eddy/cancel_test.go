package eddy

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/source"
)

// waitGoroutines polls until the goroutine count returns to the baseline —
// the zero-leak contract of RunContext's shutdown path.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("leaked goroutines: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunContextCancelMidQuery cancels a slow run mid-route and verifies
// the engine returns promptly with a wrapped context error and unwinds
// every goroutine it started.
func TestRunContextCancelMidQuery(t *testing.T) {
	baseline := runtime.NumGoroutine()
	q := bigTwoTableQuery(t)
	r, err := NewRouter(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Uncompressed clock: the 400 millisecond-paced scan rows take ~400ms
	// of real time, so a 5ms deadline always fires while tuples are in
	// flight (the small twoTableQuery can finish under 5ms and flake).
	eng := NewConcurrent(r, clock.NewReal(1))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = eng.RunContext(ctx)
	if err == nil {
		t.Fatal("want cancellation error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error does not wrap context.DeadlineExceeded: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
	waitGoroutines(t, baseline)
}

// TestRunLeavesNoGoroutines verifies a normally completed run also unwinds
// everything — including the event-channel drainer, which earlier versions
// leaked once per run.
func TestRunLeavesNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		q := twoTableQuery(t)
		r, err := NewRouter(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewConcurrent(r, clock.NewReal(0.00002)).Run(); err != nil {
			t.Fatal(err)
		}
	}
	waitGoroutines(t, baseline)
}

// TestRunContextPreCanceled: a context canceled before Run starts still
// returns an error and leaks nothing.
func TestRunContextPreCanceled(t *testing.T) {
	baseline := runtime.NumGoroutine()
	q := twoTableQuery(t)
	r, err := NewRouter(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewConcurrent(r, clock.NewReal(1)).RunContext(ctx); err == nil {
		t.Fatal("want cancellation error")
	}
	waitGoroutines(t, baseline)
}

// bigTwoTableQuery joins a 400-row table against a 50-row one — enough
// simulation events (thousands) that the simulator's every-256-events
// context poll is guaranteed to run.
func bigTwoTableQuery(t *testing.T) *query.Q {
	t.Helper()
	rRows := make([][]int64, 400)
	for i := range rRows {
		rRows[i] = []int64{int64(i), int64(i % 50)}
	}
	sRows := make([][]int64, 50)
	for i := range sRows {
		sRows[i] = []int64{int64(i), int64(i) * 10}
	}
	rT := schema.MustTable("R", schema.IntCol("key"), schema.IntCol("a"))
	sT := schema.MustTable("S", schema.IntCol("x"), schema.IntCol("y"))
	return query.MustNew(
		[]*schema.Table{rT, sT},
		[]pred.P{pred.EquiJoin(0, 1, 1, 0)},
		[]query.AMDecl{
			scanAM(0, source.MustTable(rT, rowsOf(rRows)), clock.Millisecond),
			scanAM(1, source.MustTable(sT, rowsOf(sRows)), clock.Millisecond),
		},
	)
}

// TestSimCtxCancel verifies the simulator's polling cancellation without
// touching its default (nil-Ctx, bit-identical) behavior.
func TestSimCtxCancel(t *testing.T) {
	r, err := NewRouter(bigTwoTableQuery(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSim(r)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.Run(); err != nil {
		t.Fatalf("nil-Ctx run must be unaffected: %v", err)
	}

	r2, err := NewRouter(bigTwoTableQuery(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim2 := NewSim(r2)
	sim2.Ctx = ctx
	if _, err := sim2.Run(); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled sim run: err = %v, want context.Canceled", err)
	}
}
