// concurrent.go is the channel-based engine: every module runs in its own
// goroutine (a worker pool sized by Parallel()), exchanging batches of
// tuples with the eddy over channels — the paper's Telegraph setting, where
// "each module runs asynchronously in a separate thread". Service costs and
// source latencies elapse on a real clock, optionally compressed so the
// paper's multi-minute runs finish in milliseconds.
//
// Dataflow is batch-at-a-time: the eddy coalesces routed tuples into
// per-module batches of up to BatchSize, so channel sends, inbox wakeups,
// module locking, and policy decisions amortize across the batch. BatchSize
// 1 reproduces the original tuple-at-a-time behavior exactly.
//
// The engine is not deterministic (that is the simulator's job); it is the
// deployment-shaped engine, and the race-exercising tests run the same
// correctness oracle against it.
package eddy

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/flow"
	"repro/internal/policy"
	"repro/internal/tuple"
)

// DefaultBatchSize is the number of tuples the eddy coalesces into one
// module batch when Concurrent.BatchSize is left zero.
const DefaultBatchSize = 64

// batchPool recycles flow.Batch shells (and their tuple slices) between the
// eddy and the module workers. A batch is returned to the pool by whichever
// side consumes it: workers recycle inbox batches after processing, the eddy
// loop recycles event batches after draining them into staging. Batches held
// in a closed inbox at shutdown are simply dropped.
var batchPool = sync.Pool{New: func() any { return &flow.Batch{} }}

func getBatch() *flow.Batch {
	b := batchPool.Get().(*flow.Batch)
	b.Reset()
	return b
}

func getBatchOf(t *tuple.Tuple) *flow.Batch {
	b := getBatch()
	b.Add(t)
	return b
}

func putBatch(b *flow.Batch) {
	b.Reset()
	batchPool.Put(b)
}

// inbox is an unbounded FIFO of batches; unboundedness removes the
// eddy↔module send cycle that could otherwise deadlock bounded channels.
type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*flow.Batch
	tuples int
	closed bool
}

func newInbox() *inbox {
	b := &inbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *inbox) push(batch *flow.Batch) {
	b.mu.Lock()
	b.items = append(b.items, batch)
	b.tuples += batch.Len()
	b.mu.Unlock()
	b.cond.Signal()
}

func (b *inbox) pop() (*flow.Batch, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.items) == 0 && !b.closed {
		b.cond.Wait()
	}
	if len(b.items) == 0 {
		return nil, false
	}
	batch := b.items[0]
	b.items = b.items[1:]
	b.tuples -= batch.Len()
	return batch, true
}

// len returns the number of tuples (not batches) waiting.
func (b *inbox) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tuples
}

func (b *inbox) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// eddyEvent is a message to the eddy goroutine: a batch of tuples to route
// or policy feedback from a module worker (policies are not thread-safe, so
// all policy calls happen on the eddy goroutine).
type eddyEvent struct {
	b  *flow.Batch
	fb *policy.Feedback
}

// Concurrent drives a Routing with goroutines and channels on a real clock.
type Concurrent struct {
	r   Routing
	clk clock.Clock

	// BatchSize caps the number of tuples the eddy coalesces into one
	// channel send to a module; 0 defaults to DefaultBatchSize at Run, and
	// 1 reproduces per-tuple dataflow exactly. Set before Run.
	BatchSize int
	// OnOutput is called (on the eddy goroutine) for each result.
	OnOutput func(t *tuple.Tuple, at clock.Time)
	// WallTimeout aborts the run after this much wall time; 0 disables. The
	// run returns the results produced so far plus an error.
	WallTimeout time.Duration

	events   chan eddyEvent
	inboxes  []*inbox
	inflight atomic.Int64
	costEWMA []atomic.Int64 // per-module EWMA service cost per tuple, ns

	// pend, staging, and decisions are eddy-goroutine-only: the per-module
	// coalescing buffers, the reused routing batch incoming tuples drain
	// into, and the reused RouteBatch scratch. pend is keyed by the
	// tuples' span within each module, so every released batch is
	// span-homogeneous and its policy feedback attributes to one tuplestate
	// signature. batchCap is the per-module coalescing limit: BatchSize for
	// single-server modules, 1 for modules with internal parallelism
	// (batching those would serialize service their Parallel() worker pool
	// is meant to overlap — e.g. asynchronous index lookups).
	pend      []map[tuple.TableSet]*flow.Batch
	pendCount []int
	batchCap  []int
	staging   *flow.Batch
	decisions []Decision

	mu      sync.Mutex
	outputs []Output
	errOnce sync.Once
	err     error
}

// NewConcurrent prepares a concurrent run. clk nil defaults to a real clock
// compressed 1000× (one virtual second per wall millisecond).
func NewConcurrent(r Routing, clk clock.Clock) *Concurrent {
	if clk == nil {
		clk = clock.NewReal(0.001)
	}
	return &Concurrent{
		r:        r,
		clk:      clk,
		events:   make(chan eddyEvent, 1024),
		costEWMA: make([]atomic.Int64, len(r.Modules())),
	}
}

// Now implements policy.Env.
func (c *Concurrent) Now() clock.Time { return c.clk.Now() }

// Backlog implements policy.Env.
func (c *Concurrent) Backlog(mod int) clock.Duration {
	par := c.r.Modules()[mod].Parallel()
	if par == 0 {
		return 0
	}
	waiting := c.inboxes[mod].len() + c.pendCount[mod]
	return clock.Duration(int64(waiting) * c.costEWMA[mod].Load() / int64(par))
}

// Run executes the query to completion and returns the results in output
// order. It is safe to call once.
func (c *Concurrent) Run() ([]Output, error) {
	if c.BatchSize <= 0 {
		c.BatchSize = DefaultBatchSize
	}
	mods := c.r.Modules()
	c.inboxes = make([]*inbox, len(mods))
	c.pend = make([]map[tuple.TableSet]*flow.Batch, len(mods))
	c.pendCount = make([]int, len(mods))
	c.batchCap = make([]int, len(mods))
	c.staging = flow.NewBatch(c.BatchSize)
	var wg sync.WaitGroup
	for i, m := range mods {
		c.inboxes[i] = newInbox()
		c.pend[i] = make(map[tuple.TableSet]*flow.Batch)
		if m.Parallel() == 1 {
			c.batchCap[i] = c.BatchSize
		} else {
			c.batchCap[i] = 1
		}
		workers := m.Parallel()
		if workers == 0 {
			workers = 64
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go c.worker(i, &wg)
		}
	}

	seeds := c.r.Seeds()
	c.inflight.Store(int64(len(seeds)))
	if len(seeds) > 0 {
		go func() {
			for _, s := range seeds {
				c.events <- eddyEvent{b: getBatchOf(s)}
			}
		}()

		var timeout <-chan time.Time
		if c.WallTimeout > 0 {
			tm := time.NewTimer(c.WallTimeout)
			defer tm.Stop()
			timeout = tm.C
		}

		timedOut := func() {
			c.errOnce.Do(func() {
				c.mu.Lock()
				c.err = fmt.Errorf("eddy: wall timeout after %v with %d tuples in flight",
					c.WallTimeout, c.inflight.Load())
				c.mu.Unlock()
			})
		}

		// The eddy goroutine: the only caller of RouteBatch/Choose/Observe.
		// Incoming tuples drain into the staging batch and are routed once
		// it reaches BatchSize or the event channel momentarily empties, so
		// routing (and the policy) sees the widest batches the current load
		// can supply.
	loop:
		for {
			var ev eddyEvent
			select {
			case ev = <-c.events:
			case <-timeout:
				// Checked here too so sustained event traffic cannot
				// starve the watchdog.
				timedOut()
				break loop
			default:
				// Nothing immediately pending: route what is staged, then
				// release the coalescing buffers before blocking, so the
				// tuples held there can produce the events we are about to
				// wait for.
				c.routeStaged()
				c.flushAll()
				if c.inflight.Load() == 0 {
					break loop
				}
				select {
				case ev = <-c.events:
				case <-timeout:
					timedOut()
					break loop
				}
			}
			if ev.fb != nil {
				if ev.fb.Emitted >= 0 {
					c.r.Policy().Observe(*ev.fb)
				}
			} else {
				for _, t := range ev.b.Tuples {
					c.staging.Add(t)
					if c.staging.Len() >= c.BatchSize {
						c.routeStaged()
					}
				}
				putBatch(ev.b)
			}
			if c.inflight.Load() == 0 {
				break loop
			}
		}
	}

	// Quiescent (or timed out): unblock and stop the workers. A drainer
	// absorbs anything still in flight — feedback from draining workers
	// and, on the timeout path, stragglers from the seeder and delayed
	// emissions — so the channel is intentionally never closed.
	go func() {
		for range c.events {
		}
	}()
	for _, b := range c.inboxes {
		b.close()
	}
	wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.outputs, c.err
}

// routeStaged routes the staged tuples in one RouteBatch call, coalescing
// module-bound tuples into the per-module pending buffers.
func (c *Concurrent) routeStaged() {
	if c.staging.Len() == 0 {
		return
	}
	b := c.staging
	unresolved := int64(b.Len())
	defer func() {
		b.Reset()
		if r := recover(); r != nil {
			c.errOnce.Do(func() {
				c.mu.Lock()
				c.err = fmt.Errorf("eddy: routing panic: %v", r)
				c.mu.Unlock()
			})
			c.inflight.Add(-unresolved)
		}
	}()
	c.decisions = c.r.RouteBatch(b.Tuples, c, c.decisions[:0])
	for i, d := range c.decisions {
		t := b.Tuples[i]
		switch {
		case d.Output:
			now := c.clk.Now()
			c.mu.Lock()
			c.outputs = append(c.outputs, Output{T: t, At: now})
			c.mu.Unlock()
			if c.OnOutput != nil {
				c.OnOutput(t, now)
			}
			c.inflight.Add(-1)
		case d.Drop:
			c.inflight.Add(-1)
		case d.Delay > 0:
			mod, delay, dt := d.Module, d.Delay, t
			go func() {
				<-c.clk.After(delay)
				c.inboxes[mod].push(getBatchOf(dt))
			}()
		default:
			c.enqueue(d.Module, t)
		}
		unresolved--
	}
}

// enqueue adds a tuple to a module's pending batch for the tuple's span,
// releasing the batch once it reaches the module's coalescing cap. Parallel
// modules have cap 1, so their tuples are pushed straight through and their
// worker pools keep overlapping service.
func (c *Concurrent) enqueue(mod int, t *tuple.Tuple) {
	if c.batchCap[mod] <= 1 {
		c.inboxes[mod].push(getBatchOf(t))
		return
	}
	p := c.pend[mod][t.Span]
	if p == nil {
		p = getBatch()
		c.pend[mod][t.Span] = p
	}
	p.Add(t)
	c.pendCount[mod]++
	if p.Len() >= c.batchCap[mod] {
		delete(c.pend[mod], t.Span)
		c.pendCount[mod] -= p.Len()
		c.inboxes[mod].push(p)
	}
}

// flushAll releases every non-empty pending batch.
func (c *Concurrent) flushAll() {
	for mod, spans := range c.pend {
		if len(spans) == 0 {
			continue
		}
		for span, p := range spans {
			delete(spans, span)
			c.inboxes[mod].push(p)
		}
		c.pendCount[mod] = 0
	}
}

func (c *Concurrent) worker(mod int, wg *sync.WaitGroup) {
	defer wg.Done()
	m := flow.Lift(c.r.Modules()[mod])
	for {
		b, ok := c.inboxes[mod].pop()
		if !ok {
			return
		}
		ems, cost := m.ProcessBatch(b, c.clk.Now())
		c.observeCost(mod, cost, b.Len())
		c.clk.Sleep(cost)

		// Account for the net dataflow change before emitting, so the
		// counter can never dip to zero while emissions are pending.
		delta := int64(len(ems)) - int64(b.Len())
		outputs := countNew(b, ems)
		if delta > 0 {
			c.inflight.Add(delta)
		}
		// Batches are span-homogeneous (the eddy coalesces per span), so the
		// first tuple's span signs the whole batch; Visits lets learners
		// normalize the batch totals back to per-visit values.
		fb := policy.Feedback{
			Module: mod, Sig: uint64(b.Tuples[0].Span),
			Outputs: outputs, Emitted: len(ems), Cost: cost, Now: c.clk.Now(),
			Visits: b.Len(),
		}
		putBatch(b)
		var ready *flow.Batch
		for _, em := range ems {
			switch {
			case em.Delay > 0:
				em := em
				go func() {
					<-c.clk.After(em.Delay)
					c.events <- eddyEvent{b: flow.BatchOf(em.T)}
				}()
			case c.BatchSize == 1:
				// Tuple-at-a-time mode: every emission is its own event,
				// exactly as the pre-batching engine sent them.
				c.events <- eddyEvent{b: getBatchOf(em.T)}
			default:
				if ready == nil {
					ready = getBatch()
				}
				ready.Add(em.T)
			}
		}
		if ready != nil {
			c.events <- eddyEvent{b: ready}
		}
		c.events <- eddyEvent{fb: &fb}
		if delta < 0 {
			if c.inflight.Add(delta) == 0 {
				// Wake the eddy loop so it observes quiescence; Emitted -1
				// marks it as a pure wake-up, not real feedback.
				c.events <- eddyEvent{fb: &policy.Feedback{Module: mod, Emitted: -1}}
			}
		}
	}
}

// countNew counts the emissions that are not batch inputs bouncing back —
// the productive output of the batch. Small batches use a linear scan; big
// ones build a one-shot identity set so the count stays O(batch+emissions).
func countNew(b *flow.Batch, ems []flow.Emission) int {
	outputs := 0
	if b.Len() <= 8 {
		for _, em := range ems {
			if !b.Contains(em.T) {
				outputs++
			}
		}
		return outputs
	}
	in := make(map[*tuple.Tuple]struct{}, b.Len())
	for _, t := range b.Tuples {
		in[t] = struct{}{}
	}
	for _, em := range ems {
		if _, ok := in[em.T]; !ok {
			outputs++
		}
	}
	return outputs
}

// observeCost folds a batch's total service cost into the module's
// per-tuple EWMA.
func (c *Concurrent) observeCost(mod int, cost clock.Duration, n int) {
	if n <= 0 {
		return
	}
	per := int64(cost) / int64(n)
	old := c.costEWMA[mod].Load()
	nw := per
	if old != 0 {
		nw = (per + 4*old) / 5
	}
	c.costEWMA[mod].Store(nw)
}
