// concurrent.go is the channel-based engine: every module runs in its own
// goroutine (a worker pool sized by Parallel()), exchanging tuples with the
// eddy over channels — the paper's Telegraph setting, where "each module
// runs asynchronously in a separate thread". Service costs and source
// latencies elapse on a real clock, optionally compressed so the paper's
// multi-minute runs finish in milliseconds.
//
// The engine is not deterministic (that is the simulator's job); it is the
// deployment-shaped engine, and the race-exercising tests run the same
// correctness oracle against it.
package eddy

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/policy"
	"repro/internal/tuple"
)

// inbox is an unbounded FIFO of tuples; unboundedness removes the
// eddy↔module send cycle that could otherwise deadlock bounded channels.
type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*tuple.Tuple
	closed bool
}

func newInbox() *inbox {
	b := &inbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *inbox) push(t *tuple.Tuple) {
	b.mu.Lock()
	b.items = append(b.items, t)
	b.mu.Unlock()
	b.cond.Signal()
}

func (b *inbox) pop() (*tuple.Tuple, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.items) == 0 && !b.closed {
		b.cond.Wait()
	}
	if len(b.items) == 0 {
		return nil, false
	}
	t := b.items[0]
	b.items = b.items[1:]
	return t, true
}

func (b *inbox) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.items)
}

func (b *inbox) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// eddyEvent is a message to the eddy goroutine: a tuple to route or policy
// feedback from a module worker (policies are not thread-safe, so all policy
// calls happen on the eddy goroutine).
type eddyEvent struct {
	t  *tuple.Tuple
	fb *policy.Feedback
}

// Concurrent drives a Routing with goroutines and channels on a real clock.
type Concurrent struct {
	r   Routing
	clk clock.Clock

	// OnOutput is called (on the eddy goroutine) for each result.
	OnOutput func(t *tuple.Tuple, at clock.Time)
	// WallTimeout aborts the run after this much wall time; 0 disables. The
	// run returns the results produced so far plus an error.
	WallTimeout time.Duration

	events   chan eddyEvent
	inboxes  []*inbox
	inflight atomic.Int64
	costEWMA []atomic.Int64 // per-module EWMA service cost, ns

	mu      sync.Mutex
	outputs []Output
	errOnce sync.Once
	err     error
}

// NewConcurrent prepares a concurrent run. clk nil defaults to a real clock
// compressed 1000× (one virtual second per wall millisecond).
func NewConcurrent(r Routing, clk clock.Clock) *Concurrent {
	if clk == nil {
		clk = clock.NewReal(0.001)
	}
	return &Concurrent{
		r:        r,
		clk:      clk,
		events:   make(chan eddyEvent, 1024),
		costEWMA: make([]atomic.Int64, len(r.Modules())),
	}
}

// Now implements policy.Env.
func (c *Concurrent) Now() clock.Time { return c.clk.Now() }

// Backlog implements policy.Env.
func (c *Concurrent) Backlog(mod int) clock.Duration {
	par := c.r.Modules()[mod].Parallel()
	if par == 0 {
		return 0
	}
	waiting := c.inboxes[mod].len()
	return clock.Duration(int64(waiting) * c.costEWMA[mod].Load() / int64(par))
}

// Run executes the query to completion and returns the results in output
// order. It is safe to call once.
func (c *Concurrent) Run() ([]Output, error) {
	mods := c.r.Modules()
	c.inboxes = make([]*inbox, len(mods))
	var wg sync.WaitGroup
	for i, m := range mods {
		c.inboxes[i] = newInbox()
		workers := m.Parallel()
		if workers == 0 {
			workers = 64
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go c.worker(i, &wg)
		}
	}

	seeds := c.r.Seeds()
	c.inflight.Store(int64(len(seeds)))
	if len(seeds) > 0 {
		go func() {
			for _, s := range seeds {
				c.events <- eddyEvent{t: s}
			}
		}()

		var timeout <-chan time.Time
		if c.WallTimeout > 0 {
			tm := time.NewTimer(c.WallTimeout)
			defer tm.Stop()
			timeout = tm.C
		}

		// The eddy goroutine: the only caller of Route/Choose/Observe.
	loop:
		for {
			select {
			case ev := <-c.events:
				if ev.fb != nil {
					if ev.fb.Emitted >= 0 {
						c.r.Policy().Observe(*ev.fb)
					}
				} else {
					c.route(ev.t)
				}
				if c.inflight.Load() == 0 {
					break loop
				}
			case <-timeout:
				c.errOnce.Do(func() {
					c.mu.Lock()
					c.err = fmt.Errorf("eddy: wall timeout after %v with %d tuples in flight",
						c.WallTimeout, c.inflight.Load())
					c.mu.Unlock()
				})
				break loop
			}
		}
	}

	// Quiescent (or timed out): unblock and stop the workers. A drainer
	// absorbs anything still in flight — feedback from draining workers
	// and, on the timeout path, stragglers from the seeder and delayed
	// emissions — so the channel is intentionally never closed.
	go func() {
		for range c.events {
		}
	}()
	for _, b := range c.inboxes {
		b.close()
	}
	wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.outputs, c.err
}

func (c *Concurrent) route(t *tuple.Tuple) {
	defer func() {
		if r := recover(); r != nil {
			c.errOnce.Do(func() {
				c.mu.Lock()
				c.err = fmt.Errorf("eddy: routing panic: %v", r)
				c.mu.Unlock()
			})
			c.inflight.Add(-1)
		}
	}()
	d := c.r.Route(t, c)
	switch {
	case d.Output:
		now := c.clk.Now()
		c.mu.Lock()
		c.outputs = append(c.outputs, Output{T: t, At: now})
		c.mu.Unlock()
		if c.OnOutput != nil {
			c.OnOutput(t, now)
		}
		c.inflight.Add(-1)
	case d.Drop:
		c.inflight.Add(-1)
	default:
		if d.Delay > 0 {
			mod, delay := d.Module, d.Delay
			go func() {
				<-c.clk.After(delay)
				c.inboxes[mod].push(t)
			}()
			return
		}
		c.inboxes[d.Module].push(t)
	}
}

func (c *Concurrent) worker(mod int, wg *sync.WaitGroup) {
	defer wg.Done()
	m := c.r.Modules()[mod]
	for {
		t, ok := c.inboxes[mod].pop()
		if !ok {
			return
		}
		ems, cost := m.Process(t, c.clk.Now())
		c.observeCost(mod, cost)
		c.clk.Sleep(cost)

		// Account for the net dataflow change before emitting, so the
		// counter can never dip to zero while emissions are pending.
		delta := int64(len(ems)) - 1
		outputs := 0
		for _, em := range ems {
			if em.T != t {
				outputs++
			}
		}
		if delta > 0 {
			c.inflight.Add(delta)
		}
		fb := policy.Feedback{
			Module: mod, Sig: uint64(t.Span),
			Outputs: outputs, Emitted: len(ems), Cost: cost, Now: c.clk.Now(),
		}
		for _, em := range ems {
			if em.Delay > 0 {
				em := em
				go func() {
					<-c.clk.After(em.Delay)
					c.events <- eddyEvent{t: em.T}
				}()
			} else {
				c.events <- eddyEvent{t: em.T}
			}
		}
		c.events <- eddyEvent{fb: &fb}
		if delta < 0 {
			if c.inflight.Add(delta) == 0 {
				// Wake the eddy loop so it observes quiescence; Emitted -1
				// marks it as a pure wake-up, not real feedback.
				c.events <- eddyEvent{fb: &policy.Feedback{Module: mod, Emitted: -1}}
			}
		}
	}
}

func (c *Concurrent) observeCost(mod int, cost clock.Duration) {
	old := c.costEWMA[mod].Load()
	nw := int64(cost)
	if old != 0 {
		nw = (int64(cost) + 4*old) / 5
	}
	c.costEWMA[mod].Store(nw)
}
