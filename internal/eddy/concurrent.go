// concurrent.go is the channel-based engine: every module runs in its own
// goroutine (a worker pool sized by Parallel()), exchanging batches of
// tuples with the eddy over channels — the paper's Telegraph setting, where
// "each module runs asynchronously in a separate thread". Service costs and
// source latencies elapse on a real clock, optionally compressed so the
// paper's multi-minute runs finish in milliseconds.
//
// Dataflow is batch-at-a-time: the eddy coalesces routed tuples into
// per-module batches of up to BatchSize, so channel sends, inbox wakeups,
// module locking, and policy decisions amortize across the batch. BatchSize
// 1 reproduces the original tuple-at-a-time behavior exactly.
//
// Modules that implement flow.Sharded with more than one shard get one
// inbox and one worker per shard: the eddy resolves each routed tuple's
// shard (ShardOf) and coalesces per (span, shard), so builds and probes on
// different shards of the same SteM are serviced fully in parallel.
// Broadcast tuples (flow.ShardAll — EOTs) are replicated to every shard
// inbox behind a flush of the module's coalescing buffers, preserving the
// build-before-EOT delivery order per shard; flow.ShardAny tuples are
// handed to one shard worker and synchronize across shards inside the
// module.
//
// The engine is not deterministic (that is the simulator's job); it is the
// deployment-shaped engine, and the race-exercising tests run the same
// correctness oracle against it.
package eddy

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/flow"
	"repro/internal/policy"
	"repro/internal/tuple"
)

// DefaultBatchSize is the number of tuples the eddy coalesces into one
// module batch when Concurrent.BatchSize is left zero.
const DefaultBatchSize = 64

// batchPool recycles flow.Batch shells (and their tuple slices) between the
// eddy and the module workers. A batch is returned to the pool by whichever
// side consumes it: workers recycle inbox batches after processing, the eddy
// loop recycles event batches after draining them into staging. Batches held
// in a closed inbox at shutdown are simply dropped.
var batchPool = sync.Pool{New: func() any { return &flow.Batch{} }}

func getBatch() *flow.Batch {
	b := batchPool.Get().(*flow.Batch)
	b.Reset()
	return b
}

func getBatchOf(t *tuple.Tuple) *flow.Batch {
	b := getBatch()
	b.Add(t)
	return b
}

func putBatch(b *flow.Batch) {
	b.Reset()
	batchPool.Put(b)
}

// inbox is an unbounded FIFO of batches; unboundedness removes the
// eddy↔module send cycle that could otherwise deadlock bounded channels.
// items is used as a ring-ish queue: pop consumes from head instead of
// re-slicing, and the slice rewinds to its full capacity whenever the queue
// drains, so a pooled shell's steady-state run stops allocating queue nodes.
type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*flow.Batch
	head   int
	tuples int
	closed bool
}

func newInbox() *inbox {
	b := &inbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *inbox) push(batch *flow.Batch) {
	b.mu.Lock()
	if b.head == len(b.items) && b.head > 0 {
		b.items = b.items[:0]
		b.head = 0
	}
	b.items = append(b.items, batch)
	b.tuples += batch.Len()
	b.mu.Unlock()
	b.cond.Signal()
}

func (b *inbox) pop() (*flow.Batch, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.head == len(b.items) && !b.closed {
		b.cond.Wait()
	}
	// Closed means the run is over (quiescent, timed out, or canceled):
	// drop any backlog rather than service it, so cancellation stops
	// workers promptly. On the quiescent path the queues are necessarily
	// empty (queued tuples are counted in the in-flight counter).
	if b.closed {
		return nil, false
	}
	batch := b.items[b.head]
	b.items[b.head] = nil
	b.head++
	if b.head == len(b.items) {
		b.items = b.items[:0]
		b.head = 0
	}
	b.tuples -= batch.Len()
	return batch, true
}

// len returns the number of tuples (not batches) waiting.
func (b *inbox) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tuples
}

func (b *inbox) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// reopen rearms a closed inbox for a pooled shell's next run, dropping any
// batches the previous run's shutdown left behind (capacity is kept, batch
// references are not). Callers must guarantee no worker is still blocked in
// pop (RunContext has returned).
func (b *inbox) reopen() {
	b.mu.Lock()
	clear(b.items)
	b.items = b.items[:0]
	b.head = 0
	b.tuples = 0
	b.closed = false
	b.mu.Unlock()
}

// eddyEvent is a message to the eddy goroutine: a batch of tuples to route,
// policy feedback from a module worker (policies are not thread-safe, so
// all policy calls happen on the eddy goroutine), or an already-routed
// tuple to deliver to its module through the eddy-goroutine-only enqueue
// path (deliverT set; used for delayed broadcast deliveries that need the
// flush-first ordering discipline).
type eddyEvent struct {
	b          *flow.Batch
	fb         *policy.Feedback
	deliverT   *tuple.Tuple
	deliverMod int
}

// fbPool recycles the Feedback carriers sent through the events channel:
// workers finish a batch per service, and boxing each report into an
// interface-bearing event forced a heap allocation per batch. The eddy loop
// returns carriers after Observe; carriers stranded in the channel when a run
// is canceled are simply dropped.
var fbPool = sync.Pool{New: func() any { return new(policy.Feedback) }}

func newFeedback(fb policy.Feedback) *policy.Feedback {
	p := fbPool.Get().(*policy.Feedback)
	*p = fb
	return p
}

// pendKey identifies one coalescing buffer: the tuples' shared routing span
// and, for sharded modules, the shard their batch will be serviced by.
type pendKey struct {
	span  tuple.TableSet
	shard int
}

// ColRouter is the optional routing capability the columnar dataflow needs:
// deciding the fate of a whole column-vector batch in one call. The Router
// implements it; a Routing that does not keeps the engine on the row path.
type ColRouter interface {
	RouteCol(cb *flow.ColBatch, env policy.Env) Decision
}

// Concurrent drives a Routing with goroutines and channels on a real clock.
type Concurrent struct {
	r   Routing
	clk clock.Clock

	// BatchSize caps the number of tuples the eddy coalesces into one
	// channel send to a module; 0 defaults to DefaultBatchSize at Run, and
	// 1 reproduces per-tuple dataflow exactly. Set before Run.
	BatchSize int
	// Columnar enables the typed column-vector dataflow: scan AMs emit
	// ColBatches, selection and SteM modules service them with vectorized
	// kernels, and the eddy routes each batch with one decision. It is on by
	// default and takes effect when BatchSize > 1 and the routing supports it
	// (ColRouter); BatchSize 1 always runs the exact row-at-a-time dataflow.
	// Set before Run.
	Columnar bool
	// OnOutput is called (on the eddy goroutine) for each result.
	OnOutput func(t *tuple.Tuple, at clock.Time)
	// OnService is called (on the eddy goroutine) with every service
	// completion the routing policy observes — row and columnar batches both
	// funnel through here — so a trace collector sees exactly the feedback
	// stream the policy learns from. Pure wake-up events (Emitted < 0) are
	// not reported. Set before Run; Reset clears it.
	OnService func(fb policy.Feedback)
	// WallTimeout aborts the run after this much wall time; 0 disables. The
	// run returns the results produced so far plus an error.
	WallTimeout time.Duration

	events chan eddyEvent
	// done is closed when the run winds down (quiescence, timeout, or
	// cancellation); delay-timer goroutines select on it so a canceled run
	// never waits out pending virtual sleeps.
	done chan struct{}
	// senders tracks every goroutine that may still send on events other
	// than the module workers (the seeder and the delay timers); shutdown
	// waits for them before closing the channel so the drainer can exit and
	// the run leaves zero goroutines behind.
	senders sync.WaitGroup
	// inboxes is indexed [module][shard]; unsharded modules have exactly one
	// inbox that all their workers share.
	inboxes [][]*inbox
	// sharded caches each module's flow.Sharded interface when it has more
	// than one shard; nil entries take the unsharded path.
	sharded  []flow.Sharded
	inflight atomic.Int64
	costEWMA []atomic.Int64 // per-module EWMA service cost per tuple, ns

	// colOn records that the columnar dataflow is active this run; colRouter,
	// colMod and colShard cache the columnar capabilities of the routing and
	// of each module (nil entries materialize to rows at enqueue).
	colOn     bool
	colRouter ColRouter
	colMod    []flow.ColModule
	colShard  []flow.ColSharded

	// pend, staging, and decisions are eddy-goroutine-only: the per-module
	// coalescing buffers, the reused routing batch incoming tuples drain
	// into, and the reused RouteBatch scratch. pend is keyed by the
	// tuples' span (and shard) within each module, so every released batch
	// is span-homogeneous — its policy feedback attributes to one
	// tuplestate signature — and shard-homogeneous — its service takes one
	// shard lock. batchCap is the per-module coalescing limit: BatchSize
	// for single-server and sharded modules (each shard is a single
	// server), 1 for modules with internal parallelism (batching those
	// would serialize service their Parallel() worker pool is meant to
	// overlap — e.g. asynchronous index lookups).
	pend      []map[pendKey]*flow.Batch
	pendCount []int
	batchCap  []int
	// pendCol holds the columnar coalescing buffers, keyed like pend; merging
	// requires identical routing headers (SameHeader), and merged storage is
	// the pooled destination batch's — the source returns to the pool.
	// colParts is the eddy-goroutine-only scratch for partitioning one
	// columnar batch across a sharded module's inboxes.
	pendCol  []map[pendKey]*flow.ColBatch
	colParts []*flow.ColBatch
	// anyRR round-robins flow.ShardAny tuples across shard inboxes; atomic
	// because both the eddy goroutine (enqueue) and timer goroutines
	// (deliverDirect) draw from it.
	anyRR     []atomic.Int64
	staging   *flow.Batch
	decisions []Decision

	mu      sync.Mutex
	outputs []Output
	// errSet arms on the first setErr of a run; an atomic.Bool rather than a
	// sync.Once so Reset can rearm it for a pooled shell's next run.
	errSet atomic.Bool
	err    error
}

// NewConcurrent prepares a concurrent run. clk nil defaults to a real clock
// compressed 1000× (one virtual second per wall millisecond).
func NewConcurrent(r Routing, clk clock.Clock) *Concurrent {
	if clk == nil {
		clk = clock.NewReal(0.001)
	}
	return &Concurrent{
		r:        r,
		clk:      clk,
		Columnar: true,
		events:   make(chan eddyEvent, 1024),
		done:     make(chan struct{}),
		costEWMA: make([]atomic.Int64, len(r.Modules())),
	}
}

// setErr records the first error of the current run; later calls lose.
func (c *Concurrent) setErr(err error) {
	if c.errSet.CompareAndSwap(false, true) {
		c.mu.Lock()
		c.err = err
		c.mu.Unlock()
	}
}

// SetClock replaces the engine's clock before a run; nil restores the
// default 1000×-compressed real clock. A pooled shell gets a fresh clock per
// execution so virtual timestamps restart from zero, exactly as on a newly
// constructed engine.
func (c *Concurrent) SetClock(clk clock.Clock) {
	if clk == nil {
		clk = clock.NewReal(0.001)
	}
	c.clk = clk
}

// Reset returns a finished engine shell to its pre-run state so it can be
// pooled and run again: RunContext after Reset behaves exactly like the
// first RunContext on a fresh engine (the run-scoped scaffolding — inboxes,
// coalescing buffers, scratch — is retained and reopened rather than
// reallocated, which is the point of pooling). It must only be called after
// RunContext has returned, which guarantees every goroutine of the previous
// run has exited; the modules' own state (SteM dictionaries, AM dedup
// caches, policy learners) belongs to the Routing and is reset through it.
func (c *Concurrent) Reset() {
	// The previous run closed both channels; rearm them.
	c.events = make(chan eddyEvent, 1024)
	c.done = make(chan struct{})
	c.inflight.Store(0)
	for i := range c.costEWMA {
		c.costEWMA[i].Store(0)
	}
	for i := range c.anyRR {
		c.anyRR[i].Store(0)
	}
	// The previous run's shutdown closed every inbox (possibly with dropped
	// batches still queued); rearm them empty.
	for _, boxes := range c.inboxes {
		for _, ib := range boxes {
			ib.reopen()
		}
	}
	// A canceled run can abandon batches in the coalescing buffers; recycle
	// them so the pooled shell starts empty.
	for i := range c.pend {
		for key, b := range c.pend[i] {
			delete(c.pend[i], key)
			putBatch(b)
		}
		for key, cb := range c.pendCol[i] {
			delete(c.pendCol[i], key)
			flow.PutColBatch(cb)
		}
		c.pendCount[i] = 0
	}
	if c.staging != nil {
		c.staging.Reset()
	}
	c.colOn = false
	c.colRouter = nil
	c.OnOutput = nil
	c.OnService = nil
	c.outputs = nil
	c.err = nil
	c.errSet.Store(false)
}

// Now implements policy.Env.
func (c *Concurrent) Now() clock.Time { return c.clk.Now() }

// Backlog implements policy.Env.
func (c *Concurrent) Backlog(mod int) clock.Duration {
	par := c.r.Modules()[mod].Parallel()
	if par == 0 {
		return 0
	}
	waiting := c.pendCount[mod]
	for _, ib := range c.inboxes[mod] {
		waiting += ib.len()
	}
	return clock.Duration(int64(waiting) * c.costEWMA[mod].Load() / int64(par))
}

// Run executes the query to completion and returns the results in output
// order. It is safe to call once; to run a shell again, call Reset first
// (and Router.Reset on the routing, which owns the module state).
func (c *Concurrent) Run() ([]Output, error) { return c.RunContext(context.Background()) }

// RunContext is Run under a cancellation context: when ctx is canceled (a
// per-query deadline, a disconnected client, a server shutting down) the
// eddy stops routing, the module workers stop, and the call returns the
// results produced so far plus an error wrapping ctx.Err(). Every goroutine
// the run started has exited by the time RunContext returns.
func (c *Concurrent) RunContext(ctx context.Context) ([]Output, error) {
	return c.run(ctx, c.r.Seeds())
}

// RunDelta runs one incremental round over the module state earlier rounds
// built: the given tuples (fresh singletons for newly arrived rows) are
// injected into the dataflow instead of the routing's seeds, so no scan
// re-runs, and the results are exactly this round's delta — an injected
// tuple builds into its SteM with a fresh timestamp from the router's
// persistent counter and its probes match every strictly-older build, so
// each cross-round combination is produced once, by its last-arriving
// component. Call it on a shell whose previous round completed and was
// Reset (the engine's channels are rearmed, hooks must be re-set) WITHOUT
// resetting the Routing — the SteM state is the standing query.
func (c *Concurrent) RunDelta(ctx context.Context, ts []*tuple.Tuple) ([]Output, error) {
	return c.run(ctx, ts)
}

// run executes one round: seeds (initial scan seeds or injected delta
// tuples) enter the dataflow, and the call returns at quiescence.
func (c *Concurrent) run(ctx context.Context, seeds []*tuple.Tuple) ([]Output, error) {
	if c.BatchSize <= 0 {
		c.BatchSize = DefaultBatchSize
	}
	mods := c.r.Modules()
	// A shell that already ran (and was Reset) keeps its run-scoped
	// scaffolding — inboxes, coalescing buffers, scratch slices — and only
	// reopens it; that near-zero setup is what makes pooled shells worth
	// caching. The module list is a property of the Routing, so a reused
	// shell's layout always matches.
	fresh := len(c.inboxes) != len(mods)
	if fresh {
		c.inboxes = make([][]*inbox, len(mods))
		c.sharded = make([]flow.Sharded, len(mods))
		c.pend = make([]map[pendKey]*flow.Batch, len(mods))
		c.pendCol = make([]map[pendKey]*flow.ColBatch, len(mods))
		c.colMod = make([]flow.ColModule, len(mods))
		c.colShard = make([]flow.ColSharded, len(mods))
		c.pendCount = make([]int, len(mods))
		c.batchCap = make([]int, len(mods))
		c.anyRR = make([]atomic.Int64, len(mods))
		c.staging = flow.NewBatch(c.BatchSize)
	}
	// Columnar capability is recomputed every run: BatchSize and Columnar
	// may change between a pooled shell's executions.
	c.colRouter = nil
	c.colOn = false
	if cr, ok := c.r.(ColRouter); ok && c.Columnar && c.BatchSize > 1 {
		c.colRouter = cr
		c.colOn = true
	}
	for i, m := range mods {
		if c.colOn {
			c.colMod[i], _ = m.(flow.ColModule)
			c.colShard[i], _ = m.(flow.ColSharded)
		} else {
			c.colMod[i], c.colShard[i] = nil, nil
		}
	}
	var wg sync.WaitGroup
	for i, m := range mods {
		if fresh {
			c.pend[i] = make(map[pendKey]*flow.Batch)
			c.pendCol[i] = make(map[pendKey]*flow.ColBatch)
		}
		if sm, ok := m.(flow.Sharded); ok && sm.Shards() > 1 {
			// One single-server inbox+worker per shard; per-shard batches
			// coalesce like any single-server module's.
			c.sharded[i] = sm
			c.batchCap[i] = c.BatchSize
			n := sm.Shards()
			if fresh {
				c.inboxes[i] = make([]*inbox, n)
				for w := 0; w < n; w++ {
					c.inboxes[i][w] = newInbox()
				}
			}
			for w := 0; w < n; w++ {
				c.inboxes[i][w].reopen()
				wg.Add(1)
				go c.shardWorker(i, w, &wg)
			}
			continue
		}
		if fresh {
			c.inboxes[i] = []*inbox{newInbox()}
		}
		c.inboxes[i][0].reopen()
		if m.Parallel() == 1 {
			c.batchCap[i] = c.BatchSize
		} else {
			c.batchCap[i] = 1
		}
		workers := m.Parallel()
		if workers == 0 {
			workers = 64
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go c.worker(i, &wg)
		}
	}

	c.inflight.Store(int64(len(seeds)))
	if len(seeds) > 0 {
		c.senders.Add(1)
		go func() {
			defer c.senders.Done()
			for _, s := range seeds {
				select {
				case c.events <- eddyEvent{b: getBatchOf(s)}:
				case <-c.done:
					return
				}
			}
		}()

		var timeout <-chan time.Time
		if c.WallTimeout > 0 {
			tm := time.NewTimer(c.WallTimeout)
			defer tm.Stop()
			timeout = tm.C
		}
		// Background's Done channel is nil, so an un-cancelable run blocks
		// on this case forever — exactly the pre-context behavior.
		cancelCh := ctx.Done()

		timedOut := func() {
			c.setErr(fmt.Errorf("eddy: wall timeout after %v with %d tuples in flight",
				c.WallTimeout, c.inflight.Load()))
		}
		canceled := func() {
			c.setErr(fmt.Errorf("eddy: run canceled with %d tuples in flight: %w",
				c.inflight.Load(), ctx.Err()))
		}

		// The eddy goroutine: the only caller of RouteBatch/Choose/Observe.
		// Incoming tuples drain into the staging batch and are routed once
		// it reaches BatchSize or the event channel momentarily empties, so
		// routing (and the policy) sees the widest batches the current load
		// can supply.
	loop:
		for {
			var ev eddyEvent
			select {
			case ev = <-c.events:
			case <-timeout:
				// Checked here too so sustained event traffic cannot
				// starve the watchdog.
				timedOut()
				break loop
			case <-cancelCh:
				canceled()
				break loop
			default:
				// Nothing immediately pending: route what is staged, then
				// release the coalescing buffers before blocking, so the
				// tuples held there can produce the events we are about to
				// wait for.
				c.routeStaged()
				c.flushAll()
				if c.inflight.Load() == 0 && !c.drainSpill() {
					break loop
				}
				select {
				case ev = <-c.events:
				case <-timeout:
					timedOut()
					break loop
				case <-cancelCh:
					canceled()
					break loop
				}
			}
			if ev.fb != nil {
				if ev.fb.Emitted >= 0 {
					c.r.Policy().Observe(*ev.fb)
					if c.OnService != nil {
						c.OnService(*ev.fb)
					}
				}
				fbPool.Put(ev.fb)
			} else if ev.deliverT != nil {
				c.enqueue(ev.deliverMod, ev.deliverT)
			} else if ev.b.Col != nil {
				// A columnar batch is already a batch: it routes as one unit
				// immediately, preserving its order in the event stream
				// relative to row events (an AM's scan chunks precede its
				// EOT; a SteM's build bounce precedes anything later).
				cb := ev.b.Col
				ev.b.Col = nil
				putBatch(ev.b)
				c.routeColBatch(cb)
			} else {
				for _, t := range ev.b.Tuples {
					c.staging.Add(t)
					if c.staging.Len() >= c.BatchSize {
						c.routeStaged()
					}
				}
				putBatch(ev.b)
			}
			if c.inflight.Load() == 0 && !c.drainSpill() {
				break loop
			}
		}
	}

	// Quiescent, timed out, or canceled: wind the dataflow down without
	// leaking a single goroutine. A drainer absorbs events still in flight
	// (feedback from draining workers; stragglers from the seeder and
	// delayed emissions); closing done releases the delay timers, closing
	// the inboxes releases the workers. Once the workers and the tracked
	// senders have exited nothing can send anymore, so the events channel
	// closes and the drainer itself terminates before we return.
	drained := make(chan struct{})
	go func() {
		for range c.events {
		}
		close(drained)
	}()
	close(c.done)
	for _, boxes := range c.inboxes {
		for _, b := range boxes {
			b.close()
		}
	}
	wg.Wait()
	c.senders.Wait()
	close(c.events)
	<-drained
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.outputs, c.err
}

// drainSpill runs the out-of-core replay phase: called only at quiescence
// (in-flight count zero, so every worker is idle and every queue empty, on
// the eddy goroutine), it asks the routing to replay spilled SteM state and
// routes the regenerated results back into the dataflow. It reports whether
// the dataflow has work again; rounds whose results all resolve immediately
// (outputs and drops) trigger another drain, since their routing may have
// recorded further replay obligations. Canceled and timed-out runs never
// reach it — their results are already incomplete, and spill segments are
// cleaned up by the governor, not the drain.
func (c *Concurrent) drainSpill() bool {
	sd, ok := c.r.(spillDrainer)
	if !ok {
		return false
	}
	for {
		ems := sd.DrainSpill()
		if len(ems) == 0 {
			return false
		}
		c.inflight.Add(int64(len(ems)))
		for _, em := range ems {
			c.staging.Add(em.T)
			if c.staging.Len() >= c.BatchSize {
				c.routeStaged()
			}
		}
		c.routeStaged()
		c.flushAll()
		if c.inflight.Load() != 0 {
			return true
		}
	}
}

// routeStaged routes the staged tuples in one RouteBatch call, coalescing
// module-bound tuples into the per-module pending buffers.
func (c *Concurrent) routeStaged() {
	if c.staging.Len() == 0 {
		return
	}
	b := c.staging
	unresolved := int64(b.Len())
	defer func() {
		b.Reset()
		if r := recover(); r != nil {
			c.setErr(fmt.Errorf("eddy: routing panic: %v", r))
			c.inflight.Add(-unresolved)
		}
	}()
	c.decisions = c.r.RouteBatch(b.Tuples, c, c.decisions[:0])
	for i, d := range c.decisions {
		t := b.Tuples[i]
		switch {
		case d.Output:
			now := c.clk.Now()
			c.mu.Lock()
			c.outputs = append(c.outputs, Output{T: t, At: now})
			c.mu.Unlock()
			if c.OnOutput != nil {
				c.OnOutput(t, now)
			}
			c.inflight.Add(-1)
		case d.Drop:
			c.inflight.Add(-1)
		case d.Delay > 0:
			mod, delay, dt := d.Module, d.Delay, t
			c.senders.Add(1)
			go func() {
				defer c.senders.Done()
				if c.waitOrDone(delay) {
					c.deliverDirect(mod, dt)
				}
			}()
		default:
			c.enqueue(d.Module, t)
		}
		unresolved--
	}
}

// routeColBatch routes one columnar batch (eddy goroutine only): one
// decision covers every live row, applied without materializing any of them
// except on the output path, where rows become result tuples.
func (c *Concurrent) routeColBatch(cb *flow.ColBatch) {
	n := int64(cb.Rows())
	defer func() {
		if r := recover(); r != nil {
			c.setErr(fmt.Errorf("eddy: routing panic: %v", r))
			c.inflight.Add(-n)
		}
	}()
	d := c.colRouter.RouteCol(cb, c)
	switch {
	case d.Output:
		now := c.clk.Now()
		ts := cb.Materialize()
		flow.PutColBatch(cb)
		c.mu.Lock()
		for _, t := range ts {
			c.outputs = append(c.outputs, Output{T: t, At: now})
		}
		c.mu.Unlock()
		if c.OnOutput != nil {
			for _, t := range ts {
				c.OnOutput(t, now)
			}
		}
		c.inflight.Add(-n)
	case d.Drop:
		flow.PutColBatch(cb)
		c.inflight.Add(-n)
	case d.Delay > 0:
		mod, delay := d.Module, d.Delay
		c.senders.Add(1)
		go func() {
			defer c.senders.Done()
			if c.waitOrDone(delay) {
				c.deliverDirectCol(mod, cb)
			}
		}()
	default:
		c.enqueueCol(d.Module, cb)
	}
}

// shardOf resolves the shard a tuple addresses within a module; unsharded
// modules always use shard 0.
func (c *Concurrent) shardOf(mod int, t *tuple.Tuple) int {
	if sm := c.sharded[mod]; sm != nil {
		return sm.ShardOf(t)
	}
	return 0
}

// enqueue adds a tuple to a module's pending batch for the tuple's (span,
// shard), releasing the batch once it reaches the module's coalescing cap.
// Parallel (unsharded) modules have cap 1, so their tuples are pushed
// straight through and their worker pools keep overlapping service.
// Broadcast (flow.ShardAll) tuples first flush the module's coalescing
// buffers — so builds staged ahead of an EOT reach each shard's FIFO inbox
// before its EOT copy — and are then replicated to every shard, with the
// extra copies accounted in the in-flight counter. flow.ShardAny tuples
// coalesce like any others (under their ShardAny key) so the module's sweep
// path amortizes its all-shard lock acquisition across the batch, and the
// released batches round-robin across the shard inboxes (any worker may
// serve them).
func (c *Concurrent) enqueue(mod int, t *tuple.Tuple) {
	shard := c.shardOf(mod, t)
	if shard == flow.ShardAll {
		c.flushModule(mod)
		boxes := c.inboxes[mod]
		c.inflight.Add(int64(len(boxes) - 1))
		for _, ib := range boxes {
			ib.push(getBatchOf(t))
		}
		return
	}
	if c.batchCap[mod] <= 1 {
		c.pushTo(mod, shard, getBatchOf(t))
		return
	}
	key := pendKey{span: t.Span, shard: shard}
	p := c.pend[mod][key]
	if p == nil {
		p = getBatch()
		c.pend[mod][key] = p
	}
	p.Add(t)
	c.pendCount[mod]++
	if p.Len() >= c.batchCap[mod] {
		delete(c.pend[mod], key)
		c.pendCount[mod] -= p.Len()
		c.pushTo(mod, key.shard, p)
	}
}

// pushTo delivers a batch to one shard inbox; ShardAny batches round-robin.
func (c *Concurrent) pushTo(mod, shard int, b *flow.Batch) {
	if shard < 0 {
		shard = c.nextAny(mod)
	}
	c.inboxes[mod][shard].push(b)
}

// enqueueCol adds a columnar batch to a module's columnar coalescing buffers
// (eddy goroutine only). Modules without a columnar path get the rows
// materialized into the ordinary row enqueue; sharded modules get the batch
// partitioned per shard (sweep batches — ShardAny — stay whole, the binding
// is span-determined and thus batch-uniform). EOT markers never travel
// columnar, so there is no ShardAll case.
func (c *Concurrent) enqueueCol(mod int, cb *flow.ColBatch) {
	if c.colMod[mod] == nil || (c.sharded[mod] != nil && c.colShard[mod] == nil) {
		for _, t := range cb.Materialize() {
			c.enqueue(mod, t)
		}
		flow.PutColBatch(cb)
		return
	}
	if sm := c.colShard[mod]; sm != nil && c.sharded[mod] != nil {
		rows := cb.Rows()
		first := sm.ShardOfCol(cb, cb.RowAt(0))
		if first == flow.ShardAny {
			c.pendColAdd(mod, flow.ShardAny, cb)
			return
		}
		uniform := true
		for k := 1; k < rows; k++ {
			if sm.ShardOfCol(cb, cb.RowAt(k)) != first {
				uniform = false
				break
			}
		}
		if uniform {
			c.pendColAdd(mod, first, cb)
			return
		}
		nsh := len(c.inboxes[mod])
		if cap(c.colParts) < nsh {
			c.colParts = make([]*flow.ColBatch, nsh)
		}
		parts := c.colParts[:nsh]
		for k := 0; k < rows; k++ {
			i := cb.RowAt(k)
			s := sm.ShardOfCol(cb, i)
			p := parts[s]
			if p == nil {
				p = flow.GetColBatch(cb.NTables)
				p.CopyHeaderFrom(cb)
				parts[s] = p
			}
			p.AppendRowFrom(cb, i)
		}
		flow.PutColBatch(cb)
		for s, p := range parts {
			if p != nil {
				parts[s] = nil
				c.pendColAdd(mod, s, p)
			}
		}
		return
	}
	if c.batchCap[mod] <= 1 {
		c.pushColTo(mod, 0, cb)
		return
	}
	c.pendColAdd(mod, 0, cb)
}

// pendColAdd coalesces a columnar batch into the module's (span, shard)
// buffer. Merging is only legal between identical routing headers; a header
// change (visit counts advanced, lineage flags set) releases the buffered
// batch and starts a fresh one. Merged rows move into the buffered batch's
// pooled vector storage and the source batch returns to the pool.
func (c *Concurrent) pendColAdd(mod, shard int, cb *flow.ColBatch) {
	key := pendKey{span: cb.Span, shard: shard}
	p := c.pendCol[mod][key]
	if p != nil {
		if p.SameHeader(cb) {
			p.AppendAllFrom(cb)
			c.pendCount[mod] += cb.Rows()
			flow.PutColBatch(cb)
			if p.Rows() >= c.batchCap[mod] {
				delete(c.pendCol[mod], key)
				c.pendCount[mod] -= p.Rows()
				c.pushColTo(mod, shard, p)
			}
			return
		}
		delete(c.pendCol[mod], key)
		c.pendCount[mod] -= p.Rows()
		c.pushColTo(mod, shard, p)
	}
	if cb.Rows() >= c.batchCap[mod] {
		c.pushColTo(mod, shard, cb)
		return
	}
	c.pendCol[mod][key] = cb
	c.pendCount[mod] += cb.Rows()
}

// pushColTo delivers a columnar batch to one shard inbox inside a pooled
// row-batch shell (the inbox currency stays *flow.Batch).
func (c *Concurrent) pushColTo(mod, shard int, cb *flow.ColBatch) {
	shell := getBatch()
	shell.Col = cb
	c.pushTo(mod, shard, shell)
}

// deliverDirectCol delivers a delayed columnar batch straight to the
// module's inboxes (timer goroutines; the eddy-only coalescing buffers are
// off limits, and the pools are safe to use from here).
func (c *Concurrent) deliverDirectCol(mod int, cb *flow.ColBatch) {
	if c.colMod[mod] == nil || (c.sharded[mod] != nil && c.colShard[mod] == nil) {
		for _, t := range cb.Materialize() {
			c.deliverDirect(mod, t)
		}
		flow.PutColBatch(cb)
		return
	}
	if sm := c.colShard[mod]; sm != nil && c.sharded[mod] != nil {
		rows := cb.Rows()
		first := sm.ShardOfCol(cb, cb.RowAt(0))
		if first == flow.ShardAny {
			c.pushColTo(mod, flow.ShardAny, cb)
			return
		}
		parts := make([]*flow.ColBatch, len(c.inboxes[mod]))
		for k := 0; k < rows; k++ {
			i := cb.RowAt(k)
			s := sm.ShardOfCol(cb, i)
			if parts[s] == nil {
				parts[s] = flow.GetColBatch(cb.NTables)
				parts[s].CopyHeaderFrom(cb)
			}
			parts[s].AppendRowFrom(cb, i)
		}
		flow.PutColBatch(cb)
		for s, p := range parts {
			if p != nil {
				c.pushColTo(mod, s, p)
			}
		}
		return
	}
	c.pushColTo(mod, 0, cb)
}

// deliverDirect delivers a delayed tuple straight to the module's inboxes,
// bypassing the eddy-goroutine-only coalescing buffers (it runs on timer
// goroutines). Today only probes are ever delayed; should a broadcast
// (flow.ShardAll) tuple ever arrive here, it is bounced to the eddy
// goroutine instead, whose enqueue applies the flush-first discipline that
// keeps builds ordered ahead of EOT copies in every shard inbox.
func (c *Concurrent) deliverDirect(mod int, t *tuple.Tuple) {
	switch shard := c.shardOf(mod, t); shard {
	case flow.ShardAll:
		c.events <- eddyEvent{deliverT: t, deliverMod: mod}
	case flow.ShardAny:
		c.inboxes[mod][c.nextAny(mod)].push(getBatchOf(t))
	default:
		c.inboxes[mod][shard].push(getBatchOf(t))
	}
}

// nextAny picks the next shard inbox for a flow.ShardAny tuple, spreading
// sweep probes across workers (any worker may serve them — the module
// synchronizes across shards itself).
func (c *Concurrent) nextAny(mod int) int {
	return int(c.anyRR[mod].Add(1) % int64(len(c.inboxes[mod])))
}

// flushModule releases every non-empty pending batch of one module, columnar
// buffers first so staged builds keep preceding a broadcast EOT in every
// shard inbox.
func (c *Concurrent) flushModule(mod int) {
	if cols := c.pendCol[mod]; len(cols) > 0 {
		for key, p := range cols {
			delete(cols, key)
			c.pushColTo(mod, key.shard, p)
		}
	}
	spans := c.pend[mod]
	for key, p := range spans {
		delete(spans, key)
		c.pushTo(mod, key.shard, p)
	}
	c.pendCount[mod] = 0
}

// flushAll releases every non-empty pending batch.
func (c *Concurrent) flushAll() {
	for mod := range c.pend {
		c.flushModule(mod)
	}
}

// worker services one unsharded module (possibly one of several workers
// sharing the module's single inbox, per Parallel()).
func (c *Concurrent) worker(mod int, wg *sync.WaitGroup) {
	defer wg.Done()
	m := flow.Lift(c.r.Modules()[mod])
	var cm flow.ColModule
	if c.colOn {
		cm = c.colMod[mod]
	}
	ib := c.inboxes[mod][0]
	for {
		b, ok := ib.pop()
		if !ok {
			return
		}
		if cm != nil {
			in := b.Len()
			rows, cols, cost := cm.ProcessColBatch(b, c.clk.Now())
			c.finishCol(mod, 0, b, in, rows, cols, cost)
			continue
		}
		ems, cost := m.ProcessBatch(b, c.clk.Now())
		c.finishBatch(mod, 0, b, ems, cost)
	}
}

// shardWorker services one shard of a sharded module: it pops the shard's
// own inbox and calls ProcessShard, so different shards of one module are
// serviced fully in parallel.
func (c *Concurrent) shardWorker(mod, shard int, wg *sync.WaitGroup) {
	defer wg.Done()
	m := c.sharded[mod]
	var cm flow.ColSharded
	if c.colOn {
		cm = c.colShard[mod]
	}
	ib := c.inboxes[mod][shard]
	for {
		b, ok := ib.pop()
		if !ok {
			return
		}
		if cm != nil {
			in := b.Len()
			rows, cols, cost := cm.ProcessColShard(shard, b, c.clk.Now())
			c.finishCol(mod, shard, b, in, rows, cols, cost)
			continue
		}
		ems, cost := m.ProcessShard(shard, b, c.clk.Now())
		c.finishBatch(mod, shard, b, ems, cost)
	}
}

// waitOrDone pauses for the modeled duration d, returning false when the
// run is canceled first. Clocks implementing clock.Waiter (the real clock)
// wait with a pooled timer; the fallback pays After's per-call allocations.
func (c *Concurrent) waitOrDone(d clock.Duration) bool {
	if w, ok := c.clk.(clock.Waiter); ok {
		return w.WaitOrDone(d, c.done)
	}
	select {
	case <-c.clk.After(d):
		return true
	case <-c.done:
		return false
	}
}

// finishBatch applies the shared post-service accounting of one batch:
// sleep the service cost, adjust the in-flight counter, report policy
// feedback, and route the emissions onward.
func (c *Concurrent) finishBatch(mod, shard int, b *flow.Batch, ems []flow.Emission, cost clock.Duration) {
	c.observeCost(mod, cost, b.Len())
	// The modeled service cost elapses interruptibly: a canceled run must
	// not wait out the remaining sleep (at compression 1 it is real time).
	if cost > 0 {
		c.waitOrDone(cost)
	}

	// Account for the net dataflow change before emitting, so the
	// counter can never dip to zero while emissions are pending.
	delta := int64(len(ems)) - int64(b.Len())
	outputs := countNew(b, ems)
	if delta > 0 {
		c.inflight.Add(delta)
	}
	// Batches are span-homogeneous (the eddy coalesces per span), so the
	// first tuple's span signs the whole batch; Visits lets learners
	// normalize the batch totals back to per-visit values.
	fb := policy.Feedback{
		Module: mod, Shard: shard, Sig: uint64(b.Tuples[0].Span),
		Outputs: outputs, Emitted: len(ems), Cost: cost, Now: c.clk.Now(),
		Visits: b.Len(),
	}
	putBatch(b)
	var ready *flow.Batch
	for _, em := range ems {
		switch {
		case em.Delay > 0:
			em := em
			c.senders.Add(1)
			go func() {
				defer c.senders.Done()
				if c.waitOrDone(em.Delay) {
					select {
					case c.events <- eddyEvent{b: getBatchOf(em.T)}:
					case <-c.done:
					}
				}
			}()
		case c.BatchSize == 1:
			// Tuple-at-a-time mode: every emission is its own event,
			// exactly as the pre-batching engine sent them.
			c.events <- eddyEvent{b: getBatchOf(em.T)}
		default:
			if ready == nil {
				ready = getBatch()
			}
			ready.Add(em.T)
		}
	}
	if ready != nil {
		c.events <- eddyEvent{b: ready}
	}
	c.events <- eddyEvent{fb: newFeedback(fb)}
	if delta < 0 {
		if c.inflight.Add(delta) == 0 {
			// Wake the eddy loop so it observes quiescence; Emitted -1
			// marks it as a pure wake-up, not real feedback.
			c.events <- eddyEvent{fb: newFeedback(policy.Feedback{Module: mod, Emitted: -1})}
		}
	}
}

// finishCol is finishBatch for a columnar-capable module: it accounts and
// forwards both row and columnar emissions. All counters are row counts (a
// columnar emission contributes its live rows), columnar emissions enter the
// event stream before row emissions (an AM's scan chunks must precede its
// row EOT so the flush-first broadcast discipline can order the inboxes),
// and the input batch's columnar payload returns to the pool unless the
// module re-emitted it (a bounce).
// finishCol applies finishBatch's accounting to a columnar service. inRows
// is the batch's row count captured BEFORE the module ran: columnar modules
// filter the selection vector in place (predicate misses, duplicate builds,
// matched/unmatched splits), so the post-service b.Len() undercounts what
// entered and would leak the difference in the in-flight counter.
func (c *Concurrent) finishCol(mod, shard int, b *flow.Batch, inRows int, rowEms []flow.Emission, colEms []flow.ColEmission, cost clock.Duration) {
	cb := b.Col
	c.observeCost(mod, cost, inRows)
	if cost > 0 {
		c.waitOrDone(cost)
	}

	outRows := len(rowEms)
	newRows := 0
	if len(rowEms) > 0 {
		newRows = countNew(b, rowEms)
	}
	bounced := false
	for _, em := range colEms {
		outRows += em.B.Rows()
		if em.B == cb {
			bounced = true
		} else {
			newRows += em.B.Rows()
		}
	}
	delta := int64(outRows) - int64(inRows)
	if delta > 0 {
		c.inflight.Add(delta)
	}
	var sig uint64
	if cb != nil {
		sig = uint64(cb.Span)
	} else {
		sig = uint64(b.Tuples[0].Span)
	}
	fb := policy.Feedback{
		Module: mod, Shard: shard, Sig: sig,
		Outputs: newRows, Emitted: outRows, Cost: cost, Now: c.clk.Now(),
		Visits: inRows,
	}
	if cb != nil && !bounced {
		flow.PutColBatch(cb)
	}
	b.Col = nil
	putBatch(b)

	for _, em := range colEms {
		if em.Delay > 0 {
			em := em
			c.senders.Add(1)
			go func() {
				defer c.senders.Done()
				if c.waitOrDone(em.Delay) {
					shell := getBatch()
					shell.Col = em.B
					select {
					case c.events <- eddyEvent{b: shell}:
					case <-c.done:
					}
				}
			}()
			continue
		}
		shell := getBatch()
		shell.Col = em.B
		c.events <- eddyEvent{b: shell}
	}
	var ready *flow.Batch
	for _, em := range rowEms {
		switch {
		case em.Delay > 0:
			em := em
			c.senders.Add(1)
			go func() {
				defer c.senders.Done()
				if c.waitOrDone(em.Delay) {
					select {
					case c.events <- eddyEvent{b: getBatchOf(em.T)}:
					case <-c.done:
					}
				}
			}()
		default:
			if ready == nil {
				ready = getBatch()
			}
			ready.Add(em.T)
		}
	}
	if ready != nil {
		c.events <- eddyEvent{b: ready}
	}
	c.events <- eddyEvent{fb: newFeedback(fb)}
	if delta < 0 {
		if c.inflight.Add(delta) == 0 {
			c.events <- eddyEvent{fb: newFeedback(policy.Feedback{Module: mod, Emitted: -1})}
		}
	}
}

// countNew counts the emissions that are not batch inputs bouncing back —
// the productive output of the batch. Small batches use a linear scan; big
// ones build a one-shot identity set so the count stays O(batch+emissions).
func countNew(b *flow.Batch, ems []flow.Emission) int {
	outputs := 0
	if b.Len() <= 8 {
		for _, em := range ems {
			if !b.Contains(em.T) {
				outputs++
			}
		}
		return outputs
	}
	in := make(map[*tuple.Tuple]struct{}, b.Len())
	for _, t := range b.Tuples {
		in[t] = struct{}{}
	}
	for _, em := range ems {
		if _, ok := in[em.T]; !ok {
			outputs++
		}
	}
	return outputs
}

// observeCost folds a batch's total service cost into the module's
// per-tuple EWMA.
func (c *Concurrent) observeCost(mod int, cost clock.Duration, n int) {
	if n <= 0 {
		return
	}
	per := int64(cost) / int64(n)
	old := c.costEWMA[mod].Load()
	nw := per
	if old != 0 {
		nw = (per + 4*old) / 5
	}
	c.costEWMA[mod].Store(nw)
}
