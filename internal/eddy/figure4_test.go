package eddy

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/tuple"
	"repro/internal/value"
)

// TestFigure4_RendezvousBufferAndCache reproduces the Figure 4 execution of
// an R ⋈ S query where S has only index access methods, checking the two
// SteM roles Section 3.3 names:
//
//   - SteM(R) is a rendezvous buffer: probe tuples wait there (as built
//     state) until their matches come back from the index, at which point
//     the matches probe SteM(R) and join with every pending R tuple.
//   - SteM(S) is a cache on index lookups: once the matches and EOT for a
//     binding are stored, later R tuples with the same binding are answered
//     from the SteM without any further remote work.
func TestFigure4_RendezvousBufferAndCache(t *testing.T) {
	rT := schema.MustTable("R", schema.IntCol("key"), schema.IntCol("a"))
	sT := schema.MustTable("S", schema.IntCol("x"), schema.IntCol("y"))
	// Three R tuples share a=10; the fourth has a=20.
	rData := source.MustTable(rT, []tuple.Row{
		{value.NewInt(1), value.NewInt(10)},
		{value.NewInt(2), value.NewInt(10)},
		{value.NewInt(3), value.NewInt(20)},
		{value.NewInt(4), value.NewInt(10)},
	})
	sData := source.MustTable(sT, []tuple.Row{
		{value.NewInt(10), value.NewInt(100)},
		{value.NewInt(10), value.NewInt(101)},
		{value.NewInt(20), value.NewInt(200)},
	})
	q := query.MustNew([]*schema.Table{rT, sT},
		[]pred.P{pred.EquiJoin(0, 1, 1, 0)},
		[]query.AMDecl{
			// R's scan is fast; the index is slow, so all three a=10 R
			// tuples are pending in SteM(R) before any match returns.
			{Table: 0, Kind: query.Scan, Data: rData,
				ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}},
			{Table: 1, Kind: query.Index, Data: sData,
				IndexSpec: source.IndexSpec{KeyCols: []int{0}, Latency: clock.Second, Parallel: 1}},
		})
	r, err := NewRouter(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	outs, err := NewSim(r).Run()
	if err != nil {
		t.Fatal(err)
	}
	// 3 R tuples × 2 S matches for a=10, plus 1 × 1 for a=20.
	if len(outs) != 7 {
		t.Fatalf("got %d results, want 7", len(outs))
	}
	am := r.AMs()[1]
	st := am.Stats()
	// Cache + rendezvous: exactly one remote lookup per distinct binding;
	// the two extra a=10 probes were suppressed/cached.
	if st.Probes != 2 {
		t.Errorf("remote probes = %d, want 2 (one per distinct a)", st.Probes)
	}
	if st.DedupProbes == 0 {
		t.Error("expected suppressed duplicate probes (rendezvous at SteM(R))")
	}
	// The matches for a=10 arrive once but join all three pending R tuples:
	// that only works if they found them in SteM(R).
	sR := r.SteMs()[0]
	if sR.Stats().Builds != 4 {
		t.Errorf("SteM(R) builds = %d, want 4 (the rendezvous state)", sR.Stats().Builds)
	}
	// And SteM(S) now caches every fetched S row.
	if r.SteMs()[1].Size() != 3 {
		t.Errorf("SteM(S) cache size = %d, want 3", r.SteMs()[1].Size())
	}
}

// TestInconsistentMirrors documents the union semantics of competitive
// access methods over sources that disagree: the shared SteM's set-semantics
// dedup makes the effective relation the union of the mirrors (the paper
// notes identifying duplicates across "different, possibly inconsistent, Web
// sources" is handled with set semantics, Section 3.2).
func TestInconsistentMirrors(t *testing.T) {
	rT := schema.MustTable("R", schema.IntCol("key"), schema.IntCol("a"))
	sT := schema.MustTable("S", schema.IntCol("x"), schema.IntCol("y"))
	mirrorA := source.MustTable(rT, []tuple.Row{
		{value.NewInt(1), value.NewInt(10)},
		{value.NewInt(2), value.NewInt(20)},
	})
	mirrorB := source.MustTable(rT, []tuple.Row{
		{value.NewInt(2), value.NewInt(20)}, // overlap
		{value.NewInt(3), value.NewInt(10)}, // only in B
	})
	sData := source.MustTable(sT, []tuple.Row{
		{value.NewInt(10), value.NewInt(100)},
		{value.NewInt(20), value.NewInt(200)},
	})
	q := query.MustNew([]*schema.Table{rT, sT},
		[]pred.P{pred.EquiJoin(0, 1, 1, 0)},
		[]query.AMDecl{
			{Table: 0, Kind: query.Scan, Data: mirrorA, ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}},
			{Table: 0, Kind: query.Scan, Data: mirrorB, ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}},
			{Table: 1, Kind: query.Scan, Data: sData, ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}},
		})
	r, err := NewRouter(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	outs, err := NewSim(r).Run()
	if err != nil {
		t.Fatal(err)
	}
	// Union of mirrors: keys 1,2,3 each join exactly once.
	if len(outs) != 3 {
		t.Fatalf("got %d results, want 3 (union of mirrors, overlap deduplicated)", len(outs))
	}
	if d := r.SteMs()[0].Stats().DupBuilds; d != 1 {
		t.Errorf("dup builds = %d, want 1 (the overlapping row)", d)
	}
}
