package eddy

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/tuple"
	"repro/internal/value"
)

// streamQuery is a two-stream equi-join on a group column; scans carry only
// placeholder rows because the test injects the stream itself.
func streamQuery(t *testing.T, window int) (*query.Q, *Router) {
	t.Helper()
	aT := schema.MustTable("A", schema.IntCol("seq"), schema.IntCol("g"))
	bT := schema.MustTable("B", schema.IntCol("seq"), schema.IntCol("g"))
	// Empty scans: streams are fed via Sim.Inject.
	aData := source.MustTable(aT, nil)
	bData := source.MustTable(bT, nil)
	q := query.MustNew([]*schema.Table{aT, bT},
		[]pred.P{pred.EquiJoin(0, 1, 1, 1)},
		[]query.AMDecl{
			{Table: 0, Kind: query.Scan, Data: aData, ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}},
			{Table: 1, Kind: query.Scan, Data: bData, ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}},
		})
	opts := Options{}
	if window > 0 {
		opts.WindowFor = func(int) int { return window }
	}
	r, err := NewRouter(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	return q, r
}

func injectStreams(sim *Sim, n int) {
	for i := 0; i < n; i++ {
		at := clock.Time(int64(i+1) * int64(10*clock.Millisecond))
		a := tuple.NewSingleton(2, 0, tuple.Row{value.NewInt(int64(i)), value.NewInt(int64(i % 4))})
		b := tuple.NewSingleton(2, 1, tuple.Row{value.NewInt(int64(i)), value.NewInt(int64((i + 1) % 4))})
		sim.Inject(a, at)
		sim.Inject(b, at)
	}
}

// TestStreamingJoinViaInject drives an unbounded-stream-style join through
// Sim.Inject and a deadline, the CACQ/PSOUP usage pattern of SteMs.
func TestStreamingJoinViaInject(t *testing.T) {
	_, r := streamQuery(t, 0)
	sim := NewSim(r)
	injectStreams(sim, 100)
	outs, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Every (a_i, b_j) with i%4 == (j+1)%4 joins: 25*25 per residue * 4.
	if len(outs) != 2500 {
		t.Fatalf("got %d results, want 2500", len(outs))
	}
}

// TestWindowedStreamBoundsStateAndResults verifies eviction keeps state
// bounded and prunes old pairings.
func TestWindowedStreamBoundsStateAndResults(t *testing.T) {
	_, r := streamQuery(t, 8)
	sim := NewSim(r)
	injectStreams(sim, 100)
	outs, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) == 0 || len(outs) >= 2500 {
		t.Fatalf("windowed join got %d results, want 0 < n < 2500", len(outs))
	}
	for _, s := range r.SteMs() {
		if s.Size() > 8 {
			t.Errorf("SteM %s holds %d rows, window is 8", s.Name(), s.Size())
		}
	}
	// Evictions actually happened.
	total := uint64(0)
	for _, s := range r.SteMs() {
		total += s.Stats().Evictions
	}
	if total == 0 {
		t.Error("no evictions recorded")
	}
}

// TestDeadlineCutsRun verifies the simulation deadline stops mid-stream.
func TestDeadlineCutsRun(t *testing.T) {
	_, r := streamQuery(t, 0)
	sim := NewSim(r)
	sim.Deadline = clock.Time(200 * clock.Millisecond) // 20 of 100 injections
	injectStreams(sim, 100)
	outs, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	full := 2500
	if len(outs) == 0 || len(outs) >= full/2 {
		t.Errorf("deadline run got %d results", len(outs))
	}
}

// TestMaxEventsGuard verifies the runaway-loop guard trips.
func TestMaxEventsGuard(t *testing.T) {
	_, r := streamQuery(t, 0)
	sim := NewSim(r)
	sim.MaxEvents = 10
	injectStreams(sim, 100)
	if _, err := sim.Run(); err == nil {
		t.Fatal("MaxEvents guard did not trip")
	}
}

// TestSkipBuildValidation covers the Section 3.5 mode's preconditions.
func TestSkipBuildValidation(t *testing.T) {
	q := twoTableQuery(t)
	if _, err := NewRouter(q, Options{SkipBuild: true, SkipBuildTable: 9}); err == nil {
		t.Error("out-of-range skip table must be rejected")
	}
	// Add an index AM to R: multiple AMs on the skip table are illegal.
	qBad := query.MustNew(q.Tables, q.Preds, append(append([]query.AMDecl{}, q.AMs...),
		query.AMDecl{Table: 0, Kind: query.Index, Data: q.AMs[0].Data,
			IndexSpec: source.IndexSpec{KeyCols: []int{1}, Latency: clock.Millisecond}}))
	if _, err := NewRouter(qBad, Options{SkipBuild: true, SkipBuildTable: 0}); err == nil {
		t.Error("skip table with an index AM must be rejected")
	}
	if _, err := NewRouter(q, Options{SkipBuild: true, SkipBuildTable: 0}); err != nil {
		t.Errorf("legal skip-build rejected: %v", err)
	}
}
