package eddy

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/clock"
	"repro/internal/oracle"
	"repro/internal/policy"
	"repro/internal/tuple"
	"repro/internal/value"
)

// mixedRoutingTuples builds a batch of tuples covering the router's paths:
// unbuilt singletons (BuildFirst fast path), built singletons (policy-routed
// probes, three per table so partitions have real width), and an EOT.
func mixedRoutingTuples(tb *testing.T) []*tuple.Tuple {
	tb.Helper()
	n := 2
	var out []*tuple.Tuple
	for tab := 0; tab < n; tab++ {
		for k := 0; k < 3; k++ {
			row := tuple.Row{value.NewInt(int64(k)), value.NewInt(int64(10 * k))}
			out = append(out, tuple.NewSingleton(n, tab, row))
		}
	}
	for tab := 0; tab < n; tab++ {
		for k := 0; k < 3; k++ {
			row := tuple.Row{value.NewInt(int64(k)), value.NewInt(int64(10 * k))}
			s := tuple.NewSingleton(n, tab, row)
			s.Built = tuple.Single(tab)
			s.CompTS[tab] = tuple.Timestamp(10*tab + k + 1)
			out = append(out, s)
		}
	}
	eotRow := tuple.Row{value.NewEOT(), value.NewEOT()}
	out = append(out, tuple.NewEOT(n, 0, eotRow, nil))
	return out
}

// TestRouteBatchMatchesPerTupleRoute routes the same mixed batch through one
// RouteBatch call and through per-tuple Route calls on an identical router,
// and requires identical decisions and identical BoundedRepetition
// bookkeeping: partition grouping must be a pure amortization.
func TestRouteBatchMatchesPerTupleRoute(t *testing.T) {
	q := twoTableQuery(t)

	r1, err := NewRouter(q, Options{Policy: policy.NewFixed()})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRouter(q, Options{Policy: policy.NewFixed()})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := mixedRoutingTuples(t)
	ts2 := mixedRoutingTuples(t)

	want := make([]Decision, 0, len(ts1))
	for _, tp := range ts1 {
		want = append(want, r1.Route(tp, NewSim(r1)))
	}
	got := r2.RouteBatch(ts2, NewSim(r2), nil)

	if len(got) != len(want) {
		t.Fatalf("RouteBatch returned %d decisions, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tuple %d (%s): batch decision %+v, per-tuple decision %+v", i, ts1[i], got[i], want[i])
		}
		v1, v2 := ts1[i].Visits, ts2[i].Visits
		if len(v1) != len(v2) {
			t.Errorf("tuple %d: visit vectors sized %d vs %d", i, len(v1), len(v2))
			continue
		}
		for m := range v1 {
			if v1[m] != v2[m] {
				t.Errorf("tuple %d: visits[%d] = %d batch vs %d per-tuple", i, m, v2[m], v1[m])
			}
		}
	}
	if r1.Routed() != r2.Routed() {
		t.Errorf("routed counters diverge: %d per-tuple vs %d batch", r1.Routed(), r2.Routed())
	}
	if r1.Stuck() != 0 || r2.Stuck() != 0 {
		t.Errorf("stuck: %d per-tuple, %d batch; want 0", r1.Stuck(), r2.Stuck())
	}
}

// TestRouteBatchSingleMatchesRoute pins the batch-of-one contract the
// simulator relies on for bit-identical figure reproduction.
func TestRouteBatchSingleMatchesRoute(t *testing.T) {
	q := twoTableQuery(t)
	for i, tp := range mixedRoutingTuples(t) {
		r1, err := NewRouter(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := NewRouter(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		one := mixedRoutingTuples(t)[i]
		want := r1.Route(tp, NewSim(r1))
		got := r2.RouteBatch([]*tuple.Tuple{one}, NewSim(r2), nil)
		if len(got) != 1 || got[0] != want {
			t.Fatalf("tuple %d: RouteBatch(1) = %+v, Route = %+v", i, got, want)
		}
	}
}

// TestConcurrentBatchSizesAgainstOracle runs the random-query correctness
// property on the concurrent engine across batch sizes, including the
// tuple-at-a-time degenerate case and sizes that leave partial batches.
func TestConcurrentBatchSizesAgainstOracle(t *testing.T) {
	sizes := []int{1, 3, 64}
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for _, bs := range sizes {
		for seed := 0; seed < seeds; seed++ {
			bs, seed := bs, seed
			t.Run(fmt.Sprintf("batch=%d/seed=%d", bs, seed), func(t *testing.T) {
				t.Parallel()
				rng := rand.New(rand.NewSource(int64(seed)))
				q := genQuery(rng)
				opts := genOptions(rng, q)
				r, err := NewRouter(q, opts)
				if err != nil {
					t.Fatalf("NewRouter: %v", err)
				}
				eng := NewConcurrent(r, clock.NewReal(0.00002))
				eng.BatchSize = bs
				outs, err := eng.Run()
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if r.Stuck() != 0 {
					t.Errorf("router stuck %d", r.Stuck())
				}
				got := make(oracle.Result)
				for _, o := range outs {
					got[o.T.ResultKey()]++
				}
				want := oracle.Compute(q)
				missing, extra := oracle.Diff(want, got)
				if len(missing) > 0 || len(extra) > 0 {
					t.Errorf("missing=%d extra=%d (got %d want %d)", len(missing), len(extra), len(got), len(want))
				}
			})
		}
	}
}
