package eddy

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/clock"
	"repro/internal/oracle"
)

// runConcurrent executes a query on the channel engine with a heavily
// compressed real clock and checks the result multiset against the oracle.
func runConcurrentAndCheck(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	q := genQuery(rng)
	opts := genOptions(rng, q)
	r, err := NewRouter(q, opts)
	if err != nil {
		t.Fatalf("seed %d: NewRouter: %v", seed, err)
	}
	// 1 virtual second = 20µs wall: a multi-minute paper run in ~ms.
	eng := NewConcurrent(r, clock.NewReal(0.00002))
	outs, err := eng.Run()
	if err != nil {
		t.Fatalf("seed %d: Run: %v", seed, err)
	}
	if r.Stuck() != 0 {
		t.Errorf("seed %d: router stuck %d", seed, r.Stuck())
	}
	got := make(oracle.Result)
	for _, o := range outs {
		got[o.T.ResultKey()]++
	}
	want := oracle.Compute(q)
	missing, extra := oracle.Diff(want, got)
	if len(missing) > 0 || len(extra) > 0 {
		t.Errorf("seed %d: missing=%d extra=%d (got %d want %d)", seed, len(missing), len(extra), len(got), len(want))
	}
}

// TestConcurrentEngineAgainstOracle runs the same Theorem 1/2 property on
// the goroutine/channel engine under true asynchrony (run with -race).
func TestConcurrentEngineAgainstOracle(t *testing.T) {
	n := 30
	if testing.Short() {
		n = 8
	}
	for seed := 0; seed < n; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runConcurrentAndCheck(t, int64(seed))
		})
	}
}

// TestEnginesEquivalentOnRandomQueries runs the same random query on both
// engines and requires identical result multisets: the discrete-event
// simulator and the goroutine/channel engine are two drivers of one
// semantics.
func TestEnginesEquivalentOnRandomQueries(t *testing.T) {
	n := 15
	if testing.Short() {
		n = 5
	}
	for seed := 500; seed < 500+n; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			collect := func(engine string) oracle.Result {
				rng := rand.New(rand.NewSource(int64(seed)))
				q := genQuery(rng)
				opts := genOptions(rng, q)
				r, err := NewRouter(q, opts)
				if err != nil {
					t.Fatalf("NewRouter: %v", err)
				}
				var outs []Output
				if engine == "sim" {
					outs, err = NewSim(r).Run()
				} else {
					outs, err = NewConcurrent(r, clock.NewReal(0.00002)).Run()
				}
				if err != nil {
					t.Fatalf("%s: %v", engine, err)
				}
				res := make(oracle.Result)
				for _, o := range outs {
					res[o.T.ResultKey()]++
				}
				return res
			}
			a, b := collect("sim"), collect("concurrent")
			m, e := oracle.Diff(a, b)
			if len(m) > 0 || len(e) > 0 {
				t.Errorf("engines disagree: missing=%d extra=%d", len(m), len(e))
			}
		})
	}
}

// TestConcurrentWallTimeout verifies a wedged-looking run aborts with the
// partial results and an error rather than hanging.
func TestConcurrentWallTimeout(t *testing.T) {
	q := twoTableQuery(t)
	r, err := NewRouter(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Uncompressed clock: the millisecond-paced scans take real
	// milliseconds, far beyond the 1ns timeout.
	eng := NewConcurrent(r, clock.NewReal(1))
	eng.WallTimeout = 1 // 1ns
	_, err = eng.Run()
	if err == nil {
		t.Fatal("want wall-timeout error")
	}
}

// TestConcurrentMatchesSimResults verifies both engines compute the same
// result set for the paper's Q1-style query.
func TestConcurrentMatchesSimResults(t *testing.T) {
	q := twoTableQuery(t)
	r1, err := NewRouter(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	simOuts, err := NewSim(r1).Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRouter(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	conOuts, err := NewConcurrent(r2, clock.NewReal(0.0001)).Run()
	if err != nil {
		t.Fatal(err)
	}
	simSet := make(oracle.Result)
	for _, o := range simOuts {
		simSet[o.T.ResultKey()]++
	}
	conSet := make(oracle.Result)
	for _, o := range conOuts {
		conSet[o.T.ResultKey()]++
	}
	m1, e1 := oracle.Diff(simSet, conSet)
	if len(m1) > 0 || len(e1) > 0 {
		t.Errorf("engines disagree: missing=%v extra=%v", m1, e1)
	}
}
