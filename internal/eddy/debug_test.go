package eddy

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"repro/internal/oracle"
	"repro/internal/query"
)

// TestDebugSeed reproduces one generator seed with a full query dump — a
// development aid for triaging property-test failures. Enable it with
// STEMS_DEBUG_SEED=<n>.
func TestDebugSeed(t *testing.T) {
	env := os.Getenv("STEMS_DEBUG_SEED")
	if env == "" {
		t.Skip("set STEMS_DEBUG_SEED=<n> to dump a generator seed")
	}
	seed, err := strconv.ParseInt(env, 10, 64)
	if err != nil {
		t.Fatalf("bad STEMS_DEBUG_SEED: %v", err)
	}
	rng := rand.New(rand.NewSource(seed))
	q := genQuery(rng)
	opts := genOptions(rng, q)
	fmt.Printf("tables=%d preds=%v\n", q.NumTables(), q.Preds)
	for i, a := range q.AMs {
		fmt.Printf("AM %d: table=%d kind=%v keycols=%v rows=%d\n", i, a.Table, a.Kind, a.IndexSpec.KeyCols, len(a.Data.Rows))
		for _, r := range a.Data.Rows {
			fmt.Printf("   %v\n", r)
		}
	}
	fmt.Printf("opts: relax=%v bounce=%v applySel=%v policy=%T\n", opts.SkipBuild, opts.ProbeBounce, opts.ApplySelectionsInAM, opts.Policy)
	r, err := NewRouter(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(r.String())
	sim := NewSim(r)
	outs, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := make(oracle.Result)
	for _, o := range outs {
		got[o.T.ResultKey()]++
	}
	want := oracle.Compute(q)
	missing, extra := oracle.Diff(want, got)
	fmt.Printf("got=%d want=%d missing=%v extra=%v stuck=%d\n", len(outs), len(want), missing, extra, r.Stuck())
	_ = query.Scan
}
