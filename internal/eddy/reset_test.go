package eddy

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/am"
	"repro/internal/clock"
	"repro/internal/oracle"
	"repro/internal/policy"
	"repro/internal/stem"
)

// checkShellPristine asserts that a router+engine shell is indistinguishable
// from a freshly constructed one: every run-scoped counter, buffer, and
// error slot at its zero value, every module's state empty. It is the
// contract the server's plan cache relies on when it pools shells across
// EXECUTEs.
func checkShellPristine(t *testing.T, r *Router, eng *Concurrent) {
	t.Helper()
	if got := r.Routed(); got != 0 {
		t.Errorf("routed = %d, want 0", got)
	}
	if got := r.Stuck(); got != 0 {
		t.Errorf("stuck = %d, want 0", got)
	}
	for i, s := range r.SteMs() {
		if got := s.Size(); got != 0 {
			t.Errorf("stem %d size = %d, want 0", i, got)
		}
		if got := s.HeldBuilds(); got != 0 {
			t.Errorf("stem %d held builds = %d, want 0", i, got)
		}
		if got := s.Stats(); !reflect.DeepEqual(got, stem.Stats{}) {
			t.Errorf("stem %d stats = %+v, want zero", i, got)
		}
	}
	for i, a2 := range r.AMs() {
		if got := a2.Stats(); !reflect.DeepEqual(got, am.Stats{}) {
			t.Errorf("am %d stats = %+v, want zero", i, got)
		}
	}
	for i, m := range r.SMs() {
		if got := m.Selectivity(); got != 1 {
			t.Errorf("sm %d selectivity = %v, want 1 (no tuples seen)", i, got)
		}
	}

	if got := eng.inflight.Load(); got != 0 {
		t.Errorf("inflight = %d, want 0", got)
	}
	if eng.outputs != nil {
		t.Errorf("outputs not nil: %d entries", len(eng.outputs))
	}
	if eng.err != nil {
		t.Errorf("err = %v, want nil", eng.err)
	}
	if eng.errSet.Load() {
		t.Error("errSet still armed")
	}
	if eng.colOn || eng.colRouter != nil {
		t.Error("columnar run state survived Reset")
	}
	if eng.OnOutput != nil {
		t.Error("OnOutput survived Reset")
	}
	for i := range eng.costEWMA {
		if got := eng.costEWMA[i].Load(); got != 0 {
			t.Errorf("costEWMA[%d] = %d, want 0", i, got)
		}
	}
	for mod := range eng.pend {
		if len(eng.pend[mod]) != 0 || len(eng.pendCol[mod]) != 0 {
			t.Errorf("module %d coalescing buffers not empty", mod)
		}
		if eng.pendCount[mod] != 0 {
			t.Errorf("module %d pendCount = %d, want 0", mod, eng.pendCount[mod])
		}
	}
	if eng.staging != nil && eng.staging.Len() != 0 {
		t.Errorf("staging holds %d tuples", eng.staging.Len())
	}
	select {
	case <-eng.done:
		t.Error("done channel still closed after Reset")
	default:
	}
	if len(eng.events) != 0 {
		t.Errorf("events channel holds %d entries", len(eng.events))
	}
	for mod, boxes := range eng.inboxes {
		for sh, ib := range boxes {
			ib.mu.Lock()
			if ib.closed || len(ib.items) != 0 || ib.tuples != 0 {
				t.Errorf("inbox %d/%d not reopened empty (closed=%v items=%d tuples=%d)",
					mod, sh, ib.closed, len(ib.items), ib.tuples)
			}
			ib.mu.Unlock()
		}
	}
}

// resetShell applies the full pooled-reuse reset sequence the server uses
// between EXECUTEs: module state through the router, run state through the
// engine, a fresh policy, a fresh clock.
func resetShell(t *testing.T, r *Router, eng *Concurrent) {
	t.Helper()
	pol, err := policy.ByName("benefitcost", 1)
	if err != nil {
		t.Fatal(err)
	}
	r.Reset(pol)
	eng.Reset()
	eng.SetClock(clock.NewReal(0.00002))
}

// TestResetShellIndistinguishableFromFresh runs one shell repeatedly —
// Reset between runs — and asserts that after each Reset the shell's state
// is pristine, each rerun reproduces the oracle result multiset, and no run
// leaves a goroutine behind (the zero-leak contract extends to reuse).
func TestResetShellIndistinguishableFromFresh(t *testing.T) {
	baseline := runtime.NumGoroutine()
	q := twoTableQuery(t)
	want := oracle.Compute(q)
	r, err := NewRouter(q, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewConcurrent(r, clock.NewReal(0.00002))
	for run := 0; run < 3; run++ {
		outs, err := eng.Run()
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		got := make(oracle.Result)
		for _, o := range outs {
			got[o.T.ResultKey()]++
		}
		missing, extra := oracle.Diff(want, got)
		if len(missing) > 0 || len(extra) > 0 {
			t.Fatalf("run %d: %d missing, %d extra results", run, len(missing), len(extra))
		}
		if r.Stuck() != 0 {
			t.Fatalf("run %d: %d stuck tuples", run, r.Stuck())
		}
		waitGoroutines(t, baseline)
		resetShell(t, r, eng)
		checkShellPristine(t, r, eng)
	}
}

// TestResetDetachesSharedState pins the Reset contract for attached
// (shared-state) SteMs, which the server's plan cache relies on when it
// pools shells for queries riding catalog-owned shared SteMs: Reset must
// DETACH — clear only per-run state (pending bounces, stats, EOT marks) —
// and never clear the shared dictionaries, which concurrent queries may be
// probing and later executions must find intact. A reset shell reruns
// against the same attachment and must reproduce the oracle multiset.
func TestResetDetachesSharedState(t *testing.T) {
	q := twoTableQuery(t)
	want := oracle.Compute(q)
	ss, err := stem.BuildShared(stem.SharedConfig{KeyCols: stem.JoinCols(q, 1)}, q.AMs[q.AMsOn(1)[0]].Data.Rows)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	r, err := NewRouter(q, Options{SharedFor: func(tbl int) *stem.SharedState {
		if tbl == 1 {
			return ss
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewConcurrent(r, clock.NewReal(0.00002))
	for run := 0; run < 3; run++ {
		outs, err := eng.Run()
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		got := make(oracle.Result)
		for _, o := range outs {
			got[o.T.ResultKey()]++
		}
		missing, extra := oracle.Diff(want, got)
		if len(missing) > 0 || len(extra) > 0 {
			t.Fatalf("run %d: %d missing, %d extra results", run, len(missing), len(extra))
		}
		resetShell(t, r, eng)
		attached := r.SteMs()[1]
		if gotSize := attached.Size(); gotSize != ss.Rows() {
			t.Fatalf("run %d: Reset cleared the shared dictionaries: size %d, want %d", run, gotSize, ss.Rows())
		}
		if gotStats := attached.Stats(); !reflect.DeepEqual(gotStats, stem.Stats{}) {
			t.Errorf("run %d: attached stats = %+v, want zero after Reset", run, gotStats)
		}
		if held := attached.HeldBuilds(); held != 0 {
			t.Errorf("run %d: attached held builds = %d, want 0", run, held)
		}
	}
}

// TestResetAfterCanceledRun: a shell whose previous run was canceled
// mid-flight (batches stranded in inboxes and coalescing buffers) must
// still reset to pristine and produce complete results on the next run —
// the plan cache only pools clean shells, but Reset itself must not depend
// on that.
func TestResetAfterCanceledRun(t *testing.T) {
	baseline := runtime.NumGoroutine()
	q := bigTwoTableQuery(t)
	want := oracle.Compute(q)
	r, err := NewRouter(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewConcurrent(r, clock.NewReal(1))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := eng.RunContext(ctx); err == nil {
		t.Fatal("want cancellation error")
	}
	waitGoroutines(t, baseline)

	resetShell(t, r, eng)
	checkShellPristine(t, r, eng)

	eng.SetClock(clock.NewReal(0.00002))
	outs, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := make(oracle.Result)
	for _, o := range outs {
		got[o.T.ResultKey()]++
	}
	missing, extra := oracle.Diff(want, got)
	if len(missing) > 0 || len(extra) > 0 {
		t.Fatalf("rerun after cancel: %d missing, %d extra results", len(missing), len(extra))
	}
	waitGoroutines(t, baseline)
}
