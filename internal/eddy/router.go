// Package eddy implements the eddy routing operator (Section 2.1.1) and the
// two engines that drive it: a deterministic discrete-event simulator and a
// concurrent channel-based engine.
//
// The eddy "continuously routes tuples among the rest of the modules
// according to a routing policy". The Router in this file owns the part the
// paper insists must not be left to the policy: the routing constraints of
// Table 2. For every tuple it computes the set of constraint-legal moves —
// BuildFirst, ProbeCompletion and BoundedRepetition are enforced here, while
// SteM BounceBack and TimeStamp live inside the SteM and AM implementations
// — and the pluggable policy merely picks among them.
package eddy

import (
	"fmt"
	"slices"
	"sync/atomic"

	"repro/internal/am"
	"repro/internal/clock"
	"repro/internal/flow"
	"repro/internal/policy"
	"repro/internal/query"
	"repro/internal/sm"
	"repro/internal/stem"
	"repro/internal/tuple"
)

// Profile holds the virtual service costs charged by each module class. The
// defaults approximate the paper's setting: main-memory hash operations are
// microseconds, remote index lookups (configured per source) are large.
type Profile struct {
	SteMBuildCost  clock.Duration
	SteMProbeCost  clock.Duration
	PerMatchCost   clock.Duration
	SMCost         clock.Duration
	AMDispatchCost clock.Duration
}

// DefaultProfile returns main-memory-scale costs.
func DefaultProfile() Profile {
	return Profile{
		SteMBuildCost:  5 * clock.Microsecond,
		SteMProbeCost:  5 * clock.Microsecond,
		PerMatchCost:   1 * clock.Microsecond,
		SMCost:         2 * clock.Microsecond,
		AMDispatchCost: 2 * clock.Microsecond,
	}
}

// Options configures a Router.
type Options struct {
	// Policy picks among legal moves; nil defaults to policy.NewFixed().
	Policy policy.Policy
	// Profile sets module service costs; the zero Profile is replaced by
	// DefaultProfile.
	Profile *Profile
	// SkipBuild enables the Section 3.5 relaxation of BuildFirst: singletons
	// from SkipBuildTable are never built into a SteM ("equivalent to
	// building a temporary index on only one side of the join") and that
	// SteM is never probed; the table's tuples act as pure probers,
	// re-probing the other SteMs — paced by RetryDelay with exponential
	// backoff and guarded by LastMatchTimeStamp — until those SteMs are
	// complete. Legal only when SkipBuildTable has exactly one scan AM
	// (Table 2's BuildFirst condition) and every other table has a scan AM
	// (so re-probes provably complete).
	SkipBuild      bool
	SkipBuildTable int
	// RetryDelay paces re-probes in relaxed mode; 0 defaults to 1ms.
	RetryDelay clock.Duration
	// ProbeBounce is passed to every SteM; see stem.ProbeBounceMode.
	ProbeBounce stem.ProbeBounceMode
	// Shards hash-partitions every SteM into this many sub-stores (rounded
	// up to a power of two) keyed by the table's first join column, giving
	// the concurrent engine one worker per shard — intra-operator
	// parallelism. 0 or 1 keeps single-store SteMs (the exact historical
	// behaviour, and what the deterministic simulator figures assume).
	// Tables with a custom dictionary or no join columns stay unsharded.
	Shards int
	// DictFor optionally overrides the dictionary implementation per table;
	// nil entries (or a nil func) default to hash dictionaries.
	DictFor func(table int) stem.Dict
	// WindowFor optionally bounds SteM sizes per table (sliding windows);
	// nil means unbounded.
	WindowFor func(table int) int
	// BuildBounceBatchFor optionally configures Grace-style batched build
	// bounce-backs per table.
	BuildBounceBatchFor func(table int) int
	// Governor, when non-nil, places all SteMs under a shared memory
	// governor (the Section 6 spilling extension).
	Governor *stem.Governor
	// SharedFor, when non-nil, supplies catalog-owned pre-built SteM state
	// per table. A table with shared state gets a probe-only attached SteM
	// over the sealed shared dictionaries (stem.Config.Shared) instead of a
	// private build — and none of its declared access methods are
	// instantiated: the state already holds the table's rows, so scanning or
	// index-probing it would only rebuild what is shared. At least one table
	// must remain unshared (its scans drive the dataflow), every shared
	// table's join columns must equal the state's key columns, and shared
	// tables take no custom dictionary, window, or governor. Attached SteMs
	// adopt the state's shard count, ignoring Shards.
	SharedFor func(table int) *stem.SharedState
	// ApplySelectionsInAM pushes selections into access modules (Table 1
	// semantics); otherwise selection modules handle them adaptively.
	ApplySelectionsInAM bool
	// DisabledAMs simulates dead sources (by index into Q.AMs).
	DisabledAMs map[int]bool
	// MaxVisits caps routings of one tuple to one module (BoundedRepetition);
	// 0 defaults to 3 (or 64 in relaxed mode).
	MaxVisits int
}

// Decision is the outcome of routing one tuple.
type Decision struct {
	// Output: the tuple spans all tables and passed all predicates.
	Output bool
	// Drop: the tuple is removed from the dataflow.
	Drop bool
	// Module is the destination module index when neither Output nor Drop.
	Module int
	// Kind is the move class, recorded so engines can attribute policy
	// feedback correctly (a SteM build and a SteM probe hit the same module
	// but must be learned apart).
	Kind policy.Kind
	// Delay postpones delivery to the module (used to pace relaxed-mode
	// re-probes).
	Delay clock.Duration
}

// amRef locates one access module.
type amRef struct {
	mod     int
	amIndex int
	kind    query.AMKind
}

// Router instantiates the query's modules (Section 2.2 steps 2–5) and routes
// tuples under the Table 2 constraints.
type Router struct {
	Q    *query.Q
	opts Options
	prof Profile
	pol  policy.Policy

	modules []flow.Module
	stemMod []int     // table -> module index
	amRefs  [][]amRef // table -> access modules
	smMod   []int     // predicate ID -> module index, -1 for joins

	stems []*stem.SteM
	ams   []*am.AM
	sms   []*sm.SM

	counter   *stem.Counter
	maxVisits uint16

	// stuck counts tuples dropped because no legal move existed; correctness
	// tests assert it stays zero.
	stuck atomic.Uint64
	// routed counts routing decisions, for experiment reporting.
	routed atomic.Uint64

	// candScratch backs candidates(): routing is single-goroutine (the eddy
	// loop, or the simulator's event loop) and no policy retains the slice
	// past Choose, so one reused buffer serves every decision.
	candScratch []policy.Candidate
}

// NewRouter builds the module graph for a query.
func NewRouter(q *query.Q, opts Options) (*Router, error) {
	r := &Router{Q: q, opts: opts, counter: &stem.Counter{}}
	if opts.Policy != nil {
		r.pol = opts.Policy
	} else {
		r.pol = policy.NewFixed()
	}
	if opts.Profile != nil {
		r.prof = *opts.Profile
	} else {
		r.prof = DefaultProfile()
	}
	if opts.MaxVisits > 0 {
		r.maxVisits = uint16(opts.MaxVisits)
	} else if opts.SkipBuild {
		r.maxVisits = 64
	} else {
		r.maxVisits = 3
	}
	if r.opts.RetryDelay == 0 {
		r.opts.RetryDelay = clock.Millisecond
	}
	if opts.SkipBuild {
		st := opts.SkipBuildTable
		if st < 0 || st >= q.NumTables() {
			return nil, fmt.Errorf("eddy: SkipBuildTable %d out of range", st)
		}
		if ams := q.AMsOn(st); len(ams) != 1 || q.AMs[ams[0]].Kind != query.Scan {
			return nil, fmt.Errorf("eddy: SkipBuild requires table %s to have exactly one scan AM (Table 2 BuildFirst condition)", q.Tables[st].Name)
		}
		for t := 0; t < q.NumTables(); t++ {
			if t != st && !q.HasScanAM(t) {
				return nil, fmt.Errorf("eddy: SkipBuild requires every other table to have a scan AM; %s has none", q.Tables[t].Name)
			}
		}
	}

	n := q.NumTables()
	r.stemMod = make([]int, n)
	r.amRefs = make([][]amRef, n)

	// Shared attachments: validate before instantiating anything.
	sharedFor := func(t int) *stem.SharedState {
		if opts.SharedFor == nil {
			return nil
		}
		return opts.SharedFor(t)
	}
	if opts.SharedFor != nil {
		unshared := 0
		for t := 0; t < n; t++ {
			ss := sharedFor(t)
			if ss == nil {
				unshared++
				continue
			}
			if opts.SkipBuild {
				return nil, fmt.Errorf("eddy: SkipBuild cannot combine with shared SteM attachments")
			}
			if opts.DictFor != nil && opts.DictFor(t) != nil {
				return nil, fmt.Errorf("eddy: table %s attaches shared state and cannot take a custom dictionary", q.Tables[t].Name)
			}
			if opts.WindowFor != nil && opts.WindowFor(t) > 0 {
				return nil, fmt.Errorf("eddy: table %s attaches shared state and cannot be windowed", q.Tables[t].Name)
			}
			if !slices.Equal(stem.JoinCols(q, t), ss.KeyCols()) {
				return nil, fmt.Errorf("eddy: table %s joins on %v but its shared state indexes %v",
					q.Tables[t].Name, stem.JoinCols(q, t), ss.KeyCols())
			}
		}
		if unshared == 0 {
			return nil, fmt.Errorf("eddy: shared SteM attachments require at least one unshared table to drive the dataflow")
		}
	}

	// Step 4: a SteM on each base table.
	for t := 0; t < n; t++ {
		cfg := stem.Config{
			Table:        t,
			Q:            q,
			TS:           r.counter,
			Shards:       opts.Shards,
			BuildCost:    r.prof.SteMBuildCost,
			ProbeCost:    r.prof.SteMProbeCost,
			PerMatchCost: r.prof.PerMatchCost,
			ProbeBounce:  opts.ProbeBounce,
			Gov:          opts.Governor,
		}
		if opts.DictFor != nil {
			cfg.Dict = opts.DictFor(t)
		}
		if opts.WindowFor != nil {
			cfg.Window = opts.WindowFor(t)
		}
		if opts.BuildBounceBatchFor != nil {
			cfg.BuildBounceBatch = opts.BuildBounceBatchFor(t)
		}
		if ss := sharedFor(t); ss != nil {
			cfg.Shared = ss
			cfg.Gov = nil
			cfg.BuildBounceBatch = 0
		}
		s := stem.New(cfg)
		r.stemMod[t] = len(r.modules)
		r.modules = append(r.modules, s)
		r.stems = append(r.stems, s)
	}

	// Step 2: an AM on each declared access method. Tables attached to
	// shared state skip theirs: the sealed state already holds every row,
	// and with no access modules the table produces no singletons, no EOTs,
	// and no builds — its SteM is probe-only.
	for ai := range q.AMs {
		if sharedFor(q.AMs[ai].Table) != nil {
			continue
		}
		a, err := am.New(am.Config{
			Q:               q,
			AMIndex:         ai,
			DispatchCost:    r.prof.AMDispatchCost,
			ApplySelections: opts.ApplySelectionsInAM,
			Disabled:        opts.DisabledAMs[ai],
		})
		if err != nil {
			return nil, err
		}
		t := q.AMs[ai].Table
		r.amRefs[t] = append(r.amRefs[t], amRef{mod: len(r.modules), amIndex: ai, kind: q.AMs[ai].Kind})
		r.modules = append(r.modules, a)
		r.ams = append(r.ams, a)
	}

	// Step 3: an SM on each selection predicate (joins are verified inside
	// SteMs and AMs).
	r.smMod = make([]int, len(q.Preds))
	for i := range r.smMod {
		r.smMod[i] = -1
	}
	for _, p := range q.Preds {
		if p.IsJoin() {
			continue
		}
		m := sm.New(p, r.prof.SMCost)
		r.smMod[p.ID] = len(r.modules)
		r.modules = append(r.modules, m)
		r.sms = append(r.sms, m)
	}
	return r, nil
}

// Modules returns the module list; indexes are stable module IDs.
func (r *Router) Modules() []flow.Module { return r.modules }

// SteMs returns the instantiated State Modules in table order.
func (r *Router) SteMs() []*stem.SteM { return r.stems }

// AMs returns the instantiated access modules in declaration order.
func (r *Router) AMs() []*am.AM { return r.ams }

// SMs returns the instantiated selection modules.
func (r *Router) SMs() []*sm.SM { return r.sms }

// SteMModule returns the module index of table t's SteM.
func (r *Router) SteMModule(t int) int { return r.stemMod[t] }

// Policy returns the router's policy.
func (r *Router) Policy() policy.Policy { return r.pol }

// Stuck returns the number of tuples dropped for lack of a legal move; it
// must be zero for a well-formed query.
func (r *Router) Stuck() uint64 { return r.stuck.Load() }

// Routed returns the number of routing decisions made.
func (r *Router) Routed() uint64 { return r.routed.Load() }

// Reset returns the router and every module it instantiated to their
// just-constructed state, so a pooled router+engine shell can run the same
// query again without rebuilding the module graph: SteM stores empty, AM
// dedup caches and stats cleared, selection counters zeroed, and the build
// timestamp counter restarted. A non-nil pol replaces the routing policy —
// policies learn per run, so pooled reuse installs a fresh one rather than
// leak routing statistics between executions. Must not be called while a
// run is in progress; SteMs with custom dictionaries cannot be reset (see
// stem.SteM.Reset) and such routers must not be pooled.
func (r *Router) Reset(pol policy.Policy) {
	if pol != nil {
		r.pol = pol
	}
	r.counter.Reset()
	for _, s := range r.stems {
		s.Reset()
	}
	for _, a := range r.ams {
		a.Reset()
	}
	for _, m := range r.sms {
		m.Reset()
	}
	r.stuck.Store(0)
	r.routed.Store(0)
}

// DrainSpill implements the engines' spill-drain hook: at quiescence —
// every EOT delivered, no tuple in flight — each SteM with real disk spill
// replays its recorded probes against its spilled partitions and the
// regenerated results re-enter the dataflow. Engines iterate the drain until
// it returns nothing: a replayed result may probe another spilled SteM,
// recording a fresh replay obligation for the next round. Returns nil
// whenever real spill is off, so ungoverned runs are untouched.
func (r *Router) DrainSpill() []flow.Emission {
	if !r.opts.Governor.SpillActive() {
		return nil
	}
	var out []flow.Emission
	for _, s := range r.stems {
		out = append(out, s.DrainSpill()...)
	}
	return out
}

// Seeds returns the seed tuples that initialize every scan AM (step 5).
func (r *Router) Seeds() []*tuple.Tuple {
	n := r.Q.NumTables()
	var out []*tuple.Tuple
	for t := 0; t < n; t++ {
		for _, ref := range r.amRefs[t] {
			if ref.kind == query.Scan {
				out = append(out, tuple.NewSeed(n, ref.mod))
			}
		}
	}
	return out
}

// Route decides the fate of one tuple returned to the eddy.
func (r *Router) Route(t *tuple.Tuple, env policy.Env) Decision {
	r.routed.Add(1)
	if d, ok := r.routeFast(t); ok {
		return d
	}
	cands := r.candidates(t)
	if len(cands) == 0 {
		return r.noCandidates(t)
	}
	choice := r.pol.Choose(t, cands, env)
	if choice < 0 || choice >= len(cands) {
		choice = 0
	}
	return r.applyChoice(t, cands[choice])
}

// RouteBatch decides the fate of every tuple of one batch, appending one
// Decision per tuple (in input order) to dst. Tuples that share routing
// state — the lineage and readiness fields the Table 2 constraints and the
// policies read — form one partition, whose constraint-legal moves are
// computed and whose policy decision is made once; per-tuple bookkeeping
// (BoundedRepetition visits, re-probe pacing) is still applied individually.
// A batch of one routes exactly like Route.
func (r *Router) RouteBatch(ts []*tuple.Tuple, env policy.Env, dst []Decision) []Decision {
	if len(ts) == 1 {
		return append(dst, r.Route(ts[0], env))
	}
	r.routed.Add(uint64(len(ts)))
	base := len(dst)
	for range ts {
		dst = append(dst, Decision{})
	}

	// Pass 1: resolve constraint-forced moves per tuple and partition the
	// rest by routing signature.
	type group struct {
		idxs []int
	}
	var order []routeSig
	groups := make(map[routeSig]*group)
	for i, t := range ts {
		if d, ok := r.routeFast(t); ok {
			dst[base+i] = d
			continue
		}
		sig := sigOf(t)
		g := groups[sig]
		if g == nil {
			g = &group{}
			groups[sig] = g
			order = append(order, sig)
		}
		g.idxs = append(g.idxs, i)
	}

	// Pass 2: one candidate computation and one policy decision per
	// partition, applied to every member.
	for _, sig := range order {
		g := groups[sig]
		rep := ts[g.idxs[0]]
		cands := r.candidates(rep)
		if len(cands) == 0 {
			for _, i := range g.idxs {
				dst[base+i] = r.noCandidates(ts[i])
			}
			continue
		}
		choice := r.choose(rep, len(g.idxs), cands, env)
		if choice < 0 || choice >= len(cands) {
			choice = 0
		}
		for _, i := range g.idxs {
			dst[base+i] = r.applyChoice(ts[i], cands[choice])
		}
	}
	return dst
}

// RouteCol decides the fate of a columnar batch as one unit. The batch's
// routing header is uniform by construction — every row has routed together
// its whole life, and the columnar module paths preserve that (SteMs split
// bounced batches rather than let HasMatches diverge) — so it is one
// RouteBatch partition: one constraint computation, one policy choice, one
// shared visit increment, with no representative materialization beyond a
// stack tuple carrying the header fields the constraints and policies read.
func (r *Router) RouteCol(cb *flow.ColBatch, env policy.Env) Decision {
	n := cb.Rows()
	r.routed.Add(uint64(n))
	rep := tuple.Tuple{
		Span:        cb.Span,
		Done:        cb.Done,
		Built:       cb.Built,
		PriorProber: cb.PriorProber,
		ProbeTable:  cb.ProbeTable,
		AMProbed:    cb.AMProbed,
		LastMatchTS: cb.LastMatchTS,
	}
	if len(cb.Visits) > 0 {
		// Pooled batches keep an empty non-nil Visits slice; visit() treats
		// nil as the lazily-sized zero vector.
		rep.Visits = cb.Visits
	}
	if cb.HasMatches {
		rep.LastProbeMatches = 1
	}
	t := &rep
	var d Decision
	if fd, ok := r.routeFast(t); ok {
		d = fd
	} else if cands := r.candidates(t); len(cands) == 0 {
		d = r.noCandidates(t)
	} else {
		choice := r.choose(t, n, cands, env)
		if choice < 0 || choice >= len(cands) {
			choice = 0
		}
		d = r.applyChoice(t, cands[choice])
	}
	if t.Visits != nil {
		cb.Visits = t.Visits // visit() may have lazily allocated the vector
	}
	return d
}

// choose asks the policy for a decision covering n routing-equivalent
// tuples, through the batch entry point when the policy offers one.
func (r *Router) choose(t *tuple.Tuple, n int, cands []policy.Candidate, env policy.Env) int {
	if n > 1 {
		if bc, ok := r.pol.(policy.BatchChooser); ok {
			return bc.ChooseBatch(t, n, cands, env)
		}
	}
	return r.pol.Choose(t, cands, env)
}

// routeSig is the partition key of RouteBatch: two tuples with equal
// signatures see identical constraint-legal moves and identical policy
// inputs (up to the exact LastProbeMatches count, which policies read only
// as a zero/nonzero signal). The visit-count vector is packed exactly into
// two uint64 words in the common case (≤16 modules, counts ≤255), so
// partitioning a batch allocates no key material; larger vectors fall back
// to a string encoding. Both encodings are bijective — this is a partition
// key, not a hash, and a collision would illegally share one policy
// decision across differently-constrained tuples.
type routeSig struct {
	span       tuple.TableSet
	done       tuple.PredSet
	built      tuple.TableSet
	probeTable int
	flags      uint8
	visitsLo   uint64
	visitsHi   uint64
	visits     string
}

const (
	sigPriorProber uint8 = 1 << iota
	sigAMProbed
	sigHasMatches
)

// sigOf computes a tuple's routing signature.
func sigOf(t *tuple.Tuple) routeSig {
	sig := routeSig{span: t.Span, done: t.Done, built: t.Built}
	if t.PriorProber {
		sig.flags |= sigPriorProber
		sig.probeTable = t.ProbeTable
	}
	if t.AMProbed {
		sig.flags |= sigAMProbed
	}
	if t.LastProbeMatches > 0 {
		sig.flags |= sigHasMatches
	}
	sig.visitsLo, sig.visitsHi, sig.visits = visitsKey(t.Visits)
	return sig
}

// visitsKey encodes a visit-count vector compactly: one byte per module
// packed into two uint64 words when it fits, a string otherwise. An
// all-zero vector normalizes to the zero encoding so fresh and lazily-sized
// tuples group together.
func visitsKey(v []uint16) (lo, hi uint64, s string) {
	allZero := true
	for _, x := range v {
		if x != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return 0, 0, ""
	}
	if len(v) <= 16 {
		packable := true
		for _, x := range v {
			if x > 0xff {
				packable = false
				break
			}
		}
		if packable {
			for i, x := range v {
				if i < 8 {
					lo |= uint64(x) << (8 * i)
				} else {
					hi |= uint64(x) << (8 * (i - 8))
				}
			}
			return lo, hi, ""
		}
	}
	b := make([]byte, 2*len(v))
	for i, x := range v {
		b[2*i] = byte(x)
		b[2*i+1] = byte(x >> 8)
	}
	return 0, 0, string(b)
}

// routeFast resolves the moves Table 2 forces outright, before any policy
// involvement; ok is false when the tuple needs a candidate computation.
func (r *Router) routeFast(t *tuple.Tuple) (Decision, bool) {
	// Seeds go straight to their scan AM.
	if t.Seed {
		return Decision{Module: t.SeedAM, Kind: policy.ProbeAM}, true
	}
	// EOT tuples are routed as build tuples to their table's SteM; after
	// that they leave the dataflow.
	if t.EOT != nil {
		if r.visit(t, r.stemMod[t.EOT.Table]) {
			return Decision{Module: r.stemMod[t.EOT.Table], Kind: policy.BuildSteM}, true
		}
		return Decision{Drop: true}, true
	}
	// BuildFirst outranks output: a single-table query with competitive AMs
	// relies on the build's set-semantics dedup ("because of the BuildFirst
	// constraint, such duplicates can be easily removed when they build into
	// the SteM on the source itself", Section 3.2). Only the designated
	// skip-build table is exempt.
	if t.IsSingleton() && !t.Built.Has(t.SingleTable()) && !t.PriorProber && !r.skips(t.SingleTable()) {
		mod := r.stemMod[t.SingleTable()]
		if r.visit(t, mod) {
			return Decision{Module: mod, Kind: policy.BuildSteM}, true
		}
		return Decision{Drop: true}, true
	}
	// "A tuple is removed from the eddy's dataflow and sent to the output if
	// it spans all base tables and is verified to pass all predicates."
	if t.Span == r.Q.AllTables() && t.Done == r.Q.AllPreds() {
		return Decision{Output: true}, true
	}
	// A prior prober that has probed its completion AM has served its
	// purpose: the AM's matches regenerate its results.
	if t.PriorProber && t.AMProbed {
		return Decision{Drop: true}, true
	}
	return Decision{}, false
}

// noCandidates decides the fate of a tuple with no constraint-legal move.
func (r *Router) noCandidates(t *tuple.Tuple) Decision {
	if t.PriorProber && r.safeDrop(t) {
		return Decision{Drop: true}
	}
	// In skip-build mode, tuples not spanning the skip table are pure
	// state: once built (and through their selections) they leave the
	// dataflow; every result is generated by a skip-side prober.
	if r.opts.SkipBuild && !t.Span.Has(r.opts.SkipBuildTable) {
		return Decision{Drop: true}
	}
	// No legal move: should be unreachable for validated queries.
	r.stuck.Add(1)
	return Decision{Drop: true}
}

// applyChoice turns the selected candidate into a Decision for one tuple,
// applying the per-tuple BoundedRepetition bookkeeping.
func (r *Router) applyChoice(t *tuple.Tuple, c policy.Candidate) Decision {
	if c.Kind == policy.DropTuple {
		return Decision{Drop: true}
	}
	if !r.visit(t, c.Module) {
		// BoundedRepetition exhausted; fall back to dropping if safe.
		if t.PriorProber && r.safeDrop(t) {
			return Decision{Drop: true}
		}
		r.stuck.Add(1)
		return Decision{Drop: true}
	}
	d := Decision{Module: c.Module, Kind: c.Kind}
	if c.Kind == policy.ProbeSteM && t.PriorProber {
		// Pace relaxed-mode re-probes with exponential backoff so the visit
		// budget comfortably outlasts the scans feeding the SteM.
		shift := uint(t.Visits[c.Module]) - 1
		if shift > 16 {
			shift = 16
		}
		d.Delay = r.opts.RetryDelay << shift
	}
	return d
}

// candidates computes the constraint-legal moves for a tuple. The returned
// slice is scratch, valid until the next candidates call.
func (r *Router) candidates(t *tuple.Tuple) []policy.Candidate {
	q := r.Q
	cs := r.candScratch[:0]

	// BuildFirst is enforced by Route before this point; singletons reaching
	// here are either built or from the designated skip-build table.

	// ProbeCompletion: a prior prober may only re-probe the SteM on its
	// probe completion table or probe that table's AMs; it must stay in the
	// dataflow until it has probed a completion AM (or dropping is safe).
	if t.PriorProber {
		pt := t.ProbeTable
		// An AM probe is only useful if every component of the prober is
		// cached: the returning matches find their join partners by probing
		// the prober's SteMs — the "rendezvous buffer" of Section 3.3. A
		// tuple with unbuilt components (relaxed BuildFirst) must instead
		// keep re-probing the SteM until the scan completes it.
		if t.Built.Contains(t.Span) {
			for _, ref := range r.amRefs[pt] {
				if ref.kind != query.Index || r.opts.DisabledAMs[ref.amIndex] {
					continue
				}
				if !q.CanBindIndexAM(t.Span, ref.amIndex) || !r.canVisit(t, ref.mod) {
					continue
				}
				cs = append(cs, policy.Candidate{Module: ref.mod, Kind: policy.ProbeAM, Table: pt})
			}
		}
		if r.opts.SkipBuild && t.Span.Has(r.opts.SkipBuildTable) && r.canVisit(t, r.stemMod[pt]) {
			cs = append(cs, policy.Candidate{Module: r.stemMod[pt], Kind: policy.ProbeSteM, Table: pt})
		}
		if r.safeDrop(t) {
			cs = append(cs, policy.Candidate{Module: r.stemMod[pt], Kind: policy.DropTuple, Table: pt})
		}
		r.candScratch = cs
		return cs
	}

	// Selections not yet passed.
	for _, p := range q.Preds {
		if p.IsJoin() || t.Done.Has(p.ID) || !p.ApplicableTo(t.Span) {
			continue
		}
		mod := r.smMod[p.ID]
		if mod >= 0 && r.canVisit(t, mod) {
			cs = append(cs, policy.Candidate{Module: mod, Kind: policy.Selection, Table: p.Left.Table, PredID: p.ID})
		}
	}

	// SteM probes into connected, unspanned tables. In skip-build mode only
	// tuples spanning the skip table probe at all (they are the sole result
	// generators), and nothing ever probes the skip table's empty SteM.
	if r.opts.SkipBuild && !t.Span.Has(r.opts.SkipBuildTable) {
		r.candScratch = cs
		return cs
	}
	for x := 0; x < q.NumTables(); x++ {
		if t.Span.Has(x) {
			continue
		}
		if r.opts.SkipBuild && x == r.opts.SkipBuildTable {
			continue
		}
		if !q.Connects(t.Span, x) {
			continue
		}
		if !r.canVisit(t, r.stemMod[x]) {
			continue
		}
		// If x has no scan AM, a bounced probe must be able to bind an
		// index AM on x; otherwise probing x now is a dead end.
		if !q.HasScanAM(x) && !r.anyBindableIndexAM(t, x) {
			continue
		}
		cs = append(cs, policy.Candidate{Module: r.stemMod[x], Kind: policy.ProbeSteM, Table: x})
	}
	r.candScratch = cs
	return cs
}

func (r *Router) anyBindableIndexAM(t *tuple.Tuple, x int) bool {
	for _, ref := range r.amRefs[x] {
		if ref.kind == query.Index && !r.opts.DisabledAMs[ref.amIndex] && r.Q.CanBindIndexAM(t.Span, ref.amIndex) {
			return true
		}
	}
	return false
}

// skips reports whether table tab is the designated skip-build table.
func (r *Router) skips(tab int) bool {
	return r.opts.SkipBuild && r.opts.SkipBuildTable == tab
}

// safeDrop reports whether removing a prior prober loses no results: either
// it has probed a completion AM (its matches are in flight), or its probe
// completion table has a scan AM and every component of the tuple is cached
// in the other SteMs, so the scan side regenerates everything.
func (r *Router) safeDrop(t *tuple.Tuple) bool {
	if t.AMProbed {
		return true
	}
	pt := t.ProbeTable
	if r.opts.WindowFor != nil && r.opts.WindowFor(pt) > 0 {
		// Windowed semantics: joins against evicted (out-of-window) rows are
		// intentionally not produced, so the prober may always be dropped.
		return true
	}
	if !r.Q.HasScanAM(pt) || !t.Built.Contains(t.Span) {
		return false
	}
	return true
}

// canVisit reports whether BoundedRepetition still permits routing t to mod.
func (r *Router) canVisit(t *tuple.Tuple, mod int) bool {
	if t.Visits == nil {
		return true
	}
	return t.Visits[mod] < r.maxVisits
}

// visit counts a routing of t to mod, returning false if the bound is hit.
func (r *Router) visit(t *tuple.Tuple, mod int) bool {
	if t.Visits == nil {
		t.Visits = make([]uint16, len(r.modules))
	}
	if t.Visits[mod] >= r.maxVisits {
		return false
	}
	t.Visits[mod]++
	return true
}

// String describes the instantiated module graph.
func (r *Router) String() string {
	s := fmt.Sprintf("eddy over %d modules:", len(r.modules))
	for i, m := range r.modules {
		s += fmt.Sprintf(" [%d]%s", i, m.Name())
	}
	return s
}
