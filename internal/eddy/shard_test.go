package eddy

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/clock"
	"repro/internal/oracle"
)

// TestShardedConcurrentAgainstOracle runs the Theorem 1/2 property on the
// concurrent engine with hash-partitioned SteM shards: random queries,
// policies, and access-method mixes must produce exactly the oracle result
// multiset at every shard count. Run with -race — per-shard workers, EOT
// replication, and cross-shard sweep probes all execute under true
// asynchrony here.
func TestShardedConcurrentAgainstOracle(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 4
	}
	for _, shards := range []int{2, 8} {
		for seed := 0; seed < n; seed++ {
			shards, seed := shards, seed
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				t.Parallel()
				rng := rand.New(rand.NewSource(int64(seed)))
				q := genQuery(rng)
				opts := genOptions(rng, q)
				// Custom dictionaries force single shards; drop them so the
				// sharded paths actually engage.
				opts.DictFor = nil
				opts.Shards = shards
				r, err := NewRouter(q, opts)
				if err != nil {
					t.Fatalf("NewRouter: %v", err)
				}
				eng := NewConcurrent(r, clock.NewReal(0.00002))
				outs, err := eng.Run()
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if r.Stuck() != 0 {
					t.Errorf("router stuck %d", r.Stuck())
				}
				got := make(oracle.Result)
				for _, o := range outs {
					got[o.T.ResultKey()]++
				}
				want := oracle.Compute(q)
				missing, extra := oracle.Diff(want, got)
				if len(missing) > 0 || len(extra) > 0 {
					t.Errorf("missing=%d extra=%d (got %d want %d)",
						len(missing), len(extra), len(got), len(want))
				}
			})
		}
	}
}

// TestShardCountsEquivalent runs one fixed query at shard counts 1, 2, and 8
// on the concurrent engine and requires identical result multisets: sharding
// is a scheduling choice, never a semantic one.
func TestShardCountsEquivalent(t *testing.T) {
	var ref oracle.Result
	for _, shards := range []int{1, 2, 8} {
		q := twoTableQuery(t)
		r, err := NewRouter(q, Options{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		outs, err := NewConcurrent(r, clock.NewReal(0.0001)).Run()
		if err != nil {
			t.Fatal(err)
		}
		got := make(oracle.Result)
		for _, o := range outs {
			got[o.T.ResultKey()]++
		}
		if ref == nil {
			ref = got
			continue
		}
		m, e := oracle.Diff(ref, got)
		if len(m) > 0 || len(e) > 0 {
			t.Errorf("shards=%d disagrees with shards=1: missing=%d extra=%d", shards, len(m), len(e))
		}
	}
}

// TestShardedSimulatorDeterminism verifies the simulator remains
// deterministic when SteMs are sharded (the module dispatches to shards
// internally; single-threaded drivers see identical behaviour run to run).
func TestShardedSimulatorDeterminism(t *testing.T) {
	run := func() []Output {
		q := twoTableQuery(t)
		r, err := NewRouter(q, Options{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		outs, err := NewSim(r).Run()
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].T.ResultKey() != b[i].T.ResultKey() {
			t.Fatalf("output %d differs", i)
		}
	}
}
