package eddy

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/oracle"
	"repro/internal/policy"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/tuple"
	"repro/internal/value"
)

// intRow builds a row of integer values.
func intRow(vs ...int64) tuple.Row {
	r := make(tuple.Row, len(vs))
	for i, v := range vs {
		r[i] = value.NewInt(v)
	}
	return r
}

// rowsOf builds rows from int matrices.
func rowsOf(m [][]int64) []tuple.Row {
	out := make([]tuple.Row, len(m))
	for i, vs := range m {
		out[i] = intRow(vs...)
	}
	return out
}

// scanAM declares a plain scan with the given inter-arrival pacing.
func scanAM(table int, data *source.Table, inter clock.Duration) query.AMDecl {
	return query.AMDecl{Table: table, Kind: query.Scan, Data: data,
		ScanSpec: source.ScanSpec{InterArrival: inter}}
}

// indexAM declares an index AM on the given key columns.
func indexAM(table int, data *source.Table, keyCols []int, lat clock.Duration, par int) query.AMDecl {
	return query.AMDecl{Table: table, Kind: query.Index, Data: data,
		IndexSpec: source.IndexSpec{KeyCols: keyCols, Latency: lat, Parallel: par}}
}

// runAndCheck executes the query under the router options and compares the
// output multiset against the brute-force oracle; it also asserts that the
// router never got stuck and no duplicates arose (Theorems 1 and 2).
func runAndCheck(t *testing.T, q *query.Q, opts Options) []Output {
	t.Helper()
	r, err := NewRouter(q, opts)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	sim := NewSim(r)
	outs, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Stuck() != 0 {
		t.Errorf("router stuck-dropped %d tuples", r.Stuck())
	}
	got := make(oracle.Result)
	for _, o := range outs {
		got[o.T.ResultKey()]++
	}
	want := oracle.Compute(q)
	missing, extra := oracle.Diff(want, got)
	if len(missing) > 0 {
		t.Errorf("missing %d results, e.g. %q (got %d, want %d)", len(missing), missing[0], len(got), len(want))
	}
	if len(extra) > 0 {
		t.Errorf("extra/duplicate %d results, e.g. %q", len(extra), extra[0])
	}
	return outs
}

// twoTableQuery is R(key,a) ⋈ S(x,y) on R.a = S.x with scans on both.
func twoTableQuery(t *testing.T) *query.Q {
	t.Helper()
	rT := schema.MustTable("R", schema.IntCol("key"), schema.IntCol("a"))
	sT := schema.MustTable("S", schema.IntCol("x"), schema.IntCol("y"))
	rData := source.MustTable(rT, rowsOf([][]int64{{1, 10}, {2, 20}, {3, 10}, {4, 30}}))
	sData := source.MustTable(sT, rowsOf([][]int64{{10, 100}, {20, 200}, {40, 400}, {10, 101}}))
	return query.MustNew(
		[]*schema.Table{rT, sT},
		[]pred.P{pred.EquiJoin(0, 1, 1, 0)},
		[]query.AMDecl{
			scanAM(0, rData, clock.Millisecond),
			scanAM(1, sData, clock.Millisecond),
		},
	)
}

func TestTwoTableSymmetricHashJoin(t *testing.T) {
	outs := runAndCheck(t, twoTableQuery(t), Options{})
	if len(outs) != 5 {
		t.Fatalf("got %d results, want 5", len(outs))
	}
}

func TestTwoTableWithSelection(t *testing.T) {
	rT := schema.MustTable("R", schema.IntCol("key"), schema.IntCol("a"))
	sT := schema.MustTable("S", schema.IntCol("x"), schema.IntCol("y"))
	rData := source.MustTable(rT, rowsOf([][]int64{{1, 10}, {2, 20}, {3, 10}}))
	sData := source.MustTable(sT, rowsOf([][]int64{{10, 100}, {20, 200}}))
	q := query.MustNew(
		[]*schema.Table{rT, sT},
		[]pred.P{
			pred.EquiJoin(0, 1, 1, 0),
			pred.Selection(0, 0, pred.Le, value.NewInt(2)),   // R.key <= 2
			pred.Selection(1, 1, pred.Lt, value.NewInt(150)), // S.y < 150
		},
		[]query.AMDecl{
			scanAM(0, rData, clock.Millisecond),
			scanAM(1, sData, clock.Millisecond),
		},
	)
	outs := runAndCheck(t, q, Options{})
	if len(outs) != 1 {
		t.Fatalf("got %d results, want 1", len(outs))
	}
}

func TestSingleTableSelection(t *testing.T) {
	rT := schema.MustTable("R", schema.IntCol("key"), schema.IntCol("a"))
	rData := source.MustTable(rT, rowsOf([][]int64{{1, 10}, {2, 20}, {3, 30}}))
	q := query.MustNew(
		[]*schema.Table{rT},
		[]pred.P{pred.Selection(0, 1, pred.Ge, value.NewInt(20))},
		[]query.AMDecl{scanAM(0, rData, clock.Millisecond)},
	)
	outs := runAndCheck(t, q, Options{})
	if len(outs) != 2 {
		t.Fatalf("got %d results, want 2", len(outs))
	}
}

func TestThreeTableChain(t *testing.T) {
	// R(k,a) ⋈ S(x,y) ⋈ T(z,w): R.a=S.x and S.y=T.z.
	rT := schema.MustTable("R", schema.IntCol("k"), schema.IntCol("a"))
	sT := schema.MustTable("S", schema.IntCol("x"), schema.IntCol("y"))
	tT := schema.MustTable("T", schema.IntCol("z"), schema.IntCol("w"))
	rData := source.MustTable(rT, rowsOf([][]int64{{1, 10}, {2, 20}, {3, 10}}))
	sData := source.MustTable(sT, rowsOf([][]int64{{10, 5}, {20, 6}, {10, 7}}))
	tData := source.MustTable(tT, rowsOf([][]int64{{5, 50}, {6, 60}, {7, 70}, {5, 51}}))
	q := query.MustNew(
		[]*schema.Table{rT, sT, tT},
		[]pred.P{pred.EquiJoin(0, 1, 1, 0), pred.EquiJoin(1, 1, 2, 0)},
		[]query.AMDecl{
			scanAM(0, rData, clock.Millisecond),
			scanAM(1, sData, 2*clock.Millisecond),
			scanAM(2, tData, 500*clock.Microsecond),
		},
	)
	runAndCheck(t, q, Options{})
}

func TestIndexOnlyTable(t *testing.T) {
	// R has a scan; S only an index AM on S.x (Figure 4's scenario).
	rT := schema.MustTable("R", schema.IntCol("key"), schema.IntCol("a"))
	sT := schema.MustTable("S", schema.IntCol("x"), schema.IntCol("y"))
	rData := source.MustTable(rT, rowsOf([][]int64{{1, 10}, {2, 20}, {3, 10}, {4, 99}}))
	sData := source.MustTable(sT, rowsOf([][]int64{{10, 100}, {20, 200}, {10, 101}}))
	q := query.MustNew(
		[]*schema.Table{rT, sT},
		[]pred.P{pred.EquiJoin(0, 1, 1, 0)},
		[]query.AMDecl{
			scanAM(0, rData, clock.Millisecond),
			indexAM(1, sData, []int{0}, 10*clock.Millisecond, 1),
		},
	)
	outs := runAndCheck(t, q, Options{})
	if len(outs) != 5 {
		t.Fatalf("got %d results, want 5", len(outs))
	}
}

func TestCyclicTriangleQuery(t *testing.T) {
	// Triangle query: R.a=S.x, S.y=T.z, T.w=R.k — cyclic join graph, no
	// a-priori spanning tree (Section 3.4).
	rT := schema.MustTable("R", schema.IntCol("k"), schema.IntCol("a"))
	sT := schema.MustTable("S", schema.IntCol("x"), schema.IntCol("y"))
	tT := schema.MustTable("T", schema.IntCol("z"), schema.IntCol("w"))
	rData := source.MustTable(rT, rowsOf([][]int64{{1, 10}, {2, 20}, {3, 10}}))
	sData := source.MustTable(sT, rowsOf([][]int64{{10, 5}, {20, 6}, {10, 6}}))
	tData := source.MustTable(tT, rowsOf([][]int64{{5, 1}, {6, 2}, {6, 3}, {5, 2}}))
	q := query.MustNew(
		[]*schema.Table{rT, sT, tT},
		[]pred.P{
			pred.EquiJoin(0, 1, 1, 0),
			pred.EquiJoin(1, 1, 2, 0),
			pred.EquiJoin(2, 1, 0, 0),
		},
		[]query.AMDecl{
			scanAM(0, rData, clock.Millisecond),
			scanAM(1, sData, clock.Millisecond),
			scanAM(2, tData, clock.Millisecond),
		},
	)
	runAndCheck(t, q, Options{})
}

func TestCompetitiveScans(t *testing.T) {
	// Two scan AMs on R deliver the same data; set-semantics dedup in the
	// SteM must keep results exact (Section 3.2).
	q := twoTableQuery(t)
	rDup := q.AMs[0]
	rDup.ScanSpec = source.ScanSpec{InterArrival: 3 * clock.Millisecond}
	q2 := query.MustNew(q.Tables, q.Preds, append([]query.AMDecl{rDup}, q.AMs...))
	runAndCheck(t, q2, Options{})
}

func TestPoliciesAgreeOnResults(t *testing.T) {
	pols := map[string]func() policy.Policy{
		"fixed":       func() policy.Policy { return policy.NewFixed() },
		"lottery":     func() policy.Policy { return policy.NewLottery(42) },
		"benefitcost": func() policy.Policy { return policy.NewBenefitCost(7) },
	}
	for name, mk := range pols {
		t.Run(name, func(t *testing.T) {
			runAndCheck(t, twoTableQuery(t), Options{Policy: mk()})
		})
	}
}
