// sim.go is the deterministic discrete-event engine. The paper notes the
// modules' asynchrony "can also be achieved in a single-threaded
// implementation [24]"; this engine is exactly that: every module runs as a
// queued server on a virtual clock, so the paper's time-series experiments
// regenerate deterministically in milliseconds of wall time.
package eddy

import (
	"container/heap"
	"context"
	"fmt"

	"repro/internal/clock"
	"repro/internal/flow"
	"repro/internal/policy"
	"repro/internal/tuple"
)

// Output is one result tuple with its emission time.
type Output struct {
	T  *tuple.Tuple
	At clock.Time
}

type evKind uint8

const (
	evArrive   evKind = iota // tuple arrives at the eddy for routing
	evEnqueue                // tuple arrives at a module's queue
	evComplete               // a module finishes servicing a tuple
)

type event struct {
	at    clock.Time
	seq   uint64
	kind  evKind
	t     *tuple.Tuple
	mod   int
	mkind policy.Kind // move class, for policy feedback attribution
	ems   []flow.Emission
	cost  clock.Duration
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// server is one module's queueing state.
type server struct {
	queue    []queued
	busy     int
	cap      int // 0 = unbounded
	ewmaCost float64
	seen     uint64
}

func (s *server) observeCost(c clock.Duration) {
	s.seen++
	if s.seen == 1 {
		s.ewmaCost = c.Seconds()
		return
	}
	s.ewmaCost = 0.2*c.Seconds() + 0.8*s.ewmaCost
}

// Routing abstracts what the engines need from a router, so the baseline
// executors (static plans and the eddy-with-join-modules architecture of
// Figure 1) run on the same engines as the SteM eddy. Routing is
// batch-at-a-time: engines hand back batches of returned tuples and receive
// one Decision per tuple; Route is the batch-of-one special case, and
// RouteBatch with a single tuple must decide exactly as Route.
type Routing interface {
	// Route decides the fate of a tuple returned to the eddy.
	Route(t *tuple.Tuple, env policy.Env) Decision
	// RouteBatch decides the fate of every tuple of a batch, appending one
	// Decision per tuple (in input order) to dst and returning it.
	RouteBatch(ts []*tuple.Tuple, env policy.Env, dst []Decision) []Decision
	// Modules returns the module list; indexes are stable module IDs.
	Modules() []flow.Module
	// Seeds returns the initial tuples injected at time zero.
	Seeds() []*tuple.Tuple
	// Policy returns the policy to feed observations to.
	Policy() policy.Policy
}

// spillDrainer is the optional Routing extension for out-of-core SteMs: at
// quiescence the engines call DrainSpill and feed the replayed results back
// into the dataflow, repeating until it returns nothing (see
// Router.DrainSpill).
type spillDrainer interface {
	DrainSpill() []flow.Emission
}

// Sim drives a Routing on a virtual clock.
type Sim struct {
	r       Routing
	heap    eventHeap
	seq     uint64
	servers []server
	now     clock.Time

	// Deadline, when >0, stops the run at that virtual time (used for
	// continuous queries over unbounded streams).
	Deadline clock.Time
	// MaxEvents guards against runaway routing loops; 0 defaults to 50M.
	MaxEvents uint64
	// Ctx, when non-nil, cancels the run: the event loop polls it every few
	// hundred events and returns the results so far plus Ctx.Err(). Left
	// nil (the default) the loop is untouched, so the deterministic figure
	// reproductions are bit-identical.
	Ctx context.Context

	// OnOutput is called for each result tuple.
	OnOutput func(t *tuple.Tuple, at clock.Time)
	// OnProcess is called after each module service completes, with the
	// productive output count (emissions other than the input bouncing
	// back).
	OnProcess func(mod int, t *tuple.Tuple, at clock.Time, outputs int, cost clock.Duration)
	// OnEmit is called for every tuple a module emits back to the eddy —
	// including intermediate (partial-span) results, which the online
	// processing metric of the paper values (Section 3.4).
	OnEmit func(t *tuple.Tuple, at clock.Time)

	outputs []Output
	events  uint64

	// scratchT/scratchD are the reused batch-of-one buffers route feeds
	// through RouteBatch: the simulator drives the batch dataflow at batch
	// size 1, which reproduces tuple-at-a-time routing bit-identically.
	scratchT []*tuple.Tuple
	scratchD []Decision
}

// NewSim prepares a simulation run for the router's query.
func NewSim(r Routing) *Sim {
	s := &Sim{r: r}
	mods := r.Modules()
	s.servers = make([]server, len(mods))
	for i, m := range mods {
		s.servers[i].cap = m.Parallel()
	}
	return s
}

// Now implements policy.Env.
func (s *Sim) Now() clock.Time { return s.now }

// Backlog implements policy.Env: the estimated wait before service at mod.
func (s *Sim) Backlog(mod int) clock.Duration {
	sv := &s.servers[mod]
	waiting := len(sv.queue)
	if sv.cap > 0 {
		waiting += sv.busy
		return clock.Duration(float64(waiting) / float64(sv.cap) * sv.ewmaCost * float64(clock.Second))
	}
	return 0
}

// Inject schedules a tuple's arrival at the eddy at the given time; used by
// streaming experiments to feed unbounded sources.
func (s *Sim) Inject(t *tuple.Tuple, at clock.Time) {
	s.push(&event{at: at, kind: evArrive, t: t})
}

func (s *Sim) push(e *event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.heap, e)
}

// Run executes the query to completion (or the deadline) and returns the
// result tuples in output order.
func (s *Sim) Run() ([]Output, error) {
	for _, seed := range s.r.Seeds() {
		s.push(&event{at: 0, kind: evArrive, t: seed})
	}
	return s.loop()
}

// RunDelta continues a completed run with newly arrived tuples: each is
// injected at the current virtual time and simulated to quiescence against
// the SteM state the earlier rounds built, and only the results of this
// round are returned. The SteM timestamp constraint makes the rounds
// compose exactly — an injected tuple's probes match every strictly-older
// build, so each cross-round combination is produced by its last-arriving
// component, exactly once.
func (s *Sim) RunDelta(ts []*tuple.Tuple) ([]Output, error) {
	mark := len(s.outputs)
	for _, t := range ts {
		s.Inject(t, s.now)
	}
	outs, err := s.loop()
	if err != nil {
		return nil, err
	}
	return outs[mark:], nil
}

// loop drains the event heap (plus any spill replay) to quiescence.
func (s *Sim) loop() ([]Output, error) {
	max := s.MaxEvents
	if max == 0 {
		max = 50_000_000
	}
	for {
		for s.heap.Len() > 0 {
			e := heap.Pop(&s.heap).(*event)
			if s.Deadline > 0 && e.at > s.Deadline {
				return s.outputs, nil
			}
			if e.at < s.now {
				return nil, fmt.Errorf("eddy: time went backwards (%v < %v)", e.at, s.now)
			}
			s.now = e.at
			s.events++
			if s.events > max {
				return nil, fmt.Errorf("eddy: exceeded %d events — runaway routing loop?", max)
			}
			if s.Ctx != nil && s.events&255 == 0 {
				select {
				case <-s.Ctx.Done():
					return s.outputs, fmt.Errorf("eddy: run canceled after %d events: %w", s.events, s.Ctx.Err())
				default:
				}
			}
			switch e.kind {
			case evArrive:
				s.route(e.t)
			case evEnqueue:
				s.enqueue(e.mod, e.t, e.mkind)
			case evComplete:
				s.complete(e)
			}
		}
		// Quiescent: every EOT delivered, nothing in flight. Replay spilled
		// SteM state, if any, and keep simulating the regenerated results;
		// ungoverned runs get an empty drain and finish exactly as before.
		sd, ok := s.r.(spillDrainer)
		if !ok {
			break
		}
		ems := sd.DrainSpill()
		if len(ems) == 0 {
			break
		}
		for _, em := range ems {
			s.push(&event{at: s.now.Add(em.Delay), kind: evArrive, t: em.T})
		}
	}
	return s.outputs, nil
}

// Outputs returns the results recorded so far.
func (s *Sim) Outputs() []Output { return s.outputs }

// Events returns the number of simulation events processed.
func (s *Sim) Events() uint64 { return s.events }

func (s *Sim) route(t *tuple.Tuple) {
	s.scratchT = append(s.scratchT[:0], t)
	s.scratchD = s.r.RouteBatch(s.scratchT, s, s.scratchD[:0])
	d := s.scratchD[0]
	switch {
	case d.Output:
		s.outputs = append(s.outputs, Output{T: t, At: s.now})
		if s.OnOutput != nil {
			s.OnOutput(t, s.now)
		}
	case d.Drop:
		// removed from the dataflow
	default:
		if d.Delay > 0 {
			s.push(&event{at: s.now.Add(d.Delay), kind: evEnqueue, t: t, mod: d.Module, mkind: d.Kind})
		} else {
			s.enqueue(d.Module, t, d.Kind)
		}
	}
}

type queued struct {
	t     *tuple.Tuple
	mkind policy.Kind
}

func (s *Sim) enqueue(mod int, t *tuple.Tuple, mkind policy.Kind) {
	sv := &s.servers[mod]
	if sv.cap == 0 || sv.busy < sv.cap {
		s.startService(mod, t, mkind)
		return
	}
	sv.queue = append(sv.queue, queued{t, mkind})
}

func (s *Sim) startService(mod int, t *tuple.Tuple, mkind policy.Kind) {
	sv := &s.servers[mod]
	sv.busy++
	ems, cost := s.r.Modules()[mod].Process(t, s.now)
	sv.observeCost(cost)
	s.push(&event{at: s.now.Add(cost), kind: evComplete, t: t, mod: mod, mkind: mkind, ems: ems, cost: cost})
}

func (s *Sim) complete(e *event) {
	sv := &s.servers[e.mod]
	sv.busy--
	outputs := 0
	for _, em := range e.ems {
		if em.T != e.t {
			outputs++
		}
		if s.OnEmit != nil {
			s.OnEmit(em.T, s.now.Add(em.Delay))
		}
		s.push(&event{at: s.now.Add(em.Delay), kind: evArrive, t: em.T})
	}
	s.r.Policy().Observe(policy.Feedback{
		Module: e.mod, Kind: e.mkind, Sig: uint64(e.t.Span),
		Outputs: outputs, Emitted: len(e.ems), Cost: e.cost, Now: s.now,
	})
	if s.OnProcess != nil {
		s.OnProcess(e.mod, e.t, s.now, outputs, e.cost)
	}
	if len(sv.queue) > 0 && (sv.cap == 0 || sv.busy < sv.cap) {
		next := sv.queue[0]
		sv.queue = sv.queue[1:]
		s.startService(e.mod, next.t, next.mkind)
	}
}
