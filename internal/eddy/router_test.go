package eddy

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/policy"
	"repro/internal/query"
	"repro/internal/source"
	"repro/internal/tuple"
	"repro/internal/value"
)

// fakeEnv satisfies policy.Env for direct Route calls.
type fakeEnv struct{}

func (fakeEnv) Now() clock.Time            { return 0 }
func (fakeEnv) Backlog(int) clock.Duration { return 0 }

// indexQuery returns R(scan) ⋈ S(index-only) and its router.
func indexQuery(t *testing.T, opts Options) (*query.Q, *Router) {
	t.Helper()
	q := func() *query.Q {
		base := twoTableQuery(t)
		sIdx := query.AMDecl{Table: 1, Kind: query.Index, Data: base.AMs[1].Data,
			IndexSpec: source.IndexSpec{KeyCols: []int{0}, Latency: clock.Millisecond}}
		return query.MustNew(base.Tables, base.Preds, []query.AMDecl{base.AMs[0], sIdx})
	}()
	r, err := NewRouter(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	return q, r
}

func TestRouteSeedGoesToItsAM(t *testing.T) {
	_, r := indexQuery(t, Options{})
	seed := tuple.NewSeed(2, 1)
	d := r.Route(seed, fakeEnv{})
	if d.Output || d.Drop || d.Module != 1 {
		t.Errorf("seed decision = %+v", d)
	}
}

func TestRouteEOTGoesToSteM(t *testing.T) {
	_, r := indexQuery(t, Options{})
	eot := tuple.NewEOT(2, 1, tuple.Row{value.NewEOT(), value.NewEOT()}, nil)
	d := r.Route(eot, fakeEnv{})
	if d.Module != r.SteMModule(1) || d.Kind != policy.BuildSteM {
		t.Errorf("EOT decision = %+v", d)
	}
}

func TestRouteBuildFirst(t *testing.T) {
	_, r := indexQuery(t, Options{})
	rt := tuple.NewSingleton(2, 0, intRow(1, 10))
	d := r.Route(rt, fakeEnv{})
	if d.Module != r.SteMModule(0) || d.Kind != policy.BuildSteM {
		t.Errorf("unbuilt singleton decision = %+v, want build into SteM(R)", d)
	}
}

func TestRouteBuiltSingletonProbes(t *testing.T) {
	_, r := indexQuery(t, Options{})
	rt := tuple.NewSingleton(2, 0, intRow(1, 10))
	rt.Built = tuple.Single(0)
	rt.CompTS[0] = 1
	d := r.Route(rt, fakeEnv{})
	if d.Kind != policy.ProbeSteM || d.Module != r.SteMModule(1) {
		t.Errorf("built singleton decision = %+v, want probe SteM(S)", d)
	}
}

func TestRoutePriorProberToIndexAM(t *testing.T) {
	_, r := indexQuery(t, Options{})
	rt := tuple.NewSingleton(2, 0, intRow(1, 10))
	rt.Built = tuple.Single(0)
	rt.CompTS[0] = 1
	rt.PriorProber = true
	rt.ProbeTable = 1
	d := r.Route(rt, fakeEnv{})
	if d.Kind != policy.ProbeAM {
		t.Errorf("prior prober decision = %+v, want ProbeAM", d)
	}
}

func TestRoutePriorProberAfterAMProbeDropped(t *testing.T) {
	_, r := indexQuery(t, Options{})
	rt := tuple.NewSingleton(2, 0, intRow(1, 10))
	rt.Built = tuple.Single(0)
	rt.PriorProber = true
	rt.ProbeTable = 1
	rt.AMProbed = true
	if d := r.Route(rt, fakeEnv{}); !d.Drop {
		t.Errorf("AM-probed prior prober decision = %+v, want drop", d)
	}
}

func TestRouteOutputWhenComplete(t *testing.T) {
	q, r := indexQuery(t, Options{})
	a := tuple.NewSingleton(2, 0, intRow(1, 10))
	a.Built = tuple.Single(0)
	a.CompTS[0] = 1
	b := tuple.NewSingleton(2, 1, intRow(10, 100))
	b.Built = tuple.Single(1)
	b.CompTS[1] = 2
	cat := a.Concat(b)
	cat.Done = q.AllPreds()
	if d := r.Route(cat, fakeEnv{}); !d.Output {
		t.Errorf("complete tuple decision = %+v, want output", d)
	}
}

func TestRouteBoundedRepetition(t *testing.T) {
	_, r := indexQuery(t, Options{MaxVisits: 1})
	rt := tuple.NewSingleton(2, 0, intRow(1, 10))
	// First route: build.
	d := r.Route(rt, fakeEnv{})
	if d.Kind != policy.BuildSteM {
		t.Fatal("want build")
	}
	// Simulate the tuple somehow returning unbuilt (adversarial): visits
	// are exhausted, so the router must drop rather than loop.
	d2 := r.Route(rt, fakeEnv{})
	if !d2.Drop {
		t.Errorf("repeat decision = %+v, want drop under MaxVisits=1", d2)
	}
}

func TestRouterStringAndAccessors(t *testing.T) {
	_, r := indexQuery(t, Options{})
	if r.String() == "" {
		t.Error("String empty")
	}
	if len(r.SteMs()) != 2 || len(r.AMs()) != 2 || len(r.SMs()) != 0 {
		t.Errorf("module counts: stems=%d ams=%d sms=%d", len(r.SteMs()), len(r.AMs()), len(r.SMs()))
	}
	if r.Policy() == nil {
		t.Error("default policy missing")
	}
}

// TestRouteHybridChoiceCandidates verifies a bounced probe on a table with
// scan+index AMs is offered both the index probe and the safe drop — the
// Section 4.3 decision point.
func TestRouteHybridChoiceCandidates(t *testing.T) {
	base := twoTableQuery(t)
	sIdx := query.AMDecl{Table: 1, Kind: query.Index, Data: base.AMs[1].Data,
		IndexSpec: source.IndexSpec{KeyCols: []int{0}, Latency: clock.Millisecond}}
	q := query.MustNew(base.Tables, base.Preds, []query.AMDecl{base.AMs[0], base.AMs[1], sIdx})
	r, err := NewRouter(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt := tuple.NewSingleton(2, 0, intRow(1, 10))
	rt.Built = tuple.Single(0)
	rt.CompTS[0] = 1
	rt.PriorProber = true
	rt.ProbeTable = 1
	cands := r.candidates(rt)
	var hasAM, hasDrop bool
	for _, c := range cands {
		switch c.Kind {
		case policy.ProbeAM:
			hasAM = true
		case policy.DropTuple:
			hasDrop = true
		}
	}
	if !hasAM || !hasDrop {
		t.Errorf("hybrid candidates = %+v, want both ProbeAM and DropTuple", cands)
	}
}
