package eddy

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/clock"
	"repro/internal/oracle"
	"repro/internal/policy"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/tuple"
	"repro/internal/value"
)

// genMixedQuery builds a random SPJ query whose columns mix value kinds —
// integer columns, string columns (exercising dictionary-encoded vectors),
// and ~10% null values (exercising the null bitmaps) — and whose scans mostly
// deliver in a burst (zero inter-arrival), the configuration under which the
// access modules emit columnar batches. EOT markers reach the columnar
// kernels through the completeness tuples every source emits.
func genMixedQuery(rng *rand.Rand) *query.Q {
	nt := 1 + rng.Intn(4)
	tables := make([]*schema.Table, nt)
	datas := make([]*source.Table, nt)
	kinds := make([][]value.Kind, nt)
	for i := 0; i < nt; i++ {
		nc := 2 + rng.Intn(2)
		cols := make([]schema.Column, nc)
		kinds[i] = make([]value.Kind, nc)
		for c := range cols {
			if rng.Intn(2) == 0 {
				cols[c] = schema.IntCol(fmt.Sprintf("c%d", c))
				kinds[i][c] = value.Int
			} else {
				cols[c] = schema.StrCol(fmt.Sprintf("c%d", c))
				kinds[i][c] = value.Str
			}
		}
		tables[i] = schema.MustTable(fmt.Sprintf("T%d", i), cols...)
		nr := 1 + rng.Intn(12)
		seen := make(map[string]bool)
		var rows []tuple.Row
		for r := 0; r < nr; r++ {
			row := make(tuple.Row, nc)
			for c := range row {
				switch {
				case rng.Intn(10) == 0:
					row[c] = value.NewNull()
				case kinds[i][c] == value.Int:
					row[c] = value.NewInt(int64(rng.Intn(5)))
				default:
					row[c] = value.NewStr(fmt.Sprintf("s%d", rng.Intn(5)))
				}
			}
			if k := row.Key(); !seen[k] {
				seen[k] = true
				rows = append(rows, row)
			}
		}
		datas[i] = source.MustTable(tables[i], rows)
	}

	// Spanning tree of equi-joins; prefer same-kind column pairs so the join
	// actually produces matches (cross-kind equality never holds).
	pickPair := func(a, b int) (int, int) {
		for tries := 0; tries < 8; tries++ {
			ca, cb := rng.Intn(len(kinds[a])), rng.Intn(len(kinds[b]))
			if kinds[a][ca] == kinds[b][cb] {
				return ca, cb
			}
		}
		return rng.Intn(len(kinds[a])), rng.Intn(len(kinds[b]))
	}
	var preds []pred.P
	for i := 1; i < nt; i++ {
		j := rng.Intn(i)
		cj, ci := pickPair(j, i)
		preds = append(preds, pred.EquiJoin(j, cj, i, ci))
	}
	if nt >= 3 && rng.Intn(2) == 0 {
		a, b := rng.Intn(nt), rng.Intn(nt)
		if a != b {
			ca, cb := pickPair(a, b)
			preds = append(preds, pred.EquiJoin(a, ca, b, cb))
		}
	}
	// Random selections over both kinds.
	for i := 0; i < nt; i++ {
		if rng.Intn(3) == 0 {
			c := rng.Intn(len(kinds[i]))
			ops := []pred.Op{pred.Le, pred.Ge, pred.Lt, pred.Gt, pred.Eq, pred.Ne}
			var cv value.V
			if kinds[i][c] == value.Int {
				cv = value.NewInt(int64(rng.Intn(5)))
			} else {
				cv = value.NewStr(fmt.Sprintf("s%d", rng.Intn(5)))
			}
			preds = append(preds, pred.Selection(i, c, ops[rng.Intn(len(ops))], cv))
		}
	}

	var ams []query.AMDecl
	for i := 0; i < nt; i++ {
		scan := query.AMDecl{Table: i, Kind: query.Scan, Data: datas[i]}
		if rng.Intn(4) == 0 {
			// A paced scan keeps the row-representation AM path in the mix.
			scan.ScanSpec = source.ScanSpec{InterArrival: clock.Duration(1+rng.Intn(3)) * clock.Millisecond}
		}
		var idxCol = -1
		for _, p := range preds {
			if !p.IsEquiJoin() {
				continue
			}
			if p.Left.Table == i {
				idxCol = p.Left.Col
				break
			}
			if p.Right.Table == i {
				idxCol = p.Right.Col
				break
			}
		}
		if idxCol >= 0 && rng.Intn(4) == 0 {
			// An index AM forces the SteM's columnar probe gate (per-value
			// completeness) onto the row fallback for this table.
			idx := query.AMDecl{Table: i, Kind: query.Index, Data: datas[i],
				IndexSpec: source.IndexSpec{KeyCols: []int{idxCol},
					Latency: clock.Duration(1+rng.Intn(5)) * clock.Millisecond, Parallel: 1 + rng.Intn(3)}}
			ams = append(ams, scan, idx)
			continue
		}
		ams = append(ams, scan)
	}
	return query.MustNew(tables, preds, ams)
}

// colRunConfig is one point of the cross-representation sweep.
type colRunConfig struct {
	batch    int
	shards   int
	columnar bool
}

// runConcurrentConfig executes q on the concurrent engine under one
// configuration and returns the result multiset.
func runConcurrentConfig(t *testing.T, q *query.Q, opts Options, cfg colRunConfig) oracle.Result {
	t.Helper()
	opts.Shards = cfg.shards
	r, err := NewRouter(q, opts)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	eng := NewConcurrent(r, clock.NewReal(0.00002))
	eng.BatchSize = cfg.batch
	eng.Columnar = cfg.columnar
	outs, err := eng.Run()
	if err != nil {
		t.Fatalf("Run(%+v): %v", cfg, err)
	}
	if r.Stuck() != 0 {
		t.Errorf("router stuck %d under %+v", r.Stuck(), cfg)
	}
	got := make(oracle.Result)
	for _, o := range outs {
		got[o.T.ResultKey()]++
	}
	return got
}

// TestColumnarRowEquivalence is the cross-representation property: for random
// queries mixing Int, Str and Null values (EOT markers travel as completeness
// tuples in every run), the columnar dataflow and the row dataflow produce
// the same result multiset — both equal to the brute-force oracle — across
// batch sizes 1, 3 and 64, SteM shard counts 1 and 4, and both engines (the
// deterministic simulator is the row-representation reference engine).
func TestColumnarRowEquivalence(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	batches := []int{1, 3, 64}
	shards := []int{1, 4}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(7000 + seed)))
			q := genMixedQuery(rng)
			var opts Options
			switch rng.Intn(3) {
			case 0:
				opts.Policy = policy.NewFixed()
			case 1:
				opts.Policy = policy.NewLottery(rng.Int63())
			default:
				opts.Policy = policy.NewBenefitCost(rng.Int63())
			}
			want := oracle.Compute(q)

			// Row-representation reference engine: the simulator.
			r, err := NewRouter(q, opts)
			if err != nil {
				t.Fatalf("NewRouter: %v", err)
			}
			simOuts, err := NewSim(r).Run()
			if err != nil {
				t.Fatalf("sim: %v", err)
			}
			simGot := make(oracle.Result)
			for _, o := range simOuts {
				simGot[o.T.ResultKey()]++
			}
			if missing, extra := oracle.Diff(want, simGot); len(missing) > 0 || len(extra) > 0 {
				t.Fatalf("simulator: missing=%d extra=%d", len(missing), len(extra))
			}

			for _, bs := range batches {
				for _, sh := range shards {
					for _, columnar := range []bool{true, false} {
						cfg := colRunConfig{batch: bs, shards: sh, columnar: columnar}
						t.Logf("running %+v", cfg)
						got := runConcurrentConfig(t, q, opts, cfg)
						missing, extra := oracle.Diff(want, got)
						if len(missing) > 0 || len(extra) > 0 {
							t.Errorf("%+v: missing=%d extra=%d (got %d want %d)",
								cfg, len(missing), len(extra), len(got), len(want))
						}
					}
				}
			}
		})
	}
}

// TestColumnarPathActivates pins that the columnar dataflow actually engages
// for the burst-scan multiway join (the configuration the batch benchmarks
// measure): with columnar on, the SteMs must service builds without the row
// path's per-tuple processing ever producing different statistics totals,
// and the engine must produce the oracle multiset. The build counters double-check
// the test is not vacuous: a silently disabled columnar path would still pass
// the equivalence property.
func TestColumnarPathActivates(t *testing.T) {
	q := mixedBurstQuery()
	want := oracle.Compute(q)
	for _, sh := range []int{1, 4} {
		r, err := NewRouter(q, Options{Shards: sh})
		if err != nil {
			t.Fatal(err)
		}
		eng := NewConcurrent(r, clock.NewReal(0.00002))
		eng.BatchSize = 64
		outs, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		got := make(oracle.Result)
		for _, o := range outs {
			got[o.T.ResultKey()]++
		}
		if missing, extra := oracle.Diff(want, got); len(missing) > 0 || len(extra) > 0 {
			t.Fatalf("shards=%d: missing=%d extra=%d", sh, len(missing), len(extra))
		}
		var builds uint64
		for _, s := range r.SteMs() {
			builds += s.Stats().Builds
		}
		if builds == 0 {
			t.Fatalf("shards=%d: no SteM builds recorded", sh)
		}
	}
}

// mixedBurstQuery is a fixed three-table join with int and string join keys
// and burst scans — the deterministic companion to the randomized sweep.
func mixedBurstQuery() *query.Q {
	rT := schema.MustTable("R", schema.IntCol("key"), schema.StrCol("tag"))
	sT := schema.MustTable("S", schema.StrCol("tag"), schema.IntCol("grp"))
	tT := schema.MustTable("T", schema.IntCol("grp"), schema.IntCol("w"))
	var rRows, sRows, tRows []tuple.Row
	for i := 0; i < 40; i++ {
		rRows = append(rRows, tuple.Row{value.NewInt(int64(i)), value.NewStr(fmt.Sprintf("t%d", i%7))})
	}
	for i := 0; i < 14; i++ {
		v := value.NewInt(int64(i % 5))
		if i%11 == 10 {
			v = value.NewNull()
		}
		sRows = append(sRows, tuple.Row{value.NewStr(fmt.Sprintf("t%d", i%7)), v})
	}
	for i := 0; i < 10; i++ {
		tRows = append(tRows, tuple.Row{value.NewInt(int64(i % 5)), value.NewInt(int64(i))})
	}
	// Distinct rows only (set semantics).
	dedup := func(rows []tuple.Row) []tuple.Row {
		seen := make(map[string]bool)
		var out []tuple.Row
		for _, r := range rows {
			if k := r.Key(); !seen[k] {
				seen[k] = true
				out = append(out, r)
			}
		}
		return out
	}
	rRows, sRows, tRows = dedup(rRows), dedup(sRows), dedup(tRows)
	return query.MustNew(
		[]*schema.Table{rT, sT, tT},
		[]pred.P{
			pred.EquiJoin(0, 1, 1, 0), // R.tag = S.tag (string key)
			pred.EquiJoin(1, 1, 2, 0), // S.grp = T.grp (int key, with a null)
		},
		[]query.AMDecl{
			{Table: 0, Kind: query.Scan, Data: source.MustTable(rT, rRows)},
			{Table: 1, Kind: query.Scan, Data: source.MustTable(sT, sRows)},
			{Table: 2, Kind: query.Scan, Data: source.MustTable(tT, tRows)},
		},
	)
}
