package eddy

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/clock"
	"repro/internal/oracle"
	"repro/internal/policy"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/stem"
	"repro/internal/tuple"
	"repro/internal/value"
)

// genQuery builds a random SPJ query: 1–4 tables with random small-domain
// integer data, a random spanning tree of equi-joins (plus an optional extra
// cycle edge and comparison join), random selections, and a random mix of
// scan and index access methods that passes bind-order validation.
func genQuery(rng *rand.Rand) *query.Q {
	nt := 1 + rng.Intn(4)
	tables := make([]*schema.Table, nt)
	datas := make([]*source.Table, nt)
	for i := 0; i < nt; i++ {
		nc := 2 + rng.Intn(2)
		cols := make([]schema.Column, nc)
		for c := range cols {
			cols[c] = schema.IntCol(fmt.Sprintf("c%d", c))
		}
		tables[i] = schema.MustTable(fmt.Sprintf("T%d", i), cols...)
		nr := 1 + rng.Intn(12)
		seen := make(map[string]bool)
		var rows []tuple.Row
		for r := 0; r < nr; r++ {
			row := make(tuple.Row, nc)
			for c := range row {
				row[c] = value.NewInt(int64(rng.Intn(5)))
			}
			// Sources deliver sets: the engine's set semantics (Section 3.2)
			// dedups on build, but relaxed-BuildFirst runs may legally skip
			// builds, so in-source duplicates would make results
			// routing-dependent.
			if k := row.Key(); !seen[k] {
				seen[k] = true
				rows = append(rows, row)
			}
		}
		datas[i] = source.MustTable(tables[i], rows)
	}

	var preds []pred.P
	// Spanning tree of equi-joins keeps the join graph connected.
	for i := 1; i < nt; i++ {
		j := rng.Intn(i)
		preds = append(preds, pred.EquiJoin(j, rng.Intn(tables[j].Arity()), i, rng.Intn(tables[i].Arity())))
	}
	// Optional extra edge creating a cycle.
	if nt >= 3 && rng.Intn(2) == 0 {
		a, b := rng.Intn(nt), rng.Intn(nt)
		if a != b {
			preds = append(preds, pred.EquiJoin(a, rng.Intn(tables[a].Arity()), b, rng.Intn(tables[b].Arity())))
		}
	}
	// Optional comparison join on an existing edge.
	if nt >= 2 && rng.Intn(3) == 0 {
		p0 := preds[0]
		ops := []pred.Op{pred.Le, pred.Ge, pred.Ne}
		preds = append(preds, pred.Join(p0.Left.Table, rng.Intn(tables[p0.Left.Table].Arity()),
			ops[rng.Intn(len(ops))], p0.Right.Table, rng.Intn(tables[p0.Right.Table].Arity())))
	}
	// Random selections.
	for i := 0; i < nt; i++ {
		if rng.Intn(3) == 0 {
			ops := []pred.Op{pred.Le, pred.Ge, pred.Lt, pred.Gt, pred.Eq}
			preds = append(preds, pred.Selection(i, rng.Intn(tables[i].Arity()),
				ops[rng.Intn(len(ops))], value.NewInt(int64(rng.Intn(5)))))
		}
	}

	// Access methods: every table gets a scan; some additionally get an
	// index on a column referenced by an equi-join (so probes can bind it);
	// occasionally the scan is replaced by the index alone if the bind
	// order stays feasible.
	var ams []query.AMDecl
	for i := 0; i < nt; i++ {
		scan := query.AMDecl{Table: i, Kind: query.Scan, Data: datas[i],
			ScanSpec: source.ScanSpec{InterArrival: clock.Duration(1+rng.Intn(5)) * clock.Millisecond}}
		var idxCol = -1
		for _, p := range preds {
			if !p.IsEquiJoin() {
				continue
			}
			if p.Left.Table == i {
				idxCol = p.Left.Col
				break
			}
			if p.Right.Table == i {
				idxCol = p.Right.Col
				break
			}
		}
		switch {
		case idxCol >= 0 && rng.Intn(3) == 0:
			idx := query.AMDecl{Table: i, Kind: query.Index, Data: datas[i],
				IndexSpec: source.IndexSpec{KeyCols: []int{idxCol},
					Latency: clock.Duration(1+rng.Intn(20)) * clock.Millisecond, Parallel: 1 + rng.Intn(3)}}
			if rng.Intn(2) == 0 {
				ams = append(ams, scan, idx) // both
			} else {
				ams = append(ams, idx) // index only (may fail validation)
			}
		case rng.Intn(4) == 0:
			// Competitive scans: two scan AMs over the same data.
			scan2 := scan
			scan2.ScanSpec = source.ScanSpec{InterArrival: clock.Duration(1+rng.Intn(8)) * clock.Millisecond}
			ams = append(ams, scan, scan2)
		default:
			ams = append(ams, scan)
		}
	}

	q, err := query.New(tables, preds, ams)
	if err != nil {
		// Infeasible bind order (index-only tables can do that): fall back
		// to scans everywhere.
		var safe []query.AMDecl
		for i := 0; i < nt; i++ {
			safe = append(safe, query.AMDecl{Table: i, Kind: query.Scan, Data: datas[i],
				ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}})
		}
		q = query.MustNew(tables, preds, safe)
	}
	return q
}

// genOptions builds random router options legal for the query.
func genOptions(rng *rand.Rand, q *query.Q) Options {
	var opts Options
	switch rng.Intn(4) {
	case 0:
		opts.Policy = policy.NewFixed()
	case 1:
		opts.Policy = policy.NewLottery(rng.Int63())
	case 2:
		opts.Policy = policy.NewRandom(rng.Int63())
	default:
		opts.Policy = policy.NewBenefitCost(rng.Int63())
	}
	if rng.Intn(2) == 0 {
		opts.ProbeBounce = stem.BounceIfIndexAM
	}
	// Section 3.5 skip-build relaxation: eligible tables have exactly one
	// scan AM while every other table also has a scan.
	if rng.Intn(3) == 0 {
		allScanned := true
		for t := 0; t < q.NumTables(); t++ {
			if !q.HasScanAM(t) {
				allScanned = false
				break
			}
		}
		if allScanned {
			var eligible []int
			for t := 0; t < q.NumTables(); t++ {
				if ams := q.AMsOn(t); len(ams) == 1 && q.AMs[ams[0]].Kind == query.Scan {
					eligible = append(eligible, t)
				}
			}
			if len(eligible) > 0 {
				opts.SkipBuild = true
				opts.SkipBuildTable = eligible[rng.Intn(len(eligible))]
			}
		}
	}
	switch rng.Intn(4) {
	case 0:
		opts.DictFor = func(table int) stem.Dict { return stem.NewListDict() }
	case 1:
		opts.DictFor = func(table int) stem.Dict {
			return stem.NewAdaptiveDict(stem.JoinCols(q, table), 4)
		}
	case 2:
		opts.DictFor = func(table int) stem.Dict {
			cols := stem.JoinCols(q, table)
			if len(cols) == 0 {
				return stem.NewListDict()
			}
			return stem.NewSortedDict(cols[0], 8)
		}
	}
	if rng.Intn(4) == 0 {
		opts.ApplySelectionsInAM = true
	}
	return opts
}

// TestTheorem1And2_RandomizedAgainstOracle is the repository's central
// correctness property: for random queries, data, access-method mixes,
// policies and SteM implementations, the eddy produces exactly the oracle's
// result set — no duplicates (Theorem 1), nothing missing or spurious, and
// termination in finitely many routing steps (Theorem 2).
func TestTheorem1And2_RandomizedAgainstOracle(t *testing.T) {
	n := 250
	if testing.Short() {
		n = 40
	}
	for seed := 0; seed < n; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			q := genQuery(rng)
			opts := genOptions(rng, q)
			runAndCheck(t, q, opts)
		})
	}
}

// TestTheorem2_Termination checks that even adversarially slow sources and
// high visit budgets terminate (the BoundedRepetition constraint).
func TestTheorem2_Termination(t *testing.T) {
	for seed := 1000; seed < 1020; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		q := genQuery(rng)
		opts := genOptions(rng, q)
		opts.MaxVisits = 16
		r, err := NewRouter(q, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sim := NewSim(r)
		sim.MaxEvents = 5_000_000
		if _, err := sim.Run(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestDeterminism verifies two identical simulation runs produce identical
// output sequences — the property the experiment harness relies on.
func TestDeterminism(t *testing.T) {
	run := func() []Output {
		rng := rand.New(rand.NewSource(99))
		q := genQuery(rng)
		r, err := NewRouter(q, Options{Policy: policy.NewLottery(5)})
		if err != nil {
			t.Fatal(err)
		}
		sim := NewSim(r)
		outs, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].T.ResultKey() != b[i].T.ResultKey() {
			t.Fatalf("output %d differs: %v@%v vs %v@%v", i, a[i].T, a[i].At, b[i].T, b[i].At)
		}
	}
	_ = oracle.Result{}
}
