// metrics.go aggregates the serving layer's counters and renders them in
// the Prometheus text exposition format. The engine-level counters (routing
// steps, SteM builds, index probes) are the same per-module statistics the
// trace/explain layer reports per query, folded here into process-lifetime
// totals. Everything here is O(1) state: a long-lived server must not
// accumulate per-query history (time-series curves are the scrape
// consumer's job, the same way the paper's cumulative-result figures are
// plotted from sampled counters).
package server

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"
)

// queryStatus classifies a finished query for the metrics by-status counter.
type queryStatus string

const (
	statusOK       queryStatus = "ok"
	statusError    queryStatus = "error"
	statusCanceled queryStatus = "canceled"
	statusRejected queryStatus = "rejected"
)

// metrics is the server's counter set. All methods are safe for concurrent
// use; gauges owned by the admission path are read through the Server.
type metrics struct {
	start time.Time

	mu           sync.Mutex
	queries      map[queryStatus]uint64
	registers    uint64
	inserts      uint64
	insertedRows uint64
	rowsStreamed uint64
	routingSteps uint64
	stemBuilds   uint64
	indexProbes  uint64
	// The latency histograms replace the old sum-only
	// stemsd_query_seconds_total: still O(1) state, but a scraper can now
	// read the distribution (p50/p99) instead of just the mean. The
	// histogram's _sum carries the old total.
	durHist   *histogram // query execution seconds
	queueHist *histogram // admission queue-wait seconds
	rowsHist  *histogram // result rows per query
}

func newMetrics() *metrics {
	return &metrics{
		start:   time.Now(),
		queries: make(map[queryStatus]uint64),
		// 1ms·2ⁿ spans sub-millisecond cache hits to two-minute scans.
		durHist: newHistogram(expBuckets(0.001, 2, 18)),
		// 100µs·2ⁿ: queue waits start near zero and cap at the deadline.
		queueHist: newHistogram(expBuckets(0.0001, 2, 16)),
		// 1·4ⁿ rows: result cardinalities span single rows to millions.
		rowsHist: newHistogram(expBuckets(1, 4, 12)),
	}
}

// finishQuery folds one completed query into the totals.
func (m *metrics) finishQuery(st queryStatus, rows int, elapsed, queueWait time.Duration, routed, builds, probes uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queries[st]++
	m.rowsStreamed += uint64(rows)
	m.routingSteps += routed
	m.stemBuilds += builds
	m.indexProbes += probes
	m.durHist.observe(elapsed.Seconds())
	m.queueHist.observe(queueWait.Seconds())
	m.rowsHist.observe(float64(rows))
}

func (m *metrics) reject() {
	m.mu.Lock()
	m.queries[statusRejected]++
	m.mu.Unlock()
}

func (m *metrics) register() {
	m.mu.Lock()
	m.registers++
	m.mu.Unlock()
}

// insert folds one INSERT (statement or POST /insert call) into the totals.
func (m *metrics) insert(rows int) {
	m.mu.Lock()
	m.inserts++
	m.insertedRows += uint64(rows)
	m.mu.Unlock()
}

// gauges are point-in-time values the Server owns; passed in at render
// time. The plan-cache counters ride along here too — they live in the
// cache's own atomics, not under this struct's mutex.
type gauges struct {
	inflight      int64
	queued        int64
	sessions      int
	tables        int
	prepared      int
	subscribers   int64
	draining      bool
	spillResident int64
	spillSpilled  int64

	version string

	planEntries       int
	planHits          uint64
	planMisses        uint64
	planInvalidations uint64
	planEvictions     uint64

	sharedBuilds    uint64
	sharedAttached  uint64
	sharedDetached  uint64
	sharedEvictions uint64
	sharedResident  int64
	sharedSpilled   int64
	sharedEntries   int
}

// write renders the counters in the Prometheus text exposition format.
func (m *metrics) write(w io.Writer, g gauges) {
	m.mu.Lock()
	defer m.mu.Unlock()

	counter := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	gauge := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}

	counter("stemsd_queries_total", "Finished queries by status.")
	for _, st := range []queryStatus{statusOK, statusError, statusCanceled, statusRejected} {
		fmt.Fprintf(w, "stemsd_queries_total{status=%q} %d\n", st, m.queries[st])
	}
	counter("stemsd_registers_total", "REGISTER TABLE statements executed.")
	fmt.Fprintf(w, "stemsd_registers_total %d\n", m.registers)
	counter("stemsd_inserts_total", "INSERT statements and POST /insert calls executed.")
	fmt.Fprintf(w, "stemsd_inserts_total %d\n", m.inserts)
	counter("stemsd_inserted_rows_total", "Rows appended to catalog tables by inserts.")
	fmt.Fprintf(w, "stemsd_inserted_rows_total %d\n", m.insertedRows)
	counter("stemsd_rows_streamed_total", "Result rows streamed to clients.")
	fmt.Fprintf(w, "stemsd_rows_streamed_total %d\n", m.rowsStreamed)
	counter("stemsd_routing_steps_total", "Eddy routing decisions across all queries.")
	fmt.Fprintf(w, "stemsd_routing_steps_total %d\n", m.routingSteps)
	counter("stemsd_stem_builds_total", "Rows materialized into SteMs across all queries.")
	fmt.Fprintf(w, "stemsd_stem_builds_total %d\n", m.stemBuilds)
	counter("stemsd_index_probes_total", "Remote index lookups across all queries.")
	fmt.Fprintf(w, "stemsd_index_probes_total %d\n", m.indexProbes)
	counter("stemsd_plan_cache_hits_total", "Statements served from the plan cache without re-binding.")
	fmt.Fprintf(w, "stemsd_plan_cache_hits_total %d\n", g.planHits)
	counter("stemsd_plan_cache_misses_total", "Statements that bound and built a fresh plan.")
	fmt.Fprintf(w, "stemsd_plan_cache_misses_total %d\n", g.planMisses)
	counter("stemsd_plan_cache_invalidations_total", "Cached plans dropped on catalog-version mismatch.")
	fmt.Fprintf(w, "stemsd_plan_cache_invalidations_total %d\n", g.planInvalidations)
	counter("stemsd_plan_cache_evictions_total", "Cached plans dropped by LRU capacity pressure.")
	fmt.Fprintf(w, "stemsd_plan_cache_evictions_total %d\n", g.planEvictions)
	counter("stemsd_shared_stem_builds_total", "Shared SteM states built by the catalog (first use or rebuild after REGISTER).")
	fmt.Fprintf(w, "stemsd_shared_stem_builds_total %d\n", g.sharedBuilds)
	counter("stemsd_shared_stem_attached_total", "Probe-only attachments of queries to shared SteM states.")
	fmt.Fprintf(w, "stemsd_shared_stem_attached_total %d\n", g.sharedAttached)
	counter("stemsd_shared_stem_detaches_total", "Attachments released by finished queries.")
	fmt.Fprintf(w, "stemsd_shared_stem_detaches_total %d\n", g.sharedDetached)
	counter("stemsd_shared_stem_evictions_total", "Shared SteM states evicted by capacity pressure.")
	fmt.Fprintf(w, "stemsd_shared_stem_evictions_total %d\n", g.sharedEvictions)

	m.durHist.write(w, "stemsd_query_duration_seconds", "Query execution time (bind through last row), by finished query.")
	m.queueHist.write(w, "stemsd_query_queue_seconds", "Time spent waiting for an admission slot, by finished query.")
	m.rowsHist.write(w, "stemsd_query_rows", "Result rows streamed, by finished query.")

	gauge("stemsd_inflight_queries", "Queries currently executing.")
	fmt.Fprintf(w, "stemsd_inflight_queries %d\n", g.inflight)
	gauge("stemsd_queued_queries", "Queries waiting for an execution slot.")
	fmt.Fprintf(w, "stemsd_queued_queries %d\n", g.queued)
	gauge("stemsd_sessions_active", "Live sessions.")
	fmt.Fprintf(w, "stemsd_sessions_active %d\n", g.sessions)
	gauge("stemsd_subscribers_active", "Standing queries currently holding a subscription stream.")
	fmt.Fprintf(w, "stemsd_subscribers_active %d\n", g.subscribers)
	gauge("stemsd_catalog_tables", "Tables registered in the shared catalog.")
	fmt.Fprintf(w, "stemsd_catalog_tables %d\n", g.tables)
	gauge("stemsd_plan_cache_entries", "Live plan cache entries.")
	fmt.Fprintf(w, "stemsd_plan_cache_entries %d\n", g.planEntries)
	gauge("stemsd_prepared_statements", "Named statements registered with PREPARE.")
	fmt.Fprintf(w, "stemsd_prepared_statements %d\n", g.prepared)
	gauge("stemsd_stem_resident_bytes", "Resident SteM row footprint across executing queries under a memory budget.")
	fmt.Fprintf(w, "stemsd_stem_resident_bytes %d\n", g.spillResident)
	gauge("stemsd_stem_spilled_bytes", "SteM row footprint spilled to disk across executing queries.")
	fmt.Fprintf(w, "stemsd_stem_spilled_bytes %d\n", g.spillSpilled)
	gauge("stemsd_shared_stem_entries", "Live catalog-owned shared SteM states.")
	fmt.Fprintf(w, "stemsd_shared_stem_entries %d\n", g.sharedEntries)
	gauge("stemsd_shared_stem_resident_bytes", "Resident row footprint of catalog-owned shared SteM states.")
	fmt.Fprintf(w, "stemsd_shared_stem_resident_bytes %d\n", g.sharedResident)
	gauge("stemsd_shared_stem_spilled_bytes", "Row footprint of shared SteM states held in sealed spill segments.")
	fmt.Fprintf(w, "stemsd_shared_stem_spilled_bytes %d\n", g.sharedSpilled)
	draining := 0
	if g.draining {
		draining = 1
	}
	gauge("stemsd_draining", "1 while the server is draining for shutdown.")
	fmt.Fprintf(w, "stemsd_draining %d\n", draining)
	gauge("stemsd_uptime_seconds", "Seconds since the server started.")
	fmt.Fprintf(w, "stemsd_uptime_seconds %.3f\n", time.Since(m.start).Seconds())
	gauge("stemsd_build_info", "Build metadata; the value is always 1.")
	fmt.Fprintf(w, "stemsd_build_info{version=%q,go=%q} 1\n", g.version, runtime.Version())
}
