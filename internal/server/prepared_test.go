// prepared_test.go covers the Parse → Prepare → Execute pipeline: PREPARE /
// EXECUTE statements, the plan/router cache (hits, lazy invalidation on
// REGISTER, LRU eviction), the /plans endpoint, and — under -race — a storm
// of concurrent EXECUTEs against catalog churn and session cancellation,
// asserting the pooled path is result-identical to the unprepared one.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// rowMultiset folds NDJSON rows into a canonical multiset for
// result-identity assertions across execution paths.
func rowMultiset(rows []map[string]any) map[string]int {
	out := make(map[string]int, len(rows))
	for _, r := range rows {
		keys := make([]string, 0, len(r))
		for k := range r {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%v;", k, r[k])
		}
		out[b.String()]++
	}
	return out
}

func sameMultiset(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

func metricsBody(t testing.TB, client *http.Client, url string) string {
	t.Helper()
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body := new(strings.Builder)
	if _, err := io.Copy(body, resp.Body); err != nil {
		t.Fatal(err)
	}
	return body.String()
}

// plansBody decodes GET /plans.
func plansBody(t testing.TB, client *http.Client, url string) (prepared []map[string]any, plans []map[string]any) {
	t.Helper()
	resp, err := client.Get(url + "/plans")
	if err != nil {
		t.Fatalf("GET /plans: %v", err)
	}
	defer resp.Body.Close()
	var out struct {
		Prepared []map[string]any `json:"prepared"`
		Plans    []map[string]any `json:"plans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode /plans: %v", err)
	}
	return out.Prepared, out.Plans
}

// TestPrepareExecuteMatchesAdhoc prepares the 3-way join, EXECUTEs it
// repeatedly through the plan cache, and asserts every execution matches
// the unprepared path (a cache-disabled server over an identical catalog).
func TestPrepareExecuteMatchesAdhoc(t *testing.T) {
	_, ots, oclient := newTestServer(t, memCatalog(t, time.Microsecond), Config{PlanCacheSize: -1})
	want := rowMultiset(postQuery(t, oclient, ots.URL, map[string]any{"sql": threeWayJoin}).rows)
	if len(want) == 0 {
		t.Fatal("oracle produced no rows")
	}

	_, ts, client := newTestServer(t, memCatalog(t, time.Microsecond), Config{})
	prep := postQuery(t, client, ts.URL, map[string]any{"sql": "PREPARE hot AS " + threeWayJoin})
	if prep.status != http.StatusOK {
		t.Fatalf("PREPARE: status=%d err=%q", prep.status, prep.errLine)
	}
	for i := 0; i < 4; i++ {
		res := postQuery(t, client, ts.URL, map[string]any{"sql": "EXECUTE hot"})
		if res.status != http.StatusOK {
			t.Fatalf("EXECUTE %d: status=%d err=%q", i, res.status, res.errLine)
		}
		if got := rowMultiset(res.rows); !sameMultiset(want, got) {
			t.Fatalf("EXECUTE %d: rows diverge from unprepared path:\nwant %v\ngot  %v", i, want, got)
		}
	}

	// The first EXECUTE misses (binds and builds), the rest hit.
	met := metricsBody(t, client, ts.URL)
	for _, want := range []string{
		"stemsd_plan_cache_hits_total 3",
		"stemsd_plan_cache_misses_total 1",
		"stemsd_plan_cache_entries 1",
		"stemsd_prepared_statements 1",
	} {
		if !strings.Contains(met, want) {
			t.Errorf("metrics missing %q:\n%s", want, met)
		}
	}
	preps, plans := plansBody(t, client, ts.URL)
	if len(preps) != 1 || preps[0]["name"] != "hot" {
		t.Errorf("prepared listing = %v", preps)
	}
	if len(plans) != 1 || plans[0]["hits"] != float64(3) {
		t.Errorf("plan listing = %v", plans)
	}

	// Error paths: duplicate prepare, execute of an unknown name, prepare
	// of a REGISTER (parse-level), execute of an unbindable statement.
	for _, bad := range []string{
		"PREPARE hot AS SELECT r.key FROM r",
		"EXECUTE nosuch",
		"PREPARE p2 AS REGISTER TABLE t FROM 't.csv'",
		"PREPARE p3 AS SELECT nope.x FROM nope",
	} {
		res := postQuery(t, client, ts.URL, map[string]any{"sql": bad})
		if res.status != http.StatusBadRequest {
			t.Errorf("%q: status = %d, want 400", bad, res.status)
		}
	}
}

// TestAdhocSelectsAutoPrepare: the same SELECT text POSTed twice shares one
// anonymous plan entry — canonicalization, not string identity, is the key.
func TestAdhocSelectsAutoPrepare(t *testing.T) {
	_, ts, client := newTestServer(t, memCatalog(t, time.Microsecond), Config{})
	variants := []string{
		threeWayJoin,
		"select r.key, u.q from r, s, u where r.a = s.x and s.y = u.p",
		"SELECT   r.key ,  u.q FROM r AS r, s, u WHERE r.a = s.x AND s.y = u.p",
	}
	for _, v := range variants {
		if res := postQuery(t, client, ts.URL, map[string]any{"sql": v}); res.status != http.StatusOK {
			t.Fatalf("%q: status=%d err=%q", v, res.status, res.errLine)
		}
	}
	met := metricsBody(t, client, ts.URL)
	for _, want := range []string{
		"stemsd_plan_cache_misses_total 1",
		"stemsd_plan_cache_hits_total 2",
		"stemsd_plan_cache_entries 1",
	} {
		if !strings.Contains(met, want) {
			t.Errorf("metrics missing %q (spelling variants must share one plan):\n%s", want, met)
		}
	}
}

// TestPlanCacheInvalidationOnRegister re-registers a table under a cached
// plan and asserts the next execution sees the new data — the catalog
// version bump invalidates lazily, no stale plan survives.
func TestPlanCacheInvalidationOnRegister(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("r.csv", "key,a\n1,10\n2,20\n")
	write("s.csv", "x,y\n10,100\n20,200\n")
	cat := NewCatalog(time.Microsecond, dir)
	_, ts, client := newTestServer(t, cat, Config{})
	for _, reg := range []string{
		"REGISTER TABLE r FROM 'r.csv'",
		"REGISTER TABLE s FROM 's.csv'",
	} {
		if res := postQuery(t, client, ts.URL, map[string]any{"sql": reg}); res.status != http.StatusOK {
			t.Fatalf("%q: status=%d err=%q", reg, res.status, res.errLine)
		}
	}
	const q = "SELECT r.key, s.y FROM r, s WHERE r.a = s.x"
	postQuery(t, client, ts.URL, map[string]any{"sql": "PREPARE q AS " + q})

	res := postQuery(t, client, ts.URL, map[string]any{"sql": "EXECUTE q"})
	if res.status != http.StatusOK || len(res.rows) != 2 {
		t.Fatalf("first execute: status=%d rows=%v", res.status, res.rows)
	}

	write("r.csv", "key,a\n5,20\n")
	if res := postQuery(t, client, ts.URL, map[string]any{"sql": "REGISTER TABLE r FROM 'r.csv'"}); res.status != http.StatusOK {
		t.Fatalf("re-register: status=%d err=%q", res.status, res.errLine)
	}
	res = postQuery(t, client, ts.URL, map[string]any{"sql": "EXECUTE q"})
	if res.status != http.StatusOK || len(res.rows) != 1 {
		t.Fatalf("post-register execute: status=%d rows=%v", res.status, res.rows)
	}
	if res.rows[0]["r.key"] != float64(5) || res.rows[0]["s.y"] != float64(200) {
		t.Errorf("stale plan: row = %v, want r.key=5 s.y=200", res.rows[0])
	}
	if met := metricsBody(t, client, ts.URL); !strings.Contains(met, "stemsd_plan_cache_invalidations_total 1") {
		t.Errorf("metrics missing invalidation count:\n%s", met)
	}
}

// TestPlanCacheLRUEviction bounds the cache at 2 entries and runs 3
// distinct queries: the oldest is evicted, and re-running it misses.
func TestPlanCacheLRUEviction(t *testing.T) {
	_, ts, client := newTestServer(t, memCatalog(t, time.Microsecond), Config{PlanCacheSize: 2})
	queries := []string{
		"SELECT r.key FROM r",
		"SELECT s.y FROM s",
		"SELECT u.q FROM u",
	}
	for _, q := range queries {
		if res := postQuery(t, client, ts.URL, map[string]any{"sql": q}); res.status != http.StatusOK {
			t.Fatalf("%q: status=%d", q, res.status)
		}
	}
	_, plans := plansBody(t, client, ts.URL)
	if len(plans) != 2 {
		t.Fatalf("cache holds %d entries, want 2: %v", len(plans), plans)
	}
	met := metricsBody(t, client, ts.URL)
	if !strings.Contains(met, "stemsd_plan_cache_evictions_total 1") {
		t.Errorf("metrics missing eviction count:\n%s", met)
	}
	// The evicted (least recently used) plan misses again.
	postQuery(t, client, ts.URL, map[string]any{"sql": queries[0]})
	if met := metricsBody(t, client, ts.URL); !strings.Contains(met, "stemsd_plan_cache_misses_total 4") {
		t.Errorf("re-running the evicted plan should miss:\n%s", met)
	}
}

// TestPlanCacheDisabled: PlanCacheSize < 0 turns the whole pipeline off —
// every SELECT takes the fresh-build path and /plans stays empty.
func TestPlanCacheDisabled(t *testing.T) {
	_, ts, client := newTestServer(t, memCatalog(t, time.Microsecond), Config{PlanCacheSize: -1})
	for i := 0; i < 2; i++ {
		if res := postQuery(t, client, ts.URL, map[string]any{"sql": threeWayJoin}); res.status != http.StatusOK || len(res.rows) != 5 {
			t.Fatalf("run %d: status=%d rows=%d", i, res.status, len(res.rows))
		}
	}
	_, plans := plansBody(t, client, ts.URL)
	if len(plans) != 0 {
		t.Errorf("disabled cache holds entries: %v", plans)
	}
	if met := metricsBody(t, client, ts.URL); !strings.Contains(met, "stemsd_plan_cache_hits_total 0") {
		t.Errorf("disabled cache counted hits:\n%s", met)
	}
}

// TestPreparedStormWithInvalidationAndCancel is the -race stress for the
// pooled path: 8 workers EXECUTE a prepared join in a tight loop while one
// goroutine re-REGISTERs a joined table (bumping the catalog version and
// invalidating the plan mid-storm) and another repeatedly starts a
// session-scoped EXECUTE and DELETEs the session mid-flight. Every
// successful execution must be result-identical to the unprepared path; the
// CSV content never changes, so invalidation must be invisible in results.
func TestPreparedStormWithInvalidationAndCancel(t *testing.T) {
	baseline := runtime.NumGoroutine()
	dir := t.TempDir()
	var rcsv, scsv strings.Builder
	rcsv.WriteString("key,a\n")
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&rcsv, "%d,%d\n", i, i%20)
	}
	scsv.WriteString("x,y\n")
	for j := 0; j < 20; j++ {
		fmt.Fprintf(&scsv, "%d,%d\n", j, j*7)
	}
	for name, content := range map[string]string{"r.csv": rcsv.String(), "s.csv": scsv.String()} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	const q = "SELECT r.key, s.y FROM r, s WHERE r.a = s.x"

	// Oracle: unprepared execution on a cache-disabled server.
	ocat := NewCatalog(time.Microsecond, "")
	if _, err := ocat.RegisterLocalCSV("r", filepath.Join(dir, "r.csv"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ocat.RegisterLocalCSV("s", filepath.Join(dir, "s.csv"), nil); err != nil {
		t.Fatal(err)
	}
	osrv, ots, oclient := newTestServer(t, ocat, Config{PlanCacheSize: -1})
	want := rowMultiset(postQuery(t, oclient, ots.URL, map[string]any{"sql": q}).rows)
	if len(want) != 400 {
		t.Fatalf("oracle produced %d distinct rows, want 400", len(want))
	}

	cat := NewCatalog(time.Microsecond, dir)
	if _, err := cat.RegisterLocalCSV("r", filepath.Join(dir, "r.csv"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.RegisterLocalCSV("s", filepath.Join(dir, "s.csv"), nil); err != nil {
		t.Fatal(err)
	}
	srv, ts, client := newTestServer(t, cat, Config{MaxInFlight: 8, QueueDepth: 256})
	if res := postQuery(t, client, ts.URL, map[string]any{"sql": "PREPARE hot AS " + q}); res.status != http.StatusOK {
		t.Fatalf("PREPARE: status=%d err=%q", res.status, res.errLine)
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup

	// Catalog churner: re-REGISTER r with identical content — every pass
	// bumps the version and invalidates the hot plan.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			res := postQuery(t, client, ts.URL, map[string]any{"sql": "REGISTER TABLE r FROM 'r.csv'"})
			if res.status != http.StatusOK && res.status != http.StatusTooManyRequests {
				t.Errorf("mid-storm REGISTER: status=%d err=%q", res.status, res.errLine)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Session canceller: start a session-scoped EXECUTE, DELETE the session
	// while it may still be running. Completed-first runs must match the
	// oracle; canceled runs must fail loudly, never return wrong rows.
	churn.Add(1)
	go func() {
		defer churn.Done()
		var inner sync.WaitGroup
		defer inner.Wait()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			session := fmt.Sprintf("cancel-%d", i)
			inner.Add(1)
			go func() {
				defer inner.Done()
				res := postQuery(t, client, ts.URL, map[string]any{"sql": "EXECUTE hot", "session": session})
				if res.status == http.StatusOK && res.errLine == "" && res.trailer != nil {
					if got := rowMultiset(res.rows); !sameMultiset(want, got) {
						t.Errorf("canceled-session run completed with wrong rows: %d distinct, want %d", len(got), len(want))
					}
				}
			}()
			time.Sleep(time.Millisecond)
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/session/"+session, nil)
			if resp, err := client.Do(req); err == nil {
				resp.Body.Close()
			}
			inner.Wait()
		}
	}()

	// The storm: 8 workers EXECUTE the prepared statement back to back.
	var workers sync.WaitGroup
	for w := 0; w < 8; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			for i := 0; i < 25; i++ {
				res := postQuery(t, client, ts.URL, map[string]any{"sql": "EXECUTE hot"})
				if res.status != http.StatusOK {
					t.Errorf("worker %d run %d: status=%d err=%q", w, i, res.status, res.errLine)
					return
				}
				if got := rowMultiset(res.rows); !sameMultiset(want, got) {
					t.Errorf("worker %d run %d: rows diverge from unprepared path (%d distinct, want %d)",
						w, i, len(got), len(want))
					return
				}
			}
		}(w)
	}
	workers.Wait()
	close(stop)
	churn.Wait()

	met := metricsBody(t, client, ts.URL)
	for _, name := range []string{"stemsd_plan_cache_hits_total", "stemsd_plan_cache_invalidations_total"} {
		n, found := uint64(0), false
		for _, line := range strings.Split(met, "\n") {
			if rest, ok := strings.CutPrefix(line, name+" "); ok {
				fmt.Sscanf(rest, "%d", &n)
				found = true
			}
		}
		if !found {
			t.Fatalf("metrics missing %q", name)
		}
		if n == 0 {
			t.Errorf("%s = 0, want > 0 (storm must both hit and invalidate)", name)
		}
	}

	srv.Shutdown(time.Second)
	osrv.Shutdown(time.Second)
	ts.Close()
	ots.Close()
	client.CloseIdleConnections()
	oclient.CloseIdleConnections()
	waitForGoroutines(t, baseline)
}
