// obs_test.go covers the query-observability layer: explain traces over
// HTTP (including the pooled-shell no-bleed invariant), the
// completed-queries ring, and the structured per-query logs.
package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/eddy"
	"repro/internal/policy"
	"repro/internal/sql"
	"repro/internal/trace"
)

// decodeTrace round-trips the generic trace line from postQuery into the
// typed wire form.
func decodeTrace(t *testing.T, raw map[string]any) trace.Record {
	t.Helper()
	b, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	var rec trace.Record
	if err := json.Unmarshal(b, &rec); err != nil {
		t.Fatalf("trace line does not decode as trace.Record: %v", err)
	}
	return rec
}

// TestExplainSimMatchesLocalCollector is the acceptance check for the
// server's explain path: the simulation engine is fully deterministic, so
// running the same statement with the same policy, seed, and catalog through
// POST /query {"explain": true} must produce exactly the trace a local
// trace.Collector gathers — same visits, same outputs, same virtual
// timestamps, same learned policy estimates.
func TestExplainSimMatchesLocalCollector(t *testing.T) {
	cat := memCatalog(t, time.Microsecond)
	_, ts, client := newTestServer(t, cat, Config{})

	res := postQuery(t, client, ts.URL, map[string]any{
		"sql": threeWayJoin, "engine": "sim", "explain": true,
	})
	if res.status != http.StatusOK || len(res.rows) != 5 {
		t.Fatalf("status=%d rows=%d err=%q", res.status, len(res.rows), res.errLine)
	}
	if res.trace == nil {
		t.Fatal("explain response carried no trace line")
	}
	got := decodeTrace(t, res.trace)

	// Local replica of the server's sim path: same defaults (benefitcost,
	// seed 1, unsharded), same catalog snapshot.
	st, err := sql.ParseStatement(threeWayJoin)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := sql.Bind(st.(*sql.Stmt), cat.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	pol, err := policy.ByName("benefitcost", 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := eddy.NewRouter(bound.Q, eddy.Options{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	sim := eddy.NewSim(r)
	coll := trace.NewCollector(r.Modules())
	coll.Attach(sim)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	want := coll.Record(pol)

	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("server explain diverges from local collector:\nserver: %s\nlocal:  %s", gotJSON, wantJSON)
	}
	if got.Results != 5 || len(got.Policy) == 0 {
		t.Errorf("trace results=%d policy entries=%d, want 5 and >0", got.Results, len(got.Policy))
	}
}

// TestExplainCachedConcurrentNoBleed runs the same concurrent-engine query
// three times through the plan cache with explain on. Pooled shells reuse
// one collector, so the invariant under test is that every execution
// reports exactly its own run: 5 results and 8 SteM builds each time, never
// a predecessor's accumulated stats.
func TestExplainCachedConcurrentNoBleed(t *testing.T) {
	_, ts, client := newTestServer(t, memCatalog(t, time.Microsecond), Config{})

	for i := 0; i < 3; i++ {
		res := postQuery(t, client, ts.URL, map[string]any{"sql": threeWayJoin, "explain": true})
		if res.status != http.StatusOK || len(res.rows) != 5 {
			t.Fatalf("run %d: status=%d rows=%d err=%q", i, res.status, len(res.rows), res.errLine)
		}
		if res.trace == nil {
			t.Fatalf("run %d: no trace line", i)
		}
		rec := decodeTrace(t, res.trace)
		// A bleed across pooled executions would show up as 10 or 15 results
		// on the later runs.
		if rec.Results != 5 {
			t.Errorf("run %d: trace results = %d, want 5 (pooled shell bleeding stats?)", i, rec.Results)
		}
		if res.trailer["stem_builds"] != float64(8) {
			t.Errorf("run %d: trailer stem_builds = %v, want 8", i, res.trailer["stem_builds"])
		}
		if len(rec.Modules) == 0 {
			t.Fatalf("run %d: trace has no modules", i)
		}
		for _, m := range rec.Modules {
			if m.Visits == 0 {
				t.Errorf("run %d: module %s has zero visits", i, m.Name)
			}
		}
		if len(rec.Policy) == 0 {
			t.Errorf("run %d: explain trace missing policy state", i)
		}
	}

	// The ring confirms the second and third executions were cache hits.
	recs := fetchQueries(t, client, ts.URL, "")
	if len(recs) != 3 {
		t.Fatalf("completed ring has %d records, want 3", len(recs))
	}
	if recs[0].PlanCacheHit != true || recs[1].PlanCacheHit != true || recs[2].PlanCacheHit != false {
		t.Errorf("plan_cache_hit newest-first = %v/%v/%v, want true/true/false",
			recs[0].PlanCacheHit, recs[1].PlanCacheHit, recs[2].PlanCacheHit)
	}
}

// fetchQueries GETs the completed-queries ring; query is a raw query string
// like "min_ms=5" or "".
func fetchQueries(t *testing.T, client *http.Client, url, query string) []queryRecord {
	t.Helper()
	u := url + "/queries"
	if query != "" {
		u += "?" + query
	}
	resp, err := client.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /queries = %d", resp.StatusCode)
	}
	var body struct {
		Queries []queryRecord `json:"queries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.Queries
}

// TestCompletedQueriesRing pins the GET /queries contract: records carry
// identity, outcome, and per-module stats; min_ms filters; the ring
// overwrites its oldest record at capacity.
func TestCompletedQueriesRing(t *testing.T) {
	_, ts, client := newTestServer(t, memCatalog(t, time.Microsecond), Config{CompletedCap: 2})

	// Three queries through a capacity-2 ring: the first record must be gone.
	for i := 0; i < 3; i++ {
		if res := postQuery(t, client, ts.URL, map[string]any{"sql": threeWayJoin}); res.status != http.StatusOK {
			t.Fatalf("query %d: status=%d", i, res.status)
		}
	}
	recs := fetchQueries(t, client, ts.URL, "")
	if len(recs) != 2 {
		t.Fatalf("ring returned %d records, want 2 (capacity)", len(recs))
	}
	if recs[0].ID != 3 || recs[1].ID != 2 {
		t.Errorf("ring ids newest-first = %d,%d, want 3,2", recs[0].ID, recs[1].ID)
	}
	for _, r := range recs {
		if r.Status != "ok" || r.Rows != 5 || r.Engine != "concurrent" || r.Policy != "benefitcost" {
			t.Errorf("record %+v: want status ok, 5 rows, concurrent/benefitcost", r)
		}
		if r.SQL == "" || r.Start.IsZero() || r.ElapsedMS <= 0 {
			t.Errorf("record %d missing identity/timing: sql=%q start=%v elapsed=%v", r.ID, r.SQL, r.Start, r.ElapsedMS)
		}
		if len(r.Modules) == 0 {
			t.Errorf("record %d carries no module stats", r.ID)
		}
		for _, m := range r.Modules {
			if m.Visits == 0 {
				t.Errorf("record %d: module %s has zero visits", r.ID, m.Name)
			}
		}
	}

	// An impossible threshold filters everything out.
	if recs := fetchQueries(t, client, ts.URL, "min_ms=1e9"); len(recs) != 0 {
		t.Errorf("min_ms=1e9 returned %d records, want 0", len(recs))
	}
	// A bad threshold is a 400, not a silent full listing.
	resp, err := client.Get(ts.URL + "/queries?min_ms=soon")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("min_ms=soon = %d, want 400", resp.StatusCode)
	}

	// A failed query lands in the ring with its status and error.
	if res := postQuery(t, client, ts.URL, map[string]any{"sql": threeWayJoin, "engine": "warp"}); res.status != http.StatusBadRequest {
		t.Fatalf("bad engine status = %d", res.status)
	}
	recs = fetchQueries(t, client, ts.URL, "")
	if recs[0].Status != "error" || recs[0].Error == "" {
		t.Errorf("failed query record = %+v, want status error with message", recs[0])
	}
}

// TestRingDisabled asserts CompletedCap < 0 turns the endpoint off.
func TestRingDisabled(t *testing.T) {
	_, ts, client := newTestServer(t, memCatalog(t, time.Microsecond), Config{CompletedCap: -1})
	postQuery(t, client, ts.URL, map[string]any{"sql": threeWayJoin})
	resp, err := client.Get(ts.URL + "/queries")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /queries with ring disabled = %d, want 404", resp.StatusCode)
	}
}

// syncBuffer lets the test read log output written from handler goroutines
// without a data race.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestStructuredLogsAndSlowQuery runs one query with logging on and a
// threshold every query exceeds, then asserts the finished and slow-query
// records appear with the query's identity.
func TestStructuredLogsAndSlowQuery(t *testing.T) {
	var out syncBuffer
	lg := slog.New(slog.NewJSONHandler(&out, &slog.HandlerOptions{Level: slog.LevelDebug}))
	_, ts, client := newTestServer(t, memCatalog(t, time.Microsecond), Config{
		Logger: lg, SlowQuery: time.Nanosecond,
	})
	res := postQuery(t, client, ts.URL, map[string]any{"sql": threeWayJoin, "session": "obs"})
	if res.status != http.StatusOK {
		t.Fatalf("status = %d", res.status)
	}

	// The logs are written before the response trailer, but poll anyway so
	// the assertion never races the handler's final flush.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := out.String()
		if strings.Contains(s, `"msg":"query finished"`) && strings.Contains(s, `"msg":"slow query"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("logs missing finished/slow records:\n%s", s)
		}
		time.Sleep(10 * time.Millisecond)
	}
	s := out.String()
	for _, want := range []string{
		`"msg":"query admitted"`,
		`"query_id":1`,
		`"status":"ok"`,
		`"rows":5`,
		`"session":"obs"`,
		`"threshold_ms"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("log output missing %s:\n%s", want, s)
		}
	}
}

// TestRejectionLogged saturates admission and asserts the rejection is
// logged and counted without touching the completed ring (it never ran).
func TestRejectionLogged(t *testing.T) {
	var out syncBuffer
	lg := slog.New(slog.NewTextHandler(&out, nil))
	srv, ts, client := newTestServer(t, slowCatalog(t), Config{
		MaxInFlight: 1, QueueDepth: 0, TimeCompression: 1, Logger: lg,
	})
	go postQuery(t, client, ts.URL, map[string]any{"sql": slowJoin, "deadline_ms": 10_000})
	waitInflight(t, client, ts.URL, 1)
	if res := postQuery(t, client, ts.URL, map[string]any{"sql": slowJoin}); res.status != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429", res.status)
	}
	if !strings.Contains(out.String(), "query rejected") {
		t.Errorf("rejection not logged:\n%s", out.String())
	}
	if recs := fetchQueries(t, client, ts.URL, ""); len(recs) != 0 {
		t.Errorf("rejected query reached the completed ring: %+v", recs)
	}
	srv.Shutdown(50 * time.Millisecond)
}

// TestBuildInfoMetric asserts the configured version reaches the
// stemsd_build_info gauge with the running Go version alongside it.
func TestBuildInfoMetric(t *testing.T) {
	_, ts, client := newTestServer(t, memCatalog(t, time.Microsecond), Config{Version: "v9.9.9"})
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `stemsd_build_info{version="v9.9.9",go="go`) {
		t.Errorf("metrics missing build info with version label:\n%s", sb.String())
	}
}
