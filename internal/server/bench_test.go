package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkServerConcurrentSessions measures end-to-end serving throughput:
// many sessions each POSTing the 3-way join over HTTP and draining the
// NDJSON stream. One op is one complete query round trip.
func BenchmarkServerConcurrentSessions(b *testing.B) {
	cat := memCatalog(b, time.Microsecond)
	srv := New(cat, Config{MaxInFlight: runtime.GOMAXPROCS(0) * 2, QueueDepth: 1024})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = 256
	defer client.CloseIdleConnections()

	var sid atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		session := fmt.Sprintf("bench-%d", sid.Add(1))
		for pb.Next() {
			res := postQuery(b, client, ts.URL, map[string]any{
				"sql":     threeWayJoin,
				"session": session,
			})
			if res.status != http.StatusOK || len(res.rows) != 5 {
				b.Errorf("status=%d rows=%d err=%q", res.status, len(res.rows), res.errLine)
				return
			}
		}
	})
	b.StopTimer()
	srv.Shutdown(time.Second)
}

// BenchmarkServerConcurrentSessionsPrepared is the prepared-path variant:
// the join is PREPAREd once and every op is an EXECUTE, so the hot path
// skips parsing the SELECT text, re-binding, and engine construction,
// running instead on pooled router+engine shells from the plan cache.
func BenchmarkServerConcurrentSessionsPrepared(b *testing.B) {
	cat := memCatalog(b, time.Microsecond)
	srv := New(cat, Config{MaxInFlight: runtime.GOMAXPROCS(0) * 2, QueueDepth: 1024})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = 256
	defer client.CloseIdleConnections()

	if res := postQuery(b, client, ts.URL, map[string]any{"sql": "PREPARE hot AS " + threeWayJoin}); res.status != http.StatusOK {
		b.Fatalf("PREPARE: status=%d err=%q", res.status, res.errLine)
	}

	var sid atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		session := fmt.Sprintf("bench-%d", sid.Add(1))
		for pb.Next() {
			res := postQuery(b, client, ts.URL, map[string]any{
				"sql":     "EXECUTE hot",
				"session": session,
			})
			if res.status != http.StatusOK || len(res.rows) != 5 {
				b.Errorf("status=%d rows=%d err=%q", res.status, len(res.rows), res.errLine)
				return
			}
		}
	})
	b.StopTimer()
	srv.Shutdown(time.Second)
}
