package server

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/sql"
	"repro/internal/tuple"
)

// BenchmarkServerConcurrentSessions measures end-to-end serving throughput:
// many sessions each POSTing the 3-way join over HTTP and draining the
// NDJSON stream. One op is one complete query round trip.
func BenchmarkServerConcurrentSessions(b *testing.B) {
	cat := memCatalog(b, time.Microsecond)
	srv := New(cat, Config{MaxInFlight: runtime.GOMAXPROCS(0) * 2, QueueDepth: 1024})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = 256
	defer client.CloseIdleConnections()

	var sid atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		session := fmt.Sprintf("bench-%d", sid.Add(1))
		for pb.Next() {
			res := postQuery(b, client, ts.URL, map[string]any{
				"sql":     threeWayJoin,
				"session": session,
			})
			if res.status != http.StatusOK || len(res.rows) != 5 {
				b.Errorf("status=%d rows=%d err=%q", res.status, len(res.rows), res.errLine)
				return
			}
		}
	})
	b.StopTimer()
	srv.Shutdown(time.Second)
}

// BenchmarkServerSharedStems measures what catalog-owned shared SteMs buy
// under concurrency: M sessions all running the same selective join over a
// 20k-row table. In private mode every query rebuilds the big table's SteM
// from scratch; in shared mode the first query builds it once and everyone
// else attaches a probe-only handle, so per-op cost drops to the driver
// scan plus probes. The sub-benchmark pair shares one workload so the two
// numbers are directly comparable.
func BenchmarkServerSharedStems(b *testing.B) {
	const bigRows, smallRows = 20000, 50
	mkCatalog := func(b *testing.B) *Catalog {
		cat := NewCatalog(time.Microsecond, "")
		scan := source.ScanSpec{InterArrival: clock.Duration(time.Microsecond)}
		bigT := schema.MustTable("big", schema.IntCol("key"), schema.IntCol("a"))
		big := make([]tuple.Row, bigRows)
		for i := range big {
			big[i] = intRow(int64(i), int64(i%5000))
		}
		sc1 := scan
		cat.Put("big", sql.Source{Data: source.MustTable(bigT, big), Scan: &sc1})
		smallT := schema.MustTable("small", schema.IntCol("x"), schema.IntCol("y"))
		small := make([]tuple.Row, smallRows)
		for j := range small {
			small[j] = intRow(int64(j*100), int64(j))
		}
		sc2 := scan
		cat.Put("small", sql.Source{Data: source.MustTable(smallT, small), Scan: &sc2})
		return cat
	}
	// 50 driver tuples, each matching big.a == small.x; x ∈ {0,100,…,4900}
	// hits 50 of the 5000 distinct a-values, 4 big rows each → 200 results.
	const q = "SELECT small.y, big.key FROM big, small WHERE big.a = small.x"
	for _, mode := range []struct {
		name   string
		shared bool
	}{{"private", false}, {"shared", true}} {
		b.Run(mode.name, func(b *testing.B) {
			srv := New(mkCatalog(b), Config{
				MaxInFlight: runtime.GOMAXPROCS(0) * 2,
				QueueDepth:  1024,
				SharedStems: mode.shared,
			})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			client := ts.Client()
			client.Transport.(*http.Transport).MaxIdleConnsPerHost = 256
			defer client.CloseIdleConnections()

			var sid atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				session := fmt.Sprintf("bench-%d", sid.Add(1))
				for pb.Next() {
					res := postQuery(b, client, ts.URL, map[string]any{
						"sql":     q,
						"session": session,
					})
					if res.status != http.StatusOK || len(res.rows) != 200 {
						b.Errorf("status=%d rows=%d err=%q", res.status, len(res.rows), res.errLine)
						return
					}
				}
			})
			b.StopTimer()
			if mode.shared {
				builds, attaches, _, _ := srv.shared.counts()
				if builds != 1 {
					b.Errorf("shared builds = %d, want exactly 1 across %d ops", builds, b.N)
				}
				if attaches != uint64(b.N) {
					b.Errorf("attachments = %d, want %d (one per op)", attaches, b.N)
				}
			}
			srv.Shutdown(time.Second)
		})
	}
}

// BenchmarkServerConcurrentSessionsPrepared is the prepared-path variant:
// the join is PREPAREd once and every op is an EXECUTE, so the hot path
// skips parsing the SELECT text, re-binding, and engine construction,
// running instead on pooled router+engine shells from the plan cache.
// The committed alloc budget applies to the default configuration; the
// observability sub-benchmark turns everything on — structured logs (to a
// discard writer), pprof query labels, and per-request explain traces — so
// BENCH_server.json can record what full instrumentation costs.
func BenchmarkServerConcurrentSessionsPrepared(b *testing.B) {
	runPrepared := func(b *testing.B, cfg Config, explain bool) {
		cat := memCatalog(b, time.Microsecond)
		cfg.MaxInFlight = runtime.GOMAXPROCS(0) * 2
		cfg.QueueDepth = 1024
		srv := New(cat, cfg)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		client := ts.Client()
		client.Transport.(*http.Transport).MaxIdleConnsPerHost = 256
		defer client.CloseIdleConnections()

		if res := postQuery(b, client, ts.URL, map[string]any{"sql": "PREPARE hot AS " + threeWayJoin}); res.status != http.StatusOK {
			b.Fatalf("PREPARE: status=%d err=%q", res.status, res.errLine)
		}

		var sid atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			session := fmt.Sprintf("bench-%d", sid.Add(1))
			for pb.Next() {
				res := postQuery(b, client, ts.URL, map[string]any{
					"sql":     "EXECUTE hot",
					"session": session,
					"explain": explain,
				})
				if res.status != http.StatusOK || len(res.rows) != 5 {
					b.Errorf("status=%d rows=%d err=%q", res.status, len(res.rows), res.errLine)
					return
				}
				if explain && res.trace == nil {
					b.Error("explain run returned no trace line")
					return
				}
			}
		})
		b.StopTimer()
		srv.Shutdown(time.Second)
	}
	b.Run("base", func(b *testing.B) { runPrepared(b, Config{}, false) })
	b.Run("observability", func(b *testing.B) {
		runPrepared(b, Config{
			Logger:      slog.New(slog.NewJSONHandler(io.Discard, nil)),
			PprofLabels: true,
			SlowQuery:   time.Second,
		}, true)
	})
}
