// catalog.go is the serving layer's shared table catalog: a mutable,
// RWMutex-guarded name→source map that every session binds queries against.
// Sources are immutable once registered (registration replaces the whole
// entry), so queries that bound against an old version keep running on it
// safely while new queries see the replacement — the same copy-on-publish
// discipline a production catalog needs under concurrent DDL and DML.
package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/csvload"
	"repro/internal/source"
	"repro/internal/sql"
	"repro/internal/tuple"
)

// Catalog is a concurrency-safe, mutable catalog of registered tables. It
// implements sql.Catalog, so statements bind against it directly; Snapshot
// returns an immutable view when a multi-lookup bind must see one version.
type Catalog struct {
	mu      sync.RWMutex
	sources map[string]sql.Source
	// version counts catalog mutations (Put, AddIndex, Append). The plan
	// cache keys entries on the version a statement was bound at, so any
	// mutation lazily invalidates every cached plan by version mismatch — no
	// enumeration of affected plans, no lock coupling between DDL and the
	// cache.
	version uint64
	// gens counts, per table, the mutations that replace the table's
	// identity (Put, AddIndex) as opposed to extending its rows (Append).
	// Standing queries record the generation they bound at: an append lets
	// them continue with a delta round, a generation change ends them — the
	// replacement table has no delta relationship to the old one.
	gens map[string]uint64
	// changed is closed and replaced on every mutation; Changed hands it to
	// subscribers as a broadcast "something moved, re-inspect" signal.
	changed chan struct{}

	// scanInterval is the modeled inter-arrival pacing given to the scan
	// access method of every registered table.
	scanInterval clock.Duration
	// dir, when non-empty, confines REGISTER paths: relative paths resolve
	// under it and escaping it (.. or absolute paths) is an error.
	dir string
}

// NewCatalog returns an empty catalog. scanInterval paces the scan access
// method of registered tables; dir, when non-empty, is the directory
// REGISTER statement paths are confined to.
func NewCatalog(scanInterval time.Duration, dir string) *Catalog {
	return &Catalog{
		sources:      make(map[string]sql.Source),
		gens:         make(map[string]uint64),
		changed:      make(chan struct{}),
		scanInterval: clock.Duration(scanInterval),
		dir:          dir,
	}
}

// Source implements sql.Catalog.
func (c *Catalog) Source(name string) (sql.Source, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.sources[name]
	return s, ok
}

// Snapshot returns an immutable copy of the catalog for binding: every
// lookup during one bind sees the same version regardless of concurrent
// registrations. The copy shares the (immutable) source tables.
func (c *Catalog) Snapshot() sql.MapCatalog {
	snap, _ := c.SnapshotVersioned()
	return snap
}

// SnapshotVersioned returns an immutable catalog copy together with the
// version it reflects, taken atomically under one lock so a concurrent
// registration cannot slip between the copy and the version read.
func (c *Catalog) SnapshotVersioned() (sql.MapCatalog, uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(sql.MapCatalog, len(c.sources))
	for k, v := range c.sources {
		out[k] = v
	}
	return out, c.version
}

// Version returns the current catalog version; it increases on every Put
// and AddIndex.
func (c *Catalog) Version() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// Tables returns the registered table names, sorted.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.sources))
	for k := range c.sources {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered tables.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.sources)
}

// Put registers (or replaces) a source under the given name and bumps the
// catalog version and the table's generation.
func (c *Catalog) Put(name string, s sql.Source) {
	c.mu.Lock()
	c.sources[name] = s
	c.version++
	c.gens[name]++
	c.notifyLocked()
	c.mu.Unlock()
}

// notifyLocked wakes every Changed subscriber; the caller holds c.mu.
func (c *Catalog) notifyLocked() {
	close(c.changed)
	c.changed = make(chan struct{})
}

// Changed returns a channel that is closed at the next catalog mutation
// (Put, AddIndex, or Append). Subscribers re-call it after each wake-up; a
// mutation between the wake-up and the re-call closes the fresh channel
// immediately, so no change is ever missed.
func (c *Catalog) Changed() <-chan struct{} {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.changed
}

// SnapshotSubscribe returns an immutable catalog copy together with every
// table's generation, taken atomically under one lock: a subscription binds
// against the snapshot and records the generations as its baseline, so a
// concurrent Put is seen either by the bind or as a later generation change
// — never missed.
func (c *Catalog) SnapshotSubscribe() (sql.MapCatalog, map[string]uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(sql.MapCatalog, len(c.sources))
	for k, v := range c.sources {
		out[k] = v
	}
	gens := make(map[string]uint64, len(c.gens))
	for k, v := range c.gens {
		gens[k] = v
	}
	return out, gens
}

// SourceGen returns the named source together with its generation, read
// atomically. The generation moves on Put and AddIndex but not on Append:
// same generation + more rows means "the table you bound is still the one
// being extended".
func (c *Catalog) SourceGen(name string) (sql.Source, uint64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.sources[name]
	return s, c.gens[name], ok
}

// Append adds rows to a registered table, replacing its immutable data
// table copy-on-publish: in-flight queries keep the version they bound,
// new binds (and the lazy invalidation of plan-cache entries and shared
// SteMs, both of which compare table pointers or catalog versions) see the
// extended table. The rows are validated against the table's schema. It
// returns the table's new total row count.
func (c *Catalog) Append(name string, rows []tuple.Row) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	src, ok := c.sources[name]
	if !ok {
		return 0, fmt.Errorf("server: insert into unknown table %q", name)
	}
	old := src.Data
	combined := make([]tuple.Row, 0, len(old.Rows)+len(rows))
	combined = append(combined, old.Rows...)
	combined = append(combined, rows...)
	data, err := source.NewTable(old.Schema, combined)
	if err != nil {
		return 0, fmt.Errorf("server: insert into %q: %w", name, err)
	}
	src.Data = data
	c.sources[name] = src
	c.version++
	c.notifyLocked()
	return len(data.Rows), nil
}

// open applies the catalog's data-directory confinement: with a dir set,
// paths open through an os.Root, which rejects absolute paths and blocks
// every escape — `..` traversal and symlinks pointing outside alike — at
// the OS level, not lexically.
func (c *Catalog) open(path string) (*os.File, error) {
	if c.dir == "" {
		return os.Open(path)
	}
	if filepath.IsAbs(path) {
		return nil, fmt.Errorf("absolute path %q not allowed (data dir is %q)", path, c.dir)
	}
	root, err := os.OpenRoot(c.dir)
	if err != nil {
		return nil, err
	}
	defer root.Close()
	return root.Open(path)
}

// RegisterCSV loads the CSV at path — confined to the data dir, since the
// path may come from an untrusted REGISTER statement — and registers it
// under name with a scan access method plus the given index declarations.
// It returns the number of rows loaded. The load happens outside the
// catalog lock; registration atomically replaces any existing entry of the
// same name.
func (c *Catalog) RegisterCSV(name, path string, indexes []sql.RegisterIndex) (int, error) {
	f, err := c.open(path)
	if err != nil {
		return 0, fmt.Errorf("server: register %s: %w", name, err)
	}
	return c.registerFrom(name, f, indexes)
}

// RegisterLocalCSV loads the CSV at path with NO data-dir confinement —
// for operator-supplied paths (command-line flags), never for paths taken
// from client statements.
func (c *Catalog) RegisterLocalCSV(name, path string, indexes []sql.RegisterIndex) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("server: register %s: %w", name, err)
	}
	return c.registerFrom(name, f, indexes)
}

func (c *Catalog) registerFrom(name string, f *os.File, indexes []sql.RegisterIndex) (int, error) {
	data, err := csvload.Load(name, f)
	f.Close()
	if err != nil {
		return 0, err
	}
	scan := source.ScanSpec{InterArrival: c.scanInterval}
	src := sql.Source{Data: data, Scan: &scan}
	for _, ix := range indexes {
		col := data.Schema.ColIndex(ix.Col)
		if col < 0 {
			return 0, fmt.Errorf("server: register %s: no column %q for INDEX", name, ix.Col)
		}
		src.Indexes = append(src.Indexes, source.IndexSpec{
			KeyCols: []int{col}, Latency: clock.Duration(ix.Latency), Parallel: 1,
		})
	}
	c.Put(name, src)
	return len(data.Rows), nil
}

// Apply executes a parsed REGISTER TABLE statement against the catalog,
// returning the number of rows loaded.
func (c *Catalog) Apply(st *sql.RegisterStmt) (int, error) {
	return c.RegisterCSV(st.Name, st.Path, st.Indexes)
}

// LoadFlagSpecs fills the catalog from the command-line specs shared by
// the stemsql and stemsd binaries: tables as "name=path.csv" and indexes
// as "table:column:latency". Flag paths are operator input, so they load
// without data-dir confinement.
func (c *Catalog) LoadFlagSpecs(tables, indexes []string) error {
	for _, spec := range tables {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("server: bad table spec %q (want name=path.csv)", spec)
		}
		if _, err := c.RegisterLocalCSV(name, path, nil); err != nil {
			return err
		}
	}
	for _, spec := range indexes {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return fmt.Errorf("server: bad index spec %q (want table:column:latency)", spec)
		}
		lat, err := time.ParseDuration(parts[2])
		if err != nil {
			return fmt.Errorf("server: index latency: %w", err)
		}
		if err := c.AddIndex(parts[0], parts[1], lat); err != nil {
			return err
		}
	}
	return nil
}

// AddIndex declares an additional single-column index access method on an
// already-registered table.
func (c *Catalog) AddIndex(table, col string, latency time.Duration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	src, ok := c.sources[table]
	if !ok {
		return fmt.Errorf("server: index on unknown table %q", table)
	}
	ci := src.Data.Schema.ColIndex(col)
	if ci < 0 {
		return fmt.Errorf("server: index on unknown column %q of %q", col, table)
	}
	src.Indexes = append(append([]source.IndexSpec(nil), src.Indexes...), source.IndexSpec{
		KeyCols: []int{ci}, Latency: clock.Duration(latency), Parallel: 1,
	})
	c.sources[table] = src
	c.version++
	c.gens[table]++
	c.notifyLocked()
	return nil
}
