// insert.go is the live-ingestion path: POST /insert appends JSON rows to a
// registered table, and INSERT statements arriving through POST /query land
// in the same append. Both go through Catalog.Append, whose copy-on-publish
// replacement is what makes ingestion safe under concurrency: in-flight
// queries keep the immutable table they bound, the catalog version bump
// lazily invalidates cached plans, the data-pointer change detaches shared
// SteMs, and standing subscriptions observe the same-generation row growth
// and run a delta round.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/tuple"
	"repro/internal/value"
)

// InsertRequest is the POST /insert body. Row values are JSON integers,
// strings, or null, matching the engine's value kinds; each row must match
// the table's schema.
type InsertRequest struct {
	Table string  `json:"table"`
	Rows  [][]any `json:"rows"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.UseNumber()
	var req InsertRequest
	if err := dec.Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Table == "" {
		writeJSONError(w, http.StatusBadRequest, errors.New(`missing "table" field`))
		return
	}
	rows, err := rowsFromJSON(req.Rows)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	s.applyInsert(w, r, req.Table, rows)
}

// applyInsert runs the shared tail of both insert paths: the drain barrier
// and admission gate (appends mutate shared state and must not outlive a
// Shutdown drain), the catalog append, and the JSON response.
func (s *Server) applyInsert(w http.ResponseWriter, r *http.Request, table string, rows []tuple.Row) {
	if len(rows) == 0 {
		writeJSONError(w, http.StatusBadRequest, errors.New("no rows to insert"))
		return
	}
	if !s.beginQuery() {
		s.met.reject()
		writeJSONError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	defer s.queries.Done()
	if err := s.admit(r.Context()); err != nil {
		s.met.reject()
		code := http.StatusTooManyRequests
		if !errors.Is(err, errBusy) {
			code = http.StatusServiceUnavailable
		}
		writeJSONError(w, code, err)
		return
	}
	defer s.release()
	total, err := s.cat.Append(table, rows)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	s.met.insert(len(rows))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"table": table, "inserted": len(rows), "total_rows": total})
}

// rowsFromJSON converts UseNumber-decoded JSON rows to engine rows. Only
// integers, strings, and null map onto the engine's value kinds; anything
// else (floats included) is the client's error. Schema validation — arity
// and per-column kinds — is Catalog.Append's job.
func rowsFromJSON(in [][]any) ([]tuple.Row, error) {
	rows := make([]tuple.Row, len(in))
	for i, r := range in {
		row := make(tuple.Row, len(r))
		for j, v := range r {
			switch v := v.(type) {
			case json.Number:
				n, err := strconv.ParseInt(v.String(), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("row %d col %d: %q is not an integer (values are integers, strings, or null)", i, j, v.String())
				}
				row[j] = value.NewInt(n)
			case string:
				row[j] = value.NewStr(v)
			case nil:
				row[j] = value.NewNull()
			default:
				return nil, fmt.Errorf("row %d col %d: unsupported JSON value of type %T", i, j, v)
			}
		}
		rows[i] = row
	}
	return rows, nil
}
