package server

// Serving-layer tests for out-of-core queries: per-query byte budgets at
// admission, the spill gauges on /metrics, and file hygiene — spill segments
// must vanish after completed runs and after a mid-join session DELETE, with
// no descriptor left open on them.

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/sql"
)

// spillCatalog is slowCatalog's fast twin: the same 400×50 join shape, paced
// in microseconds so completed-run tests finish instantly.
func spillCatalog(t testing.TB) *Catalog {
	t.Helper()
	cat := NewCatalog(time.Microsecond, "")
	scan := source.ScanSpec{InterArrival: clock.Microsecond}
	sch1, _ := schema.NewTable("big", schema.IntCol("k"), schema.IntCol("a"))
	d1, _ := source.NewTable(sch1, seqRows(400, 50))
	cat.Put("big", sql.Source{Data: d1, Scan: &scan})
	sch2, _ := schema.NewTable("dim", schema.IntCol("b"), schema.IntCol("v"))
	d2, _ := source.NewTable(sch2, seqRows(50, 50))
	cat.Put("dim", sql.Source{Data: d2, Scan: &scan})
	return cat
}

// spillFiles counts files under dir, and fdsInto counts open descriptors
// pointing into it — both must be zero once no query is running.
func spillFiles(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	filepath.WalkDir(dir, func(_ string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			n++
		}
		return nil
	})
	return n
}

func fdsInto(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("cannot inspect fds: %v", err)
	}
	n := 0
	for _, e := range ents {
		if target, err := os.Readlink(filepath.Join("/proc/self/fd", e.Name())); err == nil && strings.HasPrefix(target, dir) {
			n++
		}
	}
	return n
}

// TestServerSpillQuery runs the 400-row join under a pathological per-query
// budget: results must be complete, the spill directory empty afterwards,
// and no descriptor may still point into it.
func TestServerSpillQuery(t *testing.T) {
	dir := t.TempDir()
	_, ts, client := newTestServer(t, spillCatalog(t), Config{
		MemBudgetBytes: 1, SpillDir: dir,
	})
	res := postQuery(t, client, ts.URL, map[string]any{
		"sql": "SELECT big.k, dim.v FROM big, dim WHERE big.a = dim.b",
	})
	if res.status != http.StatusOK {
		t.Fatalf("status = %d", res.status)
	}
	if len(res.rows) != 400 {
		t.Fatalf("got %d rows, want 400", len(res.rows))
	}
	if n := spillFiles(t, dir); n != 0 {
		t.Fatalf("%d spill files left after completed query", n)
	}
	if n := fdsInto(t, dir); n != 0 {
		t.Fatalf("%d descriptors still open into the spill dir", n)
	}
}

// TestServerSpillBudgetCap caps client-requested budgets at the server's.
func TestServerSpillBudgetCap(t *testing.T) {
	dir := t.TempDir()
	_, ts, client := newTestServer(t, spillCatalog(t), Config{
		MemBudgetBytes: 1, SpillDir: dir,
	})
	// The client asks for gigabytes; the server cap of one byte wins, so the
	// run must spill (visible as a complete result with an empty dir — a
	// non-spilling run would also pass, so check the metrics counter moved).
	res := postQuery(t, client, ts.URL, map[string]any{
		"sql":              "SELECT big.k, dim.v FROM big, dim WHERE big.a = dim.b",
		"mem_budget_bytes": int64(1 << 30),
	})
	if res.status != http.StatusOK || len(res.rows) != 400 {
		t.Fatalf("status=%d rows=%d", res.status, len(res.rows))
	}
	if n := spillFiles(t, dir); n != 0 {
		t.Fatalf("%d spill files left", n)
	}
}

// metricGauge scrapes one numeric metric value.
func metricGauge(t *testing.T, client *http.Client, url, name string) float64 {
	t.Helper()
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

// TestServerSpillSessionDeleteCleansUp cancels an out-of-core join mid-run
// via session DELETE: the spilled-bytes gauge must have been live while the
// query ran, and cancellation must remove every segment and descriptor.
func TestServerSpillSessionDeleteCleansUp(t *testing.T) {
	dir := t.TempDir()
	srv, ts, client := newTestServer(t, slowCatalog(t), Config{
		TimeCompression: 1, MemBudgetBytes: 1, SpillDir: dir,
	})
	resCh := make(chan ndjsonResult, 1)
	go func() {
		resCh <- postQuery(t, client, ts.URL, map[string]any{
			"sql": slowJoin, "session": "spilly", "deadline_ms": 60_000,
		})
	}()
	waitInflight(t, client, ts.URL, 1)

	// The run is spilling while it executes.
	deadline := time.Now().Add(10 * time.Second)
	for metricGauge(t, client, ts.URL, "stemsd_stem_spilled_bytes") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("spilled-bytes gauge never moved during an out-of-core run")
		}
		time.Sleep(20 * time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/session/spilly", nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	res := <-resCh
	if res.errLine == "" && res.status == http.StatusOK {
		t.Fatalf("query survived session DELETE: %v", res.trailer)
	}

	if n := spillFiles(t, dir); n != 0 {
		t.Fatalf("%d spill files left after canceled query", n)
	}
	if n := fdsInto(t, dir); n != 0 {
		t.Fatalf("%d descriptors still open into the spill dir", n)
	}
	if g := metricGauge(t, client, ts.URL, "stemsd_stem_spilled_bytes"); g != 0 {
		t.Fatalf("spilled-bytes gauge stuck at %v after the query ended", g)
	}
	srv.Shutdown(50 * time.Millisecond)
}
