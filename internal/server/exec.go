// exec.go executes one statement for one request: parse, bind against a
// catalog snapshot, build a per-query router and engine, and stream results
// back as NDJSON while they are produced. Each query gets its own policy,
// router, and engine (none are safe for cross-query sharing); only the
// catalog's source tables are shared, and those are immutable once
// registered.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/clock"
	"repro/internal/eddy"
	"repro/internal/policy"
	"repro/internal/sql"
	"repro/internal/stem"
	"repro/internal/tuple"
	"repro/internal/value"
)

// execStats summarizes one query's execution for the trailer and metrics.
type execStats struct {
	Rows    int
	Routed  uint64
	Builds  uint64
	Probes  uint64
	Elapsed time.Duration
}

// userError marks failures caused by the request (parse, bind, bad knobs),
// reported as 400 rather than 500.
type userError struct{ err error }

func (e userError) Error() string { return e.err.Error() }
func (e userError) Unwrap() error { return e.err }

// rowJSON renders one result tuple as a JSON object keyed by the projected
// column labels.
func rowJSON(t *tuple.Tuple, out []sql.OutputCol) map[string]any {
	m := make(map[string]any, len(out))
	for _, oc := range out {
		v := t.Value(oc.Table, oc.Col)
		switch v.K {
		case value.Int:
			m[oc.Name] = v.I
		case value.Str:
			m[oc.Name] = v.S
		default:
			m[oc.Name] = nil
		}
	}
	return m
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.SQL == "" {
		writeJSONError(w, http.StatusBadRequest, errors.New(`missing "sql" field`))
		return
	}
	st, err := sql.ParseStatement(req.SQL)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	switch st := st.(type) {
	case *sql.RegisterStmt:
		// Registrations pass the same drain barrier and admission gate as
		// queries: CSV loads are real memory/CPU work, so they must not
		// exceed MaxInFlight and must not outlive a Shutdown drain.
		if !s.beginQuery() {
			s.met.reject()
			writeJSONError(w, http.StatusServiceUnavailable, errDraining)
			return
		}
		defer s.queries.Done()
		if err := s.admit(r.Context()); err != nil {
			s.met.reject()
			code := http.StatusTooManyRequests
			if !errors.Is(err, errBusy) {
				code = http.StatusServiceUnavailable
			}
			writeJSONError(w, code, err)
			return
		}
		defer s.release()
		rows, err := s.cat.Apply(st)
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, err)
			return
		}
		s.met.register()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"registered": st.Name, "rows": rows})
	case *sql.Stmt:
		s.runQuery(w, r, req, st)
	}
}

// runQuery admits, executes, and streams one SELECT.
func (s *Server) runQuery(w http.ResponseWriter, r *http.Request, req QueryRequest, st *sql.Stmt) {
	// Register with the drain barrier first: Shutdown flips draining before
	// waiting, so a query that slips past the flag is still waited for.
	if !s.beginQuery() {
		s.met.reject()
		writeJSONError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	defer s.queries.Done()

	// Cancellation chain: client disconnect (request context) → drain
	// (base context) → session close → per-query deadline. Any of them
	// cancels qctx, which aborts the admission queue wait or stops the
	// eddy mid-route. The chain is built and the session attached BEFORE
	// admission, so the deadline bounds queue time too and a session
	// DELETE cancels its queued (not just executing) queries.
	qctx, cancel := context.WithCancelCause(r.Context())
	defer cancel(nil)
	stopBase := context.AfterFunc(s.baseCtx, func() { cancel(context.Cause(s.baseCtx)) })
	defer stopBase()

	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	var cancelT context.CancelFunc
	qctx, cancelT = context.WithTimeoutCause(qctx, deadline,
		fmt.Errorf("query deadline %v exceeded", deadline))
	defer cancelT()

	if req.Session != "" {
		qid := s.qid.Add(1)
		ss := s.attachQuery(req.Session, qid, cancel)
		if ss == nil {
			writeJSONError(w, http.StatusConflict, fmt.Errorf("session %q is closed", req.Session))
			return
		}
		defer s.detachQuery(ss, qid)
	}

	if err := s.admit(qctx); err != nil {
		s.met.reject()
		code := http.StatusTooManyRequests
		if !errors.Is(err, errBusy) {
			code = http.StatusServiceUnavailable // canceled while queued
			if errors.Is(qctx.Err(), context.DeadlineExceeded) {
				code = http.StatusGatewayTimeout
			}
		}
		writeJSONError(w, code, err)
		return
	}
	defer s.release()

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	started := false
	sink := func(row map[string]any) error {
		if err := enc.Encode(map[string]any{"row": row}); err != nil {
			return err
		}
		started = true
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	stats, err := s.execute(qctx, req, st, sink)
	if err != nil {
		cause := err
		qs := statusError
		if qctx.Err() != nil {
			qs = statusCanceled
			if c := context.Cause(qctx); c != nil {
				cause = c
			}
		}
		s.met.finishQuery(qs, stats.Rows, stats.Elapsed, stats.Routed, stats.Builds, stats.Probes)
		if started {
			// Mid-stream: the status line is long gone; report in-band.
			enc.Encode(map[string]string{"error": cause.Error()})
			return
		}
		code := http.StatusInternalServerError
		switch {
		case errors.As(err, &userError{}):
			code = http.StatusBadRequest
		case qs == statusCanceled && errors.Is(qctx.Err(), context.DeadlineExceeded):
			code = http.StatusGatewayTimeout
		case qs == statusCanceled:
			code = http.StatusServiceUnavailable
		}
		writeJSONError(w, code, cause)
		return
	}
	s.met.finishQuery(statusOK, stats.Rows, stats.Elapsed, stats.Routed, stats.Builds, stats.Probes)
	enc.Encode(map[string]any{
		"done":          true,
		"rows":          stats.Rows,
		"elapsed_ms":    float64(stats.Elapsed) / float64(time.Millisecond),
		"routing_steps": stats.Routed,
		"stem_builds":   stats.Builds,
		"index_probes":  stats.Probes,
	})
}

// beginQuery registers the query with the drain barrier; it reports false
// when the server is draining and the query must not start.
func (s *Server) beginQuery() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining.Load() {
		return false
	}
	s.queries.Add(1)
	return true
}

// execute binds and runs one SELECT, feeding result rows to sink. Rows
// stream as the eddy emits them unless the statement has ORDER BY or LIMIT
// (both are applied above the eddy, so those queries buffer and arrange
// first). Engine-level statistics are returned even on a canceled run.
func (s *Server) execute(ctx context.Context, req QueryRequest, st *sql.Stmt, sink func(map[string]any) error) (execStats, error) {
	var stats execStats
	start := time.Now()
	bound, err := sql.Bind(st, s.cat.Snapshot())
	if err != nil {
		return stats, userError{err}
	}
	seed := req.Seed
	if seed == 0 {
		seed = s.cfg.Seed
	}
	polName := req.Policy
	if polName == "" {
		polName = s.cfg.Policy
	}
	pol, err := policy.ByName(polName, seed)
	if err != nil {
		return stats, userError{err}
	}
	shards := req.Shards
	if shards == 0 {
		shards = s.cfg.Shards
	}
	ropts := eddy.Options{Policy: pol, Shards: shards}
	// Per-query memory limit: every admitted query runs under its own byte
	// governor (real disk spill + replay), so MaxInFlight × budget bounds
	// the server's total SteM footprint. Client requests tighten the server
	// limit, never exceed it — and never enable disk spill on a server
	// whose operator left it off (client-controlled disk I/O must be an
	// operator opt-in).
	if req.MemBudgetBytes < 0 {
		return stats, userError{fmt.Errorf("mem_budget_bytes must be >= 0, got %d", req.MemBudgetBytes)}
	}
	budget := int64(0)
	if s.cfg.MemBudgetBytes > 0 {
		budget = req.MemBudgetBytes
		if budget == 0 || budget > s.cfg.MemBudgetBytes {
			budget = s.cfg.MemBudgetBytes
		}
	}
	var gov *stem.Governor
	if budget > 0 {
		dir := s.cfg.SpillDir
		if dir == "" {
			dir = os.TempDir()
		}
		gov, err = stem.NewSpillGovernor(budget, stem.AllocByProbes, dir)
		if err != nil {
			return stats, err
		}
		// Close removes every spill segment on any exit, including a
		// session DELETE or deadline canceling the run mid-join.
		defer gov.Close()
		defer s.trackGovernor(gov)()
		ropts.Governor = gov
	}
	r, err := eddy.NewRouter(bound.Q, ropts)
	if err != nil {
		return stats, userError{err}
	}

	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	streaming := len(bound.OrderBy) == 0 && bound.Limit < 0
	var sinkErr error
	emit := func(t *tuple.Tuple) {
		if sinkErr != nil {
			return
		}
		if err := sink(rowJSON(t, bound.Output)); err != nil {
			sinkErr = err
			cancel(fmt.Errorf("client write failed: %w", err))
			return
		}
		stats.Rows++
	}

	var outs []eddy.Output
	var runErr error
	switch req.Engine {
	case "", "concurrent":
		batch := req.Batch
		if batch == 0 {
			batch = s.cfg.BatchSize
		}
		eng := eddy.NewConcurrent(r, clock.NewReal(s.cfg.TimeCompression))
		eng.BatchSize = batch
		eng.Columnar = !s.cfg.RowBatches
		if streaming {
			eng.OnOutput = func(t *tuple.Tuple, at clock.Time) { emit(t) }
		}
		outs, runErr = eng.RunContext(ctx)
	case "sim":
		sim := eddy.NewSim(r)
		sim.Ctx = ctx
		if streaming {
			sim.OnOutput = func(t *tuple.Tuple, at clock.Time) { emit(t) }
		}
		outs, runErr = sim.Run()
	default:
		return stats, userError{fmt.Errorf("unknown engine %q (want concurrent or sim)", req.Engine)}
	}

	stats.Routed = r.Routed()
	for _, a := range r.AMs() {
		stats.Probes += a.Stats().Probes
	}
	for _, sm := range r.SteMs() {
		stats.Builds += sm.Stats().Builds
	}
	stats.Elapsed = time.Since(start)
	if runErr != nil {
		return stats, runErr
	}
	if gov != nil {
		if serr := gov.Err(); serr != nil {
			return stats, fmt.Errorf("spill I/O failed (results fell back to resident storage): %w", serr)
		}
	}
	if sinkErr != nil {
		return stats, sinkErr
	}
	if n := r.Stuck(); n > 0 {
		return stats, fmt.Errorf("internal error: %d tuples had no legal route", n)
	}
	if !streaming {
		ts := make([]*tuple.Tuple, len(outs))
		for i, o := range outs {
			ts[i] = o.T
		}
		for _, t := range bound.Arrange(ts) {
			emit(t)
		}
		if sinkErr != nil {
			return stats, sinkErr
		}
	}
	return stats, nil
}
