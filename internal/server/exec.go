// exec.go executes one statement for one request: parse, bind against a
// catalog snapshot, build a per-query router and engine, and stream results
// back as NDJSON while they are produced. Each query gets its own policy,
// router, and engine (none are safe for cross-query sharing); only the
// catalog's source tables are shared, and those are immutable once
// registered.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"runtime/pprof"
	"strconv"
	"time"

	"repro/internal/clock"
	"repro/internal/eddy"
	"repro/internal/policy"
	"repro/internal/sql"
	"repro/internal/stem"
	"repro/internal/trace"
	"repro/internal/tuple"
	"repro/internal/value"
)

// execStats summarizes one query's execution for the trailer, metrics, and
// the completed-queries ring.
type execStats struct {
	Rows      int
	Routed    uint64
	Builds    uint64
	Probes    uint64
	Elapsed   time.Duration
	QueueWait time.Duration
	CacheHit  bool
	Shared    bool
	Spilled   bool
	// Trace carries the run's collector snapshot; the policy state is
	// included only when the request asked for an explain.
	Trace trace.Record
}

// userError marks failures caused by the request (parse, bind, bad knobs),
// reported as 400 rather than 500.
type userError struct{ err error }

func (e userError) Error() string { return e.err.Error() }
func (e userError) Unwrap() error { return e.err }

const hexDigits = "0123456789abcdef"

// appendRowJSON appends one NDJSON result line — {"row":{...}}\n — keyed by
// the projected column labels. Hand-rolled: per-row encoding is the serving
// hot path, and the map + reflection route of encoding/json costs dozens of
// allocations per row.
func appendRowJSON(buf []byte, t *tuple.Tuple, out []sql.OutputCol) []byte {
	buf = append(buf, `{"row":{`...)
	for i, oc := range out {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendJSONString(buf, oc.Name)
		buf = append(buf, ':')
		v := t.Value(oc.Table, oc.Col)
		switch v.K {
		case value.Int:
			buf = strconv.AppendInt(buf, v.I, 10)
		case value.Str:
			buf = appendJSONString(buf, v.S)
		default:
			buf = append(buf, "null"...)
		}
	}
	return append(buf, '}', '}', '\n')
}

// appendJSONString appends s as a JSON string literal, escaping quotes,
// backslashes, and control characters (the only bytes JSON forbids raw).
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		switch ch := s[i]; {
		case ch == '"' || ch == '\\':
			buf = append(buf, '\\', ch)
		case ch < 0x20:
			buf = append(buf, '\\', 'u', '0', '0', hexDigits[ch>>4], hexDigits[ch&0xf])
		default:
			buf = append(buf, ch)
		}
	}
	return append(buf, '"')
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.SQL == "" {
		writeJSONError(w, http.StatusBadRequest, errors.New(`missing "sql" field`))
		return
	}
	st, err := sql.ParseStatement(req.SQL)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	if req.Subscribe {
		// Only a SELECT (direct or via EXECUTE) can stand.
		switch st.(type) {
		case *sql.Stmt, *sql.ExecuteStmt:
		default:
			writeJSONError(w, http.StatusBadRequest, errors.New("subscribe requires a SELECT"))
			return
		}
	}
	switch st := st.(type) {
	case *sql.RegisterStmt:
		// Registrations pass the same drain barrier and admission gate as
		// queries: CSV loads are real memory/CPU work, so they must not
		// exceed MaxInFlight and must not outlive a Shutdown drain.
		if !s.beginQuery() {
			s.met.reject()
			writeJSONError(w, http.StatusServiceUnavailable, errDraining)
			return
		}
		defer s.queries.Done()
		if err := s.admit(r.Context()); err != nil {
			s.met.reject()
			code := http.StatusTooManyRequests
			if !errors.Is(err, errBusy) {
				code = http.StatusServiceUnavailable
			}
			writeJSONError(w, code, err)
			return
		}
		defer s.release()
		rows, err := s.cat.Apply(st)
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, err)
			return
		}
		s.met.register()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"registered": st.Name, "rows": rows})
	case *sql.InsertStmt:
		s.applyInsert(w, r, st.Table, st.RowValues())
	case *sql.PrepareStmt:
		s.handlePrepare(w, st)
	case *sql.ExecuteStmt:
		p, ok := s.lookupPrepared(st.Name)
		if !ok {
			writeJSONError(w, http.StatusBadRequest, fmt.Errorf("no prepared statement %q (PREPARE it first)", st.Name))
			return
		}
		s.runQuery(w, r, req, p.stmt, p.canon)
	case *sql.Stmt:
		// Ad-hoc SELECTs auto-prepare anonymously: the canonical text is the
		// plan-cache key, so a repeated query reuses its plan without an
		// explicit PREPARE.
		s.runQuery(w, r, req, st, st.Canonical())
	}
}

// handlePrepare validates and registers a named statement. PREPARE is
// metadata-only — no admission slot, no execution — but it still respects
// the drain barrier, and it binds once against the current catalog so the
// client hears about unknown tables or columns at prepare time rather than
// on the first EXECUTE.
func (s *Server) handlePrepare(w http.ResponseWriter, st *sql.PrepareStmt) {
	if s.draining.Load() {
		writeJSONError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	if _, err := sql.Bind(st.Select, s.cat.Snapshot()); err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	p := &preparedStmt{name: st.Name, stmt: st.Select, canon: st.Select.Canonical(), created: time.Now()}
	if err := s.addPrepared(p); err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"prepared": p.name, "sql": p.canon})
}

// runQuery admits, executes, and streams one SELECT. canon is the
// statement's canonical text, which keys the plan cache.
func (s *Server) runQuery(w http.ResponseWriter, r *http.Request, req QueryRequest, st *sql.Stmt, canon string) {
	if req.Subscribe {
		s.runSubscription(w, r, req, st, canon)
		return
	}
	if len(req.Window) > 0 {
		writeJSONError(w, http.StatusBadRequest, errors.New(`"window" requires "subscribe": true (a bounded query's results would depend on scan interleaving)`))
		return
	}
	// Register with the drain barrier first: Shutdown flips draining before
	// waiting, so a query that slips past the flag is still waited for.
	if !s.beginQuery() {
		s.met.reject()
		writeJSONError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	defer s.queries.Done()

	// Cancellation chain: client disconnect (request context) → drain
	// (base context) → session close → per-query deadline. Any of them
	// cancels qctx, which aborts the admission queue wait or stops the
	// eddy mid-route. The chain is built and the session attached BEFORE
	// admission, so the deadline bounds queue time too and a session
	// DELETE cancels its queued (not just executing) queries.
	qctx, cancel := context.WithCancelCause(r.Context())
	defer cancel(nil)
	stopBase := context.AfterFunc(s.baseCtx, func() { cancel(context.Cause(s.baseCtx)) })
	defer stopBase()

	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	var cancelT context.CancelFunc
	qctx, cancelT = context.WithTimeoutCause(qctx, deadline,
		fmt.Errorf("query deadline %v exceeded", deadline))
	defer cancelT()

	qid := s.qid.Add(1)
	if req.Session != "" {
		ss := s.attachQuery(req.Session, qid, cancel)
		if ss == nil {
			writeJSONError(w, http.StatusConflict, fmt.Errorf("session %q is closed", req.Session))
			return
		}
		defer s.detachQuery(ss, qid)
	}

	admitStart := time.Now()
	if err := s.admit(qctx); err != nil {
		s.met.reject()
		if lg := s.cfg.Logger; lg != nil {
			lg.Warn("query rejected", slog.Uint64("query_id", qid),
				slog.String("error", err.Error()), slog.String("sql", canon))
		}
		code := http.StatusTooManyRequests
		if !errors.Is(err, errBusy) {
			code = http.StatusServiceUnavailable // canceled while queued
			if errors.Is(qctx.Err(), context.DeadlineExceeded) {
				code = http.StatusGatewayTimeout
			}
		}
		writeJSONError(w, code, err)
		return
	}
	defer s.release()
	queueWait := time.Since(admitStart)
	startWall := time.Now()
	if lg := s.cfg.Logger; lg != nil {
		lg.Debug("query admitted", slog.Uint64("query_id", qid),
			slog.Float64("queue_ms", float64(queueWait)/float64(time.Millisecond)),
			slog.String("session", req.Session), slog.String("sql", canon))
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	started := false
	buf := make([]byte, 0, 256)
	sink := func(t *tuple.Tuple, out []sql.OutputCol) error {
		buf = appendRowJSON(buf[:0], t, out)
		if _, err := w.Write(buf); err != nil {
			return err
		}
		started = true
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	var stats execStats
	var err error
	if s.cfg.PprofLabels {
		// pprof labels are inherited by every goroutine the engine spawns,
		// so CPU profile samples attribute to the query that burned them.
		pprof.Do(qctx, pprof.Labels("query_id", strconv.FormatUint(qid, 10)), func(ctx context.Context) {
			stats, err = s.execute(ctx, req, st, canon, sink)
		})
	} else {
		stats, err = s.execute(qctx, req, st, canon, sink)
	}
	stats.QueueWait = queueWait
	if err != nil {
		cause := err
		qs := statusError
		if qctx.Err() != nil {
			qs = statusCanceled
			if c := context.Cause(qctx); c != nil {
				cause = c
			}
		}
		s.finishObserved(qid, req, canon, qs, cause, &stats, startWall)
		if started {
			// Mid-stream: the status line is long gone; report in-band.
			enc.Encode(map[string]string{"error": cause.Error()})
			return
		}
		code := http.StatusInternalServerError
		switch {
		case errors.As(err, &userError{}):
			code = http.StatusBadRequest
		case qs == statusCanceled && errors.Is(qctx.Err(), context.DeadlineExceeded):
			code = http.StatusGatewayTimeout
		case qs == statusCanceled:
			code = http.StatusServiceUnavailable
		}
		writeJSONError(w, code, cause)
		return
	}
	s.finishObserved(qid, req, canon, statusOK, nil, &stats, startWall)
	fmt.Fprintf(w, `{"done":true,"id":%d,"rows":%d,"elapsed_ms":%g,"queue_ms":%g,"routing_steps":%d,"stem_builds":%d,"index_probes":%d}`+"\n",
		qid, stats.Rows, float64(stats.Elapsed)/float64(time.Millisecond),
		float64(queueWait)/float64(time.Millisecond), stats.Routed, stats.Builds, stats.Probes)
	if req.Explain {
		enc.Encode(map[string]any{"trace": stats.Trace})
	}
	if flusher != nil {
		flusher.Flush()
	}
}

// finishObserved folds one finished execution into the metrics, the
// completed-queries ring, and the structured log. It is called exactly once
// per execution, success or failure.
func (s *Server) finishObserved(qid uint64, req QueryRequest, canon string, qs queryStatus, cause error, stats *execStats, startWall time.Time) {
	s.met.finishQuery(qs, stats.Rows, stats.Elapsed, stats.QueueWait, stats.Routed, stats.Builds, stats.Probes)
	lg := s.cfg.Logger
	if s.completed == nil && lg == nil {
		return
	}
	engine := req.Engine
	if engine == "" {
		engine = "concurrent"
	}
	polName := req.Policy
	if polName == "" {
		polName = s.cfg.Policy
	}
	rec := queryRecord{
		ID:           qid,
		Session:      req.Session,
		SQL:          canon,
		Engine:       engine,
		Policy:       polName,
		Status:       string(qs),
		Rows:         stats.Rows,
		QueueMS:      float64(stats.QueueWait) / float64(time.Millisecond),
		ElapsedMS:    float64(stats.Elapsed) / float64(time.Millisecond),
		RoutingSteps: stats.Routed,
		StemBuilds:   stats.Builds,
		IndexProbes:  stats.Probes,
		PlanCacheHit: stats.CacheHit,
		SharedStems:  stats.Shared,
		Spilled:      stats.Spilled,
		Start:        startWall,
		Modules:      stats.Trace.Modules,
	}
	if cause != nil {
		rec.Error = cause.Error()
	}
	if s.completed != nil {
		s.completed.add(rec)
	}
	if lg != nil {
		logFinished(lg, &rec, s.cfg.SlowQuery)
	}
}

// beginQuery registers the query with the drain barrier; it reports false
// when the server is draining and the query must not start.
func (s *Server) beginQuery() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining.Load() {
		return false
	}
	s.queries.Add(1)
	return true
}

// execute binds and runs one SELECT, feeding result rows to sink. Rows
// stream as the eddy emits them unless the statement has ORDER BY or LIMIT
// (both are applied above the eddy, so those queries buffer and arrange
// first). Engine-level statistics are returned even on a canceled run.
//
// Concurrent-engine queries without a memory budget run through the plan
// cache (executeCached): the bound statement is reused across executions
// with the same canonical text and knobs, and router+engine shells are
// pooled. Sim-engine and governed queries take the fresh-build path — a
// spill governor is per-query disk state no shell may share.
func (s *Server) execute(ctx context.Context, req QueryRequest, st *sql.Stmt, canon string, sink func(*tuple.Tuple, []sql.OutputCol) error) (execStats, error) {
	var stats execStats
	start := time.Now()
	seed := req.Seed
	if seed == 0 {
		seed = s.cfg.Seed
	}
	polName := req.Policy
	if polName == "" {
		polName = s.cfg.Policy
	}
	shards := req.Shards
	if shards == 0 {
		shards = s.cfg.Shards
	}
	batch := req.Batch
	if batch == 0 {
		batch = s.cfg.BatchSize
	}
	switch req.Engine {
	case "", "concurrent", "sim":
	default:
		return stats, userError{fmt.Errorf("unknown engine %q (want concurrent or sim)", req.Engine)}
	}
	// Per-query memory limit: every admitted query runs under its own byte
	// governor (real disk spill + replay), so MaxInFlight × budget bounds
	// the server's total SteM footprint. Client requests tighten the server
	// limit, never exceed it — and never enable disk spill on a server
	// whose operator left it off (client-controlled disk I/O must be an
	// operator opt-in).
	if req.MemBudgetBytes < 0 {
		return stats, userError{fmt.Errorf("mem_budget_bytes must be >= 0, got %d", req.MemBudgetBytes)}
	}
	budget := int64(0)
	if s.cfg.MemBudgetBytes > 0 {
		budget = req.MemBudgetBytes
		if budget == 0 || budget > s.cfg.MemBudgetBytes {
			budget = s.cfg.MemBudgetBytes
		}
	}

	if s.plans != nil && budget == 0 && req.Engine != "sim" {
		key := planKey{canon: canon, policy: polName, seed: seed, shards: shards, batch: batch}
		return s.executeCached(ctx, req, st, key, sink, start)
	}

	pol, err := policy.ByName(polName, seed)
	if err != nil {
		return stats, userError{err}
	}
	snap := s.cat.Snapshot()
	bound, err := sql.Bind(st, snap)
	if err != nil {
		return stats, userError{err}
	}
	ropts := eddy.Options{Policy: pol, Shards: shards}
	// Catalog-owned shared SteMs: governed queries stay all-private (a
	// spill governor is per-query state, and attached tables need none),
	// so attachment is gated on running without a memory budget. The
	// released-only-after-return defer is safe because both engines leave
	// zero goroutines behind when RunContext/Run returns.
	if budget == 0 {
		shared, err := s.shared.planAttach(st, bound.Q, snap, shards)
		if err != nil {
			return stats, err
		}
		defer shared.release()
		if shared != nil {
			ropts.SharedFor = shared.sharedFor
			stats.Shared = true
		}
	}
	var gov *stem.Governor
	if budget > 0 {
		dir := s.cfg.SpillDir
		if dir == "" {
			dir = os.TempDir()
		}
		gov, err = stem.NewSpillGovernor(budget, stem.AllocByProbes, dir)
		if err != nil {
			return stats, err
		}
		// Close removes every spill segment on any exit, including a
		// session DELETE or deadline canceling the run mid-join.
		defer gov.Close()
		defer s.trackGovernor(gov)()
		ropts.Governor = gov
	}
	r, err := eddy.NewRouter(bound.Q, ropts)
	if err != nil {
		return stats, userError{err}
	}

	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	streaming := len(bound.OrderBy) == 0 && bound.Limit < 0
	var sinkErr error
	emit := func(t *tuple.Tuple) {
		if sinkErr != nil {
			return
		}
		if err := sink(t, bound.Output); err != nil {
			sinkErr = err
			cancel(fmt.Errorf("client write failed: %w", err))
			return
		}
		stats.Rows++
	}

	// The collector rides every execution (GET /queries records carry
	// module stats); the policy's learned state is snapshotted into the
	// trace only when the request asked for an explain.
	coll := trace.NewCollector(r.Modules())
	var outs []eddy.Output
	var runErr error
	switch req.Engine {
	case "", "concurrent":
		eng := eddy.NewConcurrent(r, clock.NewReal(s.cfg.TimeCompression))
		eng.BatchSize = batch
		eng.Columnar = !s.cfg.RowBatches
		if streaming {
			eng.OnOutput = func(t *tuple.Tuple, at clock.Time) { emit(t) }
		}
		coll.AttachConcurrent(eng)
		outs, runErr = eng.RunContext(ctx)
	case "sim":
		sim := eddy.NewSim(r)
		sim.Ctx = ctx
		if streaming {
			sim.OnOutput = func(t *tuple.Tuple, at clock.Time) { emit(t) }
		}
		coll.Attach(sim)
		outs, runErr = sim.Run()
	default:
		return stats, userError{fmt.Errorf("unknown engine %q (want concurrent or sim)", req.Engine)}
	}

	stats.Routed = r.Routed()
	for _, a := range r.AMs() {
		stats.Probes += a.Stats().Probes
	}
	for _, sm := range r.SteMs() {
		stats.Builds += sm.Stats().Builds
	}
	stats.Elapsed = time.Since(start)
	var tracePol policy.Policy
	if req.Explain {
		tracePol = pol
	}
	stats.Trace = coll.Record(tracePol)
	if runErr != nil {
		return stats, runErr
	}
	if gov != nil {
		if serr := gov.Err(); serr != nil {
			return stats, fmt.Errorf("spill I/O failed (results fell back to resident storage): %w", serr)
		}
		_, sp := gov.BytesStats()
		stats.Spilled = sp > 0
	}
	if sinkErr != nil {
		return stats, sinkErr
	}
	if n := r.Stuck(); n > 0 {
		return stats, fmt.Errorf("internal error: %d tuples had no legal route", n)
	}
	if !streaming {
		ts := make([]*tuple.Tuple, len(outs))
		for i, o := range outs {
			ts[i] = o.T
		}
		for _, t := range bound.Arrange(ts) {
			emit(t)
		}
		if sinkErr != nil {
			return stats, sinkErr
		}
	}
	return stats, nil
}

// executeCached runs one SELECT through the plan cache: the bound statement
// is shared across executions keyed by canonical text + knobs + catalog
// version, and router+engine shells are pooled per entry. The routing policy
// stays with its shell across executions — the cache key pins its name and
// seed, so reuse only ever continues the same learner, and what it learned
// on earlier executions of the statement carries over (a warm plan routes
// better than a cold one). The clock is installed fresh by the Reset
// sequence (it anchors a start time); everything else survives reuse
// untouched because eddy.Concurrent.RunContext leaves zero goroutines and
// Reset restores the shell to a provably pristine state
// (internal/eddy/reset_test.go).
func (s *Server) executeCached(ctx context.Context, req QueryRequest, st *sql.Stmt, key planKey, sink func(*tuple.Tuple, []sql.OutputCol) error, start time.Time) (execStats, error) {
	var stats execStats
	snap, version := s.cat.SnapshotVersioned()
	entry, hit := s.plans.acquire(key, version)
	if !hit {
		bound, err := sql.Bind(st, snap)
		if err != nil {
			return stats, userError{err}
		}
		entry = s.plans.insert(key, version, bound)
	}
	defer entry.unref()
	bound := entry.bound

	// Shared-SteM attachments are per-execution (the sync.Pool may drop a
	// shell at any time, so a shell can never own a refcount): attach here,
	// release after the run has fully unwound. A pooled shell is reusable
	// only if its router was built against exactly these states — a rebuild
	// after REGISTER or an eviction changes the pointers and the shell is
	// discarded in favor of a fresh build.
	shared, err := s.shared.planAttach(st, bound.Q, snap, key.shards)
	if err != nil {
		return stats, err
	}
	defer shared.release()

	shell := entry.getShell()
	if shell != nil && !shellSharedMatches(shell.shared, shared) {
		shell = nil
	}
	if shell == nil {
		pol, err := policy.ByName(key.policy, key.seed)
		if err != nil {
			return stats, userError{err}
		}
		ropts := eddy.Options{Policy: pol, Shards: key.shards}
		if shared != nil {
			ropts.SharedFor = shared.sharedFor
		}
		r, err := eddy.NewRouter(bound.Q, ropts)
		if err != nil {
			return stats, userError{err}
		}
		shell = &engineShell{
			r:      r,
			eng:    eddy.NewConcurrent(r, clock.NewReal(s.cfg.TimeCompression)),
			coll:   trace.NewCollector(r.Modules()),
			shared: shared.statesOrNil(),
		}
	} else {
		// The Reset sequence restores a pristine shell; the collector joins
		// it so a pooled execution can never report a predecessor's stats
		// (eng.Reset also cleared the hooks that fed it).
		shell.r.Reset(nil)
		shell.eng.Reset()
		shell.eng.SetClock(clock.NewReal(s.cfg.TimeCompression))
		shell.coll.Reset()
	}
	r, eng := shell.r, shell.eng
	stats.CacheHit = hit
	stats.Shared = shared != nil

	// Only cleanly completed shells go back in the pool; a canceled or
	// failed run may leave batches stranded mid-flight, and while Reset
	// could recover them, pooling only clean shells keeps the invariant
	// easy to audit. The defer runs after the arrange/emit below, so the
	// shell is never reusable while its outputs are still being read.
	clean := false
	defer func() {
		if clean {
			eng.OnOutput = nil
			eng.OnService = nil
			entry.putShell(shell)
		}
	}()

	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	streaming := len(bound.OrderBy) == 0 && bound.Limit < 0
	var sinkErr error
	emit := func(t *tuple.Tuple) {
		if sinkErr != nil {
			return
		}
		if err := sink(t, bound.Output); err != nil {
			sinkErr = err
			cancel(fmt.Errorf("client write failed: %w", err))
			return
		}
		stats.Rows++
	}

	eng.BatchSize = key.batch
	eng.Columnar = !s.cfg.RowBatches
	if streaming {
		eng.OnOutput = func(t *tuple.Tuple, at clock.Time) { emit(t) }
	}
	shell.coll.AttachConcurrent(eng)
	outs, runErr := eng.RunContext(ctx)

	stats.Routed = r.Routed()
	for _, a := range r.AMs() {
		stats.Probes += a.Stats().Probes
	}
	for _, sm := range r.SteMs() {
		stats.Builds += sm.Stats().Builds
	}
	stats.Elapsed = time.Since(start)
	var tracePol policy.Policy
	if req.Explain {
		tracePol = r.Policy()
	}
	stats.Trace = shell.coll.Record(tracePol)
	stuck := r.Stuck()
	clean = runErr == nil && stuck == 0
	if runErr != nil {
		return stats, runErr
	}
	if sinkErr != nil {
		return stats, sinkErr
	}
	if stuck > 0 {
		return stats, fmt.Errorf("internal error: %d tuples had no legal route", stuck)
	}
	if !streaming {
		ts := make([]*tuple.Tuple, len(outs))
		for i, o := range outs {
			ts[i] = o.T
		}
		for _, t := range bound.Arrange(ts) {
			emit(t)
		}
		if sinkErr != nil {
			return stats, sinkErr
		}
	}
	return stats, nil
}
