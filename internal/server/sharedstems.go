// sharedstems.go gives the server catalog ownership of long-lived shared
// SteMs: the first query that uses a registered table builds sealed shared
// state for it (stem.BuildShared) keyed by (table, join columns, shard
// count), and every concurrent or later query with the same key attaches a
// probe-only handle instead of rebuilding — the paper's "SteM state is
// shareable across queries" pitch, lifted from per-query modules to the
// serving layer.
//
// Lifecycle rules, enforced here and stress-tested by the storm tests:
//
//   - Builds are single-flight: one goroutine builds while concurrent
//     attachers wait on the entry's ready channel, all holding a reference
//     from the moment they decided to attach, so the builder's result cannot
//     be torn down before they see it.
//   - Refcounts gate teardown: an entry's SharedState (and its spill
//     segments on disk) is only closed when it is stale or evicted AND its
//     refcount has dropped to zero. An executing query never loses state.
//   - REGISTER detaches lazily: registration replaces the catalog's
//     *source.Table, so an entry is stale exactly when its build-input
//     pointer no longer matches the catalog's. The next attach of a stale
//     key rebuilds; running queries keep the old state until they release.
//   - Eviction is capacity-driven: when capBytes is set, the
//     least-recently-attached unreferenced entries are closed until the
//     total footprint fits. Referenced entries are never evicted.
package server

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/query"
	"repro/internal/source"
	"repro/internal/sql"
	"repro/internal/stem"
)

// sharedKey identifies one shared build: a catalog table, the join-column
// signature the dictionaries index, and the shard count.
type sharedKey struct {
	table  string
	cols   string
	shards int
}

// colsSig renders sorted join columns as a key component.
func colsSig(cols []int) string {
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c))
	}
	return b.String()
}

// normShards normalizes a shard request the way stem.BuildShared does, so
// requests for 3 and 4 shards share one key and one build.
func normShards(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// sharedEntry is one catalog-owned build. state/err are written once by the
// builder before ready closes; refs, stale, and seq are guarded by the
// manager's mutex.
type sharedEntry struct {
	key   sharedKey
	data  *source.Table // build input; pointer identity detects REGISTER
	ready chan struct{}
	state *stem.SharedState
	err   error

	refs  int
	stale bool
	seq   uint64 // last-attach sequence, for LRU eviction
}

// sharedStems is the catalog-owned shared-SteM manager.
type sharedStems struct {
	mu      sync.Mutex
	entries map[sharedKey]*sharedEntry
	seq     uint64

	// capBytes bounds the total footprint (resident + spilled) across
	// entries; 0 is unlimited. budgetBytes bounds each build's resident
	// footprint (the excess spills under spillDir); 0 keeps builds resident.
	capBytes    int64
	budgetBytes int64
	spillDir    string

	builds    atomic.Uint64
	attaches  atomic.Uint64
	detaches  atomic.Uint64
	evictions atomic.Uint64
}

func newSharedStems(capBytes, budgetBytes int64, spillDir string) *sharedStems {
	return &sharedStems{
		entries:     make(map[sharedKey]*sharedEntry),
		capBytes:    capBytes,
		budgetBytes: budgetBytes,
		spillDir:    spillDir,
	}
}

// attach returns a referenced entry for (table, keyCols, shards), building
// the shared state on first use. The caller must release the entry exactly
// once when its query stops probing the state.
func (m *sharedStems) attach(table string, data *source.Table, keyCols []int, shards int) (*sharedEntry, error) {
	key := sharedKey{table: table, cols: colsSig(keyCols), shards: normShards(shards)}
	var drop *stem.SharedState
	m.mu.Lock()
	e := m.entries[key]
	if e != nil && e.data != data {
		// REGISTER replaced the table since this entry was built: detach it
		// lazily. Running queries keep their reference; teardown waits for
		// the last release.
		e.stale = true
		delete(m.entries, key)
		if e.refs == 0 && e.state != nil {
			drop = e.state
		}
		e = nil
	}
	build := e == nil
	if build {
		e = &sharedEntry{key: key, data: data, ready: make(chan struct{})}
		m.entries[key] = e
	}
	e.refs++
	m.seq++
	e.seq = m.seq
	m.mu.Unlock()
	if drop != nil {
		drop.Close()
	}

	if build {
		m.builds.Add(1)
		state, err := stem.BuildShared(stem.SharedConfig{
			KeyCols:     keyCols,
			Shards:      shards,
			BudgetBytes: m.budgetBytes,
			SpillDir:    m.spillDir,
		}, data.Rows)
		m.mu.Lock()
		e.state, e.err = state, err
		if err != nil {
			e.stale = true
			if m.entries[key] == e {
				delete(m.entries, key)
			}
		}
		m.mu.Unlock()
		close(e.ready)
	} else {
		<-e.ready
	}
	if e.err != nil {
		m.release(e)
		return nil, e.err
	}
	m.attaches.Add(1)
	m.maybeEvict()
	return e, nil
}

// release drops one reference; the last release of a stale or evicted entry
// closes its state (removing spill segments).
func (m *sharedStems) release(e *sharedEntry) {
	var drop *stem.SharedState
	m.mu.Lock()
	if e.refs <= 0 {
		m.mu.Unlock()
		panic("server: shared SteM refcount underflow")
	}
	e.refs--
	if e.err == nil {
		m.detaches.Add(1)
	}
	if e.refs == 0 && e.stale {
		drop = e.state
	}
	m.mu.Unlock()
	if drop != nil {
		drop.Close()
	}
}

// maybeEvict closes least-recently-attached unreferenced entries until the
// total footprint fits capBytes.
func (m *sharedStems) maybeEvict() {
	if m.capBytes <= 0 {
		return
	}
	var toClose []*stem.SharedState
	m.mu.Lock()
	var total int64
	for _, e := range m.entries {
		if e.state != nil {
			total += e.state.ResidentBytes() + e.state.SpilledBytes()
		}
	}
	for total > m.capBytes {
		var victim *sharedEntry
		for _, e := range m.entries {
			if e.refs > 0 || e.state == nil {
				continue
			}
			if victim == nil || e.seq < victim.seq {
				victim = e
			}
		}
		if victim == nil {
			break // everything oversized is referenced; retry on later attaches
		}
		delete(m.entries, victim.key)
		victim.stale = true
		total -= victim.state.ResidentBytes() + victim.state.SpilledBytes()
		toClose = append(toClose, victim.state)
		m.evictions.Add(1)
	}
	m.mu.Unlock()
	for _, st := range toClose {
		st.Close()
	}
}

// closeAll tears down every unreferenced entry (Shutdown runs after the
// query drain, so normally all of them) and marks the rest stale so their
// last release closes them.
func (m *sharedStems) closeAll() {
	var toClose []*stem.SharedState
	m.mu.Lock()
	for k, e := range m.entries {
		delete(m.entries, k)
		e.stale = true
		if e.refs == 0 && e.state != nil {
			toClose = append(toClose, e.state)
		}
	}
	m.mu.Unlock()
	for _, st := range toClose {
		st.Close()
	}
}

// counts returns the lifetime counters for /metrics.
func (m *sharedStems) counts() (builds, attaches, detaches, evictions uint64) {
	return m.builds.Load(), m.attaches.Load(), m.detaches.Load(), m.evictions.Load()
}

// bytes sums the live entries' footprint for the resident-bytes gauge.
func (m *sharedStems) bytes() (resident, spilled int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range m.entries {
		if e.state != nil {
			resident += e.state.ResidentBytes()
			spilled += e.state.SpilledBytes()
		}
	}
	return resident, spilled
}

// entryCount returns the number of live entries.
func (m *sharedStems) entryCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// refSnapshot returns the per-entry refcounts, for lifecycle tests.
func (m *sharedStems) refSnapshot() map[sharedKey]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[sharedKey]int, len(m.entries))
	for k, e := range m.entries {
		out[k] = e.refs
	}
	return out
}

// sharedPlan is one execution's set of shared-SteM attachments: states by
// table position (nil = private) plus the referenced entries to release when
// the execution stops probing. A nil *sharedPlan means "all private" and is
// safe to call methods on.
type sharedPlan struct {
	m       *sharedStems
	states  []*stem.SharedState
	entries []*sharedEntry
}

// sharedFor adapts the plan to eddy.Options.SharedFor.
func (p *sharedPlan) sharedFor(t int) *stem.SharedState {
	if p == nil {
		return nil
	}
	return p.states[t]
}

// release drops the plan's references. Call exactly once per execution,
// after the engine has unwound (no goroutine may still be probing).
func (p *sharedPlan) release() {
	if p == nil {
		return
	}
	for _, e := range p.entries {
		p.m.release(e)
	}
}

// statesOrNil returns the per-table states for shell compatibility checks.
func (p *sharedPlan) statesOrNil() []*stem.SharedState {
	if p == nil {
		return nil
	}
	return p.states
}

// shellSharedMatches reports whether a pooled shell's recorded attachments
// are exactly this execution's: same state pointers at same positions. A
// rebuild after REGISTER or an eviction yields a different *SharedState, so
// pointer identity is the staleness test.
func shellSharedMatches(shell []*stem.SharedState, plan *sharedPlan) bool {
	want := plan.statesOrNil()
	if len(shell) != len(want) {
		return false
	}
	for i := range want {
		if shell[i] != want[i] {
			return false
		}
	}
	return true
}

// planAttach decides which of a query's tables can ride catalog-owned
// shared SteMs and attaches them, returning a referenced plan (release
// exactly once) or nil to fall back to all-private execution.
//
// At least one table — the driver — always stays private, so its scan
// drives the dataflow and every result tuple spans it; tuples spanning the
// driver are never probed into the driver's SteM, which keeps the private
// and shared timestamp counters out of any single comparison. The driver is
// the smallest table (ties to the earliest FROM position): its per-query
// build is the cheapest to redo, so the largest states get shared.
//
// Fallback (nil plan) cases: fewer than two tables, a driver with no scan
// access method (nothing would seed the dataflow), a non-driver table with
// no join columns (nothing to key its dictionary on), or a join graph
// not connected from the driver (a cross-product leg would need the
// attached table's scan, which attachments do not run).
func (m *sharedStems) planAttach(st *sql.Stmt, q *query.Q, snap sql.MapCatalog, shards int) (*sharedPlan, error) {
	n := q.NumTables()
	if m == nil || n < 2 || n != len(st.From) {
		return nil, nil
	}
	srcs := make([]sql.Source, n)
	driver := 0
	for i, ref := range st.From {
		src, ok := snap.Source(ref.Source)
		if !ok || src.Data == nil {
			return nil, nil // bind used this snapshot, so practically unreachable
		}
		srcs[i] = src
		if len(src.Data.Rows) < len(srcs[driver].Data.Rows) {
			driver = i
		}
	}
	if srcs[driver].Scan == nil {
		return nil, nil
	}
	reach := make([]bool, n)
	reach[driver] = true
	for changed := true; changed; {
		changed = false
		for _, p := range q.Preds {
			if !p.IsJoin() {
				continue
			}
			if l, r := p.Left.Table, p.Right.Table; reach[l] != reach[r] {
				reach[l], reach[r] = true, true
				changed = true
			}
		}
	}
	cols := make([][]int, n)
	for t := 0; t < n; t++ {
		if t == driver {
			continue
		}
		if !reach[t] {
			return nil, nil
		}
		if cols[t] = stem.JoinCols(q, t); len(cols[t]) == 0 {
			return nil, nil
		}
	}
	plan := &sharedPlan{m: m, states: make([]*stem.SharedState, n)}
	for t := 0; t < n; t++ {
		if t == driver {
			continue
		}
		e, err := m.attach(st.From[t].Source, srcs[t].Data, cols[t], shards)
		if err != nil {
			plan.release()
			return nil, fmt.Errorf("shared SteM build for %q failed: %w", st.From[t].Source, err)
		}
		plan.entries = append(plan.entries, e)
		plan.states[t] = e.state
	}
	return plan, nil
}

// debugString renders the manager's state for error messages in tests.
func (m *sharedStems) debugString() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	for k, e := range m.entries {
		fmt.Fprintf(&b, "%v refs=%d stale=%v ", k, e.refs, e.stale)
	}
	return b.String()
}
