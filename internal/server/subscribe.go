// subscribe.go serves standing queries: a POST /query with "subscribe":true
// binds a SELECT once, runs it to quiescence over the tables' current rows,
// and then — instead of winding the engine down — keeps the router, the
// engine shell, and every SteM dictionary resident on the open response.
// Each INSERT into a subscribed table wakes the loop, which feeds the new
// rows through the same eddy as singleton tuples and streams only the new
// join results: the delta.
//
// Delta exactness rests on the SteM timestamp constraint: a probe matches
// only strictly-older builds, so each join result is produced exactly once,
// by its last-arriving component — the union of the snapshot and every
// delta equals a batch run over the final table state, with no result
// duplicated and none missed (TestSubscribeDeltaExact).
//
// Lifecycle: the subscription records each FROM table's catalog generation
// at bind. Appends keep the generation and grow the rows — a delta round.
// A REGISTER replacing the table bumps the generation — the new table has
// no delta relationship to the old one, so the subscription ends cleanly
// with reason "table replaced". Client disconnect, session DELETE, an
// explicit deadline, and server drain all unwind through the same
// cancellation chain bounded queries use; drain additionally closes a
// dedicated channel so subscriptions (which never finish on their own)
// stop immediately instead of holding the drain for its full timeout.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/clock"
	"repro/internal/eddy"
	"repro/internal/policy"
	"repro/internal/sql"
	"repro/internal/tuple"
)

// subTable tracks one subscribed catalog table: the FROM positions it feeds
// (several for a self-join), the generation the subscription bound, and how
// many of its rows have been fed through the eddy.
type subTable struct {
	source    string
	positions []int
	gen       uint64
	seen      int
}

// runSubscription executes one standing query on the open response stream.
func (s *Server) runSubscription(w http.ResponseWriter, r *http.Request, req QueryRequest, st *sql.Stmt, canon string) {
	if !s.beginQuery() {
		s.met.reject()
		writeJSONError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	defer s.queries.Done()

	seed := req.Seed
	if seed == 0 {
		seed = s.cfg.Seed
	}
	polName := req.Policy
	if polName == "" {
		polName = s.cfg.Policy
	}
	shards := req.Shards
	if shards == 0 {
		shards = s.cfg.Shards
	}
	batch := req.Batch
	if batch == 0 {
		batch = s.cfg.BatchSize
	}
	switch req.Engine {
	case "", "concurrent", "sim":
	default:
		writeJSONError(w, http.StatusBadRequest, fmt.Errorf("unknown engine %q (want concurrent or sim)", req.Engine))
		return
	}
	switch {
	case req.Explain:
		writeJSONError(w, http.StatusBadRequest, errors.New("explain is not supported on subscriptions"))
		return
	case req.MemBudgetBytes != 0:
		writeJSONError(w, http.StatusBadRequest, errors.New("subscriptions run ungoverned; mem_budget_bytes is not supported"))
		return
	}

	// Cancellation chain: client disconnect → drain cancel → session close
	// → explicit deadline. Unlike bounded queries, no default deadline is
	// applied — a standing query's life is the client's to bound.
	qctx, cancel := context.WithCancelCause(r.Context())
	defer cancel(nil)
	stopBase := context.AfterFunc(s.baseCtx, func() { cancel(context.Cause(s.baseCtx)) })
	defer stopBase()
	if req.DeadlineMS > 0 {
		var cancelT context.CancelFunc
		qctx, cancelT = context.WithTimeoutCause(qctx, time.Duration(req.DeadlineMS)*time.Millisecond,
			fmt.Errorf("subscription deadline %dms exceeded", req.DeadlineMS))
		defer cancelT()
	}

	qid := s.qid.Add(1)
	if req.Session != "" {
		ss := s.attachQuery(req.Session, qid, cancel)
		if ss == nil {
			writeJSONError(w, http.StatusConflict, fmt.Errorf("session %q is closed", req.Session))
			return
		}
		defer s.detachQuery(ss, qid)
	}

	// A subscription holds its execution slot for its whole life:
	// MaxInFlight bounds queries and live subscribers together, so a
	// subscriber storm cannot oversubscribe the engine.
	admitStart := time.Now()
	if err := s.admit(qctx); err != nil {
		s.met.reject()
		code := http.StatusTooManyRequests
		if !errors.Is(err, errBusy) {
			code = http.StatusServiceUnavailable
		}
		writeJSONError(w, code, err)
		return
	}
	defer s.release()
	queueWait := time.Since(admitStart)
	startWall := time.Now()

	// Bind against a snapshot taken atomically with the generations: a
	// mutation after this point is either in the snapshot or wakes the loop.
	snap, gens := s.cat.SnapshotSubscribe()
	bound, err := sql.Bind(st, snap)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	if len(bound.OrderBy) > 0 || bound.Limit >= 0 {
		writeJSONError(w, http.StatusBadRequest, errors.New("subscriptions stream indefinitely; ORDER BY and LIMIT are not supported"))
		return
	}
	// One subTable per distinct source, covering every FROM position it
	// feeds. Index AMs are rejected: an index answers probes from the frozen
	// copy of the table it was built over, which would silently miss
	// inserted rows.
	var tabs []*subTable
	byName := make(map[string]*subTable)
	for i, ref := range st.From {
		src, _ := snap.Source(ref.Source)
		if len(src.Indexes) > 0 {
			writeJSONError(w, http.StatusBadRequest,
				fmt.Errorf("table %q has index access methods; subscriptions require scan-only tables", ref.Source))
			return
		}
		tb := byName[ref.Source]
		if tb == nil {
			tb = &subTable{source: ref.Source, gen: gens[ref.Source], seen: len(src.Data.Rows)}
			byName[ref.Source] = tb
			tabs = append(tabs, tb)
		}
		tb.positions = append(tb.positions, i)
	}

	pol, err := policy.ByName(polName, seed)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	ropts := eddy.Options{Policy: pol, Shards: shards}
	if len(req.Window) > 0 {
		// Window keys name tables as the query sees them (aliases included),
		// mapping onto FROM positions.
		wins := make([]int, len(bound.Q.Tables))
		byPos := make(map[string]int, len(bound.Q.Tables))
		for i, tb := range bound.Q.Tables {
			byPos[tb.Name] = i
		}
		for name, n := range req.Window {
			i, ok := byPos[name]
			if !ok {
				writeJSONError(w, http.StatusBadRequest, fmt.Errorf("window table %q is not in the FROM clause", name))
				return
			}
			if n <= 0 {
				writeJSONError(w, http.StatusBadRequest, fmt.Errorf("window for table %q must be positive, got %d", name, n))
				return
			}
			wins[i] = n
		}
		ropts.WindowFor = func(t int) int { return wins[t] }
	}
	router, err := eddy.NewRouter(bound.Q, ropts)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}

	s.subs.Add(1)
	defer s.subs.Add(-1)
	if lg := s.cfg.Logger; lg != nil {
		lg.Debug("subscription opened", slog.Uint64("query_id", qid),
			slog.String("session", req.Session), slog.String("sql", canon))
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	started := false
	buf := make([]byte, 0, 256)
	var stats execStats
	stats.QueueWait = queueWait
	var sinkErr error
	emit := func(t *tuple.Tuple, at clock.Time) {
		if sinkErr != nil {
			return
		}
		buf = appendRowJSON(buf[:0], t, bound.Output)
		if _, err := w.Write(buf); err != nil {
			sinkErr = err
			cancel(fmt.Errorf("client write failed: %w", err))
			return
		}
		started = true
		stats.Rows++
	}
	flush := func() {
		if flusher != nil && sinkErr == nil {
			flusher.Flush()
		}
	}
	// finish reports the subscription's end exactly once: into the metrics
	// and the completed ring via finishObserved, and to the client as a
	// final NDJSON line carrying the reason.
	finish := func(qs queryStatus, cause error, reason string) {
		stats.Elapsed = time.Since(startWall)
		s.finishObserved(qid, req, canon, qs, cause, &stats, startWall)
		if sinkErr != nil {
			return // the connection is gone; nothing to report to
		}
		if cause != nil {
			enc.Encode(map[string]string{"error": cause.Error()})
			return
		}
		fmt.Fprintf(w, `{"done":true,"id":%d,"rows":%d,"reason":%q}`+"\n", qid, stats.Rows, reason)
		flush()
	}

	// Round 0: the snapshot.
	var eng *eddy.Concurrent
	var sim *eddy.Sim
	var runErr error
	if req.Engine == "sim" {
		sim = eddy.NewSim(router)
		sim.Ctx = qctx
		sim.OnOutput = emit
		_, runErr = sim.Run()
	} else {
		eng = eddy.NewConcurrent(router, clock.NewReal(s.cfg.TimeCompression))
		eng.BatchSize = batch
		eng.Columnar = !s.cfg.RowBatches
		eng.OnOutput = emit
		_, runErr = eng.RunContext(qctx)
	}
	if runErr == nil && router.Stuck() > 0 {
		runErr = fmt.Errorf("internal error: %d tuples had no legal route", router.Stuck())
	}
	if runErr != nil {
		cause, qs := subscriptionFailure(qctx, runErr, sinkErr)
		if started || sinkErr != nil {
			finish(qs, cause, "")
		} else {
			stats.Elapsed = time.Since(startWall)
			s.finishObserved(qid, req, canon, qs, cause, &stats, startWall)
			writeJSONError(w, http.StatusInternalServerError, cause)
		}
		return
	}
	fmt.Fprintf(w, `{"snapshot":true,"id":%d,"rows":%d}`+"\n", qid, stats.Rows)
	started = true
	flush()

	// The standing loop: wake on catalog changes, feed new rows, go back to
	// sleep. The Changed channel is taken BEFORE the state is read, so a
	// mutation between read and select closes the already-held channel and
	// the loop re-reads — no change can be missed.
	for {
		changed := s.cat.Changed()
		var ts []*tuple.Tuple
		for _, tb := range tabs {
			src, gen, ok := s.cat.SourceGen(tb.source)
			if !ok || gen != tb.gen {
				finish(statusOK, nil, fmt.Sprintf("table %q replaced", tb.source))
				return
			}
			rows := src.Data.Rows
			for _, row := range rows[tb.seen:] {
				for _, pos := range tb.positions {
					ts = append(ts, tuple.NewSingleton(len(bound.Q.Tables), pos, row))
				}
			}
			tb.seen = len(rows)
		}
		if len(ts) > 0 {
			// Delta round: injected singletons take fresh timestamps from
			// the router's persistent counter, so they join against every
			// strictly-older build and nothing else.
			if sim != nil {
				_, runErr = sim.RunDelta(ts)
			} else {
				eng.Reset()
				eng.OnOutput = emit
				_, runErr = eng.RunDelta(qctx, ts)
			}
			if runErr == nil && router.Stuck() > 0 {
				runErr = fmt.Errorf("internal error: %d tuples had no legal route", router.Stuck())
			}
			if runErr != nil {
				cause, qs := subscriptionFailure(qctx, runErr, sinkErr)
				finish(qs, cause, "")
				return
			}
			flush()
			continue // appends may have landed during the round
		}
		select {
		case <-qctx.Done():
			finish(statusCanceled, context.Cause(qctx), "")
			return
		case <-s.drainCh:
			finish(statusOK, nil, "draining")
			return
		case <-changed:
		}
	}
}

// subscriptionFailure classifies a failed round for the metrics and picks
// the cause the client should hear: the context cause when the run was
// canceled (deadline, disconnect, drain, session close), the engine error
// otherwise.
func subscriptionFailure(qctx context.Context, runErr, sinkErr error) (error, queryStatus) {
	if qctx.Err() != nil {
		cause := context.Cause(qctx)
		if cause == nil {
			cause = runErr
		}
		return cause, statusCanceled
	}
	if sinkErr != nil {
		return sinkErr, statusCanceled
	}
	return runErr, statusError
}
