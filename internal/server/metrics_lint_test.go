// metrics_lint_test.go parses the /metrics exposition output the way a
// Prometheus scraper would and enforces the format contract for every
// family: HELP and TYPE precede samples, counter names end in _total,
// histograms expose cumulative non-decreasing buckets ending at +Inf with
// matching _sum and _count series.
package server

import (
	"bufio"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

type metricFamily struct {
	name    string
	help    bool
	typ     string
	samples []metricSample
}

type metricSample struct {
	name   string // full series name, e.g. foo_bucket
	labels map[string]string
	value  float64
}

// parseExposition parses the Prometheus text format, failing the test on
// any syntactic violation: samples before their family's HELP/TYPE, unknown
// series suffixes, malformed label sets or values.
func parseExposition(t *testing.T, body string) map[string]*metricFamily {
	t.Helper()
	fams := map[string]*metricFamily{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Errorf("HELP line without text: %q", line)
				continue
			}
			f := fams[parts[0]]
			if f == nil {
				f = &metricFamily{name: parts[0]}
				fams[parts[0]] = f
			}
			if len(f.samples) > 0 {
				t.Errorf("family %s: HELP appears after its samples", parts[0])
			}
			f.help = true
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Errorf("malformed TYPE line: %q", line)
				continue
			}
			f := fams[parts[0]]
			if f == nil {
				f = &metricFamily{name: parts[0]}
				fams[parts[0]] = f
			}
			if len(f.samples) > 0 {
				t.Errorf("family %s: TYPE appears after its samples", parts[0])
			}
			f.typ = parts[1]
		case strings.HasPrefix(line, "#"):
			// comments are legal
		default:
			name, labels, value, err := parseSample(line)
			if err != nil {
				t.Errorf("bad sample line %q: %v", line, err)
				continue
			}
			fam := familyOf(name, fams)
			if fam == nil {
				t.Errorf("sample %s has no preceding HELP/TYPE family", name)
				continue
			}
			fam.samples = append(fam.samples, metricSample{name: name, labels: labels, value: value})
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return fams
}

// familyOf maps a series name to its family: exact for counters/gauges,
// suffix-stripped for histogram series.
func familyOf(name string, fams map[string]*metricFamily) *metricFamily {
	if f, ok := fams[name]; ok {
		return f
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if f, ok := fams[base]; ok && f.typ == "histogram" {
				return f
			}
		}
	}
	return nil
}

func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i >= 0 && rest[i] == '{' {
		name = rest[:i]
		end := strings.LastIndex(rest, "}")
		if end < i {
			return "", nil, 0, fmt.Errorf("unterminated label set")
		}
		labels = map[string]string{}
		for _, pair := range splitLabels(rest[i+1 : end]) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				return "", nil, 0, fmt.Errorf("bad label %q", pair)
			}
			uq, err := strconv.Unquote(v)
			if err != nil {
				return "", nil, 0, fmt.Errorf("label %s value %s not quoted: %v", k, v, err)
			}
			labels[k] = uq
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return "", nil, 0, fmt.Errorf("want 'name value'")
		}
		name, rest = fields[0], fields[1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value: %v", err)
	}
	return name, labels, v, nil
}

// splitLabels splits a,b,c at commas outside quoted values.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func TestMetricsExpositionLint(t *testing.T) {
	_, ts, client := newTestServer(t, memCatalog(t, time.Microsecond), Config{})
	// Populate the histograms and counters with real traffic first.
	for i := 0; i < 3; i++ {
		if res := postQuery(t, client, ts.URL, map[string]any{"sql": threeWayJoin}); res.status != http.StatusOK {
			t.Fatalf("query %d: status=%d", i, res.status)
		}
	}
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := new(strings.Builder)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		body.WriteString(sc.Text())
		body.WriteByte('\n')
	}
	resp.Body.Close()

	fams := parseExposition(t, body.String())
	if len(fams) == 0 {
		t.Fatal("no metric families parsed")
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		if !f.help || f.typ == "" {
			t.Errorf("family %s missing HELP or TYPE", name)
			continue
		}
		switch f.typ {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				t.Errorf("counter %s does not end in _total", name)
			}
			for _, s := range f.samples {
				if s.value < 0 {
					t.Errorf("counter %s is negative: %v", s.name, s.value)
				}
			}
		case "gauge":
			// no naming constraint
		case "histogram":
			lintHistogramFamily(t, f)
		default:
			t.Errorf("family %s has unknown type %q", name, f.typ)
		}
		if len(f.samples) == 0 {
			t.Errorf("family %s declared but has no samples", name)
		}
	}

	// The histograms the tentpole added must exist and have seen the
	// queries above.
	for _, want := range []string{"stemsd_query_duration_seconds", "stemsd_query_queue_seconds", "stemsd_query_rows"} {
		f := fams[want]
		if f == nil || f.typ != "histogram" {
			t.Errorf("missing histogram family %s", want)
			continue
		}
		for _, s := range f.samples {
			if s.name == want+"_count" && s.value != 3 {
				t.Errorf("%s_count = %v, want 3", want, s.value)
			}
		}
	}
	// The old sum-only counter must be gone.
	if _, ok := fams["stemsd_query_seconds_total"]; ok {
		t.Error("stemsd_query_seconds_total still exposed; histograms replaced it")
	}
}

// lintHistogramFamily checks the cumulative-bucket contract: le values
// ascend and end at +Inf, counts never decrease, the +Inf bucket equals
// _count, and _sum exists.
func lintHistogramFamily(t *testing.T, f *metricFamily) {
	t.Helper()
	var buckets []metricSample
	var sum, count *metricSample
	for i, s := range f.samples {
		switch s.name {
		case f.name + "_bucket":
			buckets = append(buckets, s)
		case f.name + "_sum":
			sum = &f.samples[i]
		case f.name + "_count":
			count = &f.samples[i]
		default:
			t.Errorf("histogram %s has stray series %s", f.name, s.name)
		}
	}
	if len(buckets) == 0 || sum == nil || count == nil {
		t.Errorf("histogram %s missing buckets/_sum/_count", f.name)
		return
	}
	prevLE := math.Inf(-1)
	prevCount := -1.0
	for _, b := range buckets {
		leStr, ok := b.labels["le"]
		if !ok {
			t.Errorf("histogram %s bucket without le label", f.name)
			return
		}
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			t.Errorf("histogram %s: bad le %q", f.name, leStr)
			return
		}
		if le <= prevLE {
			t.Errorf("histogram %s: le %v not ascending after %v", f.name, le, prevLE)
		}
		if b.value < prevCount {
			t.Errorf("histogram %s: bucket le=%q count %v below previous %v (not cumulative)", f.name, leStr, b.value, prevCount)
		}
		prevLE, prevCount = le, b.value
	}
	last := buckets[len(buckets)-1]
	if last.labels["le"] != "+Inf" {
		t.Errorf("histogram %s: last bucket le=%q, want +Inf", f.name, last.labels["le"])
	}
	if last.value != count.value {
		t.Errorf("histogram %s: +Inf bucket %v != _count %v", f.name, last.value, count.value)
	}
}
