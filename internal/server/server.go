// Package server is the long-lived serving layer over the SteM/eddy engine:
// where the rest of the repository executes one query and exits, this
// package keeps a process alive with a shared mutable catalog of registered
// tables, accepts queries over HTTP/JSON, and executes each on its own
// concurrent engine under admission control (bounded in-flight queries and
// queue), per-query deadlines, session-scoped cancellation, and a graceful
// drain on shutdown. Results stream back as NDJSON as the eddy emits them —
// the paper's online, adaptive processing model surfaced as a service.
//
// Cancellation is threaded all the way down: a client disconnect, a
// deadline, a DELETE on the session, or a server drain cancels the query's
// context, which stops the eddy's routing loop and unwinds every engine
// goroutine (see eddy.Concurrent.RunContext).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sql"
	"repro/internal/stem"
)

// Config tunes the server. Zero values take the documented defaults.
type Config struct {
	// MaxInFlight bounds concurrently executing queries (default 8).
	MaxInFlight int
	// QueueDepth bounds queries waiting for an execution slot beyond
	// MaxInFlight; an arrival beyond the queue is rejected with 429.
	// 0 disables queueing (fail fast at MaxInFlight); negative takes the
	// default of 16.
	QueueDepth int
	// DefaultDeadline applies to queries that name none (default 30s).
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines (default 5m).
	MaxDeadline time.Duration
	// Policy is the default routing policy: "benefitcost" (default),
	// "fixed", or "lottery".
	Policy string
	// Seed feeds randomized policies (default 1).
	Seed int64
	// BatchSize is the concurrent engine's default eddy batch size.
	BatchSize int
	// RowBatches disables the concurrent engine's columnar fast path,
	// forcing row-tuple batches (results are identical; this is a
	// representation toggle for comparison and incident response).
	RowBatches bool
	// Shards is the default SteM shard count.
	Shards int
	// TimeCompression scales the concurrent engine's clock (default 0.001:
	// one modeled second per wall millisecond).
	TimeCompression float64
	// MemBudgetBytes, when >0, bounds each query's resident SteM state at
	// admission: every admitted query runs under a byte governor with this
	// budget, spilling the excess to disk and replaying it (out-of-core
	// joins). Combined with MaxInFlight it bounds the server's total SteM
	// footprint at MaxInFlight × MemBudgetBytes. Clients may request a
	// smaller budget per query; requests above this cap are capped. 0
	// disables governance entirely — client budget requests are then
	// ignored, so spill I/O is strictly an operator opt-in.
	MemBudgetBytes int64
	// SpillDir is where per-query spill segments live (each query gets a
	// private os.Root-confined subdirectory, removed when the query ends);
	// empty defaults to os.TempDir().
	SpillDir string
	// PlanCacheSize bounds the prepared-plan/router cache (LRU-evicted).
	// 0 takes the default of 128; negative disables caching, so every
	// statement re-binds and rebuilds its engine (the pre-cache behavior).
	PlanCacheSize int
	// SharedStems enables catalog-owned shared SteMs: the first query that
	// joins through a registered table builds its SteM state once, and
	// concurrent or later queries attach probe-only handles instead of
	// rebuilding (see sharedstems.go for the lifecycle rules). Off by
	// default — attachment changes memory ownership from per-query to
	// server-resident, which is an operator decision.
	SharedStems bool
	// SharedStemBytes, when >0, caps the total footprint of shared SteM
	// state; least-recently-attached unreferenced entries are evicted past
	// the cap. 0 is unlimited.
	SharedStemBytes int64
	// SharedStemSpillBytes, when >0, bounds each shared build's resident
	// footprint; rows beyond it live in sealed spill segments under
	// SpillDir and are read back at probe time. 0 keeps builds resident.
	SharedStemSpillBytes int64
	// Logger receives structured per-query logs (admitted, finished, slow
	// queries). nil disables logging entirely — the default, so the serving
	// hot path pays nothing unless an operator opts in.
	Logger *slog.Logger
	// PprofLabels labels each query's goroutines with its query ID
	// (pprof.Do), so CPU profiles attribute samples to queries. Off by
	// default: the label set costs allocations per query.
	PprofLabels bool
	// SlowQuery logs queries whose execution time meets or exceeds it at
	// Warn level (requires Logger); 0 disables the threshold.
	SlowQuery time.Duration
	// CompletedCap bounds the completed-queries ring served by GET /queries
	// (default 256; negative disables the ring).
	CompletedCap int
	// Version is reported by stemsd_build_info; empty defaults to "dev".
	Version string
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 8
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 16
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline == 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.Policy == "" {
		c.Policy = "benefitcost"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TimeCompression == 0 {
		c.TimeCompression = 0.001
	}
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 128
	}
	if c.CompletedCap == 0 {
		c.CompletedCap = 256
	}
	if c.Version == "" {
		c.Version = "dev"
	}
	return c
}

// errBusy rejects an arrival past the admission queue.
var errBusy = errors.New("server at capacity")

// errDraining rejects work while the server shuts down.
var errDraining = errors.New("server draining")

// session groups queries under one client-visible ID so they can be
// enumerated and canceled together. Sessions created explicitly with
// POST /session persist until DELETE; sessions auto-created by naming one
// in a query are reaped as soon as their last query detaches, so a client
// minting a fresh session ID per query cannot grow the session map without
// bound.
type session struct {
	id       string
	created  time.Time
	explicit bool

	mu     sync.Mutex
	active map[uint64]context.CancelCauseFunc
	total  uint64
	closed bool
}

// close cancels every active query with the given cause.
func (ss *session) close(cause error) {
	ss.mu.Lock()
	ss.closed = true
	cancels := make([]context.CancelCauseFunc, 0, len(ss.active))
	for _, c := range ss.active {
		cancels = append(cancels, c)
	}
	ss.mu.Unlock()
	for _, c := range cancels {
		c(cause)
	}
}

// Server executes SQL statements against a shared catalog for many
// concurrent clients. Create with New, expose via Handler, stop with
// Shutdown.
type Server struct {
	cat *Catalog
	cfg Config
	met *metrics
	mux *http.ServeMux

	baseCtx    context.Context
	cancelBase context.CancelCauseFunc
	draining   atomic.Bool
	// drainCh is closed the moment Shutdown begins. Bounded queries keep
	// running through the drain window, but standing subscriptions have no
	// natural end — they select on this channel and wind down immediately so
	// a drain never waits its full timeout on a subscriber.
	drainCh chan struct{}
	// drainMu orders beginQuery against Shutdown: queries register with the
	// WaitGroup under the read lock, Shutdown flips draining under the write
	// lock, so no query can slip in after the drain barrier is up.
	drainMu sync.RWMutex
	queries sync.WaitGroup

	sem    chan struct{}
	queued atomic.Int64
	qid    atomic.Uint64
	// subs gauges live subscription streams for /metrics.
	subs atomic.Int64

	smu      sync.Mutex
	sessions map[string]*session
	sid      atomic.Uint64

	// govs tracks the live per-query spill governors, so /metrics can gauge
	// resident and spilled SteM bytes across the whole server.
	govMu sync.Mutex
	govs  map[*stem.Governor]struct{}

	// plans is the bounded plan/router cache; nil when disabled by config.
	plans *planCache
	// shared is the catalog-owned shared-SteM manager; nil when disabled.
	shared *sharedStems
	// prepared is the named-statement registry filled by PREPARE; EXECUTE
	// resolves names here before hitting the plan cache.
	pmu      sync.Mutex
	prepared map[string]*preparedStmt

	// completed is the finished-query ring behind GET /queries; nil when
	// disabled by config.
	completed *completedRing
}

// preparedStmt is one PREPARE registration: the parsed SELECT plus its
// canonical text, which keys the plan cache.
type preparedStmt struct {
	name    string
	stmt    *sql.Stmt
	canon   string
	created time.Time
}

// New builds a server over the catalog.
func New(cat *Catalog, cfg Config) *Server {
	cfg = cfg.withDefaults()
	baseCtx, cancelBase := context.WithCancelCause(context.Background())
	s := &Server{
		cat:        cat,
		cfg:        cfg,
		met:        newMetrics(),
		baseCtx:    baseCtx,
		cancelBase: cancelBase,
		drainCh:    make(chan struct{}),
		sem:        make(chan struct{}, cfg.MaxInFlight),
		sessions:   make(map[string]*session),
		govs:       make(map[*stem.Governor]struct{}),
		prepared:   make(map[string]*preparedStmt),
	}
	if cfg.PlanCacheSize > 0 {
		s.plans = newPlanCache(cfg.PlanCacheSize)
	}
	if cfg.SharedStems {
		s.shared = newSharedStems(cfg.SharedStemBytes, cfg.SharedStemSpillBytes, cfg.SpillDir)
	}
	if cfg.CompletedCap > 0 {
		s.completed = newCompletedRing(cfg.CompletedCap)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /insert", s.handleInsert)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /queries", s.handleQueries)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /tables", s.handleTables)
	mux.HandleFunc("GET /plans", s.handlePlans)
	mux.HandleFunc("POST /session", s.handleSessionCreate)
	mux.HandleFunc("GET /sessions", s.handleSessionList)
	mux.HandleFunc("DELETE /session/{id}", s.handleSessionDelete)
	s.mux = mux
	return s
}

// Handler returns the HTTP handler serving the query API.
func (s *Server) Handler() http.Handler { return s.mux }

// Catalog returns the server's shared catalog.
func (s *Server) Catalog() *Catalog { return s.cat }

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains the server: new queries are rejected immediately,
// in-flight queries get up to drain to finish, and whatever remains is
// canceled (the cancellation reaches the eddy, which stops routing and
// unwinds its goroutines). Shutdown returns once every query has unwound.
// The HTTP listener is the caller's to close (http.Server.Shutdown waits
// for the same handlers this waits for).
func (s *Server) Shutdown(drain time.Duration) {
	s.drainMu.Lock()
	if !s.draining.Swap(true) {
		close(s.drainCh)
	}
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.queries.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(drain):
		s.cancelBase(fmt.Errorf("server shutting down (drain %v elapsed)", drain))
		<-done
	}
	s.cancelBase(errDraining) // no-op if already canceled
	s.smu.Lock()
	for id, ss := range s.sessions {
		delete(s.sessions, id)
		ss.close(errDraining)
	}
	s.smu.Unlock()
	// Every query has unwound and released its attachments, so this tears
	// down all shared SteM state (including spill segments on disk).
	if s.shared != nil {
		s.shared.closeAll()
	}
}

// admit acquires an execution slot, waiting in the bounded queue if the
// server is saturated. It fails fast with errBusy when the queue is full.
func (s *Server) admit(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	if int(s.queued.Add(1)) > s.cfg.QueueDepth {
		s.queued.Add(-1)
		return errBusy
	}
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

func (s *Server) release() { <-s.sem }

// sessionFor returns the named session, creating it on first use so
// clients can adopt session IDs without a prior POST /session. explicit
// marks POST /session creations, which persist until DELETE.
// sessionLocked returns the named session, creating it on first use; the
// caller holds smu.
func (s *Server) sessionLocked(id string) *session {
	ss, ok := s.sessions[id]
	if !ok {
		ss = &session{id: id, created: time.Now(), active: make(map[uint64]context.CancelCauseFunc)}
		s.sessions[id] = ss
	}
	return ss
}

func (s *Server) sessionFor(id string, explicit bool) *session {
	s.smu.Lock()
	defer s.smu.Unlock()
	ss := s.sessionLocked(id)
	if explicit {
		ss.explicit = true
	}
	return ss
}

// attachQuery registers a running query's cancel under the named session
// (created on first use); it returns nil if the session was concurrently
// closed. Attach and detach both serialize under smu, so a reap can never
// race an attach into an orphaned session.
func (s *Server) attachQuery(id string, qid uint64, cancel context.CancelCauseFunc) *session {
	s.smu.Lock()
	defer s.smu.Unlock()
	ss := s.sessionLocked(id)
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return nil
	}
	ss.active[qid] = cancel
	ss.total++
	return ss
}

// detachQuery removes a finished query from its session and reaps the
// session when it was auto-created and is now idle.
func (s *Server) detachQuery(ss *session, qid uint64) {
	s.smu.Lock()
	defer s.smu.Unlock()
	ss.mu.Lock()
	delete(ss.active, qid)
	idle := len(ss.active) == 0
	ss.mu.Unlock()
	if idle && !ss.explicit && s.sessions[ss.id] == ss {
		delete(s.sessions, ss.id)
	}
}

func (s *Server) sessionCount() int {
	s.smu.Lock()
	defer s.smu.Unlock()
	return len(s.sessions)
}

// trackGovernor registers a query's spill governor for the byte gauges and
// returns the matching untrack func.
func (s *Server) trackGovernor(g *stem.Governor) func() {
	s.govMu.Lock()
	s.govs[g] = struct{}{}
	s.govMu.Unlock()
	return func() {
		s.govMu.Lock()
		delete(s.govs, g)
		s.govMu.Unlock()
	}
}

// spillBytes sums resident and spilled SteM footprint over live governors.
func (s *Server) spillBytes() (resident, spilled int64) {
	s.govMu.Lock()
	defer s.govMu.Unlock()
	for g := range s.govs {
		r, sp := g.BytesStats()
		resident += r
		spilled += sp
	}
	return resident, spilled
}

func (s *Server) gauges() gauges {
	res, sp := s.spillBytes()
	g := gauges{
		version:       s.cfg.Version,
		inflight:      int64(len(s.sem)),
		queued:        s.queued.Load(),
		sessions:      s.sessionCount(),
		tables:        s.cat.Len(),
		prepared:      s.preparedCount(),
		subscribers:   s.subs.Load(),
		draining:      s.draining.Load(),
		spillResident: res,
		spillSpilled:  sp,
	}
	if s.plans != nil {
		g.planEntries = s.plans.size()
		g.planHits, g.planMisses, g.planInvalidations, g.planEvictions = s.plans.counters()
	}
	if s.shared != nil {
		g.sharedBuilds, g.sharedAttached, g.sharedDetached, g.sharedEvictions = s.shared.counts()
		g.sharedResident, g.sharedSpilled = s.shared.bytes()
		g.sharedEntries = s.shared.entryCount()
	}
	return g
}

// QueryRequest is the POST /query body.
type QueryRequest struct {
	// SQL is the statement: a SELECT, a REGISTER TABLE, a PREPARE, or an
	// EXECUTE.
	SQL string `json:"sql"`
	// Session optionally groups this query under a session ID for
	// collective cancellation; unknown IDs are created on first use.
	Session string `json:"session,omitempty"`
	// DeadlineMS bounds the query's wall time in milliseconds; 0 takes the
	// server default, and values above the server maximum are capped.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Engine picks the executor: "concurrent" (default) or "sim".
	Engine string `json:"engine,omitempty"`
	// Policy overrides the server's default routing policy.
	Policy string `json:"policy,omitempty"`
	// Seed overrides the randomized-policy seed.
	Seed int64 `json:"seed,omitempty"`
	// Batch overrides the concurrent engine's eddy batch size.
	Batch int `json:"batch,omitempty"`
	// Shards overrides the SteM shard count.
	Shards int `json:"shards,omitempty"`
	// MemBudgetBytes tightens this query's resident SteM byte budget; rows
	// beyond it spill to disk and replay (out-of-core join). 0 takes the
	// server default; values above the server cap are capped, and the knob
	// is ignored entirely when the server runs without a budget — clients
	// cannot switch disk spill on.
	MemBudgetBytes int64 `json:"mem_budget_bytes,omitempty"`
	// Explain streams the query normally, then appends one NDJSON trace
	// record after the done trailer: per-module visits/outputs/selectivity
	// and service time, plus the routing policy's learned state — the
	// EXPLAIN ANALYZE of a planless engine.
	Explain bool `json:"explain,omitempty"`
	// Subscribe turns a SELECT into a standing query: after the results over
	// the tables' current rows and a {"snapshot":true,...} marker, the
	// response stays open and every INSERT into a FROM table runs a delta
	// round whose new join results stream as further rows. The subscription
	// holds its execution slot for its whole life and ends when the client
	// disconnects, a REGISTER replaces a subscribed table, the server
	// drains, or an explicit deadline fires; the final line reports the
	// reason. Subscriptions reject ORDER BY/LIMIT (they never complete, so
	// there is nothing to arrange), Explain, memory budgets, and tables
	// with index access methods (index lookups would answer from a frozen
	// copy of the table).
	Subscribe bool `json:"subscribe,omitempty"`
	// Window bounds standing-query SteM state per FROM table (keyed by the
	// name the query uses — the alias when one is declared): each table's
	// SteM keeps only the N most recent rows, older ones are evicted, and
	// delta results reflect the window contents at each insert's arrival —
	// joins against evicted rows are intentionally not produced. Only valid
	// with Subscribe: a bounded query's results would silently depend on
	// scan interleaving.
	Window map[string]int `json:"window,omitempty"`
}

func writeJSONError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// handleHealthz is liveness: it answers 200 as long as the process serves
// HTTP, draining or not, so orchestrators don't kill a pod that is cleanly
// finishing its queries. Routability is /readyz's question.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	g := s.gauges()
	status := "ok"
	if g.draining {
		status = "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":   status,
		"tables":   s.cat.Tables(),
		"inflight": g.inflight,
		"queued":   g.queued,
		"sessions": g.sessions,
	})
}

// handleReadyz is readiness: 503 with {"draining": true} the moment
// Shutdown begins, so load balancers stop routing before the drain
// completes and in-flight queries finish against a quiet server.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"ready": false, "draining": true})
		return
	}
	json.NewEncoder(w).Encode(map[string]any{"ready": true, "draining": false})
}

// handleQueries serves the completed-queries ring, newest first; min_ms
// filters to queries whose execution time met the threshold.
func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	if s.completed == nil {
		writeJSONError(w, http.StatusNotFound, errors.New("completed-queries ring disabled (CompletedCap < 0)"))
		return
	}
	var minDur time.Duration
	if v := r.URL.Query().Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			writeJSONError(w, http.StatusBadRequest, fmt.Errorf("bad min_ms %q", v))
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"queries": s.completed.list(minDur)})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.write(w, s.gauges())
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"tables": s.cat.Tables()})
}

// addPrepared registers a named statement; duplicate names are an error
// (re-preparing under a new name is cheap, silently replacing a plan a
// concurrent client is executing by name is a footgun).
func (s *Server) addPrepared(p *preparedStmt) error {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if _, ok := s.prepared[p.name]; ok {
		return fmt.Errorf("statement %q already prepared", p.name)
	}
	s.prepared[p.name] = p
	return nil
}

// lookupPrepared resolves an EXECUTE name.
func (s *Server) lookupPrepared(name string) (*preparedStmt, bool) {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	p, ok := s.prepared[name]
	return p, ok
}

func (s *Server) preparedCount() int {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	return len(s.prepared)
}

// handlePlans lists the named prepared statements and the plan cache's
// entries in most-recently-used order.
func (s *Server) handlePlans(w http.ResponseWriter, r *http.Request) {
	type prepInfo struct {
		Name    string    `json:"name"`
		SQL     string    `json:"sql"`
		Created time.Time `json:"created"`
	}
	s.pmu.Lock()
	preps := make([]prepInfo, 0, len(s.prepared))
	for _, p := range s.prepared {
		preps = append(preps, prepInfo{Name: p.name, SQL: p.canon, Created: p.created})
	}
	s.pmu.Unlock()
	sort.Slice(preps, func(i, j int) bool { return preps[i].Name < preps[j].Name })
	plans := []planInfo{}
	if s.plans != nil {
		plans = s.plans.entries()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"prepared": preps, "plans": plans})
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSONError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	id := fmt.Sprintf("s%d", s.sid.Add(1))
	s.sessionFor(id, true)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"id": id})
}

func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	s.smu.Lock()
	type sessInfo struct {
		ID      string    `json:"id"`
		Active  int       `json:"active_queries"`
		Total   uint64    `json:"queries_total"`
		Created time.Time `json:"created"`
	}
	out := make([]sessInfo, 0, len(s.sessions))
	for _, ss := range s.sessions {
		ss.mu.Lock()
		out = append(out, sessInfo{ID: ss.id, Active: len(ss.active), Total: ss.total, Created: ss.created})
		ss.mu.Unlock()
	}
	s.smu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"sessions": out})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.smu.Lock()
	ss, ok := s.sessions[id]
	delete(s.sessions, id)
	s.smu.Unlock()
	if !ok {
		writeJSONError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", id))
		return
	}
	ss.close(fmt.Errorf("session %q closed", id))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"closed": id})
}
