// hist.go is an O(1) log-bucketed histogram for the metrics endpoint. The
// serving layer must never accumulate per-query history (metrics.go's rule),
// so latency distributions are held as fixed exponential buckets — observe
// is a bucket index bump, memory is a few dozen words per family, and the
// render is the Prometheus histogram convention (cumulative _bucket series
// ending in +Inf, plus _sum and _count).
package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// histogram counts observations into fixed exponential buckets. It is not
// internally synchronized — the owning metrics struct serializes access
// under its mutex.
type histogram struct {
	// bounds are the buckets' inclusive upper bounds, strictly increasing;
	// an implicit +Inf bucket follows the last.
	bounds []float64
	// counts holds one slot per bound plus the +Inf overflow slot.
	counts []uint64
	sum    float64
	count  uint64
}

// expBuckets builds n strictly increasing bounds starting at start, each
// factor times the previous — the log spacing that keeps wide dynamic ranges
// (100µs queue waits to minutes-long scans) in O(n) memory.
func expBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// observe records one value.
func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// write renders the histogram as a Prometheus family: HELP/TYPE, cumulative
// le-labeled buckets ending at +Inf, then _sum and _count.
func (h *histogram) write(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count)
}
