package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/sql"
	"repro/internal/tuple"
	"repro/internal/value"
)

func intRow(vs ...int64) tuple.Row {
	r := make(tuple.Row, len(vs))
	for i, v := range vs {
		r[i] = value.NewInt(v)
	}
	return r
}

// seqRows returns n rows (i, i%k) for join fan-out control.
func seqRows(n int, k int64) []tuple.Row {
	out := make([]tuple.Row, n)
	for i := range out {
		out[i] = intRow(int64(i), int64(i)%k)
	}
	return out
}

// memCatalog builds an in-memory catalog with three joinable tables:
// r(key,a), s(x,y), u(p,q); r.a = s.x and s.y = u.p give a 3-way join with
// a known result count.
func memCatalog(t testing.TB, scanInterval time.Duration) *Catalog {
	t.Helper()
	cat := NewCatalog(scanInterval, "")
	scan := source.ScanSpec{InterArrival: clock.Duration(scanInterval)}
	add := func(name string, cols []schema.Column, rows []tuple.Row) {
		sch, err := schema.NewTable(name, cols...)
		if err != nil {
			t.Fatal(err)
		}
		data, err := source.NewTable(sch, rows)
		if err != nil {
			t.Fatal(err)
		}
		sc := scan
		cat.Put(name, sql.Source{Data: data, Scan: &sc})
	}
	add("r", []schema.Column{schema.IntCol("key"), schema.IntCol("a")},
		[]tuple.Row{intRow(1, 10), intRow(2, 20), intRow(3, 10)})
	add("s", []schema.Column{schema.IntCol("x"), schema.IntCol("y")},
		[]tuple.Row{intRow(10, 100), intRow(20, 200)})
	add("u", []schema.Column{schema.IntCol("p"), schema.IntCol("q")},
		[]tuple.Row{intRow(100, 7), intRow(200, 8), intRow(100, 9)})
	return cat
}

// threeWayJoin is the canonical test query; over memCatalog it yields
// r{1,3}×s{10}×u{100,100} + r{2}×s{20}×u{200} = 2*2 + 1 = 5 rows.
const threeWayJoin = "SELECT r.key, u.q FROM r, s, u WHERE r.a = s.x AND s.y = u.p"

type ndjsonResult struct {
	status  int
	rows    []map[string]any
	trailer map[string]any
	trace   map[string]any
	errLine string
}

// postQuery POSTs a query and decodes the NDJSON response. It reports
// failures with Errorf (not Fatal) so it is safe to call from spawned
// goroutines; on transport errors the zero-status result fails the
// caller's assertions.
func postQuery(t testing.TB, client *http.Client, url string, body any) ndjsonResult {
	t.Helper()
	var res ndjsonResult
	payload, err := json.Marshal(body)
	if err != nil {
		t.Errorf("marshal request: %v", err)
		return res
	}
	resp, err := client.Post(url+"/query", "application/json", strings.NewReader(string(payload)))
	if err != nil {
		t.Errorf("POST /query: %v", err)
		return res
	}
	defer resp.Body.Close()
	res.status = resp.StatusCode
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(strings.TrimSpace(string(line))) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(line, &obj); err != nil {
			t.Errorf("bad NDJSON line %q: %v", line, err)
			return res
		}
		switch {
		case obj["row"] != nil:
			res.rows = append(res.rows, obj["row"].(map[string]any))
		case obj["done"] == true || obj["registered"] != nil:
			res.trailer = obj
		case obj["trace"] != nil:
			res.trace = obj["trace"].(map[string]any)
		case obj["error"] != nil:
			res.errLine = obj["error"].(string)
		}
	}
	if err := sc.Err(); err != nil {
		t.Errorf("reading response: %v", err)
	}
	return res
}

func newTestServer(t testing.TB, cat *Catalog, cfg Config) (*Server, *httptest.Server, *http.Client) {
	t.Helper()
	srv := New(cat, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client := ts.Client()
	t.Cleanup(client.CloseIdleConnections)
	return srv, ts, client
}

// waitForGoroutines polls until the goroutine count falls back to the
// baseline, dumping stacks on timeout — the zero-leak assertion for engine
// cancellation and server drain.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			sz := runtime.Stack(buf, true)
			t.Fatalf("leaked goroutines: %d running, baseline %d\n%s", n, baseline, buf[:sz])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestQueryStreamsRows(t *testing.T) {
	_, ts, client := newTestServer(t, memCatalog(t, time.Microsecond), Config{})
	res := postQuery(t, client, ts.URL, map[string]any{"sql": threeWayJoin})
	if res.status != http.StatusOK {
		t.Fatalf("status = %d", res.status)
	}
	if len(res.rows) != 5 {
		t.Errorf("rows = %d, want 5", len(res.rows))
	}
	if res.trailer == nil || res.trailer["rows"] != float64(5) {
		t.Errorf("trailer = %v", res.trailer)
	}
	if res.trailer["routing_steps"] == float64(0) {
		t.Errorf("trailer reports no routing steps: %v", res.trailer)
	}
	// Spot-check one row's shape: projected labels carry alias.column names.
	if _, ok := res.rows[0]["r.key"]; !ok {
		t.Errorf("row missing r.key: %v", res.rows[0])
	}
}

func TestOrderByLimitBuffered(t *testing.T) {
	_, ts, client := newTestServer(t, memCatalog(t, time.Microsecond), Config{})
	res := postQuery(t, client, ts.URL, map[string]any{
		"sql": "SELECT r.key FROM r, s WHERE r.a = s.x ORDER BY r.key DESC LIMIT 2",
	})
	if res.status != http.StatusOK || len(res.rows) != 2 {
		t.Fatalf("status=%d rows=%v", res.status, res.rows)
	}
	if res.rows[0]["r.key"] != float64(3) || res.rows[1]["r.key"] != float64(2) {
		t.Errorf("order wrong: %v", res.rows)
	}
}

func TestParseAndBindErrorsAre400(t *testing.T) {
	_, ts, client := newTestServer(t, memCatalog(t, time.Microsecond), Config{})
	for _, sqlText := range []string{
		"SELEC nope",
		"SELECT * FROM nosuch",
		"SELECT * FROM r WHERE a = 'oops",
	} {
		res := postQuery(t, client, ts.URL, map[string]any{"sql": sqlText})
		if res.status != http.StatusBadRequest {
			t.Errorf("%q: status = %d, want 400", sqlText, res.status)
		}
	}
}

// TestRegisterTableAtRuntime registers CSVs through the query endpoint and
// immediately joins across them — the shared catalog is mutable while the
// server runs.
func TestRegisterTableAtRuntime(t *testing.T) {
	dir := t.TempDir()
	mustWrite := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mustWrite("people.csv", "id,name\n1,ada\n2,bob\n3,cyd\n")
	mustWrite("orders.csv", "id,person,total\n10,1,100\n11,1,150\n12,3,50\n")

	cat := NewCatalog(time.Microsecond, dir)
	_, ts, client := newTestServer(t, cat, Config{})

	reg := postQuery(t, client, ts.URL, map[string]any{
		"sql": "REGISTER TABLE people FROM 'people.csv' INDEX id LATENCY 1ms",
	})
	if reg.status != http.StatusOK || reg.trailer["registered"] != "people" || reg.trailer["rows"] != float64(3) {
		t.Fatalf("register people: status=%d trailer=%v", reg.status, reg.trailer)
	}
	reg = postQuery(t, client, ts.URL, map[string]any{
		"sql": "REGISTER TABLE orders FROM 'orders.csv'",
	})
	if reg.status != http.StatusOK {
		t.Fatalf("register orders: %+v", reg)
	}

	res := postQuery(t, client, ts.URL, map[string]any{
		"sql": "SELECT people.name, orders.total FROM people, orders WHERE people.id = orders.person",
	})
	if res.status != http.StatusOK || len(res.rows) != 3 {
		t.Fatalf("join over registered tables: status=%d rows=%v", res.status, res.rows)
	}

	// The data dir confines registration paths: lexical `..` escapes,
	// absolute paths, and symlinks pointing outside are all rejected.
	outside := filepath.Join(t.TempDir(), "outside.csv")
	if err := os.WriteFile(outside, []byte("id\n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Symlink(outside, filepath.Join(dir, "link.csv")); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"../outside.csv", outside, "link.csv"} {
		esc := postQuery(t, client, ts.URL, map[string]any{
			"sql": fmt.Sprintf("REGISTER TABLE evil FROM '%s'", path),
		})
		if esc.status != http.StatusBadRequest {
			t.Errorf("path escape via %q: status = %d, want 400", path, esc.status)
		}
	}
}

// TestConcurrentSessionsSharedCatalog exercises the acceptance criterion:
// ≥8 concurrent streaming queries over one shared catalog, with a
// concurrent runtime registration mixed in, all under -race in CI.
func TestConcurrentSessionsSharedCatalog(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "extra.csv"), []byte("id,v\n1,10\n2,20\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cat := memCatalog(t, time.Microsecond)
	cat.dir = dir
	srv, ts, client := newTestServer(t, cat, Config{MaxInFlight: 16, QueueDepth: 32})

	const n = 12
	var wg sync.WaitGroup
	errs := make(chan error, n+1)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := postQuery(t, client, ts.URL, map[string]any{
				"sql":     threeWayJoin,
				"session": fmt.Sprintf("sess-%d", i%4),
				"engine":  []string{"concurrent", "sim"}[i%2],
				"shards":  []int{1, 2}[i%2],
			})
			if res.status != http.StatusOK || len(res.rows) != 5 {
				errs <- fmt.Errorf("query %d: status=%d rows=%d err=%q", i, res.status, len(res.rows), res.errLine)
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		res := postQuery(t, client, ts.URL, map[string]any{
			"sql": "REGISTER TABLE extra FROM 'extra.csv'",
		})
		if res.status != http.StatusOK {
			errs <- fmt.Errorf("concurrent register: status=%d", res.status)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := cat.Len(); got != 4 {
		t.Errorf("catalog tables = %d, want 4", got)
	}
	// Auto-created sessions reap once idle — a fresh session ID per query
	// must not grow the session map without bound.
	if n := srv.sessionCount(); n != 0 {
		t.Errorf("implicit sessions not reaped: %d remain", n)
	}

	// Explicit sessions persist until DELETE.
	resp, err := client.Post(ts.URL+"/session", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID string `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	if res := postQuery(t, client, ts.URL, map[string]any{"sql": threeWayJoin, "session": created.ID}); res.status != http.StatusOK {
		t.Fatalf("explicit-session query: %d", res.status)
	}
	if n := srv.sessionCount(); n != 1 {
		t.Errorf("explicit session reaped early: count = %d, want 1", n)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/session/"+created.ID, nil)
	if dresp, err := client.Do(req); err != nil {
		t.Fatal(err)
	} else {
		dresp.Body.Close()
	}
	if n := srv.sessionCount(); n != 0 {
		t.Errorf("session survives DELETE: count = %d", n)
	}
}

// slowCatalog paces scans so that, at TimeCompression 1, a 2-way join runs
// for several wall seconds — long enough to cancel mid-join.
func slowCatalog(t testing.TB) *Catalog {
	t.Helper()
	cat := NewCatalog(20*time.Millisecond, "")
	scan := source.ScanSpec{InterArrival: 20 * clock.Millisecond}
	sch1, _ := schema.NewTable("big", schema.IntCol("k"), schema.IntCol("a"))
	d1, _ := source.NewTable(sch1, seqRows(400, 50))
	cat.Put("big", sql.Source{Data: d1, Scan: &scan})
	sch2, _ := schema.NewTable("dim", schema.IntCol("b"), schema.IntCol("v"))
	d2, _ := source.NewTable(sch2, seqRows(50, 50))
	cat.Put("dim", sql.Source{Data: d2, Scan: &scan})
	return cat
}

const slowJoin = "SELECT big.k, dim.v FROM big, dim WHERE big.a = dim.b"

// TestDeadlineCancelsMidJoin fires a per-query deadline while the scans are
// still delivering and asserts the engine unwinds without leaking
// goroutines.
func TestDeadlineCancelsMidJoin(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv, ts, client := newTestServer(t, slowCatalog(t), Config{TimeCompression: 1})

	start := time.Now()
	res := postQuery(t, client, ts.URL, map[string]any{
		"sql":         slowJoin,
		"deadline_ms": 250,
	})
	elapsed := time.Since(start)
	// The full join needs ~8s of paced scanning; the deadline must cut it
	// far shorter.
	if elapsed > 5*time.Second {
		t.Fatalf("deadline did not fire: query ran %v", elapsed)
	}
	// Either the deadline fired before any row escaped (504) or it cut the
	// stream mid-flight (in-band error line).
	failed := res.errLine != "" || res.status == http.StatusGatewayTimeout
	if !failed {
		t.Fatalf("expected a deadline error, got status=%d rows=%d trailer=%v",
			res.status, len(res.rows), res.trailer)
	}
	msg := res.errLine
	if msg == "" && res.trailer != nil {
		msg = fmt.Sprint(res.trailer)
	}
	if !strings.Contains(msg, "deadline") && res.status != http.StatusGatewayTimeout {
		t.Errorf("error does not mention the deadline: %q (status %d)", msg, res.status)
	}

	// Metrics recorded the cancellation.
	metResp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metBody := new(strings.Builder)
	if _, err := io.Copy(metBody, metResp.Body); err != nil {
		t.Fatal(err)
	}
	metResp.Body.Close()
	if !strings.Contains(metBody.String(), `stemsd_queries_total{status="canceled"} 1`) {
		t.Errorf("metrics missing canceled count:\n%s", metBody)
	}

	// Zero leaked goroutines once the server is gone.
	srv.Shutdown(time.Second)
	ts.Close()
	client.CloseIdleConnections()
	waitForGoroutines(t, baseline)
}

// TestGracefulShutdownDrain starts a long query, drains with a window too
// short for it, and asserts the query is canceled, new work is rejected,
// and no goroutine outlives the server.
func TestGracefulShutdownDrain(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv, ts, client := newTestServer(t, slowCatalog(t), Config{TimeCompression: 1})

	type outcome struct {
		res ndjsonResult
	}
	resCh := make(chan outcome, 1)
	go func() {
		resCh <- outcome{postQuery(t, client, ts.URL, map[string]any{
			"sql":         slowJoin,
			"deadline_ms": 60_000,
		})}
	}()

	// Wait until the query is actually executing.
	waitInflight(t, client, ts.URL, 1)

	done := make(chan struct{})
	go func() {
		srv.Shutdown(200 * time.Millisecond)
		close(done)
	}()

	// While draining (and after), new queries are rejected.
	deadline := time.Now().Add(5 * time.Second)
	for {
		res := postQuery(t, client, ts.URL, map[string]any{"sql": slowJoin})
		if res.status == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("draining server accepted a query: status=%d", res.status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	out := (<-resCh).res
	if out.errLine == "" && out.status == http.StatusOK && out.trailer != nil {
		t.Errorf("long query finished despite drain cancel: %v", out.trailer)
	}
	<-done

	// Liveness stays 200 while draining; readiness flips to 503 with the
	// draining marker so load balancers stop routing.
	resp, err := client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining = %d, want 200 (liveness)", resp.StatusCode)
	}
	resp, err = client.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready struct {
		Draining bool `json:"draining"`
	}
	json.NewDecoder(resp.Body).Decode(&ready)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !ready.Draining {
		t.Errorf("readyz while draining = %d draining=%v, want 503 with draining true", resp.StatusCode, ready.Draining)
	}

	ts.Close()
	client.CloseIdleConnections()
	waitForGoroutines(t, baseline)
}

// waitInflight polls /healthz until the in-flight gauge reaches want.
func waitInflight(t *testing.T, client *http.Client, url string, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := client.Get(url + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h struct {
			Inflight int `json:"inflight"`
		}
		json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if h.Inflight >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("inflight never reached %d", want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAdmissionRejectsBeyondQueue saturates a MaxInFlight=1/QueueDepth=0
// server and asserts the overflow arrival is rejected with 429.
func TestAdmissionRejectsBeyondQueue(t *testing.T) {
	srv, ts, client := newTestServer(t, slowCatalog(t), Config{
		MaxInFlight: 1, QueueDepth: 0, TimeCompression: 1,
	})
	go postQuery(t, client, ts.URL, map[string]any{"sql": slowJoin, "deadline_ms": 10_000})
	waitInflight(t, client, ts.URL, 1)

	res := postQuery(t, client, ts.URL, map[string]any{"sql": slowJoin})
	if res.status != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429", res.status)
	}
	srv.Shutdown(50 * time.Millisecond)
}

// TestSessionDeleteCancelsQueries closes a session mid-query and asserts
// its in-flight query is canceled.
func TestSessionDeleteCancelsQueries(t *testing.T) {
	srv, ts, client := newTestServer(t, slowCatalog(t), Config{TimeCompression: 1})
	resCh := make(chan ndjsonResult, 1)
	go func() {
		resCh <- postQuery(t, client, ts.URL, map[string]any{
			"sql": slowJoin, "session": "doomed", "deadline_ms": 60_000,
		})
	}()
	waitInflight(t, client, ts.URL, 1)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/session/doomed", nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE session = %d", resp.StatusCode)
	}

	res := <-resCh
	ok := res.errLine != "" || res.status != http.StatusOK
	if !ok {
		t.Fatalf("session query survived session close: status=%d trailer=%v", res.status, res.trailer)
	}
	msg := res.errLine
	if msg != "" && !strings.Contains(msg, "session") {
		t.Errorf("cancel cause does not mention the session: %q", msg)
	}
	srv.Shutdown(50 * time.Millisecond)
}

// TestHealthzAndTables sanity-checks the observability endpoints.
func TestHealthzAndTables(t *testing.T) {
	_, ts, client := newTestServer(t, memCatalog(t, time.Microsecond), Config{})
	resp, err := client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status string   `json:"status"`
		Tables []string `json:"tables"`
	}
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if h.Status != "ok" || len(h.Tables) != 3 {
		t.Errorf("healthz = %+v", h)
	}

	postQuery(t, client, ts.URL, map[string]any{"sql": threeWayJoin})
	mresp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := new(strings.Builder)
	io.Copy(body, mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`stemsd_queries_total{status="ok"} 1`,
		"stemsd_rows_streamed_total 5",
		"stemsd_catalog_tables 3",
		"stemsd_routing_steps_total",
	} {
		if !strings.Contains(body.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}
