// sharedstems_test.go is the adversarial harness for catalog-owned shared
// SteMs: server-level result equivalence against a private-state server,
// a -race lifecycle storm mixing concurrent attach/detach with REGISTER
// invalidation and session cancellation mid-probe, and capacity eviction.
package server

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// metricValue extracts one un-labeled metric's value from an exposition body.
func metricValue(t *testing.T, met, name string) uint64 {
	t.Helper()
	for _, line := range strings.Split(met, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var n uint64
			fmt.Sscanf(rest, "%d", &n)
			return n
		}
	}
	t.Fatalf("metrics missing %q", name)
	return 0
}

// TestServerSharedStemsAgree is the server-level half of the tentpole's
// equivalence claim: 8 concurrent queries on a shared-SteM server must
// return exactly the rows a private-state server returns, while building
// each shared table's state exactly once.
func TestServerSharedStemsAgree(t *testing.T) {
	_, pts, pclient := newTestServer(t, memCatalog(t, time.Microsecond), Config{})
	want := rowMultiset(postQuery(t, pclient, pts.URL, map[string]any{"sql": threeWayJoin}).rows)
	if len(want) == 0 {
		t.Fatal("private-state oracle produced no rows")
	}

	srv, ts, client := newTestServer(t, memCatalog(t, time.Microsecond), Config{
		MaxInFlight: 8,
		SharedStems: true,
	})
	const concurrent = 8
	var wg sync.WaitGroup
	for g := 0; g < concurrent; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res := postQuery(t, client, ts.URL, map[string]any{"sql": threeWayJoin})
			if res.status != http.StatusOK || res.errLine != "" {
				t.Errorf("query %d: status=%d err=%q", g, res.status, res.errLine)
				return
			}
			if got := rowMultiset(res.rows); !sameMultiset(want, got) {
				t.Errorf("query %d diverges from private-state server: %d distinct rows, want %d", g, len(got), len(want))
			}
		}(g)
	}
	wg.Wait()

	// memCatalog's s (2 rows) is the driver; r and u attach, so exactly two
	// builds serve all 8 queries (2 attachments each).
	met := metricsBody(t, client, ts.URL)
	if builds := metricValue(t, met, "stemsd_shared_stem_builds_total"); builds != 2 {
		t.Errorf("shared builds = %d, want exactly 2 (one per attached table): %s", builds, srv.shared.debugString())
	}
	attached := metricValue(t, met, "stemsd_shared_stem_attached_total")
	if attached != 2*concurrent {
		t.Errorf("attachments = %d, want %d", attached, 2*concurrent)
	}
	if detached := metricValue(t, met, "stemsd_shared_stem_detaches_total"); detached != attached {
		t.Errorf("detaches = %d, want %d (idle server must hold no references)", detached, attached)
	}
	if resident := metricValue(t, met, "stemsd_shared_stem_resident_bytes"); resident == 0 {
		t.Error("resident-bytes gauge is 0 with two live shared states")
	}
	for k, refs := range srv.shared.refSnapshot() {
		if refs != 0 {
			t.Errorf("entry %v still holds %d references after all queries finished", k, refs)
		}
	}

	// The sim engine attaches through the same planner and must agree too.
	res := postQuery(t, client, ts.URL, map[string]any{"sql": threeWayJoin, "engine": "sim"})
	if res.status != http.StatusOK {
		t.Fatalf("sim engine: status=%d err=%q", res.status, res.errLine)
	}
	if got := rowMultiset(res.rows); !sameMultiset(want, got) {
		t.Errorf("sim engine diverges on shared state: %d distinct rows, want %d", len(got), len(want))
	}
}

// TestSharedStemsStormLifecycle is the refcount/lifecycle storm (run under
// -race in CI): 8 workers hammer a join whose big side is shared AND spilled
// to disk, while one goroutine re-REGISTERs that table (pointer change →
// lazy staleness → rebuild, with old state torn down only after its last
// reference drops) and another cancels session-scoped queries mid-probe.
// Afterward: zero leaked goroutines, zero leaked spill directories, every
// refcount at zero, and attach/detach counters balanced.
func TestSharedStemsStormLifecycle(t *testing.T) {
	baseline := runtime.NumGoroutine()
	dir := t.TempDir()
	spillDir := t.TempDir()
	var rcsv, scsv strings.Builder
	rcsv.WriteString("key,a\n")
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&rcsv, "%d,%d\n", i, i%20)
	}
	scsv.WriteString("x,y\n")
	for j := 0; j < 20; j++ {
		fmt.Fprintf(&scsv, "%d,%d\n", j, j*7)
	}
	for name, content := range map[string]string{"r.csv": rcsv.String(), "s.csv": scsv.String()} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	const q = "SELECT r.key, s.y FROM r, s WHERE r.a = s.x"

	// Oracle: a private-state server over the same CSVs.
	ocat := NewCatalog(time.Microsecond, "")
	for _, n := range []string{"r", "s"} {
		if _, err := ocat.RegisterLocalCSV(n, filepath.Join(dir, n+".csv"), nil); err != nil {
			t.Fatal(err)
		}
	}
	osrv, ots, oclient := newTestServer(t, ocat, Config{})
	want := rowMultiset(postQuery(t, oclient, ots.URL, map[string]any{"sql": q}).rows)
	if len(want) != 400 {
		t.Fatalf("oracle produced %d distinct rows, want 400", len(want))
	}

	cat := NewCatalog(time.Microsecond, dir)
	for _, n := range []string{"r", "s"} {
		if _, err := cat.RegisterLocalCSV(n, filepath.Join(dir, n+".csv"), nil); err != nil {
			t.Fatal(err)
		}
	}
	// The 2KB budget forces r's shared build to hold most rows in sealed
	// spill segments, so concurrent probes exercise the disk path and
	// teardown must remove segment directories.
	srv, ts, client := newTestServer(t, cat, Config{
		MaxInFlight:          8,
		QueueDepth:           256,
		SharedStems:          true,
		SharedStemSpillBytes: 2048,
		SpillDir:             spillDir,
	})

	stop := make(chan struct{})
	var churn sync.WaitGroup

	// Catalog churner: re-REGISTER r with identical content. Every pass
	// replaces the *source.Table, so the shared entry goes stale and the
	// next attach rebuilds while in-flight probes finish on the old state.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			res := postQuery(t, client, ts.URL, map[string]any{"sql": "REGISTER TABLE r FROM 'r.csv'"})
			if res.status != http.StatusOK && res.status != http.StatusTooManyRequests {
				t.Errorf("mid-storm REGISTER: status=%d err=%q", res.status, res.errLine)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Session canceller: cancel a query mid-probe; its release must still
	// run exactly once (the refcount balance below catches double or missed
	// releases), and completed-first runs must match the oracle.
	churn.Add(1)
	go func() {
		defer churn.Done()
		var inner sync.WaitGroup
		defer inner.Wait()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			session := fmt.Sprintf("cancel-%d", i)
			inner.Add(1)
			go func() {
				defer inner.Done()
				res := postQuery(t, client, ts.URL, map[string]any{"sql": q, "session": session})
				if res.status == http.StatusOK && res.errLine == "" && res.trailer != nil {
					if got := rowMultiset(res.rows); !sameMultiset(want, got) {
						t.Errorf("canceled-session run completed with wrong rows: %d distinct, want %d", len(got), len(want))
					}
				}
			}()
			time.Sleep(time.Millisecond)
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/session/"+session, nil)
			if resp, err := client.Do(req); err == nil {
				resp.Body.Close()
			}
			inner.Wait()
		}
	}()

	var workers sync.WaitGroup
	for w := 0; w < 8; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			for i := 0; i < 25; i++ {
				res := postQuery(t, client, ts.URL, map[string]any{"sql": q})
				if res.status != http.StatusOK {
					t.Errorf("worker %d run %d: status=%d err=%q", w, i, res.status, res.errLine)
					return
				}
				if got := rowMultiset(res.rows); !sameMultiset(want, got) {
					t.Errorf("worker %d run %d: rows diverge from private-state server (%d distinct, want %d)",
						w, i, len(got), len(want))
					return
				}
			}
		}(w)
	}
	workers.Wait()
	close(stop)
	churn.Wait()

	builds, attaches, detaches, _ := srv.shared.counts()
	if builds < 2 {
		t.Errorf("builds = %d, want ≥ 2 (REGISTER churn must have forced rebuilds)", builds)
	}
	if attaches != detaches {
		t.Errorf("attaches = %d but detaches = %d; a reference leaked or double-released", attaches, detaches)
	}
	for k, refs := range srv.shared.refSnapshot() {
		if refs != 0 {
			t.Errorf("entry %v still holds %d references after the storm", k, refs)
		}
	}

	srv.Shutdown(time.Second)
	osrv.Shutdown(time.Second)
	ts.Close()
	ots.Close()
	client.CloseIdleConnections()
	oclient.CloseIdleConnections()

	// Shutdown closed every shared state, which removes its spill segments;
	// anything left under the spill dir is a leaked file descriptor's corpse.
	leftovers, err := filepath.Glob(filepath.Join(spillDir, "stems-shared-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Errorf("leaked shared spill directories after shutdown: %v", leftovers)
	}
	waitForGoroutines(t, baseline)
}

// TestSharedStemsEviction pins the capacity path: a 1-byte cap means every
// entry is over budget, so attaching a second table's state evicts the
// first's as soon as it is idle — but never while referenced.
func TestSharedStemsEviction(t *testing.T) {
	srv, ts, client := newTestServer(t, memCatalog(t, time.Microsecond), Config{
		SharedStems:     true,
		SharedStemBytes: 1,
	})
	q1 := "SELECT r.key FROM r, s WHERE r.a = s.x"
	q2 := "SELECT u.q FROM s, u WHERE s.y = u.p"
	if res := postQuery(t, client, ts.URL, map[string]any{"sql": q1}); res.status != http.StatusOK {
		t.Fatalf("q1: status=%d err=%q", res.status, res.errLine)
	}
	if res := postQuery(t, client, ts.URL, map[string]any{"sql": q2}); res.status != http.StatusOK {
		t.Fatalf("q2: status=%d err=%q", res.status, res.errLine)
	}
	_, _, _, evictions := srv.shared.counts()
	if evictions == 0 {
		t.Errorf("evictions = 0, want > 0 under a 1-byte cap: %s", srv.shared.debugString())
	}
	if n := srv.shared.entryCount(); n > 1 {
		t.Errorf("entryCount = %d, want ≤ 1 under a 1-byte cap", n)
	}
	// Eviction must not have hurt correctness: q1 again rebuilds and agrees.
	res := postQuery(t, client, ts.URL, map[string]any{"sql": q1})
	if res.status != http.StatusOK {
		t.Fatalf("q1 after eviction: status=%d err=%q", res.status, res.errLine)
	}
	if len(res.rows) != 3 {
		t.Errorf("q1 after eviction returned %d rows, want 3", len(res.rows))
	}
	srv.Shutdown(time.Second)
}
