// obs.go is the per-query observability layer: the completed-queries ring
// (the system:completed_requests analog — a fixed-capacity record of
// finished queries with their timings and per-module stats, served by
// GET /queries) and the structured-log helpers. Everything here is bounded:
// the ring overwrites its oldest record, so a long-lived server holds at
// most CompletedCap records no matter the query rate.
package server

import (
	"log/slog"
	"sync"
	"time"

	"repro/internal/trace"
)

// queryRecord is one finished query as it appears in GET /queries and in
// the "query finished" structured log.
type queryRecord struct {
	ID      uint64 `json:"id"`
	Session string `json:"session,omitempty"`
	SQL     string `json:"sql"`
	Engine  string `json:"engine"`
	Policy  string `json:"policy"`
	Status  string `json:"status"`
	Error   string `json:"error,omitempty"`
	Rows    int    `json:"rows"`
	// QueueMS is time spent waiting for an admission slot; ElapsedMS is
	// execution time (bind through last row), excluding the queue wait.
	QueueMS      float64   `json:"queue_ms"`
	ElapsedMS    float64   `json:"elapsed_ms"`
	RoutingSteps uint64    `json:"routing_steps"`
	StemBuilds   uint64    `json:"stem_builds"`
	IndexProbes  uint64    `json:"index_probes"`
	PlanCacheHit bool      `json:"plan_cache_hit"`
	SharedStems  bool      `json:"shared_stems,omitempty"`
	Spilled      bool      `json:"spilled,omitempty"`
	Start        time.Time `json:"start"`
	// Modules carries the trace collector's per-module aggregates — the
	// observed routing that stands in for a plan.
	Modules []trace.ModuleRecord `json:"modules,omitempty"`
}

// completedRing holds the last cap finished queries, newest overwriting
// oldest.
type completedRing struct {
	mu   sync.Mutex
	recs []queryRecord
	next int
	full bool
}

func newCompletedRing(capacity int) *completedRing {
	return &completedRing{recs: make([]queryRecord, capacity)}
}

func (cr *completedRing) add(rec queryRecord) {
	cr.mu.Lock()
	cr.recs[cr.next] = rec
	cr.next++
	if cr.next == len(cr.recs) {
		cr.next, cr.full = 0, true
	}
	cr.mu.Unlock()
}

// list returns records at least minDur of execution time, newest first.
func (cr *completedRing) list(minDur time.Duration) []queryRecord {
	minMS := float64(minDur) / float64(time.Millisecond)
	cr.mu.Lock()
	defer cr.mu.Unlock()
	n := cr.next
	if cr.full {
		n = len(cr.recs)
	}
	out := make([]queryRecord, 0, n)
	// Walk backwards from the most recent slot.
	for i := 0; i < n; i++ {
		idx := cr.next - 1 - i
		if idx < 0 {
			idx += len(cr.recs)
		}
		if r := cr.recs[idx]; r.ElapsedMS >= minMS {
			out = append(out, r)
		}
	}
	return out
}

// logFinished emits the finished/slow-query structured logs. lg is non-nil.
func logFinished(lg *slog.Logger, rec *queryRecord, slow time.Duration) {
	attrs := []any{
		slog.Uint64("query_id", rec.ID),
		slog.String("status", rec.Status),
		slog.Int("rows", rec.Rows),
		slog.Float64("queue_ms", rec.QueueMS),
		slog.Float64("elapsed_ms", rec.ElapsedMS),
		slog.String("sql", rec.SQL),
	}
	if rec.Session != "" {
		attrs = append(attrs, slog.String("session", rec.Session))
	}
	if rec.Error != "" {
		attrs = append(attrs, slog.String("error", rec.Error))
	}
	lg.Info("query finished", attrs...)
	if slow > 0 && rec.ElapsedMS >= float64(slow)/float64(time.Millisecond) {
		lg.Warn("slow query",
			slog.Uint64("query_id", rec.ID),
			slog.Float64("elapsed_ms", rec.ElapsedMS),
			slog.Float64("threshold_ms", float64(slow)/float64(time.Millisecond)),
			slog.String("sql", rec.SQL))
	}
}
