package server

// Standing-query (subscription) and live-ingestion tests: the server-level
// delta-equivalence property, the subscription lifecycle under faults (slow
// consumers, client disconnect mid-stream, server drain with live
// subscribers), and INSERT's interaction with the plan cache and shared
// SteMs. The facade-level equivalence harness lives in stems_stream_test.go;
// this file asserts the same invariant through the HTTP surface, where
// cancellation, admission, and metrics accounting can break it.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// subStream is an open subscription response: a reader goroutine pumps
// decoded NDJSON lines into a channel so tests can wait with timeouts.
type subStream struct {
	resp  *http.Response
	lines chan map[string]any
}

// openSubscription POSTs body (which should set "subscribe":true) and
// returns the open stream. Fails the test on a non-200 status.
func openSubscription(t testing.TB, client *http.Client, url string, body any) *subStream {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url+"/query", "application/json", strings.NewReader(string(payload)))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		b := make([]byte, 1024)
		n, _ := resp.Body.Read(b)
		resp.Body.Close()
		t.Fatalf("subscription status %d: %s", resp.StatusCode, b[:n])
	}
	s := &subStream{resp: resp, lines: make(chan map[string]any, 4096)}
	go func() {
		defer close(s.lines)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			var obj map[string]any
			if json.Unmarshal([]byte(line), &obj) != nil {
				return
			}
			s.lines <- obj
		}
	}()
	return s
}

// next returns the next NDJSON object or fails after timeout.
func (s *subStream) next(t testing.TB, timeout time.Duration) map[string]any {
	t.Helper()
	select {
	case obj, ok := <-s.lines:
		if !ok {
			t.Fatal("subscription stream closed unexpectedly")
		}
		return obj
	case <-time.After(timeout):
		t.Fatal("timed out waiting for a subscription line")
	}
	return nil
}

// closed reports whether the stream ends (EOF) within timeout.
func (s *subStream) closed(timeout time.Duration) bool {
	deadline := time.After(timeout)
	for {
		select {
		case _, ok := <-s.lines:
			if !ok {
				return true
			}
		case <-deadline:
			return false
		}
	}
}

func (s *subStream) close() { s.resp.Body.Close() }

// rowKey canonicalizes a decoded row map for multiset comparison
// (json.Marshal sorts map keys).
func rowKey(t testing.TB, row map[string]any) string {
	t.Helper()
	b, err := json.Marshal(row)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// postInsert POSTs rows to /insert and returns the response status.
func postInsert(t testing.TB, client *http.Client, url, table string, rows [][]any) int {
	t.Helper()
	payload, err := json.Marshal(map[string]any{"table": table, "rows": rows})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url+"/insert", "application/json", strings.NewReader(string(payload)))
	if err != nil {
		t.Errorf("POST /insert: %v", err)
		return 0
	}
	defer resp.Body.Close()
	json.NewDecoder(resp.Body).Decode(&map[string]any{})
	return resp.StatusCode
}

// TestSubscribeDeltaExact is the server-level delta-equivalence property:
// a standing 3-way join fed interleaved inserts from three concurrent
// writers (mixing INSERT SQL and POST /insert) emits exactly the multiset
// of rows an equivalent batch query over the final table state returns.
func TestSubscribeDeltaExact(t *testing.T) {
	for _, engine := range []string{"concurrent", "sim"} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			cat := memCatalog(t, time.Millisecond)
			_, ts, client := newTestServer(t, cat, Config{})

			sub := openSubscription(t, client, ts.URL, map[string]any{
				"sql": threeWayJoin, "subscribe": true, "engine": engine,
			})
			defer sub.close()

			// Read the snapshot: rows until the snapshot marker.
			var got []string
			for {
				obj := sub.next(t, 10*time.Second)
				if row, ok := obj["row"].(map[string]any); ok {
					got = append(got, rowKey(t, row))
					continue
				}
				if obj["snapshot"] == true {
					if int(obj["rows"].(float64)) != len(got) {
						t.Fatalf("snapshot marker says %v rows, got %d", obj["rows"], len(got))
					}
					break
				}
				t.Fatalf("unexpected line before snapshot: %v", obj)
			}

			// Interleaved inserts from three concurrent writers. Keys stay in
			// the joinable domain so deltas actually produce rows.
			rng := rand.New(rand.NewSource(7))
			type ins struct {
				table string
				row   []any
			}
			var plan []ins
			for i := 0; i < 18; i++ {
				switch rng.Intn(3) {
				case 0:
					plan = append(plan, ins{"r", []any{100 + i, []int64{10, 20}[rng.Intn(2)]}})
				case 1:
					plan = append(plan, ins{"s", []any{[]int64{10, 20}[rng.Intn(2)], []int64{100, 200}[rng.Intn(2)]}})
				default:
					plan = append(plan, ins{"u", []any{[]int64{100, 200}[rng.Intn(2)], 1000 + i}})
				}
			}
			var wg sync.WaitGroup
			for w := 0; w < 3; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := w; i < len(plan); i += 3 {
						p := plan[i]
						if i%2 == 0 {
							if st := postInsert(t, client, ts.URL, p.table, [][]any{p.row}); st != http.StatusOK {
								t.Errorf("insert %d: status %d", i, st)
							}
						} else {
							stmt := fmt.Sprintf("INSERT INTO %s VALUES (%v, %v)", p.table, p.row[0], p.row[1])
							res := postQuery(t, client, ts.URL, map[string]any{"sql": stmt})
							if res.status != http.StatusOK {
								t.Errorf("insert %d: status %d", i, res.status)
							}
						}
					}
				}()
			}
			wg.Wait()

			// The batch oracle over the final state.
			oracle := postQuery(t, client, ts.URL, map[string]any{"sql": threeWayJoin, "engine": engine})
			if oracle.status != http.StatusOK {
				t.Fatalf("oracle status %d", oracle.status)
			}
			want := make([]string, 0, len(oracle.rows))
			for _, row := range oracle.rows {
				want = append(want, rowKey(t, row))
			}
			sort.Strings(want)

			// Drain the subscription until it has emitted the full multiset.
			deadline := time.Now().Add(15 * time.Second)
			for len(got) < len(want) && time.Now().Before(deadline) {
				obj := sub.next(t, 10*time.Second)
				if row, ok := obj["row"].(map[string]any); ok {
					got = append(got, rowKey(t, row))
				}
			}
			// Allow any final in-flight row to surface, then assert there are
			// no EXTRA rows beyond the oracle's multiset.
			select {
			case obj, ok := <-sub.lines:
				if ok {
					if row, isRow := obj["row"].(map[string]any); isRow {
						got = append(got, rowKey(t, row))
					}
				}
			case <-time.After(200 * time.Millisecond):
			}
			sort.Strings(got)
			if len(got) != len(want) {
				t.Fatalf("standing emitted %d rows, oracle %d\nstanding: %v\noracle: %v", len(got), len(want), got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("row %d differs: standing %q, oracle %q", i, got[i], want[i])
				}
			}
		})
	}
}

// TestSubscribeTableReplacedEnds pins the generation rule: an append keeps a
// subscription alive, a REGISTER replacing a subscribed table ends it
// cleanly with reason "table replaced".
func TestSubscribeTableReplacedEnds(t *testing.T) {
	cat := memCatalog(t, time.Millisecond)
	dir := t.TempDir()
	if err := os.WriteFile(dir+"/r2.csv", []byte("key:int,a:int\n9,10\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cat.dir = dir
	_, ts, client := newTestServer(t, cat, Config{})

	sub := openSubscription(t, client, ts.URL, map[string]any{
		"sql": "SELECT r.key, s.y FROM r, s WHERE r.a = s.x", "subscribe": true,
	})
	defer sub.close()
	for {
		if sub.next(t, 10*time.Second)["snapshot"] == true {
			break
		}
	}
	// Append: subscription survives and delivers a delta.
	if st := postInsert(t, client, ts.URL, "r", [][]any{{50, 10}}); st != http.StatusOK {
		t.Fatalf("insert status %d", st)
	}
	obj := sub.next(t, 10*time.Second)
	row, ok := obj["row"].(map[string]any)
	if !ok || row["r.key"].(float64) != 50 {
		t.Fatalf("expected delta row for r.key=50, got %v", obj)
	}
	// Replace: subscription ends with the reason in the final line.
	res := postQuery(t, client, ts.URL, map[string]any{"sql": "REGISTER TABLE r FROM 'r2.csv'"})
	if res.status != http.StatusOK {
		t.Fatalf("register status %d: %v", res.status, res)
	}
	for {
		obj := sub.next(t, 10*time.Second)
		if obj["done"] == true {
			if obj["reason"] != `table "r" replaced` {
				t.Fatalf("done reason = %v", obj["reason"])
			}
			break
		}
		if _, isRow := obj["row"].(map[string]any); !isRow {
			t.Fatalf("unexpected line: %v", obj)
		}
	}
	if !sub.closed(5 * time.Second) {
		t.Fatal("stream did not close after done line")
	}
}

// TestSubscribeClientDisconnect kills the client mid-stream and asserts the
// server unwinds the standing engine: no leaked goroutines, the subscriber
// gauge returns to zero, and the query is accounted as canceled.
func TestSubscribeClientDisconnect(t *testing.T) {
	baseline := runtime.NumGoroutine()
	cat := memCatalog(t, time.Millisecond)
	srv, ts, client := newTestServer(t, cat, Config{})

	sub := openSubscription(t, client, ts.URL, map[string]any{"sql": threeWayJoin, "subscribe": true})
	for {
		if sub.next(t, 10*time.Second)["snapshot"] == true {
			break
		}
	}
	if g := srv.gauges(); g.subscribers != 1 {
		t.Fatalf("subscribers gauge = %d, want 1", g.subscribers)
	}
	// Queue up work so the disconnect lands mid-activity, then cut the
	// connection without reading the deltas.
	if st := postInsert(t, client, ts.URL, "r", [][]any{{60, 10}, {61, 20}}); st != http.StatusOK {
		t.Fatalf("insert status %d", st)
	}
	sub.close()

	deadline := time.Now().Add(10 * time.Second)
	for srv.subs.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber gauge stuck above zero after disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
	met := metricsBody(t, client, ts.URL)
	if v := metricValue(t, met, "stemsd_subscribers_active"); v != 0 {
		t.Fatalf("stemsd_subscribers_active = %d, want 0", v)
	}
	if v := metricValue(t, met, `stemsd_queries_total{status="canceled"}`); v != 1 {
		t.Fatalf("canceled queries = %d, want 1", v)
	}
	client.CloseIdleConnections()
	ts.Close()
	srv.Shutdown(time.Second)
	waitForGoroutines(t, baseline)
}

// TestSubscribeSlowConsumerBackpressure reads the stream deliberately
// slowly while writers keep inserting: the engine's rounds block on the
// client write instead of buffering unboundedly, and every delta still
// arrives exactly once.
func TestSubscribeSlowConsumerBackpressure(t *testing.T) {
	cat := memCatalog(t, time.Millisecond)
	_, ts, client := newTestServer(t, cat, Config{})

	sub := openSubscription(t, client, ts.URL, map[string]any{
		"sql": "SELECT r.key, s.y FROM r, s WHERE r.a = s.x", "subscribe": true,
	})
	defer sub.close()
	var got []string
	for {
		obj := sub.next(t, 10*time.Second)
		if row, ok := obj["row"].(map[string]any); ok {
			got = append(got, rowKey(t, row))
			continue
		}
		if obj["snapshot"] == true {
			break
		}
	}
	const n = 30
	go func() {
		for i := 0; i < n; i++ {
			postInsert(t, client, ts.URL, "r", [][]any{{200 + i, 10}})
		}
	}()
	// Each inserted r row joins s(10,100): n delta rows, read slowly.
	for len(got) < 3+n {
		obj := sub.next(t, 15*time.Second)
		if row, ok := obj["row"].(map[string]any); ok {
			got = append(got, rowKey(t, row))
			time.Sleep(2 * time.Millisecond)
		}
	}
	oracle := postQuery(t, client, ts.URL, map[string]any{"sql": "SELECT r.key, s.y FROM r, s WHERE r.a = s.x"})
	want := make([]string, 0, len(oracle.rows))
	for _, row := range oracle.rows {
		want = append(want, rowKey(t, row))
	}
	sort.Strings(want)
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("slow consumer saw %d rows, oracle %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d differs: %q vs %q", i, got[i], want[i])
		}
	}
}

// TestSubscribeDrainWithLiveSubscribers starts a drain under live
// subscriptions: each ends promptly with reason "draining" (well inside the
// drain window — a subscriber must never hold the drain for its full
// timeout), Shutdown returns, no goroutines leak, and the spill directory
// stays empty (subscriptions run ungoverned).
func TestSubscribeDrainWithLiveSubscribers(t *testing.T) {
	baseline := runtime.NumGoroutine()
	spill := t.TempDir()
	cat := memCatalog(t, time.Millisecond)
	srv, ts, client := newTestServer(t, cat, Config{SpillDir: spill})

	var subs []*subStream
	for i := 0; i < 2; i++ {
		sub := openSubscription(t, client, ts.URL, map[string]any{"sql": threeWayJoin, "subscribe": true})
		defer sub.close()
		for {
			if sub.next(t, 10*time.Second)["snapshot"] == true {
				break
			}
		}
		subs = append(subs, sub)
	}

	done := make(chan struct{})
	start := time.Now()
	go func() {
		srv.Shutdown(30 * time.Second)
		close(done)
	}()
	for _, sub := range subs {
		for {
			obj := sub.next(t, 10*time.Second)
			if obj["done"] == true {
				if obj["reason"] != "draining" {
					t.Errorf("done reason = %v, want draining", obj["reason"])
				}
				break
			}
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return after subscribers ended")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("drain took %v; subscribers must end promptly", elapsed)
	}
	if ents, err := os.ReadDir(spill); err != nil || len(ents) != 0 {
		t.Fatalf("spill dir not clean after drain: %v entries, err %v", len(ents), err)
	}
	client.CloseIdleConnections()
	ts.Close()
	waitForGoroutines(t, baseline)
}

// TestSubscribeWindowedDelta bounds standing state with the "window" knob:
// r keeps its 3 most recent rows, so a fourth insert evicts r(1,10) and a
// subsequent s insert joins only the resident rows — the delta reflects
// window contents at arrival time, and joins against evicted rows are
// intentionally not produced.
func TestSubscribeWindowedDelta(t *testing.T) {
	cat := memCatalog(t, time.Millisecond)
	_, ts, client := newTestServer(t, cat, Config{})

	sub := openSubscription(t, client, ts.URL, map[string]any{
		"sql":       "SELECT r.key, s.y FROM r, s WHERE r.a = s.x",
		"subscribe": true,
		"window":    map[string]int{"r": 3},
	})
	defer sub.close()
	snap := 0
	for {
		obj := sub.next(t, 10*time.Second)
		if _, ok := obj["row"].(map[string]any); ok {
			snap++
			continue
		}
		if obj["snapshot"] == true {
			break
		}
	}
	if snap != 3 {
		t.Fatalf("snapshot rows = %d, want 3", snap)
	}
	// Fourth r row: one delta, and r(1,10) falls out of the window.
	if st := postInsert(t, client, ts.URL, "r", [][]any{{4, 10}}); st != http.StatusOK {
		t.Fatalf("insert status %d", st)
	}
	obj := sub.next(t, 10*time.Second)
	row, ok := obj["row"].(map[string]any)
	if !ok || row["r.key"].(float64) != 4 {
		t.Fatalf("expected delta for r.key=4, got %v", obj)
	}
	// New s row with x=10 joins the resident r rows only: r3 and r4, not the
	// evicted r1.
	if st := postInsert(t, client, ts.URL, "s", [][]any{{10, 999}}); st != http.StatusOK {
		t.Fatalf("insert status %d", st)
	}
	keys := map[float64]bool{}
	for i := 0; i < 2; i++ {
		obj := sub.next(t, 10*time.Second)
		row, ok := obj["row"].(map[string]any)
		if !ok || row["s.y"].(float64) != 999 {
			t.Fatalf("expected delta against s.y=999, got %v", obj)
		}
		keys[row["r.key"].(float64)] = true
	}
	if !keys[3] || !keys[4] {
		t.Fatalf("windowed delta joined wrong r rows: %v (want {3,4})", keys)
	}
	select {
	case obj := <-sub.lines:
		t.Fatalf("unexpected extra line (evicted r(1,10) must not join): %v", obj)
	case <-time.After(200 * time.Millisecond):
	}
}

// TestInsertInvalidatesPlansAndSharedStems pins INSERT's interaction with
// the caches: the catalog version bump invalidates cached plans (counter
// moves) and the data-pointer change makes the table's shared SteM stale,
// forcing a rebuild on the next query (builds counter moves).
func TestInsertInvalidatesPlansAndSharedStems(t *testing.T) {
	cat := memCatalog(t, time.Millisecond)
	_, ts, client := newTestServer(t, cat, Config{SharedStems: true})

	for i := 0; i < 2; i++ {
		if res := postQuery(t, client, ts.URL, map[string]any{"sql": threeWayJoin}); res.status != http.StatusOK {
			t.Fatalf("warmup %d: status %d", i, res.status)
		}
	}
	met := metricsBody(t, client, ts.URL)
	buildsBefore := metricValue(t, met, "stemsd_shared_stem_builds_total")
	invalBefore := metricValue(t, met, "stemsd_plan_cache_invalidations_total")
	if hits := metricValue(t, met, "stemsd_plan_cache_hits_total"); hits == 0 {
		t.Fatal("warmup produced no plan-cache hit; the invalidation assertion below would be vacuous")
	}

	res := postQuery(t, client, ts.URL, map[string]any{"sql": "INSERT INTO u VALUES (100, 77)"})
	if res.status != http.StatusOK {
		t.Fatalf("insert status %d", res.status)
	}
	if res.trailer != nil {
		t.Fatalf("INSERT returned a query trailer: %v", res.trailer)
	}
	if res2 := postQuery(t, client, ts.URL, map[string]any{"sql": threeWayJoin}); res2.status != http.StatusOK {
		t.Fatalf("post-insert query status %d", res2.status)
	} else if len(res2.rows) <= 5 {
		t.Fatalf("post-insert query saw %d rows, want > 5 (new u row joins two s rows... at least the original count plus the new matches)", len(res2.rows))
	}

	met = metricsBody(t, client, ts.URL)
	if buildsAfter := metricValue(t, met, "stemsd_shared_stem_builds_total"); buildsAfter <= buildsBefore {
		t.Fatalf("shared SteM builds %d -> %d; INSERT must force a rebuild of the appended table's state", buildsBefore, buildsAfter)
	}
	if invalAfter := metricValue(t, met, "stemsd_plan_cache_invalidations_total"); invalAfter <= invalBefore {
		t.Fatalf("plan invalidations %d -> %d; INSERT must invalidate cached plans", invalBefore, invalAfter)
	}
	if v := metricValue(t, met, "stemsd_inserts_total"); v != 1 {
		t.Fatalf("stemsd_inserts_total = %d, want 1", v)
	}
	if v := metricValue(t, met, "stemsd_inserted_rows_total"); v != 1 {
		t.Fatalf("stemsd_inserted_rows_total = %d, want 1", v)
	}
}

// TestInsertEndpointValidation pins the /insert and INSERT error surfaces.
func TestInsertEndpointValidation(t *testing.T) {
	cat := memCatalog(t, time.Millisecond)
	_, ts, client := newTestServer(t, cat, Config{})

	if st := postInsert(t, client, ts.URL, "nope", [][]any{{1, 2}}); st != http.StatusBadRequest {
		t.Errorf("unknown table: status %d, want 400", st)
	}
	if st := postInsert(t, client, ts.URL, "r", [][]any{{1}}); st != http.StatusBadRequest {
		t.Errorf("arity mismatch: status %d, want 400", st)
	}
	if st := postInsert(t, client, ts.URL, "r", [][]any{{1.5, 2}}); st != http.StatusBadRequest {
		t.Errorf("float value: status %d, want 400", st)
	}
	if st := postInsert(t, client, ts.URL, "r", nil); st != http.StatusBadRequest {
		t.Errorf("no rows: status %d, want 400", st)
	}
	if res := postQuery(t, client, ts.URL, map[string]any{"sql": "INSERT INTO nope VALUES (1)"}); res.status != http.StatusBadRequest {
		t.Errorf("INSERT into unknown table: status %d, want 400", res.status)
	}
	// Valid insert via both paths, then verify the rows are queryable.
	if st := postInsert(t, client, ts.URL, "r", [][]any{{70, 10}}); st != http.StatusOK {
		t.Errorf("valid /insert: status %d", st)
	}
	if res := postQuery(t, client, ts.URL, map[string]any{"sql": "INSERT INTO r VALUES (71, 20)"}); res.status != http.StatusOK {
		t.Errorf("valid INSERT: status %d", res.status)
	}
	res := postQuery(t, client, ts.URL, map[string]any{"sql": "SELECT r.key FROM r WHERE r.key >= 70 ORDER BY r.key"})
	if res.status != http.StatusOK || len(res.rows) != 2 {
		t.Fatalf("inserted rows not queryable: status %d rows %v", res.status, res.rows)
	}
}

// TestSubscribeRejections pins the subscription validation surface.
func TestSubscribeRejections(t *testing.T) {
	cat := memCatalog(t, time.Millisecond)
	if err := cat.AddIndex("u", "p", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	_, ts, client := newTestServer(t, cat, Config{})

	cases := []struct {
		name string
		body map[string]any
	}{
		{"order by", map[string]any{"sql": "SELECT r.key FROM r, s WHERE r.a = s.x ORDER BY r.key", "subscribe": true}},
		{"limit", map[string]any{"sql": "SELECT r.key FROM r, s WHERE r.a = s.x LIMIT 3", "subscribe": true}},
		{"register", map[string]any{"sql": "REGISTER TABLE z FROM 'z.csv'", "subscribe": true}},
		{"insert", map[string]any{"sql": "INSERT INTO r VALUES (1, 2)", "subscribe": true}},
		{"explain", map[string]any{"sql": threeWayJoin, "subscribe": true, "explain": true}},
		{"mem budget", map[string]any{"sql": threeWayJoin, "subscribe": true, "mem_budget_bytes": 1 << 20}},
		{"bad engine", map[string]any{"sql": threeWayJoin, "subscribe": true, "engine": "warp"}},
		{"indexed table", map[string]any{"sql": "SELECT s.x, u.q FROM s, u WHERE s.y = u.p", "subscribe": true}},
		{"window without subscribe", map[string]any{"sql": threeWayJoin, "window": map[string]int{"r": 2}}},
		{"window unknown table", map[string]any{"sql": threeWayJoin, "subscribe": true, "window": map[string]int{"zz": 2}}},
		{"window non-positive", map[string]any{"sql": threeWayJoin, "subscribe": true, "window": map[string]int{"r": 0}}},
	}
	for _, tc := range cases {
		if res := postQuery(t, client, ts.URL, tc.body); res.status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, res.status)
		}
	}
}
