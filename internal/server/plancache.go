// plancache.go is the server's bounded plan/router cache: the Prepare half
// of the Parse → Prepare → Execute split. A cache entry holds a statement
// bound at a specific catalog version plus a pool of reset-and-reuse
// router+engine shells, so a hot EXECUTE (or a repeated ad-hoc SELECT, which
// auto-prepares under its canonical text) admission-checks and runs without
// re-parsing, re-binding, or rebuilding the operator graph.
//
// Invalidation is lazy and version-driven: REGISTER bumps the catalog
// version, and a lookup whose snapshot version differs from the entry's
// marks the entry dead and misses. In-flight executions are unaffected —
// they hold their own reference to the entry and their own shell, and a
// dead entry simply stops accepting shells back. The cache is bounded by
// LRU eviction and exposes hit/miss/invalidation/eviction counters.
package server

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/eddy"
	"repro/internal/sql"
	"repro/internal/stem"
	"repro/internal/trace"
)

// planKey identifies one executable plan shape: the canonical statement
// text plus every knob that changes the built router or engine. Server-wide
// settings (columnar mode, time compression) are fixed for the process and
// stay out of the key.
type planKey struct {
	canon  string
	policy string
	seed   int64
	shards int
	batch  int
}

// engineShell is one reusable router+engine pair. A shell is never shared:
// an execution takes it from the pool (or builds it fresh), runs, and
// returns it only after a clean completion — eddy.Concurrent.RunContext
// guarantees zero surviving goroutines, and the Reset contract (see
// internal/eddy/reset_test.go) makes a reset shell indistinguishable from a
// freshly built one.
type engineShell struct {
	r   *eddy.Router
	eng *eddy.Concurrent
	// coll is the shell's trace collector, pooled with the shell and Reset
	// before every reuse — the per-execution-stats invariant: a pooled
	// shell never carries observed statistics across runs. (The routing
	// policy deliberately does carry its learned state over; the collector
	// reports a single execution.)
	coll *trace.Collector
	// shared records the shared-SteM states (by table position) the router
	// was built against; executions pointer-compare it with their own
	// attachments and discard the shell on mismatch, since a REGISTER or an
	// eviction produces a new state a stale router must not probe. The
	// shell holds no references — each execution attaches and releases its
	// own, so a pool entry dropped silently by the GC leaks nothing.
	shared []*stem.SharedState
}

// planEntry is one cached plan: the bound statement, the catalog version it
// was bound at, and the shell pool.
type planEntry struct {
	key     planKey
	version uint64
	bound   *sql.Bound

	// dead flips when the entry is invalidated or evicted: shells are no
	// longer accepted back, so a dead entry drains as executions finish.
	dead atomic.Bool
	// refs counts in-flight executions using this entry's bound plan.
	refs atomic.Int64
	// hits counts lookups that landed on this entry.
	hits atomic.Uint64

	shells sync.Pool // of *engineShell

	elem *list.Element // LRU position; guarded by the cache mutex
}

// unref drops an execution's reference.
func (e *planEntry) unref() { e.refs.Add(-1) }

// getShell takes a pooled shell, or nil when the pool is empty (the caller
// builds one). The shell comes back dirty — the caller resets it with the
// execution's fresh policy and clock before running.
func (e *planEntry) getShell() *engineShell {
	sh, _ := e.shells.Get().(*engineShell)
	return sh
}

// putShell returns a shell after a clean run. Dead entries drop it: a shell
// built against an invalidated plan must never serve a later execution.
func (e *planEntry) putShell(sh *engineShell) {
	if e.dead.Load() {
		return
	}
	e.shells.Put(sh)
}

// planCache is a bounded, LRU-evicting map from plan key to entry.
type planCache struct {
	mu    sync.Mutex
	cap   int
	byKey map[planKey]*planEntry
	lru   *list.List // front = most recently used; values are *planEntry

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
	evictions     atomic.Uint64
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:   capacity,
		byKey: make(map[planKey]*planEntry),
		lru:   list.New(),
	}
}

// acquire looks up the entry for k bound at the given catalog version. On a
// hit it takes a reference (released with unref) and reports true. An entry
// bound at a different version is invalidated here, lazily — the miss sends
// the caller off to rebind, and insert replaces the entry.
func (pc *planCache) acquire(k planKey, version uint64) (*planEntry, bool) {
	pc.mu.Lock()
	e, ok := pc.byKey[k]
	if ok && e.version != version {
		pc.removeLocked(e)
		pc.invalidations.Add(1)
		ok = false
	}
	if !ok {
		pc.mu.Unlock()
		pc.misses.Add(1)
		return nil, false
	}
	pc.lru.MoveToFront(e.elem)
	e.refs.Add(1)
	pc.mu.Unlock()
	pc.hits.Add(1)
	e.hits.Add(1)
	return e, true
}

// insert publishes a freshly bound plan, returning the entry to execute
// with (referenced; release with unref). When a concurrent miss already
// published the same key at the same version, the racing loser adopts the
// winner's entry so both executions share one shell pool.
func (pc *planCache) insert(k planKey, version uint64, bound *sql.Bound) *planEntry {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if e, ok := pc.byKey[k]; ok {
		if e.version == version {
			pc.lru.MoveToFront(e.elem)
			e.refs.Add(1)
			return e
		}
		pc.removeLocked(e)
		pc.invalidations.Add(1)
	}
	e := &planEntry{key: k, version: version, bound: bound}
	e.refs.Add(1)
	e.elem = pc.lru.PushFront(e)
	pc.byKey[k] = e
	for pc.lru.Len() > pc.cap {
		victim := pc.lru.Back().Value.(*planEntry)
		pc.removeLocked(victim)
		pc.evictions.Add(1)
	}
	return e
}

// removeLocked unlinks an entry and marks it dead; the caller holds pc.mu.
func (pc *planCache) removeLocked(e *planEntry) {
	delete(pc.byKey, e.key)
	pc.lru.Remove(e.elem)
	e.dead.Store(true)
}

// size reports the number of live entries.
func (pc *planCache) size() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.byKey)
}

// planInfo is one entry's /plans listing.
type planInfo struct {
	SQL            string `json:"sql"`
	Policy         string `json:"policy"`
	Seed           int64  `json:"seed"`
	Shards         int    `json:"shards,omitempty"`
	Batch          int    `json:"batch,omitempty"`
	CatalogVersion uint64 `json:"catalog_version"`
	Hits           uint64 `json:"hits"`
	InFlight       int64  `json:"in_flight"`
}

// entries lists the cache in most-recently-used order.
func (pc *planCache) entries() []planInfo {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	out := make([]planInfo, 0, pc.lru.Len())
	for el := pc.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*planEntry)
		out = append(out, planInfo{
			SQL:            e.key.canon,
			Policy:         e.key.policy,
			Seed:           e.key.seed,
			Shards:         e.key.shards,
			Batch:          e.key.batch,
			CatalogVersion: e.version,
			Hits:           e.hits.Load(),
			InFlight:       e.refs.Load(),
		})
	}
	return out
}

// counters snapshots the cache-wide counters for /metrics.
func (pc *planCache) counters() (hits, misses, invalidations, evictions uint64) {
	return pc.hits.Load(), pc.misses.Load(), pc.invalidations.Load(), pc.evictions.Load()
}
