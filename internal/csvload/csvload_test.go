package csvload

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func TestLoadInfersKinds(t *testing.T) {
	tb, err := Load("people", strings.NewReader("id,name,age\n1,ann,30\n2,bob,41\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Schema.Name != "people" || tb.Schema.Arity() != 3 {
		t.Fatalf("schema = %+v", tb.Schema)
	}
	if tb.Schema.Cols[0].Kind != value.Int || tb.Schema.Cols[1].Kind != value.Str || tb.Schema.Cols[2].Kind != value.Int {
		t.Errorf("kinds = %v", tb.Schema.Cols)
	}
	if len(tb.Rows) != 2 || !tb.Rows[1][1].Equal(value.NewStr("bob")) {
		t.Errorf("rows = %v", tb.Rows)
	}
}

func TestLoadEmptyCellsAreNull(t *testing.T) {
	tb, err := Load("t", strings.NewReader("a,b\n1,\n,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Rows[0][1].IsNull() || !tb.Rows[1][0].IsNull() {
		t.Error("empty cells must load as NULL")
	}
	// Column kind inference ignores empties.
	if tb.Schema.Cols[0].Kind != value.Int {
		t.Error("kind inference must skip empty cells")
	}
}

func TestLoadMixedColumnIsString(t *testing.T) {
	tb, err := Load("t", strings.NewReader("a\n1\nx\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Schema.Cols[0].Kind != value.Str {
		t.Error("mixed column must be string")
	}
	if !tb.Rows[0][0].Equal(value.NewStr("1")) {
		t.Error("values must load as strings in a string column")
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		"",             // no header
		"a,a\n1,2\n",   // duplicate column
		"a, \n1,2\n",   // unnamed column
		"a,b\n1,2,3\n", // this one errors inside csv reader (field count)
	}
	for _, src := range cases {
		if _, err := Load("t", strings.NewReader(src)); err == nil {
			t.Errorf("%q: want error", src)
		}
	}
}

func TestLoadNegativeNumbers(t *testing.T) {
	tb, err := Load("t", strings.NewReader("a\n-3\n7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Schema.Cols[0].Kind != value.Int || tb.Rows[0][0].I != -3 {
		t.Error("negative integers must parse")
	}
}
