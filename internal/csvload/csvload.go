// Package csvload turns CSV files into engine sources: the header row names
// the columns, and a column whose every value parses as an integer becomes
// an integer column (otherwise a string column). This is the "Federated
// Facts and Figures" shape of data the paper's system was built to query —
// smallish Web-scale tables that fit in memory.
package csvload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/tuple"
	"repro/internal/value"
)

// Load reads CSV from r into a source table named name. The first record is
// the header.
func Load(name string, r io.Reader) (*source.Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("csvload: %s: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("csvload: %s: empty file (need a header row)", name)
	}
	header := records[0]
	if len(header) == 0 {
		return nil, fmt.Errorf("csvload: %s: empty header", name)
	}
	rows := records[1:]

	// Infer column kinds: integer iff every non-empty cell parses.
	isInt := make([]bool, len(header))
	for c := range header {
		isInt[c] = true
		for _, rec := range rows {
			if c >= len(rec) {
				continue
			}
			cell := strings.TrimSpace(rec[c])
			if cell == "" {
				continue
			}
			if _, err := strconv.ParseInt(cell, 10, 64); err != nil {
				isInt[c] = false
				break
			}
		}
	}

	cols := make([]schema.Column, len(header))
	for c, h := range header {
		h = strings.TrimSpace(h)
		if h == "" {
			return nil, fmt.Errorf("csvload: %s: column %d has no name", name, c)
		}
		if isInt[c] {
			cols[c] = schema.IntCol(h)
		} else {
			cols[c] = schema.StrCol(h)
		}
	}
	sch, err := schema.NewTable(name, cols...)
	if err != nil {
		return nil, fmt.Errorf("csvload: %s: %w", name, err)
	}

	out := make([]tuple.Row, 0, len(rows))
	for i, rec := range rows {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("csvload: %s: row %d has %d fields, want %d", name, i+1, len(rec), len(header))
		}
		row := make(tuple.Row, len(header))
		for c, cell := range rec {
			cell = strings.TrimSpace(cell)
			switch {
			case cell == "":
				row[c] = value.NewNull()
			case isInt[c]:
				v, _ := strconv.ParseInt(cell, 10, 64)
				row[c] = value.NewInt(v)
			default:
				row[c] = value.NewStr(cell)
			}
		}
		out = append(out, row)
	}
	return source.NewTable(sch, out)
}
