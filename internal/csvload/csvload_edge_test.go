package csvload

// Edge-case coverage for the CSV loader: quoting, line endings, ragged and
// degenerate inputs. The loader must either produce exactly the rows the CSV
// spec implies or fail loudly — never silently drop or mangle a field.

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func TestLoadQuotedFieldWithCommas(t *testing.T) {
	tb, err := Load("t", strings.NewReader("id,name\n1,\"Doe, Jane\"\n2,\"a,b,c\"\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Rows[0][1].Equal(value.NewStr("Doe, Jane")) || !tb.Rows[1][1].Equal(value.NewStr("a,b,c")) {
		t.Errorf("embedded commas mangled: %v", tb.Rows)
	}
}

func TestLoadQuotedFieldWithNewlines(t *testing.T) {
	tb, err := Load("t", strings.NewReader("id,note\n1,\"line one\nline two\"\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("embedded newline split the row: %d rows", len(tb.Rows))
	}
	if !tb.Rows[0][1].Equal(value.NewStr("line one\nline two")) {
		t.Errorf("embedded newline mangled: %v", tb.Rows[0][1])
	}
}

func TestLoadQuotedQuote(t *testing.T) {
	tb, err := Load("t", strings.NewReader("name\n\"O\"\"Brien\"\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Rows[0][0].Equal(value.NewStr(`O"Brien`)) {
		t.Errorf("escaped quote mangled: %v", tb.Rows[0][0])
	}
}

func TestLoadCRLF(t *testing.T) {
	tb, err := Load("t", strings.NewReader("a,b\r\n1,x\r\n2,y\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("CRLF input loaded %d rows, want 2", len(tb.Rows))
	}
	if tb.Schema.Cols[0].Kind != value.Int {
		t.Error("CR residue broke integer inference on the first column")
	}
	if !tb.Rows[1][1].Equal(value.NewStr("y")) {
		t.Errorf("CR residue left in last field: %q", tb.Rows[1][1])
	}
}

func TestLoadEmptyFile(t *testing.T) {
	if _, err := Load("t", strings.NewReader("")); err == nil {
		t.Error("empty file must error (no header row)")
	}
	if _, err := Load("t", strings.NewReader("\n")); err == nil {
		t.Error("blank-line-only file must error")
	}
}

func TestLoadHeaderOnly(t *testing.T) {
	tb, err := Load("t", strings.NewReader("a,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 0 || tb.Schema.Arity() != 2 {
		t.Errorf("header-only file: rows=%d arity=%d", len(tb.Rows), tb.Schema.Arity())
	}
}

func TestLoadRaggedRows(t *testing.T) {
	cases := []string{
		"a,b\n1\n",         // short row
		"a,b\n1,2,3\n",     // long row
		"a,b\n1,2\n3\n4,5", // ragged in the middle
	}
	for _, src := range cases {
		if _, err := Load("t", strings.NewReader(src)); err == nil {
			t.Errorf("%q: ragged rows must error, not load misaligned", src)
		}
	}
}

func TestLoadDuplicateHeaders(t *testing.T) {
	if _, err := Load("t", strings.NewReader("id,id\n1,2\n")); err == nil {
		t.Error("duplicate headers must error")
	}
	// Case-insensitive duplicates collide at bind time if allowed; the
	// schema layer decides — assert the loader surfaces whatever it does
	// deterministically rather than panicking.
	if _, err := Load("t", strings.NewReader("id,ID\n1,2\n")); err != nil {
		t.Logf("case-varying duplicate rejected: %v", err)
	}
}
