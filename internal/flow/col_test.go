package flow

import (
	"testing"

	"repro/internal/tuple"
	"repro/internal/value"
)

// mixedValues is one of every representable row value: ints, strings
// (dictionary-encoded), nulls, and EOT markers.
var mixedValues = []value.V{
	value.NewInt(7),
	value.NewStr("alpha"),
	value.NewNull(),
	value.NewEOT(),
	value.NewInt(-3),
	value.NewStr("alpha"), // repeated: one dictionary code, two rows
	value.NewStr("beta"),
}

func TestVecAppendValueRoundTrip(t *testing.T) {
	cases := [][]value.V{
		{value.NewInt(1), value.NewInt(2), value.NewInt(3)},
		{value.NewStr("x"), value.NewStr("y"), value.NewStr("x")},
		{value.NewNull(), value.NewInt(5)},     // null first, kind claimed late
		{value.NewEOT(), value.NewStr("z")},    // EOT first
		{value.NewInt(1), value.NewStr("mix")}, // kind conflict: boxed fallback
		{value.NewNull(), value.NewNull()},     // never claims a kind
		mixedValues,                            // everything at once: boxed
	}
	for ci, vals := range cases {
		var v Vec
		for _, x := range vals {
			v.AppendV(x)
		}
		if v.Len() != len(vals) {
			t.Fatalf("case %d: Len = %d, want %d", ci, v.Len(), len(vals))
		}
		for i, want := range vals {
			if got := v.ValueAt(i); !got.Equal(want) || got.K != want.K {
				t.Errorf("case %d row %d: ValueAt = %+v, want %+v", ci, i, got, want)
			}
		}
	}
}

func TestVecKindAdaptation(t *testing.T) {
	var v Vec
	v.AppendV(value.NewNull())
	v.AppendV(value.NewInt(4))
	if v.Kind != value.Int {
		t.Fatalf("int after null: Kind = %v, want Int", v.Kind)
	}
	v.AppendV(value.NewStr("boom"))
	if v.Kind != KindBoxed {
		t.Fatalf("str after int: Kind = %#x, want KindBoxed", v.Kind)
	}
	// Boxed storage must preserve all earlier rows.
	for i, want := range []value.V{value.NewNull(), value.NewInt(4), value.NewStr("boom")} {
		if got := v.ValueAt(i); !got.Equal(want) {
			t.Errorf("boxed row %d: %+v want %+v", i, got, want)
		}
	}
}

func TestVecBitmaps(t *testing.T) {
	var v Vec
	// Row 70 forces a second bitmap word.
	for i := 0; i < 100; i++ {
		switch {
		case i == 3 || i == 70:
			v.AppendV(value.NewNull())
		case i == 5 || i == 67:
			v.AppendV(value.NewEOT())
		default:
			v.AppendV(value.NewInt(int64(i)))
		}
	}
	for i := 0; i < 100; i++ {
		got := v.ValueAt(i)
		switch {
		case i == 3 || i == 70:
			if got.K != value.Null {
				t.Errorf("row %d: %+v want null", i, got)
			}
		case i == 5 || i == 67:
			if !got.IsEOT() {
				t.Errorf("row %d: %+v want EOT", i, got)
			}
		default:
			if got.K != value.Int || got.I != int64(i) {
				t.Errorf("row %d: %+v want int %d", i, got, i)
			}
		}
	}
}

// TestVecHashIdentity pins the columnar hash contract: Hash64At and
// HashValInto must agree byte-for-byte with the boxed value hashes, since
// SteM bucket placement mixes both paths.
func TestVecHashIdentity(t *testing.T) {
	var v Vec
	for _, x := range mixedValues {
		v.AppendV(x)
	}
	for i := range mixedValues {
		want := v.ValueAt(i).Hash64()
		if got := v.Hash64At(i); got != want {
			t.Errorf("row %d: Hash64At = %#x, want %#x", i, got, want)
		}
		wantC := v.ValueAt(i).HashInto(12345)
		if got := v.HashValInto(12345, i); got != wantC {
			t.Errorf("row %d: HashValInto = %#x, want %#x", i, got, wantC)
		}
	}
	// Dictionary path specifically (no boxed fallback).
	var s Vec
	s.AppendV(value.NewStr("a"))
	s.AppendV(value.NewStr("b"))
	s.AppendV(value.NewStr("a"))
	for i := 0; i < 3; i++ {
		if got, want := s.Hash64At(i), s.ValueAt(i).Hash64(); got != want {
			t.Errorf("dict row %d: %#x want %#x", i, got, want)
		}
	}
}

func TestColBatchSelection(t *testing.T) {
	cb := NewColBatch(1)
	cb.Span = tuple.Single(0)
	tab := cb.EnsureCols(0, 1)
	for i := 0; i < 5; i++ {
		tab.Cols[0].AppendInt(int64(i))
	}
	cb.SetRowCount(5)
	if cb.Rows() != 5 || cb.RowAt(2) != 2 {
		t.Fatalf("no selection: Rows=%d RowAt(2)=%d", cb.Rows(), cb.RowAt(2))
	}
	sel := cb.EnsureSel()
	if len(sel) != 5 {
		t.Fatalf("EnsureSel len = %d", len(sel))
	}
	// Filter in place: keep odd rows.
	out := sel[:0]
	for _, i := range sel {
		if i%2 == 1 {
			out = append(out, i)
		}
	}
	cb.Sel = out
	if cb.Rows() != 2 || cb.RowAt(0) != 1 || cb.RowAt(1) != 3 {
		t.Fatalf("filtered: Rows=%d RowAt=%d,%d", cb.Rows(), cb.RowAt(0), cb.RowAt(1))
	}
}

func TestColBatchPoolRetainsCapacity(t *testing.T) {
	cb := GetColBatch(2)
	cb.Span = tuple.Single(0)
	tab := cb.EnsureCols(0, 1)
	for i := 0; i < 64; i++ {
		tab.Cols[0].AppendInt(int64(i))
	}
	cb.SetRowCount(64)
	cb.EnsureSel()
	PutColBatch(cb)
	// The pool is not guaranteed to hand the same shell back, but a reset
	// batch must be empty and safe to refill whatever its capacity reuse.
	cb2 := GetColBatch(2)
	if cb2.Rows() != 0 || cb2.Sel != nil || len(cb2.Visits) != 0 {
		t.Fatalf("pooled batch not reset: rows=%d sel=%v visits=%v", cb2.Rows(), cb2.Sel, cb2.Visits)
	}
	cb2.Span = tuple.Single(1)
	tab = cb2.EnsureCols(1, 1)
	tab.Cols[0].AppendV(value.NewStr("fresh"))
	cb2.SetRowCount(1)
	if got := cb2.Value(1, 0, 0); !got.Equal(value.NewStr("fresh")) {
		t.Fatalf("refilled value = %+v", got)
	}
	PutColBatch(cb2)
}

func TestColBatchHeaderCopyAndMerge(t *testing.T) {
	src := NewColBatch(2)
	src.Span = tuple.Single(0)
	src.Done = 3
	src.Built = tuple.Single(0)
	src.HasMatches = true
	src.LastMatchTS = 42
	src.Visits = []uint16{1, 2}
	tab := src.EnsureCols(0, 2)
	for i := 0; i < 4; i++ {
		tab.Cols[0].AppendInt(int64(i))
		tab.Cols[1].AppendV(value.NewStr("s"))
		src.SetTS(0, i, tuple.Timestamp(100+i))
	}
	src.SetRowCount(4)

	dst := NewColBatch(2)
	dst.CopyHeaderFrom(src)
	if !dst.SameHeader(src) {
		t.Fatal("CopyHeaderFrom result fails SameHeader")
	}
	// Visits must be a private clone: split batches advance independently.
	dst.Visits[0]++
	if src.Visits[0] != 1 {
		t.Fatal("CopyHeaderFrom aliased Visits")
	}
	if dst.SameHeader(src) {
		t.Fatal("SameHeader ignores Visits divergence")
	}
	dst.Visits[0]--

	// Merge only src's live rows (selection {1,3}) and keep TS alignment.
	src.Sel = []int32{1, 3}
	dst.AppendAllFrom(src)
	if dst.N() != 2 {
		t.Fatalf("merged rows = %d", dst.N())
	}
	if got := dst.Value(0, 0, 0); got.I != 1 {
		t.Errorf("merged row 0 = %+v", got)
	}
	if got := dst.TSAt(0, 1); got != 103 {
		t.Errorf("merged TS = %d, want 103", got)
	}
	// Unset timestamps read as InfTS (lazily grown TS vectors).
	if got := dst.TSAt(1, 0); got != tuple.InfTS {
		t.Errorf("absent TS = %d, want InfTS", got)
	}
}

func TestColBatchMaterializeRoundTrip(t *testing.T) {
	cb := NewColBatch(2)
	cb.Span = tuple.Single(0).With(1)
	cb.Done = 1
	cb.Built = tuple.Single(1)
	cb.HasMatches = true
	cb.Visits = []uint16{0, 5, 0}
	t0 := cb.EnsureCols(0, 2)
	t1 := cb.EnsureCols(1, 1)
	rows := [][]value.V{
		{value.NewInt(10), value.NewStr("a"), value.NewStr("k")},
		{value.NewNull(), value.NewStr("b"), value.NewEOT()},
		{value.NewInt(12), value.NewNull(), value.NewStr("k")},
	}
	for i, r := range rows {
		t0.Cols[0].AppendV(r[0])
		t0.Cols[1].AppendV(r[1])
		t1.Cols[0].AppendV(r[2])
		cb.SetTS(0, i, tuple.Timestamp(i+1))
		cb.SetTS(1, i, tuple.Timestamp(50+i))
	}
	cb.SetRowCount(3)
	cb.Sel = []int32{0, 2} // drop the middle row

	ts := cb.Materialize()
	if len(ts) != 2 {
		t.Fatalf("materialized %d tuples, want 2", len(ts))
	}
	for k, i := range []int{0, 2} {
		tp := ts[k]
		if tp.Span != cb.Span || tp.Done != cb.Done || tp.Built != cb.Built {
			t.Errorf("tuple %d header: %+v", k, tp)
		}
		if tp.LastProbeMatches != 1 {
			t.Errorf("tuple %d LastProbeMatches = %d", k, tp.LastProbeMatches)
		}
		wantRow := rows[i]
		got := []value.V{tp.Comp[0][0], tp.Comp[0][1], tp.Comp[1][0]}
		for c := range wantRow {
			if !got[c].Equal(wantRow[c]) || got[c].K != wantRow[c].K {
				t.Errorf("tuple %d col %d: %+v want %+v", k, c, got[c], wantRow[c])
			}
		}
		if tp.CompTS[0] != tuple.Timestamp(i+1) || tp.CompTS[1] != tuple.Timestamp(50+i) {
			t.Errorf("tuple %d TS: %v", k, tp.CompTS)
		}
		// Private visit clone per tuple.
		tp.Visits[1]++
		if cb.Visits[1] != 5 {
			t.Fatal("Materialize aliased Visits")
		}
		tp.Visits[1]--
	}
}

func TestColBatchRowTS(t *testing.T) {
	cb := NewColBatch(2)
	cb.Span = tuple.Single(0).With(1)
	cb.EnsureCols(0, 1)
	cb.EnsureCols(1, 1)
	cb.Tabs[0].Cols[0].AppendInt(1)
	cb.Tabs[1].Cols[0].AppendInt(2)
	cb.SetRowCount(1)
	if got := cb.RowTS(0); got != tuple.InfTS {
		t.Fatalf("unbuilt RowTS = %d, want InfTS", got)
	}
	cb.SetTS(0, 0, 7)
	cb.SetTS(1, 0, 9)
	if got := cb.RowTS(0); got != 9 {
		t.Fatalf("RowTS = %d, want 9 (max component)", got)
	}
}
