// col.go defines the columnar batch representation of the dataflow hot path.
//
// A ColBatch carries the same information as a Batch of row tuples, laid out
// as typed per-column vectors instead of per-tuple []value.V rows: int64
// columns as []int64, string columns dictionary-encoded as codes into a
// per-vector dictionary, and null / EOT markers as bitmaps. A selection
// vector lets filters and hash-with-verify misses drop rows without copying
// any column data, and the routing state the eddy consults (span, done bits,
// built bits, prior-prober lineage, visit counts) is a single shared header —
// every row of a ColBatch has routed together its whole life, so the state is
// uniform by construction and the eddy routes the batch with one decision.
//
// ColBatches are an engine optimization, not a semantic change: Materialize
// converts any ColBatch back into row tuples (the inverse of the Lift shim's
// direction), and engines that do not know about columns — the deterministic
// simulator, the batch-size-1 configuration — never see one. Tuples with
// non-uniform identity (seeds, EOT markers) always travel as rows.
package flow

import (
	"sync"

	"repro/internal/clock"
	"repro/internal/tuple"
	"repro/internal/value"
)

// KindBoxed marks a vector that fell back to boxed value.V storage because
// its rows mixed scalar kinds beyond what null/EOT bitmaps express. It is
// outside the value.Kind enum on purpose.
const KindBoxed value.Kind = 0xff

// Vec is one typed column vector. The dominant Kind selects the backing
// array (Ints for value.Int, Codes+Dict for value.Str); rows that are Null or
// EOT markers are flagged in the bitmaps and hold a zero filler in the typed
// array. A vector whose rows mix incompatible kinds degrades to KindBoxed
// with per-row value.V storage, so correctness never depends on schema
// discipline.
type Vec struct {
	Kind value.Kind
	Ints []int64
	// Codes index Dict; parallel to the row count when Kind == value.Str.
	Codes []int32
	Dict  *StrDict
	// Vals is the boxed fallback storage (Kind == KindBoxed).
	Vals []value.V
	// Null and EOT flag rows whose logical value is the null value or the
	// End-Of-Transmission marker; both bitmaps grow lazily to the highest set
	// bit, so all-absent columns cost nothing.
	Null []uint64
	EOT  []uint64

	n int
}

// StrDict is a per-vector string dictionary: codes are dense indexes into
// strs, and the FNV-1a value hash of each entry is computed once, so hashing
// a dictionary-encoded key column is an array lookup per row.
type StrDict struct {
	strs   []string
	idx    map[string]int32
	hashes []uint64
}

func (d *StrDict) code(s string) int32 {
	if d.idx == nil {
		d.idx = make(map[string]int32)
	}
	if c, ok := d.idx[s]; ok {
		return c
	}
	c := int32(len(d.strs))
	d.strs = append(d.strs, s)
	d.idx[s] = c
	d.hashes = append(d.hashes, value.NewStr(s).Hash64())
	return c
}

// Len returns the number of distinct strings.
func (d *StrDict) Len() int { return len(d.strs) }

// At returns the string for a code.
func (d *StrDict) At(c int32) string { return d.strs[c] }

func (d *StrDict) reset() {
	d.strs = d.strs[:0]
	d.hashes = d.hashes[:0]
	clear(d.idx)
}

// bitSet sets bit i, growing the word slice with zeroed words as needed.
func bitSet(words *[]uint64, i int) {
	w := i >> 6
	for len(*words) <= w {
		*words = append(*words, 0)
	}
	(*words)[w] |= 1 << uint(i&63)
}

// bitGet reports bit i; out-of-range bits are unset (lazily grown bitmaps).
func bitGet(words []uint64, i int) bool {
	w := i >> 6
	return w < len(words) && words[w]&(1<<uint(i&63)) != 0
}

// Len returns the vector's physical row count.
func (v *Vec) Len() int { return v.n }

func (v *Vec) reset() {
	v.Kind = value.Null
	v.Ints = v.Ints[:0]
	v.Codes = v.Codes[:0]
	v.Vals = v.Vals[:0]
	v.Null = v.Null[:0]
	v.EOT = v.EOT[:0]
	v.n = 0
	if v.Dict != nil {
		v.Dict.reset()
	}
}

// filler appends the zero slot for a row whose value lives in a bitmap (or
// in boxed storage), keeping the typed arrays parallel to the row count.
func (v *Vec) filler() {
	switch v.Kind {
	case value.Int:
		v.Ints = append(v.Ints, 0)
	case value.Str:
		v.Codes = append(v.Codes, 0)
	}
}

// box converts the vector to boxed storage, preserving every row.
func (v *Vec) box() {
	vals := make([]value.V, v.n)
	for i := 0; i < v.n; i++ {
		vals[i] = v.ValueAt(i)
	}
	v.Vals = vals
	v.Kind = KindBoxed
	v.Ints = v.Ints[:0]
	v.Codes = v.Codes[:0]
	v.Null = v.Null[:0]
	v.EOT = v.EOT[:0]
}

// AppendV appends one value, adapting the vector's representation: the first
// scalar kind claims the typed array, nulls and EOT markers go to bitmaps,
// and any later kind conflict degrades the vector to boxed storage.
func (v *Vec) AppendV(x value.V) {
	if v.Kind == KindBoxed {
		v.Vals = append(v.Vals, x)
		v.n++
		return
	}
	switch x.K {
	case value.Null:
		bitSet(&v.Null, v.n)
		v.filler()
	case value.EOTMark:
		bitSet(&v.EOT, v.n)
		v.filler()
	case value.Int:
		if v.Kind == value.Null {
			v.Kind = value.Int
			for i := 0; i < v.n; i++ {
				v.Ints = append(v.Ints, 0)
			}
		}
		if v.Kind != value.Int {
			v.box()
			v.Vals = append(v.Vals, x)
			v.n++
			return
		}
		v.Ints = append(v.Ints, x.I)
	case value.Str:
		if v.Kind == value.Null {
			v.Kind = value.Str
			if v.Dict == nil {
				v.Dict = &StrDict{}
			}
			for i := 0; i < v.n; i++ {
				v.Codes = append(v.Codes, 0)
			}
		}
		if v.Kind != value.Str {
			v.box()
			v.Vals = append(v.Vals, x)
			v.n++
			return
		}
		v.Codes = append(v.Codes, v.Dict.code(x.S))
	}
	v.n++
}

// AppendInt appends an integer without boxing.
func (v *Vec) AppendInt(i int64) { v.AppendV(value.V{K: value.Int, I: i}) }

// ValueAt returns row i as a value.V. It allocates nothing.
func (v *Vec) ValueAt(i int) value.V {
	if v.Kind == KindBoxed {
		return v.Vals[i]
	}
	if bitGet(v.EOT, i) {
		return value.V{K: value.EOTMark}
	}
	if bitGet(v.Null, i) {
		return value.V{}
	}
	switch v.Kind {
	case value.Int:
		return value.V{K: value.Int, I: v.Ints[i]}
	case value.Str:
		return value.V{K: value.Str, S: v.Dict.strs[v.Codes[i]]}
	default:
		return value.V{}
	}
}

// Hash64At returns the FNV-1a value hash of row i, identical to
// ValueAt(i).Hash64() — dictionary-encoded strings answer from the
// precomputed per-code table instead of rehashing bytes.
func (v *Vec) Hash64At(i int) uint64 {
	if v.Kind == value.Str && !bitGet(v.Null, i) && !bitGet(v.EOT, i) {
		return v.Dict.hashes[v.Codes[i]]
	}
	return v.ValueAt(i).Hash64()
}

// HashValInto folds row i's value into FNV-1a state h, identical to
// ValueAt(i).HashInto(h); row-hash chains (SteM build dedup) use it to hash
// a vector row without boxing the values.
func (v *Vec) HashValInto(h uint64, i int) uint64 {
	return v.ValueAt(i).HashInto(h)
}

// ColTable holds one spanned table's columns plus the per-row build
// timestamps of that component. TS may be shorter than the row count (or
// empty): rows past its end are unbuilt, i.e. timestamp InfTS.
type ColTable struct {
	Cols []Vec
	TS   []tuple.Timestamp
}

// ColBatch is a columnar batch: n physical rows over the tables of Span,
// an optional selection vector restricting which rows are live, and one
// shared routing-state header (see the package comment for why it can be
// shared). The zero ColBatch is empty.
type ColBatch struct {
	// NTables is the query's table count (the length of Tabs).
	NTables int
	Span    tuple.TableSet
	Done    tuple.PredSet
	Built   tuple.TableSet

	PriorProber bool
	ProbeTable  int
	AMProbed    bool
	// HasMatches is the batch-uniform LastProbeMatches signal policies read;
	// SteMs split bounced batches so it stays uniform.
	HasMatches bool
	// LastMatchTS is the batch-uniform repeat-probe guard (§3.5); a SteM
	// bounce assigns one value to the whole batch, exactly as the row path
	// assigns the same shard high-water mark to every tuple of a run.
	LastMatchTS tuple.Timestamp
	// Visits is the shared BoundedRepetition counter vector; materialized
	// rows receive private clones.
	Visits []uint16

	n   int
	Sel []int32
	// sel retains the selection vector's capacity across Reset so pooled
	// batches refilter without reallocating.
	sel  []int32
	Tabs []ColTable
}

// NewColBatch returns an empty columnar batch shaped for nTables tables.
func NewColBatch(nTables int) *ColBatch {
	cb := &ColBatch{}
	cb.shape(nTables)
	return cb
}

// shape sizes Tabs for nTables, reusing capacity.
func (cb *ColBatch) shape(nTables int) {
	cb.NTables = nTables
	if cap(cb.Tabs) < nTables {
		cb.Tabs = make([]ColTable, nTables)
	} else {
		cb.Tabs = cb.Tabs[:nTables]
	}
}

// Reset empties the batch for reuse, retaining allocated capacity.
func (cb *ColBatch) Reset() {
	for t := range cb.Tabs {
		tab := &cb.Tabs[t]
		for c := range tab.Cols {
			tab.Cols[c].reset()
		}
		tab.Cols = tab.Cols[:0]
		tab.TS = tab.TS[:0]
	}
	cb.Tabs = cb.Tabs[:0]
	cb.NTables = 0
	cb.Span = 0
	cb.Done = 0
	cb.Built = 0
	cb.PriorProber = false
	cb.ProbeTable = 0
	cb.AMProbed = false
	cb.HasMatches = false
	cb.LastMatchTS = 0
	cb.Visits = cb.Visits[:0]
	cb.n = 0
	cb.sel = cb.Sel[:0]
	cb.Sel = nil
}

// N returns the physical row count.
func (cb *ColBatch) N() int { return cb.n }

// SetRowCount declares the physical row count after columns were filled by
// direct vector appends (which do not touch the batch-level counter).
func (cb *ColBatch) SetRowCount(n int) { cb.n = n }

// Rows returns the live row count (the selection's length, or every
// physical row when no selection vector is installed).
func (cb *ColBatch) Rows() int {
	if cb.Sel != nil {
		return len(cb.Sel)
	}
	return cb.n
}

// RowAt maps live position k to its physical row index.
func (cb *ColBatch) RowAt(k int) int {
	if cb.Sel != nil {
		return int(cb.Sel[k])
	}
	return k
}

// EnsureSel installs an explicit identity selection vector (reusing pooled
// capacity) and returns it, so callers can filter it in place.
func (cb *ColBatch) EnsureSel() []int32 {
	if cb.Sel != nil {
		return cb.Sel
	}
	if cap(cb.sel) < cb.n {
		cb.sel = make([]int32, cb.n)
	} else {
		cb.sel = cb.sel[:cb.n]
	}
	for i := range cb.sel {
		cb.sel[i] = int32(i)
	}
	cb.Sel = cb.sel
	return cb.Sel
}

// EnsureCols sizes table t's column vector list to arity, reusing capacity.
func (cb *ColBatch) EnsureCols(t, arity int) *ColTable {
	tab := &cb.Tabs[t]
	if cap(tab.Cols) < arity {
		tab.Cols = make([]Vec, arity)
	} else {
		tab.Cols = tab.Cols[:arity]
	}
	return tab
}

// TSAt returns the build timestamp of row i's component of table t.
func (cb *ColBatch) TSAt(t, i int) tuple.Timestamp {
	ts := cb.Tabs[t].TS
	if i >= len(ts) {
		return tuple.InfTS
	}
	return ts[i]
}

// SetTS records the build timestamp of row i's component of table t,
// padding unrecorded earlier rows with InfTS.
func (cb *ColBatch) SetTS(t, i int, ts tuple.Timestamp) {
	tab := &cb.Tabs[t]
	for len(tab.TS) <= i {
		tab.TS = append(tab.TS, tuple.InfTS)
	}
	tab.TS[i] = ts
}

// RowTS returns the tuple timestamp of physical row i: the maximum component
// build timestamp over the span, or InfTS if any spanned component is
// unbuilt — exactly tuple.Tuple.TS.
func (cb *ColBatch) RowTS(i int) tuple.Timestamp {
	var max tuple.Timestamp
	for t := range cb.Span.Each {
		ts := cb.TSAt(t, i)
		if ts == tuple.InfTS {
			return tuple.InfTS
		}
		if ts > max {
			max = ts
		}
	}
	return max
}

// Value returns column col of table t at physical row i.
func (cb *ColBatch) Value(t, col, i int) value.V {
	return cb.Tabs[t].Cols[col].ValueAt(i)
}

// SameHeader reports whether two batches share identical routing state, the
// precondition for merging them into one coalesced batch.
func (cb *ColBatch) SameHeader(o *ColBatch) bool {
	if cb.NTables != o.NTables || cb.Span != o.Span || cb.Done != o.Done ||
		cb.Built != o.Built || cb.PriorProber != o.PriorProber ||
		cb.ProbeTable != o.ProbeTable || cb.AMProbed != o.AMProbed ||
		cb.HasMatches != o.HasMatches || cb.LastMatchTS != o.LastMatchTS ||
		len(cb.Visits) != len(o.Visits) {
		return false
	}
	for i, v := range cb.Visits {
		if o.Visits[i] != v {
			return false
		}
	}
	return true
}

// CopyHeaderFrom copies the routing-state header (not the rows) of src.
func (cb *ColBatch) CopyHeaderFrom(src *ColBatch) {
	cb.shape(src.NTables)
	cb.Span = src.Span
	cb.Done = src.Done
	cb.Built = src.Built
	cb.PriorProber = src.PriorProber
	cb.ProbeTable = src.ProbeTable
	cb.AMProbed = src.AMProbed
	cb.HasMatches = src.HasMatches
	cb.LastMatchTS = src.LastMatchTS
	cb.Visits = append(cb.Visits[:0], src.Visits...)
	for t := range src.Span.Each {
		cb.EnsureCols(t, len(src.Tabs[t].Cols))
	}
}

// AppendRowFrom gathers physical row i of src (which must span the same
// tables with the same arities) onto the end of cb.
func (cb *ColBatch) AppendRowFrom(src *ColBatch, i int) {
	for t := range src.Span.Each {
		stab := &src.Tabs[t]
		for c := range stab.Cols {
			cb.Tabs[t].Cols[c].AppendV(stab.Cols[c].ValueAt(i))
		}
		if ts := src.TSAt(t, i); ts != tuple.InfTS {
			cb.SetTS(t, cb.n, ts)
		}
	}
	// A destination with an explicit selection stays consistent: the new
	// physical row is live.
	if cb.Sel != nil {
		cb.Sel = append(cb.Sel, int32(cb.n))
	}
	cb.n++
}

// AppendAllFrom gathers every live row of src onto cb (the coalescing merge).
func (cb *ColBatch) AppendAllFrom(src *ColBatch) {
	for k := 0; k < src.Rows(); k++ {
		cb.AppendRowFrom(src, src.RowAt(k))
	}
}

// Materialize converts the live rows into row-representation tuples — the
// inverse of the Lift direction. All backing storage (tuples, component
// slices, values, cloned visit vectors) is slab-allocated: a handful of
// allocations per batch instead of several per tuple.
func (cb *ColBatch) Materialize() []*tuple.Tuple {
	live := cb.Rows()
	if live == 0 {
		return nil
	}
	nt := cb.NTables
	arity := 0
	for t := range cb.Span.Each {
		arity += len(cb.Tabs[t].Cols)
	}
	tupSlab := make([]tuple.Tuple, live)
	compSlab := make([]tuple.Row, live*nt)
	tsSlab := make([]tuple.Timestamp, live*nt)
	valSlab := make([]value.V, live*arity)
	var visitSlab []uint16
	if len(cb.Visits) > 0 {
		visitSlab = make([]uint16, live*len(cb.Visits))
	}
	out := make([]*tuple.Tuple, live)
	vi := 0
	for k := 0; k < live; k++ {
		i := cb.RowAt(k)
		tp := &tupSlab[k]
		tp.Comp = compSlab[k*nt : (k+1)*nt : (k+1)*nt]
		tp.CompTS = tsSlab[k*nt : (k+1)*nt : (k+1)*nt]
		for t := 0; t < nt; t++ {
			tp.CompTS[t] = tuple.InfTS
		}
		for t := range cb.Span.Each {
			tab := &cb.Tabs[t]
			w := len(tab.Cols)
			row := valSlab[vi : vi+w : vi+w]
			vi += w
			for c := range tab.Cols {
				row[c] = tab.Cols[c].ValueAt(i)
			}
			tp.Comp[t] = row
			tp.CompTS[t] = cb.TSAt(t, i)
		}
		tp.Span = cb.Span
		tp.Done = cb.Done
		tp.Built = cb.Built
		tp.PriorProber = cb.PriorProber
		tp.ProbeTable = cb.ProbeTable
		tp.AMProbed = cb.AMProbed
		tp.LastMatchTS = cb.LastMatchTS
		if cb.HasMatches {
			tp.LastProbeMatches = 1
		}
		if visitSlab != nil {
			v := visitSlab[k*len(cb.Visits) : (k+1)*len(cb.Visits)]
			copy(v, cb.Visits)
			tp.Visits = v
		}
		out[k] = tp
	}
	return out
}

// ColEmission is one columnar batch emitted by a module, delivered back to
// the eddy after Delay (mirroring Emission for rows).
type ColEmission struct {
	B     *ColBatch
	Delay clock.Duration
}

// ColModule is a module that can exchange columnar batches with a
// columnar-aware engine. ProcessColBatch services one batch whose payload is
// either columnar (b.Col != nil) or rows, returning row emissions for
// tuples whose state diverged plus columnar emissions for the bulk, with
// the total sequential service cost. Engines that do not know about columns
// simply call Process/ProcessBatch and never observe a difference.
type ColModule interface {
	Module
	ProcessColBatch(b *Batch, now clock.Time) (rows []Emission, cols []ColEmission, cost clock.Duration)
}

// ColSharded is a sharded module that services columnar batches per shard.
// ShardOfCol mirrors ShardOf for one live row; a batch whose rows address no
// single shard reports ShardAny for every row (probe-side bindings are
// span-determined, hence batch-uniform).
type ColSharded interface {
	Sharded
	ColModule
	ShardOfCol(cb *ColBatch, i int) int
	ProcessColShard(shard int, b *Batch, now clock.Time) (rows []Emission, cols []ColEmission, cost clock.Duration)
}

// colPool recycles ColBatch shells and their vector storage; Reset keeps
// capacity so steady-state columnar dataflow allocates no vector memory.
var colPool = sync.Pool{New: func() any { return &ColBatch{} }}

// GetColBatch returns an empty pooled batch shaped for nTables tables.
func GetColBatch(nTables int) *ColBatch {
	cb := colPool.Get().(*ColBatch)
	cb.shape(nTables)
	return cb
}

// PutColBatch resets cb and returns it to the pool. Callers must not retain
// any reference into the batch afterwards.
func PutColBatch(cb *ColBatch) {
	cb.Reset()
	colPool.Put(cb)
}
