package flow

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/tuple"
)

func TestEmitConstructors(t *testing.T) {
	tp := tuple.NewSingleton(2, 0, tuple.Row{})
	e := Emit(tp)
	if e.T != tp || e.Delay != 0 {
		t.Fatalf("Emit = %+v, want tuple with zero delay", e)
	}
	d := EmitAfter(tp, 5*clock.Millisecond)
	if d.T != tp || d.Delay != 5*clock.Millisecond {
		t.Fatalf("EmitAfter = %+v, want tuple with 5ms delay", d)
	}
}

func TestBatchHelpers(t *testing.T) {
	b := NewBatch(4)
	if b.Len() != 0 {
		t.Fatalf("NewBatch Len = %d, want 0", b.Len())
	}
	t1 := tuple.NewSingleton(2, 0, tuple.Row{})
	t2 := tuple.NewSingleton(2, 1, tuple.Row{})
	b.Add(t1)
	b.Add(t2)
	if b.Len() != 2 {
		t.Fatalf("Len after two Adds = %d, want 2", b.Len())
	}
	if !b.Contains(t1) || !b.Contains(t2) {
		t.Fatal("Contains should find both added tuples")
	}
	if b.Contains(tuple.NewSingleton(2, 0, tuple.Row{})) {
		t.Fatal("Contains matched a foreign tuple (identity, not value, expected)")
	}
	b.Reset()
	if b.Len() != 0 || b.Contains(t1) {
		t.Fatal("Reset should empty the batch")
	}

	bo := BatchOf(t1, t2)
	if bo.Len() != 2 || bo.Tuples[0] != t1 || bo.Tuples[1] != t2 {
		t.Fatalf("BatchOf order/content wrong: %v", bo.Tuples)
	}
}

// recorder is a per-tuple module that records service times, emits every
// tuple straight back, and drops tuples marked by dropSpan.
type recorder struct {
	cost     clock.Duration
	dropSpan tuple.TableSet
	nows     []clock.Time
}

func (r *recorder) Name() string  { return "recorder" }
func (r *recorder) Parallel() int { return 1 }

func (r *recorder) Process(t *tuple.Tuple, now clock.Time) ([]Emission, clock.Duration) {
	r.nows = append(r.nows, now)
	if t.Span == r.dropSpan {
		return nil, r.cost
	}
	return []Emission{Emit(t)}, r.cost
}

// nativeBatch implements BatchModule natively; Lift must return it as-is.
type nativeBatch struct{ recorder }

func (n *nativeBatch) ProcessBatch(b *Batch, now clock.Time) ([]Emission, clock.Duration) {
	out := make([]Emission, 0, b.Len())
	for _, t := range b.Tuples {
		out = append(out, Emit(t))
	}
	return out, clock.Duration(b.Len()) * n.cost
}

func TestLiftPassesNativeBatchModulesThrough(t *testing.T) {
	n := &nativeBatch{}
	if got := Lift(n); got != BatchModule(n) {
		t.Fatalf("Lift(native) = %T, want the module itself", got)
	}
}

func TestLiftShimProcessesSequentially(t *testing.T) {
	r := &recorder{cost: 3 * clock.Microsecond, dropSpan: tuple.Single(1)}
	bm := Lift(r)

	keep1 := tuple.NewSingleton(2, 0, tuple.Row{})
	drop := tuple.NewSingleton(2, 1, tuple.Row{})
	keep2 := tuple.NewSingleton(2, 0, tuple.Row{})
	start := clock.Time(0).Add(10 * clock.Microsecond)
	ems, cost := bm.ProcessBatch(BatchOf(keep1, drop, keep2), start)

	if want := 3 * 3 * clock.Microsecond; cost != want {
		t.Fatalf("batch cost = %v, want summed per-tuple cost %v", cost, want)
	}
	if len(ems) != 2 || ems[0].T != keep1 || ems[1].T != keep2 {
		t.Fatalf("emissions = %v, want keep1 and keep2 in order", ems)
	}
	// Each tuple is served at the virtual time the previous one completed.
	want := []clock.Time{start, start.Add(3 * clock.Microsecond), start.Add(6 * clock.Microsecond)}
	if len(r.nows) != len(want) {
		t.Fatalf("served %d tuples, want %d", len(r.nows), len(want))
	}
	for i, at := range r.nows {
		if at != want[i] {
			t.Fatalf("tuple %d served at %v, want %v", i, at, want[i])
		}
	}
	// The shim must keep exposing the wrapped module's identity.
	if bm.Name() != "recorder" || bm.Parallel() != 1 {
		t.Fatalf("shim identity = %q/%d, want recorder/1", bm.Name(), bm.Parallel())
	}
}

func TestLiftShimBatchOfOneMatchesProcess(t *testing.T) {
	single := &recorder{cost: 2 * clock.Microsecond}
	tp := tuple.NewSingleton(2, 0, tuple.Row{})
	at := clock.Time(0).Add(7 * clock.Microsecond)
	wantEms, wantCost := single.Process(tp, at)

	batched := &recorder{cost: 2 * clock.Microsecond}
	gotEms, gotCost := Lift(batched).ProcessBatch(BatchOf(tp), at)

	if gotCost != wantCost {
		t.Fatalf("cost = %v, want %v", gotCost, wantCost)
	}
	if len(gotEms) != len(wantEms) || gotEms[0].T != wantEms[0].T {
		t.Fatalf("emissions differ: %v vs %v", gotEms, wantEms)
	}
	if batched.nows[0] != single.nows[0] {
		t.Fatalf("service time differs: %v vs %v", batched.nows[0], single.nows[0])
	}
}
