// Package flow defines the engine-agnostic module contract.
//
// Every query module other than the eddy — selection modules, access modules,
// and State Modules — implements Module: a reactive state machine that
// consumes one tuple and emits zero or more tuples back to the eddy, each
// tagged with a delay modelling the physical work (hash probe cost, remote
// index latency, scan pacing). Both engines drive the same modules: the
// discrete-event simulator turns emissions into scheduled events; the
// concurrent engine turns them into channel sends after timed waits.
package flow

import (
	"repro/internal/clock"
	"repro/internal/tuple"
)

// Emission is one output tuple of a module, delivered back to the eddy after
// Delay has elapsed past the module's processing completion.
type Emission struct {
	T *tuple.Tuple
	// Delay is extra latency beyond the module's service time, e.g. the
	// round-trip of an asynchronous remote index lookup.
	Delay clock.Duration
}

// Emit is a convenience constructor for an immediate emission.
func Emit(t *tuple.Tuple) Emission { return Emission{T: t} }

// EmitAfter is a convenience constructor for a delayed emission.
func EmitAfter(t *tuple.Tuple, d clock.Duration) Emission { return Emission{T: t, Delay: d} }

// Module is a query processing module driven by the eddy.
//
// Process consumes the tuple and returns the emissions it generates together
// with the service cost of processing it. A tuple that appears in no emission
// has been removed from the dataflow by the module (e.g. a selection dropped
// it, or a SteM consumed a duplicate build). Process must not retain t after
// returning unless it also stores it internally on purpose (SteMs do).
//
// Parallel reports the module's internal concurrency: 1 for a single-server
// module whose queue exhibits head-of-line blocking (the effect Section 4.2
// demonstrates inside the index join), or >1 for modules that overlap work,
// such as access modules issuing multiple asynchronous probes (Section
// 2.1.3). Parallel 0 means unbounded.
type Module interface {
	// Name identifies the module in traces and experiment output.
	Name() string
	// Process handles one input tuple at virtual time now.
	Process(t *tuple.Tuple, now clock.Time) (out []Emission, cost clock.Duration)
	// Parallel returns the module's internal service concurrency.
	Parallel() int
}
