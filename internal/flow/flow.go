// Package flow defines the engine-agnostic module contract.
//
// Every query module other than the eddy — selection modules, access modules,
// and State Modules — implements Module: a reactive state machine that
// consumes one tuple and emits zero or more tuples back to the eddy, each
// tagged with a delay modelling the physical work (hash probe cost, remote
// index latency, scan pacing). Both engines drive the same modules: the
// discrete-event simulator turns emissions into scheduled events; the
// concurrent engine turns them into channel sends after timed waits.
//
// Dataflow moves batch-at-a-time: engines group tuples into Batch values and
// drive modules through the BatchModule contract, amortizing dispatch,
// locking, and synchronization over the batch. A batch of one reproduces
// tuple-at-a-time behavior exactly, and the Lift shim adapts any per-tuple
// Module, so the two granularities are interchangeable.
package flow

import (
	"repro/internal/clock"
	"repro/internal/tuple"
)

// Emission is one output tuple of a module, delivered back to the eddy after
// Delay has elapsed past the module's processing completion.
type Emission struct {
	T *tuple.Tuple
	// Delay is extra latency beyond the module's service time, e.g. the
	// round-trip of an asynchronous remote index lookup.
	Delay clock.Duration
}

// Emit is a convenience constructor for an immediate emission.
func Emit(t *tuple.Tuple) Emission { return Emission{T: t} }

// EmitAfter is a convenience constructor for a delayed emission.
func EmitAfter(t *tuple.Tuple, d clock.Duration) Emission { return Emission{T: t, Delay: d} }

// Module is a query processing module driven by the eddy.
//
// Process consumes the tuple and returns the emissions it generates together
// with the service cost of processing it. A tuple that appears in no emission
// has been removed from the dataflow by the module (e.g. a selection dropped
// it, or a SteM consumed a duplicate build). Process must not retain t after
// returning unless it also stores it internally on purpose (SteMs do).
//
// Parallel reports the module's internal concurrency: 1 for a single-server
// module whose queue exhibits head-of-line blocking (the effect Section 4.2
// demonstrates inside the index join), or >1 for modules that overlap work,
// such as access modules issuing multiple asynchronous probes (Section
// 2.1.3). Parallel 0 means unbounded.
type Module interface {
	// Name identifies the module in traces and experiment output.
	Name() string
	// Process handles one input tuple at virtual time now.
	Process(t *tuple.Tuple, now clock.Time) (out []Emission, cost clock.Duration)
	// Parallel returns the module's internal service concurrency.
	Parallel() int
}

// Batch is an ordered group of tuples moving through the dataflow as one
// unit. Engines that amortize per-tuple dispatch (the concurrent engine's
// channel sends, a SteM's lock acquisition, a selection's emission
// allocation) exchange batches instead of single tuples; a batch of one is
// semantically identical to per-tuple dataflow.
//
// Batch shells are recyclable: an engine may pool and reuse a Batch once its
// consumer has drained it, so modules must not retain a Batch (or its Tuples
// slice) past ProcessBatch — only the tuples themselves have dataflow
// lifetime.
type Batch struct {
	Tuples []*tuple.Tuple

	// Col, when non-nil, is the batch's columnar payload: the batch carries
	// column vectors instead of row tuples, and Tuples is empty. Only
	// columnar-aware engines and modules set or observe it; everything else
	// sees row batches exclusively.
	Col *ColBatch
}

// NewBatch returns an empty batch with room for capacity tuples.
func NewBatch(capacity int) *Batch {
	return &Batch{Tuples: make([]*tuple.Tuple, 0, capacity)}
}

// BatchOf wraps the given tuples as a batch (sharing the slice).
func BatchOf(ts ...*tuple.Tuple) *Batch { return &Batch{Tuples: ts} }

// Add appends a tuple to the batch.
func (b *Batch) Add(t *tuple.Tuple) { b.Tuples = append(b.Tuples, t) }

// Len returns the number of tuples in the batch: live columnar rows when the
// batch carries a columnar payload, row tuples otherwise.
func (b *Batch) Len() int {
	if b.Col != nil {
		return b.Col.Rows()
	}
	return len(b.Tuples)
}

// Reset empties the batch, retaining capacity for reuse. A columnar payload
// is detached, not recycled — the party that owns it pools it separately.
func (b *Batch) Reset() {
	b.Tuples = b.Tuples[:0]
	b.Col = nil
}

// Contains reports whether t is one of the batch's tuples (by identity).
// Engines use it to tell a module input bouncing back from a freshly
// generated emission.
func (b *Batch) Contains(t *tuple.Tuple) bool {
	for _, x := range b.Tuples {
		if x == t {
			return true
		}
	}
	return false
}

// BatchModule is a module that services whole batches in one call. The
// emissions of all inputs are returned flattened, in input order per tuple,
// and cost is the total sequential service time of the batch — a batch of
// one must behave exactly like Module.Process.
//
// Modules implement BatchModule natively when they can amortize work across
// tuples (a SteM takes its lock once and reuses probe candidate lists, a
// selection module vectorizes predicate evaluation); any other Module is
// lifted by the Lift shim, so third-party per-tuple modules keep working
// unchanged.
type BatchModule interface {
	Module
	// ProcessBatch handles every tuple of b starting at virtual time now.
	ProcessBatch(b *Batch, now clock.Time) (out []Emission, cost clock.Duration)
}

// Shard destinations returned by Sharded.ShardOf for tuples that do not
// address a single shard.
const (
	// ShardAll marks a tuple every shard must observe (EOT / completeness
	// markers). Engines deliver one copy of the tuple to each shard's queue
	// — preserving, per queue, the order of previously enqueued tuples — and
	// account for the extra copies in their dataflow bookkeeping. The module
	// must treat the tuple as read-only in each per-shard delivery and apply
	// its module-global effect exactly once (on the final delivery).
	ShardAll = -1
	// ShardAny marks a tuple that addresses no single shard but must be
	// processed exactly once against the module's whole state (e.g. a probe
	// that does not bind the partition column and has to sweep every
	// sub-dictionary). Engines deliver it to any one shard queue; the module
	// performs its own cross-shard synchronization.
	ShardAny = -2
)

// Sharded is a module whose internal state is hash-partitioned into
// independently synchronized sub-stores ("shards"), so an engine can drive
// different shards from different workers and let their service proceed in
// parallel — intra-operator parallelism in the style of hash-partitioned
// join state in production engines.
//
// The contract splits responsibilities: the module owns the partitioning
// function (ShardOf) and per-shard servicing (ProcessShard); the engine owns
// queueing, one worker per shard, and the delivery rules for ShardAll /
// ShardAny tuples. Engines that do not know about sharding (the simulator,
// the Lift shim) simply call Process/ProcessBatch, and the module dispatches
// to its shards internally under its own locks — sharding is then a storage
// layout, not a concurrency structure, and results are identical.
type Sharded interface {
	BatchModule
	// Shards returns the number of partitions (>= 1; 1 means unsharded).
	Shards() int
	// ShardOf returns the shard index a tuple addresses, or ShardAll /
	// ShardAny. It must be safe to call without any module locks held and
	// must not mutate t.
	ShardOf(t *tuple.Tuple) int
	// ProcessShard services a batch delivered to one shard's queue: tuples
	// with ShardOf == shard, plus ShardAll copies addressed to this shard
	// and ShardAny tuples the engine assigned here. Emissions and cost
	// follow the ProcessBatch contract.
	ProcessShard(shard int, b *Batch, now clock.Time) (out []Emission, cost clock.Duration)
}

// Lift returns m as a BatchModule: native implementations are returned
// as-is, per-tuple modules are wrapped in a shim that processes batch
// members sequentially.
func Lift(m Module) BatchModule {
	if bm, ok := m.(BatchModule); ok {
		return bm
	}
	return lifted{m}
}

// lifted adapts a per-tuple Module to the BatchModule contract.
type lifted struct {
	Module
}

// ProcessBatch implements BatchModule by sequential per-tuple processing:
// each tuple is served at the virtual time the previous one completed.
func (l lifted) ProcessBatch(b *Batch, now clock.Time) ([]Emission, clock.Duration) {
	var out []Emission
	var total clock.Duration
	for _, t := range b.Tuples {
		ems, cost := l.Module.Process(t, now)
		out = append(out, ems...)
		total += cost
		now = now.Add(cost)
	}
	return out, total
}
