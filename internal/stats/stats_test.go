package stats

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/clock"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("x")
	if s.Final() != 0 || s.At(5) != 0 || s.End() != 0 {
		t.Error("empty series must be zero everywhere")
	}
	s.Add(10, 1)
	s.Add(20, 3)
	s.Inc(30)
	if s.Final() != 4 {
		t.Errorf("Final = %v", s.Final())
	}
	if s.At(5) != 0 || s.At(10) != 1 || s.At(15) != 1 || s.At(25) != 3 || s.At(100) != 4 {
		t.Error("step interpolation wrong")
	}
	if s.End() != 30 {
		t.Errorf("End = %v", s.End())
	}
}

func TestTimeToValue(t *testing.T) {
	s := NewSeries("x")
	s.Add(10, 5)
	s.Add(20, 12)
	if at, ok := s.TimeToValue(6); !ok || at != 20 {
		t.Errorf("TimeToValue(6) = %v %v", at, ok)
	}
	if _, ok := s.TimeToValue(100); ok {
		t.Error("unreached value must report !ok")
	}
}

func TestSample(t *testing.T) {
	s := NewSeries("x")
	s.Add(clock.Time(clock.Second), 1)
	s.Add(clock.Time(2*clock.Second), 2)
	pts := s.Sample(clock.Time(2*clock.Second), 4)
	if len(pts) != 5 || pts[0].V != 0 || pts[4].V != 2 {
		t.Errorf("Sample = %v", pts)
	}
}

func TestAreaUnderMonotone(t *testing.T) {
	f := func(vals []uint8) bool {
		s := NewSeries("x")
		cum := 0.0
		for i, v := range vals {
			cum += float64(v)
			s.Add(clock.Time(int64(i+1)*int64(clock.Second)), cum)
		}
		end := clock.Time(int64(len(vals)+1) * int64(clock.Second))
		area := s.AreaUnder(end)
		// Bounds: 0 <= area <= final * horizon.
		return area >= 0 && area <= s.Final()*end.Seconds()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAreaUnderExact(t *testing.T) {
	s := NewSeries("x")
	s.Add(clock.Time(clock.Second), 1)
	// 1 from t=1s to t=3s -> area 2.
	if got := s.AreaUnder(clock.Time(3 * clock.Second)); got != 2 {
		t.Errorf("AreaUnder = %v, want 2", got)
	}
}

func TestTableRendering(t *testing.T) {
	a := NewSeries("alpha")
	a.Add(clock.Time(clock.Second), 5)
	b := NewSeries("beta")
	b.Add(clock.Time(2*clock.Second), 7)
	out := Table(clock.Time(2*clock.Second), 2, a, b)
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Error("headers missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 3 sample rows
		t.Errorf("table has %d lines", len(lines))
	}
}
