// Package stats collects and renders the time-series measurements behind the
// paper's figures: cumulative result counts over time (Figures 7(i), 8) and
// cumulative index probes over time (Figure 7(ii)).
package stats

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/clock"
)

// Point is one sample of a cumulative counter.
type Point struct {
	T clock.Time
	V float64
}

// Series is a monotone step series of (time, value) samples.
type Series struct {
	Name   string
	Points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a sample; times must be non-decreasing.
func (s *Series) Add(t clock.Time, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Inc appends a sample one higher than the last (cumulative counting).
func (s *Series) Inc(t clock.Time) {
	last := 0.0
	if n := len(s.Points); n > 0 {
		last = s.Points[n-1].V
	}
	s.Add(t, last+1)
}

// At returns the series value at time t (step interpolation; 0 before the
// first sample).
func (s *Series) At(t clock.Time) float64 {
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T > t })
	if i == 0 {
		return 0
	}
	return s.Points[i-1].V
}

// Final returns the last value, or 0 if empty.
func (s *Series) Final() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].V
}

// End returns the time of the last sample.
func (s *Series) End() clock.Time {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].T
}

// Sample returns the series values at n evenly spaced times in [0, end].
func (s *Series) Sample(end clock.Time, n int) []Point {
	out := make([]Point, n+1)
	for i := 0; i <= n; i++ {
		t := clock.Time(int64(end) * int64(i) / int64(n))
		out[i] = Point{T: t, V: s.At(t)}
	}
	return out
}

// TimeToValue returns the earliest time the series reaches v, and ok=false
// if it never does.
func (s *Series) TimeToValue(v float64) (clock.Time, bool) {
	for _, p := range s.Points {
		if p.V >= v {
			return p.T, true
		}
	}
	return 0, false
}

// Table renders several series side by side at n evenly spaced times — the
// textual analogue of a figure with multiple curves.
func Table(end clock.Time, n int, series ...*Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s", "time(s)")
	for _, s := range series {
		fmt.Fprintf(&b, " %14s", s.Name)
	}
	b.WriteByte('\n')
	for i := 0; i <= n; i++ {
		t := clock.Time(int64(end) * int64(i) / int64(n))
		fmt.Fprintf(&b, "%12.1f", t.Seconds())
		for _, s := range series {
			fmt.Fprintf(&b, " %14.0f", s.At(t))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// AreaUnder approximates the integral of the series from 0 to end — the
// online-metric summary statistic (higher = more results delivered sooner).
func (s *Series) AreaUnder(end clock.Time) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	area := 0.0
	prevT := clock.Time(0)
	prevV := 0.0
	for _, p := range s.Points {
		if p.T > end {
			break
		}
		area += prevV * (p.T - prevT).Seconds()
		prevT, prevV = p.T, p.V
	}
	area += prevV * (end - prevT).Seconds()
	return area
}
