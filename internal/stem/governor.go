// governor.go implements the Section 6 extension the paper sketches as
// future work: "Since SteMs encapsulate the data structures, and communicate
// directly with the eddy, they enable the eddy to observe and control memory
// resource utilization across all modules in the query. The eddy can make
// memory allocation decisions in a globally optimal manner, possibly based
// on overall memory availability as well as relative frequency of probes
// into each SteM. This can be extended to let the eddy control spilling of
// tuples to the disk as well."
//
// The Governor owns a global budget of resident rows. Each SteM registers
// its builds and probes; rows beyond a SteM's allocation are "spilled" —
// still correct to probe, but each probe pays a penalty proportional to the
// fraction of the SteM's rows on disk. The governor periodically rebalances
// allocations in proportion to observed probe frequency (hot SteMs stay in
// memory), which is exactly the globally-informed decision an encapsulated
// join could never make.
package stem

import (
	"sync"

	"repro/internal/clock"
)

// AllocPolicy selects how the governor divides the budget.
type AllocPolicy uint8

const (
	// AllocEqual splits the budget evenly across SteMs (the baseline an
	// encapsulated design is stuck with).
	AllocEqual AllocPolicy = iota
	// AllocByProbes splits the budget in proportion to each SteM's
	// exponentially weighted probe frequency.
	AllocByProbes
)

// Governor arbitrates a global resident-row budget across SteMs.
type Governor struct {
	mu sync.Mutex
	// Budget is the total number of rows resident in memory across all
	// registered SteMs; 0 disables governance (everything resident).
	budget int
	policy AllocPolicy
	// SpillPenalty is the extra probe cost charged when every probed row is
	// spilled; partial spill charges proportionally.
	spillPenalty clock.Duration

	members []*govMember
	// ops counts operations since the last rebalance.
	ops int
	// RebalanceEvery controls rebalance frequency in operations.
	rebalanceEvery int
}

type govMember struct {
	rows      int
	alloc     int
	probeEWMA float64
}

// NewGovernor creates a governor with the given global budget (rows),
// allocation policy and full-spill probe penalty.
func NewGovernor(budget int, policy AllocPolicy, spillPenalty clock.Duration) *Governor {
	return &Governor{
		budget:         budget,
		policy:         policy,
		spillPenalty:   spillPenalty,
		rebalanceEvery: 64,
	}
}

// register adds a SteM and returns its membership handle index.
func (g *Governor) register() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.members = append(g.members, &govMember{})
	g.rebalanceLocked()
	return len(g.members) - 1
}

// noteBuild records a stored row for member id.
func (g *Governor) noteBuild(id int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.members[id].rows++
	g.tick()
}

// noteEvict records a removed row.
func (g *Governor) noteEvict(id int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.members[id].rows > 0 {
		g.members[id].rows--
	}
}

// probePenalty records a probe for member id and returns the spill penalty
// the probe pays under the current allocation.
func (g *Governor) probePenalty(id int) clock.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	m := g.members[id]
	m.probeEWMA = 0.1 + 0.9*m.probeEWMA + 1 // +1 per probe, mild decay floor
	g.tick()
	if g.budget <= 0 || m.rows == 0 {
		return 0
	}
	spilled := m.rows - m.alloc
	if spilled <= 0 {
		return 0
	}
	frac := float64(spilled) / float64(m.rows)
	return clock.Duration(float64(g.spillPenalty) * frac)
}

// SpilledRows reports the current spilled-row count of member id, for tests
// and reports.
func (g *Governor) SpilledRows(id int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	m := g.members[id]
	if g.budget <= 0 {
		return 0
	}
	if s := m.rows - m.alloc; s > 0 {
		return s
	}
	return 0
}

func (g *Governor) tick() {
	g.ops++
	if g.ops >= g.rebalanceEvery {
		g.ops = 0
		g.rebalanceLocked()
		// Probe frequencies decay between rebalances so the allocation
		// follows shifting workloads.
		for _, m := range g.members {
			m.probeEWMA *= 0.5
		}
	}
}

// rebalanceLocked recomputes allocations under the policy.
func (g *Governor) rebalanceLocked() {
	n := len(g.members)
	if n == 0 || g.budget <= 0 {
		return
	}
	switch g.policy {
	case AllocByProbes:
		total := 0.0
		for _, m := range g.members {
			total += m.probeEWMA
		}
		if total <= 0 {
			for _, m := range g.members {
				m.alloc = g.budget / n
			}
			return
		}
		for _, m := range g.members {
			m.alloc = int(float64(g.budget) * m.probeEWMA / total)
		}
	default:
		for _, m := range g.members {
			m.alloc = g.budget / n
		}
	}
}
