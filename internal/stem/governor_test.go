package stem

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/tuple"
)

func TestGovernorEqualAllocationSpills(t *testing.T) {
	g := NewGovernor(10, AllocEqual, clock.Millisecond)
	a := g.register()
	b := g.register()
	// a stores 8 rows, b stores 2: equal allocation (5 each) spills 3 of a.
	for i := 0; i < 8; i++ {
		g.noteBuild(a)
	}
	for i := 0; i < 2; i++ {
		g.noteBuild(b)
	}
	if got := g.SpilledRows(a); got != 3 {
		t.Errorf("a spilled %d, want 3", got)
	}
	if got := g.SpilledRows(b); got != 0 {
		t.Errorf("b spilled %d, want 0", got)
	}
	// Probe penalty proportional to the spilled fraction (3/8 of 1ms).
	p := g.probePenalty(a)
	want := clock.Duration(float64(clock.Millisecond) * 3 / 8)
	if p != want {
		t.Errorf("penalty = %v, want %v", p, want)
	}
	if g.probePenalty(b) != 0 {
		t.Error("unspilled member must pay no penalty")
	}
}

func TestGovernorProbeProportionalAllocation(t *testing.T) {
	g := NewGovernor(10, AllocByProbes, clock.Millisecond)
	g.rebalanceEvery = 4
	hot := g.register()
	cold := g.register()
	for i := 0; i < 8; i++ {
		g.noteBuild(hot)
		g.noteBuild(cold)
	}
	// Hot member takes all the probes; after rebalances its allocation
	// should dwarf the cold one's, shrinking its spill.
	for i := 0; i < 64; i++ {
		g.probePenalty(hot)
	}
	if hs, cs := g.SpilledRows(hot), g.SpilledRows(cold); hs >= cs {
		t.Errorf("hot spilled %d >= cold %d; probe-frequency allocation not working", hs, cs)
	}
}

func TestGovernorDisabled(t *testing.T) {
	g := NewGovernor(0, AllocByProbes, clock.Millisecond)
	id := g.register()
	g.noteBuild(id)
	if g.probePenalty(id) != 0 || g.SpilledRows(id) != 0 {
		t.Error("zero budget must disable governance")
	}
}

func TestGovernedSteMChargesPenalty(t *testing.T) {
	q := twoTableQ(t, true, false)
	g := NewGovernor(1, AllocEqual, 10*clock.Millisecond)
	counter := &Counter{}
	sR := New(Config{Table: 0, Q: q, TS: counter, Gov: g,
		ProbeCost: clock.Microsecond})
	// Store several rows: with budget 1 most are spilled.
	for i := int64(0); i < 4; i++ {
		sR.Process(singleton(2, 0, row(i, 10)), 0)
	}
	s := singleton(2, 1, row(10, 100))
	s.CompTS[1] = counter.Next()
	s.Built = tuple.Single(1)
	_, cost := sR.Process(s, 0)
	if cost < 5*clock.Millisecond {
		t.Errorf("governed probe cost %v must include a spill penalty", cost)
	}
	// Eviction shrinks usage.
	if g.SpilledRows(0) == 0 {
		t.Error("expected spilled rows under budget 1")
	}
}
