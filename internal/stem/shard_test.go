package stem

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/flow"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/tuple"
	"repro/internal/value"
)

// threeTableQ builds R(k,a) ⋈ S(x,y) ⋈ T(z): R.a = S.x and T.z = S.y.
// SteM(S) has join columns {x, y} and partitions on x, so R-side probes
// address one shard while T-side probes bind only y and must sweep.
func threeTableQ(t *testing.T) *query.Q {
	t.Helper()
	rT := schema.MustTable("R", schema.IntCol("k"), schema.IntCol("a"))
	sT := schema.MustTable("S", schema.IntCol("x"), schema.IntCol("y"))
	tT := schema.MustTable("T", schema.IntCol("z"))
	empty := func(s *schema.Table) *source.Table { return source.MustTable(s, nil) }
	return query.MustNew(
		[]*schema.Table{rT, sT, tT},
		[]pred.P{pred.EquiJoin(0, 1, 1, 0), pred.EquiJoin(2, 0, 1, 1)},
		[]query.AMDecl{
			{Table: 0, Kind: query.Scan, Data: empty(rT)},
			{Table: 1, Kind: query.Scan, Data: empty(sT)},
			{Table: 2, Kind: query.Scan, Data: empty(tT)},
		},
	)
}

// shardInputs is one run's freshly allocated tuples (tuples are mutated by
// processing, so the sharded and unsharded runs need separate instances).
type shardInputs struct {
	builds []*tuple.Tuple // S singletons
	eot    *tuple.Tuple   // full EOT on S
	probes []*tuple.Tuple // built R and T singletons (single-shard and sweep)
}

func makeShardInputs(q *query.Q, c *Counter, rows int) *shardInputs {
	in := &shardInputs{}
	n := q.NumTables()
	for i := 0; i < rows; i++ {
		in.builds = append(in.builds, tuple.NewSingleton(n, 1,
			tuple.Row{value.NewInt(int64(i % 32)), value.NewInt(int64(i % 16))}))
	}
	eotRow := tuple.Row{value.NewEOT(), value.NewEOT()}
	in.eot = tuple.NewEOT(n, 1, eotRow, nil)
	// R-side probes bind S.x (partition column): single-shard.
	for i := 0; i < rows; i++ {
		p := tuple.NewSingleton(n, 0, tuple.Row{value.NewInt(int64(i)), value.NewInt(int64(i % 32))})
		p.Built = tuple.Single(0)
		in.probes = append(in.probes, p)
	}
	// T-side probes bind only S.y: sweep (flow.ShardAny).
	for i := 0; i < rows/2; i++ {
		p := tuple.NewSingleton(n, 2, tuple.Row{value.NewInt(int64(i % 16))})
		p.Built = tuple.Single(2)
		in.probes = append(in.probes, p)
	}
	return in
}

// stampProbes gives every probe a timestamp later than all builds.
func stampProbes(in *shardInputs, c *Counter) {
	for _, p := range in.probes {
		p.CompTS[p.SingleTable()] = c.Next()
	}
}

// matchKeys collects the ResultKeys of emitted concatenations (emissions
// that are not the input tuple itself bouncing back).
func matchKeys(in *tuple.Tuple, ems []flow.Emission, into map[string]int) {
	for _, e := range ems {
		if e.T != in {
			into[e.T.ResultKey()]++
		}
	}
}

// TestShardedSteMEquivalence drives one SteM with concurrent builds and
// probes through the flow.Sharded contract at shard counts 1, 2, and 8 and
// asserts the produced match multiset is identical to the unsharded
// sequential path. Run with -race: the build phase exercises per-shard
// locking, the EOT phase the ShardAll replication countdown, and the probe
// phase both single-shard probes and cross-shard sweeps.
func TestShardedSteMEquivalence(t *testing.T) {
	q := threeTableQ(t)
	const rows = 256

	// Reference: unsharded, sequential.
	want := make(map[string]int)
	var wantStats Stats
	var wantSize int
	{
		c := &Counter{}
		s := New(Config{Table: 1, Q: q, TS: c})
		in := makeShardInputs(q, c, rows)
		for _, b := range in.builds {
			s.Process(b, 0)
		}
		s.Process(in.eot, 0)
		stampProbes(in, c)
		for _, p := range in.probes {
			ems, _ := s.Process(p, 0)
			matchKeys(p, ems, want)
		}
		if len(want) == 0 {
			t.Fatal("reference run produced no matches; test data is broken")
		}
		wantStats = s.Stats()
		wantSize = s.Size()
	}

	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			c := &Counter{}
			s := New(Config{Table: 1, Q: q, TS: c, Shards: shards})
			if got := s.Shards(); got != shards {
				t.Fatalf("Shards() = %d, want %d", got, shards)
			}
			in := makeShardInputs(q, c, rows)

			// Phase 1: concurrent builds, one goroutine per shard, each
			// processing only the tuples that address its shard.
			perShard := make([][]*tuple.Tuple, shards)
			for _, b := range in.builds {
				sd := s.ShardOf(b)
				if sd < 0 {
					t.Fatalf("build tuple classified %d, want a shard index", sd)
				}
				perShard[sd] = append(perShard[sd], b)
			}
			var wg sync.WaitGroup
			for w := 0; w < shards; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for _, b := range perShard[w] {
						s.ProcessShard(w, flow.BatchOf(b), 0)
					}
				}(w)
			}
			wg.Wait()

			// Phase 2: the full EOT replicated to every shard concurrently,
			// as the engine delivers flow.ShardAll tuples.
			if shards > 1 {
				if sd := s.ShardOf(in.eot); sd != flow.ShardAll {
					t.Fatalf("EOT classified %d, want ShardAll", sd)
				}
			}
			for w := 0; w < shards; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					s.ProcessShard(w, flow.BatchOf(in.eot), 0)
				}(w)
			}
			wg.Wait()

			// Phase 3: concurrent probes. Single-shard probes go to their
			// home worker; sweeps round-robin across workers.
			stampProbes(in, c)
			probeShard := make([][]*tuple.Tuple, shards)
			rr := 0
			for _, p := range in.probes {
				sd := s.ShardOf(p)
				if sd == flow.ShardAny {
					sd = rr % shards
					rr++
				}
				probeShard[sd] = append(probeShard[sd], p)
			}
			got := make(map[string]int)
			var mu sync.Mutex
			for w := 0; w < shards; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					local := make(map[string]int)
					for _, p := range probeShard[w] {
						ems, _ := s.ProcessShard(w, flow.BatchOf(p), 0)
						matchKeys(p, ems, local)
					}
					mu.Lock()
					for k, v := range local {
						got[k] += v
					}
					mu.Unlock()
				}(w)
			}
			wg.Wait()

			if len(got) != len(want) {
				t.Fatalf("distinct matches = %d, want %d", len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("match %q count = %d, want %d", k, got[k], v)
				}
			}
			st := s.Stats()
			if st.Builds != wantStats.Builds || st.DupBuilds != wantStats.DupBuilds {
				t.Errorf("Builds/DupBuilds = %d/%d, want %d/%d",
					st.Builds, st.DupBuilds, wantStats.Builds, wantStats.DupBuilds)
			}
			if st.Matches != wantStats.Matches {
				t.Errorf("Matches = %d, want %d", st.Matches, wantStats.Matches)
			}
			if st.EOTs != 1 {
				t.Errorf("EOTs = %d, want 1 (replicated deliveries must record once)", st.EOTs)
			}
			if s.Size() != wantSize {
				t.Errorf("Size = %d, want %d", s.Size(), wantSize)
			}
		})
	}
}

// TestShardOfStability pins the partitioning function's contract: equal
// partition-column values address the same shard from both the build and the
// probe side, and shard counts round up to powers of two.
func TestShardOfStability(t *testing.T) {
	q := threeTableQ(t)
	s := New(Config{Table: 1, Q: q, TS: &Counter{}, Shards: 5})
	if got := s.Shards(); got != 8 {
		t.Fatalf("Shards(5 requested) = %d, want 8 (next power of two)", got)
	}
	n := q.NumTables()
	for v := int64(0); v < 64; v++ {
		b := tuple.NewSingleton(n, 1, tuple.Row{value.NewInt(v), value.NewInt(0)})
		p := tuple.NewSingleton(n, 0, tuple.Row{value.NewInt(9), value.NewInt(v)})
		p.Built = tuple.Single(0)
		bs, ps := s.ShardOf(b), s.ShardOf(p)
		if bs < 0 || bs >= 8 {
			t.Fatalf("build shard %d out of range", bs)
		}
		if bs != ps {
			t.Fatalf("value %d: build shard %d != probe shard %d", v, bs, ps)
		}
	}
	// A custom dictionary cannot be instantiated per shard: stays unsharded.
	d := New(Config{Table: 1, Q: q, TS: &Counter{}, Shards: 8, Dict: NewListDict()})
	if got := d.Shards(); got != 1 {
		t.Fatalf("custom-dict SteM Shards() = %d, want 1", got)
	}
	// Window eviction order is global state: windowed SteMs stay unsharded
	// so windowed results cannot depend on the shard count.
	w := New(Config{Table: 1, Q: q, TS: &Counter{}, Shards: 8, Window: 4})
	if got := w.Shards(); got != 1 {
		t.Fatalf("windowed SteM Shards() = %d, want 1", got)
	}
}
