// spill.go makes the Section 6 extension real: instead of modelling spilled
// rows with a probe-latency penalty, a governed SteM writes rows the byte
// budget cannot hold to per-shard, per-hash-partition append-only spill
// segments on disk, and regenerates the results those rows owe through a
// Grace-join-style replay pass.
//
// The design hinges on one invariant that keeps results set-identical to an
// unbounded run at any budget:
//
//   - A row is placed exactly once, at build time: either it enters the
//     resident dictionary (and is matched live, like today), or it is
//     appended to its partition's segment (and is only ever matched by
//     replay). Rows never migrate memory→disk after a probe could have seen
//     them, so "was it resident at probe time" is a property of the row, not
//     of history.
//   - Every probe that might miss spilled matches is recorded: a snapshot of
//     the probe tuple plus the exact TimeStamp window it was entitled to,
//     (LastMatchTS, min(probeTS, highWater+1)), against the partitions that
//     held data at probe time. highWater is the shard's max build timestamp
//     across resident AND spilled inserts; bounced probes advance their
//     LastMatchTS to it, so the windows of successive recordings of one
//     tuple are disjoint and no spilled row is ever replayed twice for the
//     same prober.
//   - Replay concatenates each recorded probe with the spilled rows in its
//     window (re-verifying every predicate, exactly like a live probe) and
//     emits the results back into the dataflow, where they route onward —
//     possibly probing other spilled SteMs, which records them again; the
//     engines iterate the drain until the dataflow stays empty.
//   - The governor's probe-frequency rebalancing may recall ("un-spill") a
//     hot partition when its allocation has room: outstanding recordings
//     replay against the partition first (and mark it done), then its rows
//     enter the resident dictionary and the segment is deleted, so future
//     probes match them live and nothing is lost or duplicated.
//
// Segments are confined to a per-run directory opened through an os.Root
// (like the server's REGISTER paths) and are removed by Governor.Close on
// any exit, including cancellation.
package stem

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"slices"

	"repro/internal/flow"
	"repro/internal/tuple"
	"repro/internal/value"
)

// spillPartitions is the number of hash partitions per shard; replay loads
// one partition at a time, so it bounds replay memory the way Grace's
// partition count does. It must stay ≤ 64: recordings track partitions in a
// uint64 bitmask.
const spillPartitions = 16

// spillPartMask selects a partition from the high hash bits — the low bits
// already pick the shard, and reusing them would leave most partitions of a
// sharded SteM empty.
func spillPartOf(v value.V) int {
	return int((v.Hash64() >> 32) & (spillPartitions - 1))
}

// RowFootprint estimates the resident bytes of one stored row: the slice
// header and per-entry index bookkeeping, plus the value structs and their
// string payloads. The byte governor accounts rows at this granularity.
func RowFootprint(row tuple.Row) int64 {
	fp := int64(48)
	for _, v := range row {
		fp += 32 + int64(len(v.S))
	}
	return fp
}

// ---------------------------------------------------------------------------
// Segment codec: length-delimited entries, [ts:8][ncols:uvarint] then one
// value per column as [kind:1][payload] (Int: 8 bytes LE; Str: uvarint length
// + bytes; Null/EOT: no payload).

// appendEntry encodes one entry onto buf.
func appendEntry(buf []byte, row tuple.Row, ts tuple.Timestamp) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, ts)
	buf = binary.AppendUvarint(buf, uint64(len(row)))
	for _, v := range row {
		buf = append(buf, byte(v.K))
		switch v.K {
		case value.Int:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v.I))
		case value.Str:
			buf = binary.AppendUvarint(buf, uint64(len(v.S)))
			buf = append(buf, v.S...)
		}
	}
	return buf
}

// decodeEntries decodes a whole segment.
func decodeEntries(data []byte) ([]Entry, error) {
	var out []Entry
	for len(data) > 0 {
		if len(data) < 8 {
			return nil, fmt.Errorf("stem: truncated spill entry header")
		}
		ts := binary.LittleEndian.Uint64(data)
		data = data[8:]
		n, sz := binary.Uvarint(data)
		if sz <= 0 || n > 1<<20 {
			return nil, fmt.Errorf("stem: corrupt spill entry column count")
		}
		data = data[sz:]
		row := make(tuple.Row, n)
		for c := range row {
			if len(data) < 1 {
				return nil, fmt.Errorf("stem: truncated spill value")
			}
			k := value.Kind(data[0])
			data = data[1:]
			switch k {
			case value.Int:
				if len(data) < 8 {
					return nil, fmt.Errorf("stem: truncated spill int")
				}
				row[c] = value.NewInt(int64(binary.LittleEndian.Uint64(data)))
				data = data[8:]
			case value.Str:
				l, sz := binary.Uvarint(data)
				if sz <= 0 || uint64(len(data)-sz) < l {
					return nil, fmt.Errorf("stem: truncated spill string")
				}
				row[c] = value.NewStr(string(data[sz : sz+int(uint(l))]))
				data = data[sz+int(uint(l)):]
			case value.Null:
				row[c] = value.NewNull()
			case value.EOTMark:
				row[c] = value.NewEOT()
			default:
				return nil, fmt.Errorf("stem: unknown spill value kind %d", k)
			}
		}
		out = append(out, Entry{Row: row, TS: ts})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Per-shard spill state. All fields are guarded by the owning shard's mutex
// (or gmu + all shard mutexes on the sweep path), the same synchronization
// domain as the shard's dictionary.

// spillPart is one hash partition's on-disk state.
type spillPart struct {
	seg       *spillSegment
	rows      int
	footprint int64 // sum of RowFootprint of the rows on disk
	ewma      float64
}

// spillRec is one recorded probe: a snapshot of the probe tuple and the
// TimeStamp window of spilled matches it is owed, against the partitions
// that held data when it probed.
type spillRec struct {
	snap *tuple.Tuple
	// ceilTS/floorTS bound the window: an entry matches iff
	// floorTS < e.TS < ceilTS (the live-probe TimeStamp rule with the
	// ceiling capped at the record-time high-water mark, so windows of
	// successive recordings never overlap).
	ceilTS  tuple.Timestamp
	floorTS tuple.Timestamp
	parts   uint64 // partition bitmask to replay against
	done    uint64 // partitions already replayed (recall or an earlier drain)
}

// shardSpill is the disk-backed half of one shard.
type shardSpill struct {
	s     *SteM
	sh    *shard
	shard int
	parts [spillPartitions]spillPart
	// hashes counts spilled rows by row hash, the resident side of the
	// exact duplicate check: a hash hit is verified against the partition
	// segment (hash-with-verify through the disk).
	hashes map[uint64]int32
	// highWater is the largest build timestamp ever inserted into this
	// shard, resident or spilled. Bounced probes advance LastMatchTS to it.
	highWater tuple.Timestamp
	recs      []spillRec
	probes    uint64 // throttles recall checks
}

func newShardSpill(s *SteM, sh *shard, idx int) *shardSpill {
	return &shardSpill{s: s, sh: sh, shard: idx, hashes: make(map[uint64]int32)}
}

// partOfRow returns the partition a stored row belongs to.
func (sp *shardSpill) partOfRow(row tuple.Row) int {
	if sp.s.spillCol < 0 {
		return 0
	}
	return spillPartOf(row[sp.s.spillCol])
}

// diskBytes returns the total row footprint spilled in this shard.
func (sp *shardSpill) diskBytes() int64 {
	var n int64
	for i := range sp.parts {
		n += sp.parts[i].footprint
	}
	return n
}

// noteInsert advances the shard's insert high-water mark; called for every
// build, resident or spilled.
func (sp *shardSpill) noteInsert(ts tuple.Timestamp) {
	if ts > sp.highWater {
		sp.highWater = ts
	}
}

// contains reports whether an identical row is already spilled — the exact
// set-semantics duplicate check for rows the resident dictionary cannot see.
// The common miss is a map lookup; a hash hit scans the row's partition
// segment to verify.
func (sp *shardSpill) contains(row tuple.Row) bool {
	if sp.hashes[row.Hash64()] == 0 {
		return false
	}
	p := sp.partOfRow(row)
	entries, err := sp.readPart(p)
	if err != nil {
		sp.s.cfg.Gov.fail(err)
		return false
	}
	for _, e := range entries {
		if e.Row.Equal(row) {
			return true
		}
	}
	return false
}

// append spills one freshly built row to its partition's segment, reporting
// whether the row actually reached disk (false: an I/O failure stored it
// resident instead).
func (sp *shardSpill) append(row tuple.Row, ts tuple.Timestamp) bool {
	p := sp.partOfRow(row)
	pt := &sp.parts[p]
	if pt.seg == nil {
		name := fmt.Sprintf("t%d-s%d-p%d.seg", sp.s.cfg.Table, sp.shard, p)
		seg, err := newSpillSegment(sp.s.cfg.Gov, name)
		if err != nil {
			sp.s.cfg.Gov.fail(err)
			// Fall back to resident storage: the budget is violated but the
			// results stay correct.
			sp.residentFallback(row, ts)
			return false
		}
		pt.seg = seg
	}
	if err := pt.seg.append(row, ts); err != nil {
		sp.s.cfg.Gov.fail(err)
		sp.residentFallback(row, ts)
		return false
	}
	pt.rows++
	pt.footprint += RowFootprint(row)
	sp.hashes[row.Hash64()]++
	return true
}

// residentFallback stores a row the spill path failed to write, keeping the
// run correct at the cost of the budget.
func (sp *shardSpill) residentFallback(row tuple.Row, ts tuple.Timestamp) {
	sp.sh.dict.Insert(row, ts)
	sp.s.liveRows.Add(1)
	sp.s.cfg.Gov.noteSpillFallback(sp.s.govID, RowFootprint(row))
}

// readPart flushes and decodes one partition's segment.
func (sp *shardSpill) readPart(p int) ([]Entry, error) {
	pt := &sp.parts[p]
	if pt.seg == nil || pt.rows == 0 {
		return nil, nil
	}
	return pt.seg.readAll()
}

// relevantParts returns the bitmask of partitions that currently hold data
// and could contain matches for probe t: the partition of the value t binds
// to the spill column via an equality predicate, or every non-empty
// partition when t binds none.
func (sp *shardSpill) relevantParts(t *tuple.Tuple) uint64 {
	if sp.s.spillCol >= 0 {
		if v, ok := sp.s.pcolBinding(t); ok {
			p := spillPartOf(v)
			if sp.parts[p].rows > 0 {
				return 1 << uint(p)
			}
			return 0
		}
	}
	var mask uint64
	for i := range sp.parts {
		if sp.parts[i].rows > 0 {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// beforeProbe runs the governor's recall hook: it charges the probe to the
// relevant partitions' frequency estimate and, every 64th probe, recalls the
// hottest partition if the SteM's allocation has room — replaying its
// outstanding recordings first, then loading its rows into the resident
// dictionary. It returns the replay emissions of the recall plus whether a
// recall mutated the resident dictionary (which may happen with zero
// emissions, and must still invalidate any cached candidate lists). The
// shard's mutex is held.
func (sp *shardSpill) beforeProbe(t *tuple.Tuple) ([]flow.Emission, bool) {
	mask := sp.relevantParts(t)
	for p := 0; p < spillPartitions; p++ {
		if mask&(1<<uint(p)) != 0 {
			sp.parts[p].ewma++
		}
	}
	sp.probes++
	if sp.probes&63 != 0 {
		return nil, false
	}
	var cands []int
	for p := range sp.parts {
		if sp.parts[p].rows > 0 {
			cands = append(cands, p)
		}
	}
	slices.SortFunc(cands, func(a, b int) int {
		switch {
		case sp.parts[a].ewma > sp.parts[b].ewma:
			return -1
		case sp.parts[a].ewma < sp.parts[b].ewma:
			return 1
		}
		return a - b
	})
	for p := range sp.parts {
		sp.parts[p].ewma *= 0.5 // decay (after selection) so the estimate follows the workload
	}
	// Hottest partition that fits the headroom wins; a too-large hot
	// partition must not block a colder one that fits.
	for _, p := range cands {
		if sp.s.cfg.Gov.tryRecall(sp.s.govID, sp.parts[p].footprint) {
			return sp.recallPart(p), true
		}
	}
	return nil, false
}

// recallPart un-spills one partition: outstanding recordings replay against
// it (and mark it done), its rows enter the resident dictionary with their
// original timestamps, and the segment is deleted. The shard's mutex is
// held; the caller has already moved the partition's bytes to the resident
// account via Governor.tryRecall.
func (sp *shardSpill) recallPart(p int) []flow.Emission {
	pt := &sp.parts[p]
	entries, err := pt.seg.readAll()
	if err != nil {
		sp.s.cfg.Gov.fail(err)
		sp.s.cfg.Gov.undoRecall(sp.s.govID, pt.footprint)
		return nil
	}
	var out []flow.Emission
	for i := range sp.recs {
		rec := &sp.recs[i]
		bit := uint64(1) << uint(p)
		if rec.parts&bit == 0 || rec.done&bit != 0 {
			continue
		}
		out = append(out, sp.replayRec(rec, entries)...)
		rec.done |= bit
	}
	for _, e := range entries {
		sp.sh.dict.Insert(e.Row, e.TS)
		sp.s.liveRows.Add(1)
		if n := sp.hashes[e.Row.Hash64()] - 1; n > 0 {
			sp.hashes[e.Row.Hash64()] = n
		} else {
			delete(sp.hashes, e.Row.Hash64())
		}
	}
	sp.sh.stats.Recalls += uint64(len(entries))
	pt.seg.remove(sp.s.cfg.Gov)
	*pt = spillPart{}
	return out
}

// record snapshots probe t against the relevant partitions. floorTS is the
// probe's LastMatchTS on entry; the ceiling is its timestamp capped just
// above the shard's high-water mark, so the window covers exactly the
// spilled rows the probe could legally have matched right now. The shard's
// mutex is held.
func (sp *shardSpill) record(t *tuple.Tuple, probeTS, floorTS tuple.Timestamp) {
	parts := sp.relevantParts(t)
	if parts == 0 {
		return
	}
	ceil := probeTS
	if ceil > sp.highWater {
		ceil = sp.highWater + 1
	}
	if ceil <= floorTS+1 {
		return // empty window: nothing spilled that this probe is owed
	}
	snap := &tuple.Tuple{
		Comp:   slices.Clone(t.Comp),
		CompTS: slices.Clone(t.CompTS),
		Span:   t.Span,
		Done:   t.Done,
		Built:  t.Built,
	}
	sp.recs = append(sp.recs, spillRec{snap: snap, ceilTS: ceil, floorTS: floorTS, parts: parts})
}

// replayRec concatenates one recorded probe with the spilled entries in its
// window, enforcing the same TimeStamp rule and predicate verification as a
// live probe. The shard's mutex is held.
func (sp *shardSpill) replayRec(rec *spillRec, entries []Entry) []flow.Emission {
	s := sp.s
	scr := &sp.sh.scr
	preds, ok := scr.predCache[rec.snap.Span]
	if !ok {
		preds = s.cfg.Q.JoinPredsConnecting(rec.snap.Span, s.cfg.Table)
		scr.predCache[rec.snap.Span] = preds
	}
	lookupInto(&scr.lk, rec.snap, s.cfg.Table, preds)
	var out []flow.Emission
	for _, e := range entries {
		if e.TS >= rec.ceilTS || e.TS <= rec.floorTS {
			continue
		}
		if !equiMatches(e.Row, &scr.lk) {
			continue // cheap prefilter; verify would reject it anyway
		}
		cat := rec.snap.ConcatRowInto(scr.catScratch, s.cfg.Table, e.Row, e.TS)
		if !s.verify(cat) {
			scr.catScratch = cat
			continue
		}
		scr.catScratch = nil
		sp.sh.stats.ReplayMatches++
		out = append(out, flow.Emit(cat))
	}
	return out
}

// equiMatches applies a lookup's equality constraints to a raw row.
func equiMatches(row tuple.Row, lk *Lookup) bool {
	for i, c := range lk.EquiCols {
		if !row[c].Equal(lk.EquiVals[i]) {
			return false
		}
	}
	return true
}

// drainLocked replays every outstanding recording against every partition it
// still owes, returning the emissions. Fully replayed recordings are
// dropped. The shard's mutex is held.
func (sp *shardSpill) drainLocked() []flow.Emission {
	var out []flow.Emission
	for p := 0; p < spillPartitions; p++ {
		bit := uint64(1) << uint(p)
		needed := false
		for i := range sp.recs {
			if sp.recs[i].parts&bit != 0 && sp.recs[i].done&bit == 0 {
				needed = true
				break
			}
		}
		if !needed {
			continue
		}
		entries, err := sp.readPart(p)
		if err != nil {
			sp.s.cfg.Gov.fail(err)
			continue
		}
		for i := range sp.recs {
			rec := &sp.recs[i]
			if rec.parts&bit == 0 || rec.done&bit != 0 {
				continue
			}
			out = append(out, sp.replayRec(rec, entries)...)
			rec.done |= bit
		}
	}
	live := sp.recs[:0]
	for i := range sp.recs {
		if sp.recs[i].done != sp.recs[i].parts {
			live = append(live, sp.recs[i])
		}
	}
	sp.recs = live
	return out
}

// DrainSpill replays every outstanding recorded probe against the spilled
// partitions it is owed and returns the regenerated results as emissions to
// re-enter the dataflow. Engines call it at quiescence — after every EOT has
// been delivered and the dataflow has emptied — and iterate until it returns
// nothing, since replayed results may probe (and be recorded by) other
// spilled SteMs. It returns nil for SteMs without real spill.
func (s *SteM) DrainSpill() []flow.Emission {
	if !s.spillOn {
		return nil
	}
	var out []flow.Emission
	for _, sh := range s.all {
		sh.mu.Lock()
		if sh.spill != nil {
			out = append(out, sh.spill.drainLocked()...)
		}
		sh.mu.Unlock()
	}
	return out
}

// SpilledRowsOnDisk returns the number of rows currently in spill segments,
// for tests and reports.
func (s *SteM) SpilledRowsOnDisk() int {
	n := 0
	for _, sh := range s.all {
		sh.mu.Lock()
		if sh.spill != nil {
			for p := range sh.spill.parts {
				n += sh.spill.parts[p].rows
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// ---------------------------------------------------------------------------
// spillSegment: one append-only partition file, created through the
// governor's os.Root-confined spill directory.

type spillSegment struct {
	name string
	f    *os.File
	buf  []byte
	size int64
}

func newSpillSegment(g *Governor, name string) (*spillSegment, error) {
	f, err := g.createSegment(name)
	if err != nil {
		return nil, err
	}
	return &spillSegment{name: name, f: f}, nil
}

// append encodes and writes one entry. A failed or short write is rolled
// back to the previous entry boundary so the segment always decodes cleanly
// — a partial tail would make every later read (including the duplicate
// check) fail, and an undetected duplicate build produces duplicate results.
func (sg *spillSegment) append(row tuple.Row, ts tuple.Timestamp) error {
	sg.buf = appendEntry(sg.buf[:0], row, ts)
	n, err := sg.f.Write(sg.buf)
	if err == nil && n != len(sg.buf) {
		err = io.ErrShortWrite
	}
	if err != nil {
		if n > 0 {
			if _, serr := sg.f.Seek(sg.size, io.SeekStart); serr == nil {
				if terr := sg.f.Truncate(sg.size); terr != nil {
					err = fmt.Errorf("%w (rollback truncate failed: %v)", err, terr)
				}
			} else {
				err = fmt.Errorf("%w (rollback seek failed: %v)", err, serr)
			}
		}
		return err
	}
	sg.size += int64(n)
	return nil
}

// readAll decodes the whole segment without disturbing the append offset.
func (sg *spillSegment) readAll() ([]Entry, error) {
	data := make([]byte, sg.size)
	if _, err := io.ReadFull(io.NewSectionReader(sg.f, 0, sg.size), data); err != nil {
		return nil, fmt.Errorf("stem: reading spill segment %s: %w", sg.name, err)
	}
	return decodeEntries(data)
}

// remove deletes the segment file; the governor owns (and closes) the
// descriptor.
func (sg *spillSegment) remove(g *Governor) {
	g.removeSegment(sg.name)
}
