// col.go implements the SteM's columnar fast path: builds that insert a
// whole column-vector batch under one lock acquisition with slab-materialized
// storage rows, and probes that walk HashDict buckets directly from
// dictionary-encoded key vectors — no candidate list, no lookup key, and no
// concatenated tuple is allocated per row. Output matches are gathered into a
// pooled output ColBatch.
//
// The fast path is gated by colBatchOK: configurations whose semantics are
// per-row (windowed eviction, Grace-style batched bounces, memory governors
// and spill, custom dictionaries, index-AM completeness metadata, non-equi
// probe bindings) fall back to materializing the batch and running the exact
// row path, so every SteM behaviour is preserved bit-for-bit where it
// matters — the columnar path is an optimization of the common symmetric-hash
// configuration, not a second semantics.
package stem

import (
	"repro/internal/clock"
	"repro/internal/flow"
	"repro/internal/pred"
	"repro/internal/tuple"
	"repro/internal/value"
)

// colBind is one equi-join binding of a probe batch into this SteM's table:
// stored column tCol is constrained to equal the probe batch's (table, col)
// column.
type colBind struct {
	tCol int
	src  colRef
}

// isColBuild reports whether a columnar batch is a build batch for this SteM:
// unbuilt singletons of its table (mirroring processShardLocked's dispatch;
// EOTs and seeds never travel columnar).
func (s *SteM) isColBuild(cb *flow.ColBatch) bool {
	return cb.Span == tuple.Single(s.cfg.Table) && !cb.Built.Has(s.cfg.Table)
}

// colBatchOK gates the columnar fast path for one batch. Builds qualify in
// the plain symmetric-hash configuration; probes additionally require pure
// equi-join bindings and no index AM on the table — index EOT completeness is
// per bound value, so batches of probes could split between consumed and
// bounced in ways the uniform header cannot express (and the completeness
// index can grow concurrently). Everything else materializes to rows.
func (s *SteM) colBatchOK(cb *flow.ColBatch) bool {
	// Attached (shared-state) SteMs take the exact row path: the columnar
	// probe applies the resident TimeStamp window, which attached probes
	// must bypass, and spilled shared partitions are only read row-wise.
	if s.cfg.Dict != nil || s.cfg.Window > 0 || s.cfg.BuildBounceBatch > 0 ||
		s.spillOn || s.govID >= 0 || s.shared != nil {
		return false
	}
	if s.isColBuild(cb) {
		return true
	}
	if s.cfg.Q.HasIndexAM(s.cfg.Table) {
		return false
	}
	preds := s.cfg.Q.JoinPredsConnecting(cb.Span, s.cfg.Table)
	if len(preds) == 0 {
		return false
	}
	for _, p := range preds {
		if _, _, op, ok := p.BindSide(cb.Span, s.cfg.Table); !ok || op != pred.Eq {
			return false
		}
	}
	return true
}

// ShardOfCol implements flow.ColSharded: builds address the hash shard of
// their partition-column value; probes that bind the partition column via an
// equi-join address its hash shard; everything else sweeps (flow.ShardAny).
// It mirrors ShardOf exactly — Hash64At is value.V.Hash64 on the vector row.
func (s *SteM) ShardOfCol(cb *flow.ColBatch, i int) int {
	if len(s.shards) == 1 {
		return 0
	}
	if s.isColBuild(cb) {
		return int(cb.Tabs[s.cfg.Table].Cols[s.pcol].Hash64At(i) & s.shardMask)
	}
	for _, src := range s.pcolSources {
		if cb.Span.Has(src.table) {
			return int(cb.Tabs[src.table].Cols[src.col].Hash64At(i) & s.shardMask)
		}
	}
	return flow.ShardAny
}

// ProcessColBatch implements flow.ColModule (single-shard dispatch).
func (s *SteM) ProcessColBatch(b *flow.Batch, now clock.Time) ([]flow.Emission, []flow.ColEmission, clock.Duration) {
	return s.processCol(b, -1, now)
}

// ProcessColShard implements flow.ColSharded: services a columnar batch the
// engine partitioned to one shard's queue (or assigned here for a sweep).
func (s *SteM) ProcessColShard(shard int, b *flow.Batch, now clock.Time) ([]flow.Emission, []flow.ColEmission, clock.Duration) {
	return s.processCol(b, shard, now)
}

// processCol dispatches one batch: row payloads and gated configurations run
// the exact row path (materializing columnar rows first); qualifying columnar
// batches run the vectorized build/probe.
func (s *SteM) processCol(b *flow.Batch, homeShard int, now clock.Time) ([]flow.Emission, []flow.ColEmission, clock.Duration) {
	cb := b.Col
	if cb == nil {
		out, cost := s.processRowDelegate(b, homeShard, now)
		return out, nil, cost
	}
	if !s.colBatchOK(cb) || (len(s.shards) > 1 && homeShard < 0) {
		rb := flow.BatchOf(cb.Materialize()...)
		out, cost := s.processRowDelegate(rb, homeShard, now)
		return out, nil, cost
	}
	if s.isColBuild(cb) {
		sh := &s.shards[0]
		if homeShard > 0 {
			sh = &s.shards[homeShard]
		}
		return s.buildCols(cb, sh)
	}
	// Probe: partition-bound batches probe their home shard; batches that
	// bind no partition column sweep every shard under gmu, exactly like the
	// row path's sweepRun.
	if len(s.shards) > 1 && s.ShardOfCol(cb, cb.RowAt(0)) == flow.ShardAny {
		s.gmu.Lock()
		defer s.gmu.Unlock()
		for _, sh := range s.all {
			sh.mu.Lock()
		}
		defer func() {
			for _, sh := range s.all {
				sh.mu.Unlock()
			}
		}()
		return s.probeCols(cb, s.all, &s.gscr, &s.gstats)
	}
	sh := &s.shards[0]
	if homeShard > 0 {
		sh = &s.shards[homeShard]
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.probeCols(cb, sh.self[:], &sh.scr, &sh.stats)
}

// processRowDelegate runs the row path for a batch, honouring per-shard
// delivery when the engine addressed one.
func (s *SteM) processRowDelegate(b *flow.Batch, homeShard int, now clock.Time) ([]flow.Emission, clock.Duration) {
	if homeShard >= 0 {
		return s.ProcessShard(homeShard, b, now)
	}
	return s.ProcessBatch(b, now)
}

// buildCols stores every live row of a build batch into sh under one lock
// acquisition. Stored rows are slab-materialized — one backing array for the
// whole batch — duplicates are dropped from the selection vector (consumed,
// per Section 3.2's set semantics), and the surviving batch bounces back in
// place with its Built bit and per-row build timestamps set: the zero-copy
// analogue of the per-tuple build bounce.
func (s *SteM) buildCols(cb *flow.ColBatch, sh *shard) ([]flow.Emission, []flow.ColEmission, clock.Duration) {
	table := s.cfg.Table
	tab := &cb.Tabs[table]
	arity := len(tab.Cols)
	live := cb.Rows()
	cost := clock.Duration(live) * s.cfg.BuildCost

	sh.mu.Lock()
	hd := sh.dict.(*HashDict) // colBatchOK guarantees the default dictionary
	slab := make([]value.V, live*arity)
	si := 0
	sel := cb.EnsureSel()
	out := sel[:0]
	stored := int64(0)
	for _, i32 := range sel {
		i := int(i32)
		h := value.HashSeed
		for c := 0; c < arity; c++ {
			h = tab.Cols[c].HashValInto(h, i)
		}
		if hd.containsVec(h, tab, i) {
			sh.stats.DupBuilds++
			continue // duplicate from a competitive AM: consumed
		}
		row := tuple.Row(slab[si : si+arity : si+arity])
		si += arity
		for c := 0; c < arity; c++ {
			row[c] = tab.Cols[c].ValueAt(i)
		}
		ts := s.cfg.TS.Next()
		hd.insertHashed(row, ts, h)
		cb.SetTS(table, i, ts)
		sh.stats.Builds++
		stored++
		out = append(out, i32)
	}
	sh.mu.Unlock()
	s.liveRows.Add(stored)

	cb.Sel = out
	if len(out) == 0 {
		return nil, nil, cost // every row was a duplicate: batch consumed
	}
	cb.Built = cb.Built.With(table)
	return nil, []flow.ColEmission{{B: cb}}, cost
}

// probeCols probes every live row of a batch against the held shards (whose
// mutexes the caller holds): per row, the narrowest hash bucket among the
// equi-binding columns is walked directly, candidates are verified
// (hash-with-verify plus every newly applicable predicate) and gathered into
// a pooled output batch, and the TimeStamp / LastMatchTimeStamp windows are
// enforced per stored entry. The bounce decision is batch-uniform (colBatchOK
// excluded per-row completeness); bounced batches split by matched/unmatched
// so the HasMatches header stays truthful for routing policies.
func (s *SteM) probeCols(cb *flow.ColBatch, held []*shard, scr *probeScratch, stats *Stats) ([]flow.Emission, []flow.ColEmission, clock.Duration) {
	q := s.cfg.Q
	table := s.cfg.Table
	live := cb.Rows()
	stats.Probes += uint64(live)

	preds, ok := scr.predCache[cb.Span]
	if !ok {
		preds = q.JoinPredsConnecting(cb.Span, table)
		scr.predCache[cb.Span] = preds
	}
	// Bind plan: stored column <- probe-side column, all equi (gated).
	plan := scr.colPlan[:0]
	for _, p := range preds {
		tCol, from, _, _ := p.BindSide(cb.Span, table)
		plan = append(plan, colBind{tCol: tCol, src: colRef{from.Table, from.Col}})
	}
	scr.colPlan = plan
	// Dictionary index position per plan entry (identical across shards).
	di := scr.colDi[:0]
	hd0 := held[0].dict.(*HashDict)
	for _, pl := range plan {
		di = append(di, hd0.colIndex(pl.tCol))
	}
	scr.colDi = di

	outSpan := cb.Span.With(table)
	// Predicates to verify per candidate: everything newly applicable on the
	// concatenation (the row path's verify walks the same set per tuple).
	verify := scr.colVerify[:0]
	var outDone tuple.PredSet
	for _, p := range q.Preds {
		if cb.Done.Has(p.ID) || !p.ApplicableTo(outSpan) {
			continue
		}
		verify = append(verify, p)
		outDone = outDone.With(p.ID)
	}
	scr.colVerify = verify

	if cap(scr.colMatched) < live {
		scr.colMatched = make([]bool, live)
	}
	matched := scr.colMatched[:live]
	for k := range matched {
		matched[k] = false
	}

	lastMatch := cb.LastMatchTS
	var outCB *flow.ColBatch
	totalMatches := 0
	anyMatched, anyUnmatched := false, false

	for k := 0; k < live; k++ {
		i := cb.RowAt(k)
		probeTS := cb.RowTS(i)
		rowMatches := 0
		for _, shd := range held {
			hd := shd.dict.(*HashDict)
			// Pick the narrowest bucket among the bind columns (the row
			// path's Candidates heuristic), hashing key vectors via the
			// dictionary-encoded per-code tables.
			best := -1
			var bestPoss []int
			for pi, pl := range plan {
				if di[pi] < 0 {
					continue
				}
				poss := hd.bucket(di[pi], cb.Tabs[pl.src.table].Cols[pl.src.col].Hash64At(i))
				if best < 0 || len(poss) < len(bestPoss) {
					best, bestPoss = pi, poss
				}
			}
			var entries []Entry
			var poss []int
			if best < 0 {
				entries = hd.all() // no indexed bind column: full scan
			} else {
				poss = bestPoss
			}
			keyCol := -1
			var keyVal value.V
			if best >= 0 {
				keyCol = plan[best].tCol
				keyVal = cb.Value(plan[best].src.table, plan[best].src.col, i)
			}
			for pi := 0; ; pi++ {
				var e Entry
				if poss != nil {
					if pi >= len(poss) {
						break
					}
					var evicted bool
					e, evicted = hd.entry(poss[pi])
					if evicted {
						continue
					}
					// Hash-with-verify: the bucket may hold colliding values.
					if !e.Row[keyCol].Equal(keyVal) {
						continue
					}
				} else {
					if pi >= len(entries) {
						break
					}
					e = entries[pi]
				}
				// TimeStamp constraint + repeated-probe guard (§3.5).
				if e.TS >= probeTS || e.TS <= lastMatch {
					continue
				}
				okRow := true
				for _, p := range verify {
					if !s.evalColCandidate(p, cb, i, e.Row) {
						okRow = false
						break
					}
				}
				if !okRow {
					continue
				}
				if outCB == nil {
					outCB = s.newProbeOutput(cb, outSpan, outDone)
				}
				s.appendMatch(outCB, cb, i, e)
				rowMatches++
			}
		}
		if rowMatches > 0 {
			matched[k] = true
			anyMatched = true
			stats.Matches += uint64(rowMatches)
			totalMatches += rowMatches
		} else {
			anyUnmatched = true
		}
	}

	var cols []flow.ColEmission
	if outCB != nil {
		cols = append(cols, flow.ColEmission{B: outCB})
	}

	// Bounce decision — batch-uniform: completeness is the full (scan) EOT
	// only, and safety-via-scan depends only on header state.
	s.eotMu.RLock()
	complete := s.fullEOT
	s.eotMu.RUnlock()
	bounced := 0
	if !complete {
		safeViaScan := q.HasScanAM(table) && cb.Built.Contains(cb.Span)
		if !safeViaScan {
			var maxTS tuple.Timestamp
			for _, shd := range held {
				if m := shd.dict.MaxTS(); m > maxTS {
					maxTS = m
				}
			}
			bounced = live
			stats.ProbeBounces += uint64(live)
			if anyMatched && anyUnmatched {
				// Split so HasMatches stays truthful per batch: matched rows
				// move to a pooled sibling, unmatched rows keep the input
				// batch's storage via the selection vector.
				mb := flow.GetColBatch(cb.NTables)
				mb.CopyHeaderFrom(cb)
				sel := cb.EnsureSel()
				keep := sel[:0]
				for k, m := range matched {
					if m {
						mb.AppendRowFrom(cb, int(sel[k]))
					} else {
						keep = append(keep, sel[k])
					}
				}
				cb.Sel = keep
				for _, b := range []*flow.ColBatch{cb, mb} {
					b.PriorProber = true
					b.ProbeTable = table
					b.LastMatchTS = maxTS
				}
				cb.HasMatches = false
				mb.HasMatches = true
				cols = append(cols, flow.ColEmission{B: mb}, flow.ColEmission{B: cb})
			} else {
				cb.PriorProber = true
				cb.ProbeTable = table
				cb.HasMatches = anyMatched
				cb.LastMatchTS = maxTS
				cols = append(cols, flow.ColEmission{B: cb})
			}
		}
	}

	cost := clock.Duration(live)*s.cfg.ProbeCost + clock.Duration(totalMatches+bounced)*s.cfg.PerMatchCost
	return nil, cols, cost
}

// newProbeOutput prepares a pooled output batch for probe matches: the
// concatenated span, the merged done bits (every newly applicable predicate
// is verified before a row is appended), and the Built bit of the stored
// table — exactly ConcatRowInto's state, with routing state reset.
func (s *SteM) newProbeOutput(cb *flow.ColBatch, outSpan tuple.TableSet, outDone tuple.PredSet) *flow.ColBatch {
	out := flow.GetColBatch(cb.NTables)
	out.Span = outSpan
	out.Done = cb.Done.Union(outDone)
	out.Built = cb.Built.With(s.cfg.Table)
	for t := range cb.Span.Each {
		out.EnsureCols(t, len(cb.Tabs[t].Cols))
	}
	out.EnsureCols(s.cfg.Table, s.cfg.Q.Tables[s.cfg.Table].Arity())
	return out
}

// appendMatch gathers the concatenation of probe row i and stored entry e
// onto the output batch: probe-side columns and timestamps copy over, the
// stored row fills this SteM's table with its build timestamp.
func (s *SteM) appendMatch(out *flow.ColBatch, cb *flow.ColBatch, i int, e Entry) {
	n := out.N()
	for t := range cb.Span.Each {
		stab := &cb.Tabs[t]
		for c := range stab.Cols {
			out.Tabs[t].Cols[c].AppendV(stab.Cols[c].ValueAt(i))
		}
		if ts := cb.TSAt(t, i); ts != tuple.InfTS {
			out.SetTS(t, n, ts)
		}
	}
	ttab := &out.Tabs[s.cfg.Table]
	for c, v := range e.Row {
		ttab.Cols[c].AppendV(v)
	}
	out.SetTS(s.cfg.Table, n, e.TS)
	out.SetRowCount(n + 1)
}

// evalColCandidate evaluates predicate p on the virtual concatenation of
// probe row i and a stored row of this SteM's table, reproducing P.Eval on
// the materialized concatenation (EOT markers never satisfy a predicate).
func (s *SteM) evalColCandidate(p pred.P, cb *flow.ColBatch, i int, row tuple.Row) bool {
	table := s.cfg.Table
	refsTable := p.Left.Table == table || (p.IsJoin() && p.Right.Table == table)
	if !refsTable {
		return pred.EvalCol(p, cb, i)
	}
	if p.IsJoin() {
		return pred.EvalColRow(p, cb, i, table, row)
	}
	// Selection on the stored table, pushed late by the eddy.
	return pred.EvalRowSel(p, row)
}
