package stem

// Unit tests for the real-spill layer: the segment codec, the byte
// governor's accounting and cleanup, spill-at-build with exact duplicate
// detection through the disk, the recorded-probe replay, and partition
// recall.

import (
	"os"
	"testing"

	"repro/internal/tuple"
	"repro/internal/value"
)

func TestSpillCodecRoundTrip(t *testing.T) {
	rows := []tuple.Row{
		row(1, 2),
		{value.NewStr("hello"), value.NewInt(-7)},
		{value.NewNull(), value.NewStr("")},
		{value.NewEOT(), value.NewStr("emb,edded\nnewline")},
	}
	var buf []byte
	for i, r := range rows {
		buf = appendEntry(buf, r, tuple.Timestamp(i+1))
	}
	got, err := decodeEntries(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(rows))
	}
	for i, e := range got {
		if e.TS != tuple.Timestamp(i+1) {
			t.Errorf("entry %d: ts %d, want %d", i, e.TS, i+1)
		}
		if !e.Row.Equal(rows[i]) {
			t.Errorf("entry %d: row %v, want %v", i, e.Row, rows[i])
		}
	}
	// Every truncation of a valid stream must error, not misdecode.
	for cut := 1; cut < len(buf); cut++ {
		if _, err := decodeEntries(buf[:cut]); err == nil {
			// A cut landing exactly on an entry boundary is a valid shorter
			// stream; anything else must fail.
			if es, _ := decodeEntries(buf[:cut]); len(es) == 0 || cut != len(appendEntryAll(rows[:len(es)])) {
				t.Fatalf("truncation at %d decoded silently", cut)
			}
		}
	}
}

func appendEntryAll(rows []tuple.Row) []byte {
	var buf []byte
	for i, r := range rows {
		buf = appendEntry(buf, r, tuple.Timestamp(i+1))
	}
	return buf
}

func TestRowFootprint(t *testing.T) {
	small := RowFootprint(row(1, 2))
	big := RowFootprint(tuple.Row{value.NewStr("a long string payload"), value.NewInt(1)})
	if small <= 0 || big <= small {
		t.Fatalf("footprints: small=%d big=%d", small, big)
	}
}

func TestSpillGovernorAccounting(t *testing.T) {
	g, err := NewSpillGovernor(1000, AllocEqual, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	id := g.register()
	fp := int64(112)
	admitted := 0
	for i := 0; i < 20; i++ {
		if g.admitBuild(id, fp) {
			admitted++
		}
	}
	if want := int(1000 / fp); admitted != want {
		t.Fatalf("admitted %d rows, want %d", admitted, want)
	}
	res, sp := g.BytesStats()
	if res != int64(admitted)*fp || sp != int64(20-admitted)*fp {
		t.Fatalf("BytesStats = (%d, %d)", res, sp)
	}
	// Recall honors the global budget: nothing fits while resident is full.
	if g.tryRecall(id, fp) {
		t.Fatal("tryRecall succeeded beyond the budget")
	}
}

func TestSpillGovernorCloseRemovesDir(t *testing.T) {
	base := t.TempDir()
	g, err := NewSpillGovernor(1, AllocEqual, base)
	if err != nil {
		t.Fatal(err)
	}
	run := g.SpillDir()
	f, err := g.createSegment("t0-s0-p0.seg")
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("data")
	f.Close()
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(run); !os.IsNotExist(err) {
		t.Fatalf("run dir %s survived Close (err=%v)", run, err)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// spillSteM builds a governed S-SteM (table 1) plus an ungoverned sibling
// registration so the governor has two members (the realistic shape: the
// whole query's SteMs share one governor).
func spillSteM(t *testing.T, budget int64) (*SteM, *Governor, *Counter) {
	t.Helper()
	g, err := NewSpillGovernor(budget, AllocByProbes, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	q := twoTableQ(t, true, false)
	cnt := &Counter{}
	s := New(Config{Table: 1, Q: q, TS: cnt, Gov: g})
	New(Config{Table: 0, Q: q, TS: cnt, Gov: g}) // second member, never built
	return s, g, cnt
}

func sProbe(cnt *Counter, a int64) *tuple.Tuple {
	p := singleton(2, 0, row(1, a))
	p.CompTS[0] = cnt.Next()
	p.Built = tuple.Single(0)
	return p
}

// TestSpillBuildProbeReplay drives the full spill lifecycle on one SteM: a
// pathological budget spills every build, probes find nothing live but are
// recorded, and DrainSpill regenerates exactly the owed concatenations.
func TestSpillBuildProbeReplay(t *testing.T) {
	s, _, cnt := spillSteM(t, 1)
	const n = 40
	for x := 0; x < n; x++ {
		out := process(t, s, singleton(2, 1, row(int64(x), int64(x*100))))
		if len(out) != 1 {
			t.Fatalf("spilled build must still bounce back, got %v", out)
		}
	}
	if s.Size() != 0 || s.SpilledRowsOnDisk() != n {
		t.Fatalf("resident=%d onDisk=%d, want 0/%d", s.Size(), s.SpilledRowsOnDisk(), n)
	}

	// A duplicate build must be detected through the disk.
	if out := process(t, s, singleton(2, 1, row(3, 300))); len(out) != 0 {
		t.Fatalf("duplicate of a spilled row must be consumed, got %v", out)
	}
	if st := s.Stats(); st.DupBuilds != 1 {
		t.Fatalf("DupBuilds = %d, want 1", st.DupBuilds)
	}

	// Probes: no live matches, but each is recorded.
	for x := 0; x < n; x++ {
		out := process(t, s, sProbe(cnt, int64(x)))
		for _, em := range out {
			if em.T.Span.Count() > 1 {
				t.Fatalf("probe of a fully spilled SteM returned a live match %v", em.T)
			}
		}
	}

	// Replay regenerates one concatenation per probe.
	ems := s.DrainSpill()
	if len(ems) != n {
		t.Fatalf("replay produced %d results, want %d", len(ems), n)
	}
	seen := map[string]bool{}
	for _, em := range ems {
		if em.T.Span != tuple.Single(0).With(1) {
			t.Fatalf("replay emission spans %v", em.T.Span)
		}
		seen[em.T.ResultKey()] = true
	}
	if len(seen) != n {
		t.Fatalf("replay produced %d distinct results, want %d", len(seen), n)
	}
	// A second drain owes nothing.
	if ems := s.DrainSpill(); len(ems) != 0 {
		t.Fatalf("second drain replayed %d extra results", len(ems))
	}
}

// TestSpillRecall forces the un-spill path: a moderate budget spills part of
// the build set while global headroom remains, and a run of probes then
// recalls a hot partition — its rows become resident, its recordings are
// satisfied, and no result is lost or duplicated across live + replay.
func TestSpillRecall(t *testing.T) {
	s, _, cnt := spillSteM(t, 8<<10)
	const n = 200
	for x := 0; x < n; x++ {
		process(t, s, singleton(2, 1, row(int64(x), int64(x*100))))
	}
	spilled := s.SpilledRowsOnDisk()
	if spilled == 0 || spilled == n {
		t.Fatalf("want a partial spill, got %d/%d on disk", spilled, n)
	}

	results := map[string]int{}
	for x := 0; x < n; x++ {
		for _, em := range process(t, s, sProbe(cnt, int64(x))) {
			if em.T.Span.Count() > 1 {
				results[em.T.ResultKey()]++
			}
		}
	}
	for _, em := range s.DrainSpill() {
		results[em.T.ResultKey()]++
	}
	if len(results) != n {
		t.Fatalf("got %d distinct results, want %d", len(results), n)
	}
	for k, c := range results {
		if c != 1 {
			t.Fatalf("result %s produced %d times", k, c)
		}
	}
	st := s.Stats()
	if st.Recalls == 0 {
		t.Fatal("no partition was recalled despite global headroom and hot probes")
	}
	if s.SpilledRowsOnDisk() >= spilled {
		t.Fatalf("recall did not shrink disk rows: %d -> %d", spilled, s.SpilledRowsOnDisk())
	}
}
