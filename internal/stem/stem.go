// Package stem implements State Modules (SteMs), the paper's core
// contribution (Section 2.1.4). A SteM is "half a join": a dictionary over
// the singleton tuples of one base table that handles build (insert) and
// probe (lookup) requests, returning concatenated matches to the eddy. The
// SteM internally enforces the SteM BounceBack and TimeStamp constraints of
// Table 2, so "the routing policy implementor need not be aware of them at
// all".
package stem

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/flow"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/tuple"
	"repro/internal/value"
)

// Counter issues the global, monotonically increasing build timestamps of
// the TimeStamp constraint. It is shared by every SteM of a query and safe
// for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Next returns the next timestamp (starting at 1, so 0 is "never matched"
// for LastMatchTimeStamp purposes).
func (c *Counter) Next() tuple.Timestamp { return c.v.Add(1) }

// ProbeBounceMode selects when a SteM bounces back probe tuples beyond the
// mandatory cases of Table 2.
type ProbeBounceMode uint8

const (
	// BounceAuto bounces a probe only when required for correctness: the
	// SteM cannot prove it holds all matches and either the table has no
	// scan AM or some base component of the probe is not yet cached.
	BounceAuto ProbeBounceMode = iota
	// BounceIfIndexAM additionally bounces any incomplete probe when the
	// table has an index AM, even if a scan AM exists. This is the Section
	// 4.1 policy hook that lets the eddy choose, per bounced tuple, between
	// probing the index AM and relying on the scan — the mechanism behind
	// the index/hash hybridization of Section 4.3.
	BounceIfIndexAM
)

// Config parameterizes a SteM.
type Config struct {
	// Table is the query position of the base table this SteM materializes.
	Table int
	// Q is the enclosing query.
	Q *query.Q
	// TS is the shared build-timestamp counter.
	TS *Counter
	// Dict is the storage structure; nil defaults to a HashDict over the
	// table's join columns.
	Dict Dict
	// BuildCost and ProbeCost are the service times charged per operation.
	BuildCost clock.Duration
	ProbeCost clock.Duration
	// PerMatchCost is charged per concatenated match returned.
	PerMatchCost clock.Duration
	// ProbeBounce selects the probe bounce-back mode.
	ProbeBounce ProbeBounceMode
	// BuildBounceBatch, when >0, holds back build bounce-backs and releases
	// them in batches of this size, clustered by the hash partition of the
	// first join column — the "asynchronous" bounce-back that makes the SteM
	// routing simulate a Grace hash join (Section 3.1). 0 bounces builds
	// immediately (symmetric-hash behaviour).
	BuildBounceBatch int
	// Window, when >0, bounds the number of stored rows; the oldest rows are
	// evicted on overflow, supporting sliding-window continuous queries
	// (Section 2.3 mentions [17, 5] use SteMs with eviction). Eviction
	// invalidates completeness, so windowed SteMs never claim to hold all
	// matches.
	Window int
	// Gov, when non-nil, places this SteM under a shared memory Governor
	// (the Section 6 extension): rows beyond the SteM's allocation are
	// treated as spilled, and probes pay a proportional penalty.
	Gov *Governor
}

// Stats are cumulative SteM counters, exposed for experiments and tests.
type Stats struct {
	Builds       uint64 // rows stored
	DupBuilds    uint64 // builds consumed as set-semantics duplicates
	Probes       uint64 // probe tuples processed
	Matches      uint64 // concatenated results returned
	ProbeBounces uint64 // probes bounced back
	Evictions    uint64 // rows evicted by the window bound
	EOTs         uint64 // EOT tuples built in
}

// SteM is a State Module on one base table.
type SteM struct {
	cfg  Config
	name string

	mu      sync.Mutex
	dict    Dict
	fullEOT bool
	// eot records, per distinct bound-column signature, the bound-value rows
	// for which all matches have been transmitted (hash-with-verify keyed).
	eot []eotIdx
	// pending holds build tuples awaiting a batched bounce-back.
	pending []*tuple.Tuple
	// joinCols are the table's columns involved in join predicates.
	joinCols []int
	stats    Stats
	// govID is this SteM's membership handle in cfg.Gov (-1 when ungoverned).
	govID int

	// Per-probe scratch state, guarded by mu like the dictionary itself:
	// lk is the reused lookup, bindScratch the reused bound-value row, and
	// catScratch recycles concatenations that failed predicate verification,
	// so a probe with non-qualifying candidates allocates no tuples.
	lk          Lookup
	bindScratch tuple.Row
	catScratch  *tuple.Tuple
	// predCache memoizes JoinPredsConnecting per probe span.
	predCache map[tuple.TableSet][]pred.P
}

// eotIdx is the completeness metadata of index EOT tuples for one
// bound-column signature: the set of bound-value rows fully transmitted,
// keyed by row hash and verified by row equality on lookup.
type eotIdx struct {
	cols []int
	keys map[uint64][]tuple.Row
}

// New creates a SteM from a config.
func New(cfg Config) *SteM {
	s := &SteM{
		cfg:       cfg,
		name:      fmt.Sprintf("SteM(%s)", cfg.Q.Tables[cfg.Table].Name),
		predCache: make(map[tuple.TableSet][]pred.P),
	}
	s.joinCols = JoinCols(cfg.Q, cfg.Table)
	if cfg.Dict != nil {
		s.dict = cfg.Dict
	} else {
		s.dict = NewHashDict(s.joinCols)
	}
	s.govID = -1
	if cfg.Gov != nil {
		s.govID = cfg.Gov.register()
	}
	return s
}

// JoinCols returns the columns of table t involved in join predicates of q —
// the columns a default SteM builds hash indexes on.
func JoinCols(q *query.Q, t int) []int {
	seen := make(map[int]bool)
	var cols []int
	for _, p := range q.Preds {
		if !p.IsJoin() {
			continue
		}
		if p.Left.Table == t && !seen[p.Left.Col] {
			seen[p.Left.Col] = true
			cols = append(cols, p.Left.Col)
		}
		if p.Right.Table == t && !seen[p.Right.Col] {
			seen[p.Right.Col] = true
			cols = append(cols, p.Right.Col)
		}
	}
	sort.Ints(cols)
	return cols
}

// Name implements flow.Module.
func (s *SteM) Name() string { return s.name }

// Parallel implements flow.Module: a SteM is a single-server module.
func (s *SteM) Parallel() int { return 1 }

// Table returns the query position of the table this SteM materializes.
func (s *SteM) Table() int { return s.cfg.Table }

// Stats returns a snapshot of the SteM's counters.
func (s *SteM) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Size returns the number of stored rows.
func (s *SteM) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dict.Len()
}

// Process implements flow.Module, dispatching on the tuple's role:
// EOT tuples and unbuilt singletons of this SteM's table are builds;
// everything else is a probe.
func (s *SteM) Process(t *tuple.Tuple, now clock.Time) ([]flow.Emission, clock.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.processLocked(t, nil)
}

// ProcessBatch implements flow.BatchModule: the dictionary lock is taken
// once for the whole batch, and probes sharing a lookup key reuse one
// candidate list (builds within the batch invalidate it, since they change
// the dictionary). A batch of one behaves exactly like Process.
func (s *SteM) ProcessBatch(b *flow.Batch, now clock.Time) ([]flow.Emission, clock.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []flow.Emission
	var total clock.Duration
	var pc probeCache
	for _, t := range b.Tuples {
		ems, cost := s.processLocked(t, &pc)
		out = append(out, ems...)
		total += cost
	}
	return out, total
}

// processLocked serves one tuple with s.mu held. pc, when non-nil, caches
// probe candidate lists across the tuples of one batch.
func (s *SteM) processLocked(t *tuple.Tuple, pc *probeCache) ([]flow.Emission, clock.Duration) {
	switch {
	case t.EOT != nil && t.EOT.Table == s.cfg.Table:
		return s.buildEOT(t), s.cfg.BuildCost
	case t.IsSingleton() && t.SingleTable() == s.cfg.Table && !t.Built.Has(s.cfg.Table):
		if pc != nil {
			pc.invalidate()
		}
		return s.build(t), s.cfg.BuildCost
	default:
		out := s.probe(t, pc)
		cost := s.cfg.ProbeCost + clock.Duration(len(out))*s.cfg.PerMatchCost
		if s.govID >= 0 {
			cost += s.cfg.Gov.probePenalty(s.govID)
		}
		return out, cost
	}
}

// probeCache memoizes dictionary candidate lists by hashed lookup key within
// one batch, so probes grouped on the same key hash once. Entries carry the
// equality constraints they were computed for, verifying them on every hit
// (hash-with-verify: two lookups colliding on the 64-bit key must not share
// candidates). Builds and evictions invalidate the cache.
type probeCache struct {
	m map[uint64][]cachedCands
}

// cachedCands is one verified cache entry.
type cachedCands struct {
	cols []int
	vals []value.V
	es   []Entry
}

func (pc *probeCache) invalidate() { pc.m = nil }

// candidates returns the dictionary candidates for lk, consulting and
// filling the cache for keyable (pure-equality) lookups.
func (pc *probeCache) candidates(d Dict, lk Lookup) []Entry {
	if pc == nil {
		return d.Candidates(lk)
	}
	key, ok := lk.cacheKey()
	if !ok {
		return d.Candidates(lk)
	}
	for _, c := range pc.m[key] {
		if lk.equiEqual(c.cols, c.vals) {
			return c.es
		}
	}
	es := d.Candidates(lk)
	if pc.m == nil {
		pc.m = make(map[uint64][]cachedCands)
	}
	// The lookup's slices are per-SteM scratch reused by the next probe, so
	// the cache keeps its own copies.
	pc.m[key] = append(pc.m[key], cachedCands{
		cols: slices.Clone(lk.EquiCols),
		vals: slices.Clone(lk.EquiVals),
		es:   es,
	})
	return es
}

// build stores a singleton and bounces it back (SteM BounceBack: "a SteM
// must bounce back a build tuple unless it is a duplicate of another tuple
// already in the SteM").
func (s *SteM) build(t *tuple.Tuple) []flow.Emission {
	row := t.Comp[s.cfg.Table]
	if s.dict.Contains(row) {
		s.stats.DupBuilds++
		return nil // duplicate from a competitive AM: consumed (Section 3.2)
	}
	ts := s.cfg.TS.Next()
	s.dict.Insert(row, ts)
	t.CompTS[s.cfg.Table] = ts
	t.Built = t.Built.With(s.cfg.Table)
	s.stats.Builds++
	if s.govID >= 0 {
		s.cfg.Gov.noteBuild(s.govID)
	}
	if s.cfg.Window > 0 {
		for s.dict.Len() > s.cfg.Window {
			if _, ok := s.dict.Evict(); !ok {
				break
			}
			s.stats.Evictions++
			if s.govID >= 0 {
				s.cfg.Gov.noteEvict(s.govID)
			}
		}
	}
	if s.cfg.BuildBounceBatch > 0 {
		s.pending = append(s.pending, t)
		if len(s.pending) >= s.cfg.BuildBounceBatch {
			return s.flushPending()
		}
		return []flow.Emission{} // held; still in dataflow (engine tracks via pendingHold)
	}
	return []flow.Emission{flow.Emit(t)}
}

// flushPending releases held build bounce-backs clustered by the hash
// partition of the first join column, modelling the I/O locality of a Grace
// hash join's partition-at-a-time processing.
func (s *SteM) flushPending() []flow.Emission {
	p := s.pending
	s.pending = nil
	if len(s.joinCols) > 0 {
		c := s.joinCols[0]
		sort.SliceStable(p, func(i, j int) bool {
			hi := p[i].Comp[s.cfg.Table][c].Hash64() % 16
			hj := p[j].Comp[s.cfg.Table][c].Hash64() % 16
			return hi < hj
		})
	}
	out := make([]flow.Emission, len(p))
	for i, t := range p {
		out[i] = flow.Emit(t)
	}
	return out
}

// HeldBuilds returns the number of build tuples awaiting a batched bounce.
func (s *SteM) HeldBuilds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// buildEOT records an End-Of-Transmission tuple. "An EOT tuple from an AM on
// S is also routed as a build tuple to SteM(S)"; it is stored (as
// completeness metadata) and consumed. A full (scan) EOT also flushes any
// held batched builds.
func (s *SteM) buildEOT(t *tuple.Tuple) []flow.Emission {
	s.stats.EOTs++
	info := t.EOT
	if len(info.BoundCols) == 0 {
		s.fullEOT = true
		if s.cfg.BuildBounceBatch > 0 {
			return s.flushPending()
		}
		return nil
	}
	idx := s.eotIdxFor(info.BoundCols)
	row := t.Comp[s.cfg.Table]
	bound := make(tuple.Row, len(info.BoundCols))
	for i, c := range info.BoundCols {
		bound[i] = row[c]
	}
	h := bound.Hash64()
	for _, r := range idx.keys[h] {
		if r.Equal(bound) {
			return nil // already recorded
		}
	}
	idx.keys[h] = append(idx.keys[h], bound)
	return nil
}

// eotIdxFor returns (creating on first use) the completeness index for one
// bound-column signature. The signature list is tiny — one entry per
// distinct index key shape — so a linear scan beats any map keying.
func (s *SteM) eotIdxFor(cols []int) *eotIdx {
	for i := range s.eot {
		if slices.Equal(s.eot[i].cols, cols) {
			return &s.eot[i]
		}
	}
	s.eot = append(s.eot, eotIdx{
		cols: slices.Clone(cols),
		keys: make(map[uint64][]tuple.Row),
	})
	return &s.eot[len(s.eot)-1]
}

// probe finds matches for t among stored rows, concatenates them (verifying
// every newly applicable predicate and enforcing the TimeStamp rule), and
// decides whether to bounce t back per the SteM BounceBack constraint.
func (s *SteM) probe(t *tuple.Tuple, pc *probeCache) []flow.Emission {
	s.stats.Probes++
	preds, ok := s.predCache[t.Span]
	if !ok {
		preds = s.cfg.Q.JoinPredsConnecting(t.Span, s.cfg.Table)
		s.predCache[t.Span] = preds
	}
	lookupInto(&s.lk, t, s.cfg.Table, preds)
	probeTS := t.TS()
	lastMatch := t.LastMatchTS

	var out []flow.Emission
	for _, e := range pc.candidates(s.dict, s.lk) {
		// TimeStamp constraint: result returned iff ts(probe) > ts(match);
		// LastMatchTimeStamp guards repeated probes (§3.5).
		if e.TS >= probeTS || e.TS <= lastMatch {
			continue
		}
		// Concatenate the stored row directly (no singleton materialization),
		// recycling the component slices of failed concatenations.
		cat := t.ConcatRowInto(s.catScratch, s.cfg.Table, e.Row, e.TS)
		if !s.verify(cat) {
			s.catScratch = cat
			continue
		}
		s.catScratch = nil
		s.stats.Matches++
		out = append(out, flow.Emit(cat))
	}

	t.LastProbeMatches = len(out)
	if s.shouldBounce(t) {
		t.PriorProber = true
		t.ProbeTable = s.cfg.Table
		t.LastMatchTS = s.dict.MaxTS()
		s.stats.ProbeBounces++
		out = append(out, flow.Emit(t))
	}
	return out
}

// verify evaluates every query predicate that is applicable to the
// concatenated tuple and not already passed, marking the done bits; it
// reports whether all of them hold ("these concatenated matches are all
// tuples ... that satisfy all query predicates that can be evaluated on the
// columns in t and S").
func (s *SteM) verify(cat *tuple.Tuple) bool {
	for _, p := range s.cfg.Q.Preds {
		if cat.Done.Has(p.ID) || !p.ApplicableTo(cat.Span) {
			continue
		}
		if !p.Eval(cat) {
			return false
		}
		cat.Done = cat.Done.With(p.ID)
	}
	return true
}

// shouldBounce implements the SteM BounceBack rule for probes (Table 2),
// plus the BounceIfIndexAM extension of Section 4.1.
func (s *SteM) shouldBounce(t *tuple.Tuple) bool {
	if s.complete(t) {
		return false // the SteM provably holds all matches: consume.
	}
	q := s.cfg.Q
	safeViaScan := q.HasScanAM(s.cfg.Table) && t.Built.Contains(t.Span) && s.cfg.Window == 0
	if !safeViaScan {
		return true // mandatory bounce: missing matches would otherwise be lost.
	}
	if s.cfg.ProbeBounce == BounceIfIndexAM && q.HasIndexAM(s.cfg.Table) {
		return true // optional bounce: give the eddy the index-probe choice.
	}
	return false
}

// complete reports whether the SteM provably contains all matches for probe
// t: a scan EOT has arrived, or an index EOT covering t's bind values is
// stored (the "cache on index lookups" role of Section 3.3).
func (s *SteM) complete(t *tuple.Tuple) bool {
	if s.cfg.Window > 0 {
		return false
	}
	if s.fullEOT {
		return true
	}
	for i := range s.eot {
		idx := &s.eot[i]
		bound, ok := s.bindCols(t, idx.cols)
		if !ok {
			continue
		}
		h := bound.Hash64()
		for _, r := range idx.keys[h] {
			if r.Equal(bound) {
				return true
			}
		}
	}
	return false
}

// bindCols derives the values of the given columns of this SteM's table from
// probe t via equality join predicates, into the SteM's reused scratch row;
// ok is false if any column is unbound. The returned row is only valid until
// the next bindCols call.
func (s *SteM) bindCols(t *tuple.Tuple, cols []int) (tuple.Row, bool) {
	row := s.bindScratch[:0]
	for _, c := range cols {
		found := false
		for _, p := range s.cfg.Q.Preds {
			if !p.IsEquiJoin() {
				continue
			}
			if p.Left.Table == s.cfg.Table && p.Left.Col == c && t.Span.Has(p.Right.Table) {
				row = append(row, t.Value(p.Right.Table, p.Right.Col))
				found = true
				break
			}
			if p.Right.Table == s.cfg.Table && p.Right.Col == c && t.Span.Has(p.Left.Table) {
				row = append(row, t.Value(p.Left.Table, p.Left.Col))
				found = true
				break
			}
		}
		if !found {
			s.bindScratch = row[:0]
			return nil, false
		}
	}
	s.bindScratch = row[:0]
	return row, true
}
