// Package stem implements State Modules (SteMs), the paper's core
// contribution (Section 2.1.4). A SteM is "half a join": a dictionary over
// the singleton tuples of one base table that handles build (insert) and
// probe (lookup) requests, returning concatenated matches to the eddy. The
// SteM internally enforces the SteM BounceBack and TimeStamp constraints of
// Table 2, so "the routing policy implementor need not be aware of them at
// all".
//
// A SteM may be split into hash-partitioned shards (Config.Shards): each
// shard owns a dictionary, a lock, and probe scratch state, partitioned by
// the hash of the table's first join column. Builds and probes that bind
// that column address exactly one shard, so the concurrent engine can drive
// every shard from its own worker and their service overlaps — the
// intra-operator parallelism the paper's "every module in its own thread"
// setting calls for once one SteM saturates a core. Probes that do not bind
// the partition column sweep all shards under a consistent lock set, and
// EOT/completeness metadata is shared across shards, so sharding never
// changes results. One shard (the default) is exactly the unsharded SteM.
package stem

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/flow"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/tuple"
	"repro/internal/value"
)

// Counter issues the global, monotonically increasing build timestamps of
// the TimeStamp constraint. It is shared by every SteM of a query and safe
// for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Next returns the next timestamp (starting at 1, so 0 is "never matched"
// for LastMatchTimeStamp purposes).
func (c *Counter) Next() tuple.Timestamp { return c.v.Add(1) }

// Reset restarts the counter from zero, for pooled plan shells that run the
// same query repeatedly. Must not race Next.
func (c *Counter) Reset() { c.v.Store(0) }

// ProbeBounceMode selects when a SteM bounces back probe tuples beyond the
// mandatory cases of Table 2.
type ProbeBounceMode uint8

const (
	// BounceAuto bounces a probe only when required for correctness: the
	// SteM cannot prove it holds all matches and either the table has no
	// scan AM or some base component of the probe is not yet cached.
	BounceAuto ProbeBounceMode = iota
	// BounceIfIndexAM additionally bounces any incomplete probe when the
	// table has an index AM, even if a scan AM exists. This is the Section
	// 4.1 policy hook that lets the eddy choose, per bounced tuple, between
	// probing the index AM and relying on the scan — the mechanism behind
	// the index/hash hybridization of Section 4.3.
	BounceIfIndexAM
)

// Config parameterizes a SteM.
type Config struct {
	// Table is the query position of the base table this SteM materializes.
	Table int
	// Q is the enclosing query.
	Q *query.Q
	// TS is the shared build-timestamp counter.
	TS *Counter
	// Dict is the storage structure; nil defaults to a HashDict over the
	// table's join columns. A custom Dict forces a single shard (there is no
	// way to instantiate one per shard).
	Dict Dict
	// Shards splits the SteM into this many hash-partitioned sub-stores,
	// rounded up to a power of two. 0 or 1 keeps a single store (the exact
	// historical behaviour). Tables with no join columns are never sharded —
	// no probe could address a partition — and windowed SteMs (Window > 0)
	// stay unsharded because window eviction order is global state.
	Shards int
	// BuildCost and ProbeCost are the service times charged per operation.
	BuildCost clock.Duration
	ProbeCost clock.Duration
	// PerMatchCost is charged per concatenated match returned.
	PerMatchCost clock.Duration
	// ProbeBounce selects the probe bounce-back mode.
	ProbeBounce ProbeBounceMode
	// BuildBounceBatch, when >0, holds back build bounce-backs and releases
	// them in batches of this size, clustered by the hash partition of the
	// first join column — the "asynchronous" bounce-back that makes the SteM
	// routing simulate a Grace hash join (Section 3.1). 0 bounces builds
	// immediately (symmetric-hash behaviour). With Shards > 1 the batching
	// is per shard — which is precisely Grace's partition-wise processing.
	BuildBounceBatch int
	// Window, when >0, bounds the number of stored rows; the oldest rows are
	// evicted on overflow, supporting sliding-window continuous queries
	// (Section 2.3 mentions [17, 5] use SteMs with eviction). Eviction
	// invalidates completeness, so windowed SteMs never claim to hold all
	// matches. A windowed SteM is never sharded: evicting the globally
	// oldest row is cross-shard state, and per-shard approximations would
	// make windowed results depend on the shard count.
	Window int
	// Gov, when non-nil, places this SteM under a shared memory Governor
	// (the Section 6 extension): rows beyond the SteM's allocation are
	// treated as spilled, and probes pay a proportional penalty.
	Gov *Governor
	// Shared, when non-nil, attaches this SteM to catalog-owned sealed
	// state (see shared.go): the SteM becomes a probe-only handle over the
	// SharedState's dictionaries — always complete, never built into, shard
	// count fixed by the state. Shards, Dict, Window, BuildBounceBatch, and
	// Gov must be unset; the table's join columns must equal the state's key
	// columns.
	Shared *SharedState
}

// Stats are cumulative SteM counters, exposed for experiments and tests.
type Stats struct {
	Builds        uint64 // rows stored (resident or spilled)
	DupBuilds     uint64 // builds consumed as set-semantics duplicates
	Probes        uint64 // probe tuples processed
	Matches       uint64 // concatenated results returned live
	ProbeBounces  uint64 // probes bounced back
	Evictions     uint64 // rows evicted by the window bound
	EOTs          uint64 // EOT tuples built in
	SpilledBuilds uint64 // builds written to disk segments (real spill)
	Recalls       uint64 // spilled rows un-spilled back into the dictionary
	ReplayMatches uint64 // results regenerated by the spill replay pass
}

// add accumulates o into s, for cross-shard aggregation.
func (s *Stats) add(o Stats) {
	s.Builds += o.Builds
	s.DupBuilds += o.DupBuilds
	s.Probes += o.Probes
	s.Matches += o.Matches
	s.ProbeBounces += o.ProbeBounces
	s.Evictions += o.Evictions
	s.EOTs += o.EOTs
	s.SpilledBuilds += o.SpilledBuilds
	s.Recalls += o.Recalls
	s.ReplayMatches += o.ReplayMatches
}

// probeScratch is the reusable per-probe state of one synchronization
// domain (a shard, or the sweep path): lk is the reused lookup, bindScratch
// the reused bound-value row, catScratch recycles concatenations that failed
// predicate verification, and predCache memoizes JoinPredsConnecting per
// probe span. Guarded by the owning shard's mutex (or gmu for the sweep).
type probeScratch struct {
	lk          Lookup
	bindScratch tuple.Row
	catScratch  *tuple.Tuple
	predCache   map[tuple.TableSet][]pred.P
	// pc is the per-run probe cache; each batch run invalidates it on entry
	// and reuses its storage (see probeCache).
	pc probeCache
	// Columnar probe scratch (col.go): the equi-bind plan, the dictionary
	// index position per plan entry, the verify predicate set, and per-row
	// match flags — all reused across batches under the same lock.
	colPlan    []colBind
	colDi      []int
	colVerify  []pred.P
	colMatched []bool
}

// shard is one hash partition of a SteM: a dictionary with its own lock,
// counters, Grace bounce-back buffer, and probe scratch. With one shard the
// SteM degenerates to the historical single-store layout.
type shard struct {
	mu      sync.Mutex
	dict    Dict
	pending []*tuple.Tuple
	stats   Stats
	scr     probeScratch
	// spill is the disk-backed half of the shard under a real-spill
	// governor; nil otherwise (see spill.go).
	spill *shardSpill
	// idx is this shard's position, used to salt probe-cache keys so
	// sweep runs never serve one shard's candidate list for another's.
	idx int
	// self is the one-element shard list handed to probeLocked, so
	// single-shard probes allocate no slice.
	self [1]*shard
}

// colRef locates one column of one table.
type colRef struct {
	table, col int
}

// SteM is a State Module on one base table.
type SteM struct {
	cfg  Config
	name string

	// joinCols are the table's columns involved in join predicates; pcol is
	// the partition column (joinCols[0]) and shardMask the hash mask used to
	// pick a shard. pcolSources are the (table, column) pairs an equi-join
	// predicate binds to pcol, precomputed so the per-tuple ShardOf never
	// scans the predicate list. spillCol is the spill partition column
	// (joinCols[0] when real spill is on, -1 otherwise) and spillOn marks a
	// SteM with disk-backed state (see spill.go). All immutable after New.
	joinCols    []int
	pcol        int
	shardMask   uint64
	pcolSources []colRef
	spillCol    int
	spillOn     bool

	shards []shard
	all    []*shard // &shards[i] in order, for sweep lock acquisition

	// liveRows counts stored rows across all shards, enforcing the global
	// Window bound without cross-shard locking.
	liveRows atomic.Int64

	// gmu serializes sweep probes (probes that bind no partition column and
	// must visit every shard) and guards their scratch and counters. Lock
	// order is gmu before shard mutexes before eotMu; sweeps acquire every
	// shard mutex in ascending index order.
	gmu    sync.Mutex
	gscr   probeScratch
	gstats Stats

	// eotMu guards the completeness metadata shared by all shards. Probes
	// read it (complete) with shard locks held; writers never take shard
	// locks while holding it.
	eotMu   sync.RWMutex
	fullEOT bool
	// eot records, per distinct bound-column signature, the bound-value rows
	// for which all matches have been transmitted (hash-with-verify keyed).
	eot []eotIdx
	// eotSeen counts per-shard deliveries of one replicated EOT tuple
	// (flow.ShardAll), so its global record is applied exactly once, after
	// every shard has observed it.
	eotSeen  map[*tuple.Tuple]int
	eotCount uint64

	// govID is this SteM's membership handle in cfg.Gov (-1 when ungoverned).
	govID int

	// shared is the catalog-owned state this SteM is attached to (nil for a
	// private SteM). Attached SteMs never build, never bounce probes, ignore
	// the TimeStamp window (the state is sealed before the query starts, so
	// the probe's window is exactly "everything stored"), and concatenate
	// shared rows with component timestamp 0 so the state's build counter
	// never mixes with the query's own.
	shared *SharedState
}

// eotIdx is the completeness metadata of index EOT tuples for one
// bound-column signature: the set of bound-value rows fully transmitted,
// keyed by row hash and verified by row equality on lookup.
type eotIdx struct {
	cols []int
	keys map[uint64][]tuple.Row
}

// New creates a SteM from a config.
func New(cfg Config) *SteM {
	if cfg.Shared != nil {
		return newAttached(cfg)
	}
	s := &SteM{
		cfg:      cfg,
		name:     fmt.Sprintf("SteM(%s)", cfg.Q.Tables[cfg.Table].Name),
		pcol:     -1,
		spillCol: -1,
	}
	s.joinCols = JoinCols(cfg.Q, cfg.Table)

	nsh := 1
	if cfg.Shards > 1 && len(s.joinCols) > 0 && cfg.Dict == nil && cfg.Window == 0 {
		for nsh < cfg.Shards {
			nsh <<= 1
		}
	}
	// Real spill applies to the default hash dictionary only: a custom Dict
	// may have semantics the segment codec cannot reproduce, and a windowed
	// SteM's eviction order contradicts spill-at-build.
	s.spillOn = cfg.Gov.SpillActive() && cfg.Dict == nil && cfg.Window == 0
	if nsh > 1 || (s.spillOn && len(s.joinCols) > 0) {
		pc := s.joinCols[0]
		if nsh > 1 {
			s.pcol = pc
		}
		if s.spillOn {
			s.spillCol = pc
		}
		for _, p := range cfg.Q.Preds {
			if !p.IsEquiJoin() {
				continue
			}
			if p.Left.Table == cfg.Table && p.Left.Col == pc {
				s.pcolSources = append(s.pcolSources, colRef{p.Right.Table, p.Right.Col})
			}
			if p.Right.Table == cfg.Table && p.Right.Col == pc {
				s.pcolSources = append(s.pcolSources, colRef{p.Left.Table, p.Left.Col})
			}
		}
	}
	s.shardMask = uint64(nsh - 1)
	s.shards = make([]shard, nsh)
	s.all = make([]*shard, nsh)
	for i := range s.shards {
		sh := &s.shards[i]
		if cfg.Dict != nil {
			sh.dict = cfg.Dict
		} else {
			sh.dict = NewHashDict(s.joinCols)
		}
		sh.scr.predCache = make(map[tuple.TableSet][]pred.P)
		sh.idx = i
		sh.self[0] = sh
		if s.spillOn {
			sh.spill = newShardSpill(s, sh, i)
		}
		s.all[i] = sh
	}
	s.gscr.predCache = make(map[tuple.TableSet][]pred.P)
	s.govID = -1
	if cfg.Gov != nil {
		s.govID = cfg.Gov.register()
	}
	return s
}

// JoinCols returns the columns of table t involved in join predicates of q —
// the columns a default SteM builds hash indexes on.
func JoinCols(q *query.Q, t int) []int {
	seen := make(map[int]bool)
	var cols []int
	for _, p := range q.Preds {
		if !p.IsJoin() {
			continue
		}
		if p.Left.Table == t && !seen[p.Left.Col] {
			seen[p.Left.Col] = true
			cols = append(cols, p.Left.Col)
		}
		if p.Right.Table == t && !seen[p.Right.Col] {
			seen[p.Right.Col] = true
			cols = append(cols, p.Right.Col)
		}
	}
	sort.Ints(cols)
	return cols
}

// Name implements flow.Module.
func (s *SteM) Name() string { return s.name }

// Parallel implements flow.Module: each shard is a single-server partition,
// so the SteM's service capacity is its shard count (1 when unsharded).
func (s *SteM) Parallel() int { return len(s.shards) }

// Shards implements flow.Sharded.
func (s *SteM) Shards() int { return len(s.shards) }

// Table returns the query position of the table this SteM materializes.
func (s *SteM) Table() int { return s.cfg.Table }

// Stats returns a snapshot of the SteM's counters, aggregated across shards.
func (s *SteM) Stats() Stats {
	var tot Stats
	for _, sh := range s.all {
		sh.mu.Lock()
		tot.add(sh.stats)
		sh.mu.Unlock()
	}
	s.gmu.Lock()
	tot.add(s.gstats)
	s.gmu.Unlock()
	s.eotMu.RLock()
	tot.EOTs += s.eotCount
	s.eotMu.RUnlock()
	return tot
}

// Reset empties the SteM back to its just-constructed state so a pooled
// router can run the same query again: fresh dictionaries, cleared Grace
// bounce-back buffers, zeroed counters, no completeness metadata. The
// per-shard predicate caches and probe scratch derive from the query, not
// the run, and are kept — that reuse is part of the payoff of pooling.
// Custom dictionaries and disk-backed (spilling) shards hold state the SteM
// cannot reconstruct; such SteMs must not be pooled, and Reset panics on
// them. Must not be called while a run is in progress.
func (s *SteM) Reset() {
	if s.cfg.Dict != nil || s.spillOn {
		panic("stem: Reset requires the default in-memory dictionary without spill")
	}
	if s.shared != nil {
		// Detach, don't clear: the dictionaries belong to the SharedState
		// and other queries are probing them concurrently. Only this
		// handle's per-run state resets (reset_test.go pins this contract
		// for pooled plan-cache shells).
		for _, sh := range s.all {
			sh.mu.Lock()
			sh.pending = nil
			sh.stats = Stats{}
			sh.mu.Unlock()
		}
		s.gmu.Lock()
		s.gstats = Stats{}
		s.gmu.Unlock()
		s.eotMu.Lock()
		s.fullEOT = false
		s.eot = nil
		s.eotSeen = nil
		s.eotCount = 0
		s.eotMu.Unlock()
		return
	}
	for _, sh := range s.all {
		sh.mu.Lock()
		if hd, ok := sh.dict.(*HashDict); ok {
			hd.Clear()
		} else {
			sh.dict = NewHashDict(s.joinCols)
		}
		sh.pending = nil
		sh.stats = Stats{}
		sh.mu.Unlock()
	}
	s.liveRows.Store(0)
	s.gmu.Lock()
	s.gstats = Stats{}
	s.gmu.Unlock()
	s.eotMu.Lock()
	s.fullEOT = false
	s.eot = nil
	s.eotSeen = nil
	s.eotCount = 0
	s.eotMu.Unlock()
}

// Size returns the number of stored rows across all shards.
func (s *SteM) Size() int {
	n := 0
	for _, sh := range s.all {
		sh.mu.Lock()
		n += sh.dict.Len()
		sh.mu.Unlock()
	}
	return n
}

// HeldBuilds returns the number of build tuples awaiting a batched bounce.
func (s *SteM) HeldBuilds() int {
	n := 0
	for _, sh := range s.all {
		sh.mu.Lock()
		n += len(sh.pending)
		sh.mu.Unlock()
	}
	return n
}

// ShardOf implements flow.Sharded: this SteM's own EOT tuples must be
// observed by every shard; builds and probes that bind the partition column
// address its hash shard; probes that do not bind it sweep all shards
// (flow.ShardAny). A foreign table's EOT (never routed here by the eddy,
// but reachable through the public Module interface) is treated as a probe
// over the whole store, matching the single-shard dispatch.
func (s *SteM) ShardOf(t *tuple.Tuple) int {
	if len(s.shards) == 1 {
		return 0
	}
	if t.EOT != nil {
		if t.EOT.Table == s.cfg.Table {
			return flow.ShardAll
		}
		return flow.ShardAny
	}
	if t.IsSingleton() && t.SingleTable() == s.cfg.Table && !t.Built.Has(s.cfg.Table) {
		return int(t.Comp[s.cfg.Table][s.pcol].Hash64() & s.shardMask)
	}
	if v, ok := s.pcolBinding(t); ok {
		return int(v.Hash64() & s.shardMask)
	}
	return flow.ShardAny
}

// pcolBinding derives the value the probe tuple binds to the partition
// column via an equality join predicate; ok is false if none does. Matches
// of such a probe all carry this value in the partition column (the equality
// is verified on concatenation), so they live in exactly one shard.
func (s *SteM) pcolBinding(t *tuple.Tuple) (value.V, bool) {
	for _, src := range s.pcolSources {
		if t.Span.Has(src.table) {
			return t.Value(src.table, src.col), true
		}
	}
	return value.V{}, false
}

// Process implements flow.Module, dispatching on the tuple's role:
// EOT tuples and unbuilt singletons of this SteM's table are builds;
// everything else is a probe.
func (s *SteM) Process(t *tuple.Tuple, now clock.Time) ([]flow.Emission, clock.Duration) {
	return s.processOne(t)
}

func (s *SteM) processOne(t *tuple.Tuple) ([]flow.Emission, clock.Duration) {
	switch sd := s.ShardOf(t); sd {
	case flow.ShardAll:
		// Single-call delivery (simulator / unsharded engines): apply the
		// EOT to every shard at once.
		return s.applyEOTAll(t), s.cfg.BuildCost
	case flow.ShardAny:
		return s.sweepRun([]*tuple.Tuple{t})
	default:
		sh := &s.shards[sd]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		return s.processShardLocked(sh, t, nil)
	}
}

// ProcessBatch implements flow.BatchModule: the batch is processed in runs
// of same-shard tuples, taking each shard's lock once per run; probes
// sharing a lookup key within a run reuse one candidate list (builds within
// the run invalidate it, since they change the dictionary). With one shard
// the whole batch is one run — the lock is taken once, exactly the
// historical behaviour — and a batch of one behaves exactly like Process.
func (s *SteM) ProcessBatch(b *flow.Batch, now clock.Time) ([]flow.Emission, clock.Duration) {
	return s.processRuns(b, -1)
}

// ProcessShard implements flow.Sharded: services a batch delivered to one
// shard's queue. EOT copies delivered here apply this shard's flush, with
// the global completeness record applied by whichever delivery is last.
func (s *SteM) ProcessShard(shardIdx int, b *flow.Batch, now clock.Time) ([]flow.Emission, clock.Duration) {
	return s.processRuns(b, shardIdx)
}

// processRuns drives a batch through shard-homogeneous runs. homeShard >= 0
// marks per-shard delivery semantics for ShardAll tuples (flush only
// homeShard, countdown the global record); -1 marks single-call semantics.
func (s *SteM) processRuns(b *flow.Batch, homeShard int) ([]flow.Emission, clock.Duration) {
	var out []flow.Emission
	var total clock.Duration
	i := 0
	sd := 0
	if len(b.Tuples) > 0 {
		sd = s.ShardOf(b.Tuples[0])
	}
	for i < len(b.Tuples) {
		// Extend the run while tuples share sd, computing each tuple's
		// shard exactly once (the boundary tuple's shard carries over as
		// the next run's sd).
		j := i + 1
		next := sd
		for j < len(b.Tuples) {
			if next = s.ShardOf(b.Tuples[j]); next != sd {
				break
			}
			j++
		}
		switch sd {
		case flow.ShardAll:
			for _, t := range b.Tuples[i:j] {
				var ems []flow.Emission
				if homeShard >= 0 {
					ems = s.applyEOTShard(homeShard, t)
				} else {
					ems = s.applyEOTAll(t)
				}
				out = append(out, ems...)
				total += s.cfg.BuildCost
			}
		case flow.ShardAny:
			ems, cost := s.sweepRun(b.Tuples[i:j])
			out = append(out, ems...)
			total += cost
		default:
			sh := &s.shards[sd]
			sh.mu.Lock()
			sh.scr.pc.invalidate()
			for _, t := range b.Tuples[i:j] {
				ems, cost := s.processShardLocked(sh, t, &sh.scr.pc)
				out = append(out, ems...)
				total += cost
			}
			sh.mu.Unlock()
		}
		i, sd = j, next
	}
	return out, total
}

// processShardLocked serves one tuple against one shard with sh.mu held.
// pc, when non-nil, caches probe candidate lists across the tuples of one
// same-shard run.
func (s *SteM) processShardLocked(sh *shard, t *tuple.Tuple, pc *probeCache) ([]flow.Emission, clock.Duration) {
	switch {
	case t.EOT != nil && t.EOT.Table == s.cfg.Table:
		// Only reachable with a single shard (multi-shard EOTs are
		// ShardAll): "all shards" is this one.
		var out []flow.Emission
		if len(t.EOT.BoundCols) == 0 && s.cfg.BuildBounceBatch > 0 {
			out = s.flushPendingLocked(sh)
		}
		s.recordEOT(t)
		return out, s.cfg.BuildCost
	case t.IsSingleton() && t.SingleTable() == s.cfg.Table && !t.Built.Has(s.cfg.Table):
		if pc != nil {
			pc.invalidate()
		}
		return s.build(sh, t), s.cfg.BuildCost
	default:
		out := s.probeLocked(t, pc, &sh.scr, &sh.stats, sh.self[:])
		cost := s.cfg.ProbeCost + clock.Duration(len(out))*s.cfg.PerMatchCost
		if s.govID >= 0 {
			cost += s.cfg.Gov.probePenalty(s.govID)
		}
		return out, cost
	}
}

// sweepRun serves a run of probes that bind no partition column: it
// acquires every shard's lock once for the whole run (ascending, after gmu)
// so each probe sees one consistent snapshot of the whole SteM — exactly
// what the unsharded SteM sees — and LastMatchTimeStamp bookkeeping stays
// sound. The run is all probes (builds and own-table EOTs never classify
// ShardAny; a foreign EOT arriving here is probed, as the single-shard path
// does), so the dictionaries cannot change mid-run and one probe cache
// serves the whole run, with entries salted by shard.
func (s *SteM) sweepRun(ts []*tuple.Tuple) ([]flow.Emission, clock.Duration) {
	s.gmu.Lock()
	defer s.gmu.Unlock()
	for _, sh := range s.all {
		sh.mu.Lock()
	}
	var out []flow.Emission
	var total clock.Duration
	s.gscr.pc.invalidate()
	for _, t := range ts {
		ems := s.probeLocked(t, &s.gscr.pc, &s.gscr, &s.gstats, s.all)
		cost := s.cfg.ProbeCost + clock.Duration(len(ems))*s.cfg.PerMatchCost
		if s.govID >= 0 {
			cost += s.cfg.Gov.probePenalty(s.govID)
		}
		out = append(out, ems...)
		total += cost
	}
	for _, sh := range s.all {
		sh.mu.Unlock()
	}
	return out, total
}

// probeCache memoizes dictionary candidate lists by hashed lookup key within
// one batch, so probes grouped on the same key hash once. Entries carry the
// equality constraints they were computed for, verifying them on every hit
// (hash-with-verify: two lookups colliding on the 64-bit key must not share
// candidates). Builds and evictions invalidate the cache.
//
// The cache lives in its synchronization domain's probeScratch and is
// invalidated — not reallocated — between runs: the map keeps its buckets and
// the entry arena keeps its slots (including each slot's cols/vals capacity),
// so steady-state probing on a pooled router allocates only for genuinely new
// keys.
type probeCache struct {
	m    map[uint64][]int // lookup-key hash -> indices into ents
	ents []cachedCands
}

// cachedCands is one verified cache entry. salt carries the shard index the
// entry was computed against: sweep runs probe several dictionaries with the
// same lookup, and one shard's candidate list must never answer for
// another's.
type cachedCands struct {
	salt uint64
	cols []int
	vals []value.V
	es   []Entry
}

// invalidate empties the cache in place, keeping the map's buckets and the
// arena's slots for reuse.
func (pc *probeCache) invalidate() {
	clear(pc.m)
	pc.ents = pc.ents[:0]
}

// candidates returns d's candidates for lk, consulting and filling the
// cache for keyable (pure-equality) lookups. salt distinguishes the shard d
// belongs to within one cache.
func (pc *probeCache) candidates(d Dict, lk Lookup, salt uint64) []Entry {
	if pc == nil {
		return d.Candidates(lk)
	}
	key, ok := lk.cacheKey()
	if !ok {
		return d.Candidates(lk)
	}
	key = value.MixUint64(key, salt)
	for _, i := range pc.m[key] {
		c := &pc.ents[i]
		if c.salt == salt && lk.equiEqual(c.cols, c.vals) {
			return c.es
		}
	}
	es := d.Candidates(lk)
	if pc.m == nil {
		pc.m = make(map[uint64][]int)
	}
	// The lookup's slices are per-shard scratch reused by the next probe, so
	// the cache keeps its own copies — written into a recycled arena slot
	// when one is free, preserving its cols/vals capacity.
	n := len(pc.ents)
	if n < cap(pc.ents) {
		pc.ents = pc.ents[:n+1]
	} else {
		pc.ents = append(pc.ents, cachedCands{})
	}
	c := &pc.ents[n]
	c.salt = salt
	c.cols = append(c.cols[:0], lk.EquiCols...)
	c.vals = append(c.vals[:0], lk.EquiVals...)
	c.es = es
	pc.m[key] = append(pc.m[key], n)
	return es
}

// build stores a singleton into sh (whose mutex is held) and bounces it back
// (SteM BounceBack: "a SteM must bounce back a build tuple unless it is a
// duplicate of another tuple already in the SteM"). Under a real-spill
// governor the row is placed exactly once — resident if the byte allocation
// has room, otherwise appended to its partition's disk segment — and never
// migrates to disk later, so live matching covers exactly the resident rows
// and replay covers exactly the spilled ones.
func (s *SteM) build(sh *shard, t *tuple.Tuple) []flow.Emission {
	if s.shared != nil {
		// Unreachable by construction: the router creates no access methods
		// for attached tables, so no singleton of this table ever exists.
		panic("stem: build routed to an attached (shared-state) SteM")
	}
	row := t.Comp[s.cfg.Table]
	if sh.dict.Contains(row) || (sh.spill != nil && sh.spill.contains(row)) {
		sh.stats.DupBuilds++
		return nil // duplicate from a competitive AM: consumed (Section 3.2)
	}
	ts := s.cfg.TS.Next()
	if sh.spill != nil {
		sh.spill.noteInsert(ts)
		if !s.cfg.Gov.admitBuild(s.govID, RowFootprint(row)) {
			if sh.spill.append(row, ts) {
				sh.stats.SpilledBuilds++
			}
			t.CompTS[s.cfg.Table] = ts
			t.Built = t.Built.With(s.cfg.Table)
			sh.stats.Builds++
			return s.bounceBuild(sh, t)
		}
		sh.dict.Insert(row, ts)
		s.liveRows.Add(1)
		t.CompTS[s.cfg.Table] = ts
		t.Built = t.Built.With(s.cfg.Table)
		sh.stats.Builds++
		return s.bounceBuild(sh, t)
	}
	sh.dict.Insert(row, ts)
	t.CompTS[s.cfg.Table] = ts
	t.Built = t.Built.With(s.cfg.Table)
	sh.stats.Builds++
	s.liveRows.Add(1)
	if s.govID >= 0 {
		s.cfg.Gov.noteBuild(s.govID)
	}
	if s.cfg.Window > 0 {
		// Windowed SteMs are always single-shard (see Config.Shards), so
		// liveRows is this dictionary's row count and the oldest live row is
		// the globally oldest.
		for s.liveRows.Load() > int64(s.cfg.Window) {
			if _, ok := sh.dict.Evict(); !ok {
				break
			}
			s.liveRows.Add(-1)
			sh.stats.Evictions++
			if s.govID >= 0 {
				s.cfg.Gov.noteEvict(s.govID)
			}
		}
	}
	return s.bounceBuild(sh, t)
}

// bounceBuild emits (or batches) the build bounce-back of t. sh.mu is held.
func (s *SteM) bounceBuild(sh *shard, t *tuple.Tuple) []flow.Emission {
	if s.cfg.BuildBounceBatch > 0 {
		sh.pending = append(sh.pending, t)
		if len(sh.pending) >= s.cfg.BuildBounceBatch {
			return s.flushPendingLocked(sh)
		}
		return []flow.Emission{} // held; still in dataflow (engine tracks via pendingHold)
	}
	return []flow.Emission{flow.Emit(t)}
}

// flushPendingLocked releases sh's held build bounce-backs clustered by the
// hash partition of the first join column, modelling the I/O locality of a
// Grace hash join's partition-at-a-time processing. sh.mu must be held.
func (s *SteM) flushPendingLocked(sh *shard) []flow.Emission {
	p := sh.pending
	sh.pending = nil
	if len(s.joinCols) > 0 {
		c := s.joinCols[0]
		sort.SliceStable(p, func(i, j int) bool {
			hi := p[i].Comp[s.cfg.Table][c].Hash64() % 16
			hj := p[j].Comp[s.cfg.Table][c].Hash64() % 16
			return hi < hj
		})
	}
	out := make([]flow.Emission, len(p))
	for i, t := range p {
		out[i] = flow.Emit(t)
	}
	return out
}

// applyEOTAll records an End-Of-Transmission tuple in one call, on behalf of
// every shard: "an EOT tuple from an AM on S is also routed as a build tuple
// to SteM(S)"; it is stored (as completeness metadata) and consumed. A full
// (scan) EOT also flushes any held batched builds, shard by shard.
func (s *SteM) applyEOTAll(t *tuple.Tuple) []flow.Emission {
	var out []flow.Emission
	if len(t.EOT.BoundCols) == 0 && s.cfg.BuildBounceBatch > 0 {
		for _, sh := range s.all {
			sh.mu.Lock()
			out = append(out, s.flushPendingLocked(sh)...)
			sh.mu.Unlock()
		}
	}
	s.recordEOT(t)
	return out
}

// applyEOTShard handles one per-shard delivery of a replicated EOT tuple
// (flow.ShardAll): this shard's flush happens now; the global completeness
// record waits for the last shard's delivery, guaranteeing every build
// queued ahead of the EOT in any shard has been stored before the SteM
// claims completeness.
func (s *SteM) applyEOTShard(shardIdx int, t *tuple.Tuple) []flow.Emission {
	var out []flow.Emission
	if len(t.EOT.BoundCols) == 0 && s.cfg.BuildBounceBatch > 0 {
		sh := &s.shards[shardIdx]
		sh.mu.Lock()
		out = s.flushPendingLocked(sh)
		sh.mu.Unlock()
	}
	s.eotMu.Lock()
	if s.eotSeen == nil {
		s.eotSeen = make(map[*tuple.Tuple]int)
	}
	s.eotSeen[t]++
	last := s.eotSeen[t] == len(s.shards)
	if last {
		delete(s.eotSeen, t)
	}
	s.eotMu.Unlock()
	if last {
		s.recordEOT(t)
	}
	return out
}

// recordEOT applies an EOT tuple's global effect: a full EOT marks the SteM
// complete; an index EOT records its bound-value row in the completeness
// index for its bound-column signature.
func (s *SteM) recordEOT(t *tuple.Tuple) {
	s.eotMu.Lock()
	defer s.eotMu.Unlock()
	s.eotCount++
	info := t.EOT
	if len(info.BoundCols) == 0 {
		s.fullEOT = true
		return
	}
	idx := s.eotIdxFor(info.BoundCols)
	row := t.Comp[s.cfg.Table]
	bound := make(tuple.Row, len(info.BoundCols))
	for i, c := range info.BoundCols {
		bound[i] = row[c]
	}
	h := bound.Hash64()
	for _, r := range idx.keys[h] {
		if r.Equal(bound) {
			return // already recorded
		}
	}
	idx.keys[h] = append(idx.keys[h], bound)
}

// eotIdxFor returns (creating on first use) the completeness index for one
// bound-column signature. The signature list is tiny — one entry per
// distinct index key shape — so a linear scan beats any map keying.
// s.eotMu must be held for writing.
func (s *SteM) eotIdxFor(cols []int) *eotIdx {
	for i := range s.eot {
		if slices.Equal(s.eot[i].cols, cols) {
			return &s.eot[i]
		}
	}
	s.eot = append(s.eot, eotIdx{
		cols: slices.Clone(cols),
		keys: make(map[uint64][]tuple.Row),
	})
	return &s.eot[len(s.eot)-1]
}

// probeLocked finds matches for t among the rows stored in held (whose
// mutexes the caller holds), concatenates them (verifying every newly
// applicable predicate and enforcing the TimeStamp rule), and decides
// whether to bounce t back per the SteM BounceBack constraint. scr and
// stats belong to the same synchronization domain as held.
func (s *SteM) probeLocked(t *tuple.Tuple, pc *probeCache, scr *probeScratch, stats *Stats, held []*shard) []flow.Emission {
	stats.Probes++

	// Real spill, phase 1 — before the live lookup: charge the probe to the
	// partitions' frequency estimates and let the governor recall a hot
	// partition whose allocation has room. Recalled rows enter the resident
	// dictionary right now, so this probe matches them live (and the
	// candidate cache must forget pre-recall lists).
	var replays []flow.Emission
	if s.spillOn && t.EOT == nil {
		for _, sh := range held {
			ems, recalled := sh.spill.beforeProbe(t)
			replays = append(replays, ems...)
			if recalled && pc != nil {
				// The recall inserted rows into the resident dictionary —
				// even a recall with no replay emissions (no outstanding
				// recordings) invalidates cached candidate lists.
				pc.invalidate()
			}
		}
	}

	preds, ok := scr.predCache[t.Span]
	if !ok {
		preds = s.cfg.Q.JoinPredsConnecting(t.Span, s.cfg.Table)
		scr.predCache[t.Span] = preds
	}
	lookupInto(&scr.lk, t, s.cfg.Table, preds)
	probeTS := t.TS()
	lastMatch := t.LastMatchTS

	var out []flow.Emission
	for _, sh := range held {
		for _, e := range pc.candidates(sh.dict, scr.lk, uint64(sh.idx)) {
			catTS := e.TS
			if s.shared != nil {
				// Attached probe: every shared entry was sealed before the
				// query started, so the probe's exact window is the whole
				// state (TS ≤ HighWater) — the resident TimeStamp rule would
				// compare incomparable counters. Component timestamp 0 keeps
				// shared timestamps out of the query's tuples.
				catTS = 0
			} else if e.TS >= probeTS || e.TS <= lastMatch {
				// TimeStamp constraint: result returned iff ts(probe) > ts(match);
				// LastMatchTimeStamp guards repeated probes (§3.5).
				continue
			}
			// Concatenate the stored row directly (no singleton
			// materialization), recycling the component slices of failed
			// concatenations.
			cat := t.ConcatRowInto(scr.catScratch, s.cfg.Table, e.Row, catTS)
			if !s.verify(cat) {
				scr.catScratch = cat
				continue
			}
			scr.catScratch = nil
			stats.Matches++
			out = append(out, flow.Emit(cat))
		}
	}
	if s.shared != nil && s.shared.hasSpill() && t.EOT == nil {
		for _, sh := range held {
			out = s.probeSharedSpill(sh.idx, t, scr, stats, out)
		}
	}

	// Real spill, phase 2 — after the live lookup: record the probe against
	// the partitions that hold data, with the exact TimeStamp window of
	// spilled matches it is owed; the replay pass (or a later recall)
	// satisfies the recording.
	if s.spillOn && t.EOT == nil {
		for _, sh := range held {
			sh.spill.record(t, probeTS, lastMatch)
		}
	}

	t.LastProbeMatches = len(out)
	if s.shouldBounce(t, scr) {
		t.PriorProber = true
		t.ProbeTable = s.cfg.Table
		// The highest timestamp this probe can have observed: matches for a
		// partition-bound probe all live in its home shard, so a sweep over
		// held covers every row the re-probe may legally skip. With real
		// spill the shard's insert high-water mark is used instead of the
		// resident maximum: rows on disk were not matched live, but the
		// recording above owns exactly that window, so a re-probe must not
		// claim it again — this is what keeps successive recordings of one
		// prober disjoint.
		var maxTS tuple.Timestamp
		for _, sh := range held {
			m := sh.dict.MaxTS()
			if sh.spill != nil && sh.spill.highWater > m {
				m = sh.spill.highWater
			}
			if m > maxTS {
				maxTS = m
			}
		}
		t.LastMatchTS = maxTS
		stats.ProbeBounces++
		out = append(out, flow.Emit(t))
	}
	if len(replays) > 0 {
		// Recall replays are prepended so LastProbeMatches above counted
		// only this probe's live matches.
		out = append(replays, out...)
	}
	return out
}

// verify evaluates every query predicate that is applicable to the
// concatenated tuple and not already passed, marking the done bits; it
// reports whether all of them hold ("these concatenated matches are all
// tuples ... that satisfy all query predicates that can be evaluated on the
// columns in t and S").
func (s *SteM) verify(cat *tuple.Tuple) bool {
	for _, p := range s.cfg.Q.Preds {
		if cat.Done.Has(p.ID) || !p.ApplicableTo(cat.Span) {
			continue
		}
		if !p.Eval(cat) {
			return false
		}
		cat.Done = cat.Done.With(p.ID)
	}
	return true
}

// shouldBounce implements the SteM BounceBack rule for probes (Table 2),
// plus the BounceIfIndexAM extension of Section 4.1.
func (s *SteM) shouldBounce(t *tuple.Tuple, scr *probeScratch) bool {
	if s.complete(t, scr) {
		return false // the SteM provably holds all matches: consume.
	}
	q := s.cfg.Q
	safeViaScan := q.HasScanAM(s.cfg.Table) && t.Built.Contains(t.Span) && s.cfg.Window == 0
	if !safeViaScan {
		return true // mandatory bounce: missing matches would otherwise be lost.
	}
	if s.cfg.ProbeBounce == BounceIfIndexAM && q.HasIndexAM(s.cfg.Table) {
		return true // optional bounce: give the eddy the index-probe choice.
	}
	return false
}

// complete reports whether the SteM provably contains all matches for probe
// t: a scan EOT has arrived, or an index EOT covering t's bind values is
// stored (the "cache on index lookups" role of Section 3.3).
func (s *SteM) complete(t *tuple.Tuple, scr *probeScratch) bool {
	if s.shared != nil {
		return true // sealed shared state subsumes a full scan EOT
	}
	if s.cfg.Window > 0 {
		return false
	}
	s.eotMu.RLock()
	defer s.eotMu.RUnlock()
	if s.fullEOT {
		return true
	}
	for i := range s.eot {
		idx := &s.eot[i]
		bound, ok := s.bindCols(t, idx.cols, scr)
		if !ok {
			continue
		}
		h := bound.Hash64()
		for _, r := range idx.keys[h] {
			if r.Equal(bound) {
				return true
			}
		}
	}
	return false
}

// bindCols derives the values of the given columns of this SteM's table from
// probe t via equality join predicates, into scr's reused scratch row; ok is
// false if any column is unbound. The returned row is only valid until the
// next bindCols call on the same scratch.
func (s *SteM) bindCols(t *tuple.Tuple, cols []int, scr *probeScratch) (tuple.Row, bool) {
	row := scr.bindScratch[:0]
	for _, c := range cols {
		found := false
		for _, p := range s.cfg.Q.Preds {
			if !p.IsEquiJoin() {
				continue
			}
			if p.Left.Table == s.cfg.Table && p.Left.Col == c && t.Span.Has(p.Right.Table) {
				row = append(row, t.Value(p.Right.Table, p.Right.Col))
				found = true
				break
			}
			if p.Right.Table == s.cfg.Table && p.Right.Col == c && t.Span.Has(p.Left.Table) {
				row = append(row, t.Value(p.Left.Table, p.Left.Col))
				found = true
				break
			}
		}
		if !found {
			scr.bindScratch = row[:0]
			return nil, false
		}
	}
	scr.bindScratch = row[:0]
	return row, true
}
