package stem

// Property test: every Dict implementation must agree on the candidate sets
// it can produce. Dictionaries may return supersets (the SteM re-verifies
// every predicate), so equivalence is checked modulo superset filtering:
// each dictionary's candidates are filtered down by the lookup's own
// constraints and the filtered multisets must be identical.
//
// The masked variants shrink every hash to a few bits, forcing constant
// bucket collisions, so the hash-with-verify paths (index buckets, rowSet
// dedup, eviction bucket removal) are exercised under adversarial hashing —
// something real FNV-1a keys would essentially never trigger.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/pred"
	"repro/internal/tuple"
	"repro/internal/value"
)

// collisionMask shrinks hashes to 2 bits: with a handful of distinct rows,
// every bucket holds several unrelated keys.
const collisionMask = 0x3

type dictUnderTest struct {
	name string
	d    Dict
}

func newDictsUnderTest() []dictUnderTest {
	cols := []int{0, 1}
	masked := NewHashDict(cols)
	masked.mask = collisionMask
	maskedList := NewListDict()
	maskedList.mask = collisionMask
	maskedSorted := NewSortedDict(0, 8)
	maskedSorted.mask = collisionMask
	return []dictUnderTest{
		{"HashDict", NewHashDict(cols)},
		{"HashDict/masked", masked},
		{"ListDict/masked", maskedList},
		{"SortedDict/masked", maskedSorted},
		{"AdaptiveDict", NewAdaptiveDict(cols, 16)},
	}
}

// randRow draws from a deliberately small domain so inserts collide on join
// keys and lookups actually match, mixing ints and strings across kinds.
func randRow(rng *rand.Rand) tuple.Row {
	v := func() value.V {
		if rng.Intn(4) == 0 {
			return value.NewStr(fmt.Sprintf("s%d", rng.Intn(4)))
		}
		return value.NewInt(int64(rng.Intn(6)))
	}
	return tuple.Row{v(), v()}
}

func randLookup(rng *rand.Rand) Lookup {
	var lk Lookup
	switch rng.Intn(4) {
	case 0: // full scan
	case 1: // range condition
		ops := []pred.Op{pred.Lt, pred.Le, pred.Gt, pred.Ge, pred.Ne}
		lk.Ranges = []RangeCond{{
			Col: rng.Intn(2),
			Op:  ops[rng.Intn(len(ops))],
			Val: value.NewInt(int64(rng.Intn(6))),
		}}
	default: // equality on one or both columns
		c := rng.Intn(2)
		lk.EquiCols = []int{c}
		lk.EquiVals = []value.V{value.NewInt(int64(rng.Intn(6)))}
		if rng.Intn(3) == 0 {
			lk.EquiCols = append(lk.EquiCols, 1-c)
			lk.EquiVals = append(lk.EquiVals, value.NewInt(int64(rng.Intn(6))))
		}
	}
	return lk
}

// satisfies applies the lookup's own constraints to an entry — the superset
// filter a SteM's predicate verification would apply.
func satisfies(e Entry, lk Lookup) bool {
	for i, c := range lk.EquiCols {
		if !e.Row[c].Equal(lk.EquiVals[i]) {
			return false
		}
	}
	for _, rc := range lk.Ranges {
		if !evalRange(e.Row[rc.Col], rc) {
			return false
		}
	}
	return true
}

// canonical renders a filtered candidate multiset order-independently.
func canonical(es []Entry, lk Lookup) string {
	keys := make([]string, 0, len(es))
	for _, e := range es {
		if satisfies(e, lk) {
			keys = append(keys, fmt.Sprintf("%s@%d", e.Row.Key(), e.TS))
		}
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// TestDictEquivalence drives randomized insert/probe/evict workloads through
// every dictionary and asserts identical filtered candidates, duplicate
// detection, sizes, and eviction victims.
func TestDictEquivalence(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			duts := newDictsUnderTest()
			var ts tuple.Timestamp
			for op := 0; op < 400; op++ {
				switch rng.Intn(5) {
				case 0, 1: // insert (SteM-style: dedup via Contains first)
					row := randRow(rng)
					dup := duts[0].d.Contains(row)
					for _, dut := range duts[1:] {
						if got := dut.d.Contains(row); got != dup {
							t.Fatalf("op %d: %s.Contains(%s) = %v, %s says %v",
								op, dut.name, row, got, duts[0].name, dup)
						}
					}
					if dup {
						continue
					}
					ts++
					for _, dut := range duts {
						dut.d.Insert(row.Clone(), ts)
					}
				case 2, 3: // probe
					lk := randLookup(rng)
					want := canonical(duts[0].d.Candidates(lk), lk)
					for _, dut := range duts[1:] {
						if got := canonical(dut.d.Candidates(lk), lk); got != want {
							t.Fatalf("op %d: %s.Candidates mismatch\n got: %s\nwant: %s",
								op, dut.name, got, want)
						}
					}
				case 4: // evict
					e0, ok0 := duts[0].d.Evict()
					for _, dut := range duts[1:] {
						e, ok := dut.d.Evict()
						if ok != ok0 {
							t.Fatalf("op %d: %s.Evict ok = %v, want %v", op, dut.name, ok, ok0)
						}
						if ok && (!e.Row.Equal(e0.Row) || e.TS != e0.TS) {
							t.Fatalf("op %d: %s evicted %s@%d, %s evicted %s@%d",
								op, dut.name, e.Row, e.TS, duts[0].name, e0.Row, e0.TS)
						}
					}
				}
				n := duts[0].d.Len()
				for _, dut := range duts[1:] {
					if dut.d.Len() != n {
						t.Fatalf("op %d: %s.Len = %d, want %d", op, dut.name, dut.d.Len(), n)
					}
				}
				max := duts[0].d.MaxTS()
				for _, dut := range duts[1:] {
					if dut.d.MaxTS() != max {
						t.Fatalf("op %d: %s.MaxTS = %d, want %d", op, dut.name, dut.d.MaxTS(), max)
					}
				}
			}
		})
	}
}

// TestProbeCacheCollision pins the probeCache's hash-with-verify behavior:
// two lookups sharing a 64-bit cache key must not share candidate lists.
func TestProbeCacheCollision(t *testing.T) {
	d := NewListDict()
	d.Insert(tuple.Row{value.NewInt(1)}, 1)
	d.Insert(tuple.Row{value.NewInt(2)}, 2)

	lkA := Lookup{EquiCols: []int{0}, EquiVals: []value.V{value.NewInt(1)}}
	lkB := Lookup{EquiCols: []int{0}, EquiVals: []value.V{value.NewInt(2)}}
	rawKey, _ := lkA.cacheKey()
	key := value.MixUint64(rawKey, 0) // candidates() salts keys by shard; shard 0 here

	pc := &probeCache{}
	// Force a collision: seed the cache so lkB's entry sits under lkA's key
	// (same salt, different constraints — the verify step must reject it).
	pc.ents = []cachedCands{{salt: 0, cols: lkB.EquiCols, vals: lkB.EquiVals, es: []Entry{{Row: tuple.Row{value.NewInt(2)}, TS: 2}}}}
	pc.m = map[uint64][]int{key: {0}}
	es := pc.candidates(d, lkA, 0)
	// ListDict candidates are a full scan; the point is the cache must NOT
	// have returned lkB's single-entry list for lkA.
	if len(es) != 2 {
		t.Fatalf("colliding cache entry leaked across lookups: got %d candidates, want full scan of 2", len(es))
	}
	if len(pc.m[key]) != 2 {
		t.Fatalf("cache should hold both colliding entries, has %d", len(pc.m[key]))
	}
	// A repeated lkA probe must now hit its own verified entry.
	if es2 := pc.candidates(d, lkA, 0); len(es2) != 2 {
		t.Fatalf("verified cache hit returned %d candidates, want 2", len(es2))
	}
}
