package stem

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pred"
	"repro/internal/tuple"
	"repro/internal/value"
)

func row(vs ...int64) tuple.Row {
	r := make(tuple.Row, len(vs))
	for i, v := range vs {
		r[i] = value.NewInt(v)
	}
	return r
}

// dictUnderTest enumerates every Dict implementation with fresh instances.
func dictsUnderTest() map[string]func() Dict {
	return map[string]func() Dict{
		"hash":     func() Dict { return NewHashDict([]int{0, 1}) },
		"list":     func() Dict { return NewListDict() },
		"adaptive": func() Dict { return NewAdaptiveDict([]int{0, 1}, 4) },
		"sorted":   func() Dict { return NewSortedDict(0, 4) },
	}
}

// TestDictContract checks the Dict interface contract on every
// implementation: Insert/Contains/Len agree, Candidates with an equality
// constraint returns exactly the matching rows (no misses; the SteM
// re-filters extras, but none of our dicts over-return on the equality
// column), and MaxTS tracks the largest timestamp.
func TestDictContract(t *testing.T) {
	for name, mk := range dictsUnderTest() {
		t.Run(name, func(t *testing.T) {
			d := mk()
			n := 50
			for i := 0; i < n; i++ {
				d.Insert(row(int64(i%7), int64(i)), tuple.Timestamp(i+1))
			}
			if d.Len() != n {
				t.Fatalf("Len = %d, want %d", d.Len(), n)
			}
			if !d.Contains(row(3, 3)) {
				t.Error("Contains(inserted) = false")
			}
			if d.Contains(row(99, 99)) {
				t.Error("Contains(absent) = true")
			}
			if d.MaxTS() != tuple.Timestamp(n) {
				t.Errorf("MaxTS = %d, want %d", d.MaxTS(), n)
			}
			got := d.Candidates(Lookup{EquiCols: []int{0}, EquiVals: []value.V{value.NewInt(3)}})
			matches := 0
			for _, e := range got {
				if e.Row[0].Equal(value.NewInt(3)) {
					matches++
				}
			}
			want := 0
			for i := 0; i < n; i++ {
				if i%7 == 3 {
					want++
				}
			}
			if matches != want {
				t.Errorf("equality candidates: %d matching rows, want %d", matches, want)
			}
			// Full-scan lookup returns everything.
			if all := d.Candidates(Lookup{}); len(all) != n {
				t.Errorf("full scan = %d rows, want %d", len(all), n)
			}
		})
	}
}

// TestDictCandidatesNeverMiss is the property the SteM's correctness rests
// on: whatever the lookup, every stored row matching the equality
// constraints appears among the candidates.
func TestDictCandidatesNeverMiss(t *testing.T) {
	for name, mk := range dictsUnderTest() {
		t.Run(name, func(t *testing.T) {
			f := func(keys []uint8, probe uint8) bool {
				d := mk()
				want := 0
				for i, k := range keys {
					d.Insert(row(int64(k%5), int64(i)), tuple.Timestamp(i+1))
					if k%5 == probe%5 {
						want++
					}
				}
				got := 0
				for _, e := range d.Candidates(Lookup{EquiCols: []int{0}, EquiVals: []value.V{value.NewInt(int64(probe % 5))}}) {
					if e.Row[0].Equal(value.NewInt(int64(probe % 5))) {
						got++
					}
				}
				return got == want
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestDictEvict checks eviction removes the oldest entry and updates
// Contains/Len.
func TestDictEvict(t *testing.T) {
	for name, mk := range dictsUnderTest() {
		t.Run(name, func(t *testing.T) {
			d := mk()
			for i := 0; i < 5; i++ {
				d.Insert(row(int64(i), int64(i)), tuple.Timestamp(i+1))
			}
			e, ok := d.Evict()
			if !ok || e.TS != 1 {
				t.Fatalf("Evict = %+v %v, want the oldest (ts 1)", e, ok)
			}
			if d.Len() != 4 || d.Contains(row(0, 0)) {
				t.Error("evicted row still visible")
			}
			for i := 0; i < 4; i++ {
				if _, ok := d.Evict(); !ok {
					t.Fatal("Evict failed with entries remaining")
				}
			}
			if _, ok := d.Evict(); ok {
				t.Error("Evict on empty dict must report !ok")
			}
		})
	}
}

func TestAdaptiveDictSwitch(t *testing.T) {
	d := NewAdaptiveDict([]int{0}, 3)
	if d.Switched() {
		t.Fatal("switched before threshold")
	}
	d.Insert(row(1, 1), 1)
	d.Insert(row(2, 2), 2)
	if d.Switched() {
		t.Fatal("switched too early")
	}
	d.Insert(row(3, 3), 3)
	if !d.Switched() {
		t.Fatal("did not switch at threshold")
	}
	// All pre-switch data must survive the migration.
	for i := int64(1); i <= 3; i++ {
		if !d.Contains(row(i, i)) {
			t.Errorf("row %d lost in migration", i)
		}
	}
	got := d.Candidates(Lookup{EquiCols: []int{0}, EquiVals: []value.V{value.NewInt(2)}})
	if len(got) != 1 {
		t.Errorf("post-switch lookup = %d rows, want 1", len(got))
	}
}

func TestSortedDictRuns(t *testing.T) {
	d := NewSortedDict(0, 4)
	for i := 0; i < 10; i++ {
		d.Insert(row(int64(9-i), int64(i)), tuple.Timestamp(i+1))
	}
	if d.Runs() != 2 { // 10 inserts, run size 4 => 2 sealed runs + 2 in tail
		t.Errorf("Runs = %d, want 2", d.Runs())
	}
	got := d.Candidates(Lookup{EquiCols: []int{0}, EquiVals: []value.V{value.NewInt(5)}})
	if len(got) != 1 || !got[0].Row[0].Equal(value.NewInt(5)) {
		t.Errorf("sorted lookup = %v", got)
	}
	// Lookup on a non-sort column falls back to a full scan.
	if all := d.Candidates(Lookup{EquiCols: []int{1}, EquiVals: []value.V{value.NewInt(3)}}); len(all) != 10 {
		t.Errorf("non-sort-column lookup returned %d candidates, want all 10", len(all))
	}
}

func TestSortedDictRangeLookup(t *testing.T) {
	d := NewSortedDict(0, 4)
	for i := 0; i < 20; i++ {
		d.Insert(row(int64(i), int64(i)), tuple.Timestamp(i+1))
	}
	cases := []struct {
		op   pred.Op
		val  int64
		want int
	}{
		{pred.Lt, 5, 5},  // 0..4
		{pred.Le, 5, 6},  // 0..5
		{pred.Gt, 15, 4}, // 16..19
		{pred.Ge, 15, 5}, // 15..19
		{pred.Ne, 7, 19}, // all but 7
	}
	for _, c := range cases {
		got := d.Candidates(Lookup{Ranges: []RangeCond{{Col: 0, Op: c.op, Val: value.NewInt(c.val)}}})
		matching := 0
		for _, e := range got {
			if evalRange(e.Row[0], RangeCond{Col: 0, Op: c.op, Val: value.NewInt(c.val)}) {
				matching++
			}
		}
		if matching != c.want {
			t.Errorf("%v %d: %d matching candidates, want %d", c.op, c.val, matching, c.want)
		}
	}
}

// TestRangeCandidatesNeverMiss: range lookups may over-return but must never
// miss a qualifying stored row, on every dictionary.
func TestRangeCandidatesNeverMiss(t *testing.T) {
	ops := []pred.Op{pred.Lt, pred.Le, pred.Gt, pred.Ge, pred.Ne}
	for name, mk := range dictsUnderTest() {
		t.Run(name, func(t *testing.T) {
			f := func(keys []uint8, bound uint8, opIdx uint8) bool {
				op := ops[int(opIdx)%len(ops)]
				rc := RangeCond{Col: 0, Op: op, Val: value.NewInt(int64(bound % 16))}
				d := mk()
				want := 0
				for i, k := range keys {
					d.Insert(row(int64(k%16), int64(i)), tuple.Timestamp(i+1))
					if evalRange(value.NewInt(int64(k%16)), rc) {
						want++
					}
				}
				got := 0
				for _, e := range d.Candidates(Lookup{Ranges: []RangeCond{rc}}) {
					if evalRange(e.Row[0], rc) {
						got++
					}
				}
				return got == want
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestHashDictPicksNarrowestIndex(t *testing.T) {
	d := NewHashDict([]int{0, 1})
	// Column 0 has one big bucket; column 1 is unique.
	for i := 0; i < 20; i++ {
		d.Insert(row(1, int64(i)), tuple.Timestamp(i+1))
	}
	got := d.Candidates(Lookup{
		EquiCols: []int{0, 1},
		EquiVals: []value.V{value.NewInt(1), value.NewInt(7)},
	})
	if len(got) != 1 {
		t.Errorf("narrowest-index lookup returned %d candidates, want 1", len(got))
	}
}

func TestDictRandomizedAgainstReference(t *testing.T) {
	// Reference model: a plain slice with linear filtering.
	for name, mk := range dictsUnderTest() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			d := mk()
			var ref []Entry
			for op := 0; op < 500; op++ {
				switch rng.Intn(10) {
				case 9:
					e, ok := d.Evict()
					if len(ref) == 0 {
						if ok {
							t.Fatal("evicted from empty")
						}
						continue
					}
					oldest := 0
					for i, r := range ref {
						if r.TS < ref[oldest].TS {
							oldest = i
						}
					}
					if !ok || e.TS != ref[oldest].TS {
						t.Fatalf("evict mismatch: got ts %d want %d", e.TS, ref[oldest].TS)
					}
					ref = append(ref[:oldest], ref[oldest+1:]...)
				default:
					r := row(int64(rng.Intn(6)), int64(op))
					d.Insert(r, tuple.Timestamp(op+1))
					ref = append(ref, Entry{Row: r, TS: tuple.Timestamp(op + 1)})
				}
				if d.Len() != len(ref) {
					t.Fatalf("op %d: Len %d != ref %d", op, d.Len(), len(ref))
				}
			}
			// Spot-check every key's candidate set against the reference.
			for k := int64(0); k < 6; k++ {
				want := map[string]int{}
				for _, e := range ref {
					if e.Row[0].Equal(value.NewInt(k)) {
						want[fmt.Sprint(e.TS)]++
					}
				}
				got := map[string]int{}
				for _, e := range d.Candidates(Lookup{EquiCols: []int{0}, EquiVals: []value.V{value.NewInt(k)}}) {
					if e.Row[0].Equal(value.NewInt(k)) {
						got[fmt.Sprint(e.TS)]++
					}
				}
				for ts, n := range want {
					if got[ts] != n {
						t.Fatalf("key %d ts %s: got %d want %d", k, ts, got[ts], n)
					}
				}
			}
		})
	}
}
