// dict.go defines the dictionary data structures a SteM encapsulates.
//
// Section 3.1 of the paper observes that the choice of dictionary is part of
// the join algorithm: hash indexes yield hash-join behaviour, sorted
// structures yield sort-merge behaviour, and a SteM "may use a linked list
// when it holds a small number of tuples, and switch to a hash-based
// implementation when the list size increases" — independently of other
// modules. Each implementation here captures one of those choices.
package stem

import (
	"sort"

	"repro/internal/flow"
	"repro/internal/pred"
	"repro/internal/tuple"
	"repro/internal/value"
)

// Entry is a stored singleton row with its build timestamp.
type Entry struct {
	Row tuple.Row
	TS  tuple.Timestamp
}

// RangeCond is an inequality constraint on a stored column: a candidate row
// r qualifies when r[Col] Op Val holds. Range conditions arise from non-equi
// join predicates (band joins); dictionaries may use them to narrow the
// candidate set but are free to ignore them — the SteM re-verifies every
// predicate on concatenation.
type RangeCond struct {
	Col int
	Op  pred.Op
	Val value.V
}

// Lookup describes a probe into a dictionary: candidate entries must satisfy
// EquiCols[i] == EquiVals[i] for all i; Ranges may further narrow the set.
// A Lookup with no constraints requests a full scan.
type Lookup struct {
	EquiCols []int
	EquiVals []value.V
	Ranges   []RangeCond
}

// cacheKey hashes a pure-equality lookup into a 64-bit key, so batched
// probes sharing a key can reuse one candidate list; ok is false for lookups
// with range conditions, which are not worth keying. Hash collisions are
// resolved by the cache, which verifies the full column/value lists.
func (lk Lookup) cacheKey() (uint64, bool) {
	if len(lk.Ranges) > 0 {
		return 0, false
	}
	h := value.HashSeed
	for i, c := range lk.EquiCols {
		h = value.MixUint64(h, uint64(c))
		h = lk.EquiVals[i].HashInto(h)
	}
	return h, true
}

// equiEqual reports whether the lookup's equality constraints are exactly
// (cols, vals): the verification half of the cache's hash-with-verify keys.
func (lk Lookup) equiEqual(cols []int, vals []value.V) bool {
	if len(lk.EquiCols) != len(cols) {
		return false
	}
	for i, c := range lk.EquiCols {
		if c != cols[i] || !lk.EquiVals[i].Equal(vals[i]) {
			return false
		}
	}
	return true
}

// Dict is the storage structure inside a SteM. Implementations need not be
// thread-safe; the SteM serializes access.
type Dict interface {
	// Insert stores a row with its build timestamp.
	Insert(row tuple.Row, ts tuple.Timestamp)
	// Contains reports whether an identical row is already stored, supporting
	// the set-semantics duplicate elimination of Section 3.2.
	Contains(row tuple.Row) bool
	// Candidates returns stored entries satisfying the lookup's equality
	// constraints. Implementations may return extra entries (the SteM
	// re-verifies every predicate); they must not miss any.
	Candidates(lk Lookup) []Entry
	// Evict removes and returns the entry with the smallest timestamp, for
	// windowed streaming queries; ok is false if empty.
	Evict() (Entry, bool)
	// Len returns the number of stored entries.
	Len() int
	// MaxTS returns the largest stored timestamp, or 0 if empty; used to
	// maintain LastMatchTimeStamp in the relaxed BuildFirst mode (§3.5).
	MaxTS() tuple.Timestamp
}

// ---------------------------------------------------------------------------
// HashDict: one main-memory hash index per join column (Section 2.1.4: "a
// SteM on a table T has one main-memory index on each column of T involved
// in a join predicate; these are all secondary indexes").

// HashDict stores rows with hash indexes on the given columns. Every map is
// keyed by a 64-bit value/row hash rather than an encoded string, so builds
// and probes allocate no key material; hash collisions are benign because
// every bucket consultation verifies candidates with Equal (hash-with-verify:
// a bucket may hold positions for distinct values that collide, and the scan
// filters them out).
type HashDict struct {
	cols    []int
	indexes []map[uint64][]int // parallel to cols: value hash -> entry positions
	entries []Entry
	evicted []bool           // parallel to entries
	rowSet  map[uint64][]int // whole-row hash -> positions, for dedup
	live    int
	// evictHead is the amortized-O(1) eviction cursor: entries before it are
	// all evicted, so Evict resumes scanning where it last stopped instead of
	// rescanning from the start.
	evictHead int
	// maxTS caches the largest live timestamp. Inserts maintain it in O(1);
	// evicting the maximal entry (only possible under out-of-timestamp-order
	// inserts — engine timestamps are monotonic) triggers a rescan.
	maxTS tuple.Timestamp
	// mask is ANDed onto every hash; all ones normally, narrowed by tests to
	// force bucket collisions and exercise the verify paths.
	mask uint64
}

// NewHashDict returns a hash dictionary with secondary indexes on cols (the
// table's join columns).
func NewHashDict(cols []int) *HashDict {
	d := &HashDict{
		cols:    append([]int(nil), cols...),
		indexes: make([]map[uint64][]int, len(cols)),
		rowSet:  make(map[uint64][]int),
		mask:    ^uint64(0),
	}
	for i := range d.indexes {
		d.indexes[i] = make(map[uint64][]int)
	}
	return d
}

// Clear empties the dictionary in place, keeping the backing arrays and map
// buckets so a pooled router's next run rebuilds into warm storage instead of
// reallocating it.
func (d *HashDict) Clear() {
	clear(d.entries)
	d.entries = d.entries[:0]
	d.evicted = d.evicted[:0]
	clear(d.rowSet)
	for i := range d.indexes {
		clear(d.indexes[i])
	}
	d.live = 0
	d.evictHead = 0
	d.maxTS = 0
}

// Insert implements Dict.
func (d *HashDict) Insert(row tuple.Row, ts tuple.Timestamp) {
	pos := len(d.entries)
	d.entries = append(d.entries, Entry{Row: row, TS: ts})
	d.evicted = append(d.evicted, false)
	d.live++
	h := row.Hash64() & d.mask
	d.rowSet[h] = append(d.rowSet[h], pos)
	for i, c := range d.cols {
		k := row[c].Hash64() & d.mask
		d.indexes[i][k] = append(d.indexes[i][k], pos)
	}
	if ts > d.maxTS {
		d.maxTS = ts
	}
}

// Contains implements Dict.
func (d *HashDict) Contains(row tuple.Row) bool {
	for _, p := range d.rowSet[row.Hash64()&d.mask] {
		if !d.evicted[p] && d.entries[p].Row.Equal(row) {
			return true
		}
	}
	return false
}

// containsVec is Contains for physical row i of a columnar table, given the
// precomputed whole-row hash — the build-dedup check without materializing
// the row first.
func (d *HashDict) containsVec(h uint64, tab *flow.ColTable, i int) bool {
	for _, p := range d.rowSet[h&d.mask] {
		if d.evicted[p] {
			continue
		}
		row := d.entries[p].Row
		if len(row) != len(tab.Cols) {
			continue
		}
		eq := true
		for c := range row {
			if !row[c].Equal(tab.Cols[c].ValueAt(i)) {
				eq = false
				break
			}
		}
		if eq {
			return true
		}
	}
	return false
}

// insertHashed is Insert with the whole-row hash already computed (columnar
// builds hash the vector row once for dedup and reuse it here).
func (d *HashDict) insertHashed(row tuple.Row, ts tuple.Timestamp, rowHash uint64) {
	pos := len(d.entries)
	d.entries = append(d.entries, Entry{Row: row, TS: ts})
	d.evicted = append(d.evicted, false)
	d.live++
	d.rowSet[rowHash&d.mask] = append(d.rowSet[rowHash&d.mask], pos)
	for i, c := range d.cols {
		k := row[c].Hash64() & d.mask
		d.indexes[i][k] = append(d.indexes[i][k], pos)
	}
	if ts > d.maxTS {
		d.maxTS = ts
	}
}

// bucket returns the entry positions stored under value hash h in the index
// on d.cols[di]; columnar probes iterate it directly instead of allocating a
// candidate []Entry per probe. Candidates must be verified with Equal.
func (d *HashDict) bucket(di int, h uint64) []int { return d.indexes[di][h&d.mask] }

// colIndex returns the position of col within d's indexed columns, or -1.
func (d *HashDict) colIndex(col int) int {
	for i, c := range d.cols {
		if c == col {
			return i
		}
	}
	return -1
}

// entry returns the stored entry at position p (p from bucket); evicted
// reports whether it has been removed.
func (d *HashDict) entry(p int) (Entry, bool) { return d.entries[p], d.evicted[p] }

// Candidates implements Dict. If any lookup column has a hash index, the
// index whose bucket is narrowest is consulted (bucket sizes may overcount
// under collisions; the heuristic only picks which index to scan); otherwise
// all live entries are returned for the caller to filter.
func (d *HashDict) Candidates(lk Lookup) []Entry {
	bestDi, bestLi, bestLen := -1, -1, -1
	var bestHash uint64
	for li, c := range lk.EquiCols {
		for di, dc := range d.cols {
			if dc != c {
				continue
			}
			h := lk.EquiVals[li].Hash64() & d.mask
			if l := len(d.indexes[di][h]); bestLen < 0 || l < bestLen {
				bestDi, bestLi, bestLen, bestHash = di, li, l, h
			}
		}
	}
	if bestDi < 0 {
		return d.all()
	}
	col, v := d.cols[bestDi], lk.EquiVals[bestLi]
	poss := d.indexes[bestDi][bestHash]
	out := make([]Entry, 0, len(poss))
	for _, p := range poss {
		if !d.evicted[p] && d.entries[p].Row[col].Equal(v) {
			out = append(out, d.entries[p])
		}
	}
	return out
}

func (d *HashDict) all() []Entry {
	out := make([]Entry, 0, d.live)
	for p, e := range d.entries {
		if !d.evicted[p] {
			out = append(out, e)
		}
	}
	return out
}

// Evict implements Dict: removes the oldest live entry, in amortized O(1)
// via the evictHead cursor.
func (d *HashDict) Evict() (Entry, bool) {
	for ; d.evictHead < len(d.entries); d.evictHead++ {
		p := d.evictHead
		if d.evicted[p] {
			continue
		}
		e := d.entries[p]
		d.evicted[p] = true
		d.entries[p].Row = nil // release the row for GC; readers skip evicted slots
		d.live--
		h := e.Row.Hash64() & d.mask
		d.rowSet[h] = removePos(d.rowSet[h], p)
		if len(d.rowSet[h]) == 0 {
			delete(d.rowSet, h)
		}
		if e.TS == d.maxTS {
			d.rescanMaxTS()
		}
		d.evictHead++
		return e, true
	}
	return Entry{}, false
}

func (d *HashDict) rescanMaxTS() {
	d.maxTS = 0
	for p, e := range d.entries {
		if !d.evicted[p] && e.TS > d.maxTS {
			d.maxTS = e.TS
		}
	}
}

// removePos deletes position p from a bucket, preserving order.
func removePos(poss []int, p int) []int {
	for i, x := range poss {
		if x == p {
			return append(poss[:i], poss[i+1:]...)
		}
	}
	return poss
}

// Len implements Dict.
func (d *HashDict) Len() int { return d.live }

// MaxTS implements Dict, in O(1).
func (d *HashDict) MaxTS() tuple.Timestamp {
	if d.live == 0 {
		return 0
	}
	return d.maxTS
}

// ---------------------------------------------------------------------------
// ListDict: an unindexed append-only list. Cheap to build, linear to probe.

// ListDict stores rows in arrival order with no index. The duplicate set is
// keyed by row hash with verification; eviction advances a head cursor and
// periodically compacts the backing array so long-running windowed queries
// do not pin the memory of every row ever stored.
type ListDict struct {
	entries []Entry
	head    int // entries[:head] are evicted, awaiting compaction
	rowSet  map[uint64][]tuple.Row
	mask    uint64
}

// NewListDict returns an empty list dictionary.
func NewListDict() *ListDict {
	return &ListDict{rowSet: make(map[uint64][]tuple.Row), mask: ^uint64(0)}
}

// Insert implements Dict.
func (d *ListDict) Insert(row tuple.Row, ts tuple.Timestamp) {
	d.entries = append(d.entries, Entry{Row: row, TS: ts})
	h := row.Hash64() & d.mask
	d.rowSet[h] = append(d.rowSet[h], row)
}

// Contains implements Dict.
func (d *ListDict) Contains(row tuple.Row) bool {
	for _, r := range d.rowSet[row.Hash64()&d.mask] {
		if r.Equal(row) {
			return true
		}
	}
	return false
}

// Candidates implements Dict: always a full scan.
func (d *ListDict) Candidates(Lookup) []Entry {
	return append([]Entry(nil), d.entries[d.head:]...)
}

// Evict implements Dict. The evicted prefix is released once it outgrows the
// live half, keeping eviction amortized O(1) without retaining the whole
// history in the slice's backing array.
func (d *ListDict) Evict() (Entry, bool) {
	if d.head >= len(d.entries) {
		return Entry{}, false
	}
	e := d.entries[d.head]
	d.entries[d.head] = Entry{} // release the row for GC
	d.head++
	if d.head > 32 && d.head > len(d.entries)/2 {
		n := copy(d.entries, d.entries[d.head:])
		clear(d.entries[n:])
		d.entries = d.entries[:n]
		d.head = 0
	}
	h := e.Row.Hash64() & d.mask
	d.rowSet[h] = removeRow(d.rowSet[h], e.Row)
	if len(d.rowSet[h]) == 0 {
		delete(d.rowSet, h)
	}
	return e, true
}

// removeRow deletes one row equal to r from a bucket, preserving order.
func removeRow(rows []tuple.Row, r tuple.Row) []tuple.Row {
	for i, x := range rows {
		if x.Equal(r) {
			return append(rows[:i], rows[i+1:]...)
		}
	}
	return rows
}

// Len implements Dict.
func (d *ListDict) Len() int { return len(d.entries) - d.head }

// MaxTS implements Dict.
func (d *ListDict) MaxTS() tuple.Timestamp {
	var max tuple.Timestamp
	for _, e := range d.entries[d.head:] {
		if e.TS > max {
			max = e.TS
		}
	}
	return max
}

// ---------------------------------------------------------------------------
// AdaptiveDict: the §3.1 relaxation made concrete — a linked list while
// small, migrating to hash indexes once it crosses a threshold, with no other
// module aware of the switch.

// AdaptiveDict starts as a ListDict and becomes a HashDict after Threshold
// inserts.
type AdaptiveDict struct {
	cols      []int
	threshold int
	inner     Dict
	switched  bool
}

// NewAdaptiveDict returns an adaptive dictionary that switches to hash
// indexes on cols after threshold entries.
func NewAdaptiveDict(cols []int, threshold int) *AdaptiveDict {
	return &AdaptiveDict{cols: cols, threshold: threshold, inner: NewListDict()}
}

// Switched reports whether the migration to hash indexes has happened.
func (d *AdaptiveDict) Switched() bool { return d.switched }

// Insert implements Dict, migrating when the threshold is crossed.
func (d *AdaptiveDict) Insert(row tuple.Row, ts tuple.Timestamp) {
	d.inner.Insert(row, ts)
	if !d.switched && d.inner.Len() >= d.threshold {
		h := NewHashDict(d.cols)
		for _, e := range d.inner.Candidates(Lookup{}) {
			h.Insert(e.Row, e.TS)
		}
		d.inner = h
		d.switched = true
	}
}

// Contains implements Dict.
func (d *AdaptiveDict) Contains(row tuple.Row) bool { return d.inner.Contains(row) }

// Candidates implements Dict.
func (d *AdaptiveDict) Candidates(lk Lookup) []Entry { return d.inner.Candidates(lk) }

// Evict implements Dict.
func (d *AdaptiveDict) Evict() (Entry, bool) { return d.inner.Evict() }

// Len implements Dict.
func (d *AdaptiveDict) Len() int { return d.inner.Len() }

// MaxTS implements Dict.
func (d *AdaptiveDict) MaxTS() tuple.Timestamp { return d.inner.MaxTS() }

// ---------------------------------------------------------------------------
// SortedDict: sorted runs on one column, the tournament-tree analogue of
// §3.1 that makes the SteM routing simulate a sort-merge join. Runs of
// RunSize entries are kept sorted on the sort column; probes binary-search
// every run.

// SortedDict stores rows in sorted runs on a sort column.
type SortedDict struct {
	sortCol int
	runSize int
	runs    [][]Entry
	cur     []Entry
	rowSet  map[uint64][]tuple.Row
	mask    uint64
}

// NewSortedDict returns a sorted-run dictionary on sortCol with the given
// run size (entries per run before a new run is started).
func NewSortedDict(sortCol, runSize int) *SortedDict {
	if runSize <= 0 {
		runSize = 64
	}
	return &SortedDict{sortCol: sortCol, runSize: runSize, rowSet: make(map[uint64][]tuple.Row), mask: ^uint64(0)}
}

// Runs returns the number of sealed sorted runs (for tests and benchmarks).
func (d *SortedDict) Runs() int { return len(d.runs) }

// Insert implements Dict.
func (d *SortedDict) Insert(row tuple.Row, ts tuple.Timestamp) {
	d.cur = append(d.cur, Entry{Row: row, TS: ts})
	h := row.Hash64() & d.mask
	d.rowSet[h] = append(d.rowSet[h], row)
	if len(d.cur) >= d.runSize {
		d.sealRun()
	}
}

func (d *SortedDict) sealRun() {
	if len(d.cur) == 0 {
		return
	}
	run := d.cur
	d.cur = nil
	sort.Slice(run, func(i, j int) bool {
		return run[i].Row[d.sortCol].Compare(run[j].Row[d.sortCol]) < 0
	})
	d.runs = append(d.runs, run)
}

// Contains implements Dict.
func (d *SortedDict) Contains(row tuple.Row) bool {
	for _, r := range d.rowSet[row.Hash64()&d.mask] {
		if r.Equal(row) {
			return true
		}
	}
	return false
}

// Candidates implements Dict: if the lookup binds the sort column — by
// equality or by a range condition — each sealed run is binary-searched; the
// unsealed tail and unmatched columns fall back to scans.
func (d *SortedDict) Candidates(lk Lookup) []Entry {
	for i, c := range lk.EquiCols {
		if c == d.sortCol {
			return d.equalOnSort(lk.EquiVals[i])
		}
	}
	for _, rc := range lk.Ranges {
		if rc.Col == d.sortCol {
			return d.rangeOnSort(rc)
		}
	}
	var out []Entry
	for _, run := range d.runs {
		out = append(out, run...)
	}
	return append(out, d.cur...)
}

func (d *SortedDict) equalOnSort(v value.V) []Entry {
	var out []Entry
	for _, run := range d.runs {
		lo := sort.Search(len(run), func(i int) bool {
			return run[i].Row[d.sortCol].Compare(v) >= 0
		})
		for i := lo; i < len(run) && run[i].Row[d.sortCol].Equal(v); i++ {
			out = append(out, run[i])
		}
	}
	for _, e := range d.cur {
		if e.Row[d.sortCol].Equal(v) {
			out = append(out, e)
		}
	}
	return out
}

// rangeOnSort binary-searches each run for the half-open interval the range
// condition describes. Ne conditions cannot narrow a sorted run usefully, so
// they fall back to a full scan of each run.
func (d *SortedDict) rangeOnSort(rc RangeCond) []Entry {
	var out []Entry
	sat := func(e Entry) bool {
		if e.Row[rc.Col].IsEOT() {
			return false
		}
		return evalRange(e.Row[rc.Col], rc)
	}
	for _, run := range d.runs {
		switch rc.Op {
		case pred.Lt, pred.Le:
			hi := sort.Search(len(run), func(i int) bool {
				return !evalRange(run[i].Row[d.sortCol], rc)
			})
			out = append(out, run[:hi]...)
		case pred.Gt, pred.Ge:
			lo := sort.Search(len(run), func(i int) bool {
				return evalRange(run[i].Row[d.sortCol], rc)
			})
			out = append(out, run[lo:]...)
		default:
			for _, e := range run {
				if sat(e) {
					out = append(out, e)
				}
			}
		}
	}
	for _, e := range d.cur {
		if sat(e) {
			out = append(out, e)
		}
	}
	return out
}

// evalRange reports whether v Op rc.Val holds.
func evalRange(v value.V, rc RangeCond) bool {
	cmp := v.Compare(rc.Val)
	switch rc.Op {
	case pred.Lt:
		return cmp < 0
	case pred.Le:
		return cmp <= 0
	case pred.Gt:
		return cmp > 0
	case pred.Ge:
		return cmp >= 0
	case pred.Ne:
		return cmp != 0
	default:
		return true
	}
}

// Evict implements Dict: removes the entry with the smallest timestamp
// across the sealed runs and the unsealed tail.
func (d *SortedDict) Evict() (Entry, bool) {
	bestRun, bestIdx := -1, -1
	var bestTS tuple.Timestamp
	for ri, run := range d.runs {
		for i, e := range run {
			if bestIdx < 0 || e.TS < bestTS {
				bestRun, bestIdx, bestTS = ri, i, e.TS
			}
		}
	}
	for i, e := range d.cur {
		if bestIdx < 0 || e.TS < bestTS {
			bestRun, bestIdx, bestTS = -1, i, e.TS
		}
	}
	if bestIdx < 0 {
		return Entry{}, false
	}
	var e Entry
	if bestRun >= 0 {
		run := d.runs[bestRun]
		e = run[bestIdx]
		d.runs[bestRun] = append(run[:bestIdx:bestIdx], run[bestIdx+1:]...)
	} else {
		e = d.cur[bestIdx]
		d.cur = append(d.cur[:bestIdx:bestIdx], d.cur[bestIdx+1:]...)
	}
	h := e.Row.Hash64() & d.mask
	d.rowSet[h] = removeRow(d.rowSet[h], e.Row)
	if len(d.rowSet[h]) == 0 {
		delete(d.rowSet, h)
	}
	return e, true
}

// Len implements Dict.
func (d *SortedDict) Len() int {
	n := len(d.cur)
	for _, run := range d.runs {
		n += len(run)
	}
	return n
}

// MaxTS implements Dict.
func (d *SortedDict) MaxTS() tuple.Timestamp {
	var max tuple.Timestamp
	for _, run := range d.runs {
		for _, e := range run {
			if e.TS > max {
				max = e.TS
			}
		}
	}
	for _, e := range d.cur {
		if e.TS > max {
			max = e.TS
		}
	}
	return max
}

// lookupInto derives the lookup for a probe tuple against table column
// constraints: equality columns from equi-join predicates, range conditions
// from the comparison joins (band joins). BindSide orients the op as
// "fromValue op t.column"; the stored-side condition is the flip. The
// lookup is built into lk, reusing its slices, so per-probe lookup
// construction allocates nothing in steady state.
func lookupInto(lk *Lookup, t *tuple.Tuple, table int, preds []pred.P) {
	lk.EquiCols = lk.EquiCols[:0]
	lk.EquiVals = lk.EquiVals[:0]
	lk.Ranges = lk.Ranges[:0]
	for _, p := range preds {
		tCol, from, op, ok := p.BindSide(t.Span, table)
		if !ok {
			continue
		}
		v := t.Value(from.Table, from.Col)
		if op == pred.Eq {
			lk.EquiCols = append(lk.EquiCols, tCol)
			lk.EquiVals = append(lk.EquiVals, v)
			continue
		}
		lk.Ranges = append(lk.Ranges, RangeCond{Col: tCol, Op: op.Flip(), Val: v})
	}
}
