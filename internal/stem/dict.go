// dict.go defines the dictionary data structures a SteM encapsulates.
//
// Section 3.1 of the paper observes that the choice of dictionary is part of
// the join algorithm: hash indexes yield hash-join behaviour, sorted
// structures yield sort-merge behaviour, and a SteM "may use a linked list
// when it holds a small number of tuples, and switch to a hash-based
// implementation when the list size increases" — independently of other
// modules. Each implementation here captures one of those choices.
package stem

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/pred"
	"repro/internal/tuple"
	"repro/internal/value"
)

// Entry is a stored singleton row with its build timestamp.
type Entry struct {
	Row tuple.Row
	TS  tuple.Timestamp
}

// RangeCond is an inequality constraint on a stored column: a candidate row
// r qualifies when r[Col] Op Val holds. Range conditions arise from non-equi
// join predicates (band joins); dictionaries may use them to narrow the
// candidate set but are free to ignore them — the SteM re-verifies every
// predicate on concatenation.
type RangeCond struct {
	Col int
	Op  pred.Op
	Val value.V
}

// Lookup describes a probe into a dictionary: candidate entries must satisfy
// EquiCols[i] == EquiVals[i] for all i; Ranges may further narrow the set.
// A Lookup with no constraints requests a full scan.
type Lookup struct {
	EquiCols []int
	EquiVals []value.V
	Ranges   []RangeCond
}

// cacheKey encodes a pure-equality lookup as a stable string, so batched
// probes sharing a key can reuse one candidate list; ok is false for lookups
// with range conditions, which are not worth keying.
func (lk Lookup) cacheKey() (string, bool) {
	if len(lk.Ranges) > 0 {
		return "", false
	}
	var b strings.Builder
	for i, c := range lk.EquiCols {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(strconv.Itoa(c))
		b.WriteByte('=')
		b.WriteString(lk.EquiVals[i].Key())
	}
	return b.String(), true
}

// Dict is the storage structure inside a SteM. Implementations need not be
// thread-safe; the SteM serializes access.
type Dict interface {
	// Insert stores a row with its build timestamp.
	Insert(row tuple.Row, ts tuple.Timestamp)
	// Contains reports whether an identical row is already stored, supporting
	// the set-semantics duplicate elimination of Section 3.2.
	Contains(row tuple.Row) bool
	// Candidates returns stored entries satisfying the lookup's equality
	// constraints. Implementations may return extra entries (the SteM
	// re-verifies every predicate); they must not miss any.
	Candidates(lk Lookup) []Entry
	// Evict removes and returns the entry with the smallest timestamp, for
	// windowed streaming queries; ok is false if empty.
	Evict() (Entry, bool)
	// Len returns the number of stored entries.
	Len() int
	// MaxTS returns the largest stored timestamp, or 0 if empty; used to
	// maintain LastMatchTimeStamp in the relaxed BuildFirst mode (§3.5).
	MaxTS() tuple.Timestamp
}

// ---------------------------------------------------------------------------
// HashDict: one main-memory hash index per join column (Section 2.1.4: "a
// SteM on a table T has one main-memory index on each column of T involved
// in a join predicate; these are all secondary indexes").

// HashDict stores rows with hash indexes on the given columns.
type HashDict struct {
	cols    []int
	indexes []map[string][]int // parallel to cols: value key -> entry positions
	entries []Entry
	rowSet  map[string]int // row key -> position, for dedup and eviction
	evicted map[int]bool
}

// NewHashDict returns a hash dictionary with secondary indexes on cols (the
// table's join columns).
func NewHashDict(cols []int) *HashDict {
	d := &HashDict{
		cols:    append([]int(nil), cols...),
		indexes: make([]map[string][]int, len(cols)),
		rowSet:  make(map[string]int),
		evicted: make(map[int]bool),
	}
	for i := range d.indexes {
		d.indexes[i] = make(map[string][]int)
	}
	return d
}

// Insert implements Dict.
func (d *HashDict) Insert(row tuple.Row, ts tuple.Timestamp) {
	pos := len(d.entries)
	d.entries = append(d.entries, Entry{Row: row, TS: ts})
	d.rowSet[row.Key()] = pos
	for i, c := range d.cols {
		k := row[c].Key()
		d.indexes[i][k] = append(d.indexes[i][k], pos)
	}
}

// Contains implements Dict.
func (d *HashDict) Contains(row tuple.Row) bool {
	pos, ok := d.rowSet[row.Key()]
	return ok && !d.evicted[pos]
}

// Candidates implements Dict. If any lookup column has a hash index, the
// narrowest single-column index is consulted; otherwise all live entries are
// returned for the caller to filter.
func (d *HashDict) Candidates(lk Lookup) []Entry {
	best := -1
	bestLen := -1
	for li, c := range lk.EquiCols {
		for di, dc := range d.cols {
			if dc != c {
				continue
			}
			l := len(d.indexes[di][lk.EquiVals[li].Key()])
			if bestLen < 0 || l < bestLen {
				best, bestLen = li, l
				_ = di
			}
		}
	}
	if best >= 0 {
		for di, dc := range d.cols {
			if dc == lk.EquiCols[best] {
				poss := d.indexes[di][lk.EquiVals[best].Key()]
				out := make([]Entry, 0, len(poss))
				for _, p := range poss {
					if !d.evicted[p] {
						out = append(out, d.entries[p])
					}
				}
				return out
			}
		}
	}
	return d.all()
}

func (d *HashDict) all() []Entry {
	out := make([]Entry, 0, len(d.entries)-len(d.evicted))
	for p, e := range d.entries {
		if !d.evicted[p] {
			out = append(out, e)
		}
	}
	return out
}

// Evict implements Dict: removes the oldest live entry.
func (d *HashDict) Evict() (Entry, bool) {
	for p, e := range d.entries {
		if !d.evicted[p] {
			d.evicted[p] = true
			delete(d.rowSet, e.Row.Key())
			return e, true
		}
	}
	return Entry{}, false
}

// Len implements Dict.
func (d *HashDict) Len() int { return len(d.entries) - len(d.evicted) }

// MaxTS implements Dict.
func (d *HashDict) MaxTS() tuple.Timestamp {
	var max tuple.Timestamp
	for p, e := range d.entries {
		if !d.evicted[p] && e.TS > max {
			max = e.TS
		}
	}
	return max
}

// ---------------------------------------------------------------------------
// ListDict: an unindexed append-only list. Cheap to build, linear to probe.

// ListDict stores rows in arrival order with no index.
type ListDict struct {
	entries []Entry
	rowSet  map[string]bool
}

// NewListDict returns an empty list dictionary.
func NewListDict() *ListDict {
	return &ListDict{rowSet: make(map[string]bool)}
}

// Insert implements Dict.
func (d *ListDict) Insert(row tuple.Row, ts tuple.Timestamp) {
	d.entries = append(d.entries, Entry{Row: row, TS: ts})
	d.rowSet[row.Key()] = true
}

// Contains implements Dict.
func (d *ListDict) Contains(row tuple.Row) bool { return d.rowSet[row.Key()] }

// Candidates implements Dict: always a full scan.
func (d *ListDict) Candidates(Lookup) []Entry {
	return append([]Entry(nil), d.entries...)
}

// Evict implements Dict.
func (d *ListDict) Evict() (Entry, bool) {
	if len(d.entries) == 0 {
		return Entry{}, false
	}
	e := d.entries[0]
	d.entries = d.entries[1:]
	delete(d.rowSet, e.Row.Key())
	return e, true
}

// Len implements Dict.
func (d *ListDict) Len() int { return len(d.entries) }

// MaxTS implements Dict.
func (d *ListDict) MaxTS() tuple.Timestamp {
	var max tuple.Timestamp
	for _, e := range d.entries {
		if e.TS > max {
			max = e.TS
		}
	}
	return max
}

// ---------------------------------------------------------------------------
// AdaptiveDict: the §3.1 relaxation made concrete — a linked list while
// small, migrating to hash indexes once it crosses a threshold, with no other
// module aware of the switch.

// AdaptiveDict starts as a ListDict and becomes a HashDict after Threshold
// inserts.
type AdaptiveDict struct {
	cols      []int
	threshold int
	inner     Dict
	switched  bool
}

// NewAdaptiveDict returns an adaptive dictionary that switches to hash
// indexes on cols after threshold entries.
func NewAdaptiveDict(cols []int, threshold int) *AdaptiveDict {
	return &AdaptiveDict{cols: cols, threshold: threshold, inner: NewListDict()}
}

// Switched reports whether the migration to hash indexes has happened.
func (d *AdaptiveDict) Switched() bool { return d.switched }

// Insert implements Dict, migrating when the threshold is crossed.
func (d *AdaptiveDict) Insert(row tuple.Row, ts tuple.Timestamp) {
	d.inner.Insert(row, ts)
	if !d.switched && d.inner.Len() >= d.threshold {
		h := NewHashDict(d.cols)
		for _, e := range d.inner.Candidates(Lookup{}) {
			h.Insert(e.Row, e.TS)
		}
		d.inner = h
		d.switched = true
	}
}

// Contains implements Dict.
func (d *AdaptiveDict) Contains(row tuple.Row) bool { return d.inner.Contains(row) }

// Candidates implements Dict.
func (d *AdaptiveDict) Candidates(lk Lookup) []Entry { return d.inner.Candidates(lk) }

// Evict implements Dict.
func (d *AdaptiveDict) Evict() (Entry, bool) { return d.inner.Evict() }

// Len implements Dict.
func (d *AdaptiveDict) Len() int { return d.inner.Len() }

// MaxTS implements Dict.
func (d *AdaptiveDict) MaxTS() tuple.Timestamp { return d.inner.MaxTS() }

// ---------------------------------------------------------------------------
// SortedDict: sorted runs on one column, the tournament-tree analogue of
// §3.1 that makes the SteM routing simulate a sort-merge join. Runs of
// RunSize entries are kept sorted on the sort column; probes binary-search
// every run.

// SortedDict stores rows in sorted runs on a sort column.
type SortedDict struct {
	sortCol int
	runSize int
	runs    [][]Entry
	cur     []Entry
	rowSet  map[string]bool
}

// NewSortedDict returns a sorted-run dictionary on sortCol with the given
// run size (entries per run before a new run is started).
func NewSortedDict(sortCol, runSize int) *SortedDict {
	if runSize <= 0 {
		runSize = 64
	}
	return &SortedDict{sortCol: sortCol, runSize: runSize, rowSet: make(map[string]bool)}
}

// Runs returns the number of sealed sorted runs (for tests and benchmarks).
func (d *SortedDict) Runs() int { return len(d.runs) }

// Insert implements Dict.
func (d *SortedDict) Insert(row tuple.Row, ts tuple.Timestamp) {
	d.cur = append(d.cur, Entry{Row: row, TS: ts})
	d.rowSet[row.Key()] = true
	if len(d.cur) >= d.runSize {
		d.sealRun()
	}
}

func (d *SortedDict) sealRun() {
	if len(d.cur) == 0 {
		return
	}
	run := d.cur
	d.cur = nil
	sort.Slice(run, func(i, j int) bool {
		return run[i].Row[d.sortCol].Compare(run[j].Row[d.sortCol]) < 0
	})
	d.runs = append(d.runs, run)
}

// Contains implements Dict.
func (d *SortedDict) Contains(row tuple.Row) bool { return d.rowSet[row.Key()] }

// Candidates implements Dict: if the lookup binds the sort column — by
// equality or by a range condition — each sealed run is binary-searched; the
// unsealed tail and unmatched columns fall back to scans.
func (d *SortedDict) Candidates(lk Lookup) []Entry {
	for i, c := range lk.EquiCols {
		if c == d.sortCol {
			return d.equalOnSort(lk.EquiVals[i])
		}
	}
	for _, rc := range lk.Ranges {
		if rc.Col == d.sortCol {
			return d.rangeOnSort(rc)
		}
	}
	var out []Entry
	for _, run := range d.runs {
		out = append(out, run...)
	}
	return append(out, d.cur...)
}

func (d *SortedDict) equalOnSort(v value.V) []Entry {
	var out []Entry
	for _, run := range d.runs {
		lo := sort.Search(len(run), func(i int) bool {
			return run[i].Row[d.sortCol].Compare(v) >= 0
		})
		for i := lo; i < len(run) && run[i].Row[d.sortCol].Equal(v); i++ {
			out = append(out, run[i])
		}
	}
	for _, e := range d.cur {
		if e.Row[d.sortCol].Equal(v) {
			out = append(out, e)
		}
	}
	return out
}

// rangeOnSort binary-searches each run for the half-open interval the range
// condition describes. Ne conditions cannot narrow a sorted run usefully, so
// they fall back to a full scan of each run.
func (d *SortedDict) rangeOnSort(rc RangeCond) []Entry {
	var out []Entry
	sat := func(e Entry) bool {
		if e.Row[rc.Col].IsEOT() {
			return false
		}
		return evalRange(e.Row[rc.Col], rc)
	}
	for _, run := range d.runs {
		switch rc.Op {
		case pred.Lt, pred.Le:
			hi := sort.Search(len(run), func(i int) bool {
				return !evalRange(run[i].Row[d.sortCol], rc)
			})
			out = append(out, run[:hi]...)
		case pred.Gt, pred.Ge:
			lo := sort.Search(len(run), func(i int) bool {
				return evalRange(run[i].Row[d.sortCol], rc)
			})
			out = append(out, run[lo:]...)
		default:
			for _, e := range run {
				if sat(e) {
					out = append(out, e)
				}
			}
		}
	}
	for _, e := range d.cur {
		if sat(e) {
			out = append(out, e)
		}
	}
	return out
}

// evalRange reports whether v Op rc.Val holds.
func evalRange(v value.V, rc RangeCond) bool {
	cmp := v.Compare(rc.Val)
	switch rc.Op {
	case pred.Lt:
		return cmp < 0
	case pred.Le:
		return cmp <= 0
	case pred.Gt:
		return cmp > 0
	case pred.Ge:
		return cmp >= 0
	case pred.Ne:
		return cmp != 0
	default:
		return true
	}
}

// Evict implements Dict.
func (d *SortedDict) Evict() (Entry, bool) {
	bestRun, bestIdx := -1, -1
	var bestTS tuple.Timestamp
	for ri, run := range d.runs {
		for i, e := range run {
			if bestRun < 0 || e.TS < bestTS {
				bestRun, bestIdx, bestTS = ri, i, e.TS
			}
		}
	}
	for i, e := range d.cur {
		if bestRun < 0 && bestIdx < 0 || e.TS < bestTS {
			bestRun, bestIdx, bestTS = -2, i, e.TS
		}
	}
	switch {
	case bestRun >= 0:
		run := d.runs[bestRun]
		e := run[bestIdx]
		d.runs[bestRun] = append(run[:bestIdx:bestIdx], run[bestIdx+1:]...)
		delete(d.rowSet, e.Row.Key())
		return e, true
	case bestRun == -2:
		e := d.cur[bestIdx]
		d.cur = append(d.cur[:bestIdx:bestIdx], d.cur[bestIdx+1:]...)
		delete(d.rowSet, e.Row.Key())
		return e, true
	default:
		return Entry{}, false
	}
}

// Len implements Dict.
func (d *SortedDict) Len() int {
	n := len(d.cur)
	for _, run := range d.runs {
		n += len(run)
	}
	return n
}

// MaxTS implements Dict.
func (d *SortedDict) MaxTS() tuple.Timestamp {
	var max tuple.Timestamp
	for _, run := range d.runs {
		for _, e := range run {
			if e.TS > max {
				max = e.TS
			}
		}
	}
	for _, e := range d.cur {
		if e.TS > max {
			max = e.TS
		}
	}
	return max
}

// lookupFor derives the lookup for a probe tuple against table column
// constraints: equality columns from equi-join predicates, range conditions
// from the comparison joins (band joins). BindSide orients the op as
// "fromValue op t.column"; the stored-side condition is the flip.
func lookupFor(t *tuple.Tuple, table int, preds []pred.P) Lookup {
	var lk Lookup
	for _, p := range preds {
		tCol, from, op, ok := p.BindSide(t.Span, table)
		if !ok {
			continue
		}
		v := t.Value(from.Table, from.Col)
		if op == pred.Eq {
			lk.EquiCols = append(lk.EquiCols, tCol)
			lk.EquiVals = append(lk.EquiVals, v)
			continue
		}
		lk.Ranges = append(lk.Ranges, RangeCond{Col: tCol, Op: op.Flip(), Val: v})
	}
	return lk
}
