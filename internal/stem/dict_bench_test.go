package stem

// Microbenchmarks for the dictionary layer itself, isolating build/probe
// cost from routing and engine overhead. Allocations are reported: the
// zero-allocation key layer's contract is that a steady-state HashDict
// build is 1 alloc (the entry append, amortized) and a probe allocates only
// the candidate slice it returns.

import (
	"testing"

	"repro/internal/tuple"
	"repro/internal/value"
)

func benchRows(n int) []tuple.Row {
	rows := make([]tuple.Row, n)
	for i := range rows {
		rows[i] = tuple.Row{value.NewInt(int64(i)), value.NewInt(int64(i % 64))}
	}
	return rows
}

func BenchmarkHashDictInsert(b *testing.B) {
	rows := benchRows(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%len(rows) == 0 {
			b.StopTimer()
			// Fresh dict each pass so Insert never sees duplicates.
			benchDictSink = NewHashDict([]int{0, 1})
			b.StartTimer()
		}
		r := rows[i%len(rows)]
		benchDictSink.Insert(r, tuple.Timestamp(i+1))
	}
}

var benchDictSink *HashDict

func BenchmarkHashDictProbe(b *testing.B) {
	d := NewHashDict([]int{0, 1})
	rows := benchRows(4096)
	for i, r := range rows {
		d.Insert(r, tuple.Timestamp(i+1))
	}
	lk := Lookup{EquiCols: []int{1}, EquiVals: []value.V{value.NewInt(7)}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lk.EquiVals[0] = value.NewInt(int64(i % 64))
		if es := d.Candidates(lk); len(es) == 0 {
			b.Fatal("probe found nothing")
		}
	}
}

func BenchmarkHashDictContains(b *testing.B) {
	d := NewHashDict([]int{0, 1})
	rows := benchRows(4096)
	for i, r := range rows {
		d.Insert(r, tuple.Timestamp(i+1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !d.Contains(rows[i%len(rows)]) {
			b.Fatal("stored row not found")
		}
	}
}

func BenchmarkHashDictEvict(b *testing.B) {
	d := NewHashDict([]int{0, 1})
	rows := benchRows(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d.Len() == 0 {
			b.StopTimer()
			for j, r := range rows {
				d.Insert(r, tuple.Timestamp(j+1))
			}
			b.StartTimer()
		}
		if _, ok := d.Evict(); !ok {
			b.Fatal("evict on non-empty dict failed")
		}
	}
}
