package stem

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/flow"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/tuple"
	"repro/internal/value"
)

// twoTableQ builds R(k,a) ⋈ S(x,y) on R.a=S.x. withIndex adds an index AM on
// S.x; withScan keeps the scan on S.
func twoTableQ(t *testing.T, withScan, withIndex bool) *query.Q {
	t.Helper()
	rT := schema.MustTable("R", schema.IntCol("k"), schema.IntCol("a"))
	sT := schema.MustTable("S", schema.IntCol("x"), schema.IntCol("y"))
	rData := source.MustTable(rT, []tuple.Row{row(1, 10), row(2, 20)})
	sData := source.MustTable(sT, []tuple.Row{row(10, 100), row(20, 200)})
	ams := []query.AMDecl{
		{Table: 0, Kind: query.Scan, Data: rData, ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}},
	}
	if withScan {
		ams = append(ams, query.AMDecl{Table: 1, Kind: query.Scan, Data: sData,
			ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}})
	}
	if withIndex {
		ams = append(ams, query.AMDecl{Table: 1, Kind: query.Index, Data: sData,
			IndexSpec: source.IndexSpec{KeyCols: []int{0}, Latency: clock.Millisecond}})
	}
	return query.MustNew([]*schema.Table{rT, sT}, []pred.P{pred.EquiJoin(0, 1, 1, 0)}, ams)
}

func newSteM(q *query.Q, table int, opts ...func(*Config)) *SteM {
	cfg := Config{Table: table, Q: q, TS: &Counter{}}
	for _, o := range opts {
		o(&cfg)
	}
	return New(cfg)
}

func singleton(n, table int, r tuple.Row) *tuple.Tuple {
	return tuple.NewSingleton(n, table, r)
}

func process(t *testing.T, s *SteM, tp *tuple.Tuple) []flow.Emission {
	t.Helper()
	out, _ := s.Process(tp, 0)
	return out
}

// TestTable1_BuildBouncesBack: "SteM: build t into the SteM ... bounce back
// t" — and the build records timestamp and built-bit.
func TestTable1_BuildBouncesBack(t *testing.T) {
	q := twoTableQ(t, true, false)
	s := newSteM(q, 0)
	r := singleton(2, 0, row(1, 10))
	out := process(t, s, r)
	if len(out) != 1 || out[0].T != r {
		t.Fatalf("build must bounce the tuple back, got %v", out)
	}
	if !r.Built.Has(0) || r.CompTS[0] == tuple.InfTS {
		t.Error("build must set built-bit and timestamp")
	}
	if s.Size() != 1 {
		t.Errorf("Size = %d", s.Size())
	}
}

// TestTable1_DuplicateBuildConsumed: set-semantics dedup (Section 3.2) — a
// duplicate build is removed from the dataflow, not bounced.
func TestTable1_DuplicateBuildConsumed(t *testing.T) {
	q := twoTableQ(t, true, false)
	s := newSteM(q, 0)
	process(t, s, singleton(2, 0, row(1, 10)))
	dup := singleton(2, 0, row(1, 10))
	if out := process(t, s, dup); len(out) != 0 {
		t.Fatalf("duplicate build must be consumed, got %v", out)
	}
	st := s.Stats()
	if st.Builds != 1 || st.DupBuilds != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestTable1_ProbeReturnsConcatenatedMatches: probes return concatenations
// that pass every applicable predicate, with done bits set.
func TestTable1_ProbeReturnsConcatenatedMatches(t *testing.T) {
	q := twoTableQ(t, true, false)
	sR := newSteM(q, 0)
	r1 := singleton(2, 0, row(1, 10))
	r2 := singleton(2, 0, row(2, 20))
	process(t, sR, r1)
	process(t, sR, r2)

	// An S tuple (built elsewhere, so its ts is later) probes SteM(R).
	s1 := singleton(2, 1, row(10, 100))
	s1.CompTS[1] = 99
	s1.Built = tuple.Single(1)
	out := process(t, sR, s1)
	var results []*tuple.Tuple
	for _, e := range out {
		if e.T != s1 {
			results = append(results, e.T)
		}
	}
	if len(results) != 1 {
		t.Fatalf("probe returned %d results, want 1 (only R.a=10 matches)", len(results))
	}
	cat := results[0]
	if cat.Span != tuple.All(2) {
		t.Errorf("concat span = %v", cat.Span)
	}
	if !cat.Done.Has(0) {
		t.Error("join predicate must be marked done on the concatenation")
	}
}

// TestFigure3_TimeStampPreventsDuplicates reproduces the Figure 3 race:
// builds of r1 and s1 interleave with their probes; without the TimeStamp
// constraint the result (r1,s1) would be emitted by both probes.
func TestFigure3_TimeStampPreventsDuplicates(t *testing.T) {
	q := twoTableQ(t, true, false)
	counter := &Counter{}
	sR := New(Config{Table: 0, Q: q, TS: counter})
	sS := New(Config{Table: 1, Q: q, TS: counter})

	r1 := singleton(2, 0, row(1, 10))
	s1 := singleton(2, 1, row(10, 100))
	// Step 1: build r1. Step 2: build s1. Step 3: probe s1 into SteM(R).
	// Step 4: probe r1 into SteM(S).
	process(t, sR, r1)
	process(t, sS, s1)
	results := 0
	for _, e := range process(t, sR, s1) {
		if e.T != s1 {
			results++
		}
	}
	for _, e := range process(t, sS, r1) {
		if e.T != r1 {
			results++
		}
	}
	if results != 1 {
		t.Fatalf("interleaved build/probe produced %d results, want exactly 1 (TimeStamp constraint)", results)
	}
}

// TestProbeBounce_NoScanAM: with only an index AM on S, an incomplete probe
// must bounce back and become a prior prober (SteM BounceBack, Table 2).
func TestProbeBounce_NoScanAM(t *testing.T) {
	q := twoTableQ(t, false, true)
	sS := newSteM(q, 1)
	r := singleton(2, 0, row(1, 10))
	r.CompTS[0] = 1
	r.Built = tuple.Single(0)
	out := process(t, sS, r)
	if len(out) != 1 || out[0].T != r {
		t.Fatalf("incomplete probe must bounce, got %v", out)
	}
	if !r.PriorProber || r.ProbeTable != 1 {
		t.Error("bounced probe must be marked a prior prober for S")
	}
}

// TestProbeConsumed_ScanAMAndCached: with a scan AM on S and the probe's
// components cached, the SteM consumes the probe (the scan regenerates any
// missing matches).
func TestProbeConsumed_ScanAMAndCached(t *testing.T) {
	q := twoTableQ(t, true, false)
	sS := newSteM(q, 1)
	r := singleton(2, 0, row(1, 10))
	r.CompTS[0] = 1
	r.Built = tuple.Single(0)
	out := process(t, sS, r)
	if len(out) != 0 {
		t.Fatalf("probe should be consumed, got %v", out)
	}
	if r.PriorProber {
		t.Error("consumed probe must not be a prior prober")
	}
}

// TestEOTCompleteness_IndexEOT: once the EOT for a binding is built in, the
// SteM answers that binding's probes from cache without bouncing ("SteM(S)'s
// role is that of a cache on index lookups into S", Section 3.3).
func TestEOTCompleteness_IndexEOT(t *testing.T) {
	q := twoTableQ(t, false, true)
	counter := &Counter{}
	sS := New(Config{Table: 1, Q: q, TS: counter})

	// Matches for x=10 arrive and build; then the EOT for x=10.
	m := singleton(2, 1, row(10, 100))
	process(t, sS, m)
	eot := tuple.NewEOT(2, 1, tuple.Row{value.NewInt(10), value.NewEOT()}, []int{0})
	process(t, sS, eot)

	r := singleton(2, 0, row(1, 10))
	r.CompTS[0] = counter.Next()
	r.Built = tuple.Single(0)
	out := process(t, sS, r)
	results, bounced := 0, false
	for _, e := range out {
		if e.T == r {
			bounced = true
		} else {
			results++
		}
	}
	if results != 1 {
		t.Errorf("cached probe returned %d results, want 1", results)
	}
	if bounced {
		t.Error("probe with matching EOT must not bounce (all matches cached)")
	}
	// A different binding (x=20) is still incomplete: must bounce.
	r2 := singleton(2, 0, row(2, 20))
	r2.CompTS[0] = counter.Next()
	r2.Built = tuple.Single(0)
	out2 := process(t, sS, r2)
	if len(out2) != 1 || out2[0].T != r2 {
		t.Error("uncovered binding must still bounce")
	}
}

// TestEOTCompleteness_FullEOT: a scan EOT makes every probe complete.
func TestEOTCompleteness_FullEOT(t *testing.T) {
	q := twoTableQ(t, false, true)
	counter := &Counter{}
	sS := New(Config{Table: 1, Q: q, TS: counter})
	process(t, sS, tuple.NewEOT(2, 1, tuple.Row{value.NewEOT(), value.NewEOT()}, nil))
	r := singleton(2, 0, row(1, 10))
	r.CompTS[0] = counter.Next()
	r.Built = tuple.Single(0)
	if out := process(t, sS, r); len(out) != 0 {
		t.Errorf("probe after full EOT must be consumed, got %v", out)
	}
}

// TestBounceIfIndexAM: the Section 4.1 hook bounces incomplete probes even
// when a scan AM exists, handing the index/hash choice to the eddy.
func TestBounceIfIndexAM(t *testing.T) {
	q := twoTableQ(t, true, true)
	sS := newSteM(q, 1, func(c *Config) { c.ProbeBounce = BounceIfIndexAM })
	r := singleton(2, 0, row(1, 10))
	r.CompTS[0] = 1
	r.Built = tuple.Single(0)
	out := process(t, sS, r)
	if len(out) != 1 || !r.PriorProber {
		t.Fatal("BounceIfIndexAM must bounce incomplete probes")
	}
}

// TestLastMatchTS_RepeatedProbes: a re-probing prior prober only receives
// matches built since its last visit (Section 3.5's LastMatchTimeStamp).
func TestLastMatchTS_RepeatedProbes(t *testing.T) {
	q := twoTableQ(t, false, true)
	counter := &Counter{}
	sS := New(Config{Table: 1, Q: q, TS: counter})

	process(t, sS, singleton(2, 1, row(10, 100)))
	r := singleton(2, 0, row(1, 10))
	r.CompTS[0] = counter.Next() // r arrives after the first match
	r.Built = tuple.Single(0)

	first := process(t, sS, r)
	results := 0
	for _, e := range first {
		if e.T != r {
			results++
		}
	}
	if results != 1 {
		t.Fatalf("first probe: %d results, want 1", results)
	}
	// Re-probe with nothing new: only the bounce comes back.
	second := process(t, sS, r)
	for _, e := range second {
		if e.T != r {
			t.Fatalf("re-probe returned duplicate match %v", e.T)
		}
	}
	// A new match arrives, built later; the third probe picks up only it —
	// but r's own timestamp must still exceed the match's for emission, so
	// refresh r's timestamp as a later-arriving prober would be.
	process(t, sS, singleton(2, 1, row(10, 101)))
	r.CompTS[0] = counter.Next()
	third := process(t, sS, r)
	results = 0
	for _, e := range third {
		if e.T != r {
			results++
		}
	}
	if results != 1 {
		t.Errorf("third probe: %d results, want exactly the new match", results)
	}
}

// TestWindowEviction: a windowed SteM holds at most Window rows and never
// claims completeness.
func TestWindowEviction(t *testing.T) {
	q := twoTableQ(t, true, false)
	sR := newSteM(q, 0, func(c *Config) { c.Window = 2 })
	for i := int64(0); i < 5; i++ {
		process(t, sR, singleton(2, 0, row(i, 10*i)))
	}
	if sR.Size() != 2 {
		t.Errorf("windowed Size = %d, want 2", sR.Size())
	}
	if sR.Stats().Evictions != 3 {
		t.Errorf("Evictions = %d, want 3", sR.Stats().Evictions)
	}
}

// TestGraceBatchedBounce: with BuildBounceBatch, build bounce-backs are held
// and released in partition-clustered batches; a full EOT flushes stragglers
// (the Grace hash join simulation of Section 3.1).
func TestGraceBatchedBounce(t *testing.T) {
	q := twoTableQ(t, true, false)
	sR := newSteM(q, 0, func(c *Config) { c.BuildBounceBatch = 3 })
	var released int
	for i := int64(0); i < 7; i++ {
		out := process(t, sR, singleton(2, 0, row(i, i)))
		released += len(out)
	}
	if released != 6 { // two batches of 3; 1 held
		t.Fatalf("released %d bounce-backs, want 6", released)
	}
	if sR.HeldBuilds() != 1 {
		t.Fatalf("HeldBuilds = %d, want 1", sR.HeldBuilds())
	}
	eot := tuple.NewEOT(2, 0, tuple.Row{value.NewEOT(), value.NewEOT()}, nil)
	out := process(t, sR, eot)
	if len(out) != 1 {
		t.Fatalf("full EOT must flush the held build, got %d", len(out))
	}
	if sR.HeldBuilds() != 0 {
		t.Error("flush left held builds behind")
	}
}

// TestJoinCols extracts exactly the columns involved in join predicates.
func TestJoinCols(t *testing.T) {
	q := twoTableQ(t, true, false)
	if got := JoinCols(q, 0); len(got) != 1 || got[0] != 1 {
		t.Errorf("JoinCols(R) = %v, want [1]", got)
	}
	if got := JoinCols(q, 1); len(got) != 1 || got[0] != 0 {
		t.Errorf("JoinCols(S) = %v, want [0]", got)
	}
}

// TestSelectionVerifiedAtProbe: selections on the stored table are evaluated
// during concatenation (matches "satisfy all query predicates that can be
// evaluated on the columns in t and S").
func TestSelectionVerifiedAtProbe(t *testing.T) {
	rT := schema.MustTable("R", schema.IntCol("k"), schema.IntCol("a"))
	sT := schema.MustTable("S", schema.IntCol("x"), schema.IntCol("y"))
	rData := source.MustTable(rT, []tuple.Row{row(1, 10)})
	sData := source.MustTable(sT, []tuple.Row{row(10, 100)})
	q := query.MustNew([]*schema.Table{rT, sT},
		[]pred.P{
			pred.EquiJoin(0, 1, 1, 0),
			pred.Selection(0, 0, pred.Ge, value.NewInt(5)), // R.k >= 5: r fails
		},
		[]query.AMDecl{
			{Table: 0, Kind: query.Scan, Data: rData, ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}},
			{Table: 1, Kind: query.Scan, Data: sData, ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}},
		})
	counter := &Counter{}
	sR := New(Config{Table: 0, Q: q, TS: counter})
	r := singleton(2, 0, row(1, 10)) // fails the selection
	process(t, sR, r)
	s := singleton(2, 1, row(10, 100))
	s.CompTS[1] = counter.Next()
	s.Built = tuple.Single(1)
	for _, e := range process(t, sR, s) {
		if e.T != s {
			t.Errorf("match violating the stored table's selection was emitted: %v", e.T)
		}
	}
}
