// shared.go implements catalog-owned shared SteM state: the paper's pitch
// that SteMs "encapsulate the state of a join so it can be shared" extends
// across queries, not just across the competing access methods of one query.
// A SharedState is the sealed, immutable result of building a SteM over a
// registered table's rows once — per-shard hash dictionaries plus optional
// spill segments for rows beyond a byte budget — that any number of
// concurrent queries attach to with probe-only SteM handles (Config.Shared)
// instead of rebuilding.
//
// Correctness of attaching hinges on a completeness/timestamp-window
// argument:
//
//   - The shared build is complete and sealed before any query attaches:
//     every stored row carries a build timestamp in [1, HighWater] issued by
//     the state's own counter, and no row is added, evicted, or mutated
//     afterwards. An attaching query therefore probes against the exact
//     window "TS ≤ HighWater", which is the whole state.
//   - An attached SteM is always complete (the shared build subsumes a full
//     scan EOT), so probes are never bounced and the query's
//     LastMatchTimeStamp bookkeeping never sees a shared timestamp.
//   - Concatenations from shared entries carry component timestamp 0, so the
//     shared counter's values never mix with the attaching query's own
//     counter (the two are incomparable). The query-local TimeStamp rule
//     still orders the query's private builds exactly as before.
//   - Shared dictionaries are read lock-free: they are immutable after Seal,
//     and HashDict.Candidates only reads. Per-query scratch (lookups, probe
//     caches, stats) stays in the attaching SteM handle.
//
// The result is multiset-identical to a private-state run of the same query
// (TestSharedStemsAgree): the shared build applies the same set-semantics
// duplicate elimination a private build does, and predicate verification at
// concatenation is unchanged.
package stem

import (
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/flow"
	"repro/internal/pred"
	"repro/internal/tuple"
)

// SharedConfig parameterizes a shared build.
type SharedConfig struct {
	// KeyCols are the columns the dictionaries index — the attaching
	// queries' join columns on this table, sorted ascending (stem.JoinCols
	// order). Must be non-empty.
	KeyCols []int
	// Shards splits the state into hash partitions on KeyCols[0], rounded up
	// to a power of two; 0 or 1 keeps a single store. Attached SteMs adopt
	// this shard count regardless of their own Config.Shards.
	Shards int
	// BudgetBytes bounds the resident footprint (RowFootprint accounting);
	// rows beyond it are written to sealed per-shard spill segments and
	// matched by synchronous segment reads at probe time. 0 keeps everything
	// resident.
	BudgetBytes int64
	// SpillDir is the directory spill segments are created under (a private
	// subdirectory per state); empty uses the system temp dir. Only used
	// when BudgetBytes > 0.
	SpillDir string
}

// sharedPart is one sealed spill partition of one shard.
type sharedPart struct {
	f         *os.File
	size      int64
	rows      int
	footprint int64
}

// SharedState is one sealed shared SteM build. Immutable after BuildShared
// returns; safe for concurrent probe use by any number of attached SteMs.
type SharedState struct {
	keyCols []int
	mask    uint64
	dicts   []*HashDict
	// spills[shard][partition]; nil when the build stayed resident.
	spills [][spillPartitions]sharedPart

	highWater     tuple.Timestamp
	rows          int
	spilledRows   int
	residentBytes int64
	spilledBytes  int64

	dir    string
	closed atomic.Bool
	// probeErr records the first spill-segment read failure (sealed files on
	// an open descriptor; exceptional). Attached runs surface it like a
	// governor I/O error.
	probeErr atomic.Pointer[error]
	closeMu  sync.Mutex
}

// BuildShared builds and seals shared SteM state over rows. The build
// applies set-semantics duplicate elimination, exactly like a private SteM
// build fed by a scan.
func BuildShared(cfg SharedConfig, rows []tuple.Row) (*SharedState, error) {
	if len(cfg.KeyCols) == 0 {
		return nil, fmt.Errorf("stem: shared build requires key columns")
	}
	nsh := 1
	for nsh < cfg.Shards {
		nsh <<= 1
	}
	ss := &SharedState{
		keyCols: slices.Clone(cfg.KeyCols),
		mask:    uint64(nsh - 1),
		dicts:   make([]*HashDict, nsh),
	}
	for i := range ss.dicts {
		ss.dicts[i] = NewHashDict(ss.keyCols)
	}
	// spillDup is the exact duplicate check for spilled rows, build-time
	// only (discarded at seal): resident duplicates are caught by the
	// dictionary, spilled ones by this map.
	var spillDup map[uint64][]tuple.Row
	var ts tuple.Timestamp
	for _, row := range rows {
		sd := int(row[ss.keyCols[0]].Hash64() & ss.mask)
		if ss.dicts[sd].Contains(row) {
			continue
		}
		if spillDup != nil {
			dup := false
			for _, r := range spillDup[row.Hash64()] {
				if r.Equal(row) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
		}
		ts++
		fp := RowFootprint(row)
		if cfg.BudgetBytes > 0 && ss.residentBytes+fp > cfg.BudgetBytes {
			if err := ss.appendSpill(sd, row, ts, cfg.SpillDir); err != nil {
				ss.Close()
				return nil, err
			}
			if spillDup == nil {
				spillDup = make(map[uint64][]tuple.Row)
			}
			spillDup[row.Hash64()] = append(spillDup[row.Hash64()], row)
			ss.spilledRows++
			ss.spilledBytes += fp
		} else {
			ss.dicts[sd].Insert(row, ts)
			ss.residentBytes += fp
		}
		ss.rows++
	}
	ss.highWater = ts
	return ss, nil
}

// appendSpill writes one row to its shard's partition segment, creating the
// state's private spill directory and the segment file on first use.
func (ss *SharedState) appendSpill(sd int, row tuple.Row, ts tuple.Timestamp, baseDir string) error {
	if ss.spills == nil {
		if baseDir == "" {
			baseDir = os.TempDir()
		}
		dir, err := os.MkdirTemp(baseDir, "stems-shared-*")
		if err != nil {
			return fmt.Errorf("stem: shared spill dir: %w", err)
		}
		ss.dir = dir
		ss.spills = make([][spillPartitions]sharedPart, len(ss.dicts))
	}
	p := spillPartOf(row[ss.keyCols[0]])
	pt := &ss.spills[sd][p]
	if pt.f == nil {
		f, err := os.OpenFile(filepath.Join(ss.dir, fmt.Sprintf("s%d-p%d.seg", sd, p)),
			os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
		if err != nil {
			return fmt.Errorf("stem: shared spill segment: %w", err)
		}
		pt.f = f
	}
	buf := appendEntry(nil, row, ts)
	n, err := pt.f.Write(buf)
	if err == nil && n != len(buf) {
		err = fmt.Errorf("stem: short shared spill write")
	}
	if err != nil {
		return err
	}
	pt.size += int64(n)
	pt.rows++
	pt.footprint += RowFootprint(row)
	return nil
}

// KeyCols returns the indexed columns (attachers must join on exactly these).
func (ss *SharedState) KeyCols() []int { return ss.keyCols }

// Rows returns the number of distinct rows stored (resident + spilled).
func (ss *SharedState) Rows() int { return ss.rows }

// HighWater returns the build high-water mark: every stored entry's
// timestamp is in [1, HighWater], the exact window an attached probe covers.
func (ss *SharedState) HighWater() tuple.Timestamp { return ss.highWater }

// ResidentBytes returns the resident footprint, for catalog accounting.
func (ss *SharedState) ResidentBytes() int64 { return ss.residentBytes }

// SpilledBytes returns the on-disk footprint.
func (ss *SharedState) SpilledBytes() int64 { return ss.spilledBytes }

// SpilledRows returns the number of rows in sealed spill segments.
func (ss *SharedState) SpilledRows() int { return ss.spilledRows }

// hasSpill reports whether any partition spilled.
func (ss *SharedState) hasSpill() bool { return ss.spills != nil }

// partRows returns the row count of one sealed partition (0 when resident).
func (ss *SharedState) partRows(sd, p int) int {
	if ss.spills == nil {
		return 0
	}
	return ss.spills[sd][p].rows
}

// readPart decodes one sealed partition segment. The read is concurrent-safe
// (ReadAt on a sealed file) and called with only the attaching query's shard
// lock held.
func (ss *SharedState) readPart(sd, p int) ([]Entry, error) {
	pt := &ss.spills[sd][p]
	if pt.f == nil || pt.rows == 0 {
		return nil, nil
	}
	data := make([]byte, pt.size)
	if _, err := pt.f.ReadAt(data, 0); err != nil {
		return nil, fmt.Errorf("stem: reading shared spill segment s%d-p%d: %w", sd, p, err)
	}
	return decodeEntries(data)
}

// noteProbeErr records the first probe-time spill read failure.
func (ss *SharedState) noteProbeErr(err error) {
	ss.probeErr.CompareAndSwap(nil, &err)
}

// Err returns the first probe-time spill I/O failure, if any — results may
// be missing spilled matches. Callers surface it like a governor error.
func (ss *SharedState) Err() error {
	if p := ss.probeErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Close releases the state's spill segments (files and directory). It must
// only be called when no query is attached — the server's refcounts gate
// this — and is idempotent.
func (ss *SharedState) Close() error {
	ss.closeMu.Lock()
	defer ss.closeMu.Unlock()
	if ss.closed.Swap(true) {
		return nil
	}
	var first error
	for sd := range ss.spills {
		for p := range ss.spills[sd] {
			if f := ss.spills[sd][p].f; f != nil {
				if err := f.Close(); err != nil && first == nil {
					first = err
				}
			}
		}
	}
	if ss.dir != "" {
		if err := os.RemoveAll(ss.dir); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// newAttached builds a probe-only SteM handle over sealed shared state. The
// handle owns per-query scratch, probe caches, and stats; the dictionaries
// (and spill segments) belong to the SharedState and are never written.
func newAttached(cfg Config) *SteM {
	ss := cfg.Shared
	if cfg.Dict != nil || cfg.Window > 0 || cfg.Gov != nil || cfg.BuildBounceBatch > 0 {
		panic("stem: attached SteMs take no custom dict, window, governor, or build batching")
	}
	s := &SteM{
		cfg:      cfg,
		name:     fmt.Sprintf("SteM(%s)", cfg.Q.Tables[cfg.Table].Name),
		pcol:     -1,
		spillCol: -1,
		shared:   ss,
	}
	s.joinCols = JoinCols(cfg.Q, cfg.Table)
	if !slices.Equal(s.joinCols, ss.keyCols) {
		panic(fmt.Sprintf("stem: attached SteM on %s joins on %v but shared state indexes %v",
			s.name, s.joinCols, ss.keyCols))
	}
	nsh := len(ss.dicts)
	if nsh > 1 {
		s.pcol = ss.keyCols[0]
	}
	if ss.hasSpill() {
		s.spillCol = ss.keyCols[0]
	}
	if nsh > 1 || ss.hasSpill() {
		pc := ss.keyCols[0]
		for _, p := range cfg.Q.Preds {
			if !p.IsEquiJoin() {
				continue
			}
			if p.Left.Table == cfg.Table && p.Left.Col == pc {
				s.pcolSources = append(s.pcolSources, colRef{p.Right.Table, p.Right.Col})
			}
			if p.Right.Table == cfg.Table && p.Right.Col == pc {
				s.pcolSources = append(s.pcolSources, colRef{p.Left.Table, p.Left.Col})
			}
		}
	}
	s.shardMask = uint64(nsh - 1)
	s.shards = make([]shard, nsh)
	s.all = make([]*shard, nsh)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.dict = ss.dicts[i]
		sh.scr.predCache = make(map[tuple.TableSet][]pred.P)
		sh.idx = i
		sh.self[0] = sh
		s.all[i] = sh
	}
	s.gscr.predCache = make(map[tuple.TableSet][]pred.P)
	s.govID = -1
	return s
}

// Shared returns the shared state this SteM is attached to (nil for a
// private SteM).
func (s *SteM) Shared() *SharedState { return s.shared }

// probeSharedSpill matches probe t against the sealed spill partitions of
// one shard of the shared state, appending concatenations to out. scr.lk is
// the lookup probeLocked already built; the equality prefilter plus full
// predicate verification mirror the live resident path. Shared entries
// concatenate with component timestamp 0, like resident shared matches.
func (s *SteM) probeSharedSpill(shardIdx int, t *tuple.Tuple, scr *probeScratch, stats *Stats, out []flow.Emission) []flow.Emission {
	ss := s.shared
	var parts uint64
	if v, ok := s.pcolBinding(t); ok {
		p := spillPartOf(v)
		if ss.partRows(shardIdx, p) > 0 {
			parts = 1 << uint(p)
		}
	} else {
		for p := 0; p < spillPartitions; p++ {
			if ss.partRows(shardIdx, p) > 0 {
				parts |= 1 << uint(p)
			}
		}
	}
	for p := 0; p < spillPartitions; p++ {
		if parts&(1<<uint(p)) == 0 {
			continue
		}
		entries, err := ss.readPart(shardIdx, p)
		if err != nil {
			ss.noteProbeErr(err)
			continue
		}
		for _, e := range entries {
			if !equiMatches(e.Row, &scr.lk) {
				continue
			}
			cat := t.ConcatRowInto(scr.catScratch, s.cfg.Table, e.Row, 0)
			if !s.verify(cat) {
				scr.catScratch = cat
				continue
			}
			scr.catScratch = nil
			stats.Matches++
			out = append(out, flow.Emit(cat))
		}
	}
	return out
}
