// Package query models select-project-join queries over sources with
// declared access methods, and implements the query "planning" of Section
// 2.2 — which, with eddies and SteMs, reduces to validation plus module
// instantiation:
//
//  1. check the query is valid given the bind-field constraints on the data
//     sources (the Nail-style subgoal-ordering feasibility check),
//  2. create an AM on each usable access method,
//  3. create an SM on each predicate,
//  4. create a SteM on each base table,
//  5. create seed tuples for scans.
//
// Steps 2–5 are performed by the executors; this package owns the query
// description and step 1.
package query

import (
	"fmt"

	"repro/internal/pred"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/tuple"
)

// AMKind distinguishes scan from index access methods.
type AMKind uint8

const (
	// Scan delivers the whole source in response to a seed tuple.
	Scan AMKind = iota
	// Index delivers matches for bound key fields.
	Index
)

// String renders the kind.
func (k AMKind) String() string {
	if k == Scan {
		return "scan"
	}
	return "index"
}

// AMDecl declares one access method available to the query. Several AMs may
// serve the same logical table — competitive access methods over mirrored
// sources (Section 3.2) — in which case each carries its own source data
// (possibly identical).
type AMDecl struct {
	// Table is the query position of the logical table this AM serves.
	Table int
	Kind  AMKind
	// Data is the backing rows for this access method.
	Data *source.Table
	// ScanSpec configures pacing for scan AMs.
	ScanSpec source.ScanSpec
	// IndexSpec configures key columns and latency for index AMs.
	IndexSpec source.IndexSpec
	// Name optionally labels the AM in traces; defaults to table+kind.
	Name string
}

// Q is a select-project-join query: a FROM list of logical tables, a
// predicate list (selections and joins), and the access methods available on
// each table.
type Q struct {
	Tables []*schema.Table
	Preds  []pred.P
	AMs    []AMDecl
}

// New assembles and validates a query. Predicate IDs are assigned by
// position.
func New(tables []*schema.Table, preds []pred.P, ams []AMDecl) (*Q, error) {
	q := &Q{Tables: tables, Preds: make([]pred.P, len(preds)), AMs: ams}
	for i, p := range preds {
		p.ID = i
		q.Preds[i] = p
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustNew is New but panics on error; intended for tests and examples.
func MustNew(tables []*schema.Table, preds []pred.P, ams []AMDecl) *Q {
	q, err := New(tables, preds, ams)
	if err != nil {
		panic(err)
	}
	return q
}

// NumTables returns the number of FROM-list tables.
func (q *Q) NumTables() int { return len(q.Tables) }

// AllTables returns the span of a complete result tuple.
func (q *Q) AllTables() tuple.TableSet { return tuple.All(len(q.Tables)) }

// AllPreds returns the done-bits of a fully verified tuple.
func (q *Q) AllPreds() tuple.PredSet { return tuple.AllPreds(len(q.Preds)) }

// AMsOn returns the indexes (into q.AMs) of the access methods on table t.
func (q *Q) AMsOn(t int) []int {
	var out []int
	for i, a := range q.AMs {
		if a.Table == t {
			out = append(out, i)
		}
	}
	return out
}

// HasScanAM reports whether table t has at least one scan access method.
func (q *Q) HasScanAM(t int) bool {
	for _, a := range q.AMs {
		if a.Table == t && a.Kind == Scan {
			return true
		}
	}
	return false
}

// HasIndexAM reports whether table t has at least one index access method.
func (q *Q) HasIndexAM(t int) bool {
	for _, a := range q.AMs {
		if a.Table == t && a.Kind == Index {
			return true
		}
	}
	return false
}

// MustBuildFirst reports whether the BuildFirst constraint is mandatory for
// table t: per Table 2, a singleton from t must build into SteM(t) first iff
// t has multiple AMs or an index AM (Section 3.5 relaxes it otherwise).
func (q *Q) MustBuildFirst(t int) bool {
	return len(q.AMsOn(t)) > 1 || q.HasIndexAM(t)
}

// JoinPredsConnecting returns the join predicates usable by a tuple with the
// given span to probe into table t.
func (q *Q) JoinPredsConnecting(span tuple.TableSet, t int) []pred.P {
	var out []pred.P
	for _, p := range q.Preds {
		if p.Connects(span, t) {
			out = append(out, p)
		}
	}
	return out
}

// Connects reports whether any join predicate connects a tuple spanning span
// to table t: JoinPredsConnecting-is-nonempty without building the list, for
// allocation-free routing checks.
func (q *Q) Connects(span tuple.TableSet, t int) bool {
	for _, p := range q.Preds {
		if p.Connects(span, t) {
			return true
		}
	}
	return false
}

// SelectionsOn returns the selection predicates over table t.
func (q *Q) SelectionsOn(t int) []pred.P {
	var out []pred.P
	for _, p := range q.Preds {
		if !p.IsJoin() && p.Left.Table == t {
			out = append(out, p)
		}
	}
	return out
}

// JoinEdges returns the set of undirected table pairs linked by a join
// predicate, as [2]int with the smaller position first.
func (q *Q) JoinEdges() [][2]int {
	seen := make(map[[2]int]bool)
	var out [][2]int
	for _, p := range q.Preds {
		if !p.IsJoin() {
			continue
		}
		a, b := p.Left.Table, p.Right.Table
		if a > b {
			a, b = b, a
		}
		e := [2]int{a, b}
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}

// IsCyclic reports whether the query join graph contains a cycle — the class
// of queries where the ProbeCompletion constraint is load-bearing and the
// eddy may adapt its choice of spanning tree (Section 3.4).
func (q *Q) IsCyclic() bool {
	n := len(q.Tables)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range q.JoinEdges() {
		ra, rb := find(e[0]), find(e[1])
		if ra == rb {
			return true
		}
		parent[ra] = rb
	}
	return false
}

// CanBindIndexAM reports whether a tuple with the given span can supply
// values for every key column of AM ai via equality join predicates.
func (q *Q) CanBindIndexAM(span tuple.TableSet, ai int) bool {
	a := q.AMs[ai]
	if a.Kind != Index {
		return false
	}
	for _, kc := range a.IndexSpec.KeyCols {
		if !q.keyColBound(span, a.Table, kc) {
			return false
		}
	}
	return true
}

func (q *Q) keyColBound(span tuple.TableSet, table, col int) bool {
	for _, p := range q.Preds {
		if !p.IsEquiJoin() {
			continue
		}
		if p.Left.Table == table && p.Left.Col == col && span.Has(p.Right.Table) {
			return true
		}
		if p.Right.Table == table && p.Right.Col == col && span.Has(p.Left.Table) {
			return true
		}
	}
	return false
}

// BindValues resolves the key-column binding of index AM ai from probe tuple
// t: for each key column it finds an equality join predicate linking it to a
// spanned column and extracts that value. ok is false if any key column is
// unbound.
func (q *Q) BindValues(t *tuple.Tuple, ai int) (vals []tuple.Row, ok bool) {
	a := q.AMs[ai]
	row := make(tuple.Row, 0, len(a.IndexSpec.KeyCols))
	for _, kc := range a.IndexSpec.KeyCols {
		found := false
		for _, p := range q.Preds {
			if !p.IsEquiJoin() {
				continue
			}
			if p.Left.Table == a.Table && p.Left.Col == kc && t.Span.Has(p.Right.Table) {
				row = append(row, t.Value(p.Right.Table, p.Right.Col))
				found = true
				break
			}
			if p.Right.Table == a.Table && p.Right.Col == kc && t.Span.Has(p.Left.Table) {
				row = append(row, t.Value(p.Left.Table, p.Left.Col))
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return []tuple.Row{row}, true
}

// Validate checks structural well-formedness and executability:
// column references in range, every table served by an AM, the join graph
// connected, and a feasible bind order existing under the sources'
// bind-field constraints (the Nail-style check of Section 2.2 step 1).
func (q *Q) Validate() error {
	n := len(q.Tables)
	if n == 0 {
		return fmt.Errorf("query: empty FROM list")
	}
	if n > tuple.MaxTables {
		return fmt.Errorf("query: %d tables exceeds the %d-table limit", n, tuple.MaxTables)
	}
	if len(q.Preds) > 64 {
		return fmt.Errorf("query: %d predicates exceeds the 64-predicate limit", len(q.Preds))
	}
	checkRef := func(r pred.ColRef) error {
		if r.Table < 0 || r.Table >= n {
			return fmt.Errorf("query: predicate references table %d of %d", r.Table, n)
		}
		if r.Col < 0 || r.Col >= q.Tables[r.Table].Arity() {
			return fmt.Errorf("query: predicate references %s column %d of %d",
				q.Tables[r.Table].Name, r.Col, q.Tables[r.Table].Arity())
		}
		return nil
	}
	for _, p := range q.Preds {
		if err := checkRef(p.Left); err != nil {
			return err
		}
		if p.IsJoin() {
			if err := checkRef(p.Right); err != nil {
				return err
			}
			if p.Left.Table == p.Right.Table {
				return fmt.Errorf("query: join predicate %s references one table; write it as a selection", p)
			}
		}
	}
	for i, a := range q.AMs {
		if a.Table < 0 || a.Table >= n {
			return fmt.Errorf("query: AM %d serves table %d of %d", i, a.Table, n)
		}
		if a.Data == nil {
			return fmt.Errorf("query: AM %d has no source data", i)
		}
		if a.Data.Schema.Arity() != q.Tables[a.Table].Arity() {
			return fmt.Errorf("query: AM %d source arity %d != table %s arity %d",
				i, a.Data.Schema.Arity(), q.Tables[a.Table].Name, q.Tables[a.Table].Arity())
		}
		if a.Kind == Index {
			if len(a.IndexSpec.KeyCols) == 0 {
				return fmt.Errorf("query: index AM %d has no key columns", i)
			}
			for _, kc := range a.IndexSpec.KeyCols {
				if kc < 0 || kc >= q.Tables[a.Table].Arity() {
					return fmt.Errorf("query: index AM %d key column %d out of range", i, kc)
				}
			}
		}
	}
	for t := 0; t < n; t++ {
		if len(q.AMsOn(t)) == 0 {
			return fmt.Errorf("query: table %s has no access method", q.Tables[t].Name)
		}
	}
	if n > 1 {
		if err := q.checkConnected(); err != nil {
			return err
		}
	}
	return q.checkBindOrder()
}

func (q *Q) checkConnected() error {
	n := len(q.Tables)
	adj := make([][]int, n)
	for _, e := range q.JoinEdges() {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	for t, s := range seen {
		if !s {
			return fmt.Errorf("query: table %s is not join-connected (cross products unsupported)", q.Tables[t].Name)
		}
	}
	return nil
}

// checkBindOrder verifies a feasible subgoal order exists: starting from
// tables with scan AMs, a table becomes reachable when some AM on it is a
// scan, or an index AM whose key columns are all equality-bound to reachable
// tables. All tables must become reachable.
func (q *Q) checkBindOrder() error {
	n := len(q.Tables)
	reach := tuple.TableSet(0)
	for t := 0; t < n; t++ {
		if q.HasScanAM(t) {
			reach = reach.With(t)
		}
	}
	for changed := true; changed; {
		changed = false
		for t := 0; t < n; t++ {
			if reach.Has(t) {
				continue
			}
			for _, ai := range q.AMsOn(t) {
				if q.AMs[ai].Kind == Index && q.CanBindIndexAM(reach, ai) {
					reach = reach.With(t)
					changed = true
					break
				}
			}
		}
	}
	for t := 0; t < n; t++ {
		if !reach.Has(t) {
			return fmt.Errorf("query: no feasible bind order — table %s is unreachable given the sources' bind-field constraints", q.Tables[t].Name)
		}
	}
	return q.checkIndexOnlyBindability()
}

// checkIndexOnlyBindability rejects queries where a table x without a scan
// AM is join-adjacent to a table y that cannot bind any index AM on x by
// itself. Such a query may have a feasible global order, but tuples arriving
// from y's side would be unroutable dead-ends: they could neither probe x's
// AMs (unbindable) nor be dropped safely (no scan to regenerate their
// results). The paper's setting — indexes on the join attributes — always
// satisfies this.
func (q *Q) checkIndexOnlyBindability() error {
	for x := 0; x < len(q.Tables); x++ {
		if q.HasScanAM(x) {
			continue
		}
		for y := 0; y < len(q.Tables); y++ {
			if y == x || len(q.JoinPredsConnecting(tuple.Single(y), x)) == 0 {
				continue
			}
			ok := false
			for _, ai := range q.AMsOn(x) {
				if q.AMs[ai].Kind == Index && q.CanBindIndexAM(tuple.Single(y), ai) {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("query: table %s has no scan AM and its index bind fields are not coverable from adjacent table %s",
					q.Tables[x].Name, q.Tables[y].Name)
			}
		}
	}
	return nil
}
