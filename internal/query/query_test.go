package query

import (
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/pred"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/tuple"
	"repro/internal/value"
)

func mkTable(name string, cols int, n int) *source.Table {
	sc := make([]schema.Column, cols)
	names := []string{"a", "b", "c", "d"}
	for i := range sc {
		sc[i] = schema.IntCol(names[i])
	}
	sch := schema.MustTable(name, sc...)
	rows := make([]tuple.Row, n)
	for i := range rows {
		r := make(tuple.Row, cols)
		for j := range r {
			r[j] = value.NewInt(int64(i + j))
		}
		rows[i] = r
	}
	return source.MustTable(sch, rows)
}

func scan(t int, d *source.Table) AMDecl {
	return AMDecl{Table: t, Kind: Scan, Data: d, ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}}
}

func index(t int, d *source.Table, cols ...int) AMDecl {
	return AMDecl{Table: t, Kind: Index, Data: d, IndexSpec: source.IndexSpec{KeyCols: cols, Latency: clock.Millisecond}}
}

func TestValidQuery(t *testing.T) {
	r, s := mkTable("R", 2, 3), mkTable("S", 2, 3)
	q, err := New([]*schema.Table{r.Schema, s.Schema},
		[]pred.P{pred.EquiJoin(0, 1, 1, 0)},
		[]AMDecl{scan(0, r), scan(1, s)})
	if err != nil {
		t.Fatal(err)
	}
	if q.NumTables() != 2 || q.AllTables() != tuple.All(2) || q.AllPreds() != tuple.AllPreds(1) {
		t.Error("basic accessors wrong")
	}
	if !q.HasScanAM(0) || q.HasIndexAM(0) {
		t.Error("AM classification wrong")
	}
}

func TestValidationErrors(t *testing.T) {
	r, s := mkTable("R", 2, 3), mkTable("S", 2, 3)
	tables := []*schema.Table{r.Schema, s.Schema}
	jn := pred.EquiJoin(0, 1, 1, 0)

	cases := []struct {
		name   string
		tables []*schema.Table
		preds  []pred.P
		ams    []AMDecl
		want   string
	}{
		{"empty FROM", nil, nil, nil, "empty FROM"},
		{"no AM", tables, []pred.P{jn}, []AMDecl{scan(0, r)}, "no access method"},
		{"bad col ref", tables, []pred.P{pred.EquiJoin(0, 9, 1, 0)}, []AMDecl{scan(0, r), scan(1, s)}, "column"},
		{"bad table ref", tables, []pred.P{pred.EquiJoin(0, 0, 5, 0)}, []AMDecl{scan(0, r), scan(1, s)}, "table"},
		{"self join pred", tables, []pred.P{pred.EquiJoin(0, 0, 0, 1), jn}, []AMDecl{scan(0, r), scan(1, s)}, "one table"},
		{"cross product", tables, nil, []AMDecl{scan(0, r), scan(1, s)}, "join-connected"},
		{"index no keycols", tables, []pred.P{jn}, []AMDecl{scan(0, r), {Table: 1, Kind: Index, Data: s}}, "key columns"},
		{"unreachable bind order", tables, []pred.P{jn},
			[]AMDecl{index(0, r, 1), index(1, s, 0)}, "bind order"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(c.tables, c.preds, c.ams)
			if err == nil {
				t.Fatalf("want error containing %q, got nil", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestIndexOnlyBindability(t *testing.T) {
	// Chain T0–T1–T2; T1 index-only with the key on the T2-side predicate:
	// a T0-side tuple could never bind it — must be rejected.
	a, b, c := mkTable("A", 2, 2), mkTable("B", 3, 2), mkTable("C", 2, 2)
	tables := []*schema.Table{a.Schema, b.Schema, c.Schema}
	preds := []pred.P{
		pred.EquiJoin(0, 1, 1, 0), // A.b = B.a
		pred.EquiJoin(1, 2, 2, 0), // B.c = C.a
	}
	_, err := New(tables, preds, []AMDecl{
		scan(0, a), index(1, b, 2), scan(2, c),
	})
	if err == nil || !strings.Contains(err.Error(), "bind fields") {
		t.Errorf("want bindability error, got %v", err)
	}
	// With the index on B.a (bound from A) AND B.c (bound from C)... a
	// single index on the A-side column alone also fails from C's side.
	_, err = New(tables, preds, []AMDecl{
		scan(0, a), index(1, b, 0), scan(2, c),
	})
	if err == nil {
		t.Error("index bindable from only one neighbour must be rejected")
	}
	// Two indexes covering both neighbours pass.
	if _, err = New(tables, preds, []AMDecl{
		scan(0, a), index(1, b, 0), index(1, b, 2), scan(2, c),
	}); err != nil {
		t.Errorf("dual-index table rejected: %v", err)
	}
}

func TestMustBuildFirst(t *testing.T) {
	r, s := mkTable("R", 2, 3), mkTable("S", 2, 3)
	q := MustNew([]*schema.Table{r.Schema, s.Schema},
		[]pred.P{pred.EquiJoin(0, 1, 1, 0)},
		[]AMDecl{scan(0, r), scan(1, s), index(1, s, 0)})
	if q.MustBuildFirst(0) {
		t.Error("single scan AM: BuildFirst not mandatory (Section 3.5)")
	}
	if !q.MustBuildFirst(1) {
		t.Error("index AM present: BuildFirst mandatory")
	}
}

func TestCyclicDetection(t *testing.T) {
	a, b, c := mkTable("A", 2, 2), mkTable("B", 2, 2), mkTable("C", 2, 2)
	tables := []*schema.Table{a.Schema, b.Schema, c.Schema}
	chain := []pred.P{pred.EquiJoin(0, 1, 1, 0), pred.EquiJoin(1, 1, 2, 0)}
	ams := []AMDecl{scan(0, a), scan(1, b), scan(2, c)}
	if MustNew(tables, chain, ams).IsCyclic() {
		t.Error("chain is not cyclic")
	}
	cyc := append(chain, pred.EquiJoin(2, 1, 0, 0))
	if !MustNew(tables, cyc, ams).IsCyclic() {
		t.Error("triangle is cyclic")
	}
}

func TestBindValues(t *testing.T) {
	r, s := mkTable("R", 2, 3), mkTable("S", 2, 3)
	q := MustNew([]*schema.Table{r.Schema, s.Schema},
		[]pred.P{pred.EquiJoin(0, 1, 1, 0)}, // R.b = S.a
		[]AMDecl{scan(0, r), index(1, s, 0)})
	probe := tuple.NewSingleton(2, 0, tuple.Row{value.NewInt(7), value.NewInt(42)})
	vals, ok := q.BindValues(probe, 1)
	if !ok || len(vals) != 1 || !vals[0][0].Equal(value.NewInt(42)) {
		t.Errorf("BindValues = %v, %v", vals, ok)
	}
	if !q.CanBindIndexAM(tuple.Single(0), 1) {
		t.Error("CanBindIndexAM should hold")
	}
	if q.CanBindIndexAM(tuple.Single(1), 1) {
		t.Error("cannot bind own table's index from itself")
	}
}

func TestJoinPredsConnectingAndSelections(t *testing.T) {
	r, s := mkTable("R", 2, 3), mkTable("S", 2, 3)
	q := MustNew([]*schema.Table{r.Schema, s.Schema},
		[]pred.P{
			pred.EquiJoin(0, 1, 1, 0),
			pred.Selection(0, 0, pred.Le, value.NewInt(1)),
		},
		[]AMDecl{scan(0, r), scan(1, s)})
	if len(q.JoinPredsConnecting(tuple.Single(0), 1)) != 1 {
		t.Error("connecting preds wrong")
	}
	if len(q.SelectionsOn(0)) != 1 || len(q.SelectionsOn(1)) != 0 {
		t.Error("SelectionsOn wrong")
	}
	if len(q.JoinEdges()) != 1 {
		t.Error("JoinEdges wrong")
	}
}

func TestTooManyTables(t *testing.T) {
	// 65 tables exceed the TableSet width.
	n := tuple.MaxTables + 1
	tables := make([]*schema.Table, n)
	var ams []AMDecl
	var preds []pred.P
	for i := 0; i < n; i++ {
		d := mkTable(string(rune('A'+i%26))+string(rune('0'+i/26)), 2, 1)
		tables[i] = d.Schema
		ams = append(ams, scan(i, d))
		if i > 0 {
			preds = append(preds, pred.EquiJoin(i-1, 0, i, 0))
		}
	}
	if _, err := New(tables, preds, ams); err == nil {
		t.Error("65-table query must be rejected")
	}
}
