// Package pred models query predicates: selections (column op constant) and
// join predicates (column op column across two tables). Selection modules,
// SteM probes and access-module lookups all evaluate predicates from this
// package, and each predicate's ID indexes the done-bit bitmap in TupleState.
package pred

import (
	"fmt"

	"repro/internal/tuple"
	"repro/internal/value"
)

// Op is a comparison operator.
type Op uint8

const (
	Eq Op = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String renders the operator in SQL syntax.
func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// eval applies the operator to a comparison result.
func (o Op) eval(cmp int) bool {
	switch o {
	case Eq:
		return cmp == 0
	case Ne:
		return cmp != 0
	case Lt:
		return cmp < 0
	case Le:
		return cmp <= 0
	case Gt:
		return cmp > 0
	case Ge:
		return cmp >= 0
	default:
		return false
	}
}

// Flip returns the operator with its operands swapped: a op b == b op.Flip() a.
func (o Op) Flip() Op {
	switch o {
	case Lt:
		return Gt
	case Le:
		return Ge
	case Gt:
		return Lt
	case Ge:
		return Le
	default:
		return o
	}
}

// ColRef names a column by query table position and column index.
type ColRef struct {
	Table int
	Col   int
}

// P is a single predicate. If Const is non-nil the predicate is a selection
// Left op Const; otherwise it is a join predicate Left op Right.
type P struct {
	// ID is the predicate's position in the query predicate list; it indexes
	// the done-bit bitmap.
	ID    int
	Left  ColRef
	Op    Op
	Right ColRef
	Const *value.V
}

// Selection builds a selection predicate.
func Selection(table, col int, op Op, c value.V) P {
	return P{Left: ColRef{Table: table, Col: col}, Op: op, Const: &c}
}

// Join builds a join predicate.
func Join(lt, lc int, op Op, rt, rc int) P {
	return P{Left: ColRef{Table: lt, Col: lc}, Op: op, Right: ColRef{Table: rt, Col: rc}}
}

// EquiJoin builds an equality join predicate.
func EquiJoin(lt, lc, rt, rc int) P { return Join(lt, lc, Eq, rt, rc) }

// IsJoin reports whether the predicate references two tables.
func (p P) IsJoin() bool { return p.Const == nil }

// IsEquiJoin reports whether the predicate is an equality join.
func (p P) IsEquiJoin() bool { return p.IsJoin() && p.Op == Eq }

// Tables returns the set of tables the predicate references.
func (p P) Tables() tuple.TableSet {
	s := tuple.Single(p.Left.Table)
	if p.IsJoin() {
		s = s.With(p.Right.Table)
	}
	return s
}

// Connects reports whether the join predicate links a table inside span with
// table t outside it, i.e. whether a tuple with the given span can use this
// predicate to probe into table t.
func (p P) Connects(span tuple.TableSet, t int) bool {
	if !p.IsJoin() {
		return false
	}
	l, r := p.Left.Table, p.Right.Table
	if l == t && span.Has(r) {
		return true
	}
	if r == t && span.Has(l) {
		return true
	}
	return false
}

// ApplicableTo reports whether the predicate can be evaluated on a tuple with
// the given span: all referenced tables must be spanned.
func (p P) ApplicableTo(span tuple.TableSet) bool {
	return span.Contains(p.Tables())
}

// Eval evaluates the predicate on a tuple spanning all referenced tables.
// EOT marker values never satisfy a predicate against a real value: EOT
// tuples participate in dataflow but must not join with data tuples.
func (p P) Eval(t *tuple.Tuple) bool {
	lv := t.Value(p.Left.Table, p.Left.Col)
	var rv value.V
	if p.IsJoin() {
		rv = t.Value(p.Right.Table, p.Right.Col)
	} else {
		rv = *p.Const
	}
	if lv.IsEOT() || rv.IsEOT() {
		return false
	}
	return p.Op.eval(lv.Compare(rv))
}

// EvalRows evaluates a join predicate given the two component rows directly
// (used by SteM probe paths that have not materialized a concatenation yet).
// lrow must belong to p.Left.Table and rrow to p.Right.Table.
func (p P) EvalRows(lrow, rrow tuple.Row) bool {
	lv := lrow[p.Left.Col]
	rv := rrow[p.Right.Col]
	if lv.IsEOT() || rv.IsEOT() {
		return false
	}
	return p.Op.eval(lv.Compare(rv))
}

// BindSide returns, for a join predicate connecting a tuple spanning span to
// table t, the column of t being constrained and the (table, col) on the
// spanned side supplying the binding value. The returned operator is
// oriented as "fromValue op t.column". ok is false if the predicate does not
// connect span to t.
func (p P) BindSide(span tuple.TableSet, t int) (tCol int, from ColRef, op Op, ok bool) {
	if !p.IsJoin() {
		return 0, ColRef{}, 0, false
	}
	if p.Left.Table == t && span.Has(p.Right.Table) {
		return p.Left.Col, p.Right, p.Op.Flip(), true
	}
	if p.Right.Table == t && span.Has(p.Left.Table) {
		return p.Right.Col, p.Left, p.Op, true
	}
	return 0, ColRef{}, 0, false
}

// String renders the predicate, e.g. "t0.c1 = t2.c0" or "t0.c1 <= 5".
func (p P) String() string {
	if p.IsJoin() {
		return fmt.Sprintf("t%d.c%d %s t%d.c%d", p.Left.Table, p.Left.Col, p.Op, p.Right.Table, p.Right.Col)
	}
	return fmt.Sprintf("t%d.c%d %s %s", p.Left.Table, p.Left.Col, p.Op, p.Const)
}
