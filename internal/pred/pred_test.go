package pred

import (
	"testing"
	"testing/quick"

	"repro/internal/tuple"
	"repro/internal/value"
)

func pair(a, b int64) *tuple.Tuple {
	t0 := tuple.NewSingleton(2, 0, tuple.Row{value.NewInt(a)})
	t1 := tuple.NewSingleton(2, 1, tuple.Row{value.NewInt(b)})
	return t0.Concat(t1)
}

func TestOpEvalTable(t *testing.T) {
	cases := []struct {
		op   Op
		l, r int64
		want bool
	}{
		{Eq, 1, 1, true}, {Eq, 1, 2, false},
		{Ne, 1, 2, true}, {Ne, 1, 1, false},
		{Lt, 1, 2, true}, {Lt, 2, 2, false},
		{Le, 2, 2, true}, {Le, 3, 2, false},
		{Gt, 3, 2, true}, {Gt, 2, 2, false},
		{Ge, 2, 2, true}, {Ge, 1, 2, false},
	}
	for _, c := range cases {
		p := Join(0, 0, c.op, 1, 0)
		if got := p.Eval(pair(c.l, c.r)); got != c.want {
			t.Errorf("%d %s %d = %v, want %v", c.l, c.op, c.r, got, c.want)
		}
	}
}

func TestOpFlipProperty(t *testing.T) {
	ops := []Op{Eq, Ne, Lt, Le, Gt, Ge}
	f := func(l, r int64, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		direct := Join(0, 0, op, 1, 0).Eval(pair(l, r))
		flipped := Join(1, 0, op.Flip(), 0, 0).Eval(pair(l, r))
		return direct == flipped
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSelectionEval(t *testing.T) {
	p := Selection(0, 0, Le, value.NewInt(5))
	lo := tuple.NewSingleton(1, 0, tuple.Row{value.NewInt(3)})
	hi := tuple.NewSingleton(1, 0, tuple.Row{value.NewInt(9)})
	if !p.Eval(lo) || p.Eval(hi) {
		t.Error("selection evaluation wrong")
	}
	if p.IsJoin() {
		t.Error("selection misclassified as join")
	}
}

func TestEOTValuesNeverMatch(t *testing.T) {
	p := EquiJoin(0, 0, 1, 0)
	t0 := tuple.NewSingleton(2, 0, tuple.Row{value.NewEOT()})
	t1 := tuple.NewSingleton(2, 1, tuple.Row{value.NewEOT()})
	if p.Eval(t0.Concat(t1)) {
		t.Error("EOT marker values must not satisfy predicates")
	}
}

func TestConnectsAndApplicable(t *testing.T) {
	p := EquiJoin(0, 1, 2, 0)
	if !p.Connects(tuple.Single(0), 2) {
		t.Error("should connect {0} to 2")
	}
	if !p.Connects(tuple.Single(2), 0) {
		t.Error("should connect {2} to 0")
	}
	if p.Connects(tuple.Single(1), 2) {
		t.Error("should not connect {1} to 2")
	}
	if p.ApplicableTo(tuple.Single(0)) {
		t.Error("join not applicable to one side")
	}
	if !p.ApplicableTo(tuple.Single(0).With(2)) {
		t.Error("join applicable to both sides")
	}
}

func TestBindSide(t *testing.T) {
	p := EquiJoin(0, 1, 2, 3) // t0.c1 = t2.c3
	col, from, op, ok := p.BindSide(tuple.Single(0), 2)
	if !ok || col != 3 || from.Table != 0 || from.Col != 1 || op != Eq {
		t.Errorf("BindSide = (%d,%v,%v,%v)", col, from, op, ok)
	}
	col, from, _, ok = p.BindSide(tuple.Single(2), 0)
	if !ok || col != 1 || from.Table != 2 || from.Col != 3 {
		t.Errorf("BindSide reversed = (%d,%v,%v)", col, from, ok)
	}
	_, _, _, ok = p.BindSide(tuple.Single(1), 2)
	if ok {
		t.Error("BindSide must fail for unconnected span")
	}
	// Orientation: the returned op reads "fromValue op t.column".
	lt := Join(0, 1, Lt, 2, 3) // t0.c1 < t2.c3
	_, _, op, ok = lt.BindSide(tuple.Single(0), 2)
	if !ok || op != Lt {
		t.Errorf("BindSide orientation: got %v %v, want < (from < t.col)", op, ok)
	}
	_, _, op, ok = lt.BindSide(tuple.Single(2), 0)
	if !ok || op != Gt {
		t.Errorf("BindSide reversed orientation: got %v %v, want > (from > t.col)", op, ok)
	}
}

func TestEvalRowsMatchesEval(t *testing.T) {
	f := func(l, r int64) bool {
		p := Join(0, 0, Le, 1, 0)
		viaRows := p.EvalRows(tuple.Row{value.NewInt(l)}, tuple.Row{value.NewInt(r)})
		viaTuple := p.Eval(pair(l, r))
		return viaRows == viaTuple
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	if s := EquiJoin(0, 1, 2, 0).String(); s != "t0.c1 = t2.c0" {
		t.Errorf("join String = %q", s)
	}
	if s := Selection(1, 0, Le, value.NewInt(5)).String(); s != "t1.c0 <= 5" {
		t.Errorf("selection String = %q", s)
	}
	for _, o := range []Op{Eq, Ne, Lt, Le, Gt, Ge} {
		if o.String() == "" {
			t.Error("op must render")
		}
	}
}

func TestTables(t *testing.T) {
	if EquiJoin(0, 0, 3, 0).Tables() != tuple.Single(0).With(3) {
		t.Error("join Tables wrong")
	}
	if Selection(2, 0, Eq, value.NewInt(1)).Tables() != tuple.Single(2) {
		t.Error("selection Tables wrong")
	}
}
