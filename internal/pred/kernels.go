// kernels.go implements vectorized predicate evaluation over the columnar
// batch representation: tight per-column compare loops that filter a
// selection vector in place instead of boxing one value.V pair per row.
//
// Every kernel reproduces P.Eval exactly — including the cross-kind ordering
// of value.Compare (Null < Int < Str < EOT) and the rule that EOT marker
// values never satisfy a predicate — so the columnar and row paths agree on
// every input, which the cross-representation property test asserts.
package pred

import (
	"repro/internal/flow"
	"repro/internal/value"
)

// FilterVec keeps the live rows (per sel, indexes into v) whose value
// satisfies "value op c", writing the surviving indexes into sel's prefix
// and returning it. It allocates only when a string constant meets a
// dictionary whose pass-table has to grow.
func FilterVec(v *flow.Vec, op Op, c value.V, sel []int32) []int32 {
	// Fast path: homogeneous int column against an int constant.
	if v.Kind == value.Int && c.K == value.Int && len(v.Null) == 0 && len(v.EOT) == 0 {
		return filterIntConst(v.Ints, op, c.I, sel)
	}
	// Fast path: dictionary-encoded strings against a string constant —
	// evaluate once per distinct dictionary entry, then filter codes.
	if v.Kind == value.Str && c.K == value.Str && len(v.Null) == 0 && len(v.EOT) == 0 {
		return filterStrConst(v, op, c.S, sel)
	}
	// General path: per-row boxed comparison, still allocation-free.
	out := sel[:0]
	for _, i := range sel {
		lv := v.ValueAt(int(i))
		if lv.IsEOT() || c.IsEOT() {
			continue
		}
		if op.eval(lv.Compare(c)) {
			out = append(out, i)
		}
	}
	return out
}

func filterIntConst(ints []int64, op Op, c int64, sel []int32) []int32 {
	out := sel[:0]
	switch op {
	case Eq:
		for _, i := range sel {
			if ints[i] == c {
				out = append(out, i)
			}
		}
	case Ne:
		for _, i := range sel {
			if ints[i] != c {
				out = append(out, i)
			}
		}
	case Lt:
		for _, i := range sel {
			if ints[i] < c {
				out = append(out, i)
			}
		}
	case Le:
		for _, i := range sel {
			if ints[i] <= c {
				out = append(out, i)
			}
		}
	case Gt:
		for _, i := range sel {
			if ints[i] > c {
				out = append(out, i)
			}
		}
	case Ge:
		for _, i := range sel {
			if ints[i] >= c {
				out = append(out, i)
			}
		}
	}
	return out
}

func filterStrConst(v *flow.Vec, op Op, c string, sel []int32) []int32 {
	// One comparison per distinct dictionary string, then a table lookup per
	// row — the dictionary-encoding payoff for selective string predicates.
	n := v.Dict.Len()
	pass := make([]bool, n)
	for code := 0; code < n; code++ {
		s := v.Dict.At(int32(code))
		cmp := 0
		switch {
		case s < c:
			cmp = -1
		case s > c:
			cmp = 1
		}
		pass[code] = op.eval(cmp)
	}
	out := sel[:0]
	for _, i := range sel {
		if pass[v.Codes[i]] {
			out = append(out, i)
		}
	}
	return out
}

// FilterColConst filters cb's selection vector in place with the selection
// predicate p (Left op Const), returning the number of surviving rows. The
// caller must have verified p.ApplicableTo(cb.Span).
func FilterColConst(cb *flow.ColBatch, p P) int {
	v := &cb.Tabs[p.Left.Table].Cols[p.Left.Col]
	sel := cb.EnsureSel()
	cb.Sel = FilterVec(v, p.Op, *p.Const, sel)
	return len(cb.Sel)
}

// EvalColRow evaluates join predicate p between physical row i of cb (which
// must span one side) and a stored row of the other side's table — the
// columnar analogue of EvalRows on SteM probe verification paths.
func EvalColRow(p P, cb *flow.ColBatch, i int, table int, row []value.V) bool {
	var lv, rv value.V
	if p.Left.Table == table {
		lv = row[p.Left.Col]
		rv = cb.Value(p.Right.Table, p.Right.Col, i)
	} else {
		lv = cb.Value(p.Left.Table, p.Left.Col, i)
		rv = row[p.Right.Col]
	}
	if lv.IsEOT() || rv.IsEOT() {
		return false
	}
	return p.Op.eval(lv.Compare(rv))
}

// EvalRowSel evaluates a selection predicate on a stored row of its table
// (SteM probe verification of a selection pushed past the build).
func EvalRowSel(p P, row []value.V) bool {
	lv := row[p.Left.Col]
	if lv.IsEOT() || p.Const.IsEOT() {
		return false
	}
	return p.Op.eval(lv.Compare(*p.Const))
}

// EvalCol evaluates predicate p on physical row i of cb, both sides read
// from column vectors (used when every referenced table is in cb.Span).
func EvalCol(p P, cb *flow.ColBatch, i int) bool {
	lv := cb.Value(p.Left.Table, p.Left.Col, i)
	var rv value.V
	if p.IsJoin() {
		rv = cb.Value(p.Right.Table, p.Right.Col, i)
	} else {
		rv = *p.Const
	}
	if lv.IsEOT() || rv.IsEOT() {
		return false
	}
	return p.Op.eval(lv.Compare(rv))
}
