package trace

import (
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/eddy"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/tuple"
	"repro/internal/value"
)

func row(vs ...int64) tuple.Row {
	r := make(tuple.Row, len(vs))
	for i, v := range vs {
		r[i] = value.NewInt(v)
	}
	return r
}

func TestCollectorGathersModuleStats(t *testing.T) {
	rT := schema.MustTable("R", schema.IntCol("k"), schema.IntCol("a"))
	sT := schema.MustTable("S", schema.IntCol("x"), schema.IntCol("y"))
	rData := source.MustTable(rT, []tuple.Row{row(1, 10), row(2, 20)})
	sData := source.MustTable(sT, []tuple.Row{row(10, 100), row(20, 200)})
	q := query.MustNew([]*schema.Table{rT, sT},
		[]pred.P{pred.EquiJoin(0, 1, 1, 0)},
		[]query.AMDecl{
			{Table: 0, Kind: query.Scan, Data: rData, ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}},
			{Table: 1, Kind: query.Scan, Data: sData, ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}},
		})
	r, err := eddy.NewRouter(q, eddy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim := eddy.NewSim(r)
	var outs int
	sim.OnOutput = func(*tuple.Tuple, clock.Time) { outs++ } // chained hook
	c := NewCollector(r.Modules())
	c.Attach(sim)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if outs != 2 {
		t.Errorf("chained OnOutput saw %d outputs, want 2", outs)
	}
	total := uint64(0)
	for _, m := range c.Modules() {
		total += m.Visits
	}
	if total == 0 {
		t.Fatal("collector saw no visits")
	}
	// SteM(R) must have been visited: 2 builds + probes by S tuples.
	var stemR ModStats
	for _, m := range c.Modules() {
		if m.Name == "SteM(R)" {
			stemR = m
		}
	}
	if stemR.Visits < 4 {
		t.Errorf("SteM(R) visits = %d, want >= 4 (2 builds + 2 probes)", stemR.Visits)
	}
	// Emissions by span width: singletons and full results.
	if len(c.SpanHistogram) < 3 || c.SpanHistogram[2] != 2 {
		t.Errorf("span histogram = %v, want 2 two-table emissions", c.SpanHistogram)
	}
	rep := c.Report()
	for _, want := range []string{"SteM(R)", "AM(R/scan)", "2 results", "span width"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
