package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/eddy"
	"repro/internal/policy"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/tuple"
	"repro/internal/value"
)

func row(vs ...int64) tuple.Row {
	r := make(tuple.Row, len(vs))
	for i, v := range vs {
		r[i] = value.NewInt(v)
	}
	return r
}

func TestCollectorGathersModuleStats(t *testing.T) {
	rT := schema.MustTable("R", schema.IntCol("k"), schema.IntCol("a"))
	sT := schema.MustTable("S", schema.IntCol("x"), schema.IntCol("y"))
	rData := source.MustTable(rT, []tuple.Row{row(1, 10), row(2, 20)})
	sData := source.MustTable(sT, []tuple.Row{row(10, 100), row(20, 200)})
	q := query.MustNew([]*schema.Table{rT, sT},
		[]pred.P{pred.EquiJoin(0, 1, 1, 0)},
		[]query.AMDecl{
			{Table: 0, Kind: query.Scan, Data: rData, ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}},
			{Table: 1, Kind: query.Scan, Data: sData, ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}},
		})
	r, err := eddy.NewRouter(q, eddy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim := eddy.NewSim(r)
	var outs int
	sim.OnOutput = func(*tuple.Tuple, clock.Time) { outs++ } // chained hook
	c := NewCollector(r.Modules())
	c.Attach(sim)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if outs != 2 {
		t.Errorf("chained OnOutput saw %d outputs, want 2", outs)
	}
	total := uint64(0)
	for _, m := range c.Modules() {
		total += m.Visits
	}
	if total == 0 {
		t.Fatal("collector saw no visits")
	}
	// SteM(R) must have been visited: 2 builds + probes by S tuples.
	var stemR ModStats
	for _, m := range c.Modules() {
		if m.Name == "SteM(R)" {
			stemR = m
		}
	}
	if stemR.Visits < 4 {
		t.Errorf("SteM(R) visits = %d, want >= 4 (2 builds + 2 probes)", stemR.Visits)
	}
	// Emissions by span width: singletons and full results.
	if len(c.SpanHistogram) < 3 || c.SpanHistogram[2] != 2 {
		t.Errorf("span histogram = %v, want 2 two-table emissions", c.SpanHistogram)
	}
	rep := c.Report()
	for _, want := range []string{"SteM(R)", "AM(R/scan)", "2 results", "span width"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

// twoWayQuery builds the R⋈S query used by the concurrent-engine tests.
func twoWayQuery(t *testing.T) *query.Q {
	t.Helper()
	rT := schema.MustTable("R", schema.IntCol("k"), schema.IntCol("a"))
	sT := schema.MustTable("S", schema.IntCol("x"), schema.IntCol("y"))
	rData := source.MustTable(rT, []tuple.Row{row(1, 10), row(2, 20)})
	sData := source.MustTable(sT, []tuple.Row{row(10, 100), row(20, 200)})
	return query.MustNew([]*schema.Table{rT, sT},
		[]pred.P{pred.EquiJoin(0, 1, 1, 0)},
		[]query.AMDecl{
			{Table: 0, Kind: query.Scan, Data: rData, ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}},
			{Table: 1, Kind: query.Scan, Data: sData, ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}},
		})
}

// TestAttachConcurrentGathersModuleStats runs the concurrent engine with a
// collector attached and asserts the feedback-driven aggregates line up
// with the run: every module visited, outputs counted, hooks chained.
func TestAttachConcurrentGathersModuleStats(t *testing.T) {
	r, err := eddy.NewRouter(twoWayQuery(t), eddy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := eddy.NewConcurrent(r, nil)
	var streamed int
	eng.OnOutput = func(*tuple.Tuple, clock.Time) { streamed++ } // set first, must chain
	c := NewCollector(r.Modules())
	c.AttachConcurrent(eng)
	outs, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 || streamed != 2 {
		t.Fatalf("outputs=%d chained=%d, want 2 and 2", len(outs), streamed)
	}
	if c.Results() != 2 {
		t.Errorf("collector results = %d, want 2", c.Results())
	}
	for _, m := range c.Modules() {
		if m.Visits == 0 {
			t.Errorf("module %s never visited", m.Name)
		}
	}
	rec := c.Record(r.Policy())
	if rec.Results != 2 || len(rec.Modules) != len(c.Modules()) {
		t.Errorf("record results=%d modules=%d", rec.Results, len(rec.Modules))
	}
	// Modules are ordered busiest-first.
	for i := 1; i < len(rec.Modules); i++ {
		if rec.Modules[i].Visits > rec.Modules[i-1].Visits {
			t.Errorf("record modules not ordered by visits: %v", rec.Modules)
		}
	}
}

// TestObserveFeedback pins the normalization rules: batched feedback counts
// its Visits, zero/negative Visits count as one, pure wake-ups (Emitted < 0)
// and out-of-range modules are dropped, negative Outputs never subtract.
func TestObserveFeedback(t *testing.T) {
	c := &Collector{mods: []ModStats{{Name: "a", FirstBusy: -1}, {Name: "b", FirstBusy: -1}}}
	c.ObserveFeedback(policy.Feedback{Module: 0, Visits: 3, Outputs: 2, Emitted: 2, Cost: clock.Millisecond, Now: clock.Time(5 * clock.Millisecond)})
	c.ObserveFeedback(policy.Feedback{Module: 0, Visits: 0, Outputs: -1, Emitted: 0, Now: clock.Time(9 * clock.Millisecond)})
	c.ObserveFeedback(policy.Feedback{Module: 0, Emitted: -1, Visits: 100}) // wake-up: dropped
	c.ObserveFeedback(policy.Feedback{Module: 7, Emitted: 1, Visits: 100})  // out of range
	c.ObserveFeedback(policy.Feedback{Module: -1, Emitted: 1, Visits: 100}) // out of range
	m := c.Modules()[0]
	if m.Visits != 4 {
		t.Errorf("visits = %d, want 4 (3 batched + 1 normalized)", m.Visits)
	}
	if m.Outputs != 2 {
		t.Errorf("outputs = %d, want 2 (negative outputs ignored)", m.Outputs)
	}
	if m.TotalCost != clock.Millisecond {
		t.Errorf("cost = %v, want 1ms", m.TotalCost)
	}
	if m.FirstBusy != clock.Time(5*clock.Millisecond) || m.LastBusy != clock.Time(9*clock.Millisecond) {
		t.Errorf("busy window = [%v, %v], want [5ms, 9ms]", m.FirstBusy, m.LastBusy)
	}
	if got := c.Modules()[1]; got.Visits != 0 {
		t.Errorf("module b visits = %d, want 0", got.Visits)
	}
}

// TestCollectorReset asserts Reset restores the just-constructed state —
// the invariant pooled plan-cache shells rely on.
func TestCollectorReset(t *testing.T) {
	r, err := eddy.NewRouter(twoWayQuery(t), eddy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim := eddy.NewSim(r)
	c := NewCollector(r.Modules())
	c.Attach(sim)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Results() == 0 {
		t.Fatal("run collected nothing; Reset test is vacuous")
	}
	before, _ := json.Marshal(NewCollector(r.Modules()).Record(nil))
	c.Reset()
	after, _ := json.Marshal(c.Record(nil))
	if string(before) != string(after) {
		t.Errorf("Reset did not restore pristine state:\nfresh: %s\nreset: %s", before, after)
	}
}
