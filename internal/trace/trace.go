// Package trace collects per-module execution statistics from a run and
// renders an EXPLAIN-ANALYZE-style report. Because the eddy architecture
// has no plan, the interesting post-hoc artifact is not a tree but the
// observed routing: how many tuples visited each module, what each visit
// produced, and where the time went — exactly the signals the routing
// policy itself adapts on.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/clock"
	"repro/internal/eddy"
	"repro/internal/flow"
	"repro/internal/policy"
	"repro/internal/tuple"
)

// ModStats aggregates one module's activity.
type ModStats struct {
	Name      string
	Visits    uint64
	Outputs   uint64 // productive emissions (excluding input bounce-backs)
	TotalCost clock.Duration
	FirstBusy clock.Time
	LastBusy  clock.Time
}

// Collector accumulates a run's statistics. Attach it to a simulation with
// Attach before Run; it is not safe for concurrent use (the simulator is
// single-threaded).
type Collector struct {
	mods    []ModStats
	outputs uint64
	lastOut clock.Time
	// SpanHistogram counts emissions by span cardinality: index 1 holds
	// singletons, 2 holds two-table partials, and so on. Partial results
	// are the online-metric currency of the paper's FFF setting.
	SpanHistogram []uint64
}

// NewCollector sizes a collector for the given module list.
func NewCollector(mods []flow.Module) *Collector {
	c := &Collector{mods: make([]ModStats, len(mods))}
	for i, m := range mods {
		c.mods[i].Name = m.Name()
		c.mods[i].FirstBusy = -1
	}
	return c
}

// Attach hooks the collector into a simulation run. Existing hooks are
// chained.
func (c *Collector) Attach(sim *eddy.Sim) {
	prevProcess := sim.OnProcess
	sim.OnProcess = func(mod int, t *tuple.Tuple, at clock.Time, outputs int, cost clock.Duration) {
		m := &c.mods[mod]
		m.Visits++
		m.Outputs += uint64(outputs)
		m.TotalCost += cost
		if m.FirstBusy < 0 {
			m.FirstBusy = at
		}
		m.LastBusy = at
		if prevProcess != nil {
			prevProcess(mod, t, at, outputs, cost)
		}
	}
	prevEmit := sim.OnEmit
	sim.OnEmit = func(t *tuple.Tuple, at clock.Time) {
		if t.EOT == nil && !t.Seed {
			n := t.Span.Count()
			for len(c.SpanHistogram) <= n {
				c.SpanHistogram = append(c.SpanHistogram, 0)
			}
			c.SpanHistogram[n]++
		}
		if prevEmit != nil {
			prevEmit(t, at)
		}
	}
	prevOut := sim.OnOutput
	sim.OnOutput = func(t *tuple.Tuple, at clock.Time) {
		c.outputs++
		c.lastOut = at
		if prevOut != nil {
			prevOut(t, at)
		}
	}
}

// AttachConcurrent hooks the collector into a concurrent-engine run: the
// engine reports every service completion the policy observes (row and
// columnar batches both funnel through the single eddy goroutine, so no
// locking is needed) and every result emission. Existing hooks are chained;
// attach after installing any streaming OnOutput so both run. The span
// histogram is not populated on this path — the concurrent engine does not
// expose per-emission hooks.
func (c *Collector) AttachConcurrent(eng *eddy.Concurrent) {
	prevService := eng.OnService
	eng.OnService = func(fb policy.Feedback) {
		c.ObserveFeedback(fb)
		if prevService != nil {
			prevService(fb)
		}
	}
	prevOut := eng.OnOutput
	eng.OnOutput = func(t *tuple.Tuple, at clock.Time) {
		c.outputs++
		c.lastOut = at
		if prevOut != nil {
			prevOut(t, at)
		}
	}
}

// ObserveFeedback folds one service-completion feedback event into the
// per-module aggregates. Batched feedback carries totals over Visits module
// visits; they are accumulated as-is (totals are what the report shows).
func (c *Collector) ObserveFeedback(fb policy.Feedback) {
	if fb.Module < 0 || fb.Module >= len(c.mods) || fb.Emitted < 0 {
		return
	}
	m := &c.mods[fb.Module]
	n := fb.Visits
	if n < 1 {
		n = 1
	}
	m.Visits += uint64(n)
	if fb.Outputs > 0 {
		m.Outputs += uint64(fb.Outputs)
	}
	m.TotalCost += fb.Cost
	if m.FirstBusy < 0 {
		m.FirstBusy = fb.Now
	}
	m.LastBusy = fb.Now
}

// Reset clears all accumulated statistics, keeping the module names, so a
// pooled execution shell can reuse one collector without bleeding stats
// across runs.
func (c *Collector) Reset() {
	for i := range c.mods {
		name := c.mods[i].Name
		c.mods[i] = ModStats{Name: name, FirstBusy: -1}
	}
	c.outputs = 0
	c.lastOut = 0
	c.SpanHistogram = c.SpanHistogram[:0]
}

// Modules returns the per-module aggregates.
func (c *Collector) Modules() []ModStats { return c.mods }

// Results returns the number of result emissions observed.
func (c *Collector) Results() uint64 { return c.outputs }

// ModuleRecord is one module's aggregates in wire form.
type ModuleRecord struct {
	Name    string `json:"name"`
	Visits  uint64 `json:"visits"`
	Outputs uint64 `json:"outputs"`
	// Selectivity is outputs per visit — the productive-output rate the
	// routing policy steers on.
	Selectivity float64 `json:"selectivity"`
	// BusySeconds is total service time charged to the module.
	BusySeconds float64 `json:"busy_seconds"`
	FirstBusy   float64 `json:"first_busy_s"`
	LastBusy    float64 `json:"last_busy_s"`
}

// Record is the JSON-serializable form of a run's trace: per-module stats
// plus (when the policy supports introspection) the learned routing state.
type Record struct {
	Results     uint64           `json:"results"`
	LastOutputS float64          `json:"last_output_s"`
	Modules     []ModuleRecord   `json:"modules"`
	SpanHist    []uint64         `json:"span_histogram,omitempty"`
	Policy      []PolicyEstimate `json:"policy,omitempty"`
}

// PolicyEstimate names a policy.ModuleState with the module's display name.
type PolicyEstimate struct {
	Module      string  `json:"module"`
	Sig         uint64  `json:"sig"`
	Visits      uint64  `json:"visits"`
	OutPerVisit float64 `json:"out_per_visit"`
	CostSeconds float64 `json:"cost_seconds"`
}

// Record snapshots the collector (and, if pol implements
// policy.Introspector, the policy's learned estimates) into wire form.
// Modules are ordered by visit count, busiest first, matching Report.
func (c *Collector) Record(pol policy.Policy) Record {
	rec := Record{
		Results:     c.outputs,
		LastOutputS: c.lastOut.Seconds(),
		Modules:     make([]ModuleRecord, 0, len(c.mods)),
	}
	order := make([]int, len(c.mods))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return c.mods[order[a]].Visits > c.mods[order[b]].Visits })
	for _, i := range order {
		m := c.mods[i]
		sel := 0.0
		if m.Visits > 0 {
			sel = float64(m.Outputs) / float64(m.Visits)
		}
		first := 0.0
		if m.FirstBusy >= 0 {
			first = m.FirstBusy.Seconds()
		}
		rec.Modules = append(rec.Modules, ModuleRecord{
			Name:        m.Name,
			Visits:      m.Visits,
			Outputs:     m.Outputs,
			Selectivity: sel,
			BusySeconds: m.TotalCost.Seconds(),
			FirstBusy:   first,
			LastBusy:    m.LastBusy.Seconds(),
		})
	}
	if len(c.SpanHistogram) > 0 {
		rec.SpanHist = append([]uint64(nil), c.SpanHistogram...)
	}
	if intro, ok := pol.(policy.Introspector); ok {
		for _, ms := range intro.Snapshot() {
			name := fmt.Sprintf("#%d", ms.Module)
			if ms.Module >= 0 && ms.Module < len(c.mods) {
				name = c.mods[ms.Module].Name
			}
			rec.Policy = append(rec.Policy, PolicyEstimate{
				Module:      name,
				Sig:         ms.Sig,
				Visits:      ms.Visits,
				OutPerVisit: ms.OutPerVisit,
				CostSeconds: ms.CostSeconds,
			})
		}
	}
	return rec
}

// Report renders the collected statistics.
func (c *Collector) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "adaptive execution report — %d results, last at %.6fs\n", c.outputs, c.lastOut.Seconds())
	fmt.Fprintf(&b, "%-24s %10s %10s %12s %10s %10s\n", "module", "visits", "outputs", "busy(s)", "first(s)", "last(s)")

	order := make([]int, len(c.mods))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return c.mods[order[a]].Visits > c.mods[order[b]].Visits })
	for _, i := range order {
		m := c.mods[i]
		first := 0.0
		if m.FirstBusy >= 0 {
			first = m.FirstBusy.Seconds()
		}
		fmt.Fprintf(&b, "%-24s %10d %10d %12.6f %10.3f %10.3f\n",
			m.Name, m.Visits, m.Outputs, m.TotalCost.Seconds(), first, m.LastBusy.Seconds())
	}
	if len(c.SpanHistogram) > 0 {
		fmt.Fprintf(&b, "emissions by span width:")
		for n, cnt := range c.SpanHistogram {
			if n == 0 || cnt == 0 {
				continue
			}
			fmt.Fprintf(&b, " %d-table=%d", n, cnt)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
