// Package trace collects per-module execution statistics from a run and
// renders an EXPLAIN-ANALYZE-style report. Because the eddy architecture
// has no plan, the interesting post-hoc artifact is not a tree but the
// observed routing: how many tuples visited each module, what each visit
// produced, and where the time went — exactly the signals the routing
// policy itself adapts on.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/clock"
	"repro/internal/eddy"
	"repro/internal/flow"
	"repro/internal/tuple"
)

// ModStats aggregates one module's activity.
type ModStats struct {
	Name      string
	Visits    uint64
	Outputs   uint64 // productive emissions (excluding input bounce-backs)
	TotalCost clock.Duration
	FirstBusy clock.Time
	LastBusy  clock.Time
}

// Collector accumulates a run's statistics. Attach it to a simulation with
// Attach before Run; it is not safe for concurrent use (the simulator is
// single-threaded).
type Collector struct {
	mods    []ModStats
	outputs uint64
	lastOut clock.Time
	// SpanHistogram counts emissions by span cardinality: index 1 holds
	// singletons, 2 holds two-table partials, and so on. Partial results
	// are the online-metric currency of the paper's FFF setting.
	SpanHistogram []uint64
}

// NewCollector sizes a collector for the given module list.
func NewCollector(mods []flow.Module) *Collector {
	c := &Collector{mods: make([]ModStats, len(mods))}
	for i, m := range mods {
		c.mods[i].Name = m.Name()
		c.mods[i].FirstBusy = -1
	}
	return c
}

// Attach hooks the collector into a simulation run. Existing hooks are
// chained.
func (c *Collector) Attach(sim *eddy.Sim) {
	prevProcess := sim.OnProcess
	sim.OnProcess = func(mod int, t *tuple.Tuple, at clock.Time, outputs int, cost clock.Duration) {
		m := &c.mods[mod]
		m.Visits++
		m.Outputs += uint64(outputs)
		m.TotalCost += cost
		if m.FirstBusy < 0 {
			m.FirstBusy = at
		}
		m.LastBusy = at
		if prevProcess != nil {
			prevProcess(mod, t, at, outputs, cost)
		}
	}
	prevEmit := sim.OnEmit
	sim.OnEmit = func(t *tuple.Tuple, at clock.Time) {
		if t.EOT == nil && !t.Seed {
			n := t.Span.Count()
			for len(c.SpanHistogram) <= n {
				c.SpanHistogram = append(c.SpanHistogram, 0)
			}
			c.SpanHistogram[n]++
		}
		if prevEmit != nil {
			prevEmit(t, at)
		}
	}
	prevOut := sim.OnOutput
	sim.OnOutput = func(t *tuple.Tuple, at clock.Time) {
		c.outputs++
		c.lastOut = at
		if prevOut != nil {
			prevOut(t, at)
		}
	}
}

// Modules returns the per-module aggregates.
func (c *Collector) Modules() []ModStats { return c.mods }

// Report renders the collected statistics.
func (c *Collector) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "adaptive execution report — %d results, last at %.6fs\n", c.outputs, c.lastOut.Seconds())
	fmt.Fprintf(&b, "%-24s %10s %10s %12s %10s %10s\n", "module", "visits", "outputs", "busy(s)", "first(s)", "last(s)")

	order := make([]int, len(c.mods))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return c.mods[order[a]].Visits > c.mods[order[b]].Visits })
	for _, i := range order {
		m := c.mods[i]
		first := 0.0
		if m.FirstBusy >= 0 {
			first = m.FirstBusy.Seconds()
		}
		fmt.Fprintf(&b, "%-24s %10d %10d %12.6f %10.3f %10.3f\n",
			m.Name, m.Visits, m.Outputs, m.TotalCost.Seconds(), first, m.LastBusy.Seconds())
	}
	if len(c.SpanHistogram) > 0 {
		fmt.Fprintf(&b, "emissions by span width:")
		for n, cnt := range c.SpanHistogram {
			if n == 0 || cnt == 0 {
				continue
			}
			fmt.Fprintf(&b, " %d-table=%d", n, cnt)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
