package schema

import (
	"testing"

	"repro/internal/value"
)

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable("R", IntCol("a"), IntCol("a")); err == nil {
		t.Error("duplicate column must be rejected")
	}
	if _, err := NewTable("R", Column{}); err == nil {
		t.Error("unnamed column must be rejected")
	}
	tb, err := NewTable("R", IntCol("a"), StrCol("b"))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Arity() != 2 {
		t.Errorf("Arity = %d", tb.Arity())
	}
	if tb.ColIndex("b") != 1 || tb.ColIndex("z") != -1 {
		t.Error("ColIndex wrong")
	}
	if tb.Cols[0].Kind != value.Int || tb.Cols[1].Kind != value.Str {
		t.Error("column kinds wrong")
	}
}

func TestMustTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustTable must panic on invalid input")
		}
	}()
	MustTable("R", IntCol("a"), IntCol("a"))
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	r := MustTable("R", IntCol("a"))
	if err := c.Add(r); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(MustTable("R", IntCol("b"))); err == nil {
		t.Error("duplicate table name must be rejected")
	}
	if c.Table("R") != r {
		t.Error("Table lookup failed")
	}
	if c.Table("S") != nil {
		t.Error("missing table must be nil")
	}
	if len(c.Tables()) != 1 {
		t.Error("Tables length wrong")
	}
}
