// Package schema describes base tables: their names and typed columns.
//
// A query references tables by position in its FROM list (Definition 1 in the
// paper speaks of base-table components T1..Tn); the schema package maps those
// positions to concrete table definitions held in a Catalog.
package schema

import (
	"fmt"

	"repro/internal/value"
)

// Column is a named, typed column of a base table.
type Column struct {
	Name string
	Kind value.Kind
}

// Table describes a base table.
type Table struct {
	Name string
	Cols []Column
}

// NewTable builds a table definition. Column names must be unique.
func NewTable(name string, cols ...Column) (*Table, error) {
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("schema: table %s has an unnamed column", name)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("schema: table %s has duplicate column %q", name, c.Name)
		}
		seen[c.Name] = true
	}
	return &Table{Name: name, Cols: cols}, nil
}

// MustTable is NewTable but panics on error; intended for tests and examples.
func MustTable(name string, cols ...Column) *Table {
	t, err := NewTable(name, cols...)
	if err != nil {
		panic(err)
	}
	return t
}

// IntCol is shorthand for an integer column.
func IntCol(name string) Column { return Column{Name: name, Kind: value.Int} }

// StrCol is shorthand for a string column.
func StrCol(name string) Column { return Column{Name: name, Kind: value.Str} }

// ColIndex returns the position of the named column, or -1 if absent.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Arity returns the number of columns.
func (t *Table) Arity() int { return len(t.Cols) }

// Catalog is a named collection of table definitions.
type Catalog struct {
	tables []*Table
	byName map[string]int
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{byName: make(map[string]int)}
}

// Add registers a table definition. Table names must be unique.
func (c *Catalog) Add(t *Table) error {
	if _, dup := c.byName[t.Name]; dup {
		return fmt.Errorf("schema: duplicate table %q", t.Name)
	}
	c.byName[t.Name] = len(c.tables)
	c.tables = append(c.tables, t)
	return nil
}

// Table returns the named table definition, or nil if absent.
func (c *Catalog) Table(name string) *Table {
	i, ok := c.byName[name]
	if !ok {
		return nil
	}
	return c.tables[i]
}

// Tables returns all table definitions in registration order.
func (c *Catalog) Tables() []*Table { return c.tables }
