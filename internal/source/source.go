// Package source models data sources: in-memory base tables dressed up as
// the volatile, autonomously-maintained remote sources of Telegraph FFF.
//
// The paper's experiments drive synthetic sources whose "index lookups are
// implemented as sleeps of identical duration" (Table 3) and whose scans can
// stall mid-query (Section 3.4). A Source pairs a table's rows with the
// timing behaviour of each access path: scans deliver rows at a configurable
// pace with optional stall windows; index lookups cost a configurable
// latency with bounded concurrency.
package source

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/value"
)

// Table is a concrete table: schema plus rows.
type Table struct {
	Schema *schema.Table
	Rows   []tuple.Row
}

// NewTable pairs a schema with rows, validating arity and column kinds.
func NewTable(s *schema.Table, rows []tuple.Row) (*Table, error) {
	for i, r := range rows {
		if len(r) != s.Arity() {
			return nil, fmt.Errorf("source: %s row %d has %d fields, want %d", s.Name, i, len(r), s.Arity())
		}
		for j, v := range r {
			if v.K != s.Cols[j].Kind && !v.IsNull() {
				return nil, fmt.Errorf("source: %s row %d col %s is %v, want %v",
					s.Name, i, s.Cols[j].Name, v.K, s.Cols[j].Kind)
			}
		}
	}
	return &Table{Schema: s, Rows: rows}, nil
}

// MustTable is NewTable but panics on error.
func MustTable(s *schema.Table, rows []tuple.Row) *Table {
	t, err := NewTable(s, rows)
	if err != nil {
		panic(err)
	}
	return t
}

// Stall describes a window during which a scan stops delivering rows,
// modelling a delayed or temporarily unavailable Web source.
type Stall struct {
	// AfterRows is the number of rows delivered before the stall begins.
	AfterRows int
	// For is the stall duration.
	For clock.Duration
}

// ScanSpec configures a scan access path over a source.
type ScanSpec struct {
	// StartDelay postpones the first row.
	StartDelay clock.Duration
	// InterArrival is the pacing between consecutive rows.
	InterArrival clock.Duration
	// Stalls are delivery gaps, applied in order.
	Stalls []Stall
}

// RowTimes returns the delivery offset of every row and of the final EOT,
// relative to the scan's seed time.
func (s ScanSpec) RowTimes(n int) (rows []clock.Duration, eot clock.Duration) {
	rows = make([]clock.Duration, n)
	t := s.StartDelay
	si := 0
	for i := 0; i < n; i++ {
		for si < len(s.Stalls) && s.Stalls[si].AfterRows == i {
			t += s.Stalls[si].For
			si++
		}
		t += s.InterArrival
		rows[i] = t
	}
	return rows, t
}

// IndexSpec configures an index access path over a source.
type IndexSpec struct {
	// KeyCols are the bind-field columns of the index (the lookup key).
	KeyCols []int
	// Latency is the cost of one remote lookup round trip.
	Latency clock.Duration
	// Parallel bounds concurrent outstanding lookups; 0 means unbounded
	// (fully asynchronous), 1 serializes lookups.
	Parallel int
}

// Index is a prebuilt lookup structure over a table's rows on a key-column
// set, supporting equality lookups. Buckets are keyed by the hash of the key
// columns; Lookup verifies candidates against the actual values, so hash
// collisions only cost a skipped row, never a wrong result.
type Index struct {
	Spec IndexSpec
	m    map[uint64][]int
	rows []tuple.Row
}

// BuildIndex constructs the index eagerly (the remote source is presumed to
// have it already; only lookups cost latency).
func BuildIndex(t *Table, spec IndexSpec) (*Index, error) {
	for _, c := range spec.KeyCols {
		if c < 0 || c >= t.Schema.Arity() {
			return nil, fmt.Errorf("source: index on %s: bad key column %d", t.Schema.Name, c)
		}
	}
	ix := &Index{Spec: spec, m: make(map[uint64][]int), rows: t.Rows}
	for i, r := range t.Rows {
		k := r.HashCols(spec.KeyCols)
		ix.m[k] = append(ix.m[k], i)
	}
	return ix, nil
}

// Lookup returns the rows whose key columns equal the given values, in table
// order. The values slice is parallel to Spec.KeyCols.
func (ix *Index) Lookup(vals []value.V) []tuple.Row {
	if len(vals) != len(ix.Spec.KeyCols) {
		panic(fmt.Sprintf("source: Lookup with %d values for %d key cols", len(vals), len(ix.Spec.KeyCols)))
	}
	idxs := ix.m[tuple.Row(vals).Hash64()]
	out := make([]tuple.Row, 0, len(idxs))
	for _, j := range idxs {
		r := ix.rows[j]
		match := true
		for i, c := range ix.Spec.KeyCols {
			if !r[c].Equal(vals[i]) {
				match = false
				break
			}
		}
		if match {
			out = append(out, r)
		}
	}
	return out
}
