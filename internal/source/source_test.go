package source

import (
	"testing"
	"testing/quick"

	"repro/internal/clock"
	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/value"
)

func rows(m [][]int64) []tuple.Row {
	out := make([]tuple.Row, len(m))
	for i, vs := range m {
		r := make(tuple.Row, len(vs))
		for j, v := range vs {
			r[j] = value.NewInt(v)
		}
		out[i] = r
	}
	return out
}

func TestNewTableValidation(t *testing.T) {
	sch := schema.MustTable("R", schema.IntCol("a"), schema.IntCol("b"))
	if _, err := NewTable(sch, rows([][]int64{{1}})); err == nil {
		t.Error("arity mismatch must be rejected")
	}
	if _, err := NewTable(sch, []tuple.Row{{value.NewStr("x"), value.NewInt(1)}}); err == nil {
		t.Error("kind mismatch must be rejected")
	}
	if _, err := NewTable(sch, rows([][]int64{{1, 2}})); err != nil {
		t.Errorf("valid table rejected: %v", err)
	}
}

func TestScanSpecRowTimes(t *testing.T) {
	spec := ScanSpec{
		StartDelay:   10 * clock.Millisecond,
		InterArrival: 5 * clock.Millisecond,
		Stalls:       []Stall{{AfterRows: 2, For: 100 * clock.Millisecond}},
	}
	times, eot := spec.RowTimes(4)
	want := []clock.Duration{
		15 * clock.Millisecond,  // 10 + 5
		20 * clock.Millisecond,  // +5
		125 * clock.Millisecond, // +100 stall +5
		130 * clock.Millisecond, // +5
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("row %d at %v, want %v", i, times[i], want[i])
		}
	}
	if eot != times[3] {
		t.Errorf("EOT at %v, want %v", eot, times[3])
	}
}

func TestScanTimesMonotone(t *testing.T) {
	f := func(inter uint16, n uint8) bool {
		spec := ScanSpec{InterArrival: clock.Duration(inter)}
		times, eot := spec.RowTimes(int(n))
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == 0 || eot >= times[len(times)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexLookup(t *testing.T) {
	sch := schema.MustTable("S", schema.IntCol("x"), schema.IntCol("y"))
	tb := MustTable(sch, rows([][]int64{{1, 10}, {2, 20}, {1, 11}, {3, 30}}))
	ix, err := BuildIndex(tb, IndexSpec{KeyCols: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	got := ix.Lookup(tuple.Row{value.NewInt(1)})
	if len(got) != 2 {
		t.Fatalf("Lookup(1) = %d rows, want 2", len(got))
	}
	if len(ix.Lookup(tuple.Row{value.NewInt(9)})) != 0 {
		t.Error("Lookup(9) must be empty")
	}
}

func TestIndexCompositeKey(t *testing.T) {
	sch := schema.MustTable("S", schema.IntCol("x"), schema.IntCol("y"))
	tb := MustTable(sch, rows([][]int64{{1, 10}, {1, 11}, {2, 10}}))
	ix, err := BuildIndex(tb, IndexSpec{KeyCols: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Lookup(tuple.Row{value.NewInt(1), value.NewInt(11)}); len(got) != 1 {
		t.Errorf("composite Lookup = %d rows, want 1", len(got))
	}
}

func TestBuildIndexValidation(t *testing.T) {
	sch := schema.MustTable("S", schema.IntCol("x"))
	tb := MustTable(sch, rows([][]int64{{1}}))
	if _, err := BuildIndex(tb, IndexSpec{KeyCols: []int{5}}); err == nil {
		t.Error("out-of-range key column must be rejected")
	}
}

func TestIndexLookupPanicsOnArity(t *testing.T) {
	sch := schema.MustTable("S", schema.IntCol("x"))
	tb := MustTable(sch, rows([][]int64{{1}}))
	ix, _ := BuildIndex(tb, IndexSpec{KeyCols: []int{0}})
	defer func() {
		if recover() == nil {
			t.Error("wrong-arity lookup must panic")
		}
	}()
	ix.Lookup(tuple.Row{})
}
