// fixed.go implements the deterministic baseline policy: a static priority
// order corresponding to the canonical n-ary symmetric hash join routing of
// Section 2.3 — build first, then selections, then probes in table order.
// With this policy the eddy performs no adaptation, which makes it the
// control arm in experiments and the reference executor in correctness
// tests.
package policy

import (
	"repro/internal/tuple"
)

// Fixed is a non-adaptive priority policy.
type Fixed struct{}

// NewFixed returns the deterministic baseline policy.
func NewFixed() *Fixed { return &Fixed{} }

// Choose implements Policy: BuildSteM > Selection (by predicate ID) >
// ProbeSteM (by table) > ProbeAM (by module) > DropTuple.
func (f *Fixed) Choose(t *tuple.Tuple, cands []Candidate, env Env) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		if fixedLess(cands[i], cands[best]) {
			best = i
		}
	}
	return best
}

func fixedLess(a, b Candidate) bool {
	ra, rb := fixedRank(a.Kind), fixedRank(b.Kind)
	if ra != rb {
		return ra < rb
	}
	switch a.Kind {
	case Selection:
		return a.PredID < b.PredID
	case ProbeSteM, BuildSteM:
		return a.Table < b.Table
	default:
		return a.Module < b.Module
	}
}

func fixedRank(k Kind) int {
	switch k {
	case BuildSteM:
		return 0
	case Selection:
		return 1
	case ProbeSteM:
		return 2
	case ProbeAM:
		return 3
	case DropTuple:
		return 4
	default:
		return 5
	}
}

// ChooseBatch implements BatchChooser: the priority order is state-free, so
// one comparison pass serves the whole group.
func (f *Fixed) ChooseBatch(t *tuple.Tuple, n int, cands []Candidate, env Env) int {
	return f.Choose(t, cands, env)
}

// Observe implements Policy; Fixed learns nothing.
func (f *Fixed) Observe(Feedback) {}
