// random.go implements a uniformly random routing policy. It exists as the
// ablation floor: the paper argues "even a simple routing policy allows
// significant flexibility in adaptation", and the correctness theorems must
// hold for any policy at all — including one that learns nothing and picks
// moves at random. The property tests exercise it, and benchmarks use it to
// bound what the learned policies are worth.
package policy

import (
	"math/rand"

	"repro/internal/tuple"
)

// Random picks uniformly among candidates (with seeded, reproducible
// randomness).
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a uniformly random policy.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Choose implements Policy.
func (p *Random) Choose(t *tuple.Tuple, cands []Candidate, env Env) int {
	return p.rng.Intn(len(cands))
}

// ChooseBatch implements BatchChooser: one draw decides the whole group.
func (p *Random) ChooseBatch(t *tuple.Tuple, n int, cands []Candidate, env Env) int {
	return p.rng.Intn(len(cands))
}

// Observe implements Policy; Random learns nothing.
func (p *Random) Observe(Feedback) {}
