// lottery.go implements ticket-based lottery routing, the adaptive policy of
// the original eddies paper [2]: each module holds tickets proportional to
// its observed productivity, and the eddy picks a destination by weighted
// random draw. Randomness is seeded, so runs are reproducible.
package policy

import (
	"math/rand"

	"repro/internal/tuple"
)

// Lottery is a ticket-based adaptive policy.
type Lottery struct {
	stats *statTable
	rng   *rand.Rand
	// explore is the probability of a uniform random choice, keeping every
	// module calibrated.
	explore float64
}

// NewLottery returns a lottery policy with the given seed.
func NewLottery(seed int64) *Lottery {
	return &Lottery{stats: newStatTable(), rng: rand.New(rand.NewSource(seed)), explore: 0.1}
}

// Choose implements Policy. Builds always win (BuildFirst makes them the
// sole candidate anyway under the default router); other moves draw tickets
// equal to their observed output-per-cost ratio.
func (l *Lottery) Choose(t *tuple.Tuple, cands []Candidate, env Env) int {
	if len(cands) == 1 {
		return 0
	}
	if l.rng.Float64() < l.explore {
		return l.rng.Intn(len(cands))
	}
	weights := make([]float64, len(cands))
	total := 0.0
	for i, c := range cands {
		weights[i] = l.tickets(c, uint64(t.Span))
		total += weights[i]
	}
	if total <= 0 {
		return l.rng.Intn(len(cands))
	}
	draw := l.rng.Float64() * total
	for i, w := range weights {
		draw -= w
		if draw <= 0 {
			return i
		}
	}
	return len(cands) - 1
}

// ChooseBatch implements BatchChooser: the ticket table is consulted and the
// weighted draw performed once for the whole group, so per-tuple stat
// lookups and random draws are amortized away.
func (l *Lottery) ChooseBatch(t *tuple.Tuple, n int, cands []Candidate, env Env) int {
	return l.Choose(t, cands, env)
}

// tickets computes a candidate's ticket count from observed feedback.
func (l *Lottery) tickets(c Candidate, sig uint64) float64 {
	const base = 1.0 // optimism for unvisited modules
	switch c.Kind {
	case BuildSteM:
		return 1000 // builds are cheap and mandatory-ish: strongly favoured
	case DropTuple:
		return 0.1 // dropping earns no output; kept barely alive
	}
	s := l.stats.lookup(c.Module, sig)
	if s == nil || s.visits == 0 {
		return base
	}
	cost := s.cstEWMA
	if cost <= 0 {
		cost = 1e-9
	}
	switch c.Kind {
	case Selection:
		// Low-selectivity selections are productive: they discard tuples
		// early. Ticket ∝ (1 - selectivity) / cost.
		return 0.01 + (1-clamp01(s.outEWMA))/cost
	default:
		return 0.01 + s.outEWMA/cost
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Observe implements Policy.
func (l *Lottery) Observe(fb Feedback) { l.stats.observe(fb) }

// Snapshot implements Introspector, exposing the learned ticket estimates.
func (l *Lottery) Snapshot() []ModuleState { return l.stats.snapshot() }
