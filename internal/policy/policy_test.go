package policy

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/tuple"
	"repro/internal/value"
)

// fakeEnv is a static policy.Env for unit tests.
type fakeEnv struct {
	now      clock.Time
	backlogs map[int]clock.Duration
}

func (e fakeEnv) Now() clock.Time { return e.now }
func (e fakeEnv) Backlog(m int) clock.Duration {
	return e.backlogs[m]
}

func probeTuple() *tuple.Tuple {
	return tuple.NewSingleton(2, 0, tuple.Row{value.NewInt(1)})
}

func TestFixedPriorityOrder(t *testing.T) {
	f := NewFixed()
	cands := []Candidate{
		{Module: 5, Kind: ProbeAM},
		{Module: 2, Kind: Selection, PredID: 1},
		{Module: 1, Kind: BuildSteM},
		{Module: 3, Kind: ProbeSteM, Table: 0},
		{Module: 9, Kind: DropTuple},
	}
	if got := f.Choose(probeTuple(), cands, fakeEnv{}); cands[got].Kind != BuildSteM {
		t.Errorf("Fixed picked %v, want BuildSteM", cands[got].Kind)
	}
	// Without the build, selections come first, lowest PredID.
	cands2 := []Candidate{
		{Module: 3, Kind: ProbeSteM, Table: 0},
		{Module: 2, Kind: Selection, PredID: 1},
		{Module: 4, Kind: Selection, PredID: 0},
	}
	if got := f.Choose(probeTuple(), cands2, fakeEnv{}); cands2[got].PredID != 0 {
		t.Errorf("Fixed picked pred %d, want 0", cands2[got].PredID)
	}
	// Probes by table order.
	cands3 := []Candidate{
		{Module: 6, Kind: ProbeSteM, Table: 2},
		{Module: 4, Kind: ProbeSteM, Table: 1},
	}
	if got := f.Choose(probeTuple(), cands3, fakeEnv{}); cands3[got].Table != 1 {
		t.Error("Fixed must probe lower tables first")
	}
	f.Observe(Feedback{}) // must be a no-op
}

func TestLotteryLearnsProductiveModule(t *testing.T) {
	l := NewLottery(3)
	sig := uint64(tuple.Single(0))
	// Module 1 is productive; module 2 returns nothing.
	for i := 0; i < 50; i++ {
		l.Observe(Feedback{Module: 1, Kind: ProbeSteM, Sig: sig, Outputs: 3, Cost: clock.Millisecond})
		l.Observe(Feedback{Module: 2, Kind: ProbeSteM, Sig: sig, Outputs: 0, Cost: clock.Millisecond})
	}
	cands := []Candidate{
		{Module: 1, Kind: ProbeSteM, Table: 1},
		{Module: 2, Kind: ProbeSteM, Table: 2},
	}
	wins := 0
	for i := 0; i < 400; i++ {
		if cands[l.Choose(probeTuple(), cands, fakeEnv{})].Module == 1 {
			wins++
		}
	}
	if wins < 300 {
		t.Errorf("productive module won %d/400 draws; lottery is not learning", wins)
	}
}

func TestLotterySingleCandidate(t *testing.T) {
	l := NewLottery(1)
	if l.Choose(probeTuple(), []Candidate{{Module: 7, Kind: ProbeSteM}}, fakeEnv{}) != 0 {
		t.Error("single candidate must be chosen")
	}
}

func TestBenefitCostPrefersSelectiveSelection(t *testing.T) {
	p := NewBenefitCost(2)
	p.Explore = 0
	sig := uint64(tuple.Single(0))
	for i := 0; i < 50; i++ {
		// Module 1: 90% pass. Module 2: 5% pass.
		e1, e2 := 1, 0
		if i%10 == 9 {
			e1 = 0
		}
		if i%20 == 19 {
			e2 = 1
		}
		p.Observe(Feedback{Module: 1, Kind: Selection, Sig: sig, Emitted: e1, Cost: clock.Millisecond})
		p.Observe(Feedback{Module: 2, Kind: Selection, Sig: sig, Emitted: e2, Cost: clock.Millisecond})
	}
	cands := []Candidate{
		{Module: 1, Kind: Selection, PredID: 0},
		{Module: 2, Kind: Selection, PredID: 1},
	}
	if got := p.Choose(probeTuple(), cands, fakeEnv{}); cands[got].Module != 2 {
		t.Error("BenefitCost must apply the selective predicate first")
	}
}

func TestBenefitCostBuildAlwaysWins(t *testing.T) {
	p := NewBenefitCost(2)
	p.Explore = 0
	cands := []Candidate{
		{Module: 1, Kind: ProbeSteM},
		{Module: 2, Kind: BuildSteM},
	}
	if got := p.Choose(probeTuple(), cands, fakeEnv{}); cands[got].Kind != BuildSteM {
		t.Error("builds must dominate")
	}
}

func TestBenefitCostDropsWhenMatchInHand(t *testing.T) {
	p := NewBenefitCost(2)
	p.Explore = 0
	tp := probeTuple()
	tp.LastProbeMatches = 1
	cands := []Candidate{
		{Module: 1, Kind: ProbeAM},
		{Module: 2, Kind: DropTuple},
	}
	if got := p.Choose(tp, cands, fakeEnv{}); cands[got].Kind != DropTuple {
		t.Error("a bounced probe that already found its match must be dropped, not sent to the index")
	}
}

func TestBenefitCostIndexEarlyScanLate(t *testing.T) {
	p := NewBenefitCost(2)
	p.Explore = 0
	tp := probeTuple()
	cands := []Candidate{
		{Module: 1, Kind: ProbeAM},
		{Module: 5, Kind: DropTuple}, // Module here is the SteM of the probe table
	}
	env := fakeEnv{now: clock.Time(5 * clock.Second), backlogs: map[int]clock.Duration{1: 100 * clock.Millisecond}}

	// Early: SteM probes nearly always miss -> scan far from done -> index.
	for i := 0; i < 40; i++ {
		p.Observe(Feedback{Module: 5, Kind: ProbeSteM, Outputs: 0})
	}
	if got := p.Choose(tp, cands, env); cands[got].Kind != ProbeAM {
		t.Error("early (low hit rate): must probe the index")
	}
	// Late: hit rate near 1 -> matches imminent via scan -> drop.
	for i := 0; i < 200; i++ {
		p.Observe(Feedback{Module: 5, Kind: ProbeSteM, Outputs: 1})
	}
	if got := p.Choose(tp, cands, env); cands[got].Kind != DropTuple {
		t.Error("late (high hit rate): must rely on the scan")
	}
}

func TestStatTableFallback(t *testing.T) {
	st := newStatTable()
	st.observe(Feedback{Module: 1, Sig: 7, Outputs: 2, Cost: clock.Millisecond})
	if s := st.lookup(1, 7); s == nil || s.visits != 1 {
		t.Error("sig-level stat missing")
	}
	if s := st.lookup(1, 99); s == nil {
		t.Error("must fall back to module-level stat")
	}
	if s := st.lookup(2, 7); s != nil {
		t.Error("unknown module must be nil")
	}
}
