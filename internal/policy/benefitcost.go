// benefitcost.go implements the routing policy of Section 4.1: "the eddy
// continually routes so as to maximize B(t,m)/T(t,m)" — the expected benefit
// of sending tuple t to module m over the expected time m takes to process
// it — estimated "at the granularity of the module and the tuplestate".
//
// The interesting decision is what to do with a probe tuple bounced back by
// a SteM on a table that has both scan and index access methods (query Q4,
// Section 4.3): probing the index AM yields the match after the lookup
// latency plus the AM's queue backlog, while dropping the tuple lets the
// scan deliver the match later for free. Early in the query the scan has
// covered little of the table, so the index wins; as the SteM's observed
// probe hit rate rises, the expected wait for the scan shrinks and dropping
// wins. A small exploration fraction keeps probing the index throughout,
// exactly as the paper describes ("the eddy keeps sending a small fraction
// of the R tuples to probe into the T index throughout the processing to
// explore alternative approaches").
package policy

import (
	"math/rand"

	"repro/internal/clock"
	"repro/internal/tuple"
)

// BenefitCost is the Section 4.1 online policy.
type BenefitCost struct {
	stats *statTable
	rng   *rand.Rand
	// Explore is the fraction of decisions made uniformly at random.
	Explore float64
	// hit tracks, per SteM module, the EWMA probability that a probe found
	// at least one match — a proxy for scan progress on that table.
	hit map[int]*stat
}

// NewBenefitCost returns the online benefit/cost policy with the given seed.
func NewBenefitCost(seed int64) *BenefitCost {
	return &BenefitCost{
		stats:   newStatTable(),
		rng:     rand.New(rand.NewSource(seed)),
		Explore: 0.05,
		hit:     make(map[int]*stat),
	}
}

// Choose implements Policy.
func (p *BenefitCost) Choose(t *tuple.Tuple, cands []Candidate, env Env) int {
	if len(cands) == 1 {
		return 0
	}
	if p.rng.Float64() < p.Explore {
		return p.rng.Intn(len(cands))
	}
	best, bestScore := 0, p.score(t, cands[0], env)
	for i := 1; i < len(cands); i++ {
		if s := p.score(t, cands[i], env); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// ChooseBatch implements BatchChooser: the B/T scores depend only on the
// group's shared routing state, so one scoring pass (and one exploration
// draw) serves all n tuples.
func (p *BenefitCost) ChooseBatch(t *tuple.Tuple, n int, cands []Candidate, env Env) int {
	return p.Choose(t, cands, env)
}

// score computes B/T for one candidate, in results per second.
func (p *BenefitCost) score(t *tuple.Tuple, c Candidate, env Env) float64 {
	sig := uint64(t.Span)
	switch c.Kind {
	case BuildSteM:
		// Builds are mandatory prerequisites; do them immediately.
		return 1e12
	case Selection:
		s := p.stats.lookup(c.Module, sig)
		if s == nil || s.visits == 0 {
			return 1e6 // optimistic: calibrate unknown selections early
		}
		cost := maxf(s.cstEWMA, 1e-9)
		return (1 - clamp01(s.outEWMA)) / cost
	case ProbeSteM:
		s := p.stats.lookup(c.Module, sig)
		if s == nil || s.visits == 0 {
			return 1e6 // optimistic: calibrate unknown SteMs early
		}
		cost := maxf(s.cstEWMA+env.Backlog(c.Module).Seconds(), 1e-9)
		return maxf(s.outEWMA, 0.05) / cost
	case ProbeAM:
		// If the last SteM probe already found matches, the index would
		// only return duplicates (set semantics will discard them): the
		// probe is worthless.
		if t.LastProbeMatches > 0 {
			return 0
		}
		s := p.stats.lookup(c.Module, sig)
		lat := env.Backlog(c.Module).Seconds()
		if s != nil && s.visits > 0 {
			lat += s.cstEWMA
		}
		return 1 / maxf(lat, 1e-9)
	case DropTuple:
		if t.LastProbeMatches > 0 {
			return 1e9 // match already in hand: dropping is free and right
		}
		// Expected wait for the scan to deliver the match: with observed
		// probe hit rate h ≈ scanned fraction and elapsed time now, the
		// remaining scan time is ≈ now·(1-h)/h and the match is uniform in
		// it, so D ≈ now·(1-h)/(2h). Score = 1/D.
		h := 0.02
		if s := p.hit[c.Module]; s != nil && s.visits > 0 {
			h = clamp01(maxf(s.outEWMA, 0.02))
		}
		now := maxf(env.Now().Seconds(), 1e-6)
		d := now * (1 - h) / (2 * h)
		return 1 / maxf(d, 1e-9)
	default:
		return 0
	}
}

// Observe implements Policy, additionally maintaining per-SteM hit rates.
func (p *BenefitCost) Observe(fb Feedback) {
	p.stats.observe(fb)
	if fb.Kind == ProbeSteM {
		s := p.hit[fb.Module]
		if s == nil {
			s = &stat{}
			p.hit[fb.Module] = s
		}
		hit := 0
		if fb.Outputs > 0 {
			hit = 1
		}
		s.observe(hit, clock.Duration(0))
	}
}

// Snapshot implements Introspector, exposing the learned per-(module, sig)
// benefit/cost estimates.
func (p *BenefitCost) Snapshot() []ModuleState { return p.stats.snapshot() }

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
