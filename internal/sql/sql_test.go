package sql

import (
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/eddy"
	"repro/internal/oracle"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/tuple"
	"repro/internal/value"
)

func row(vs ...int64) tuple.Row {
	r := make(tuple.Row, len(vs))
	for i, v := range vs {
		r[i] = value.NewInt(v)
	}
	return r
}

func testCatalog(t *testing.T) MapCatalog {
	t.Helper()
	rT := schema.MustTable("r", schema.IntCol("key"), schema.IntCol("a"))
	sT := schema.MustTable("s", schema.IntCol("x"), schema.IntCol("y"))
	scan := source.ScanSpec{InterArrival: clock.Millisecond}
	return MapCatalog{
		"r": {
			Data: source.MustTable(rT, []tuple.Row{row(1, 10), row(2, 20), row(3, 10)}),
			Scan: &scan,
		},
		"s": {
			Data:    source.MustTable(sT, []tuple.Row{row(10, 100), row(20, 200)}),
			Scan:    &scan,
			Indexes: []source.IndexSpec{{KeyCols: []int{0}, Latency: clock.Millisecond}},
		},
	}
}

// --- lexer ---

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT r.a, x FROM r WHERE a <= -5 AND name = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	if toks[0].text != "SELECT" || toks[0].kind != tokKeyword {
		t.Error("keyword not recognized")
	}
	// Find the string literal with the escaped quote.
	found := false
	for _, tk := range toks {
		if tk.kind == tokString && tk.text == "it's" {
			found = true
		}
	}
	if !found {
		t.Error("escaped string quote not handled")
	}
	// Negative number.
	neg := false
	for _, tk := range toks {
		if tk.kind == tokNumber && tk.text == "-5" {
			neg = true
		}
	}
	if !neg {
		t.Error("negative number not lexed")
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"SELECT @", "SELECT 'open", "a ! b", "a - b"} {
		if _, err := lex(src); err == nil {
			t.Errorf("%q: want lex error", src)
		}
	}
}

// --- parser ---

func TestParseStar(t *testing.T) {
	st, err := Parse("SELECT * FROM r, s WHERE r.a = s.x")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Star || len(st.From) != 2 || len(st.Where) != 1 {
		t.Errorf("parsed %+v", st)
	}
}

func TestParseSelectListAndAliases(t *testing.T) {
	st, err := Parse("select r1.key, r2.key from r as r1, r r2 where r1.a = r2.a and r1.key <> r2.key")
	if err != nil {
		t.Fatal(err)
	}
	if st.Star || len(st.Select) != 2 {
		t.Errorf("select list = %v", st.Select)
	}
	if st.From[0].Alias != "r1" || st.From[1].Alias != "r2" || st.From[1].Source != "r" {
		t.Errorf("from = %v", st.From)
	}
	if len(st.Where) != 2 || st.Where[1].Op != "<>" {
		t.Errorf("where = %v", st.Where)
	}
}

func TestParseOperandKinds(t *testing.T) {
	st, err := Parse("SELECT * FROM r WHERE a >= 10 AND 3 < key AND name = 'bob'")
	if err != nil {
		t.Fatal(err)
	}
	if st.Where[0].Right.Kind != OpInt || st.Where[1].Left.Kind != OpInt || st.Where[2].Right.Kind != OpStr {
		t.Errorf("operand kinds wrong: %+v", st.Where)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"FROM r",
		"SELECT FROM r",
		"SELECT * FROM",
		"SELECT * FROM r WHERE",
		"SELECT * FROM r WHERE a =",
		"SELECT * FROM r extra garbage =",
		"SELECT a. FROM r",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: want parse error", src)
		}
	}
}

// --- binder ---

func TestBindStarJoin(t *testing.T) {
	st, err := Parse("SELECT * FROM r, s WHERE r.a = s.x")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bind(st, testCatalog(t))
	if err != nil {
		t.Fatal(err)
	}
	if b.Q.NumTables() != 2 || len(b.Q.Preds) != 1 || len(b.Output) != 4 {
		t.Errorf("bound: tables=%d preds=%d out=%d", b.Q.NumTables(), len(b.Q.Preds), len(b.Output))
	}
	if b.Output[2].Name != "s.x" {
		t.Errorf("output[2] = %v", b.Output[2])
	}
}

func TestBindUnqualifiedColumns(t *testing.T) {
	st, _ := Parse("SELECT key FROM r, s WHERE a = x")
	b, err := Bind(st, testCatalog(t))
	if err != nil {
		t.Fatal(err)
	}
	if b.Output[0].Table != 0 || b.Output[0].Col != 0 {
		t.Errorf("unqualified key resolved to %+v", b.Output[0])
	}
	p := b.Q.Preds[0]
	if !p.IsJoin() {
		t.Error("a = x must bind as a join")
	}
}

func TestBindConstNormalization(t *testing.T) {
	st, _ := Parse("SELECT * FROM r WHERE 2 <= key")
	b, err := Bind(st, testCatalog(t))
	if err != nil {
		t.Fatal(err)
	}
	p := b.Q.Preds[0]
	if p.IsJoin() || p.Op.String() != ">=" {
		t.Errorf("normalized pred = %v", p)
	}
}

func TestBindErrors(t *testing.T) {
	cases := []string{
		"SELECT * FROM nosuch",
		"SELECT * FROM r, r",                   // duplicate alias
		"SELECT * FROM r, s WHERE key = 1",     // ambiguous? key only in r... use x
		"SELECT * FROM r WHERE nocol = 1",      // unknown column
		"SELECT * FROM r, s WHERE r.a = r.key", // single-table comparison of two cols
		"SELECT * FROM r WHERE 1 = 2",          // const vs const
		"SELECT z.a FROM r",                    // unknown alias
		"SELECT * FROM r, s",                   // cross product (engine validation)
	}
	for _, src := range cases {
		st, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: parse: %v", src, err)
		}
		if _, err := Bind(st, testCatalog(t)); err == nil && src != cases[2] {
			t.Errorf("%q: want bind error", src)
		}
	}
	// Ambiguity check with a genuinely shared column name.
	cat := testCatalog(t)
	rr := cat["r"]
	cat["s2"] = rr // same schema under another name: column "a" ambiguous
	st, _ := Parse("SELECT * FROM r, s2 WHERE a = 1")
	if _, err := Bind(st, cat); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("want ambiguity error, got %v", err)
	}
}

// TestSelfJoinEndToEnd parses, binds and executes a self-join — the FROM
// clause feature Section 2.2 calls out ("multiple instances of the source
// in the FROM clause, e.g. a self-join").
func TestSelfJoinEndToEnd(t *testing.T) {
	st, err := Parse("SELECT r1.key, r2.key FROM r AS r1, r AS r2 WHERE r1.a = r2.a AND r1.key < r2.key")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bind(st, testCatalog(t))
	if err != nil {
		t.Fatal(err)
	}
	r, err := eddy.NewRouter(b.Q, eddy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	outs, err := eddy.NewSim(r).Run()
	if err != nil {
		t.Fatal(err)
	}
	got := make(oracle.Result)
	for _, o := range outs {
		got[o.T.ResultKey()]++
	}
	want := oracle.Compute(b.Q)
	missing, extra := oracle.Diff(want, got)
	if len(missing) > 0 || len(extra) > 0 {
		t.Fatalf("self-join wrong: missing=%v extra=%v", missing, extra)
	}
	// rows with a=10: keys {1,3} -> exactly one pair (1,3).
	if len(outs) != 1 {
		t.Errorf("self-join produced %d rows, want 1", len(outs))
	}
}

// TestOrderByLimit parses, binds and arranges ORDER BY / LIMIT — applied
// above the eddy, since the adaptive dataflow is inherently unordered.
func TestOrderByLimit(t *testing.T) {
	st, err := Parse("SELECT key FROM r ORDER BY a DESC, key ASC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.OrderBy) != 2 || !st.OrderBy[0].Desc || st.OrderBy[1].Desc || st.Limit != 2 {
		t.Fatalf("parsed order/limit = %+v / %d", st.OrderBy, st.Limit)
	}
	b, err := Bind(st, testCatalog(t))
	if err != nil {
		t.Fatal(err)
	}
	r, err := eddy.NewRouter(b.Q, eddy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	outs, err := eddy.NewSim(r).Run()
	if err != nil {
		t.Fatal(err)
	}
	var ts []*tuple.Tuple
	for _, o := range outs {
		ts = append(ts, o.T)
	}
	got := b.Arrange(ts)
	// r rows: (1,10),(2,20),(3,10). ORDER BY a DESC, key ASC LIMIT 2 →
	// key 2 (a=20), then key 1 (a=10).
	if len(got) != 2 {
		t.Fatalf("arranged %d rows, want 2", len(got))
	}
	if got[0].Value(0, 0).I != 2 || got[1].Value(0, 0).I != 1 {
		t.Errorf("order = %v, %v", got[0], got[1])
	}
}

func TestParseOrderLimitErrors(t *testing.T) {
	for _, src := range []string{
		"SELECT * FROM r ORDER key",
		"SELECT * FROM r LIMIT",
		"SELECT * FROM r LIMIT -1",
		"SELECT * FROM r ORDER BY",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: want parse error", src)
		}
	}
	// Unknown order column fails at bind time.
	st, _ := Parse("SELECT * FROM r ORDER BY nope")
	if _, err := Bind(st, testCatalog(t)); err == nil {
		t.Error("unknown ORDER BY column must fail to bind")
	}
}

// TestIndexedSourceEndToEnd executes a bound query whose S side is served by
// both the scan and the declared index.
func TestIndexedSourceEndToEnd(t *testing.T) {
	st, _ := Parse("SELECT y FROM r, s WHERE r.a = s.x AND r.key <= 2")
	b, err := Bind(st, testCatalog(t))
	if err != nil {
		t.Fatal(err)
	}
	r, err := eddy.NewRouter(b.Q, eddy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	outs, err := eddy.NewSim(r).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Errorf("got %d rows, want 2", len(outs))
	}
}

// --- parse-error positions (satellite: errors report byte offsets) ---

// TestParseErrorPositions checks that malformed statements report the byte
// offset of the offending token. Statements are single-line, so the offset
// doubles as the 0-based column.
func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error, including "position N"
	}{
		{"unterminated string", "SELECT * FROM r WHERE name = 'oops", "position 29: unterminated string"},
		{"dangling AND", "SELECT * FROM r WHERE a = 1 AND", "position 31: expected operand"},
		{"unknown keyword", "SELEC * FROM r", "position 0: expected SELECT"},
		{"misspelled FROM", "SELECT * FORM r", "position 9: expected FROM"},
		{"stray rune", "SELECT * FROM r WHERE a = $", "position 26: unexpected"},
		{"missing operand", "SELECT * FROM r WHERE = 1", "position 22: expected operand"},
		{"trailing garbage", "SELECT * FROM r WHERE a = 1 1", "position 28: unexpected"},
		{"dot without column", "SELECT a. FROM r", "position 10: expected column name"},
		{"negative limit", "SELECT * FROM r LIMIT -3", "position 22: negative LIMIT"},
		{"register missing TABLE", "REGISTER people FROM 'p.csv'", "position 9: expected TABLE"},
		{"register unquoted path", "REGISTER TABLE p FROM p.csv", "position 22: expected quoted CSV path"},
		{"register unitless latency", "REGISTER TABLE p FROM 'p.csv' INDEX id LATENCY 200", "position 47: duration 200 needs a unit"},
		{"register bad duration", "REGISTER TABLE p FROM 'p.csv' INDEX id LATENCY 'soon'", "bad duration \"soon\""},
		{"register negative latency", "REGISTER TABLE p FROM 'p.csv' INDEX id LATENCY -50ms", "bad duration \"-50ms\""},
		{"register negative quoted latency", "REGISTER TABLE p FROM 'p.csv' INDEX id LATENCY '-1s'", "bad duration \"-1s\""},
		{"register missing LATENCY", "REGISTER TABLE p FROM 'p.csv' INDEX id 200ms", "position 39: expected LATENCY"},
		{"prepare missing name", "PREPARE AS SELECT * FROM r", "position 8: expected prepared statement name"},
		{"prepare missing AS", "PREPARE p SELECT * FROM r", "position 10: expected AS"},
		{"prepare missing body", "PREPARE p AS", "position 12: expected SELECT"},
		{"prepare of register", "PREPARE p AS REGISTER TABLE t FROM 't.csv'", "position 13: cannot prepare a REGISTER statement"},
		{"prepare of execute", "PREPARE p AS EXECUTE q", "position 13: expected SELECT"},
		{"execute missing name", "EXECUTE", "position 7: expected prepared statement name"},
		{"execute quoted name", "EXECUTE 'p'", "position 8: expected prepared statement name"},
		{"execute trailing garbage", "EXECUTE p extra", "position 10: unexpected"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseStatement(c.src)
			if err == nil {
				t.Fatalf("%q: want parse error", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("%q:\n  error = %v\n  want substring %q", c.src, err, c.want)
			}
		})
	}
}

// --- REGISTER TABLE ---

func TestParseRegister(t *testing.T) {
	st, err := ParseStatement("REGISTER TABLE people FROM 'data/people.csv'")
	if err != nil {
		t.Fatal(err)
	}
	reg, ok := st.(*RegisterStmt)
	if !ok {
		t.Fatalf("parsed %T, want *RegisterStmt", st)
	}
	if reg.Name != "people" || reg.Path != "data/people.csv" || len(reg.Indexes) != 0 {
		t.Errorf("parsed %+v", reg)
	}
}

func TestParseRegisterIndexes(t *testing.T) {
	st, err := ParseStatement("register table t from 'x.csv' index id latency 200ms index name latency '1s'")
	if err != nil {
		t.Fatal(err)
	}
	reg := st.(*RegisterStmt)
	if len(reg.Indexes) != 2 {
		t.Fatalf("indexes = %+v", reg.Indexes)
	}
	if reg.Indexes[0].Col != "id" || reg.Indexes[0].Latency != 200*time.Millisecond {
		t.Errorf("index[0] = %+v", reg.Indexes[0])
	}
	if reg.Indexes[1].Col != "name" || reg.Indexes[1].Latency != time.Second {
		t.Errorf("index[1] = %+v", reg.Indexes[1])
	}
}

// TestContextualWordsStayIdentifiers: REGISTER's TABLE/INDEX/LATENCY words
// must not become reserved — they are valid table and column names in a
// SELECT.
func TestContextualWordsStayIdentifiers(t *testing.T) {
	st, err := Parse("SELECT index, latency FROM register WHERE table_ = 1 AND index >= 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Select) != 2 || st.Select[0].Col != "index" || st.From[0].Source != "register" {
		t.Errorf("parsed %+v", st)
	}
}

// TestParseRejectsRegister: the SELECT-only entry point refuses a REGISTER
// statement instead of misparsing it.
func TestParseRejectsRegister(t *testing.T) {
	if _, err := Parse("REGISTER TABLE p FROM 'p.csv'"); err == nil {
		t.Fatal("Parse must reject REGISTER statements")
	}
}

// --- INSERT INTO ---

func TestParseInsert(t *testing.T) {
	st, err := ParseStatement("insert into t values (1, 'it''s'), (-2, NULL)")
	if err != nil {
		t.Fatal(err)
	}
	ins, ok := st.(*InsertStmt)
	if !ok {
		t.Fatalf("parsed %T, want *InsertStmt", st)
	}
	if ins.Table != "t" || len(ins.Rows) != 2 {
		t.Fatalf("parsed %+v", ins)
	}
	r0, r1 := ins.Rows[0], ins.Rows[1]
	if r0[0].Kind != OpInt || r0[0].Int != 1 || r0[1].Kind != OpStr || r0[1].Str != "it's" {
		t.Errorf("row 0 = %+v", r0)
	}
	if r1[0].Kind != OpInt || r1[0].Int != -2 || r1[1].Kind != OpNull {
		t.Errorf("row 1 = %+v", r1)
	}
	rows := ins.RowValues()
	if len(rows) != 2 || rows[0][0].I != 1 || rows[0][1].S != "it's" || !rows[1][1].IsNull() {
		t.Errorf("RowValues = %v", rows)
	}
	// Canonical form reparses to the same statement.
	canon := ins.Canonical()
	if canon != "INSERT INTO t VALUES (1, 'it''s'), (-2, NULL)" {
		t.Errorf("canonical = %q", canon)
	}
	again, err := ParseStatement(canon)
	if err != nil {
		t.Fatalf("reparse of canonical %q: %v", canon, err)
	}
	if re := again.(*InsertStmt).Canonical(); re != canon {
		t.Errorf("canonical not a fixed point: %q -> %q", canon, re)
	}
}

// TestInsertWordsStayIdentifiers: INSERT/INTO/VALUES/NULL must not become
// reserved — they are valid table and column names in a SELECT.
func TestInsertWordsStayIdentifiers(t *testing.T) {
	st, err := Parse("SELECT insert, null FROM values WHERE into.null = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Select) != 2 || st.Select[0].Col != "insert" || st.From[0].Source != "values" {
		t.Errorf("parsed %+v", st)
	}
}

// TestParseInsertErrors pins the byte offsets of malformed INSERTs, the same
// way TestParseErrorPositions does for the other statement kinds.
func TestParseInsertErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"missing INTO", "INSERT t VALUES (1)", "position 7: expected INTO"},
		{"missing table", "INSERT INTO VALUES (1)", "position 19: expected VALUES"},
		{"missing VALUES", "INSERT INTO t (1, 2)", "position 14: expected VALUES"},
		{"missing rows", "INSERT INTO t VALUES", "position 20: expected '('"},
		{"empty row", "INSERT INTO t VALUES ()", "position 22: expected literal value"},
		{"trailing comma", "INSERT INTO t VALUES (1,)", "position 24: expected literal value"},
		{"column ref", "INSERT INTO t VALUES (a)", "position 22: expected literal value"},
		{"ragged rows", "INSERT INTO t VALUES (1), (2, 3)", "position 31: VALUES row 2 has 2 values, want 1"},
		{"missing comma", "INSERT INTO t VALUES (1) (2)", "position 25: unexpected"},
		{"unterminated string", "INSERT INTO t VALUES (1, 'open", "position 25: unterminated string"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseStatement(c.src)
			if err == nil {
				t.Fatalf("%q: want parse error", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("%q:\n  error = %v\n  want substring %q", c.src, err, c.want)
			}
		})
	}
}

// --- PREPARE / EXECUTE ---

func TestParsePrepareExecute(t *testing.T) {
	st, err := ParseStatement("prepare hot as SELECT r.a FROM r, s WHERE r.a = s.x LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	prep, ok := st.(*PrepareStmt)
	if !ok {
		t.Fatalf("parsed %T, want *PrepareStmt", st)
	}
	if prep.Name != "hot" || prep.Select == nil || prep.Select.Limit != 5 || len(prep.Select.From) != 2 {
		t.Errorf("parsed %+v (select %+v)", prep, prep.Select)
	}

	st, err = ParseStatement("EXECUTE hot")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := st.(*ExecuteStmt)
	if !ok {
		t.Fatalf("parsed %T, want *ExecuteStmt", st)
	}
	if ex.Name != "hot" {
		t.Errorf("name = %q", ex.Name)
	}
}

// TestPrepareExecuteWordsStayIdentifiers: like TABLE/INDEX/LATENCY, the new
// serving words must stay usable as ordinary identifiers in SELECTs.
func TestPrepareExecuteWordsStayIdentifiers(t *testing.T) {
	st, err := Parse("SELECT prepare, execute.a FROM prepare, execute AS e WHERE execute.prepare = 1")
	if err != nil {
		t.Fatal(err)
	}
	if st.Select[0].Col != "prepare" || st.From[0].Source != "prepare" {
		t.Errorf("parsed %+v", st)
	}
}

// TestCanonical: the canonical rendering normalizes whitespace and keyword
// case (so equivalent statements share one plan-cache key), preserves
// identifier case, elides aliases equal to the source, and re-quotes
// strings with ” escapes. Canonical forms must be stable under reparse.
func TestCanonical(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"select * from r", "SELECT * FROM r"},
		{
			"select  R.a ,s.y   from R, s where R.a=s.x and R.key>=2 order by R.a desc limit 3",
			"SELECT R.a, s.y FROM R, s WHERE R.a = s.x AND R.key >= 2 ORDER BY R.a DESC LIMIT 3",
		},
		{"SELECT name FROM people p WHERE name = 'O''Brien'", "SELECT name FROM people AS p WHERE name = 'O''Brien'"},
		{"SELECT a FROM r AS r", "SELECT a FROM r"},
		{"SELECT a FROM r ORDER BY a ASC LIMIT 0", "SELECT a FROM r ORDER BY a LIMIT 0"},
	}
	for _, c := range cases {
		st, err := Parse(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		got := st.Canonical()
		if got != c.want {
			t.Errorf("Canonical(%q)\n  = %q\n  want %q", c.src, got, c.want)
		}
		again, err := Parse(got)
		if err != nil {
			t.Fatalf("reparse of canonical %q: %v", got, err)
		}
		if re := again.Canonical(); re != got {
			t.Errorf("canonical not a fixed point: %q -> %q", got, re)
		}
	}
}
