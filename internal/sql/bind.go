// bind.go resolves a parsed statement against a catalog of sources into the
// engine's query model: FROM aliases become table positions (a source
// appearing under two aliases is a self-join — both positions share the
// source's data, and at execution time both positions get their own SteM;
// sharing one SteM across self-join instances, which the paper notes is
// possible, is left to the engine's future work), WHERE comparisons become
// predicates, and each alias receives the access methods its source
// declares.
package sql

import (
	"fmt"
	"sort"

	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/tuple"
	"repro/internal/value"
)

// Source is one catalog entry: data plus the access methods the source
// supports. At least one access method is required.
type Source struct {
	Data *source.Table
	// Scan, when non-nil, declares a scan access method.
	Scan *source.ScanSpec
	// Indexes declare index access methods.
	Indexes []source.IndexSpec
}

// Catalog resolves source names.
type Catalog interface {
	// Source returns the named source, or false.
	Source(name string) (Source, bool)
}

// MapCatalog is a Catalog backed by a map.
type MapCatalog map[string]Source

// Source implements Catalog.
func (m MapCatalog) Source(name string) (Source, bool) {
	s, ok := m[name]
	return s, ok
}

// OutputCol is one projected column of the bound query.
type OutputCol struct {
	// Name is the display label, "alias.column".
	Name string
	// Table and Col locate the value in result tuples.
	Table int
	Col   int
}

// BoundOrder is one resolved ORDER BY key.
type BoundOrder struct {
	Table int
	Col   int
	Desc  bool
}

// Bound is a fully resolved statement ready to execute.
type Bound struct {
	Q *query.Q
	// Output is the projection list in SELECT order (all columns of all
	// tables, FROM order, for SELECT *).
	Output []OutputCol
	// OrderBy are the resolved ordering keys; Limit is -1 for no limit.
	// Both are applied above the eddy via Arrange.
	OrderBy []BoundOrder
	Limit   int
}

// Arrange applies the statement's ORDER BY and LIMIT to completed result
// tuples — the "above the eddy, before results are output to the user"
// layer of the paper's footnote 1. The sort is stable, preserving emission
// order among ties (the online arrival order).
func (b *Bound) Arrange(rows []*tuple.Tuple) []*tuple.Tuple {
	out := append([]*tuple.Tuple(nil), rows...)
	if len(b.OrderBy) > 0 {
		sort.SliceStable(out, func(i, j int) bool {
			for _, k := range b.OrderBy {
				c := out[i].Value(k.Table, k.Col).Compare(out[j].Value(k.Table, k.Col))
				if c == 0 {
					continue
				}
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if b.Limit >= 0 && len(out) > b.Limit {
		out = out[:b.Limit]
	}
	return out
}

// RowValues converts an INSERT statement's literal rows to engine rows.
// Schema validation (arity, column kinds) is the appending catalog's job.
func (s *InsertStmt) RowValues() []tuple.Row {
	rows := make([]tuple.Row, len(s.Rows))
	for i, r := range s.Rows {
		row := make(tuple.Row, len(r))
		for j, o := range r {
			switch o.Kind {
			case OpInt:
				row[j] = value.NewInt(o.Int)
			case OpStr:
				row[j] = value.NewStr(o.Str)
			default:
				row[j] = value.NewNull()
			}
		}
		rows[i] = row
	}
	return rows
}

// Bind resolves the statement against the catalog.
func Bind(st *Stmt, cat Catalog) (*Bound, error) {
	if len(st.From) == 0 {
		return nil, fmt.Errorf("sql: empty FROM list")
	}
	// Resolve FROM entries.
	aliasPos := make(map[string]int)
	var tables []*schema.Table
	var ams []query.AMDecl
	for i, ref := range st.From {
		if _, dup := aliasPos[ref.Alias]; dup {
			return nil, fmt.Errorf("sql: duplicate alias %q in FROM", ref.Alias)
		}
		src, ok := cat.Source(ref.Source)
		if !ok {
			return nil, fmt.Errorf("sql: unknown source %q", ref.Source)
		}
		aliasPos[ref.Alias] = i
		// Present the table under its alias so diagnostics read naturally.
		aliased := &schema.Table{Name: ref.Alias, Cols: src.Data.Schema.Cols}
		tables = append(tables, aliased)
		if src.Scan != nil {
			ams = append(ams, query.AMDecl{Table: i, Kind: query.Scan, Data: src.Data, ScanSpec: *src.Scan})
		}
		for _, ix := range src.Indexes {
			ams = append(ams, query.AMDecl{Table: i, Kind: query.Index, Data: src.Data, IndexSpec: ix})
		}
		if src.Scan == nil && len(src.Indexes) == 0 {
			return nil, fmt.Errorf("sql: source %q declares no access methods", ref.Source)
		}
	}

	resolve := func(c ColRef) (int, int, error) {
		if c.Table != "" {
			ti, ok := aliasPos[c.Table]
			if !ok {
				return 0, 0, fmt.Errorf("sql: unknown table alias %q", c.Table)
			}
			ci := tables[ti].ColIndex(c.Col)
			if ci < 0 {
				return 0, 0, fmt.Errorf("sql: no column %q in %q", c.Col, c.Table)
			}
			return ti, ci, nil
		}
		// Unqualified: must be unambiguous across the FROM list.
		ti, ci := -1, -1
		for i, tb := range tables {
			if j := tb.ColIndex(c.Col); j >= 0 {
				if ti >= 0 {
					return 0, 0, fmt.Errorf("sql: column %q is ambiguous", c.Col)
				}
				ti, ci = i, j
			}
		}
		if ti < 0 {
			return 0, 0, fmt.Errorf("sql: unknown column %q", c.Col)
		}
		return ti, ci, nil
	}

	// Predicates.
	var preds []pred.P
	for _, c := range st.Where {
		p, err := bindCond(c, resolve)
		if err != nil {
			return nil, err
		}
		preds = append(preds, p)
	}

	// Projection.
	var out []OutputCol
	if st.Star {
		for ti, tb := range tables {
			for ci, col := range tb.Cols {
				out = append(out, OutputCol{Name: tb.Name + "." + col.Name, Table: ti, Col: ci})
			}
		}
	} else {
		for _, c := range st.Select {
			ti, ci, err := resolve(c)
			if err != nil {
				return nil, err
			}
			out = append(out, OutputCol{Name: tables[ti].Name + "." + tables[ti].Cols[ci].Name, Table: ti, Col: ci})
		}
	}

	// ORDER BY keys.
	var orderBy []BoundOrder
	for _, o := range st.OrderBy {
		ti, ci, err := resolve(o.Col)
		if err != nil {
			return nil, err
		}
		orderBy = append(orderBy, BoundOrder{Table: ti, Col: ci, Desc: o.Desc})
	}

	q, err := query.New(tables, preds, ams)
	if err != nil {
		return nil, err
	}
	return &Bound{Q: q, Output: out, OrderBy: orderBy, Limit: st.Limit}, nil
}

func bindCond(c Cond, resolve func(ColRef) (int, int, error)) (pred.P, error) {
	op, err := bindOp(c.Op)
	if err != nil {
		return pred.P{}, err
	}
	l, r := c.Left, c.Right
	// Normalize "const op col" to "col flipped-op const".
	if l.Kind != OpCol && r.Kind == OpCol {
		l, r = r, l
		op = op.Flip()
	}
	if l.Kind != OpCol {
		return pred.P{}, fmt.Errorf("sql: comparison between two constants is not supported")
	}
	lt, lc, err := resolve(l.Col)
	if err != nil {
		return pred.P{}, err
	}
	switch r.Kind {
	case OpCol:
		rt, rc, err := resolve(r.Col)
		if err != nil {
			return pred.P{}, err
		}
		if rt == lt {
			return pred.P{}, fmt.Errorf("sql: predicate %s %s %s references one table; single-table comparisons must compare against a constant", l.Col, c.Op, r.Col)
		}
		return pred.Join(lt, lc, op, rt, rc), nil
	case OpInt:
		return pred.Selection(lt, lc, op, value.NewInt(r.Int)), nil
	default:
		return pred.Selection(lt, lc, op, value.NewStr(r.Str)), nil
	}
}

func bindOp(op string) (pred.Op, error) {
	switch op {
	case "=":
		return pred.Eq, nil
	case "<>":
		return pred.Ne, nil
	case "<":
		return pred.Lt, nil
	case "<=":
		return pred.Le, nil
	case ">":
		return pred.Gt, nil
	case ">=":
		return pred.Ge, nil
	default:
		return 0, fmt.Errorf("sql: unknown operator %q", op)
	}
}
