// parser.go builds the AST for the SPJ dialect:
//
//	SELECT ( '*' | colref (',' colref)* )
//	FROM   table [AS alias] (',' table [AS alias])*
//	WHERE  comparison (AND comparison)*
//
//	comparison := operand ( = | <> | != | < | <= | > | >= ) operand
//	operand    := [alias '.'] column | integer | 'string'
//
// and the statements of the serving layer:
//
//	REGISTER TABLE name FROM 'path.csv' ( INDEX column LATENCY duration )*
//	PREPARE name AS select-statement
//	EXECUTE name
//	INSERT INTO name VALUES ( literal (',' literal)* ) (',' ( ... ))*
//
// REGISTER, TABLE, INDEX, LATENCY, PREPARE, EXECUTE, INSERT, INTO, VALUES,
// and NULL are contextual words — they stay usable as column and table
// identifiers inside SELECT statements. Only SELECTs can be prepared:
// PREPARE names a statement so the server can cache its bound plan and
// execute it repeatedly without re-parsing or re-binding. INSERT rows are
// literals only (integers, quoted strings, NULL); schema validation happens
// at append time against the registered table.
//
// Parse errors report the byte offset of the offending token ("position
// N"); statements are single-line, so the offset is also the 0-based
// column.
package sql

import (
	"fmt"
	"strings"
	"time"
)

// Statement is any parsed statement: *Stmt (a SELECT), *RegisterStmt
// (a catalog registration), *PrepareStmt, *ExecuteStmt, or *InsertStmt
// (a live append to a registered table).
type Statement interface{ isStatement() }

func (*Stmt) isStatement()         {}
func (*RegisterStmt) isStatement() {}
func (*PrepareStmt) isStatement()  {}
func (*ExecuteStmt) isStatement()  {}
func (*InsertStmt) isStatement()   {}

// InsertStmt is a parsed INSERT INTO statement: it appends literal rows to
// a registered catalog table. Execution (schema validation, table
// versioning) is the catalog owner's job, not the parser's.
type InsertStmt struct {
	// Table is the catalog name of the target table.
	Table string
	// Rows are the literal VALUES tuples in statement order. Operands are
	// OpInt, OpStr, or OpNull — never OpCol.
	Rows [][]Operand
}

// PrepareStmt is a parsed PREPARE name AS select statement: it asks the
// executor to remember the SELECT under the given name so later EXECUTEs
// skip parsing and (on the server) binding and engine construction.
type PrepareStmt struct {
	// Name is the name the statement is prepared under.
	Name string
	// Select is the prepared SELECT.
	Select *Stmt
}

// ExecuteStmt is a parsed EXECUTE name statement: it runs a previously
// prepared SELECT.
type ExecuteStmt struct {
	// Name is the prepared statement's name.
	Name string
}

// RegisterStmt is a parsed REGISTER TABLE statement: it asks the serving
// layer to load a CSV file into the shared catalog under the given name,
// optionally declaring asynchronous index access methods over single
// columns. Execution (file IO, schema inference) is the catalog owner's
// job, not the parser's.
type RegisterStmt struct {
	// Name is the catalog name the table registers under.
	Name string
	// Path is the CSV path as written (resolution against a data directory
	// is the executor's concern).
	Path string
	// Indexes declare index access methods to build over the loaded table.
	Indexes []RegisterIndex
}

// RegisterIndex is one INDEX clause of a REGISTER TABLE statement.
type RegisterIndex struct {
	// Col is the key column name.
	Col string
	// Latency is the modeled per-lookup round-trip cost.
	Latency time.Duration
}

// Stmt is a parsed SELECT statement.
type Stmt struct {
	// Star is true for SELECT *.
	Star bool
	// Select lists the projected columns when Star is false.
	Select []ColRef
	// From lists the referenced sources with their binding aliases.
	From []TableRef
	// Where is the conjunction of comparisons (possibly empty).
	Where []Cond
	// OrderBy lists the result ordering keys (applied above the eddy: the
	// adaptive dataflow itself is unordered).
	OrderBy []OrderItem
	// Limit bounds the result count; negative means no limit.
	Limit int
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Col  ColRef
	Desc bool
}

// TableRef is one FROM entry. Alias equals Source when no alias was given;
// two entries may share a Source (a self-join) but aliases must be unique.
type TableRef struct {
	Source string
	Alias  string
}

// ColRef names a column, optionally qualified by a FROM alias.
type ColRef struct {
	Table string // empty = unqualified
	Col   string
}

// String renders the reference.
func (c ColRef) String() string {
	if c.Table == "" {
		return c.Col
	}
	return c.Table + "." + c.Col
}

// OperandKind classifies comparison operands.
type OperandKind uint8

const (
	// OpCol is a column reference.
	OpCol OperandKind = iota
	// OpInt is an integer literal.
	OpInt
	// OpStr is a string literal.
	OpStr
	// OpNull is the NULL literal; it appears only in INSERT rows (a WHERE
	// comparison against NULL has no defined semantics in this dialect).
	OpNull
)

// Operand is one side of a comparison.
type Operand struct {
	Kind OperandKind
	Col  ColRef
	Int  int64
	Str  string
}

// Cond is one comparison in the WHERE conjunction. Op is the SQL spelling
// ("=", "<>", "<", "<=", ">", ">=").
type Cond struct {
	Left  Operand
	Op    string
	Right Operand
}

type parser struct {
	toks []token
	i    int
}

// Parse parses one SELECT statement.
func Parse(src string) (*Stmt, error) {
	st, err := ParseStatement(src)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*Stmt)
	if !ok {
		return nil, fmt.Errorf("sql: expected a SELECT statement")
	}
	return sel, nil
}

// ParseStatement parses one statement of any kind: a SELECT (returned as
// *Stmt) or a REGISTER TABLE (returned as *RegisterStmt).
func ParseStatement(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var st Statement
	switch {
	case p.atWord("REGISTER"):
		st, err = p.register()
	case p.atWord("PREPARE"):
		st, err = p.prepare()
	case p.atWord("EXECUTE"):
		st, err = p.execute()
	case p.atWord("INSERT"):
		st, err = p.insert()
	default:
		st, err = p.stmt()
	}
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errAt("unexpected %s after statement", p.cur())
	}
	return st, nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

// errAt wraps a parse error with the byte offset of the current token.
func (p *parser) errAt(format string, args ...any) error {
	return fmt.Errorf("sql: position %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) at(k tokKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

// atWord reports whether the current token is the given contextual word —
// an identifier (or keyword) matched case-insensitively, so serving-layer
// words like TABLE stay usable as ordinary identifiers elsewhere.
func (p *parser) atWord(w string) bool {
	t := p.cur()
	return (t.kind == tokIdent || t.kind == tokKeyword) && strings.EqualFold(t.text, w)
}

func (p *parser) acceptWord(w string) bool {
	if p.atWord(w) {
		p.i++
		return true
	}
	return false
}

func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, text, what string) (token, error) {
	if p.at(k, text) {
		return p.next(), nil
	}
	return token{}, p.errAt("expected %s, got %s", what, p.cur())
}

// register parses REGISTER TABLE name FROM 'path' (INDEX col LATENCY d)*.
// The leading REGISTER word has been recognized but not consumed.
func (p *parser) register() (*RegisterStmt, error) {
	p.next() // REGISTER
	if !p.acceptWord("TABLE") {
		return nil, p.errAt("expected TABLE, got %s", p.cur())
	}
	name, err := p.expect(tokIdent, "", "table name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "FROM", "FROM"); err != nil {
		return nil, err
	}
	path, err := p.expect(tokString, "", "quoted CSV path")
	if err != nil {
		return nil, err
	}
	st := &RegisterStmt{Name: name.text, Path: path.text}
	for p.acceptWord("INDEX") {
		col, err := p.expect(tokIdent, "", "index column")
		if err != nil {
			return nil, err
		}
		if !p.acceptWord("LATENCY") {
			return nil, p.errAt("expected LATENCY, got %s", p.cur())
		}
		d, err := p.duration()
		if err != nil {
			return nil, err
		}
		st.Indexes = append(st.Indexes, RegisterIndex{Col: col.text, Latency: d})
	}
	return st, nil
}

// prepare parses PREPARE name AS select. The leading PREPARE word has been
// recognized but not consumed. Only SELECTs can be prepared: a REGISTER
// mutates the catalog and has nothing reusable to cache.
func (p *parser) prepare() (*PrepareStmt, error) {
	p.next() // PREPARE
	name, err := p.expect(tokIdent, "", "prepared statement name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "AS", "AS"); err != nil {
		return nil, err
	}
	if p.atWord("REGISTER") {
		return nil, p.errAt("cannot prepare a REGISTER statement (only SELECT)")
	}
	sel, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return &PrepareStmt{Name: name.text, Select: sel}, nil
}

// execute parses EXECUTE name. The leading EXECUTE word has been
// recognized but not consumed.
func (p *parser) execute() (*ExecuteStmt, error) {
	p.next() // EXECUTE
	name, err := p.expect(tokIdent, "", "prepared statement name")
	if err != nil {
		return nil, err
	}
	return &ExecuteStmt{Name: name.text}, nil
}

// insert parses INSERT INTO name VALUES (lit, ...)(, (lit, ...))*. The
// leading INSERT word has been recognized but not consumed.
func (p *parser) insert() (*InsertStmt, error) {
	p.next() // INSERT
	if !p.acceptWord("INTO") {
		return nil, p.errAt("expected INTO, got %s", p.cur())
	}
	name, err := p.expect(tokIdent, "", "table name")
	if err != nil {
		return nil, err
	}
	if !p.acceptWord("VALUES") {
		return nil, p.errAt("expected VALUES, got %s", p.cur())
	}
	st := &InsertStmt{Table: name.text}
	for {
		if _, err := p.expect(tokSymbol, "(", "'('"); err != nil {
			return nil, err
		}
		var row []Operand
		for {
			o, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, o)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		closing := p.cur()
		if _, err := p.expect(tokSymbol, ")", "')'"); err != nil {
			return nil, err
		}
		if len(st.Rows) > 0 && len(row) != len(st.Rows[0]) {
			return nil, fmt.Errorf("sql: position %d: VALUES row %d has %d values, want %d",
				closing.pos, len(st.Rows)+1, len(row), len(st.Rows[0]))
		}
		st.Rows = append(st.Rows, row)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	return st, nil
}

// literal parses one INSERT value: an integer, a quoted string, or NULL.
// Column references are not literals — an INSERT row carries data, not
// expressions.
func (p *parser) literal() (Operand, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		return Operand{Kind: OpInt, Int: intFromDigits(t.text)}, nil
	case t.kind == tokString:
		p.next()
		return Operand{Kind: OpStr, Str: t.text}, nil
	case p.atWord("NULL"):
		p.next()
		return Operand{Kind: OpNull}, nil
	default:
		return Operand{}, p.errAt("expected literal value, got %s", t)
	}
}

// duration parses a latency: either a quoted Go duration ('200ms') or a
// number immediately followed by its unit (200ms, which lexes as the number
// 200 and the identifier ms).
func (p *parser) duration() (time.Duration, error) {
	t := p.cur()
	switch t.kind {
	case tokString:
		p.next()
		d, err := time.ParseDuration(t.text)
		if err != nil || d < 0 {
			return 0, fmt.Errorf("sql: position %d: bad duration %q (want a non-negative Go duration)", t.pos, t.text)
		}
		return d, nil
	case tokNumber:
		p.next()
		if p.cur().kind != tokIdent {
			return 0, fmt.Errorf("sql: position %d: duration %s needs a unit (e.g. %sms)", t.pos, t.text, t.text)
		}
		unit := p.next()
		d, err := time.ParseDuration(t.text + unit.text)
		if err != nil || d < 0 {
			return 0, fmt.Errorf("sql: position %d: bad duration %q (want a non-negative Go duration)", t.pos, t.text+unit.text)
		}
		return d, nil
	default:
		return 0, p.errAt("expected duration, got %s", t)
	}
}

func (p *parser) stmt() (*Stmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT", "SELECT"); err != nil {
		return nil, err
	}
	st := &Stmt{}
	switch {
	case p.accept(tokSymbol, "*"):
		st.Star = true
	default:
		for {
			c, err := p.colRef()
			if err != nil {
				return nil, err
			}
			st.Select = append(st.Select, c)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}

	if _, err := p.expect(tokKeyword, "FROM", "FROM"); err != nil {
		return nil, err
	}
	for {
		name, err := p.expect(tokIdent, "", "table name")
		if err != nil {
			return nil, err
		}
		ref := TableRef{Source: name.text, Alias: name.text}
		if p.accept(tokKeyword, "AS") {
			al, err := p.expect(tokIdent, "", "alias")
			if err != nil {
				return nil, err
			}
			ref.Alias = al.text
		} else if p.cur().kind == tokIdent { // implicit alias: FROM R r
			ref.Alias = p.next().text
		}
		st.From = append(st.From, ref)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}

	if p.accept(tokKeyword, "WHERE") {
		for {
			c, err := p.cond()
			if err != nil {
				return nil, err
			}
			st.Where = append(st.Where, c)
			if !p.accept(tokKeyword, "AND") {
				break
			}
		}
	}

	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY", "BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.colRef()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: c}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			st.OrderBy = append(st.OrderBy, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}

	st.Limit = -1
	if p.accept(tokKeyword, "LIMIT") {
		n, err := p.expect(tokNumber, "", "limit count")
		if err != nil {
			return nil, err
		}
		v := 0
		for _, ch := range n.text {
			if ch == '-' {
				return nil, fmt.Errorf("sql: position %d: negative LIMIT", n.pos)
			}
			v = v*10 + int(ch-'0')
		}
		st.Limit = v
	}
	return st, nil
}

func (p *parser) colRef() (ColRef, error) {
	id, err := p.expect(tokIdent, "", "column reference")
	if err != nil {
		return ColRef{}, err
	}
	if p.accept(tokSymbol, ".") {
		col, err := p.expect(tokIdent, "", "column name")
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Table: id.text, Col: col.text}, nil
	}
	return ColRef{Col: id.text}, nil
}

func (p *parser) operand() (Operand, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.next()
		return Operand{Kind: OpInt, Int: intFromDigits(t.text)}, nil
	case tokString:
		p.next()
		return Operand{Kind: OpStr, Str: t.text}, nil
	case tokIdent:
		c, err := p.colRef()
		if err != nil {
			return Operand{}, err
		}
		return Operand{Kind: OpCol, Col: c}, nil
	default:
		return Operand{}, p.errAt("expected operand, got %s", t)
	}
}

// intFromDigits converts a lexed number token (digits with an optional
// leading '-') to an int64.
func intFromDigits(s string) int64 {
	var v int64
	neg := false
	if s[0] == '-' {
		neg = true
		s = s[1:]
	}
	for _, ch := range s {
		v = v*10 + int64(ch-'0')
	}
	if neg {
		v = -v
	}
	return v
}

func (p *parser) cond() (Cond, error) {
	l, err := p.operand()
	if err != nil {
		return Cond{}, err
	}
	op, err := p.expect(tokOp, "", "comparison operator")
	if err != nil {
		return Cond{}, err
	}
	r, err := p.operand()
	if err != nil {
		return Cond{}, err
	}
	return Cond{Left: l, Op: op.text, Right: r}, nil
}
