package sql

// FuzzParseStatement hammers the statement parser with arbitrary input: it
// must either return a statement or an error — never panic, never loop — and
// anything it accepts must be stable under one reparse of its own source
// (parse is deterministic). The seed corpus is the table-driven malformed
// cases plus representative valid statements, so mutation starts near the
// grammar's edges.

import (
	"testing"
	"unicode/utf8"
)

func FuzzParseStatement(f *testing.F) {
	seeds := []string{
		// Valid statements of both kinds.
		"SELECT * FROM r",
		"SELECT r.a, s.y FROM r, s WHERE r.a = s.x AND r.key >= 2 ORDER BY r.a DESC LIMIT 3",
		"SELECT name FROM people WHERE name = 'O''Brien'",
		"REGISTER TABLE people FROM 'data/people.csv'",
		"register table t from 'x.csv' index id latency 200ms index name latency '1s'",
		"PREPARE hot AS SELECT r.a FROM r, s WHERE r.a = s.x LIMIT 5",
		"prepare p1 as select * from people where name = 'O''Brien'",
		"EXECUTE hot",
		"execute p1",
		"SELECT prepare, execute FROM prepare WHERE execute.prepare = 1",
		"INSERT INTO t VALUES (1, 'x')",
		"insert into t values (1, 'it''s'), (-2, NULL), (3, 'z')",
		"SELECT insert, null FROM values WHERE into.null = 1",
		// The malformed table-driven cases.
		"",
		"FROM r",
		"SELECT FROM r",
		"SELECT * FROM",
		"SELECT * FROM r WHERE",
		"SELECT * FROM r WHERE a =",
		"SELECT * FROM r extra garbage =",
		"SELECT a. FROM r",
		"SELECT * FROM r WHERE name = 'oops",
		"SELECT * FROM r WHERE a = 1 AND",
		"SELEC * FROM r",
		"SELECT * FORM r",
		"SELECT * FROM r WHERE a = $",
		"SELECT * FROM r WHERE = 1",
		"SELECT * FROM r WHERE a = 1 1",
		"SELECT * FROM r LIMIT -3",
		"REGISTER people FROM 'p.csv'",
		"REGISTER TABLE p FROM p.csv",
		"REGISTER TABLE p FROM 'p.csv' INDEX id LATENCY 200",
		"REGISTER TABLE p FROM 'p.csv' INDEX id LATENCY 'soon'",
		"REGISTER TABLE p FROM 'p.csv' INDEX id LATENCY -50ms",
		"REGISTER TABLE p FROM 'p.csv' INDEX id 200ms",
		"PREPARE",
		"PREPARE AS SELECT * FROM r",
		"PREPARE p SELECT * FROM r",
		"PREPARE p AS",
		"PREPARE p AS REGISTER TABLE t FROM 't.csv'",
		"PREPARE p AS EXECUTE q",
		"EXECUTE",
		"EXECUTE 'name'",
		"EXECUTE p extra",
		"INSERT t VALUES (1)",
		"INSERT INTO t (1, 2)",
		"INSERT INTO t VALUES",
		"INSERT INTO t VALUES ()",
		"INSERT INTO t VALUES (1,)",
		"INSERT INTO t VALUES (1) (2)",
		"INSERT INTO t VALUES (a)",
		"INSERT INTO t VALUES (1), (2, 3)",
		"INSERT INTO t VALUES (1, 'open",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := ParseStatement(src)
		if err != nil {
			if st != nil {
				t.Fatalf("error %v alongside a non-nil statement", err)
			}
			if utf8.ValidString(src) && err.Error() == "" {
				t.Fatal("empty error message")
			}
			return
		}
		if st == nil {
			t.Fatal("nil statement without error")
		}
	})
}
