// Package sql is a small SQL front-end for the select-project-join dialect
// the paper's system executes: SELECT list, FROM list with aliases (enabling
// self-joins, which share one SteM per source — Section 2.2), and a WHERE
// conjunction of comparisons. The binder turns a parsed statement into the
// engine's query model against a catalog of sources.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // , ( ) .
	tokOp      // = <> != < <= > >=
	tokKeyword // SELECT FROM WHERE AND AS
)

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "AS": true,
	"ORDER": true, "BY": true, "LIMIT": true, "ASC": true, "DESC": true,
}

type token struct {
	kind tokKind
	text string // keywords upper-cased; idents as written
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex tokenizes the statement; errors carry byte positions.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ',' || c == '(' || c == ')' || c == '.' || c == '*':
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		case c == '=':
			toks = append(toks, token{kind: tokOp, text: "=", pos: i})
			i++
		case c == '<':
			switch {
			case strings.HasPrefix(src[i:], "<="):
				toks = append(toks, token{kind: tokOp, text: "<=", pos: i})
				i += 2
			case strings.HasPrefix(src[i:], "<>"):
				toks = append(toks, token{kind: tokOp, text: "<>", pos: i})
				i += 2
			default:
				toks = append(toks, token{kind: tokOp, text: "<", pos: i})
				i++
			}
		case c == '>':
			if strings.HasPrefix(src[i:], ">=") {
				toks = append(toks, token{kind: tokOp, text: ">=", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokOp, text: ">", pos: i})
				i++
			}
		case c == '!':
			if strings.HasPrefix(src[i:], "!=") {
				toks = append(toks, token{kind: tokOp, text: "<>", pos: i})
				i += 2
			} else {
				return nil, fmt.Errorf("sql: position %d: unexpected %q", i, c)
			}
		case c == '\'':
			j := i + 1
			var b strings.Builder
			for {
				if j >= len(src) {
					return nil, fmt.Errorf("sql: position %d: unterminated string", i)
				}
				if src[j] == '\'' {
					if j+1 < len(src) && src[j+1] == '\'' { // escaped quote
						b.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				b.WriteByte(src[j])
				j++
			}
			toks = append(toks, token{kind: tokString, text: b.String(), pos: i})
			i = j + 1
		case c == '-' || (c >= '0' && c <= '9'):
			j := i
			if c == '-' {
				j++
				if j >= len(src) || src[j] < '0' || src[j] > '9' {
					return nil, fmt.Errorf("sql: position %d: unexpected '-'", i)
				}
			}
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: src[i:j], pos: i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			word := src[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tokKeyword, text: up, pos: i})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: i})
			}
			i = j
		default:
			return nil, fmt.Errorf("sql: position %d: unexpected %q", i, c)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(src)})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
