// canonical.go renders a parsed SELECT back to a normalized string: upper
// case keywords, single spaces, aliases only where they differ from the
// source name, strings re-quoted with ” escapes. Two statements that parse
// to the same AST canonicalize identically, so the canonical form is the
// plan-cache key of the serving layer — a client may vary whitespace and
// keyword case freely and still hit the same cached plan. Identifiers are
// case-sensitive in this dialect and are rendered as written.
package sql

import (
	"strconv"
	"strings"
)

// Canonical renders the statement in normalized form, suitable as a cache
// key: parse(s).Canonical() == parse(t).Canonical() exactly when s and t
// are the same statement up to whitespace and keyword case.
func (s *Stmt) Canonical() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Star {
		b.WriteByte('*')
	} else {
		for i, c := range s.Select {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	b.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Source)
		if t.Alias != t.Source {
			b.WriteString(" AS ")
			b.WriteString(t.Alias)
		}
	}
	if len(s.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, c := range s.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			writeOperand(&b, c.Left)
			b.WriteByte(' ')
			b.WriteString(c.Op)
			b.WriteByte(' ')
			writeOperand(&b, c.Right)
		}
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Col.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(strconv.Itoa(s.Limit))
	}
	return b.String()
}

// Canonical renders an INSERT statement in the same normalized style:
// upper-case words, single spaces, strings re-quoted with ” escapes.
func (s *InsertStmt) Canonical() string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(s.Table)
	b.WriteString(" VALUES ")
	for i, r := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for j, o := range r {
			if j > 0 {
				b.WriteString(", ")
			}
			writeOperand(&b, o)
		}
		b.WriteByte(')')
	}
	return b.String()
}

func writeOperand(b *strings.Builder, o Operand) {
	switch o.Kind {
	case OpCol:
		b.WriteString(o.Col.String())
	case OpInt:
		b.WriteString(strconv.FormatInt(o.Int, 10))
	case OpStr:
		b.WriteByte('\'')
		b.WriteString(strings.ReplaceAll(o.Str, "'", "''"))
		b.WriteByte('\'')
	case OpNull:
		b.WriteString("NULL")
	}
}
