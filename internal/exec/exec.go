// Package exec implements the two baseline query architectures of Figure 1:
//
//   - Static (Figure 1a): a traditional, statically chosen query plan — scan
//     AMs feeding a fixed pipeline of encapsulated join operators.
//   - JoinEddy (Figure 1b): the architecture of the original eddies paper
//     [2] — the same fixed join tree, but with selections broken out into
//     modules and an eddy adaptively ordering each tuple's visits.
//
// Both run on the eddy package's engines via the Routing interface, so the
// experiment harness compares all three architectures under identical
// source and cost models.
package exec

import (
	"fmt"
	"sync/atomic"

	"repro/internal/am"
	"repro/internal/eddy"
	"repro/internal/flow"
	"repro/internal/join"
	"repro/internal/policy"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/sm"
	"repro/internal/tuple"
)

// Config assembles a baseline executor.
type Config struct {
	Q *query.Q
	// Stages are the join operators in pipeline order.
	Stages []join.Stage
	// Policy is used by JoinEddy to order selections; nil means fixed.
	Policy policy.Policy
	// Profile provides module costs; nil means eddy.DefaultProfile.
	Profile *eddy.Profile
	// AdaptiveSelections breaks selections into SM modules (JoinEddy mode);
	// otherwise selections are pushed into the scan AMs (Static mode).
	AdaptiveSelections bool
}

// Baseline routes tuples through scan AMs and a fixed join pipeline.
type Baseline struct {
	q      *query.Q
	stages []join.Stage
	pol    policy.Policy

	modules  []flow.Module
	amMods   []int // module index per scan AM
	stageMod []int // module index per stage
	smMod    []int // module index per predicate (-1 when none)

	stuck atomic.Uint64
}

// New builds a baseline executor. Only scan AMs are instantiated: index
// access paths live inside IndexJoin stages, exactly as in a traditional
// plan.
func New(cfg Config) (*Baseline, error) {
	b := &Baseline{q: cfg.Q, stages: cfg.Stages}
	if cfg.Policy != nil {
		b.pol = cfg.Policy
	} else {
		b.pol = policy.NewFixed()
	}
	prof := eddy.DefaultProfile()
	if cfg.Profile != nil {
		prof = *cfg.Profile
	}
	for ai, decl := range cfg.Q.AMs {
		if decl.Kind != query.Scan {
			continue // index paths are encapsulated in IndexJoin stages
		}
		a, err := am.New(am.Config{
			Q:               cfg.Q,
			AMIndex:         ai,
			DispatchCost:    prof.AMDispatchCost,
			ApplySelections: !cfg.AdaptiveSelections,
		})
		if err != nil {
			return nil, err
		}
		b.amMods = append(b.amMods, len(b.modules))
		b.modules = append(b.modules, a)
	}
	for _, st := range cfg.Stages {
		b.stageMod = append(b.stageMod, len(b.modules))
		b.modules = append(b.modules, st)
	}
	b.smMod = make([]int, len(cfg.Q.Preds))
	for i := range b.smMod {
		b.smMod[i] = -1
	}
	if cfg.AdaptiveSelections {
		for _, p := range cfg.Q.Preds {
			if p.IsJoin() {
				continue
			}
			m := sm.New(p, prof.SMCost)
			b.smMod[p.ID] = len(b.modules)
			b.modules = append(b.modules, m)
		}
	}
	return b, nil
}

// Modules implements eddy.Routing.
func (b *Baseline) Modules() []flow.Module { return b.modules }

// Policy implements eddy.Routing.
func (b *Baseline) Policy() policy.Policy { return b.pol }

// Stuck returns the number of tuples dropped with no applicable stage other
// than scan EOTs (which baselines discard by design).
func (b *Baseline) Stuck() uint64 { return b.stuck.Load() }

// Seeds implements eddy.Routing.
func (b *Baseline) Seeds() []*tuple.Tuple {
	n := b.q.NumTables()
	var out []*tuple.Tuple
	for _, mod := range b.amMods {
		out = append(out, tuple.NewSeed(n, mod))
	}
	return out
}

// Route implements eddy.Routing.
func (b *Baseline) Route(t *tuple.Tuple, env policy.Env) eddy.Decision {
	if t.Seed {
		return eddy.Decision{Module: t.SeedAM, Kind: policy.ProbeAM}
	}
	if t.EOT != nil {
		return eddy.Decision{Drop: true} // no SteMs to store completeness in
	}
	if t.Span == b.q.AllTables() && t.Done == b.q.AllPreds() {
		return eddy.Decision{Output: true}
	}

	var cands []policy.Candidate
	for _, p := range b.q.Preds {
		if p.IsJoin() || t.Done.Has(p.ID) || !p.ApplicableTo(t.Span) {
			continue
		}
		if mod := b.smMod[p.ID]; mod >= 0 {
			cands = append(cands, policy.Candidate{Module: mod, Kind: policy.Selection, PredID: p.ID, Table: p.Left.Table})
		}
	}
	for i, st := range b.stages {
		if st.Accepts(t) {
			cands = append(cands, policy.Candidate{Module: b.stageMod[i], Kind: policy.ProbeSteM, Table: i})
			break // fixed pipeline: the first accepting stage is the plan's choice
		}
	}
	if len(cands) == 0 {
		b.stuck.Add(1)
		return eddy.Decision{Drop: true}
	}
	choice := b.pol.Choose(t, cands, env)
	if choice < 0 || choice >= len(cands) {
		choice = 0
	}
	c := cands[choice]
	return eddy.Decision{Module: c.Module, Kind: c.Kind}
}

// RouteBatch implements eddy.Routing by deciding per tuple: the baselines'
// fixed pipelines have no partition fast path worth amortizing.
func (b *Baseline) RouteBatch(ts []*tuple.Tuple, env policy.Env, dst []eddy.Decision) []eddy.Decision {
	for _, t := range ts {
		dst = append(dst, b.Route(t, env))
	}
	return dst
}

// LeftDeepSHJ builds the stages of a left-deep pipelined binary SHJ tree
// over the given table order (Figure 2(i)): join i combines the accumulated
// span of order[0..i] with order[i+1] on an equality predicate from the
// query. All costs come from prof.
func LeftDeepSHJ(q *query.Q, order []int, prof eddy.Profile) ([]join.Stage, error) {
	if len(order) != q.NumTables() || len(order) < 2 {
		return nil, fmt.Errorf("exec: order must list all %d tables", q.NumTables())
	}
	var stages []join.Stage
	span := tuple.Single(order[0])
	for i := 1; i < len(order); i++ {
		next := order[i]
		p, ok := equiConnecting(q, span, next)
		if !ok {
			return nil, fmt.Errorf("exec: no equality predicate connects %s to table %d", span, next)
		}
		lRef, rRef := p.Left, p.Right
		if !span.Has(lRef.Table) {
			lRef, rRef = rRef, lRef
		}
		stages = append(stages, join.NewSHJ(join.SHJConfig{
			Q: q, Left: span, Right: tuple.Single(next),
			LeftRef: lRef, RightRef: rRef,
			BuildCost: prof.SteMBuildCost, ProbeCost: prof.SteMProbeCost, PerMatchCost: prof.PerMatchCost,
		}))
		span = span.With(next)
	}
	return stages, nil
}

func equiConnecting(q *query.Q, span tuple.TableSet, t int) (pred.P, bool) {
	for _, p := range q.Preds {
		if p.IsEquiJoin() && p.Connects(span, t) {
			return p, true
		}
	}
	return pred.P{}, false
}
