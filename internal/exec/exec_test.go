package exec

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/eddy"
	"repro/internal/join"
	"repro/internal/oracle"
	"repro/internal/policy"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/tuple"
	"repro/internal/value"
)

func row(vs ...int64) tuple.Row {
	r := make(tuple.Row, len(vs))
	for i, v := range vs {
		r[i] = value.NewInt(v)
	}
	return r
}

func threeTableQ(t *testing.T) *query.Q {
	t.Helper()
	rT := schema.MustTable("R", schema.IntCol("k"), schema.IntCol("a"))
	sT := schema.MustTable("S", schema.IntCol("x"), schema.IntCol("y"))
	tT := schema.MustTable("T", schema.IntCol("z"), schema.IntCol("w"))
	rData := source.MustTable(rT, []tuple.Row{row(1, 10), row(2, 20), row(3, 10)})
	sData := source.MustTable(sT, []tuple.Row{row(10, 5), row(20, 6), row(10, 6)})
	tData := source.MustTable(tT, []tuple.Row{row(5, 50), row(6, 60), row(6, 61)})
	return query.MustNew([]*schema.Table{rT, sT, tT},
		[]pred.P{
			pred.EquiJoin(0, 1, 1, 0),
			pred.EquiJoin(1, 1, 2, 0),
			pred.Selection(0, 0, pred.Le, value.NewInt(2)),
		},
		[]query.AMDecl{
			{Table: 0, Kind: query.Scan, Data: rData, ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}},
			{Table: 1, Kind: query.Scan, Data: sData, ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}},
			{Table: 2, Kind: query.Scan, Data: tData, ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}},
		})
}

func runBaseline(t *testing.T, b *Baseline, q *query.Q) {
	t.Helper()
	sim := eddy.NewSim(b)
	outs, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := make(oracle.Result)
	for _, o := range outs {
		got[o.T.ResultKey()]++
	}
	want := oracle.Compute(q)
	missing, extra := oracle.Diff(want, got)
	if len(missing) > 0 || len(extra) > 0 {
		t.Errorf("missing=%v extra=%v (got %d want %d)", missing, extra, len(got), len(want))
	}
}

func TestStaticLeftDeepSHJPipeline(t *testing.T) {
	q := threeTableQ(t)
	stages, err := LeftDeepSHJ(q, []int{0, 1, 2}, eddy.DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Q: q, Stages: stages})
	if err != nil {
		t.Fatal(err)
	}
	runBaseline(t, b, q)
	if b.Stuck() != 0 {
		t.Errorf("baseline stuck %d", b.Stuck())
	}
}

func TestJoinEddyAdaptiveSelections(t *testing.T) {
	q := threeTableQ(t)
	stages, err := LeftDeepSHJ(q, []int{0, 1, 2}, eddy.DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Q: q, Stages: stages, AdaptiveSelections: true,
		Policy: policy.NewLottery(5)})
	if err != nil {
		t.Fatal(err)
	}
	runBaseline(t, b, q)
}

func TestAlternativeJoinOrder(t *testing.T) {
	q := threeTableQ(t)
	// Right-deep order T, S, R also works.
	stages, err := LeftDeepSHJ(q, []int{2, 1, 0}, eddy.DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Q: q, Stages: stages})
	if err != nil {
		t.Fatal(err)
	}
	runBaseline(t, b, q)
}

func TestStaticWithIndexJoinStage(t *testing.T) {
	// R ⋈ S with S index-only: scan R feeds an IndexJoin stage.
	rT := schema.MustTable("R", schema.IntCol("k"), schema.IntCol("a"))
	sT := schema.MustTable("S", schema.IntCol("x"), schema.IntCol("y"))
	rData := source.MustTable(rT, []tuple.Row{row(1, 10), row(2, 20), row(3, 10)})
	sData := source.MustTable(sT, []tuple.Row{row(10, 100), row(20, 200)})
	q := query.MustNew([]*schema.Table{rT, sT},
		[]pred.P{pred.EquiJoin(0, 1, 1, 0)},
		[]query.AMDecl{
			{Table: 0, Kind: query.Scan, Data: rData, ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}},
			{Table: 1, Kind: query.Index, Data: sData,
				IndexSpec: source.IndexSpec{KeyCols: []int{0}, Latency: 10 * clock.Millisecond}},
		})
	ij, err := join.NewIndexJoin(join.IndexJoinConfig{
		Q: q, ProbeSpan: tuple.Single(0), Table: 1, Data: sData, KeyCols: []int{0},
		Latency: 10 * clock.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Q: q, Stages: []join.Stage{ij}})
	if err != nil {
		t.Fatal(err)
	}
	runBaseline(t, b, q)
}

func TestLeftDeepSHJRejectsBadOrder(t *testing.T) {
	q := threeTableQ(t)
	if _, err := LeftDeepSHJ(q, []int{0, 2, 1}, eddy.DefaultProfile()); err == nil {
		t.Error("order with no connecting predicate must be rejected")
	}
	if _, err := LeftDeepSHJ(q, []int{0}, eddy.DefaultProfile()); err == nil {
		t.Error("partial order must be rejected")
	}
}
