package experiments

import (
	"strings"
	"testing"

	"repro/internal/clock"
)

func TestFig8LatencySweepTracksWinner(t *testing.T) {
	sw, err := Fig8LatencySweep(150, []clock.Duration{30 * clock.Millisecond, 400 * clock.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.RowsOut) != 2 {
		t.Fatalf("rows = %d", len(sw.RowsOut))
	}
	for _, l := range sw.Summary {
		if strings.Contains(l, "WARNING") {
			t.Errorf("hybrid failed to track the winner: %s", l)
		}
	}
	if out := sw.Render(); !strings.Contains(out, "winner") {
		t.Error("render missing header")
	}
}

func TestFig7SelectivitySweepAdvantageGrowsWithCacheHeat(t *testing.T) {
	sw, err := Fig7SelectivitySweep(200, []int{20, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.RowsOut) != 2 {
		t.Fatalf("rows = %d", len(sw.RowsOut))
	}
	// Hotter cache (fewer keys) => larger SteM online advantage.
	hot := sw.RowsOut[0].Columns["advantage"]
	cold := sw.RowsOut[1].Columns["advantage"]
	if hot <= cold { // lexical compare works for "N.NNx" with same width
		t.Errorf("advantage should shrink with more keys: %s vs %s", hot, cold)
	}
}
