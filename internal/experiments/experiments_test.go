package experiments

import (
	"testing"

	"repro/internal/clock"
)

// The experiment tests assert the paper's *shape* claims on reduced
// workloads: who wins, where, and that all systems agree on the result set.

func TestFig7Shape(t *testing.T) {
	res, err := Fig7(Fig7Config{RRows: 400, DistinctA: 100})
	if err != nil {
		t.Fatal(err)
	}
	stem, ij, stemProbes, ijProbes := res.Series[0], res.Series[1], res.Series[2], res.Series[3]

	if stem.Final() != ij.Final() {
		t.Fatalf("result counts differ: %v vs %v", stem.Final(), ij.Final())
	}
	// SteM leads at every quarter of the horizon (head-of-line blocking
	// removed).
	for i := 1; i <= 3; i++ {
		at := clock.Time(int64(res.End) * int64(i) / 4)
		if stem.At(at) < ij.At(at) {
			t.Errorf("at %v: SteM=%v < IndexJoin=%v", at, stem.At(at), ij.At(at))
		}
	}
	// Probe counts near-identical (within 5%).
	if d := stemProbes.Final() - ijProbes.Final(); d > ijProbes.Final()/20 || d < -ijProbes.Final()/20 {
		t.Errorf("probe counts diverge: %v vs %v", stemProbes.Final(), ijProbes.Final())
	}
	// Completion within 20% of each other ("about the same time overall").
	a, b := stem.End().Seconds(), ij.End().Seconds()
	if a > 1.2*b || b > 1.2*a {
		t.Errorf("completions diverge: %.1fs vs %.1fs", a, b)
	}
	// The index join curve is convex (parabolic): its first half produces
	// well under half its results.
	if half := ij.At(clock.Time(int64(ij.End()) / 2)); half > ij.Final()/2 {
		t.Errorf("index join is not parabolic: %v results by half-time of %v", half, ij.Final())
	}
}

func TestFig8Shape(t *testing.T) {
	res, err := Fig8(Fig8Config{Rows: 400})
	if err != nil {
		t.Fatal(err)
	}
	hy, ij, hj := res.Series[0], res.Series[1], res.Series[2]
	if hy.Final() != ij.Final() || hy.Final() != hj.Final() {
		t.Fatalf("result counts differ: %v %v %v", hy.Final(), ij.Final(), hj.Final())
	}
	// Early (first tenth): index join ahead of hash join; hybrid tracks the
	// leader within a factor.
	early := clock.Time(int64(res.End) / 10)
	if ij.At(early) <= hj.At(early) {
		t.Errorf("early: index=%v must lead hash=%v", ij.At(early), hj.At(early))
	}
	if hy.At(early) < ij.At(early)/2 {
		t.Errorf("early: hybrid=%v far behind index=%v", hy.At(early), ij.At(early))
	}
	// Overall: hash join beats index join handily; hybrid close to hash.
	if hj.End() >= ij.End() {
		t.Errorf("hash (%v) must complete before index (%v)", hj.End(), ij.End())
	}
	if hy.End().Seconds() > 1.3*hj.End().Seconds() {
		t.Errorf("hybrid completion %.1fs too far behind hash %.1fs", hy.End().Seconds(), hj.End().Seconds())
	}
}

func TestFig1Shape(t *testing.T) {
	res, err := Fig1(Fig1Config{Rows: 120})
	if err != nil {
		t.Fatal(err)
	}
	stems, joins, static := res.Series[0], res.Series[1], res.Series[2]
	if stems.Final() != joins.Final() || stems.Final() != static.Final() {
		t.Fatalf("architectures disagree: %v %v %v", stems.Final(), joins.Final(), static.Final())
	}
	// SteMs, free to use the scan AND index on T, must not lose to the
	// index-only plans.
	if stems.End() > static.End() {
		t.Errorf("SteMs (%v) slower than static plan (%v)", stems.End(), static.End())
	}
}

func TestFig2Shape(t *testing.T) {
	res, err := Fig2(Fig1Config{Rows: 120})
	if err != nil {
		t.Fatal(err)
	}
	stems, pipe := res.Series[0], res.Series[1]
	if stems.Final() != pipe.Final() {
		t.Fatalf("results differ: %v vs %v", stems.Final(), pipe.Final())
	}
	if len(res.Summary) < 3 {
		t.Error("summary missing")
	}
}

func TestCompetitiveShape(t *testing.T) {
	res, err := Competitive(CompetitiveConfig{Rows: 120, DistinctA: 30})
	if err != nil {
		t.Fatal(err)
	}
	both, fast, slow := res.Series[0], res.Series[1], res.Series[2]
	if both.Final() != fast.Final() || both.Final() != slow.Final() {
		t.Fatal("result counts differ")
	}
	// Competition must land much closer to fast-only than slow-only.
	if both.End().Seconds() > 2*fast.End().Seconds() {
		t.Errorf("competitive %.1fs too far from fast-only %.1fs", both.End().Seconds(), fast.End().Seconds())
	}
	if both.End().Seconds() > slow.End().Seconds()/2 {
		t.Errorf("competitive %.1fs not clearly better than slow-only %.1fs", both.End().Seconds(), slow.End().Seconds())
	}
}

func TestSpanningShape(t *testing.T) {
	res, err := Spanning(SpanningConfig{Rows: 60, StallAfter: 10, StallFor: 5 * clock.Second})
	if err != nil {
		t.Fatal(err)
	}
	stemOut, staticOut, stemRT, staticRT := res.Series[0], res.Series[1], res.Series[2], res.Series[3]
	if stemOut.Final() != staticOut.Final() {
		t.Fatal("result counts differ")
	}
	if stemRT.Final() == 0 {
		t.Error("SteMs produced no {R,T} partials despite the third join edge")
	}
	if staticRT.Final() != 0 {
		t.Error("the static spanning tree has no R–T edge; it must produce no RT partials")
	}
}

func TestReorderShape(t *testing.T) {
	res, err := Reorder(ReorderConfig{Rows: 600})
	if err != nil {
		t.Fatal(err)
	}
	adapt, fixed := res.Series[0], res.Series[1]
	if adapt.Final() != fixed.Final() {
		t.Fatal("result counts differ")
	}
}

func TestMemoryShape(t *testing.T) {
	res, err := Memory(MemoryConfig{Rows: 150})
	if err != nil {
		t.Fatal(err)
	}
	byProbes, equal, unbounded := res.Series[0], res.Series[1], res.Series[2]
	if byProbes.Final() != equal.Final() || byProbes.Final() != unbounded.Final() {
		t.Fatal("result counts differ under memory pressure")
	}
	if unbounded.End() > byProbes.End() {
		t.Error("spilling must not be free")
	}
	if byProbes.End() > equal.End() {
		t.Errorf("probe-frequency allocation (%.2fs) must beat equal allocation (%.2fs)",
			byProbes.End().Seconds(), equal.End().Seconds())
	}
}

func TestRenderProducesTable(t *testing.T) {
	res, err := Reorder(ReorderConfig{Rows: 100})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render(5)
	if len(out) < 100 {
		t.Errorf("render too short: %q", out)
	}
}
