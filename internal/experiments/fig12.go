// fig12.go regenerates Figures 1 and 2.
//
// Figure 1 shows a three-table join R ⋈ S ⋈ T (with an index on T) executed
// by three architectures: a static plan (hash join under an index join), an
// eddy over encapsulated join modules, and an eddy over SteMs. The
// experiment verifies all three produce identical results and compares their
// online behaviour under the same sources and cost model.
//
// Figure 2 contrasts the two ways of extending the symmetric hash join to n
// tables: a pipeline of binary SHJs — which materializes intermediate
// results (H_RS) — versus the n-ary routing through SteMs, which stores only
// singleton base tuples at the cost of recomputing intermediate probes
// (the space/time tradeoff of Section 2.3). The experiment measures the
// state each approach materializes.
package experiments

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/eddy"
	"repro/internal/exec"
	"repro/internal/join"
	"repro/internal/policy"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/stats"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// Fig1Config parameterizes the three-architecture comparison.
type Fig1Config struct {
	Rows         int
	Fanout       int // distinct join values = Rows/Fanout (controls result size)
	ScanInter    clock.Duration
	IndexLatency clock.Duration
	Seed         int64
}

func (c *Fig1Config) defaults() {
	if c.Rows == 0 {
		c.Rows = 400
	}
	if c.Fanout == 0 {
		c.Fanout = 4
	}
	if c.ScanInter == 0 {
		c.ScanInter = 20 * clock.Millisecond
	}
	if c.IndexLatency == 0 {
		c.IndexLatency = 150 * clock.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// fig1Query builds R(k,a) ⋈ S(x,y) ⋈ T(key) on R.a=S.x, S.y=T.key with scans
// on R and S and both scan and index on T.
func fig1Query(c Fig1Config, tScan, tIndex bool) *query.Q {
	rData := workload.Shuffled(workload.RTable(workload.RSpec{
		Rows: c.Rows, DistinctA: c.Rows / c.Fanout, Seed: c.Seed}), c.Seed+1)
	// S maps x -> y one-to-one over the join value domain.
	sData := workload.STable(c.Rows/c.Fanout, 0)
	tData := workload.Shuffled(workload.TTable(c.Rows/c.Fanout), c.Seed+2)
	ams := []query.AMDecl{
		{Table: 0, Kind: query.Scan, Data: rData,
			ScanSpec: source.ScanSpec{InterArrival: c.ScanInter}},
		{Table: 1, Kind: query.Scan, Data: workload.Shuffled(sData, c.Seed+3),
			ScanSpec: source.ScanSpec{InterArrival: c.ScanInter}},
	}
	if tScan {
		ams = append(ams, query.AMDecl{Table: 2, Kind: query.Scan, Data: tData,
			ScanSpec: source.ScanSpec{InterArrival: c.ScanInter}})
	}
	if tIndex {
		ams = append(ams, query.AMDecl{Table: 2, Kind: query.Index, Data: tData,
			IndexSpec: source.IndexSpec{KeyCols: []int{0}, Latency: c.IndexLatency, Parallel: 1}})
	}
	return query.MustNew(
		[]*schema.Table{rData.Schema, sData.Schema, tData.Schema},
		[]pred.P{
			pred.EquiJoin(0, 1, 1, 0), // R.a = S.x
			pred.EquiJoin(1, 1, 2, 0), // S.y = T.key
		},
		ams,
	)
}

// Fig1 runs the three architectures of Figure 1.
func Fig1(c Fig1Config) (*Result, error) {
	c.defaults()
	prof := eddy.DefaultProfile()

	// (a) Static plan: SHJ(R,S) under IndexJoin(T), index AM on T only.
	qa := fig1Query(c, false, true)
	shj := join.NewSHJ(join.SHJConfig{
		Q: qa, Left: tuple.Single(0), Right: tuple.Single(1),
		LeftRef: pred.ColRef{Table: 0, Col: 1}, RightRef: pred.ColRef{Table: 1, Col: 0},
		BuildCost: prof.SteMBuildCost, ProbeCost: prof.SteMProbeCost, PerMatchCost: prof.PerMatchCost,
	})
	ij, err := join.NewIndexJoin(join.IndexJoinConfig{
		Q: qa, ProbeSpan: tuple.Single(0).With(1), Table: 2,
		Data: qa.AMs[len(qa.AMs)-1].Data, KeyCols: []int{0},
		Latency: c.IndexLatency, CacheCost: prof.SteMProbeCost, PerMatchCost: prof.PerMatchCost,
	})
	if err != nil {
		return nil, err
	}
	static, err := exec.New(exec.Config{Q: qa, Stages: []join.Stage{shj, ij}})
	if err != nil {
		return nil, err
	}
	staticOut, _, err := runCollect(static, "static plan", 0, nil)
	if err != nil {
		return nil, err
	}

	// (b) Eddy with join modules: same join tree, selections adaptive (none
	// here), driven by the lottery policy of the original eddies paper.
	qb := fig1Query(c, false, true)
	shjB := join.NewSHJ(join.SHJConfig{
		Q: qb, Left: tuple.Single(0), Right: tuple.Single(1),
		LeftRef: pred.ColRef{Table: 0, Col: 1}, RightRef: pred.ColRef{Table: 1, Col: 0},
		BuildCost: prof.SteMBuildCost, ProbeCost: prof.SteMProbeCost, PerMatchCost: prof.PerMatchCost,
	})
	ijB, err := join.NewIndexJoin(join.IndexJoinConfig{
		Q: qb, ProbeSpan: tuple.Single(0).With(1), Table: 2,
		Data: qb.AMs[len(qb.AMs)-1].Data, KeyCols: []int{0},
		Latency: c.IndexLatency, CacheCost: prof.SteMProbeCost, PerMatchCost: prof.PerMatchCost,
	})
	if err != nil {
		return nil, err
	}
	joinEddy, err := exec.New(exec.Config{
		Q: qb, Stages: []join.Stage{shjB, ijB},
		Policy: policy.NewLottery(c.Seed), AdaptiveSelections: true,
	})
	if err != nil {
		return nil, err
	}
	joinEddyOut, _, err := runCollect(joinEddy, "eddy+joins", 0, nil)
	if err != nil {
		return nil, err
	}

	// (c) Eddy with SteMs: all access methods (scan and index on T) exposed.
	qc := fig1Query(c, true, true)
	r, err := eddy.NewRouter(qc, eddy.Options{Policy: policy.NewBenefitCost(c.Seed)})
	if err != nil {
		return nil, err
	}
	stemOut, _, err := runCollect(r, "eddy+SteMs", 0, nil)
	if err != nil {
		return nil, err
	}
	if r.Stuck() != 0 {
		return nil, fmt.Errorf("fig1: SteM router stuck %d", r.Stuck())
	}

	end := staticOut.End()
	for _, s := range []*stats.Series{joinEddyOut, stemOut} {
		if s.End() > end {
			end = s.End()
		}
	}
	res := &Result{
		ID:     "fig1",
		Title:  "R⋈S⋈T under three architectures: static plan, eddy+joins, eddy+SteMs",
		Series: []*stats.Series{stemOut, joinEddyOut, staticOut},
		End:    end,
	}
	res.Summary = append(res.Summary,
		fmt.Sprintf("final results: SteMs=%.0f eddy+joins=%.0f static=%.0f (identical by Theorem 2)",
			stemOut.Final(), joinEddyOut.Final(), staticOut.Final()),
		fmt.Sprintf("completion: SteMs=%.1fs eddy+joins=%.1fs static=%.1fs (SteMs can use all AMs simultaneously)",
			stemOut.End().Seconds(), joinEddyOut.End().Seconds(), staticOut.End().Seconds()),
		fmt.Sprintf("online metric (area to %.0fs): SteMs=%.0f eddy+joins=%.0f static=%.0f",
			end.Seconds(), stemOut.AreaUnder(end), joinEddyOut.AreaUnder(end), staticOut.AreaUnder(end)),
	)
	return res, nil
}

// Fig2 measures the space/time tradeoff of Section 2.3: pipelined binary
// SHJs materialize intermediate results, the SteM routing stores only
// singletons.
func Fig2(c Fig1Config) (*Result, error) {
	c.defaults()
	prof := eddy.DefaultProfile()

	// Pipelined binary SHJs over scans (Figure 2(i)).
	qp := fig1Query(c, true, false)
	stages, err := exec.LeftDeepSHJ(qp, []int{0, 1, 2}, prof)
	if err != nil {
		return nil, err
	}
	pipe, err := exec.New(exec.Config{Q: qp, Stages: stages})
	if err != nil {
		return nil, err
	}
	pipeOut, _, err := runCollect(pipe, "binary SHJ pipeline", 0, nil)
	if err != nil {
		return nil, err
	}
	pipeState := 0
	for _, st := range stages {
		pipeState += st.(*join.SHJ).Size()
	}

	// n-ary SHJ via SteMs (Figure 2(iii)).
	qs := fig1Query(c, true, false)
	r, err := eddy.NewRouter(qs, eddy.Options{Policy: policy.NewFixed()})
	if err != nil {
		return nil, err
	}
	stemOut, _, err := runCollect(r, "eddy+SteMs (n-ary SHJ)", 0, nil)
	if err != nil {
		return nil, err
	}
	stemState := 0
	for _, s := range r.SteMs() {
		stemState += s.Size()
	}

	end := pipeOut.End()
	if stemOut.End() > end {
		end = stemOut.End()
	}
	res := &Result{
		ID:     "fig2",
		Title:  "3-way SHJ: pipelined binary joins vs n-ary routing through SteMs",
		Series: []*stats.Series{stemOut, pipeOut},
		End:    end,
	}
	base := 0
	for t := 0; t < qp.NumTables(); t++ {
		base += len(qp.AMs[qp.AMsOn(t)[0]].Data.Rows)
	}
	res.Summary = append(res.Summary,
		fmt.Sprintf("final results: SteMs=%.0f pipeline=%.0f (identical)", stemOut.Final(), pipeOut.Final()),
		fmt.Sprintf("state materialized: SteMs=%d tuples (singletons only, = %d base rows) vs pipeline=%d (base rows + H_RS intermediates)",
			stemState, base, pipeState),
		fmt.Sprintf("completion: SteMs=%.1fs pipeline=%.1fs (the space saving costs re-probes)",
			stemOut.End().Seconds(), pipeOut.End().Seconds()),
	)
	return res, nil
}
