// fig8.go regenerates Figure 8 (Section 4.3): query Q4
//
//	SELECT * FROM R, T WHERE R.key = T.key
//
// where T has both a scan and an asynchronous index access method, run three
// ways: a static index join, a static symmetric hash join (scans only), and
// the SteM architecture free to use both AMs ("hybrid").
//
// The paper's shape: the index join leads in the first seconds (each probe
// returns exactly its match while the scans are still warming up), the hash
// join catches up quadratically and wins handily overall (the scan is the
// faster access method), and the hybrid tracks the best of the two at every
// stage — behaving like an index join early and like a hash join late, with
// completion only slightly behind the pure hash join because the eddy keeps
// exploring the index with a small fraction of tuples.
package experiments

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/eddy"
	"repro/internal/exec"
	"repro/internal/join"
	"repro/internal/policy"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/stats"
	"repro/internal/stem"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// Fig8Config parameterizes the Q4 experiment.
type Fig8Config struct {
	Rows              int            // rows in both R and T (paper: 1000)
	RScanInterArrival clock.Duration // R is the slower scan
	TScanInterArrival clock.Duration // T's scan ends at Rows×this (paper: ≈59s)
	IndexLatency      clock.Duration // T's per-lookup sleep
	Seed              int64
}

func (c *Fig8Config) defaults() {
	if c.Rows == 0 {
		c.Rows = 1000
	}
	if c.RScanInterArrival == 0 {
		c.RScanInterArrival = 110 * clock.Millisecond
	}
	if c.TScanInterArrival == 0 {
		c.TScanInterArrival = 59 * clock.Millisecond
	}
	if c.IndexLatency == 0 {
		c.IndexLatency = 200 * clock.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// q4 builds Q4 with the requested access methods on T.
func q4(c Fig8Config, tScan, tIndex bool) *query.Q {
	rData := workload.Shuffled(workload.RTable(workload.RSpec{Rows: c.Rows, DistinctA: c.Rows, Seed: c.Seed}), c.Seed+10)
	tData := workload.Shuffled(workload.TTable(c.Rows), c.Seed+20)
	ams := []query.AMDecl{
		{Table: 0, Kind: query.Scan, Data: rData,
			ScanSpec: source.ScanSpec{InterArrival: c.RScanInterArrival}},
	}
	if tScan {
		ams = append(ams, query.AMDecl{Table: 1, Kind: query.Scan, Data: tData,
			ScanSpec: source.ScanSpec{InterArrival: c.TScanInterArrival}})
	}
	if tIndex {
		ams = append(ams, query.AMDecl{Table: 1, Kind: query.Index, Data: tData,
			IndexSpec: source.IndexSpec{KeyCols: []int{0}, Latency: c.IndexLatency, Parallel: 1}})
	}
	return query.MustNew(
		[]*schema.Table{rData.Schema, tData.Schema},
		[]pred.P{pred.EquiJoin(0, 0, 1, 0)}, // R.key = T.key
		ams,
	)
}

// Fig8 runs the three approaches and returns their results-over-time curves.
func Fig8(c Fig8Config) (*Result, error) {
	c.defaults()
	prof := eddy.DefaultProfile()

	// --- Static index join: scan R drives lookups into T's index.
	qi := q4(c, false, true)
	ij, err := join.NewIndexJoin(join.IndexJoinConfig{
		Q: qi, ProbeSpan: tuple.Single(0), Table: 1,
		Data: qi.AMs[1].Data, KeyCols: []int{0},
		Latency: c.IndexLatency, CacheCost: prof.SteMProbeCost, PerMatchCost: prof.PerMatchCost,
	})
	if err != nil {
		return nil, err
	}
	ijBase, err := exec.New(exec.Config{Q: qi, Stages: []join.Stage{ij}})
	if err != nil {
		return nil, err
	}
	ijOut, _, err := runCollect(ijBase, "index join", 0, nil)
	if err != nil {
		return nil, err
	}

	// --- Static symmetric hash join over the two scans.
	qh := q4(c, true, false)
	stages, err := exec.LeftDeepSHJ(qh, []int{0, 1}, prof)
	if err != nil {
		return nil, err
	}
	hjBase, err := exec.New(exec.Config{Q: qh, Stages: stages})
	if err != nil {
		return nil, err
	}
	hjOut, _, err := runCollect(hjBase, "hash join", 0, nil)
	if err != nil {
		return nil, err
	}

	// --- Hybrid: SteMs with both AMs on T; the SteM on T bounces incomplete
	// probes so the eddy can choose, per tuple, between the index AM and
	// waiting for the scan (Section 4.3).
	qs := q4(c, true, true)
	r, err := eddy.NewRouter(qs, eddy.Options{
		Policy:      policy.NewBenefitCost(c.Seed),
		ProbeBounce: stem.BounceIfIndexAM,
	})
	if err != nil {
		return nil, err
	}
	hyOut, _, err := runCollect(r, "hybrid", 0, nil)
	if err != nil {
		return nil, err
	}
	if r.Stuck() != 0 {
		return nil, fmt.Errorf("fig8: hybrid router stuck %d", r.Stuck())
	}
	var indexProbes uint64
	for _, a := range r.AMs() {
		if a.Kind() == query.Index {
			indexProbes += a.Stats().Probes
		}
	}

	end := ijOut.End()
	for _, s := range []*stats.Series{hjOut, hyOut} {
		if s.End() > end {
			end = s.End()
		}
	}
	res := &Result{
		ID:     "fig8",
		Title:  "Q4 — index join vs hash join vs SteM hybrid: results over time",
		Series: []*stats.Series{hyOut, ijOut, hjOut},
		End:    end,
	}

	early := clock.Time(10 * clock.Second)
	t30 := clock.Time(30 * clock.Second)
	res.Summary = append(res.Summary,
		fmt.Sprintf("final results: hybrid=%.0f index=%.0f hash=%.0f (must be equal)",
			hyOut.Final(), ijOut.Final(), hjOut.Final()),
		fmt.Sprintf("at 10s: index=%.0f hash=%.0f hybrid=%.0f (index leads early; hybrid tracks it)",
			ijOut.At(early), hjOut.At(early), hyOut.At(early)),
		fmt.Sprintf("at 30s: index=%.0f hash=%.0f hybrid=%.0f (hash has caught up)",
			ijOut.At(t30), hjOut.At(t30), hyOut.At(t30)),
		fmt.Sprintf("completion: hash=%.1fs hybrid=%.1fs index=%.1fs (hash wins handily; hybrid slightly behind hash)",
			hjOut.End().Seconds(), hyOut.End().Seconds(), ijOut.End().Seconds()),
		fmt.Sprintf("hybrid issued %d index probes out of %d R tuples (early exploration, then mostly scan)",
			indexProbes, c.Rows),
	)
	return res, nil
}
