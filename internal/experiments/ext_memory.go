// ext_memory.go measures the Section 6 memory-governance extension: with a
// global resident-row budget smaller than total state, an eddy that
// allocates memory "based on overall memory availability as well as
// relative frequency of probes into each SteM" keeps the hot SteM resident
// and pays spill penalties only on the cold path, beating the equal split an
// encapsulated design is stuck with.
package experiments

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/eddy"
	"repro/internal/policy"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/stats"
	"repro/internal/stem"
	"repro/internal/tuple"
	"repro/internal/value"
	"repro/internal/workload"
)

// MemoryConfig parameterizes the memory-governance experiment.
type MemoryConfig struct {
	Rows         int            // rows per table
	Budget       int            // global resident-row budget (< 3×Rows)
	SpillPenalty clock.Duration // full-spill probe penalty
	Seed         int64
}

func (c *MemoryConfig) defaults() {
	if c.Rows == 0 {
		c.Rows = 300
	}
	if c.Budget == 0 {
		c.Budget = c.Rows + c.Rows/2
	}
	if c.SpillPenalty == 0 {
		c.SpillPenalty = 20 * clock.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// memoryQuery builds a chain R ⋈ S ⋈ T where every R tuple probes SteM(S)
// (hot) but the R–S join is selective, so SteM(T) (cold) sees few probes.
func memoryQuery(c MemoryConfig) *query.Q {
	n := c.Rows
	rT := schema.MustTable("R", schema.IntCol("k"), schema.IntCol("a"))
	sT := schema.MustTable("S", schema.IntCol("x"), schema.IntCol("y"))
	tT := schema.MustTable("T", schema.IntCol("z"), schema.IntCol("w"))
	rRows := make([]tuple.Row, n)
	sRows := make([]tuple.Row, n)
	tRows := make([]tuple.Row, n)
	for i := 0; i < n; i++ {
		// Only 1 in 10 R tuples finds an S partner (selective hot join).
		rRows[i] = tuple.Row{value.NewInt(int64(i)), value.NewInt(int64(i * 10))}
		sRows[i] = tuple.Row{value.NewInt(int64(i)), value.NewInt(int64(i))}
		tRows[i] = tuple.Row{value.NewInt(int64(i)), value.NewInt(int64(i))}
	}
	rData := workload.Shuffled(source.MustTable(rT, rRows), c.Seed+1)
	sData := workload.Shuffled(source.MustTable(sT, sRows), c.Seed+2)
	tData := workload.Shuffled(source.MustTable(tT, tRows), c.Seed+3)
	inter := 5 * clock.Millisecond
	return query.MustNew(
		[]*schema.Table{rT, sT, tT},
		[]pred.P{
			pred.EquiJoin(0, 1, 1, 0), // R.a = S.x (hot side: all R probe S)
			pred.EquiJoin(1, 1, 2, 0), // S.y = T.z (cold: few composites)
		},
		[]query.AMDecl{
			{Table: 0, Kind: query.Scan, Data: rData, ScanSpec: source.ScanSpec{InterArrival: inter}},
			{Table: 1, Kind: query.Scan, Data: sData, ScanSpec: source.ScanSpec{InterArrival: inter}},
			{Table: 2, Kind: query.Scan, Data: tData, ScanSpec: source.ScanSpec{InterArrival: inter}},
		},
	)
}

// Memory runs the constrained join under both allocation policies plus an
// unconstrained control.
func Memory(c MemoryConfig) (*Result, error) {
	c.defaults()
	run := func(gov *stem.Governor, name string) (*stats.Series, error) {
		r, err := eddy.NewRouter(memoryQuery(c), eddy.Options{
			Policy: policy.NewFixed(), Governor: gov,
		})
		if err != nil {
			return nil, err
		}
		out, _, err := runCollect(r, name, 0, nil)
		return out, err
	}

	unbounded, err := run(nil, "unbounded memory")
	if err != nil {
		return nil, err
	}
	equal, err := run(stem.NewGovernor(c.Budget, stem.AllocEqual, c.SpillPenalty), "equal allocation")
	if err != nil {
		return nil, err
	}
	byProbes, err := run(stem.NewGovernor(c.Budget, stem.AllocByProbes, c.SpillPenalty), "probe-frequency allocation")
	if err != nil {
		return nil, err
	}

	end := unbounded.End()
	for _, s := range []*stats.Series{equal, byProbes} {
		if s.End() > end {
			end = s.End()
		}
	}
	res := &Result{
		ID:     "ext-memory",
		Title:  "memory-constrained SteMs: probe-frequency vs equal allocation (Section 6)",
		Series: []*stats.Series{byProbes, equal, unbounded},
		End:    end,
	}
	res.Summary = append(res.Summary,
		fmt.Sprintf("final results: by-probes=%.0f equal=%.0f unbounded=%.0f (identical — spilling is a cost, never a correctness, concern)",
			byProbes.Final(), equal.Final(), unbounded.Final()),
		fmt.Sprintf("completion: unbounded=%.1fs by-probes=%.1fs equal=%.1fs (budget %d rows of %d total state)",
			unbounded.End().Seconds(), byProbes.End().Seconds(), equal.End().Seconds(), c.Budget, 3*c.Rows),
		fmt.Sprintf("online metric (area to %.0fs): by-probes=%.0f equal=%.0f",
			end.Seconds(), byProbes.AreaUnder(end), equal.AreaUnder(end)),
	)
	return res, nil
}
