// fig7.go regenerates Figure 7 (Section 4.2): query Q1
//
//	SELECT * FROM R, S WHERE R.a = S.x
//
// run two ways — a traditional plan with an encapsulated index join
// (Figure 5) and the SteM architecture (Figure 6) — measuring (i) result
// tuples over time and (ii) remote index probes over time.
//
// The paper's shape: the index-join curve is parabolic (every R tuple queues
// behind remote lookups, so early output is slow and accelerates as the
// cache heats up), while the SteM curve is near-linear and higher at every
// prefix because cache probes and index probes have separate queues — no
// head-of-line blocking. Both issue an almost identical number of remote
// probes (≈ the number of distinct R.a values) and finish at about the same
// time.
package experiments

import (
	"fmt"

	"repro/internal/am"
	"repro/internal/clock"
	"repro/internal/eddy"
	"repro/internal/exec"
	"repro/internal/join"
	"repro/internal/policy"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/stats"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// Fig7Config parameterizes the Q1 experiment; the zero value is replaced by
// the paper's setting (Table 3).
type Fig7Config struct {
	RRows     int
	DistinctA int
	Timing    workload.Timing
}

func (c *Fig7Config) defaults() {
	if c.RRows == 0 {
		c.RRows = 1000
	}
	if c.DistinctA == 0 {
		c.DistinctA = 250
	}
	if c.Timing == (workload.Timing{}) {
		c.Timing = workload.DefaultTiming()
	}
}

// q1 builds Q1's query: scan on R, asynchronous index AM on S.x only.
func q1(c Fig7Config) *query.Q {
	rData := workload.RTable(workload.RSpec{Rows: c.RRows, DistinctA: c.DistinctA, Seed: 1})
	sData := workload.STable(c.DistinctA, 0)
	return query.MustNew(
		[]*schema.Table{rData.Schema, sData.Schema},
		[]pred.P{pred.EquiJoin(0, 1, 1, 0)}, // R.a = S.x
		[]query.AMDecl{
			{Table: 0, Kind: query.Scan, Data: rData,
				ScanSpec: source.ScanSpec{InterArrival: c.Timing.RScanInterArrival}},
			{Table: 1, Kind: query.Index, Data: sData,
				IndexSpec: source.IndexSpec{KeyCols: []int{0}, Latency: c.Timing.IndexLatency,
					Parallel: c.Timing.IndexParallel}},
		},
	)
}

// Fig7 runs both architectures and returns the two sub-figures' series:
// results[0..1] = outputs over time, probes[2..3] = index probes over time.
func Fig7(c Fig7Config) (*Result, error) {
	c.defaults()
	prof := eddy.DefaultProfile()

	// --- Traditional plan: scan R -> IndexJoin(S) (Figure 5).
	qj := q1(c)
	ij, err := join.NewIndexJoin(join.IndexJoinConfig{
		Q: qj, ProbeSpan: tuple.Single(0), Table: 1,
		Data: qj.AMs[1].Data, KeyCols: []int{0},
		Latency: c.Timing.IndexLatency, CacheCost: prof.SteMProbeCost, PerMatchCost: prof.PerMatchCost,
	})
	if err != nil {
		return nil, err
	}
	base, err := exec.New(exec.Config{Q: qj, Stages: []join.Stage{ij}})
	if err != nil {
		return nil, err
	}
	ijProbes := stats.NewSeries("IndexJoin probes")
	ijOut, _, err := runCollect(base, "IndexJoin results", 0, func(sim *eddy.Sim) {
		sim.OnProcess = func(mod int, _ *tuple.Tuple, at clock.Time, _ int, _ clock.Duration) {
			if float64(ij.Probes()) > ijProbes.Final() {
				ijProbes.Add(at, float64(ij.Probes()))
			}
		}
	})
	if err != nil {
		return nil, err
	}

	// --- SteMs (Figure 6): SteM(R) as rendezvous buffer, SteM(S) as lookup
	// cache, index AM exposed to the eddy.
	qs := q1(c)
	r, err := eddy.NewRouter(qs, eddy.Options{Policy: policy.NewBenefitCost(1)})
	if err != nil {
		return nil, err
	}
	stemProbes := stats.NewSeries("SteM probes")
	amOf := func() *am.AM {
		for _, a := range r.AMs() {
			if a.Kind() == query.Index {
				return a
			}
		}
		return nil
	}()
	stemOut, _, err := runCollect(r, "SteM results", 0, func(sim *eddy.Sim) {
		sim.OnProcess = func(mod int, _ *tuple.Tuple, at clock.Time, _ int, _ clock.Duration) {
			if p := float64(amOf.Stats().Probes); p > stemProbes.Final() {
				stemProbes.Add(at, p)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if r.Stuck() != 0 {
		return nil, fmt.Errorf("fig7: SteM router stuck %d", r.Stuck())
	}

	end := ijOut.End()
	if stemOut.End() > end {
		end = stemOut.End()
	}
	res := &Result{
		ID:    "fig7",
		Title: "Q1 — index join vs SteMs: results and index probes over time",
		Series: []*stats.Series{
			stemOut, ijOut, stemProbes, ijProbes,
		},
		End: end,
	}

	// Shape findings (the paper's claims, measured).
	half := clock.Time(int64(end) / 2)
	res.Summary = append(res.Summary,
		fmt.Sprintf("final results: SteM=%.0f IndexJoin=%.0f (must be equal)", stemOut.Final(), ijOut.Final()),
		fmt.Sprintf("results at t/2: SteM=%.0f IndexJoin=%.0f (SteM leads every prefix)", stemOut.At(half), ijOut.At(half)),
		fmt.Sprintf("index probes: SteM=%.0f IndexJoin=%.0f (near-identical, ≈%d distinct keys)",
			stemProbes.Final(), ijProbes.Final(), c.DistinctA),
		fmt.Sprintf("completion: SteM=%.1fs IndexJoin=%.1fs (about the same time overall)",
			stemOut.End().Seconds(), ijOut.End().Seconds()),
		fmt.Sprintf("online metric (area under curve to %0.0fs): SteM=%.0f IndexJoin=%.0f",
			end.Seconds(), stemOut.AreaUnder(end), ijOut.AreaUnder(end)),
	)
	return res, nil
}
