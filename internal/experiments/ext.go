// ext.go makes the paper's remaining adaptation claims (Section 4's salient
// points 2, 3 and 5, whose full experiments live in the technical report
// [21]) measurable:
//
//   - Competitive access methods: the eddy learns to route probes to the
//     faster of two index AMs over mirrored sources, while the shared SteM
//     keeps the competition's redundant work near zero (point 2).
//   - Dynamic spanning trees: on a cyclic query with a stalled source, the
//     SteM architecture keeps producing partial results across the join
//     edge a static spanning tree would have discarded (point 3).
//   - Adaptive reordering: the eddy learns to apply the more selective of
//     two selections first (point 5).
package experiments

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/eddy"
	"repro/internal/exec"
	"repro/internal/policy"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/stats"
	"repro/internal/tuple"
	"repro/internal/value"
	"repro/internal/workload"
)

// CompetitiveConfig parameterizes the competitive-AM experiment.
type CompetitiveConfig struct {
	Rows        int
	DistinctA   int
	FastLatency clock.Duration
	SlowLatency clock.Duration
	Seed        int64
}

func (c *CompetitiveConfig) defaults() {
	if c.Rows == 0 {
		c.Rows = 600
	}
	if c.DistinctA == 0 {
		c.DistinctA = 150
	}
	if c.FastLatency == 0 {
		c.FastLatency = 200 * clock.Millisecond
	}
	if c.SlowLatency == 0 {
		c.SlowLatency = 2 * clock.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Competitive runs R ⋈ S where S is served by two competing index AMs — a
// fast mirror and a slow mirror — three ways: forced-slow, forced-fast, and
// with the eddy choosing. The eddy should approach the forced-fast
// completion while issuing most probes to the fast mirror, and the shared
// SteM should keep total remote lookups near the number of distinct keys.
func Competitive(c CompetitiveConfig) (*Result, error) {
	c.defaults()
	build := func(useSlow, useFast bool) *query.Q {
		rData := workload.RTable(workload.RSpec{Rows: c.Rows, DistinctA: c.DistinctA, Seed: c.Seed})
		sData := workload.STable(c.DistinctA, 0)
		ams := []query.AMDecl{{Table: 0, Kind: query.Scan, Data: rData,
			ScanSpec: source.ScanSpec{InterArrival: 20 * clock.Millisecond}}}
		if useSlow {
			ams = append(ams, query.AMDecl{Table: 1, Kind: query.Index, Data: sData, Name: "AM(S/slow)",
				IndexSpec: source.IndexSpec{KeyCols: []int{0}, Latency: c.SlowLatency, Parallel: 1}})
		}
		if useFast {
			ams = append(ams, query.AMDecl{Table: 1, Kind: query.Index, Data: sData, Name: "AM(S/fast)",
				IndexSpec: source.IndexSpec{KeyCols: []int{0}, Latency: c.FastLatency, Parallel: 1}})
		}
		return query.MustNew(
			[]*schema.Table{rData.Schema, sData.Schema},
			[]pred.P{pred.EquiJoin(0, 1, 1, 0)},
			ams,
		)
	}
	run := func(q *query.Q, name string) (*stats.Series, *eddy.Router, error) {
		r, err := eddy.NewRouter(q, eddy.Options{Policy: policy.NewBenefitCost(c.Seed)})
		if err != nil {
			return nil, nil, err
		}
		out, _, err := runCollect(r, name, 0, nil)
		return out, r, err
	}

	slowOut, _, err := run(build(true, false), "slow AM only")
	if err != nil {
		return nil, err
	}
	fastOut, _, err := run(build(false, true), "fast AM only")
	if err != nil {
		return nil, err
	}
	bothOut, bothR, err := run(build(true, true), "competitive (eddy chooses)")
	if err != nil {
		return nil, err
	}

	var slowProbes, fastProbes uint64
	for _, a := range bothR.AMs() {
		switch a.Name() {
		case "AM(S/slow)":
			slowProbes = a.Stats().Probes
		case "AM(S/fast)":
			fastProbes = a.Stats().Probes
		}
	}

	end := slowOut.End()
	for _, s := range []*stats.Series{fastOut, bothOut} {
		if s.End() > end {
			end = s.End()
		}
	}
	res := &Result{
		ID:     "ext-competitive",
		Title:  "competitive index AMs over mirrored sources: the eddy learns the fast one",
		Series: []*stats.Series{bothOut, fastOut, slowOut},
		End:    end,
	}
	res.Summary = append(res.Summary,
		fmt.Sprintf("final results: competitive=%.0f fast-only=%.0f slow-only=%.0f (identical)",
			bothOut.Final(), fastOut.Final(), slowOut.Final()),
		fmt.Sprintf("completion: competitive=%.1fs vs fast-only=%.1fs vs slow-only=%.1fs",
			bothOut.End().Seconds(), fastOut.End().Seconds(), slowOut.End().Seconds()),
		fmt.Sprintf("probe split under competition: fast=%d slow=%d (total %d ≈ %d distinct keys — the shared SteM absorbs the redundancy)",
			fastProbes, slowProbes, fastProbes+slowProbes, c.DistinctA),
	)
	return res, nil
}

// SpanningConfig parameterizes the dynamic-spanning-tree experiment.
type SpanningConfig struct {
	Rows       int
	ScanInter  clock.Duration
	StallAfter int
	StallFor   clock.Duration
	Seed       int64
}

func (c *SpanningConfig) defaults() {
	if c.Rows == 0 {
		c.Rows = 200
	}
	if c.ScanInter == 0 {
		c.ScanInter = 20 * clock.Millisecond
	}
	if c.StallAfter == 0 {
		c.StallAfter = 20
	}
	if c.StallFor == 0 {
		c.StallFor = 30 * clock.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Spanning runs a cyclic triangle query R⋈S⋈T (join predicates on all three
// edges) where S's scan stalls early for a long window. The static plan uses
// the spanning tree R–S, S–T, so while S is stalled nothing flows; the SteM
// architecture keeps joining R and T across the third edge, delivering
// {R,T} partial results throughout the stall (the paper's Section 3.4
// motivation for not fixing a spanning tree).
func Spanning(c SpanningConfig) (*Result, error) {
	c.defaults()
	prof := eddy.DefaultProfile()
	build := func() *query.Q {
		n := c.Rows
		// R(k,a), S(x,y), T(z,w): R.a=S.x, S.y=T.z, T.w=R.k — a cycle.
		rT := schema.MustTable("R", schema.IntCol("k"), schema.IntCol("a"))
		sT := schema.MustTable("S", schema.IntCol("x"), schema.IntCol("y"))
		tT := schema.MustTable("T", schema.IntCol("z"), schema.IntCol("w"))
		rRows := make([]tuple.Row, n)
		sRows := make([]tuple.Row, n)
		tRows := make([]tuple.Row, n)
		for i := 0; i < n; i++ {
			rRows[i] = tuple.Row{value.NewInt(int64(i)), value.NewInt(int64(i))}
			sRows[i] = tuple.Row{value.NewInt(int64(i)), value.NewInt(int64(i))}
			tRows[i] = tuple.Row{value.NewInt(int64(i)), value.NewInt(int64(i))}
		}
		rData := workload.Shuffled(source.MustTable(rT, rRows), c.Seed+1)
		sData := workload.Shuffled(source.MustTable(sT, sRows), c.Seed+2)
		tData := workload.Shuffled(source.MustTable(tT, tRows), c.Seed+3)
		return query.MustNew(
			[]*schema.Table{rT, sT, tT},
			[]pred.P{
				pred.EquiJoin(0, 1, 1, 0), // R.a = S.x
				pred.EquiJoin(1, 1, 2, 0), // S.y = T.z
				pred.EquiJoin(2, 1, 0, 0), // T.w = R.k
			},
			[]query.AMDecl{
				{Table: 0, Kind: query.Scan, Data: rData,
					ScanSpec: source.ScanSpec{InterArrival: c.ScanInter}},
				{Table: 1, Kind: query.Scan, Data: sData,
					ScanSpec: source.ScanSpec{InterArrival: c.ScanInter,
						Stalls: []source.Stall{{AfterRows: c.StallAfter, For: c.StallFor}}}},
				{Table: 2, Kind: query.Scan, Data: tData,
					ScanSpec: source.ScanSpec{InterArrival: c.ScanInter}},
			},
		)
	}

	rtSpan := tuple.Single(0).With(2)
	countRT := func(sim *eddy.Sim, series *stats.Series) {
		sim.OnEmit = func(t *tuple.Tuple, at clock.Time) {
			if t.EOT == nil && !t.Seed && t.Span == rtSpan {
				series.Inc(at)
			}
		}
	}

	// Static spanning tree R–S, S–T (SHJ pipeline; the R–T predicate is
	// verified at the top but never used as a join edge).
	qs := build()
	stages, err := exec.LeftDeepSHJ(qs, []int{0, 1, 2}, prof)
	if err != nil {
		return nil, err
	}
	static, err := exec.New(exec.Config{Q: qs, Stages: stages})
	if err != nil {
		return nil, err
	}
	staticRT := stats.NewSeries("static RT partials")
	staticOut, _, err := runCollect(static, "static results", 0, func(sim *eddy.Sim) { countRT(sim, staticRT) })
	if err != nil {
		return nil, err
	}

	// SteMs: all three edges available; the lottery policy spreads probes.
	qe := build()
	r, err := eddy.NewRouter(qe, eddy.Options{Policy: policy.NewLottery(c.Seed)})
	if err != nil {
		return nil, err
	}
	stemRT := stats.NewSeries("SteM RT partials")
	stemOut, _, err := runCollect(r, "SteM results", 0, func(sim *eddy.Sim) { countRT(sim, stemRT) })
	if err != nil {
		return nil, err
	}

	end := staticOut.End()
	if stemOut.End() > end {
		end = stemOut.End()
	}
	stallStart := clock.Time(int64(c.StallAfter) * int64(c.ScanInter))
	stallEnd := stallStart.Add(c.StallFor)
	res := &Result{
		ID:     "ext-spanning",
		Title:  "cyclic query with a stalled source: dynamic vs static spanning tree",
		Series: []*stats.Series{stemOut, staticOut, stemRT, staticRT},
		End:    end,
	}
	res.Summary = append(res.Summary,
		fmt.Sprintf("final results: SteMs=%.0f static=%.0f (identical)", stemOut.Final(), staticOut.Final()),
		fmt.Sprintf("S stalls %.1fs–%.1fs; during the stall the SteM eddy produced %.0f {R,T} partial results via the third join edge, the static tree %.0f",
			stallStart.Seconds(), stallEnd.Seconds(),
			stemRT.At(stallEnd)-stemRT.At(stallStart), staticRT.At(stallEnd)-staticRT.At(stallStart)),
		fmt.Sprintf("completion: SteMs=%.1fs static=%.1fs", stemOut.End().Seconds(), staticOut.End().Seconds()),
	)
	return res, nil
}

// ReorderConfig parameterizes the selection-ordering experiment.
type ReorderConfig struct {
	Rows     int
	SMCost   clock.Duration
	Seed     int64
	PassHigh int64 // selection 0 passes values < PassHigh (of 100): ~90%
	PassLow  int64 // selection 1 passes values < PassLow (of 100): ~5%
}

func (c *ReorderConfig) defaults() {
	if c.Rows == 0 {
		c.Rows = 2000
	}
	if c.SMCost == 0 {
		c.SMCost = 5 * clock.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PassHigh == 0 {
		c.PassHigh = 90
	}
	if c.PassLow == 0 {
		c.PassLow = 5
	}
}

// Reorder runs a single-table query with two selections of very different
// selectivity. The fixed policy applies them in declaration order (the
// unselective one first); the benefit/cost policy learns to apply the
// selective one first, cutting total selection work — the paper's point 5.
func Reorder(c ReorderConfig) (*Result, error) {
	c.defaults()
	build := func() *query.Q {
		wData := workload.Uniform("W", c.Rows, 3, 100, c.Seed)
		return query.MustNew(
			[]*schema.Table{wData.Schema},
			[]pred.P{
				pred.Selection(0, 1, pred.Lt, value.NewInt(c.PassHigh)), // ~90% pass
				pred.Selection(0, 2, pred.Lt, value.NewInt(c.PassLow)),  // ~5% pass
			},
			[]query.AMDecl{{Table: 0, Kind: query.Scan, Data: wData,
				ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}}},
		)
	}
	prof := eddy.DefaultProfile()
	prof.SMCost = c.SMCost
	run := func(p policy.Policy, name string) (*stats.Series, *eddy.Router, uint64, error) {
		r, err := eddy.NewRouter(build(), eddy.Options{Policy: p, Profile: &prof})
		if err != nil {
			return nil, nil, 0, err
		}
		var smVisits uint64
		out, _, err := runCollect(r, name, 0, func(sim *eddy.Sim) {
			smMods := make(map[int]bool)
			for i, m := range r.Modules() {
				for _, s := range r.SMs() {
					if m == s {
						smMods[i] = true
					}
				}
			}
			sim.OnProcess = func(mod int, _ *tuple.Tuple, _ clock.Time, _ int, _ clock.Duration) {
				if smMods[mod] {
					smVisits++
				}
			}
		})
		return out, r, smVisits, err
	}

	fixedOut, _, fixedVisits, err := run(policy.NewFixed(), "fixed order")
	if err != nil {
		return nil, err
	}
	adaptOut, _, adaptVisits, err := run(policy.NewBenefitCost(c.Seed), "adaptive order")
	if err != nil {
		return nil, err
	}

	end := fixedOut.End()
	if adaptOut.End() > end {
		end = adaptOut.End()
	}
	res := &Result{
		ID:     "ext-reorder",
		Title:  "adaptive selection ordering: low-selectivity predicate first",
		Series: []*stats.Series{adaptOut, fixedOut},
		End:    end,
	}
	res.Summary = append(res.Summary,
		fmt.Sprintf("final results: adaptive=%.0f fixed=%.0f (identical)", adaptOut.Final(), fixedOut.Final()),
		fmt.Sprintf("selection-module visits: adaptive=%d fixed=%d (adaptive learns to test the ~%d%%-pass predicate first)",
			adaptVisits, fixedVisits, int(c.PassLow)),
		fmt.Sprintf("completion: adaptive=%.1fs fixed=%.1fs", adaptOut.End().Seconds(), fixedOut.End().Seconds()),
	)
	return res, nil
}
