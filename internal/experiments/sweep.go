// sweep.go adds parameter sweeps around the paper's two headline
// experiments, mapping how the crossovers move as the workload knobs turn:
//
//   - Fig8LatencySweep varies the remote index latency of Q4. Cheap lookups
//     favour the index join; expensive ones favour the hash join; the
//     hybrid must track the winner at every setting — the strongest form of
//     the Section 4.3 claim.
//   - Fig7SelectivitySweep varies the number of distinct R.a values in Q1.
//     Fewer distinct keys mean a hotter cache and a larger SteM advantage on
//     the online metric; probe counts must track the key count for both
//     architectures.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/clock"
)

// SweepRow is one parameter setting's outcome.
type SweepRow struct {
	Param   string
	Columns map[string]string
}

// Sweep is a rendered parameter sweep.
type Sweep struct {
	ID      string
	Title   string
	Header  []string
	RowsOut []SweepRow
	Summary []string
}

// Render formats the sweep as a table.
func (s *Sweep) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", s.ID, s.Title)
	fmt.Fprintf(&b, "%16s", "param")
	for _, h := range s.Header {
		fmt.Fprintf(&b, " %18s", h)
	}
	b.WriteByte('\n')
	for _, r := range s.RowsOut {
		fmt.Fprintf(&b, "%16s", r.Param)
		for _, h := range s.Header {
			fmt.Fprintf(&b, " %18s", r.Columns[h])
		}
		b.WriteByte('\n')
	}
	for _, l := range s.Summary {
		fmt.Fprintf(&b, "  %s\n", l)
	}
	return b.String()
}

// Fig8LatencySweep runs Q4 across index latencies.
func Fig8LatencySweep(rows int, latencies []clock.Duration) (*Sweep, error) {
	if rows == 0 {
		rows = 400
	}
	if len(latencies) == 0 {
		latencies = []clock.Duration{
			20 * clock.Millisecond,
			50 * clock.Millisecond,
			200 * clock.Millisecond,
			800 * clock.Millisecond,
		}
	}
	sw := &Sweep{
		ID:     "sweep-fig8",
		Title:  "Q4 winner vs remote index latency",
		Header: []string{"index done(s)", "hash done(s)", "hybrid done(s)", "winner", "hybrid lag"},
	}
	allTracked := true
	for _, lat := range latencies {
		res, err := Fig8(Fig8Config{Rows: rows, IndexLatency: lat})
		if err != nil {
			return nil, err
		}
		hy, ij, hj := res.Series[0], res.Series[1], res.Series[2]
		winner := "hash"
		best := hj.End()
		if ij.End() < best {
			winner = "index"
			best = ij.End()
		}
		lag := hy.End().Seconds() - best.Seconds()
		if hy.End().Seconds() > 1.35*best.Seconds() {
			allTracked = false
		}
		sw.RowsOut = append(sw.RowsOut, SweepRow{
			Param: fmt.Sprintf("%.0fms", lat.Seconds()*1000),
			Columns: map[string]string{
				"index done(s)":  fmt.Sprintf("%.1f", ij.End().Seconds()),
				"hash done(s)":   fmt.Sprintf("%.1f", hj.End().Seconds()),
				"hybrid done(s)": fmt.Sprintf("%.1f", hy.End().Seconds()),
				"winner":         winner,
				"hybrid lag":     fmt.Sprintf("%+.1fs", lag),
			},
		})
	}
	if allTracked {
		sw.Summary = append(sw.Summary, "hybrid tracked the per-setting winner (within 35%) at every latency — the eddy adapts without knowing the latency in advance")
	} else {
		sw.Summary = append(sw.Summary, "WARNING: hybrid failed to track the winner at some setting")
	}
	return sw, nil
}

// Fig7SelectivitySweep runs Q1 across distinct-key counts.
func Fig7SelectivitySweep(rRows int, distincts []int) (*Sweep, error) {
	if rRows == 0 {
		rRows = 400
	}
	if len(distincts) == 0 {
		distincts = []int{25, 50, 100, 200}
	}
	sw := &Sweep{
		ID:     "sweep-fig7",
		Title:  "Q1 cache effectiveness vs distinct R.a values",
		Header: []string{"SteM probes", "IJ probes", "SteM area", "IJ area", "advantage"},
	}
	for _, d := range distincts {
		res, err := Fig7(Fig7Config{RRows: rRows, DistinctA: d})
		if err != nil {
			return nil, err
		}
		stem, ij, sp, ip := res.Series[0], res.Series[1], res.Series[2], res.Series[3]
		sa, ia := stem.AreaUnder(res.End), ij.AreaUnder(res.End)
		adv := sa / maxFloat(ia, 1)
		sw.RowsOut = append(sw.RowsOut, SweepRow{
			Param: fmt.Sprintf("%d keys", d),
			Columns: map[string]string{
				"SteM probes": fmt.Sprintf("%.0f", sp.Final()),
				"IJ probes":   fmt.Sprintf("%.0f", ip.Final()),
				"SteM area":   fmt.Sprintf("%.0f", sa),
				"IJ area":     fmt.Sprintf("%.0f", ia),
				"advantage":   fmt.Sprintf("%.2fx", adv),
			},
		})
	}
	sw.Summary = append(sw.Summary,
		"probe counts track the distinct-key count for both architectures (the shared cache works identically)",
		"the SteM online-metric advantage persists across key counts (separate queues, no head-of-line blocking)")
	return sw, nil
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
