// Package experiments regenerates every figure and table of the paper's
// evaluation (Section 4), plus measurable versions of the adaptation claims
// the paper states but relegates to the full technical report. Each
// experiment returns the series behind one figure together with a formatted
// text rendering, and is exercised both by cmd/experiments and by the
// benchmark harness at the repository root.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/clock"
	"repro/internal/eddy"
	"repro/internal/stats"
	"repro/internal/tuple"
)

// Result is one regenerated figure or table.
type Result struct {
	// ID is the paper artifact, e.g. "fig7".
	ID string
	// Title describes what the paper shows.
	Title string
	// Series are the measured curves.
	Series []*stats.Series
	// Summary lines give the shape-level findings (who wins, crossovers).
	Summary []string
	// End is the time horizon of the run.
	End clock.Time
}

// Render formats the result as the textual analogue of the paper's figure.
func (r *Result) Render(samples int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Series) > 0 {
		b.WriteString(stats.Table(r.End, samples, r.Series...))
	}
	for _, s := range r.Summary {
		fmt.Fprintf(&b, "  %s\n", s)
	}
	return b.String()
}

// runCollect executes a routing on the simulation engine, collecting the
// cumulative-results series and invoking extra hooks.
func runCollect(r eddy.Routing, name string, deadline clock.Time,
	hook func(sim *eddy.Sim)) (*stats.Series, *eddy.Sim, error) {
	sim := eddy.NewSim(r)
	sim.Deadline = deadline
	series := stats.NewSeries(name)
	sim.OnOutput = func(_ *tuple.Tuple, at clock.Time) { series.Inc(at) }
	if hook != nil {
		hook(sim)
	}
	if _, err := sim.Run(); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", name, err)
	}
	return series, sim, nil
}
