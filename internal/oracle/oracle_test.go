package oracle

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/tuple"
	"repro/internal/value"
)

func row(vs ...int64) tuple.Row {
	r := make(tuple.Row, len(vs))
	for i, v := range vs {
		r[i] = value.NewInt(v)
	}
	return r
}

func TestComputeSmallJoin(t *testing.T) {
	rT := schema.MustTable("R", schema.IntCol("k"), schema.IntCol("a"))
	sT := schema.MustTable("S", schema.IntCol("x"))
	rData := source.MustTable(rT, []tuple.Row{row(1, 10), row(2, 20), row(2, 20)}) // dup row
	sData := source.MustTable(sT, []tuple.Row{row(10), row(10), row(30)})          // dup row
	q := query.MustNew([]*schema.Table{rT, sT},
		[]pred.P{pred.EquiJoin(0, 1, 1, 0)},
		[]query.AMDecl{
			{Table: 0, Kind: query.Scan, Data: rData, ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}},
			{Table: 1, Kind: query.Scan, Data: sData, ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}},
		})
	res := Compute(q)
	// Set semantics: dup rows collapse; only (1,10)x(10) matches.
	if len(res) != 1 {
		t.Fatalf("oracle = %v, want 1 result", res)
	}
	for _, n := range res {
		if n != 1 {
			t.Error("result multiplicity must be 1 under set semantics")
		}
	}
}

func TestComputeWithSelections(t *testing.T) {
	rT := schema.MustTable("R", schema.IntCol("k"))
	rData := source.MustTable(rT, []tuple.Row{row(1), row(2), row(3)})
	q := query.MustNew([]*schema.Table{rT},
		[]pred.P{pred.Selection(0, 0, pred.Ge, value.NewInt(2))},
		[]query.AMDecl{{Table: 0, Kind: query.Scan, Data: rData, ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}}})
	if len(Compute(q)) != 2 {
		t.Error("selection oracle wrong")
	}
}

func TestDiff(t *testing.T) {
	want := Result{"a": 1, "b": 2}
	got := Result{"a": 1, "b": 1, "c": 1}
	missing, extra := Diff(want, got)
	if len(missing) != 1 || missing[0] != "b" {
		t.Errorf("missing = %v", missing)
	}
	if len(extra) != 1 || extra[0] != "c" {
		t.Errorf("extra = %v", extra)
	}
	m2, e2 := Diff(want, Result{"a": 1, "b": 2})
	if len(m2) != 0 || len(e2) != 0 {
		t.Error("identical multisets must diff empty")
	}
}
