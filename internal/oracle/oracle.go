// Package oracle computes query results by brute force: the cartesian
// product of all base tables filtered by every predicate. It is the ground
// truth that the correctness properties of Section 3 (Theorems 1 and 2) are
// tested against.
package oracle

import (
	"repro/internal/query"
	"repro/internal/tuple"
)

// Result is a multiset of result keys (tuple.ResultKey encodings) with
// counts.
type Result map[string]int

// Compute returns the exact result multiset of the query, drawing each
// table's rows from the first AM that serves it (competitive AMs are
// presumed consistent, as the paper assumes).
func Compute(q *query.Q) Result {
	rowsFor := make([][]tuple.Row, q.NumTables())
	for t := range rowsFor {
		ams := q.AMsOn(t)
		rowsFor[t] = dedup(q.AMs[ams[0]].Data.Rows)
	}
	return ComputeFromRows(q, rowsFor)
}

// ComputeFromRows is Compute with explicit per-table row sets.
func ComputeFromRows(q *query.Q, rowsFor [][]tuple.Row) Result {
	res := make(Result)
	n := q.NumTables()
	cur := make([]tuple.Row, n)
	var rec func(t int)
	rec = func(t int) {
		if t == n {
			out := tuple.NewSingleton(n, 0, cur[0])
			for i := 1; i < n; i++ {
				s := tuple.NewSingleton(n, i, cur[i])
				out = out.Concat(s)
			}
			for _, p := range q.Preds {
				if !p.Eval(out) {
					return
				}
			}
			res[out.ResultKey()]++
			return
		}
		for _, r := range rowsFor[t] {
			cur[t] = r
			rec(t + 1)
		}
	}
	rec(0)
	return res
}

// dedup applies set semantics to a table's rows, matching the SteM's
// duplicate elimination (Section 3.2).
func dedup(rows []tuple.Row) []tuple.Row {
	seen := make(map[string]bool, len(rows))
	var out []tuple.Row
	for _, r := range rows {
		k := r.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// Diff compares an observed result multiset against the oracle, returning
// missing (in want, not got or undercounted) and extra (duplicates or wrong
// tuples) keys.
func Diff(want, got Result) (missing, extra []string) {
	for k, wc := range want {
		if got[k] < wc {
			missing = append(missing, k)
		}
	}
	for k, gc := range got {
		if gc > want[k] {
			extra = append(extra, k)
		}
	}
	return missing, extra
}
