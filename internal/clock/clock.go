// Package clock provides the time model shared by the two execution engines.
//
// The paper's experiments implement remote index lookups "as sleeps of
// identical duration" (Table 3). To regenerate the paper's time-series
// figures deterministically and quickly, the simulation engine runs on a
// virtual clock advanced by a discrete-event loop; the concurrent engine runs
// on a real clock, optionally scaled so that a "paper second" takes a
// millisecond of wall time.
package clock

import (
	"sync"
	"time"
)

// Time is a point in virtual time, in nanoseconds since query start.
type Time int64

// Duration is a span of virtual time, in nanoseconds.
type Duration int64

// Common durations, mirroring time package conventions.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Seconds returns the time as floating-point seconds, for experiment output.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Seconds returns the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Scale returns the duration multiplied by f.
func Scale(d Duration, f float64) Duration { return Duration(float64(d) * f) }

// Clock abstracts "now" and "sleep" for the concurrent engine. The simulation
// engine does not use Clock: it owns time directly via its event queue.
type Clock interface {
	// Now returns the current virtual time.
	Now() Time
	// Sleep blocks for the given virtual duration.
	Sleep(d Duration)
	// After returns a channel that delivers after the given virtual duration.
	After(d Duration) <-chan struct{}
}

// Waiter is an optional Clock extension for allocation-free waiting: the
// concurrent engine sleeps a modeled duration on every batch service and
// every delayed emission, and After's per-call channel + timer garbage made
// those waits a top allocation site. WaitOrDone blocks for the virtual
// duration d, returning false early when done closes.
type Waiter interface {
	WaitOrDone(d Duration, done <-chan struct{}) bool
}

// Real is a Clock backed by wall time. Factor compresses virtual time:
// Factor 0.001 makes one virtual second cost one real millisecond, so
// examples reproduce the paper's multi-minute runs in tens of milliseconds.
type Real struct {
	start  time.Time
	factor float64
	mu     sync.Mutex
}

// NewReal returns a real clock with the given compression factor. A factor of
// 1 runs in real time; smaller factors run faster.
func NewReal(factor float64) *Real {
	if factor <= 0 {
		factor = 1
	}
	return &Real{start: time.Now(), factor: factor}
}

// Now implements Clock.
func (r *Real) Now() Time {
	real := time.Since(r.start)
	return Time(float64(real) / r.factor)
}

// Sleep implements Clock.
func (r *Real) Sleep(d Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(time.Duration(float64(d) * r.factor))
}

// timerPool recycles wall-clock timers across WaitOrDone calls. Reusing a
// timer after Stop/fire without draining is safe on Go ≥1.23: timer
// channels are unbuffered and Reset guarantees no stale delivery.
var timerPool sync.Pool

// WaitOrDone implements Waiter with a pooled timer per wait.
func (r *Real) WaitOrDone(d Duration, done <-chan struct{}) bool {
	if d <= 0 {
		return true
	}
	wall := time.Duration(float64(d) * r.factor)
	if wall <= 0 {
		return true
	}
	t, _ := timerPool.Get().(*time.Timer)
	if t == nil {
		t = time.NewTimer(wall)
	} else {
		t.Reset(wall)
	}
	fired := false
	select {
	case <-t.C:
		fired = true
	case <-done:
		t.Stop()
	}
	timerPool.Put(t)
	return fired
}

// After implements Clock.
func (r *Real) After(d Duration) <-chan struct{} {
	ch := make(chan struct{}, 1)
	if d <= 0 {
		ch <- struct{}{}
		return ch
	}
	time.AfterFunc(time.Duration(float64(d)*r.factor), func() { ch <- struct{}{} })
	return ch
}
