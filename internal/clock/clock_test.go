package clock

import (
	"testing"
	"time"
)

func TestTimeArithmetic(t *testing.T) {
	ts := Time(0).Add(3 * Second)
	if ts.Seconds() != 3 {
		t.Errorf("Seconds = %v", ts.Seconds())
	}
	if (1500 * Millisecond).Seconds() != 1.5 {
		t.Error("Duration.Seconds wrong")
	}
	if Scale(Second, 0.5) != 500*Millisecond {
		t.Error("Scale wrong")
	}
}

func TestRealClockCompression(t *testing.T) {
	// Factor 1e-6: one virtual second per microsecond of wall time.
	c := NewReal(0.000001)
	c.Sleep(2 * Second) // ~2µs wall
	if now := c.Now(); now < Time(1*Second) {
		t.Errorf("virtual clock barely advanced: %v", now)
	}
}

func TestRealClockAfter(t *testing.T) {
	c := NewReal(0.0001)
	select {
	case <-c.After(100 * Millisecond): // 10µs wall
	case <-time.After(time.Second):
		t.Fatal("After never fired")
	}
	// Non-positive durations fire immediately.
	select {
	case <-c.After(0):
	case <-time.After(time.Second):
		t.Fatal("After(0) never fired")
	}
}

func TestNewRealDefaultsFactor(t *testing.T) {
	c := NewReal(0)
	if c == nil {
		t.Fatal("nil clock")
	}
	c.Sleep(-5) // must not block or panic
}
