// Package join implements the traditional, encapsulated join operators the
// paper compares against: the cached index join of Figure 5 and the binary
// symmetric hash join (SHJ) of Figure 2(i). Both are flow.Modules, so the
// same engines drive them inside static plans and the eddy-with-join-modules
// architecture of Figure 1(b).
//
// The point of the paper is precisely what these operators hide: the index
// join serializes cache lookups behind remote index lookups in one queue
// (the head-of-line blocking Section 4.2 measures), and the SHJ fuses its
// build and probe halves so the eddy cannot reorder or share them.
package join

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/flow"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/source"
	"repro/internal/tuple"
)

// Stage is a join operator usable in a static pipeline: a module that
// declares which tuples it accepts.
type Stage interface {
	flow.Module
	// Accepts reports whether the stage processes tuples with this state.
	Accepts(t *tuple.Tuple) bool
}

// verifyAll evaluates every query predicate newly applicable to cat, marking
// done bits; it reports whether all hold.
func verifyAll(q *query.Q, cat *tuple.Tuple) bool {
	for _, p := range q.Preds {
		if cat.Done.Has(p.ID) || !p.ApplicableTo(cat.Span) {
			continue
		}
		if !p.Eval(cat) {
			return false
		}
		cat.Done = cat.Done.With(p.ID)
	}
	return true
}

// bindKey extracts the values of the given columns of table tab from probe t
// via equality join predicates.
func bindKey(q *query.Q, t *tuple.Tuple, tab int, cols []int) (tuple.Row, bool) {
	row := make(tuple.Row, 0, len(cols))
	for _, c := range cols {
		found := false
		for _, p := range q.Preds {
			if !p.IsEquiJoin() {
				continue
			}
			if p.Left.Table == tab && p.Left.Col == c && t.Span.Has(p.Right.Table) {
				row = append(row, t.Value(p.Right.Table, p.Right.Col))
				found = true
				break
			}
			if p.Right.Table == tab && p.Right.Col == c && t.Span.Has(p.Left.Table) {
				row = append(row, t.Value(p.Left.Table, p.Left.Col))
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return row, true
}

// ---------------------------------------------------------------------------
// IndexJoin

// IndexJoinConfig parameterizes an index join operator.
type IndexJoinConfig struct {
	Q *query.Q
	// ProbeSpan is the exact span of accepted probe tuples (the outer side).
	ProbeSpan tuple.TableSet
	// Table is the indexed (inner) table's query position.
	Table int
	// Data and KeyCols describe the remote index.
	Data    *source.Table
	KeyCols []int
	// Latency is the synchronous remote lookup cost; CacheCost the local
	// cache-lookup cost; PerMatchCost per concatenated result.
	Latency      clock.Duration
	CacheCost    clock.Duration
	PerMatchCost clock.Duration
}

// IndexJoin is the traditional index join of Figure 5: a single module
// encapsulating both a lookup cache and the remote index. Because it is one
// single-server module, a probe that misses the cache blocks every probe
// behind it for the full remote latency — the head-of-line blocking that
// Section 4.2 shows SteMs eliminate.
type IndexJoin struct {
	cfg   IndexJoinConfig
	index *source.Index
	// cache memoizes remote lookups, keyed by bind-value hash and verified
	// against the stored bind values: a colliding key must trigger its own
	// remote lookup, not reuse another key's rows.
	cache  map[uint64][]cacheEnt
	name   string
	probes uint64
}

// cacheEnt is one verified lookup-cache entry.
type cacheEnt struct {
	vals tuple.Row
	rows []tuple.Row
}

// NewIndexJoin builds the operator, constructing the remote-side index.
func NewIndexJoin(cfg IndexJoinConfig) (*IndexJoin, error) {
	ix, err := source.BuildIndex(cfg.Data, source.IndexSpec{KeyCols: cfg.KeyCols, Latency: cfg.Latency})
	if err != nil {
		return nil, err
	}
	return &IndexJoin{
		cfg:   cfg,
		index: ix,
		cache: make(map[uint64][]cacheEnt),
		name:  fmt.Sprintf("IndexJoin(%s)", cfg.Q.Tables[cfg.Table].Name),
	}, nil
}

// Name implements flow.Module.
func (j *IndexJoin) Name() string { return j.name }

// Parallel implements flow.Module: one queue for both physical operations —
// the encapsulation the paper breaks.
func (j *IndexJoin) Parallel() int { return 1 }

// Probes returns the number of remote index lookups issued (Figure 7(ii)).
func (j *IndexJoin) Probes() uint64 { return j.probes }

// Accepts implements Stage.
func (j *IndexJoin) Accepts(t *tuple.Tuple) bool {
	return !t.Seed && t.EOT == nil && t.Span == j.cfg.ProbeSpan
}

// Process implements flow.Module: cache lookup, then on a miss a blocking
// remote lookup, then concatenation.
func (j *IndexJoin) Process(t *tuple.Tuple, now clock.Time) ([]flow.Emission, clock.Duration) {
	vals, ok := bindKey(j.cfg.Q, t, j.cfg.Table, j.cfg.KeyCols)
	if !ok {
		panic(fmt.Sprintf("join: unbindable probe %s at %s", t, j.name))
	}
	key := vals.Hash64()
	cost := j.cfg.CacheCost
	var rows []tuple.Row
	hit := false
	for _, c := range j.cache[key] {
		if c.vals.Equal(vals) {
			rows, hit = c.rows, true
			break
		}
	}
	if !hit {
		rows = j.index.Lookup(vals)
		j.cache[key] = append(j.cache[key], cacheEnt{vals: vals, rows: rows})
		j.probes++
		cost += j.cfg.Latency // synchronous: blocks the module's one queue
	}
	n := len(j.cfg.Q.Tables)
	var out []flow.Emission
	for _, r := range rows {
		s := tuple.NewSingleton(n, j.cfg.Table, r)
		cat := t.Concat(s)
		if !verifyAll(j.cfg.Q, cat) {
			continue
		}
		out = append(out, flow.Emit(cat))
	}
	cost += clock.Duration(len(out)) * j.cfg.PerMatchCost
	return out, cost
}

// ---------------------------------------------------------------------------
// Symmetric hash join

// SHJConfig parameterizes a binary symmetric hash join.
type SHJConfig struct {
	Q *query.Q
	// Left and Right are the exact spans of the two inputs; for a pipeline
	// of binary SHJs the left span of an upper join is the union span of the
	// join below it (intermediate results are materialized, Section 2.3).
	Left, Right tuple.TableSet
	// LeftRef/RightRef are the hash columns (from an equality join predicate
	// linking the two sides).
	LeftRef, RightRef pred.ColRef
	BuildCost         clock.Duration
	ProbeCost         clock.Duration
	PerMatchCost      clock.Duration
}

// SHJ is a pipelining binary symmetric hash join: each input tuple is built
// into its side's hash table and immediately probed into the other side's.
// Build and probe are fused in one module visit, so no timestamping is
// needed — but nothing inside is visible to the eddy.
// The hash tables are keyed by the join value's hash; verifyAll re-verifies
// the join predicate on every concatenation, so colliding values cannot
// produce wrong results, only extra verification work.
type SHJ struct {
	cfg   SHJConfig
	left  map[uint64][]*tuple.Tuple
	right map[uint64][]*tuple.Tuple
	name  string
}

// NewSHJ builds a symmetric hash join module.
func NewSHJ(cfg SHJConfig) *SHJ {
	return &SHJ{
		cfg:   cfg,
		left:  make(map[uint64][]*tuple.Tuple),
		right: make(map[uint64][]*tuple.Tuple),
		name:  fmt.Sprintf("SHJ(%s⋈%s)", cfg.Left, cfg.Right),
	}
}

// Name implements flow.Module.
func (j *SHJ) Name() string { return j.name }

// Parallel implements flow.Module.
func (j *SHJ) Parallel() int { return 1 }

// Accepts implements Stage.
func (j *SHJ) Accepts(t *tuple.Tuple) bool {
	if t.Seed || t.EOT != nil {
		return false
	}
	return t.Span == j.cfg.Left || t.Span == j.cfg.Right
}

// Size returns the total number of tuples materialized in both hash tables.
func (j *SHJ) Size() int {
	n := 0
	for _, v := range j.left {
		n += len(v)
	}
	for _, v := range j.right {
		n += len(v)
	}
	return n
}

// Process implements flow.Module: build into own side, probe the other.
func (j *SHJ) Process(t *tuple.Tuple, now clock.Time) ([]flow.Emission, clock.Duration) {
	var own, other map[uint64][]*tuple.Tuple
	var ownRef pred.ColRef
	switch t.Span {
	case j.cfg.Left:
		own, other, ownRef = j.left, j.right, j.cfg.LeftRef
	case j.cfg.Right:
		own, other, ownRef = j.right, j.left, j.cfg.RightRef
	default:
		panic(fmt.Sprintf("join: %s got tuple spanning %s", j.name, t.Span))
	}
	key := t.Value(ownRef.Table, ownRef.Col).Hash64()
	own[key] = append(own[key], t)

	var out []flow.Emission
	for _, o := range other[key] {
		cat := t.Concat(o)
		if !verifyAll(j.cfg.Q, cat) {
			continue
		}
		out = append(out, flow.Emit(cat))
	}
	cost := j.cfg.BuildCost + j.cfg.ProbeCost + clock.Duration(len(out))*j.cfg.PerMatchCost
	return out, cost
}
