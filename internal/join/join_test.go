package join

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/tuple"
	"repro/internal/value"
)

func row(vs ...int64) tuple.Row {
	r := make(tuple.Row, len(vs))
	for i, v := range vs {
		r[i] = value.NewInt(v)
	}
	return r
}

func fixtureQ(t *testing.T) *query.Q {
	t.Helper()
	rT := schema.MustTable("R", schema.IntCol("k"), schema.IntCol("a"))
	sT := schema.MustTable("S", schema.IntCol("x"), schema.IntCol("y"))
	rData := source.MustTable(rT, []tuple.Row{row(1, 10), row(2, 20)})
	sData := source.MustTable(sT, []tuple.Row{row(10, 100), row(10, 101), row(20, 200)})
	return query.MustNew([]*schema.Table{rT, sT},
		[]pred.P{pred.EquiJoin(0, 1, 1, 0)},
		[]query.AMDecl{
			{Table: 0, Kind: query.Scan, Data: rData, ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}},
			{Table: 1, Kind: query.Scan, Data: sData, ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}},
		})
}

func TestIndexJoinCacheMissThenHit(t *testing.T) {
	q := fixtureQ(t)
	sData := q.AMs[1].Data
	j, err := NewIndexJoin(IndexJoinConfig{
		Q: q, ProbeSpan: tuple.Single(0), Table: 1,
		Data: sData, KeyCols: []int{0},
		Latency: 100 * clock.Millisecond, CacheCost: clock.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r1 := tuple.NewSingleton(2, 0, row(1, 10))
	out, cost := j.Process(r1, 0)
	if len(out) != 2 {
		t.Fatalf("miss returned %d results, want 2", len(out))
	}
	if cost < 100*clock.Millisecond {
		t.Error("cache miss must pay the remote latency (head-of-line blocking)")
	}
	if j.Probes() != 1 {
		t.Errorf("Probes = %d", j.Probes())
	}
	// Same key again: hit, cheap, no new probe.
	r3 := tuple.NewSingleton(2, 0, row(3, 10))
	out, cost = j.Process(r3, 0)
	if len(out) != 2 || cost >= 100*clock.Millisecond || j.Probes() != 1 {
		t.Errorf("cache hit wrong: out=%d cost=%v probes=%d", len(out), cost, j.Probes())
	}
	// Results carry the join's done bit and full span.
	for _, e := range out {
		if e.T.Span != tuple.All(2) || !e.T.Done.Has(0) {
			t.Errorf("bad result %v", e.T)
		}
	}
}

func TestIndexJoinAccepts(t *testing.T) {
	q := fixtureQ(t)
	j, _ := NewIndexJoin(IndexJoinConfig{Q: q, ProbeSpan: tuple.Single(0), Table: 1,
		Data: q.AMs[1].Data, KeyCols: []int{0}})
	if !j.Accepts(tuple.NewSingleton(2, 0, row(1, 10))) {
		t.Error("must accept probe-span tuples")
	}
	if j.Accepts(tuple.NewSingleton(2, 1, row(10, 100))) {
		t.Error("must reject other spans")
	}
	if j.Accepts(tuple.NewSeed(2, 0)) {
		t.Error("must reject seeds")
	}
	if j.Parallel() != 1 || j.Name() == "" {
		t.Error("module metadata wrong")
	}
}

func TestSHJSymmetricBuildProbe(t *testing.T) {
	q := fixtureQ(t)
	j := NewSHJ(SHJConfig{
		Q: q, Left: tuple.Single(0), Right: tuple.Single(1),
		LeftRef: pred.ColRef{Table: 0, Col: 1}, RightRef: pred.ColRef{Table: 1, Col: 0},
	})
	r1 := tuple.NewSingleton(2, 0, row(1, 10))
	if out, _ := j.Process(r1, 0); len(out) != 0 {
		t.Fatal("first input has nothing to match")
	}
	s1 := tuple.NewSingleton(2, 1, row(10, 100))
	out, _ := j.Process(s1, 0)
	if len(out) != 1 {
		t.Fatalf("matching input returned %d, want 1", len(out))
	}
	if out[0].T.Span != tuple.All(2) || !out[0].T.Done.Has(0) {
		t.Error("result span/done wrong")
	}
	// Duplicate value on the other side matches the stored one.
	s2 := tuple.NewSingleton(2, 1, row(10, 101))
	if out, _ := j.Process(s2, 0); len(out) != 1 {
		t.Error("second matching S row must also join")
	}
	if j.Size() != 3 {
		t.Errorf("Size = %d, want 3 stored tuples", j.Size())
	}
}

func TestSHJExactness(t *testing.T) {
	// Feed all rows of both sides in arbitrary interleaving; the SHJ must
	// produce exactly the join, once each.
	q := fixtureQ(t)
	j := NewSHJ(SHJConfig{
		Q: q, Left: tuple.Single(0), Right: tuple.Single(1),
		LeftRef: pred.ColRef{Table: 0, Col: 1}, RightRef: pred.ColRef{Table: 1, Col: 0},
	})
	var results int
	feed := []*tuple.Tuple{
		tuple.NewSingleton(2, 1, row(10, 100)),
		tuple.NewSingleton(2, 0, row(1, 10)),
		tuple.NewSingleton(2, 1, row(20, 200)),
		tuple.NewSingleton(2, 1, row(10, 101)),
		tuple.NewSingleton(2, 0, row(2, 20)),
	}
	for _, tp := range feed {
		out, _ := j.Process(tp, 0)
		results += len(out)
	}
	if results != 3 { // (1,10)x(10,100),(1,10)x(10,101),(2,20)x(20,200)
		t.Errorf("SHJ produced %d results, want 3", results)
	}
}

func TestSHJAcceptsBothSidesOnly(t *testing.T) {
	q := fixtureQ(t)
	j := NewSHJ(SHJConfig{Q: q, Left: tuple.Single(0), Right: tuple.Single(1),
		LeftRef: pred.ColRef{Table: 0, Col: 1}, RightRef: pred.ColRef{Table: 1, Col: 0}})
	if !j.Accepts(tuple.NewSingleton(2, 0, row(1, 10))) || !j.Accepts(tuple.NewSingleton(2, 1, row(10, 1))) {
		t.Error("must accept both input spans")
	}
	if j.Accepts(tuple.NewSeed(2, 0)) {
		t.Error("must reject seeds")
	}
}

func TestBindKey(t *testing.T) {
	q := fixtureQ(t)
	r := tuple.NewSingleton(2, 0, row(7, 42))
	vals, ok := bindKey(q, r, 1, []int{0})
	if !ok || !vals[0].Equal(value.NewInt(42)) {
		t.Errorf("bindKey = %v %v", vals, ok)
	}
	if _, ok := bindKey(q, r, 1, []int{1}); ok {
		t.Error("unbound column must fail")
	}
}
