// Package workload builds the synthetic data sources of the paper's
// experimental study (Table 3) and general-purpose generators for tests and
// benchmarks.
//
// Table 3 of the paper:
//
//	R ⟨key:int, a:int⟩ — 1000 tuples, scan AM; key is the primary key, a has
//	  250 distinct values randomly assigned.
//	S ⟨x:int, y:int⟩  — asynchronous index AMs on both x and y; all S tuples
//	  have identical values of x and y.
//	T ⟨key:int⟩       — asynchronous index AM on primary key, plus a scan AM.
//
// "Index lookups are implemented as sleeps of identical duration."
package workload

import (
	"math/rand"

	"repro/internal/clock"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/tuple"
	"repro/internal/value"
)

// Timing collects the latency knobs of the paper's testbed. The defaults
// (DefaultTiming) are chosen so the regenerated figures land on the same
// axes as the paper's: query Q1 completes in roughly 400 virtual seconds and
// Q4's scans end near 59 virtual seconds.
type Timing struct {
	// RScanInterArrival paces the scan on R.
	RScanInterArrival clock.Duration
	// TScanInterArrival paces the scan on T.
	TScanInterArrival clock.Duration
	// IndexLatency is the identical sleep of every index lookup.
	IndexLatency clock.Duration
	// IndexParallel bounds concurrent outstanding lookups per index AM.
	IndexParallel int
}

// DefaultTiming returns the timing used by the experiment harness.
func DefaultTiming() Timing {
	return Timing{
		RScanInterArrival: 50 * clock.Millisecond,
		TScanInterArrival: 50 * clock.Millisecond,
		IndexLatency:      1500 * clock.Millisecond,
		IndexParallel:     1,
	}
}

// RSpec configures the generated R table.
type RSpec struct {
	Rows      int // 1000 in the paper
	DistinctA int // 250 in the paper
	Seed      int64
}

// PaperRSpec returns Table 3's R parameters.
func PaperRSpec() RSpec { return RSpec{Rows: 1000, DistinctA: 250, Seed: 1} }

// RTable generates R ⟨key, a⟩: key = 0..Rows-1, a uniform over DistinctA
// values.
func RTable(spec RSpec) *source.Table {
	rng := rand.New(rand.NewSource(spec.Seed))
	sch := schema.MustTable("R", schema.IntCol("key"), schema.IntCol("a"))
	rows := make([]tuple.Row, spec.Rows)
	for i := range rows {
		rows[i] = tuple.Row{value.NewInt(int64(i)), value.NewInt(int64(rng.Intn(spec.DistinctA)))}
	}
	return source.MustTable(sch, rows)
}

// STable generates S ⟨x, y⟩ with one row per distinct value 0..n-1 and
// y = f(x); the paper's S binds x and y identically, so y = x here. A second
// column variant (y = x + yOffset) supports the dual-index experiments.
func STable(n int, yOffset int64) *source.Table {
	sch := schema.MustTable("S", schema.IntCol("x"), schema.IntCol("y"))
	rows := make([]tuple.Row, n)
	for i := range rows {
		rows[i] = tuple.Row{value.NewInt(int64(i)), value.NewInt(int64(i) + yOffset)}
	}
	return source.MustTable(sch, rows)
}

// TTable generates T ⟨key⟩ with keys 0..n-1.
func TTable(n int) *source.Table {
	sch := schema.MustTable("T", schema.IntCol("key"))
	rows := make([]tuple.Row, n)
	for i := range rows {
		rows[i] = tuple.Row{value.NewInt(int64(i))}
	}
	return source.MustTable(sch, rows)
}

// Shuffled returns a copy of the table with its rows in a random delivery
// order. Scan AMs deliver rows in table order; uncorrelated scan orders are
// what give the symmetric hash join its quadratic ramp (each arrival matches
// the other side with probability proportional to that side's progress).
func Shuffled(t *source.Table, seed int64) *source.Table {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]tuple.Row, len(t.Rows))
	copy(rows, t.Rows)
	rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
	return source.MustTable(t.Schema, rows)
}

// Uniform generates a table with the given column names, one key column
// (col 0, sequential) and uniformly random remaining columns over domain.
func Uniform(name string, rows, cols, domain int, seed int64) *source.Table {
	rng := rand.New(rand.NewSource(seed))
	sc := make([]schema.Column, cols)
	sc[0] = schema.IntCol("key")
	for c := 1; c < cols; c++ {
		sc[c] = schema.IntCol(string(rune('a' + c - 1)))
	}
	sch := schema.MustTable(name, sc...)
	out := make([]tuple.Row, rows)
	for i := range out {
		row := make(tuple.Row, cols)
		row[0] = value.NewInt(int64(i))
		for c := 1; c < cols; c++ {
			row[c] = value.NewInt(int64(rng.Intn(domain)))
		}
		out[i] = row
	}
	return source.MustTable(sch, out)
}

// Zipf generates a table whose non-key columns follow a Zipf(s) distribution
// over domain, for skewed-join benchmarks.
func Zipf(name string, rows, cols, domain int, s float64, seed int64) *source.Table {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(domain-1))
	sc := make([]schema.Column, cols)
	sc[0] = schema.IntCol("key")
	for c := 1; c < cols; c++ {
		sc[c] = schema.IntCol(string(rune('a' + c - 1)))
	}
	sch := schema.MustTable(name, sc...)
	out := make([]tuple.Row, rows)
	for i := range out {
		row := make(tuple.Row, cols)
		row[0] = value.NewInt(int64(i))
		for c := 1; c < cols; c++ {
			row[c] = value.NewInt(int64(z.Uint64()))
		}
		out[i] = row
	}
	return source.MustTable(sch, out)
}
