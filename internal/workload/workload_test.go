package workload

import (
	"testing"

	"repro/internal/tuple"
	"repro/internal/value"
)

// TestTable3_R validates the paper's R source: 1000 rows, key is a primary
// key, a has (up to) 250 distinct values randomly assigned.
func TestTable3_R(t *testing.T) {
	r := RTable(PaperRSpec())
	if len(r.Rows) != 1000 {
		t.Fatalf("R has %d rows, want 1000", len(r.Rows))
	}
	keys := make(map[string]bool)
	avals := make(map[int64]bool)
	for _, row := range r.Rows {
		keys[row[0].Key()] = true
		avals[row[1].I] = true
		if row[1].I < 0 || row[1].I >= 250 {
			t.Fatalf("a value %d out of range", row[1].I)
		}
	}
	if len(keys) != 1000 {
		t.Error("key must be a primary key")
	}
	if len(avals) < 200 || len(avals) > 250 {
		t.Errorf("distinct a values = %d, want ≈250", len(avals))
	}
}

// TestTable3_S validates S: keys x and y, identical values per row.
func TestTable3_S(t *testing.T) {
	s := STable(250, 0)
	if len(s.Rows) != 250 {
		t.Fatalf("S has %d rows", len(s.Rows))
	}
	for _, row := range s.Rows {
		if !row[0].Equal(row[1]) {
			t.Fatal("S tuples must have identical values of x and y")
		}
	}
	s2 := STable(10, 5)
	if s2.Rows[3][1].I != 8 {
		t.Error("y offset not applied")
	}
}

// TestTable3_T validates T: primary key table.
func TestTable3_T(t *testing.T) {
	tb := TTable(100)
	if len(tb.Rows) != 100 || tb.Schema.Arity() != 1 {
		t.Fatal("T shape wrong")
	}
	for i, row := range tb.Rows {
		if row[0].I != int64(i) {
			t.Fatal("T keys must be sequential")
		}
	}
}

func TestShuffledPreservesMultiset(t *testing.T) {
	r := RTable(RSpec{Rows: 50, DistinctA: 10, Seed: 3})
	s := Shuffled(r, 7)
	if len(s.Rows) == 0 || &s.Rows[0] == &r.Rows[0] {
		t.Fatal("Shuffled must copy")
	}
	count := func(rows []tuple.Row) map[string]int {
		m := make(map[string]int)
		for _, row := range rows {
			m[row.Key()]++
		}
		return m
	}
	a, b := count(r.Rows), count(s.Rows)
	for k, n := range a {
		if b[k] != n {
			t.Fatal("Shuffled changed the multiset")
		}
	}
	// And it actually permutes (with overwhelming probability).
	same := true
	for i := range r.Rows {
		if !r.Rows[i].Equal(s.Rows[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("Shuffled left rows in place")
	}
}

func TestUniformAndZipf(t *testing.T) {
	u := Uniform("U", 100, 3, 10, 1)
	if len(u.Rows) != 100 || u.Schema.Arity() != 3 {
		t.Fatal("Uniform shape wrong")
	}
	for _, row := range u.Rows {
		for c := 1; c < 3; c++ {
			if row[c].I < 0 || row[c].I >= 10 {
				t.Fatal("Uniform out of domain")
			}
		}
	}
	z := Zipf("Z", 1000, 2, 10, 2.0, 1)
	counts := make(map[int64]int)
	for _, row := range z.Rows {
		counts[row[1].I]++
	}
	if counts[0] < counts[5] {
		t.Error("Zipf must skew toward small values")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := RTable(RSpec{Rows: 20, DistinctA: 5, Seed: 9})
	b := RTable(RSpec{Rows: 20, DistinctA: 5, Seed: 9})
	for i := range a.Rows {
		if !a.Rows[i].Equal(b.Rows[i]) {
			t.Fatal("same seed must generate identical data")
		}
	}
	_ = value.NewInt(0)
}

func TestDefaultTiming(t *testing.T) {
	tm := DefaultTiming()
	if tm.IndexLatency == 0 || tm.RScanInterArrival == 0 || tm.IndexParallel == 0 {
		t.Error("default timing has zero fields")
	}
}
