// Package sm implements Selection Modules (Section 2.1.2): "When a selection
// module receives an input tuple t, it returns t to the eddy if t passes the
// selection predicate, and removes it from the dataflow otherwise. To track
// the progress made by t, if t passes the predicate, the SM marks this fact
// in t's TupleState."
package sm

import (
	"fmt"
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/flow"
	"repro/internal/pred"
	"repro/internal/tuple"
)

// SM is a selection module over one selection predicate.
type SM struct {
	p    pred.P
	cost clock.Duration
	name string

	in   atomic.Uint64
	pass atomic.Uint64
}

// New builds a selection module. The predicate must be a selection.
func New(p pred.P, cost clock.Duration) *SM {
	if p.IsJoin() {
		panic(fmt.Sprintf("sm: join predicate %s given to a selection module", p))
	}
	return &SM{p: p, cost: cost, name: fmt.Sprintf("SM(%s)", p)}
}

// Name implements flow.Module.
func (s *SM) Name() string { return s.name }

// Parallel implements flow.Module.
func (s *SM) Parallel() int { return 1 }

// Pred returns the module's predicate.
func (s *SM) Pred() pred.P { return s.p }

// Reset zeroes the observed-selectivity counters so a pooled router can run
// the same query again with a clean slate.
func (s *SM) Reset() {
	s.in.Store(0)
	s.pass.Store(0)
}

// Selectivity returns the observed pass fraction, or 1 if no tuples have
// been seen; routing policies use it to order selections.
func (s *SM) Selectivity() float64 {
	in := s.in.Load()
	if in == 0 {
		return 1
	}
	return float64(s.pass.Load()) / float64(in)
}

// Process implements flow.Module.
func (s *SM) Process(t *tuple.Tuple, now clock.Time) ([]flow.Emission, clock.Duration) {
	s.in.Add(1)
	if !s.p.Eval(t) {
		return nil, s.cost // fails: removed from the dataflow
	}
	s.pass.Add(1)
	t.Done = t.Done.With(s.p.ID)
	return []flow.Emission{flow.Emit(t)}, s.cost
}

// ProcessBatch implements flow.BatchModule: the predicate is evaluated over
// the whole batch into one emission slice — allocated on the first passing
// tuple, so a fully-filtered batch allocates nothing — and the counters are
// updated with two atomic adds instead of up to two per tuple.
func (s *SM) ProcessBatch(b *flow.Batch, now clock.Time) ([]flow.Emission, clock.Duration) {
	var out []flow.Emission
	for _, t := range b.Tuples {
		if !s.p.Eval(t) {
			continue // fails: removed from the dataflow
		}
		t.Done = t.Done.With(s.p.ID)
		if out == nil {
			out = make([]flow.Emission, 0, b.Len())
		}
		out = append(out, flow.Emit(t))
	}
	s.in.Add(uint64(b.Len()))
	s.pass.Add(uint64(len(out)))
	return out, clock.Duration(b.Len()) * s.cost
}

// ProcessColBatch implements flow.ColModule: a columnar batch is filtered in
// place by the vectorized predicate kernel — failing rows drop out of the
// selection vector, no tuple is materialized, no storage moves — and the
// batch itself bounces back with the predicate's done bit set. Row batches
// fall through to ProcessBatch.
func (s *SM) ProcessColBatch(b *flow.Batch, now clock.Time) ([]flow.Emission, []flow.ColEmission, clock.Duration) {
	cb := b.Col
	if cb == nil {
		out, cost := s.ProcessBatch(b, now)
		return out, nil, cost
	}
	in := cb.Rows()
	live := pred.FilterColConst(cb, s.p)
	s.in.Add(uint64(in))
	s.pass.Add(uint64(live))
	cost := clock.Duration(in) * s.cost
	if live == 0 {
		return nil, nil, cost // every row failed: batch removed from the dataflow
	}
	cb.Done = cb.Done.With(s.p.ID)
	return nil, []flow.ColEmission{{B: cb}}, cost
}
