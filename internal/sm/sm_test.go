package sm

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/pred"
	"repro/internal/tuple"
	"repro/internal/value"
)

func singleton(v int64) *tuple.Tuple {
	return tuple.NewSingleton(1, 0, tuple.Row{value.NewInt(v)})
}

// TestTable1_SM: "bounce back t iff it matches predicate", marking the done
// bit on success.
func TestTable1_SM(t *testing.T) {
	p := pred.Selection(0, 0, pred.Le, value.NewInt(5))
	p.ID = 3
	s := New(p, clock.Millisecond)

	pass := singleton(4)
	out, cost := s.Process(pass, 0)
	if len(out) != 1 || out[0].T != pass {
		t.Fatal("passing tuple must bounce back")
	}
	if !pass.Done.Has(3) {
		t.Error("pass must mark the done bit")
	}
	if cost != clock.Millisecond {
		t.Errorf("cost = %v", cost)
	}

	fail := singleton(9)
	out, _ = s.Process(fail, 0)
	if len(out) != 0 {
		t.Fatal("failing tuple must be removed from the dataflow")
	}
	if fail.Done.Has(3) {
		t.Error("fail must not mark the done bit")
	}
}

func TestSelectivityTracking(t *testing.T) {
	p := pred.Selection(0, 0, pred.Lt, value.NewInt(2))
	s := New(p, 0)
	if s.Selectivity() != 1 {
		t.Error("unvisited SM must report selectivity 1")
	}
	for i := int64(0); i < 10; i++ {
		s.Process(singleton(i), 0)
	}
	if got := s.Selectivity(); got != 0.2 {
		t.Errorf("Selectivity = %v, want 0.2", got)
	}
}

func TestJoinPredicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("join predicate must panic")
		}
	}()
	New(pred.EquiJoin(0, 0, 1, 0), 0)
}

func TestNameAndParallel(t *testing.T) {
	s := New(pred.Selection(0, 0, pred.Eq, value.NewInt(1)), 0)
	if s.Name() == "" || s.Parallel() != 1 {
		t.Error("module metadata wrong")
	}
	if s.Pred().Left.Table != 0 {
		t.Error("Pred accessor wrong")
	}
}
