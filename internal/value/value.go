// Package value defines the scalar value model used throughout the engine.
//
// The paper's experiments use integer-valued synthetic sources (Table 3), but
// federated Web sources carry strings as well, so the value model supports
// both. A dedicated EOT kind encodes the special "End-Of-Transmission" marker
// that access modules place in the non-bound fields of EOT tuples
// (Section 2.1.3 of the paper).
package value

import (
	"fmt"
	"strconv"
)

// Kind enumerates the dynamic type of a V.
type Kind uint8

const (
	// Null is the zero value: an absent field.
	Null Kind = iota
	// Int is a 64-bit signed integer.
	Int
	// Str is a string.
	Str
	// EOTMark is the special End-Of-Transmission marker stored in the
	// non-bound fields of an EOT tuple.
	EOTMark
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Null:
		return "null"
	case Int:
		return "int"
	case Str:
		return "str"
	case EOTMark:
		return "eot"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// V is a single scalar value. The zero V is Null.
type V struct {
	K Kind
	I int64
	S string
}

// NewInt returns an integer value.
func NewInt(i int64) V { return V{K: Int, I: i} }

// NewStr returns a string value.
func NewStr(s string) V { return V{K: Str, S: s} }

// NewNull returns the null value.
func NewNull() V { return V{} }

// NewEOT returns the End-Of-Transmission marker value.
func NewEOT() V { return V{K: EOTMark} }

// IsNull reports whether v is the null value.
func (v V) IsNull() bool { return v.K == Null }

// IsEOT reports whether v is the EOT marker.
func (v V) IsEOT() bool { return v.K == EOTMark }

// Equal reports whether two values are identical in kind and content.
func (v V) Equal(o V) bool {
	if v.K != o.K {
		return false
	}
	switch v.K {
	case Int:
		return v.I == o.I
	case Str:
		return v.S == o.S
	default: // Null == Null, EOT == EOT
		return true
	}
}

// Compare orders two values of the same kind: -1 if v < o, 0 if equal,
// +1 if v > o. Values of different kinds order by kind; Null sorts lowest.
func (v V) Compare(o V) int {
	if v.K != o.K {
		if v.K < o.K {
			return -1
		}
		return 1
	}
	switch v.K {
	case Int:
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		}
		return 0
	case Str:
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		}
		return 0
	default:
		return 0
	}
}

// FNV-1a parameters. The hash layer is hand-inlined rather than built on
// hash/fnv so that no hasher object (or byte buffer) is allocated per
// operation: every dictionary build/probe hashes at least one value, and the
// paper's premise is that those operations are cheap enough to route every
// tuple through.
const (
	// HashSeed is the FNV-1a offset basis: the initial state for HashInto
	// chains (row hashers, lookup-key hashers).
	HashSeed  uint64 = 14695981039346656037
	hashPrime uint64 = 1099511628211
)

// MixUint64 folds the 8 little-endian bytes of u into FNV-1a state h.
func MixUint64(h, u uint64) uint64 {
	for i := 0; i < 64; i += 8 {
		h = (h ^ (u >> i & 0xff)) * hashPrime
	}
	return h
}

// HashInto folds the value into FNV-1a state h, byte-for-byte compatible
// with hashing the kind byte followed by the payload (8 little-endian bytes
// for Int, the raw bytes for Str). Hashes are not injective: every consumer
// that keys storage by them verifies candidates with Equal.
func (v V) HashInto(h uint64) uint64 {
	h = (h ^ uint64(v.K)) * hashPrime
	switch v.K {
	case Int:
		h = MixUint64(h, uint64(v.I))
	case Str:
		for i := 0; i < len(v.S); i++ {
			h = (h ^ uint64(v.S[i])) * hashPrime
		}
	}
	return h
}

// Hash64 returns a stable hash of the value, suitable for hash-index
// buckets. It allocates nothing.
func (v V) Hash64() uint64 { return v.HashInto(HashSeed) }

// String renders the value for debugging and experiment output.
func (v V) String() string {
	switch v.K {
	case Null:
		return "NULL"
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Str:
		return v.S
	case EOTMark:
		return "EOT"
	default:
		return "?"
	}
}

// Key returns a compact string encoding usable as a map key. Distinct values
// always map to distinct keys.
func (v V) Key() string {
	switch v.K {
	case Null:
		return "n"
	case Int:
		return "i" + strconv.FormatInt(v.I, 10)
	case Str:
		return "s" + v.S
	case EOTMark:
		return "e"
	default:
		return "?"
	}
}
