package value

import (
	"hash/fnv"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Generate implements quick.Generator, producing arbitrary values across all
// kinds.
func (V) Generate(r *rand.Rand, size int) reflect.Value {
	switch r.Intn(4) {
	case 0:
		return reflect.ValueOf(NewNull())
	case 1:
		return reflect.ValueOf(NewInt(int64(r.Intn(2*size+1) - size)))
	case 2:
		letters := []byte("abcxyz")
		n := r.Intn(4)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return reflect.ValueOf(NewStr(string(b)))
	default:
		return reflect.ValueOf(NewEOT())
	}
}

func TestKindsAndConstructors(t *testing.T) {
	cases := []struct {
		v    V
		kind Kind
		str  string
	}{
		{NewInt(42), Int, "42"},
		{NewInt(-7), Int, "-7"},
		{NewStr("hi"), Str, "hi"},
		{NewNull(), Null, "NULL"},
		{NewEOT(), EOTMark, "EOT"},
	}
	for _, c := range cases {
		if c.v.K != c.kind {
			t.Errorf("%v: kind %v, want %v", c.v, c.v.K, c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("%v: String %q, want %q", c.v, c.v.String(), c.str)
		}
	}
	if !NewNull().IsNull() || NewInt(0).IsNull() {
		t.Error("IsNull misclassifies")
	}
	if !NewEOT().IsEOT() || NewInt(0).IsEOT() {
		t.Error("IsEOT misclassifies")
	}
}

func TestEqualReflexiveSymmetric(t *testing.T) {
	refl := func(v V) bool { return v.Equal(v) }
	if err := quick.Check(refl, nil); err != nil {
		t.Error(err)
	}
	sym := func(a, b V) bool { return a.Equal(b) == b.Equal(a) }
	if err := quick.Check(sym, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTotalOrder(t *testing.T) {
	anti := func(a, b V) bool { return a.Compare(b) == -b.Compare(a) }
	if err := quick.Check(anti, nil); err != nil {
		t.Error(err)
	}
	consistent := func(a, b V) bool { return (a.Compare(b) == 0) == a.Equal(b) }
	if err := quick.Check(consistent, nil); err != nil {
		t.Error(err)
	}
	trans := func(a, b, c V) bool {
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 {
			return a.Compare(c) <= 0
		}
		return true
	}
	if err := quick.Check(trans, nil); err != nil {
		t.Error(err)
	}
}

func TestHashAndKeyConsistentWithEqual(t *testing.T) {
	f := func(a, b V) bool {
		if a.Equal(b) {
			return a.Hash64() == b.Hash64() && a.Key() == b.Key()
		}
		return a.Key() != b.Key() // Key must be injective
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCompareAcrossKinds(t *testing.T) {
	if NewNull().Compare(NewInt(0)) >= 0 {
		t.Error("Null must sort below Int")
	}
	if NewInt(5).Compare(NewStr("a")) >= 0 {
		t.Error("Int must sort below Str")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Null: "null", Int: "int", Str: "str", EOTMark: "eot"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind must still render")
	}
}

// TestHash64MatchesFNV pins the inlined hash to the reference hash/fnv
// implementation it replaced: kind byte, then payload bytes.
func TestHash64MatchesFNV(t *testing.T) {
	ref := func(v V) uint64 {
		h := fnv.New64a()
		var buf [9]byte
		buf[0] = byte(v.K)
		switch v.K {
		case Int:
			u := uint64(v.I)
			for i := 0; i < 8; i++ {
				buf[1+i] = byte(u >> (8 * i))
			}
			h.Write(buf[:9])
		case Str:
			h.Write(buf[:1])
			h.Write([]byte(v.S))
		default:
			h.Write(buf[:1])
		}
		return h.Sum64()
	}
	f := func(v V) bool { return v.Hash64() == ref(v) }
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestHashIntoChains verifies chained hashing is position-sensitive enough
// for multi-value keys: swapping values changes the hash (with overwhelming
// probability on the quick-check domain).
func TestHashIntoChains(t *testing.T) {
	a, b := NewInt(1), NewInt(2)
	h1 := b.HashInto(a.HashInto(HashSeed))
	h2 := a.HashInto(b.HashInto(HashSeed))
	if h1 == h2 {
		t.Error("chained hash ignores order")
	}
	if a.HashInto(HashSeed) != a.Hash64() {
		t.Error("Hash64 must equal HashInto(HashSeed)")
	}
}
