package core

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/eddy"
	"repro/internal/oracle"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/tuple"
	"repro/internal/value"
)

func fixture(t *testing.T) *query.Q {
	t.Helper()
	rT := schema.MustTable("R", schema.IntCol("k"), schema.IntCol("a"))
	sT := schema.MustTable("S", schema.IntCol("x"), schema.IntCol("y"))
	row := func(a, b int64) tuple.Row { return tuple.Row{value.NewInt(a), value.NewInt(b)} }
	rData := source.MustTable(rT, []tuple.Row{row(1, 10), row(2, 20)})
	sData := source.MustTable(sT, []tuple.Row{row(10, 100), row(20, 200)})
	return query.MustNew([]*schema.Table{rT, sT},
		[]pred.P{pred.EquiJoin(0, 1, 1, 0)},
		[]query.AMDecl{
			{Table: 0, Kind: query.Scan, Data: rData, ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}},
			{Table: 1, Kind: query.Scan, Data: sData, ScanSpec: source.ScanSpec{InterArrival: clock.Millisecond}},
		})
}

func TestExecuteSimulated(t *testing.T) {
	q := fixture(t)
	outs, err := Execute(q, eddy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := make(oracle.Result)
	for _, o := range outs {
		got[o.T.ResultKey()]++
	}
	m, e := oracle.Diff(oracle.Compute(q), got)
	if len(m) > 0 || len(e) > 0 {
		t.Errorf("missing=%v extra=%v", m, e)
	}
}

func TestExecuteThreaded(t *testing.T) {
	run, err := Prepare(fixture(t), eddy.Options{}, Threaded)
	if err != nil {
		t.Fatal(err)
	}
	run.Clock = clock.NewReal(0.0001)
	outs, err := run.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("got %d results, want 2", len(outs))
	}
}

func TestExecuteDeadline(t *testing.T) {
	run, err := Prepare(fixture(t), eddy.Options{}, Simulated)
	if err != nil {
		t.Fatal(err)
	}
	run.Deadline = clock.Time(clock.Microsecond) // before any scan row
	outs, err := run.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 0 {
		t.Errorf("deadline run produced %d results", len(outs))
	}
}
