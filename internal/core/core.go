// Package core assembles the paper's primary contribution into one call:
// given a validated select-project-join query, it instantiates the SteM
// architecture (Section 2.2 — access modules, selection modules, one SteM
// per base table, an eddy router under the Table 2 constraints) and executes
// it on either engine. The building blocks live in internal/stem and
// internal/eddy; this package is the canonical way to put them together, as
// used by the public facade, the experiment harness and the CLI.
//
// Choosing an engine: Simulated is the deterministic discrete-event
// reference — identical output sequences run to run, virtual time, supports
// deadlines — and is what every figure reproduction and oracle test uses.
// Threaded is the deployment-shaped goroutine/channel engine on a
// (compressible) real clock; it honors eddy.Options.Shards by giving each
// SteM shard its own worker, so it is the engine to use when measuring
// parallel behaviour. Both run the same modules and the same router, and
// must produce the same result multiset.
package core

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/eddy"
	"repro/internal/query"
)

// Engine selects the execution engine.
type Engine uint8

const (
	// Simulated runs the deterministic discrete-event engine.
	Simulated Engine = iota
	// Threaded runs the goroutine/channel engine.
	Threaded
)

// Run holds a prepared execution.
type Run struct {
	Router *eddy.Router
	// Engine is the selected engine.
	Engine Engine
	// Clock drives the Threaded engine; nil uses a 1000×-compressed real
	// clock.
	Clock clock.Clock
	// Deadline stops the Simulated engine at the given virtual time.
	Deadline clock.Time
}

// Prepare validates options and instantiates the module graph.
func Prepare(q *query.Q, opts eddy.Options, engine Engine) (*Run, error) {
	r, err := eddy.NewRouter(q, opts)
	if err != nil {
		return nil, err
	}
	return &Run{Router: r, Engine: engine}, nil
}

// Execute runs the query to completion and returns the results in emission
// order, verifying the router never hit a routing dead-end.
func (r *Run) Execute() ([]eddy.Output, error) {
	var outs []eddy.Output
	var err error
	switch r.Engine {
	case Threaded:
		clk := r.Clock
		if clk == nil {
			clk = clock.NewReal(0.001)
		}
		outs, err = eddy.NewConcurrent(r.Router, clk).Run()
	default:
		sim := eddy.NewSim(r.Router)
		sim.Deadline = r.Deadline
		outs, err = sim.Run()
	}
	if err != nil {
		return nil, err
	}
	if n := r.Router.Stuck(); n > 0 {
		return outs, fmt.Errorf("core: %d tuples had no legal route (internal invariant violation)", n)
	}
	return outs, nil
}

// Execute is the one-call form: prepare and run with default options on the
// simulated engine.
func Execute(q *query.Q, opts eddy.Options) ([]eddy.Output, error) {
	r, err := Prepare(q, opts, Simulated)
	if err != nil {
		return nil, err
	}
	return r.Execute()
}
