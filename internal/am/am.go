// Package am implements Access Modules (Section 2.1.3): each AM encapsulates
// one access method — a scan or an index — over a data source. Scans accept
// only the special seed tuple and stream out the whole source, paced by the
// source's ScanSpec. Index AMs accept probe tuples, asynchronously return
// the matching rows after the source's lookup latency, bounce the probe
// tuple back, and finish each probe with an End-Of-Transmission (EOT) tuple
// encoding the probing predicate.
package am

import (
	"fmt"
	"sync"

	"repro/internal/clock"
	"repro/internal/flow"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/source"
	"repro/internal/tuple"
	"repro/internal/value"
)

// Config parameterizes an access module.
type Config struct {
	// Q is the enclosing query and AMIndex the position of this AM's
	// declaration in Q.AMs.
	Q       *query.Q
	AMIndex int
	// DispatchCost is the local service time to issue a request (the remote
	// latency itself comes from the source specs).
	DispatchCost clock.Duration
	// ApplySelections pushes the query's selections on this AM's table into
	// the AM, per Table 1 ("the AM applies the others after the lookup").
	// When false, selection predicates are left to selection modules so the
	// eddy can order them adaptively.
	ApplySelections bool
	// Disabled simulates a source that never responds (for competitive-AM
	// experiments): probes are swallowed, bounced back marked AMProbed only
	// after an infinite wait — i.e. never. Seeds produce nothing.
	Disabled bool
}

// Stats are cumulative AM counters.
type Stats struct {
	SeedsServed uint64
	Probes      uint64 // index lookups issued to the remote source
	DedupProbes uint64 // probes suppressed because the key was already fetched
	RowsOut     uint64
	EOTsOut     uint64
}

// AM is one access module.
type AM struct {
	cfg   Config
	decl  query.AMDecl
	index *source.Index // nil for scans
	name  string

	mu    sync.Mutex
	stats Stats
	// fetched holds the index keys already looked up (or in flight), keyed
	// by row hash with equality verification, so probe dedup allocates no
	// key material.
	fetched map[uint64][]tuple.Row
}

// New builds an access module, constructing the source-side index for index
// AMs.
func New(cfg Config) (*AM, error) {
	decl := cfg.Q.AMs[cfg.AMIndex]
	a := &AM{cfg: cfg, decl: decl}
	if decl.Name != "" {
		a.name = decl.Name
	} else {
		a.name = fmt.Sprintf("AM(%s/%s)", cfg.Q.Tables[decl.Table].Name, decl.Kind)
	}
	if decl.Kind == query.Index {
		ix, err := source.BuildIndex(decl.Data, decl.IndexSpec)
		if err != nil {
			return nil, err
		}
		a.index = ix
		a.fetched = make(map[uint64][]tuple.Row)
	}
	return a, nil
}

// Name implements flow.Module.
func (a *AM) Name() string { return a.name }

// Parallel implements flow.Module: index AMs issue asynchronous lookups with
// the source's concurrency bound; scans are single-server.
func (a *AM) Parallel() int {
	if a.decl.Kind == query.Index {
		return a.decl.IndexSpec.Parallel
	}
	return 1
}

// Table returns the query position of the table this AM serves.
func (a *AM) Table() int { return a.decl.Table }

// Kind returns the access method kind.
func (a *AM) Kind() query.AMKind { return a.decl.Kind }

// AMIndex returns this AM's position in the query's AM list.
func (a *AM) AMIndex() int { return a.cfg.AMIndex }

// Stats returns a snapshot of the AM's counters.
func (a *AM) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Reset clears the AM's run state — counters and the probe-dedup cache — so
// a pooled router can run the same query again. The source-side index built
// at construction is immutable and is kept. Must not be called while a run
// is in progress.
func (a *AM) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats = Stats{}
	clear(a.fetched)
}

// Process implements flow.Module.
func (a *AM) Process(t *tuple.Tuple, now clock.Time) ([]flow.Emission, clock.Duration) {
	if a.cfg.Disabled {
		return nil, a.cfg.DispatchCost
	}
	if t.Seed {
		if a.decl.Kind != query.Scan {
			panic(fmt.Sprintf("am: seed tuple routed to index AM %s", a.name))
		}
		return a.scan(), a.cfg.DispatchCost
	}
	if a.decl.Kind != query.Index {
		panic(fmt.Sprintf("am: probe tuple routed to scan AM %s", a.name))
	}
	out, cost := a.probe(t)
	return out, a.cfg.DispatchCost + cost
}

// The AM intentionally has no native ProcessBatch: engines batch it through
// the flow.Lift shim's sequential loop. Holding a.mu across a batch would
// serialize the CPU side of lookups that index AMs with Parallel > 1 rely
// on overlapping, so the lock stays fine-grained inside probe/scan and a
// native batch path would have nothing left to amortize.

// colScanChunk bounds the rows per columnar scan batch, so one giant source
// does not turn into one giant batch (downstream modules hold locks for a
// whole batch).
const colScanChunk = 1024

// ProcessColBatch implements flow.ColModule. Seeds for an unpaced scan
// produce columnar batches directly from the source rows — the entry point
// of the columnar hot path. Everything else (paced scans, whose per-row
// delivery times differ; index probes, whose dedup and latency are per-key)
// goes through the per-tuple path, materializing columnar probers first.
func (a *AM) ProcessColBatch(b *flow.Batch, now clock.Time) ([]flow.Emission, []flow.ColEmission, clock.Duration) {
	var rows []flow.Emission
	var cols []flow.ColEmission
	var total clock.Duration
	if b.Col != nil {
		for _, t := range b.Col.Materialize() {
			ems, cost := a.Process(t, now)
			rows = append(rows, ems...)
			total += cost
			now = now.Add(cost)
		}
		return rows, nil, total
	}
	for _, t := range b.Tuples {
		if a.colScannable(t) {
			cs, ems := a.scanCols()
			cols = append(cols, cs...)
			rows = append(rows, ems...)
			total += a.cfg.DispatchCost
			now = now.Add(a.cfg.DispatchCost)
			continue
		}
		ems, cost := a.Process(t, now)
		rows = append(rows, ems...)
		total += cost
		now = now.Add(cost)
	}
	return rows, cols, total
}

// colScannable reports whether t is a seed for a scan whose delivery is
// unpaced (no start delay, inter-arrival, or stalls). Paced scans keep the
// row representation: their semantics are per-row delivery times, which a
// batch cannot carry.
func (a *AM) colScannable(t *tuple.Tuple) bool {
	if !t.Seed || a.cfg.Disabled || a.decl.Kind != query.Scan {
		return false
	}
	sp := a.decl.ScanSpec
	return sp.StartDelay == 0 && sp.InterArrival == 0 && len(sp.Stalls) == 0
}

// scanCols streams the source out as columnar batches followed by the scan's
// row-representation EOT (EOT tuples always travel as rows; the engine
// delivers the columnar batches first, preserving scan order). Pushed-down
// selections are applied with the vectorized kernels against the selection
// vector, exactly like passesSelections/markSelections on the row path.
func (a *AM) scanCols() ([]flow.ColEmission, []flow.Emission) {
	q := a.cfg.Q
	n := len(q.Tables)
	tbl := a.decl.Table
	src := a.decl.Data.Rows
	arity := a.decl.Data.Schema.Arity()
	sels := q.SelectionsOn(tbl)
	var done tuple.PredSet
	if a.cfg.ApplySelections {
		for _, p := range sels {
			done = done.With(p.ID)
		}
	}
	var cols []flow.ColEmission
	rowsOut := uint64(0)
	for lo := 0; lo < len(src); lo += colScanChunk {
		hi := lo + colScanChunk
		if hi > len(src) {
			hi = len(src)
		}
		cb := flow.GetColBatch(n)
		cb.Span = tuple.Single(tbl)
		cb.Done = done
		tab := cb.EnsureCols(tbl, arity)
		for _, r := range src[lo:hi] {
			for c := 0; c < arity; c++ {
				tab.Cols[c].AppendV(r[c])
			}
		}
		cb.SetRowCount(hi - lo)
		live := cb.Rows()
		if a.cfg.ApplySelections {
			for _, p := range sels {
				live = pred.FilterColConst(cb, p)
				if live == 0 {
					break
				}
			}
		}
		if live == 0 {
			flow.PutColBatch(cb)
			continue
		}
		rowsOut += uint64(live)
		cols = append(cols, flow.ColEmission{B: cb})
	}
	eot := tuple.NewEOT(n, tbl, a.eotRow(nil, nil), nil)
	ems := []flow.Emission{flow.Emit(eot)}
	a.mu.Lock()
	a.stats.SeedsServed++
	a.stats.RowsOut += rowsOut
	a.stats.EOTsOut++
	a.mu.Unlock()
	return cols, ems
}

// scan streams out the whole source, each row delayed per the ScanSpec, and
// ends with a full EOT ("in the case of a scan AM, the predicate is simply
// true"). The seed tuple is consumed.
func (a *AM) scan() []flow.Emission {
	n := len(a.cfg.Q.Tables)
	rows := a.decl.Data.Rows
	times, eotAt := a.decl.ScanSpec.RowTimes(len(rows))
	out := make([]flow.Emission, 0, len(rows)+1)
	rowsOut := uint64(0)
	for i, r := range rows {
		if a.cfg.ApplySelections && !a.passesSelections(r) {
			continue
		}
		s := tuple.NewSingleton(n, a.decl.Table, r)
		if a.cfg.ApplySelections {
			a.markSelections(s)
		}
		out = append(out, flow.EmitAfter(s, times[i]))
		rowsOut++
	}
	eot := tuple.NewEOT(n, a.decl.Table, a.eotRow(nil, nil), nil)
	out = append(out, flow.EmitAfter(eot, eotAt))
	a.mu.Lock()
	a.stats.SeedsServed++
	a.stats.RowsOut += rowsOut
	a.stats.EOTsOut++
	a.mu.Unlock()
	return out
}

// probe serves an index lookup: it resolves the bind values from the probe
// tuple via the query's equality join predicates, looks them up, filters the
// matches against every other predicate evaluable on (probe ∪ match), and
// emits — after the source latency — the match singletons, the EOT tuple for
// this binding, and the bounced-back probe ("AMs asynchronously bounce back
// each probe tuple to the eddy").
//
// The latency is charged as service time: the AM's Parallel() servers model
// the source's capacity for outstanding asynchronous lookups, so with
// Parallel=1 lookups serialize at the source (the paper's bottleneck: "the
// speed at which the S index can handle R probes") while excess probes queue
// at the AM — not in front of anyone else's cache lookups.
func (a *AM) probe(t *tuple.Tuple) ([]flow.Emission, clock.Duration) {
	q := a.cfg.Q
	bind, ok := q.BindValues(t, a.cfg.AMIndex)
	if !ok {
		panic(fmt.Sprintf("am: unbindable probe %s routed to %s", t, a.name))
	}
	vals := bind[0]
	lat := a.decl.IndexSpec.Latency

	// Rendezvous suppression: if this key has already been fetched (or a
	// lookup is in flight), the matches and EOT are — or will be — in the
	// SteM, where the probe tuple rendezvouses with them (Section 3.3). A
	// duplicate remote lookup would only produce set-semantics duplicates,
	// which is why Figure 7(ii) shows near-identical probe counts for the
	// SteM and index-join architectures.
	key := vals.Hash64()
	a.mu.Lock()
	dup := false
	for _, r := range a.fetched[key] {
		if r.Equal(vals) {
			dup = true
			break
		}
	}
	if dup {
		a.stats.DedupProbes++
		a.mu.Unlock()
		t.AMProbed = true
		return []flow.Emission{flow.Emit(t)}, 0
	}
	a.fetched[key] = append(a.fetched[key], vals)
	a.stats.Probes++
	a.mu.Unlock()

	n := len(q.Tables)
	var out []flow.Emission
	rowsOut := uint64(0)
	// scratch recycles the concatenation used only to filter matches, so
	// non-qualifying rows cost no tuple allocation.
	var scratch *tuple.Tuple
	for _, r := range a.index.Lookup(vals) {
		cat := t.ConcatRowInto(scratch, a.decl.Table, r, tuple.InfTS)
		scratch = cat
		if !a.matchOK(cat) {
			continue
		}
		s := tuple.NewSingleton(n, a.decl.Table, r)
		if a.cfg.ApplySelections {
			a.markSelections(s)
		}
		out = append(out, flow.Emit(s))
		rowsOut++
	}
	keyCols := a.decl.IndexSpec.KeyCols
	eot := tuple.NewEOT(n, a.decl.Table, a.eotRow(keyCols, vals), keyCols)
	out = append(out, flow.Emit(eot))
	a.mu.Lock()
	a.stats.RowsOut += rowsOut
	a.stats.EOTsOut++
	a.mu.Unlock()

	t.AMProbed = true
	out = append(out, flow.Emit(t))
	return out, lat
}

// matchOK verifies every query predicate evaluable on the concatenation of
// the probe and a candidate match (Table 1's match definition). Done bits
// are not recorded here: matches flow out as singletons and predicates are
// re-verified (and marked) when they concatenate inside SteMs.
func (a *AM) matchOK(cat *tuple.Tuple) bool {
	for _, p := range a.cfg.Q.Preds {
		if !p.ApplicableTo(cat.Span) || cat.Done.Has(p.ID) {
			continue
		}
		if p.IsJoin() {
			if !p.Eval(cat) {
				return false
			}
		} else if p.Left.Table == a.decl.Table {
			if !p.Eval(cat) {
				return false
			}
		}
	}
	return true
}

// passesSelections applies the table's selection predicates to a raw row.
func (a *AM) passesSelections(r tuple.Row) bool {
	probe := tuple.NewSingleton(len(a.cfg.Q.Tables), a.decl.Table, r)
	for _, p := range a.cfg.Q.SelectionsOn(a.decl.Table) {
		if !p.Eval(probe) {
			return false
		}
	}
	return true
}

// markSelections records the table's selections as passed in the singleton's
// done bits.
func (a *AM) markSelections(s *tuple.Tuple) {
	for _, p := range a.cfg.Q.SelectionsOn(a.decl.Table) {
		s.Done = s.Done.With(p.ID)
	}
}

// eotRow builds the EOT tuple's row: bound key columns carry the looked-up
// values, every other field the EOT marker.
func (a *AM) eotRow(keyCols []int, vals tuple.Row) tuple.Row {
	arity := a.cfg.Q.Tables[a.decl.Table].Arity()
	row := make(tuple.Row, arity)
	for i := range row {
		row[i] = value.NewEOT()
	}
	for i, c := range keyCols {
		row[c] = vals[i]
	}
	return row
}
