package am

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/tuple"
	"repro/internal/value"
)

func row(vs ...int64) tuple.Row {
	r := make(tuple.Row, len(vs))
	for i, v := range vs {
		r[i] = value.NewInt(v)
	}
	return r
}

// fixtureQ builds R(k,a) ⋈ S(x,y) with a scan on R and an index on S.x,
// optionally with a selection on S.y.
func fixtureQ(t *testing.T, withSel bool) *query.Q {
	t.Helper()
	rT := schema.MustTable("R", schema.IntCol("k"), schema.IntCol("a"))
	sT := schema.MustTable("S", schema.IntCol("x"), schema.IntCol("y"))
	rData := source.MustTable(rT, []tuple.Row{row(1, 10), row(2, 20), row(3, 10)})
	sData := source.MustTable(sT, []tuple.Row{row(10, 100), row(10, 999), row(20, 200)})
	preds := []pred.P{pred.EquiJoin(0, 1, 1, 0)}
	if withSel {
		preds = append(preds, pred.Selection(1, 1, pred.Lt, value.NewInt(500)))
	}
	return query.MustNew([]*schema.Table{rT, sT}, preds,
		[]query.AMDecl{
			{Table: 0, Kind: query.Scan, Data: rData,
				ScanSpec: source.ScanSpec{InterArrival: 2 * clock.Millisecond}},
			{Table: 1, Kind: query.Index, Data: sData,
				IndexSpec: source.IndexSpec{KeyCols: []int{0}, Latency: 50 * clock.Millisecond, Parallel: 1}},
		})
}

func TestScanEmitsRowsPacedPlusEOT(t *testing.T) {
	q := fixtureQ(t, false)
	a, err := New(Config{Q: q, AMIndex: 0})
	if err != nil {
		t.Fatal(err)
	}
	seed := tuple.NewSeed(2, 0)
	out, _ := a.Process(seed, 0)
	if len(out) != 4 { // 3 rows + EOT
		t.Fatalf("scan emitted %d, want 4", len(out))
	}
	for i := 0; i < 3; i++ {
		if out[i].T.EOT != nil || !out[i].T.IsSingleton() {
			t.Errorf("emission %d is not a data singleton", i)
		}
		if out[i].Delay != clock.Duration(i+1)*2*clock.Millisecond {
			t.Errorf("row %d delay = %v", i, out[i].Delay)
		}
	}
	last := out[3]
	if last.T.EOT == nil || len(last.T.EOT.BoundCols) != 0 {
		t.Error("scan must end with a full EOT")
	}
	if st := a.Stats(); st.SeedsServed != 1 || st.RowsOut != 3 || st.EOTsOut != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestTable1_IndexProbe: "Asynchronously return all matches for t; return
// EOT after all matches have been returned; asynchronously bounce back t."
func TestTable1_IndexProbe(t *testing.T) {
	q := fixtureQ(t, false)
	a, err := New(Config{Q: q, AMIndex: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := tuple.NewSingleton(2, 0, row(1, 10))
	out, cost := a.Process(r, 0)
	if cost < 50*clock.Millisecond {
		t.Errorf("lookup cost %v must include the source latency", cost)
	}
	var matches, eots int
	var bounced bool
	for _, e := range out {
		switch {
		case e.T == r:
			bounced = true
		case e.T.EOT != nil:
			eots++
			if len(e.T.EOT.BoundCols) != 1 || e.T.EOT.BoundCols[0] != 0 {
				t.Error("EOT must encode the probing predicate's bound columns")
			}
			if !e.T.Comp[1][0].Equal(value.NewInt(10)) || !e.T.Comp[1][1].IsEOT() {
				t.Errorf("EOT row = %v; bound fields carry values, others the EOT marker", e.T.Comp[1])
			}
		default:
			matches++
		}
	}
	if matches != 2 || eots != 1 || !bounced {
		t.Errorf("probe: matches=%d eots=%d bounced=%v, want 2/1/true", matches, eots, bounced)
	}
	if !r.AMProbed {
		t.Error("probe must mark AMProbed")
	}
}

// TestRendezvousSuppression: a second probe with the same key issues no new
// remote lookup — the SteM cache already has (or will have) the matches.
func TestRendezvousSuppression(t *testing.T) {
	q := fixtureQ(t, false)
	a, err := New(Config{Q: q, AMIndex: 1})
	if err != nil {
		t.Fatal(err)
	}
	r1 := tuple.NewSingleton(2, 0, row(1, 10))
	r3 := tuple.NewSingleton(2, 0, row(3, 10)) // same a=10
	a.Process(r1, 0)
	out, cost := a.Process(r3, 0)
	if len(out) != 1 || out[0].T != r3 {
		t.Fatalf("suppressed probe must only bounce, got %v", out)
	}
	if cost >= 50*clock.Millisecond {
		t.Error("suppressed probe must not pay the remote latency")
	}
	if !r3.AMProbed {
		t.Error("suppressed probe still counts as AM-probed (ProbeCompletion)")
	}
	st := a.Stats()
	if st.Probes != 1 || st.DedupProbes != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestMatchFiltering: the AM applies predicates evaluable on (probe ∪ match)
// after the lookup (Table 1).
func TestMatchFiltering(t *testing.T) {
	q := fixtureQ(t, true) // adds S.y < 500: the (10,999) row must be filtered
	a, err := New(Config{Q: q, AMIndex: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := tuple.NewSingleton(2, 0, row(1, 10))
	out, _ := a.Process(r, 0)
	matches := 0
	for _, e := range out {
		if e.T != r && e.T.EOT == nil {
			matches++
			if !e.T.Comp[1][1].Equal(value.NewInt(100)) {
				t.Errorf("unfiltered match %v", e.T)
			}
		}
	}
	if matches != 1 {
		t.Errorf("matches = %d, want 1 after selection filtering", matches)
	}
}

// TestApplySelectionsMarksDone: with pushdown enabled the emitted singletons
// carry the selection's done bit.
func TestApplySelectionsMarksDone(t *testing.T) {
	q := fixtureQ(t, true)
	a, err := New(Config{Q: q, AMIndex: 1, ApplySelections: true})
	if err != nil {
		t.Fatal(err)
	}
	r := tuple.NewSingleton(2, 0, row(1, 10))
	out, _ := a.Process(r, 0)
	for _, e := range out {
		if e.T != r && e.T.EOT == nil {
			if !e.T.Done.Has(1) {
				t.Error("pushdown selection not marked done")
			}
		}
	}
	// Scan side too.
	a0, err := New(Config{Q: q, AMIndex: 0, ApplySelections: true})
	if err != nil {
		t.Fatal(err)
	}
	out0, _ := a0.Process(tuple.NewSeed(2, 0), 0)
	if len(out0) != 4 { // selections on S don't affect R's scan
		t.Errorf("scan with pushdown emitted %d", len(out0))
	}
}

func TestDisabledAMSwallows(t *testing.T) {
	q := fixtureQ(t, false)
	a, err := New(Config{Q: q, AMIndex: 1, Disabled: true})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := a.Process(tuple.NewSingleton(2, 0, row(1, 10)), 0)
	if len(out) != 0 {
		t.Error("disabled AM must produce nothing")
	}
}

func TestSeedToIndexAMPanics(t *testing.T) {
	q := fixtureQ(t, false)
	a, _ := New(Config{Q: q, AMIndex: 1})
	defer func() {
		if recover() == nil {
			t.Error("seed to index AM must panic")
		}
	}()
	a.Process(tuple.NewSeed(2, 1), 0)
}

func TestScanWithStallDelaysTail(t *testing.T) {
	q := fixtureQ(t, false)
	q.AMs[0].ScanSpec.Stalls = []source.Stall{{AfterRows: 1, For: clock.Second}}
	a, err := New(Config{Q: q, AMIndex: 0})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := a.Process(tuple.NewSeed(2, 0), 0)
	if out[1].Delay <= clock.Second {
		t.Errorf("post-stall row delay %v must include the stall", out[1].Delay)
	}
}
