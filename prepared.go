// prepared.go is the facade's prepare-once-execute-many surface, mirroring
// the stemsd server's plan cache: the query is validated, its module graph
// built, and the concurrent engine constructed a single time; each Run
// resets the shell (dictionaries cleared in place, inboxes rewound, zero
// goroutines left behind — see internal/eddy/reset_test.go) instead of
// rebuilding it, so hot repeated queries pay near-zero setup.
package stems

import (
	"context"
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/eddy"
	"repro/internal/policy"
	"repro/internal/query"
	"repro/internal/stem"
	"repro/internal/tuple"
)

// Prepared is a query built once and executable many times. The routing
// policy persists across executions, so what it learned on earlier runs
// carries over — a warm Prepared routes better than a cold one. A Prepared
// is not safe for concurrent use: executions must be serial (the server
// pools multiple shells per plan for parallelism; here, Prepare twice).
type Prepared struct {
	iq   *query.Q
	r    *eddy.Router
	eng  *eddy.Concurrent
	opts Options
	ran  bool
}

// Prepare builds the query's module graph and concurrent engine for
// repeated execution. Only the Concurrent engine supports pooled reuse
// (the simulator is cheap to build and deterministic per construction), and
// per-run disk state cannot be carried across executions, so Options that
// select the simulator, spilling, windows, or simulator-only hooks are
// rejected.
func (q *Query) Prepare(opts Options) (*Prepared, error) {
	if opts.Engine != Concurrent {
		return nil, fmt.Errorf("stems: Prepare requires Engine: Concurrent")
	}
	if opts.Explain || opts.OnPartial != nil {
		return nil, fmt.Errorf("stems: Explain and OnPartial require the simulation engine")
	}
	if opts.MemoryBudget > 0 || opts.MemoryBudgetBytes > 0 {
		return nil, fmt.Errorf("stems: memory governors hold per-run state and cannot be prepared; use Run")
	}
	if len(opts.Window) > 0 {
		return nil, fmt.Errorf("stems: windowed tables hold per-run eviction state and cannot be prepared; use Run")
	}
	iq, err := q.Build()
	if err != nil {
		return nil, err
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	var pol policy.Policy
	switch opts.Policy {
	case Fixed:
		pol = policy.NewFixed()
	case Lottery:
		pol = policy.NewLottery(seed)
	default:
		pol = policy.NewBenefitCost(seed)
	}
	ropts := eddy.Options{Policy: pol, Shards: opts.Shards}
	if opts.BounceForIndexChoice {
		ropts.ProbeBounce = stem.BounceIfIndexAM
	}
	if opts.SkipBuildTable != "" {
		ti, ok := q.order[opts.SkipBuildTable]
		if !ok {
			return nil, fmt.Errorf("stems: SkipBuildTable %q unknown", opts.SkipBuildTable)
		}
		ropts.SkipBuild = true
		ropts.SkipBuildTable = ti
	}
	r, err := eddy.NewRouter(iq, ropts)
	if err != nil {
		return nil, err
	}
	comp := opts.TimeCompression
	if comp == 0 {
		comp = 0.001
	}
	eng := eddy.NewConcurrent(r, clock.NewReal(comp))
	eng.BatchSize = opts.BatchSize
	eng.Columnar = !opts.RowBatches
	return &Prepared{iq: iq, r: r, eng: eng, opts: opts}, nil
}

// Run executes the prepared query and collects all results.
func (p *Prepared) Run() (*Result, error) {
	return p.RunContext(context.Background())
}

// RunContext is Run under a cancellation context. After a canceled or
// failed run the shell is rebuilt from scratch on the next call (a stopped
// run may strand batches mid-flight; only clean completions are reused),
// so an error never poisons the Prepared.
func (p *Prepared) RunContext(ctx context.Context) (*Result, error) {
	if p.ran {
		p.r.Reset(nil)
		p.eng.Reset()
		comp := p.opts.TimeCompression
		if comp == 0 {
			comp = 0.001
		}
		p.eng.SetClock(clock.NewReal(comp))
	}
	p.ran = true
	if p.opts.OnResult != nil {
		p.eng.OnOutput = func(t *tuple.Tuple, at clock.Time) {
			p.opts.OnResult(Row{At: time.Duration(at), q: p.iq, t: t})
		}
	}
	outs, err := p.eng.RunContext(ctx)
	p.eng.OnOutput = nil
	if err != nil {
		p.rebuild()
		return nil, err
	}
	if n := p.r.Stuck(); n > 0 {
		p.rebuild()
		return nil, fmt.Errorf("stems: internal error — %d tuples had no legal route", n)
	}

	res := &Result{}
	for _, o := range outs {
		res.Rows = append(res.Rows, Row{At: time.Duration(o.At), q: p.iq, t: o.T})
		if time.Duration(o.At) > res.Stats.Duration {
			res.Stats.Duration = time.Duration(o.At)
		}
	}
	res.Stats.RoutingSteps = p.r.Routed()
	for _, a := range p.r.AMs() {
		res.Stats.IndexProbes += a.Stats().Probes
	}
	for _, s := range p.r.SteMs() {
		st := s.Stats()
		res.Stats.SteMBuilds += st.Builds
		res.Stats.SpilledBuilds += st.SpilledBuilds
		res.Stats.ReplayMatches += st.ReplayMatches
	}
	return res, nil
}

// rebuild replaces the router and engine after a dirty run, keeping the
// Prepared usable. Errors are deferred to the next RunContext, which will
// fail identically at NewRouter if the query became unbuildable (it cannot:
// the query is immutable once prepared, so rebuild always succeeds).
func (p *Prepared) rebuild() {
	seed := p.opts.Seed
	if seed == 0 {
		seed = 1
	}
	var pol policy.Policy
	switch p.opts.Policy {
	case Fixed:
		pol = policy.NewFixed()
	case Lottery:
		pol = policy.NewLottery(seed)
	default:
		pol = policy.NewBenefitCost(seed)
	}
	ropts := eddy.Options{Policy: pol, Shards: p.opts.Shards}
	if p.opts.BounceForIndexChoice {
		ropts.ProbeBounce = stem.BounceIfIndexAM
	}
	r, err := eddy.NewRouter(p.iq, ropts)
	if err != nil {
		// Unreachable (the graph built once already); keep the old shell,
		// which Reset can still scrub for a retry.
		return
	}
	comp := p.opts.TimeCompression
	if comp == 0 {
		comp = 0.001
	}
	p.r = r
	p.eng = eddy.NewConcurrent(r, clock.NewReal(comp))
	p.eng.BatchSize = p.opts.BatchSize
	p.eng.Columnar = !p.opts.RowBatches
	p.ran = false
}
