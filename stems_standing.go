// stems_standing.go is the facade's continuous-query surface. A Standing
// query is Run with the wind-down removed: Open executes an initial round
// over the tables' current rows exactly like Run, but keeps the eddy router,
// the engine shell, and therefore every SteM dictionary resident. Insert
// then feeds newly arrived rows through the same dataflow as singleton
// tuples and returns only the results of that round — the delta.
//
// Delta rounds compose exactly because of the SteM timestamp constraint
// (paper Table 2, rule P1): a probe matches only strictly-older builds, so
// every join result is produced exactly once, by its last-arriving
// component. Injected singletons take fresh timestamps from the router's
// persistent counter when they build, making a row inserted in round 3
// indistinguishable from one the scan would have delivered last in a batch
// run over the final table state — the delta results across all rounds are
// multiset-equal to that batch re-run (see TestStandingJoinDeltaExact).
package stems

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/eddy"
	"repro/internal/query"
	"repro/internal/source"
	"repro/internal/tuple"
)

// Standing is an open continuous query: the router and engine of its initial
// round stay resident, and each Insert runs one delta round against the SteM
// state every earlier round built. Methods are safe for concurrent use, but
// rounds are serialized — an Insert blocks until the previous round reaches
// quiescence, which is what makes "the delta of this insert" well defined.
//
// Windowed tables (Options.Window) bound the resident state: their SteMs
// evict the oldest rows past the window, so a standing query over unbounded
// arrivals holds O(window) rows per table. Probes that fall outside the
// window are dropped, not bounced — delta results then reflect the window
// contents at arrival time, as a streaming join should.
type Standing struct {
	mu       sync.Mutex
	iq       *query.Q
	r        *eddy.Router
	sim      *eddy.Sim
	eng      *eddy.Concurrent
	ctx      context.Context
	onResult func(Row)
	closed   bool
}

// Open validates the query, runs the initial round under opts, and returns
// the resident standing query together with the initial results. The caller
// owns the Standing and must Close it when done.
//
// Most of Options applies unchanged (engine, policy, seed, shards, batching,
// columnar, windows, OnResult, Context). Options that presume a run winds
// down — or state that cannot accept late builds — are rejected: memory
// governors (modeled and real spill), SkipBuildTable (pure probers build no
// state for later rounds to join against), Shared attachments (sealed,
// immutable), Deadline, OnPartial, and Explain. Every access method must be
// a scan: an index AM answers probes from a frozen copy of its table, which
// an Insert would silently miss.
func (q *Query) Open(opts Options) (*Standing, *Result, error) {
	iq, err := q.Build()
	if err != nil {
		return nil, nil, err
	}
	switch {
	case opts.MemoryBudget > 0 || opts.MemoryBudgetBytes > 0:
		return nil, nil, fmt.Errorf("stems: memory governors are not supported for standing queries")
	case opts.SkipBuildTable != "":
		return nil, nil, fmt.Errorf("stems: SkipBuildTable is not supported for standing queries")
	case len(opts.Shared) > 0:
		return nil, nil, fmt.Errorf("stems: Shared state is not supported for standing queries")
	case opts.Deadline != 0:
		return nil, nil, fmt.Errorf("stems: Deadline is not supported for standing queries")
	case opts.OnPartial != nil:
		return nil, nil, fmt.Errorf("stems: OnPartial is not supported for standing queries")
	case opts.Explain:
		return nil, nil, fmt.Errorf("stems: Explain is not supported for standing queries")
	}
	for _, am := range q.ams {
		if am.Kind != query.Scan {
			return nil, nil, fmt.Errorf("stems: standing queries require scan access methods (table %q has an index AM)", q.tables[am.Table].Name)
		}
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	ropts := eddy.Options{Policy: newPolicy(opts.Policy, seed), Shards: opts.Shards}
	if len(opts.Window) > 0 {
		wins := make([]int, len(q.tables))
		for name, w := range opts.Window {
			ti, ok := q.order[name]
			if !ok {
				return nil, nil, fmt.Errorf("stems: Window table %q unknown", name)
			}
			wins[ti] = w
		}
		ropts.WindowFor = func(t int) int { return wins[t] }
	}
	r, err := eddy.NewRouter(iq, ropts)
	if err != nil {
		return nil, nil, err
	}

	st := &Standing{iq: iq, r: r, onResult: opts.OnResult}
	st.ctx = opts.Context
	if st.ctx == nil {
		st.ctx = context.Background()
	}
	var outs []eddy.Output
	switch opts.Engine {
	case Concurrent:
		comp := opts.TimeCompression
		if comp == 0 {
			comp = 0.001
		}
		st.eng = eddy.NewConcurrent(r, clock.NewReal(comp))
		st.eng.BatchSize = opts.BatchSize
		st.eng.Columnar = !opts.RowBatches
		st.eng.OnOutput = st.emit()
		outs, err = st.eng.RunContext(st.ctx)
	default:
		st.sim = eddy.NewSim(r)
		st.sim.Ctx = opts.Context
		st.sim.OnOutput = st.emit()
		outs, err = st.sim.Run()
	}
	if err != nil {
		return nil, nil, err
	}
	if n := r.Stuck(); n > 0 {
		return nil, nil, fmt.Errorf("stems: internal error — %d tuples had no legal route", n)
	}
	return st, buildResult(iq, r, outs), nil
}

// emit adapts onResult to the engines' OnOutput hook; nil when unset. The
// Concurrent engine's Reset clears its hooks, so every round re-installs it.
func (s *Standing) emit() func(*tuple.Tuple, clock.Time) {
	if s.onResult == nil {
		return nil
	}
	return func(t *tuple.Tuple, at clock.Time) {
		s.onResult(Row{At: time.Duration(at), q: s.iq, t: t})
	}
}

// Insert runs one delta round: the rows join against everything that arrived
// before them, and the returned Result holds exactly the new join results —
// no earlier result is re-emitted. Rows are validated against the table's
// schema. A row equal to one the SteM already stores is consumed by the
// engine's set-semantics dedup and contributes nothing, on both the standing
// and the batch side. Result.Stats counters are cumulative over the standing
// query's lifetime (they read the resident router's totals).
//
// An error (cancellation included) leaves the SteM state mid-round, so it
// closes the standing query; subsequent Inserts fail.
func (s *Standing) Insert(table string, rows [][]int64) (*Result, error) {
	vrows := make([][]Value, len(rows))
	for i, r := range rows {
		vr := make([]Value, len(r))
		for j, v := range r {
			vr[j] = Int(v)
		}
		vrows[i] = vr
	}
	return s.InsertValues(table, vrows)
}

// InsertValues is Insert with explicit Value rows (for string columns).
func (s *Standing) InsertValues(table string, rows [][]Value) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("stems: Insert on closed standing query")
	}
	var ti = -1
	for i, t := range s.iq.Tables {
		if t.Name == table {
			ti = i
			break
		}
	}
	if ti < 0 {
		return nil, fmt.Errorf("stems: Insert into unknown table %q", table)
	}
	trows := make([]tuple.Row, len(rows))
	for i, r := range rows {
		trows[i] = tuple.Row(r)
	}
	if _, err := source.NewTable(s.iq.Tables[ti], trows); err != nil {
		return nil, err
	}
	n := len(s.iq.Tables)
	ts := make([]*tuple.Tuple, len(trows))
	for i, row := range trows {
		ts[i] = tuple.NewSingleton(n, ti, row)
	}

	var outs []eddy.Output
	var err error
	if s.eng != nil {
		s.eng.Reset()
		s.eng.OnOutput = s.emit()
		outs, err = s.eng.RunDelta(s.ctx, ts)
	} else {
		outs, err = s.sim.RunDelta(ts)
	}
	if err != nil {
		s.closed = true
		return nil, err
	}
	if n := s.r.Stuck(); n > 0 {
		s.closed = true
		return nil, fmt.Errorf("stems: internal error — %d tuples had no legal route", n)
	}
	return buildResult(s.iq, s.r, outs), nil
}

// Close releases the standing query. The resident state is plain memory —
// standing queries reject spill governors — so Close only bars further
// Inserts. Idempotent.
func (s *Standing) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
