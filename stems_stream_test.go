package stems

// Standing-query (continuous) tests. The centerpiece is the delta-exactness
// property: a standing multi-way join fed interleaved inserts from
// concurrent writers must emit, across all rounds, exactly the multiset of
// results an equivalent batch run over the final table state produces —
// nothing missing, nothing duplicated. That is the observable consequence
// of the SteM timestamp constraint composing across delta rounds.

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// streamQuery is the standing 3-way chain join R ⋈ S ⋈ T used throughout.
func streamQuery(initial map[string][][]int64) *Query {
	return NewQuery().
		Table("R", Ints("rk", "b"), initial["R"]).
		Table("S", Ints("b", "c"), initial["S"]).
		Table("T", Ints("c", "tk"), initial["T"]).
		Scan("R", time.Millisecond).
		Scan("S", time.Millisecond).
		Scan("T", time.Millisecond).
		Where("R.b", "=", "S.b").
		Where("S.c", "=", "T.c")
}

// insBatch is one writer call: rows appended to a table in a single Insert.
type insBatch struct {
	table string
	rows  [][]int64
}

// genStream draws a random initial state (possibly empty tables — the pure
// streaming case) and a random insert schedule over a small join-key domain
// so that cross-round matches actually occur.
func genStream(rng *rand.Rand) (initial map[string][][]int64, inserts []insBatch) {
	key := func() int64 { return int64(rng.Intn(6)) }
	rowFor := func(table string) []int64 {
		switch table {
		case "R":
			return []int64{int64(rng.Intn(50)), key()}
		case "S":
			return []int64{key(), key()}
		default:
			return []int64{key(), int64(rng.Intn(50))}
		}
	}
	initial = make(map[string][][]int64)
	for _, tb := range []string{"R", "S", "T"} {
		n := rng.Intn(5) // 0 initial rows is a valid (and important) case
		for i := 0; i < n; i++ {
			initial[tb] = append(initial[tb], rowFor(tb))
		}
	}
	nb := 12 + rng.Intn(8)
	for i := 0; i < nb; i++ {
		tb := []string{"R", "S", "T"}[rng.Intn(3)]
		b := insBatch{table: tb}
		for j := 0; j < 1+rng.Intn(2); j++ {
			b.rows = append(b.rows, rowFor(tb))
		}
		inserts = append(inserts, b)
	}
	return initial, inserts
}

// standingConfigs is the acceptance matrix: engines × shards {1,4} ×
// columnar on/off (the representation axis only exists on the Concurrent
// engine; the simulator is always row-at-a-time).
func standingConfigs() []struct {
	name string
	opts Options
} {
	return []struct {
		name string
		opts Options
	}{
		{"sim/shards=1", Options{Engine: Sim}},
		{"sim/shards=4", Options{Engine: Sim, Shards: 4}},
		{"concurrent/shards=1/columnar", Options{Engine: Concurrent, TimeCompression: 0.0001}},
		{"concurrent/shards=1/rows", Options{Engine: Concurrent, TimeCompression: 0.0001, RowBatches: true}},
		{"concurrent/shards=4/columnar", Options{Engine: Concurrent, TimeCompression: 0.0001, Shards: 4}},
		{"concurrent/shards=4/rows", Options{Engine: Concurrent, TimeCompression: 0.0001, Shards: 4, RowBatches: true}},
	}
}

// TestStandingJoinDeltaExact is the delta-equivalence property test: open a
// standing 3-way join, feed it a randomized insert schedule interleaved
// across three concurrent writers, and assert the union of the initial
// result and every per-insert delta equals — as a multiset — a batch re-run
// of the same query over the final table state. Seeded and deterministic in
// the data; the writer interleaving is real concurrency (this test is in
// the CI race job's package list).
func TestStandingJoinDeltaExact(t *testing.T) {
	seeds := []int64{1, 7, 1234}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, cfg := range standingConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				rng := rand.New(rand.NewSource(seed))
				initial, inserts := genStream(rng)

				st, res, err := streamQuery(initial).Open(cfg.opts)
				if err != nil {
					t.Fatalf("seed %d: Open: %v", seed, err)
				}
				var mu sync.Mutex
				var all []string
				for _, r := range res.Rows {
					all = append(all, r.String())
				}

				const writers = 3
				errCh := make(chan error, writers)
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					w := w
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := w; i < len(inserts); i += writers {
							delta, err := st.Insert(inserts[i].table, inserts[i].rows)
							if err != nil {
								errCh <- fmt.Errorf("insert %d: %w", i, err)
								return
							}
							mu.Lock()
							for _, r := range delta.Rows {
								all = append(all, r.String())
							}
							mu.Unlock()
						}
					}()
				}
				wg.Wait()
				close(errCh)
				for err := range errCh {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := st.Close(); err != nil {
					t.Fatalf("seed %d: Close: %v", seed, err)
				}

				final := make(map[string][][]int64)
				for tb, rows := range initial {
					final[tb] = append(final[tb], rows...)
				}
				for _, b := range inserts {
					final[b.table] = append(final[b.table], b.rows...)
				}
				oracle := mustRun(t, streamQuery(final), cfg.opts)
				want := keysOf(oracle.Rows)
				sort.Strings(all)
				if len(all) != len(want) {
					t.Fatalf("seed %d: standing emitted %d rows, batch oracle %d\nstanding: %v\noracle: %v",
						seed, len(all), len(want), all, want)
				}
				for i := range want {
					if all[i] != want[i] {
						t.Fatalf("seed %d: row %d differs: standing %q, oracle %q", seed, i, all[i], want[i])
					}
				}
			}
		})
	}
}

// TestStandingDeltaBasics pins the single-round contract on a tiny join:
// round 0 equals the batch result, a matching insert emits exactly the new
// combinations, a non-matching insert emits nothing, and a duplicate row is
// consumed by set-semantics dedup.
func TestStandingDeltaBasics(t *testing.T) {
	for _, cfg := range standingConfigs()[:3] {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			initial := map[string][][]int64{
				"R": {{1, 5}},
				"S": {{5, 8}},
				"T": {{8, 100}},
			}
			st, res, err := streamQuery(initial).Open(cfg.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			if len(res.Rows) != 1 {
				t.Fatalf("round 0: %d rows, want 1", len(res.Rows))
			}

			delta, err := st.Insert("R", [][]int64{{2, 5}})
			if err != nil {
				t.Fatal(err)
			}
			if len(delta.Rows) != 1 {
				t.Fatalf("matching insert: %d delta rows, want 1", len(delta.Rows))
			}
			if v, ok := delta.Rows[0].Get("R.rk"); !ok || v.I != 2 {
				t.Fatalf("delta row = %s, want R.rk=2", delta.Rows[0])
			}

			delta, err = st.Insert("R", [][]int64{{3, 999}})
			if err != nil {
				t.Fatal(err)
			}
			if len(delta.Rows) != 0 {
				t.Fatalf("non-matching insert: %d delta rows, want 0", len(delta.Rows))
			}

			delta, err = st.Insert("R", [][]int64{{2, 5}})
			if err != nil {
				t.Fatal(err)
			}
			if len(delta.Rows) != 0 {
				t.Fatalf("duplicate insert: %d delta rows, want 0 (dedup)", len(delta.Rows))
			}

			// A new S row joins both resident R rows (1,5) and (2,5) with T.
			delta, err = st.Insert("S", [][]int64{{5, 8}, {5, 8}})
			if err != nil {
				t.Fatal(err)
			}
			if len(delta.Rows) != 0 {
				t.Fatalf("duplicate S insert: %d delta rows, want 0", len(delta.Rows))
			}
			delta, err = st.Insert("T", [][]int64{{8, 101}})
			if err != nil {
				t.Fatal(err)
			}
			if len(delta.Rows) != 2 {
				t.Fatalf("T insert: %d delta rows, want 2 (both R rows)", len(delta.Rows))
			}
		})
	}
}

// TestStandingWindowedDelta pins streaming-window semantics: a windowed
// table's SteM holds only the most recent rows, and delta results reflect
// the window contents at arrival time — joins against evicted rows are
// intentionally not produced.
func TestStandingWindowedDelta(t *testing.T) {
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"sim", Options{Window: map[string]int{"R": 1}}},
		{"concurrent", Options{Engine: Concurrent, TimeCompression: 0.0001, Window: map[string]int{"R": 1}}},
	} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			q := NewQuery().
				Table("R", Ints("rk", "b"), [][]int64{{1, 5}}).
				Table("S", Ints("b", "sv"), nil).
				Scan("R", time.Millisecond).
				Scan("S", time.Millisecond).
				Where("R.b", "=", "S.b")
			st, res, err := q.Open(cfg.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			if len(res.Rows) != 0 {
				t.Fatalf("round 0: %d rows, want 0 (S empty)", len(res.Rows))
			}
			// Evicts R(1,5) from the window-1 SteM.
			if _, err := st.Insert("R", [][]int64{{2, 5}}); err != nil {
				t.Fatal(err)
			}
			delta, err := st.Insert("S", [][]int64{{5, 50}})
			if err != nil {
				t.Fatal(err)
			}
			if len(delta.Rows) != 1 {
				t.Fatalf("S insert: %d delta rows, want 1 (only in-window R)", len(delta.Rows))
			}
			if v, ok := delta.Rows[0].Get("R.rk"); !ok || v.I != 2 {
				t.Fatalf("delta joined evicted row: %s, want R.rk=2", delta.Rows[0])
			}
		})
	}
}

// TestStandingOnResult verifies the OnResult hook streams delta rows and is
// re-installed across rounds on both engines (Concurrent's Reset clears it).
func TestStandingOnResult(t *testing.T) {
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"sim", Options{}},
		{"concurrent", Options{Engine: Concurrent, TimeCompression: 0.0001}},
	} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			var mu sync.Mutex
			var streamed []string
			opts := cfg.opts
			opts.OnResult = func(r Row) {
				mu.Lock()
				streamed = append(streamed, r.String())
				mu.Unlock()
			}
			initial := map[string][][]int64{"R": {{1, 5}}, "S": {{5, 8}}, "T": {{8, 9}}}
			st, res, err := streamQuery(initial).Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			delta, err := st.Insert("R", [][]int64{{2, 5}})
			if err != nil {
				t.Fatal(err)
			}
			mu.Lock()
			defer mu.Unlock()
			if want := len(res.Rows) + len(delta.Rows); len(streamed) != want {
				t.Fatalf("OnResult saw %d rows, want %d", len(streamed), want)
			}
		})
	}
}

// TestStandingRejectsUnsupportedOptions pins the Open validation surface.
func TestStandingRejectsUnsupportedOptions(t *testing.T) {
	base := func() *Query {
		return streamQuery(map[string][][]int64{"R": {{1, 2}}, "S": {{2, 3}}, "T": {{3, 4}}})
	}
	cases := []struct {
		name string
		q    *Query
		opts Options
	}{
		{"memory budget", base(), Options{MemoryBudget: 100}},
		{"memory budget bytes", base(), Options{MemoryBudgetBytes: 1 << 20}},
		{"skip build", base(), Options{SkipBuildTable: "R"}},
		{"deadline", base(), Options{Deadline: time.Second}},
		{"on partial", base(), Options{OnPartial: func(Row) {}}},
		{"explain", base(), Options{Explain: true}},
		{"index am", NewQuery().
			Table("R", Ints("rk", "b"), [][]int64{{1, 2}}).
			Table("S", Ints("b", "sv"), [][]int64{{2, 3}}).
			Scan("R", time.Millisecond).
			Index("S", []string{"b"}, time.Millisecond, 1).
			Where("R.b", "=", "S.b"), Options{}},
	}
	for _, tc := range cases {
		if st, _, err := tc.q.Open(tc.opts); err == nil {
			st.Close()
			t.Errorf("%s: Open accepted unsupported options", tc.name)
		}
	}
	// Shared state rejection needs a built state to hand in.
	shq := base()
	ss, err := shq.BuildSharedState("S", 1, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if st, _, err := base().Open(Options{Shared: map[string]*SharedState{"S": ss}}); err == nil {
		st.Close()
		t.Error("Open accepted Shared state")
	}
}

// TestStandingInsertValidation pins Insert's error surface: unknown tables,
// schema-invalid rows, and use after Close all fail without disturbing the
// resident state.
func TestStandingInsertValidation(t *testing.T) {
	initial := map[string][][]int64{"R": {{1, 5}}, "S": {{5, 8}}, "T": {{8, 9}}}
	st, _, err := streamQuery(initial).Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Insert("Z", [][]int64{{1}}); err == nil {
		t.Error("Insert into unknown table succeeded")
	}
	if _, err := st.Insert("R", [][]int64{{1, 2, 3}}); err == nil {
		t.Error("Insert with wrong arity succeeded")
	}
	if _, err := st.InsertValues("R", [][]Value{{Str("no"), Int(1)}}); err == nil {
		t.Error("Insert with wrong column type succeeded")
	}
	// Validation failures must not have broken the round machinery.
	if delta, err := st.Insert("R", [][]int64{{2, 5}}); err != nil || len(delta.Rows) != 1 {
		t.Fatalf("post-validation insert: delta=%v err=%v, want 1 row", delta, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Insert("R", [][]int64{{3, 5}}); err == nil {
		t.Error("Insert after Close succeeded")
	}
}
