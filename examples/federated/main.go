// Federated: the Telegraph FFF scenario that motivated SteMs — the same
// logical table served by competing autonomous Web sources, one of which
// stalls mid-query. The eddy runs both access methods concurrently; the
// shared SteM deduplicates their overlap, and results keep flowing through
// the stall. Runs on the concurrent (goroutine-per-module) engine with a
// compressed real clock.
//
//	go run ./examples/federated
package main

import (
	"fmt"
	"log"
	"time"

	stems "repro"
)

func main() {
	// A "flights" table mirrored by two providers. Provider A is fast but
	// stalls for 2 (virtual) seconds after 5 rows; provider B is slower but
	// steady. Carriers is a small reference table.
	flights := make([][]int64, 30)
	for i := range flights {
		flights[i] = []int64{int64(i), int64(i % 3)} // flight id, carrier
	}
	carriers := [][]int64{{0, 100}, {1, 200}, {2, 300}}

	q := stems.NewQuery().
		Table("flights", stems.Ints("id", "carrier"), flights).
		Table("carriers", stems.Ints("id", "code"), carriers).
		ScanWithStalls("flights", 50*time.Millisecond,
									stems.Stall{AfterRows: 5, For: 2 * time.Second}). // provider A
		Mirror("flights", flights, 120*time.Millisecond). // provider B
		Scan("carriers", 10*time.Millisecond).
		Where("flights.carrier", "=", "carriers.id")

	start := time.Now()
	var n int
	res, err := q.Run(stems.Options{
		Engine:          stems.Concurrent,
		TimeCompression: 0.01, // 1 virtual second = 10ms wall
		OnResult: func(r stems.Row) {
			n++
			if n%10 == 0 {
				id, _ := r.Get("flights.id")
				fmt.Printf("  [wall %6v] result %d: flight %v (virtual t=%v)\n",
					time.Since(start).Round(time.Millisecond), n, id, r.At.Round(time.Millisecond))
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total results: %d (each flight exactly once — the shared SteM dedups the mirrors)\n", len(res.Rows))
	fmt.Printf("virtual duration %v; provider A's 2s stall was covered by provider B\n",
		res.Stats.Duration.Round(time.Millisecond))
}
