// Interactive: the paper's online-query-processing story end to end. A
// three-way cyclic join runs while one source stalls; partial results stream
// out through the stall (the eddy keeps joining across the other edges —
// exactly the Section 3.4 argument for dynamic spanning trees), an online
// aggregation refines as full results land, and the run closes with an
// explain report of where the routing actually sent tuples.
//
//	go run ./examples/interactive
package main

import (
	"fmt"
	"log"
	"time"

	stems "repro"
)

func main() {
	const n = 60
	users := make([][]int64, n)
	orders := make([][]int64, n)
	regions := make([][]int64, n)
	for i := 0; i < n; i++ {
		users[i] = []int64{int64(i), int64(i % 6)}   // user id, region
		orders[i] = []int64{int64(i), int64(i)}      // order id, user
		regions[i] = []int64{int64(i % 6), int64(i)} // region, marker
	}

	q := stems.NewQuery().
		Table("users", stems.Ints("id", "region"), users).
		Table("orders", stems.Ints("id", "user"), orders).
		Table("regions", stems.Ints("id", "marker"), regions).
		Scan("users", 20*time.Millisecond).
		// The orders source stalls for 3 virtual seconds after 10 rows.
		ScanWithStalls("orders", 20*time.Millisecond, stems.Stall{AfterRows: 10, For: 3 * time.Second}).
		Scan("regions", 20*time.Millisecond).
		Where("orders.user", "=", "users.id").
		Where("users.region", "=", "regions.id")

	var partials, fulls int
	var firstPartialDuringStall time.Duration
	agg := stems.NewAggregator([]string{"users.region"}, "")

	res, err := q.Run(stems.Options{
		Explain: true,
		OnPartial: func(r stems.Row) {
			partials++
			if firstPartialDuringStall == 0 && r.At > 400*time.Millisecond {
				firstPartialDuringStall = r.At
			}
		},
		OnResult: func(r stems.Row) {
			fulls++
			agg.Add(r)
			if fulls%25 == 0 {
				fmt.Printf("  [t=%6v] %d full results so far; online counts per region:", r.At.Round(time.Millisecond), fulls)
				for _, g := range agg.Groups() {
					fmt.Printf(" r%s=%d", g.Key, g.Count)
				}
				fmt.Println()
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d full results; %d partial results streamed while the query ran\n", len(res.Rows), partials)
	fmt.Printf("first partial during the orders stall at t=%v — users⋈regions kept flowing\n",
		firstPartialDuringStall.Round(time.Millisecond))
	fmt.Println("\nfinal groups (count of orders per region):")
	for _, g := range stems.GroupCount(res.Rows, "users.region") {
		fmt.Printf("  region %s: %d\n", g.Key, g.Count)
	}
	fmt.Println("\nexplain:")
	fmt.Print(res.Explain)
}
