// Hybridjoin: the Section 4.3 experiment as an API demo. Table T offers both
// a scan and a remote index; with BounceForIndexChoice the SteM on T bounces
// incomplete probes back so the eddy decides — per tuple, continuously —
// between probing the remote index (an index join) and waiting for the scan
// (a hash join). Early results come via the index; once the scan warms up
// the eddy shifts over, "hybridizing" the two algorithms.
//
//	go run ./examples/hybridjoin
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	stems "repro"
)

func main() {
	const n = 300
	rng := rand.New(rand.NewSource(7))
	r := make([][]int64, n)
	t := make([][]int64, n)
	for i := 0; i < n; i++ {
		r[i] = []int64{int64(i), int64(i)}
		t[i] = []int64{int64(i)}
	}
	rng.Shuffle(n, func(i, j int) { r[i], r[j] = r[j], r[i] })
	rng.Shuffle(n, func(i, j int) { t[i], t[j] = t[j], t[i] })

	build := func() *stems.Query {
		return stems.NewQuery().
			Table("R", stems.Ints("key", "a"), r).
			Table("T", stems.Ints("key"), t).
			Scan("R", 25*time.Millisecond).
			Scan("T", 20*time.Millisecond).
			Index("T", []string{"key"}, 150*time.Millisecond, 1).
			Where("R.key", "=", "T.key")
	}

	buckets := func(rows []stems.Row) [6]int {
		var b [6]int
		for _, row := range rows {
			s := int(row.At / (2 * time.Second))
			if s > 5 {
				s = 5
			}
			b[s]++
		}
		return b
	}

	hybrid, err := build().Run(stems.Options{BounceForIndexChoice: true})
	if err != nil {
		log.Fatal(err)
	}
	hashOnly, err := build().Run(stems.Options{}) // SteM never bounces: pure SHJ behaviour
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("results per 2s interval (hybrid uses the index early, the scan late):")
	hb, sb := buckets(hybrid.Rows), buckets(hashOnly.Rows)
	for i := 0; i < 6; i++ {
		fmt.Printf("  %2d–%2ds: hybrid=%3d  hash-only=%3d\n", 2*i, 2*i+2, hb[i], sb[i])
	}
	fmt.Printf("hybrid issued %d remote index probes; both runs produced %d/%d identical results\n",
		hybrid.Stats.IndexProbes, len(hybrid.Rows), len(hashOnly.Rows))
}
