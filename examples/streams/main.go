// Streams: a continuous sliding-window join in the style of Telegraph's
// CACQ/PSOUP, which share SteMs with eviction (Section 2.3). Two "sensor"
// streams are joined on a room id; each SteM keeps only the most recent
// rows, so matches pair only readings that are close in arrival order, and
// memory stays bounded no matter how long the streams run.
//
//	go run ./examples/streams
package main

import (
	"fmt"
	"log"
	"time"

	stems "repro"
)

func main() {
	const rooms = 8
	const readings = 400

	temp := make([][]int64, readings)
	hum := make([][]int64, readings)
	for i := 0; i < readings; i++ {
		temp[i] = []int64{int64(i), int64(i % rooms), 18 + int64(i%10)}
		hum[i] = []int64{int64(i), int64((i + 3) % rooms), 40 + int64(i%20)}
	}

	q := stems.NewQuery().
		Table("temp", stems.Ints("seq", "room", "celsius"), temp).
		Table("hum", stems.Ints("seq", "room", "percent"), hum).
		Scan("temp", 10*time.Millisecond).
		Scan("hum", 10*time.Millisecond).
		Where("temp.room", "=", "hum.room")

	// Unwindowed, every temp reading joins every humidity reading of the
	// same room: rooms × (readings/rooms)² pairs. With a window of 16 rows
	// per SteM, only readings near each other in time pair up.
	unbounded, err := q.Run(stems.Options{})
	if err != nil {
		log.Fatal(err)
	}
	windowed, err := q.Run(stems.Options{
		Window: map[string]int{"temp": 16, "hum": 16},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("unbounded join:      %6d results (all-history pairs)\n", len(unbounded.Rows))
	fmt.Printf("16-row window join:  %6d results (only temporally close pairs)\n", len(windowed.Rows))
	fmt.Printf("window run stored at most 16+16 rows at a time vs %d builds total\n",
		windowed.Stats.SteMBuilds)
}
