// Quickstart: a three-table select-project-join executed by routing tuples
// through SteMs — no query plan, no optimizer.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	stems "repro"
)

func main() {
	// Employees, departments, and buildings; find engineers and where they
	// sit. Joins: emp.dept = dept.id, dept.bldg = bldg.id; selection on
	// emp.level.
	q := stems.NewQuery().
		Table("emp", stems.Ints("id", "dept", "level"), [][]int64{
			{1, 10, 3}, {2, 10, 5}, {3, 20, 4}, {4, 20, 2}, {5, 30, 5},
		}).
		Table("dept", stems.Ints("id", "bldg"), [][]int64{
			{10, 100}, {20, 200}, {30, 200},
		}).
		Table("bldg", stems.Ints("id", "floors"), [][]int64{
			{100, 4}, {200, 12},
		}).
		Scan("emp", time.Millisecond).
		Scan("dept", time.Millisecond).
		Scan("bldg", time.Millisecond).
		Where("emp.dept", "=", "dept.id").
		Where("dept.bldg", "=", "bldg.id").
		Where("emp.level", ">=", "4")

	res, err := q.Run(stems.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("senior employees with their buildings:")
	for _, row := range res.Rows {
		id, _ := row.Get("emp.id")
		bldg, _ := row.Get("bldg.id")
		floors, _ := row.Get("bldg.floors")
		fmt.Printf("  emp %v sits in building %v (%v floors), produced at t=%v\n",
			id, bldg, floors, row.At)
	}
	fmt.Printf("stats: %d routing steps, %d SteM builds, virtual duration %v\n",
		res.Stats.RoutingSteps, res.Stats.SteMBuilds, res.Stats.Duration)
}
