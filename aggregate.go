// aggregate.go implements grouping and aggregation over result rows. The
// paper's architecture deliberately keeps these out of the dataflow: "We
// assume that ... GroupBy, Aggregation, and complex SELECT-list expressions
// are implemented above the eddy, before results are output to the user"
// (footnote 1). These helpers are that layer: they consume Result.Rows (or a
// stream of rows via Aggregator) and fold them into groups.
package stems

import (
	"fmt"
	"sort"
)

// GroupStats is the aggregate state of one group.
type GroupStats struct {
	// Key renders the group's key values.
	Key string
	// Count is the number of rows in the group.
	Count int
	// Sum, Min and Max summarize the aggregated column; they are zero (and
	// Min/Max meaningless) when the aggregate column was absent or
	// non-integer.
	Sum int64
	Min int64
	Max int64
}

// Aggregator folds rows into groups incrementally; it works equally over a
// completed Result or inside an OnResult stream callback (online
// aggregation, in the spirit of the paper's interactive setting).
type Aggregator struct {
	groupRefs []string
	aggRef    string
	groups    map[string]*GroupStats
}

// NewAggregator groups by the given "Table.column" references and, if aggRef
// is non-empty, additionally aggregates that integer column.
func NewAggregator(groupRefs []string, aggRef string) *Aggregator {
	return &Aggregator{
		groupRefs: append([]string(nil), groupRefs...),
		aggRef:    aggRef,
		groups:    make(map[string]*GroupStats),
	}
}

// Add folds one row.
func (a *Aggregator) Add(r Row) {
	key := ""
	for i, g := range a.groupRefs {
		v, ok := r.Get(g)
		if !ok {
			return // row does not span the grouping column (partial result)
		}
		if i > 0 {
			key += ","
		}
		key += v.String()
	}
	g := a.groups[key]
	if g == nil {
		g = &GroupStats{Key: key}
		a.groups[key] = g
	}
	g.Count++
	if a.aggRef == "" {
		return
	}
	v, ok := r.Get(a.aggRef)
	if !ok || !isInt(v) {
		return
	}
	g.Sum += v.I
	if g.Count == 1 || v.I < g.Min {
		g.Min = v.I
	}
	if g.Count == 1 || v.I > g.Max {
		g.Max = v.I
	}
}

func isInt(v Value) bool { return v.K == Int(0).K }

// Groups returns the group aggregates sorted by key.
func (a *Aggregator) Groups() []GroupStats {
	out := make([]GroupStats, 0, len(a.groups))
	for _, g := range a.groups {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// GroupCount groups completed result rows by one column reference and
// returns per-group row counts sorted by key.
func GroupCount(rows []Row, groupRef string) []GroupStats {
	a := NewAggregator([]string{groupRef}, "")
	for _, r := range rows {
		a.Add(r)
	}
	return a.Groups()
}

// GroupSum groups completed result rows and sums an integer column.
func GroupSum(rows []Row, groupRef, sumRef string) []GroupStats {
	a := NewAggregator([]string{groupRef}, sumRef)
	for _, r := range rows {
		a.Add(r)
	}
	return a.Groups()
}

// String renders the group stats compactly.
func (g GroupStats) String() string {
	return fmt.Sprintf("%s: count=%d sum=%d min=%d max=%d", g.Key, g.Count, g.Sum, g.Min, g.Max)
}
