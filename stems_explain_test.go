package stems

import (
	"strings"
	"testing"
	"time"
)

func threeTableJoin() *Query {
	return NewQuery().
		Table("A", Ints("k", "x"), [][]int64{{1, 5}, {2, 6}, {3, 5}}).
		Table("B", Ints("x", "y"), [][]int64{{5, 7}, {6, 8}}).
		Table("C", Ints("y", "v"), [][]int64{{7, 70}, {8, 80}, {7, 71}}).
		Scan("A", time.Millisecond).
		Scan("B", time.Millisecond).
		Scan("C", time.Millisecond).
		Where("A.x", "=", "B.x").
		Where("B.y", "=", "C.y")
}

func TestExplainReport(t *testing.T) {
	res, err := threeTableJoin().Run(Options{Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Explain == "" {
		t.Fatal("Explain empty")
	}
	for _, want := range []string{"SteM(A)", "SteM(B)", "SteM(C)", "AM(A/scan)", "results"} {
		if !strings.Contains(res.Explain, want) {
			t.Errorf("Explain missing %q:\n%s", want, res.Explain)
		}
	}
}

func TestOnPartialStreamsIntermediates(t *testing.T) {
	var partials []Row
	res, err := threeTableJoin().Run(Options{
		OnPartial: func(r Row) { partials = append(partials, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no results")
	}
	if len(partials) == 0 {
		t.Fatal("no partial results streamed")
	}
	for _, p := range partials {
		// Partials must span 2 tables (of 3), never all.
		if _, okA := p.Get("A.k"); okA {
			if _, okC := p.Get("C.v"); okC {
				if _, okB := p.Get("B.x"); okB {
					t.Fatal("full-span tuple delivered as partial")
				}
			}
		}
	}
}

func TestExplainOnConcurrent(t *testing.T) {
	res, err := threeTableJoin().Run(Options{Engine: Concurrent, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no results")
	}
	if res.Explain == "" {
		t.Fatal("Explain empty on the concurrent engine")
	}
	for _, want := range []string{"SteM(A)", "SteM(B)", "SteM(C)", "results"} {
		if !strings.Contains(res.Explain, want) {
			t.Errorf("Explain missing %q:\n%s", want, res.Explain)
		}
	}
}

func TestMemoryBudgetRun(t *testing.T) {
	unbounded, err := threeTableJoin().Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	constrained, err := threeTableJoin().Run(Options{MemoryBudget: 3, SpillPenalty: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(constrained.Rows) != len(unbounded.Rows) {
		t.Fatalf("memory pressure changed results: %d vs %d", len(constrained.Rows), len(unbounded.Rows))
	}
	if constrained.Stats.Duration <= unbounded.Stats.Duration {
		t.Error("spilling must cost time")
	}
}

func TestDeadlineStopsEarly(t *testing.T) {
	// Slow scans + a deadline before the first row arrives: zero results,
	// no error.
	q := NewQuery().
		Table("A", Ints("k"), [][]int64{{1}}).
		Table("B", Ints("k"), [][]int64{{1}}).
		Scan("A", time.Second).
		Scan("B", time.Second).
		Where("A.k", "=", "B.k")
	res, err := q.Run(Options{Deadline: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("deadline run produced %d rows", len(res.Rows))
	}
}
