package stems

// The benchmark harness regenerates every figure of the paper's evaluation
// under `go test -bench`, at reduced scale so a full sweep stays fast, plus
// ablation benches for the design choices DESIGN.md calls out (dictionary
// implementations, Grace-style batched bounce-backs, routing policies, and
// the two engines). Reported custom metrics carry the figure-level result:
// virtual completion seconds and results produced.

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/eddy"
	"repro/internal/experiments"
	"repro/internal/policy"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/stem"
	"repro/internal/tuple"
	"repro/internal/value"
	"repro/internal/workload"
)

// benchResult reports an experiment's virtual time and output size as bench
// metrics.
func reportResult(b *testing.B, res *experiments.Result) {
	b.Helper()
	if len(res.Series) > 0 {
		b.ReportMetric(res.Series[0].Final(), "results")
		b.ReportMetric(res.Series[0].End().Seconds(), "virtual-s")
	}
}

// ---------------------------------------------------------------------------
// Figure benches: each regenerates one figure per iteration.

func BenchmarkFigure1_ThreeArchitectures(b *testing.B) {
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		last, err = experiments.Fig1(experiments.Fig1Config{Rows: 120})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportResult(b, last)
}

func BenchmarkFigure2_NAryVsPipeline(b *testing.B) {
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		last, err = experiments.Fig2(experiments.Fig1Config{Rows: 120})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportResult(b, last)
}

func BenchmarkFigure7_Q1IndexJoinVsSteMs(b *testing.B) {
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		last, err = experiments.Fig7(experiments.Fig7Config{RRows: 300, DistinctA: 75})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportResult(b, last)
}

func BenchmarkFigure8_Q4Hybridization(b *testing.B) {
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		last, err = experiments.Fig8(experiments.Fig8Config{Rows: 300})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportResult(b, last)
}

func BenchmarkExtCompetitiveAMs(b *testing.B) {
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		last, err = experiments.Competitive(experiments.CompetitiveConfig{Rows: 150, DistinctA: 30})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportResult(b, last)
}

func BenchmarkExtSpanningTree(b *testing.B) {
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		last, err = experiments.Spanning(experiments.SpanningConfig{Rows: 60, StallAfter: 10, StallFor: 5 * clock.Second})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportResult(b, last)
}

func BenchmarkExtSelectionReorder(b *testing.B) {
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		last, err = experiments.Reorder(experiments.ReorderConfig{Rows: 400})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportResult(b, last)
}

// BenchmarkTable3_SourceGeneration measures the synthetic workload
// generators backing Table 3.
func BenchmarkTable3_SourceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := workload.RTable(workload.PaperRSpec())
		s := workload.STable(250, 0)
		t := workload.TTable(1000)
		if len(r.Rows)+len(s.Rows)+len(t.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation benches: SteM dictionary implementations (§3.1 — the dictionary
// choice is part of the join algorithm).

func benchQ(rows int) *query.Q {
	rData := workload.RTable(workload.RSpec{Rows: rows, DistinctA: rows / 4, Seed: 1})
	sData := workload.STable(rows/4, 0)
	return query.MustNew(
		[]*schema.Table{rData.Schema, sData.Schema},
		[]pred.P{pred.EquiJoin(0, 1, 1, 0)},
		[]query.AMDecl{
			{Table: 0, Kind: query.Scan, Data: rData, ScanSpec: source.ScanSpec{InterArrival: clock.Microsecond}},
			{Table: 1, Kind: query.Scan, Data: sData, ScanSpec: source.ScanSpec{InterArrival: clock.Microsecond}},
		},
	)
}

func benchDict(b *testing.B, mk func(q *query.Q, table int) stem.Dict) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := benchQ(512)
		r, err := eddy.NewRouter(q, eddy.Options{DictFor: func(t int) stem.Dict { return mk(q, t) }})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eddy.NewSim(r).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDict_Hash(b *testing.B) {
	benchDict(b, func(q *query.Q, t int) stem.Dict { return stem.NewHashDict(stem.JoinCols(q, t)) })
}

func BenchmarkDict_List(b *testing.B) {
	benchDict(b, func(q *query.Q, t int) stem.Dict { return stem.NewListDict() })
}

func BenchmarkDict_Adaptive(b *testing.B) {
	benchDict(b, func(q *query.Q, t int) stem.Dict { return stem.NewAdaptiveDict(stem.JoinCols(q, t), 32) })
}

func BenchmarkDict_SortedRuns(b *testing.B) {
	benchDict(b, func(q *query.Q, t int) stem.Dict {
		cols := stem.JoinCols(q, t)
		if len(cols) == 0 {
			return stem.NewListDict()
		}
		return stem.NewSortedDict(cols[0], 64)
	})
}

// Band-join ablation: a range (inequality) join probes the whole dictionary
// unless the dictionary can narrow by the sort column — the sorted-run
// dictionary's reason to exist beyond sort-merge simulation.

func benchBandJoin(b *testing.B, mk func(q *query.Q, table int) stem.Dict) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rData := workload.Uniform("R", 256, 2, 4096, 1)
		sData := workload.Uniform("S", 256, 2, 4096, 2)
		q := query.MustNew(
			[]*schema.Table{rData.Schema, sData.Schema},
			[]pred.P{
				pred.EquiJoin(0, 0, 1, 0),      // key equi join (sparse)
				pred.Join(0, 1, pred.Le, 1, 1), // band condition
			},
			[]query.AMDecl{
				{Table: 0, Kind: query.Scan, Data: rData, ScanSpec: source.ScanSpec{InterArrival: clock.Microsecond}},
				{Table: 1, Kind: query.Scan, Data: sData, ScanSpec: source.ScanSpec{InterArrival: clock.Microsecond}},
			},
		)
		r, err := eddy.NewRouter(q, eddy.Options{DictFor: func(t int) stem.Dict { return mk(q, t) }})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eddy.NewSim(r).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBandJoin_HashDict(b *testing.B) {
	benchBandJoin(b, func(q *query.Q, t int) stem.Dict { return stem.NewHashDict(stem.JoinCols(q, t)) })
}

func BenchmarkBandJoin_SortedDict(b *testing.B) {
	benchBandJoin(b, func(q *query.Q, t int) stem.Dict {
		cols := stem.JoinCols(q, t)
		return stem.NewSortedDict(cols[0], 128)
	})
}

// Grace ablation: batched vs immediate build bounce-backs (§3.1's SHJ ↔
// Grace hybridization).

func benchGrace(b *testing.B, batch int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := eddy.NewRouter(benchQ(512), eddy.Options{
			BuildBounceBatchFor: func(int) int { return batch },
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eddy.NewSim(r).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraceHybrid_Immediate(b *testing.B) { benchGrace(b, 0) }
func BenchmarkGraceHybrid_Batch32(b *testing.B)   { benchGrace(b, 32) }
func BenchmarkGraceHybrid_Batch128(b *testing.B)  { benchGrace(b, 128) }

// Policy ablation: routing decision overhead end to end.

func benchPolicy(b *testing.B, mk func() policy.Policy) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := eddy.NewRouter(benchQ(512), eddy.Options{Policy: mk()})
		if err != nil {
			b.Fatal(err)
		}
		sim := eddy.NewSim(r)
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Routed()), "routing-steps")
	}
}

func BenchmarkPolicy_Random(b *testing.B) {
	benchPolicy(b, func() policy.Policy { return policy.NewRandom(1) })
}
func BenchmarkPolicy_Fixed(b *testing.B) {
	benchPolicy(b, func() policy.Policy { return policy.NewFixed() })
}
func BenchmarkPolicy_Lottery(b *testing.B) {
	benchPolicy(b, func() policy.Policy { return policy.NewLottery(1) })
}
func BenchmarkPolicy_BenefitCost(b *testing.B) {
	benchPolicy(b, func() policy.Policy { return policy.NewBenefitCost(1) })
}

// Engine comparison: the same query on the simulator vs the channel engine.

func BenchmarkEngine_Simulator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eddy.NewRouter(benchQ(256), eddy.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eddy.NewSim(r).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngine_Concurrent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eddy.NewRouter(benchQ(256), eddy.Options{})
		if err != nil {
			b.Fatal(err)
		}
		eng := eddy.NewConcurrent(r, clock.NewReal(0.0000001))
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// Batch-at-a-time ablation: the same in-memory three-way join on the
// concurrent engine at eddy batch size 1 (tuple-at-a-time dataflow) vs the
// default 64 (channel sends, SteM locking, and policy decisions amortized
// across each batch). Allocations are reported so the per-tuple event and
// synchronization overhead stays measurable.

// benchMultiwayQ builds the in-memory R ⋈ S ⋈ T join driven by scans on all
// three tables (R.a = S.x, S.y = T.key). The scans deliver in a burst (zero
// inter-arrival), so the run measures pure dispatch — routing, channel
// sends, module locking — rather than timer waits.
func benchMultiwayQ(rows int) *query.Q {
	rData := workload.RTable(workload.RSpec{Rows: rows, DistinctA: rows / 4, Seed: 1})
	sData := workload.STable(rows/4, 0)
	tData := workload.TTable(rows / 4)
	return query.MustNew(
		[]*schema.Table{rData.Schema, sData.Schema, tData.Schema},
		[]pred.P{
			pred.EquiJoin(0, 1, 1, 0), // R.a = S.x
			pred.EquiJoin(1, 1, 2, 0), // S.y = T.key
		},
		[]query.AMDecl{
			{Table: 0, Kind: query.Scan, Data: rData},
			{Table: 1, Kind: query.Scan, Data: sData},
			{Table: 2, Kind: query.Scan, Data: tData},
		},
	)
}

func benchConcurrentBatch(b *testing.B, batch int, columnar bool) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := eddy.NewRouter(benchMultiwayQ(512), eddy.Options{})
		if err != nil {
			b.Fatal(err)
		}
		eng := eddy.NewConcurrent(r, clock.NewReal(0.0000001))
		eng.BatchSize = batch
		eng.Columnar = columnar
		outs, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(outs) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkConcurrentMultiway_Batch1(b *testing.B)  { benchConcurrentBatch(b, 1, true) }
func BenchmarkConcurrentMultiway_Batch64(b *testing.B) { benchConcurrentBatch(b, 64, true) }

// Batch64Rows is the representation ablation: the same batched dataflow
// carried as row tuples instead of column vectors, isolating what the
// columnar layout (typed vectors, dictionary-encoded strings, selection
// vectors, pooled storage) buys over batching alone.
func BenchmarkConcurrentMultiway_Batch64Rows(b *testing.B) { benchConcurrentBatch(b, 64, false) }

// Sharded-SteM ablation: the same three-way join with each SteM hash-
// partitioned into N shards, one concurrent-engine worker per shard. The
// clock is uncompressed, so the modeled per-operation service costs (5µs
// hash probes, 1µs per match — the paper's main-memory scale) elapse for
// real and the benchmark measures throughput the way a deployment would:
// with one store per SteM every build and probe of a table serializes
// behind one lock/worker; with N shards they overlap across partitions.
// This is the intra-operator parallelism lever — on multi-core hardware the
// same partitioning spreads the CPU work of concatenation and verification
// as well.

func benchShardedMultiway(b *testing.B, shards int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := eddy.NewRouter(benchMultiwayQ(512), eddy.Options{Shards: shards})
		if err != nil {
			b.Fatal(err)
		}
		eng := eddy.NewConcurrent(r, clock.NewReal(1))
		outs, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(outs) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkShardedMultiway_Shards1(b *testing.B) { benchShardedMultiway(b, 1) }
func BenchmarkShardedMultiway_Shards4(b *testing.B) { benchShardedMultiway(b, 4) }
func BenchmarkShardedMultiway_Shards8(b *testing.B) { benchShardedMultiway(b, 8) }

// Out-of-core spill bench: the same 3-way join at 1024 rows with the build
// state larger than the byte budget — real segment writes, recorded probes,
// and a replay pass regenerate the spilled results. The unbounded variant is
// the in-memory baseline; Budget4x holds roughly a quarter of the build
// state (so state exceeds the budget ≥4×); Budget1 spills every row. Output
// counts are asserted equal across all three (TestSpillResultsAgree proves
// set-identity; the bench proves the cost).

func benchSpillMultiway(b *testing.B, budget int64) {
	b.Helper()
	b.ReportAllocs()
	var spilled, replayed uint64
	var outs int
	for i := 0; i < b.N; i++ {
		var ropts eddy.Options
		var gov *stem.Governor
		if budget > 0 {
			var err error
			gov, err = stem.NewSpillGovernor(budget, stem.AllocByProbes, b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			ropts.Governor = gov
		}
		r, err := eddy.NewRouter(benchMultiwayQ(1024), ropts)
		if err != nil {
			b.Fatal(err)
		}
		res, err := eddy.NewSim(r).Run()
		if err != nil {
			b.Fatal(err)
		}
		outs = len(res)
		spilled, replayed = 0, 0
		for _, s := range r.SteMs() {
			st := s.Stats()
			spilled += st.SpilledBuilds
			replayed += st.ReplayMatches
		}
		if gov != nil {
			if err := gov.Err(); err != nil {
				b.Fatal(err)
			}
			if err := gov.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if outs == 0 {
		b.Fatal("no results")
	}
	b.ReportMetric(float64(outs), "results")
	b.ReportMetric(float64(spilled), "spilled-rows")
	b.ReportMetric(float64(replayed), "replayed")
}

func BenchmarkSpillMultiway_Unbounded(b *testing.B) { benchSpillMultiway(b, 0) }
func BenchmarkSpillMultiway_Budget4x(b *testing.B)  { benchSpillMultiway(b, 40<<10) }
func BenchmarkSpillMultiway_Budget1(b *testing.B)   { benchSpillMultiway(b, 1) }

// Memory-governance ablation (Section 6): equal vs probe-frequency
// allocation under a halved resident budget.

func benchGovernor(b *testing.B, policy stem.AllocPolicy) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		gov := stem.NewGovernor(256, policy, 5*clock.Millisecond)
		r, err := eddy.NewRouter(benchQ(512), eddy.Options{Governor: gov})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eddy.NewSim(r).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGovernor_Equal(b *testing.B)    { benchGovernor(b, stem.AllocEqual) }
func BenchmarkGovernor_ByProbes(b *testing.B) { benchGovernor(b, stem.AllocByProbes) }

// Micro-benches on the SteM itself.

func BenchmarkSteMBuildProbe(b *testing.B) {
	q := benchQ(8)
	counter := &stem.Counter{}
	s := stem.New(stem.Config{Table: 1, Q: q, TS: counter})
	// Preload the SteM.
	for i := 0; i < 1024; i++ {
		m := tuple.NewSingleton(2, 1, tuple.Row{value.NewInt(int64(i % 256)), value.NewInt(int64(i))})
		s.Process(m, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := tuple.NewSingleton(2, 0, tuple.Row{value.NewInt(int64(i)), value.NewInt(int64(i % 256))})
		r.CompTS[0] = counter.Next()
		r.Built = tuple.Single(0)
		s.Process(r, 0)
	}
}

// Facade-level end-to-end bench.

func BenchmarkFacadeEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := NewQuery().
			Table("R", Ints("key", "a"), [][]int64{{1, 10}, {2, 20}, {3, 10}, {4, 30}}).
			Table("S", Ints("x", "y"), [][]int64{{10, 100}, {20, 200}, {30, 300}}).
			Scan("R", time.Microsecond).
			Scan("S", time.Microsecond).
			Where("R.a", "=", "S.x").
			Run(Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 4 {
			b.Fatalf("got %d rows", len(res.Rows))
		}
	}
}
